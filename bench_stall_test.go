// BenchmarkCaptureStall measures what the trainer actually pays to take a
// checkpoint: the bytes that must be touched while the live state is
// frozen. Snapshot-mode async saving deep-copies the whole model and
// optimizer before training may continue — a stall of O(model size) no
// matter how little changed. Lazy capture only hashes and spools the
// layers whose generation moved since the last save, so on the paper's
// incremental workload (1 of ~18 layers changing per step) the steady-
// state stall is bounded by the changed-layer set. It emits
// BENCH_stall.json and asserts the acceptance floor (≥5× fewer stall
// bytes over saves 2..10), plus bit-identical materialization against the
// plain synchronous save path, so the perf property is CI-checked on
// every bench-smoke pass. Wall-clock stall is recorded informationally
// only: stall bytes are deterministic, hash throughput is not.
package llmtailor_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// bumpChangedGens advances the optimizer generation of exactly the groups
// mutateLayers dirtied for this step — standing in for the bumps
// AdamW.Step performs during real training, which the bench bypasses by
// poking tensors directly.
func bumpChangedGens(o *optim.AdamW, cfg *modelcfg.Config, step int) {
	refs := cfg.AllLayers()
	changed := map[modelcfg.LayerRef]bool{}
	for j := 0; j < deltaLayersPerStep; j++ {
		changed[refs[(step*deltaLayersPerStep+j)%len(refs)]] = true
	}
	for gi, g := range o.Layout.Groups {
		if g.HasLayer && changed[g.Layer] {
			o.Gens[gi]++
		}
	}
}

// liveStateBytes is the size of one full snapshot: every model tensor
// plus the three f32 optimizer moments per parameter — the bytes a
// snapshot-mode Save must copy before the trainer may mutate anything.
func liveStateBytes(m *model.Model, o *optim.AdamW) int64 {
	var n int64
	for _, t := range m.Tensors() {
		n += int64(t.Bytes())
	}
	for _, st := range o.States {
		n += st.Numel() * 12
	}
	return n
}

func newStallState(b *testing.B) (*modelcfg.Config, *model.Model, *optim.AdamW) {
	b.Helper()
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	m, err := model.NewInitialized(cfg, tensor.BF16, 77)
	if err != nil {
		b.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		b.Fatal(err)
	}
	return cfg, m, o
}

// runSnapshotStall drives the 10-save sequence through the snapshot-mode
// async saver. Every Save deep-copies the live state, so the stall is the
// full model+optimizer byte count each time; wall-clock is measured
// around the Save call (the clone happens inside it, synchronously).
func runSnapshotStall(b *testing.B) (stallBytes, stallNs int64) {
	b.Helper()
	cfg, m, o := newStallState(b)
	perSave := liveStateBytes(m, o)
	mem := storage.NewMem()
	saver := ckpt.NewAsyncSaver(mem, 2)
	for i := 1; i <= deltaSaves; i++ {
		if i > 1 {
			mutateLayers(m, o, cfg, i)
		}
		t0 := time.Now()
		err := saver.Save(ckpt.SaveSpec{
			Dir: fmt.Sprintf("run/checkpoint-%d", i*100), Model: m, Optim: o,
			WorldSize: 2, Strategy: "full", Dedup: true,
			State: ckpt.TrainerState{Step: i * 100, Seed: 77},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i > 1 { // steady state: saves 2..10
			stallNs += int64(time.Since(t0))
			stallBytes += perSave
		}
	}
	if err := saver.Wait(); err != nil {
		b.Fatal(err)
	}
	return stallBytes, stallNs
}

// runLazyStall drives the same sequence through the lazy saver: Save only
// schedules capture, WaitCaptured blocks until the changed layers have
// been hashed (and spooled when their content is new). Stall bytes are
// the capture engine's own accounting of bytes touched on the trainer's
// critical path.
func runLazyStall(b *testing.B) (stallBytes, stallNs int64, stats ckpt.CaptureStats, mem *storage.Mem) {
	b.Helper()
	cfg, m, o := newStallState(b)
	mem = storage.NewMem()
	saver := ckpt.NewLazyAsyncSaver(mem, 2, ckpt.CaptureOptions{})
	touched := func(cs ckpt.CaptureStats) int64 { return cs.BytesHashed + cs.BytesSpooled }
	var base ckpt.CaptureStats
	for i := 1; i <= deltaSaves; i++ {
		if i > 1 {
			mutateLayers(m, o, cfg, i)
			bumpChangedGens(o, cfg, i)
		}
		err := saver.Save(ckpt.SaveSpec{
			Dir: fmt.Sprintf("run/checkpoint-%d", i*100), Model: m, Optim: o,
			WorldSize: 2, Strategy: "full", Dedup: true,
			LayerGens: o.LayerGens(),
			State:     ckpt.TrainerState{Step: i * 100, Seed: 77},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := saver.WaitCaptured(); err != nil {
			b.Fatal(err)
		}
		// Drain the background write off the measurement path: stall is
		// accounted during capture, and flushing makes the next save's
		// dedup probes deterministic (all prior blobs published).
		if err := saver.Flush(); err != nil {
			b.Fatal(err)
		}
		if i == 1 { // save 1 has no prior generation to dedup against
			base = saver.CaptureStats()
		}
	}
	if err := saver.Wait(); err != nil {
		b.Fatal(err)
	}
	stats = saver.CaptureStats()
	stallBytes = touched(stats) - touched(base)
	stallNs = stats.StallNs - base.StallNs
	return stallBytes, stallNs, stats, mem
}

// stallBenchRecord is the schema of BENCH_stall.json.
type stallBenchRecord struct {
	Bench              string  `json:"bench"`
	Model              string  `json:"model"`
	Saves              int     `json:"saves"`
	LayersPerStep      int     `json:"layers_changed_per_step"`
	TotalLayers        int     `json:"total_layers"`
	StallBytesSnapshot int64   `json:"stall_bytes_snapshot"`
	StallBytesLazy     int64   `json:"stall_bytes_lazy"`
	Reduction          float64 `json:"reduction"`
	StallNsSnapshot    int64   `json:"stall_ns_snapshot"`
	StallNsLazy        int64   `json:"stall_ns_lazy"`
	LayersReused       int64   `json:"layers_reused"`
	PayloadsReferenced int64   `json:"payloads_referenced"`
	BytesReferenced    int64   `json:"bytes_referenced"`
	SpoolPeakBytes     int64   `json:"spool_peak_bytes"`
}

func BenchmarkCaptureStall(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	record := stallBenchRecord{
		Bench: "capture-stall", Model: cfg.Name,
		Saves: deltaSaves, LayersPerStep: deltaLayersPerStep,
		TotalLayers: len(cfg.AllLayers()),
	}
	var snapBytes, snapNs, lazyBytes, lazyNs int64
	var lazyStats ckpt.CaptureStats
	var lazyMem *storage.Mem

	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snapBytes, snapNs = runSnapshotStall(b)
		}
		b.ReportMetric(float64(snapBytes), "stall-bytes/op")
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lazyBytes, lazyNs, lazyStats, lazyMem = runLazyStall(b)
		}
		b.ReportMetric(float64(lazyBytes), "stall-bytes/op")
	})

	record.StallBytesSnapshot = snapBytes
	record.StallBytesLazy = lazyBytes
	record.Reduction = float64(snapBytes) / float64(lazyBytes)
	record.StallNsSnapshot = snapNs
	record.StallNsLazy = lazyNs
	record.LayersReused = lazyStats.LayersReused
	record.PayloadsReferenced = lazyStats.PayloadsReferenced
	record.BytesReferenced = lazyStats.BytesReferenced
	record.SpoolPeakBytes = lazyStats.SpoolPeakBytes
	b.ReportMetric(record.Reduction, "stall-reduction-x")

	// Acceptance floor: the steady-state stall shrinks ≥5× when only
	// ~6% of layers change per save.
	if record.Reduction < 5 {
		b.Fatalf("stall-bytes reduction %.2fx < 5x (snapshot %d, lazy %d)",
			record.Reduction, snapBytes, lazyBytes)
	}
	// The stall must scale with the changed-layer set, not the model:
	// allow 4× slack for unlayered groups and container framing.
	if lazyBytes*int64(record.TotalLayers) > snapBytes*int64(deltaLayersPerStep)*4 {
		b.Fatalf("lazy stall %d bytes is not O(changed layers): snapshot %d, %d/%d layers changed",
			lazyBytes, snapBytes, deltaLayersPerStep, record.TotalLayers)
	}

	// Correctness side of the acceptance: the lazy run's checkpoints
	// materialize byte-identical to the plain synchronous save path.
	_, plainMem := runIncrementalSaves(b, false)
	lastDir := fmt.Sprintf("run/checkpoint-%d", deltaSaves*100)
	if err := ckpt.MaterializeWeights(lazyMem, lastDir, "mat.ltsf", 0); err != nil {
		b.Fatal(err)
	}
	want, _ := plainMem.ReadFile(lastDir + "/model.ltsf")
	got, _ := lazyMem.ReadFile("mat.ltsf")
	if len(want) == 0 || !bytes.Equal(want, got) {
		b.Fatal("materialized lazy checkpoint differs from the plain save")
	}
	for r := 0; r < 2; r++ {
		if err := ckpt.MaterializeShardFile(lazyMem, lastDir, r, "mat.ltos", 0); err != nil {
			b.Fatal(err)
		}
		want, _ := plainMem.ReadFile(lastDir + "/" + ckpt.ShardFileName(r))
		got, _ := lazyMem.ReadFile("mat.ltos")
		if len(want) == 0 || !bytes.Equal(want, got) {
			b.Fatalf("materialized rank %d shard differs from the plain save", r)
		}
	}

	writeBenchJSON(b, "BENCH_stall.json", record)
}
