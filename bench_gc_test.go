// BenchmarkGCIncremental measures what the journaled ref index buys on the
// workload it exists for: a long run whose GC must not cost O(run length).
// A 200-checkpoint content-addressed run has its five oldest checkpoints
// replaced in place (superseding their generations); the generational
// sweep then reads the journal and examines only the retired generations'
// candidate blobs, while the -full path re-reads every manifest container
// in the run and lists the whole store. It emits BENCH_gc.json and asserts
// the acceptance floors inline — incremental examines O(retired) blobs and
// is ≥5× faster — so the perf property is CI-checked on every bench-smoke
// pass.
package llmtailor_test

import (
	"fmt"
	"sync"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

const (
	gcBenchCheckpoints = 200
	gcBenchRetired     = 5
	gcBenchWorldSize   = 4
	// perGenDigestCeiling caps how many digests one Tiny/worldsize-4
	// generation can reference (weights + per-rank groups, generously).
	perGenDigestCeiling = 120
)

type gcBenchState struct {
	mem *storage.Mem
	// blobsTotal is the store population before any sweep.
	blobsTotal int
	err        error
}

var gcBenchOnce sync.Once
var gcBench gcBenchState

// buildGCBenchRun writes the 200-checkpoint dedup run, one tensor dirtied
// per save so every generation holds exclusive content, then replaces the
// five oldest checkpoints in place to supersede their generations.
func buildGCBenchRun() gcBenchState {
	cfg := modelcfg.Tiny()
	m, err := model.NewInitialized(cfg, tensor.BF16, 99)
	if err != nil {
		return gcBenchState{err: err}
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		return gcBenchState{err: err}
	}
	mem := storage.NewMem()
	save := func(step int) error {
		ts := m.Tensors()[step%len(m.Tensors())]
		ts.Set(0, ts.At(0)+float32(step)*1e-3)
		return ckpt.Save(mem, ckpt.SaveSpec{
			Dir: fmt.Sprintf("run/checkpoint-%d", step), Model: m, Optim: o,
			WorldSize: gcBenchWorldSize, Strategy: "full", Dedup: true,
			State: ckpt.TrainerState{Step: step, Seed: 99},
		})
	}
	for i := 1; i <= gcBenchCheckpoints; i++ {
		if err := save(i * 10); err != nil {
			return gcBenchState{err: err}
		}
	}
	for i := 1; i <= gcBenchRetired; i++ {
		if err := save(i * 10); err != nil {
			return gcBenchState{err: err}
		}
	}
	blobs, _, _, err := storage.NewBlobStore(mem, "run/objects").List()
	if err != nil {
		return gcBenchState{err: err}
	}
	return gcBenchState{mem: mem, blobsTotal: len(blobs)}
}

// gcBenchRecord is the schema of BENCH_gc.json.
type gcBenchRecord struct {
	Bench               string  `json:"bench"`
	Checkpoints         int     `json:"checkpoints"`
	RetiredGenerations  int     `json:"retired_generations"`
	WorldSize           int     `json:"world_size"`
	BlobsTotal          int     `json:"blobs_total"`
	BlobsExaminedInc    int     `json:"blobs_examined_incremental"`
	BlobsExaminedFull   int     `json:"blobs_examined_full"`
	BlobsReclaimable    int     `json:"blobs_reclaimable"`
	NsPerOpIncremental  float64 `json:"ns_per_op_incremental"`
	NsPerOpFull         float64 `json:"ns_per_op_full"`
	Speedup             float64 `json:"speedup"`
	IndexRecordsScanned int     `json:"index_records_scanned"`
}

func BenchmarkGCIncremental(b *testing.B) {
	gcBenchOnce.Do(func() { gcBench = buildGCBenchRun() })
	if gcBench.err != nil {
		b.Fatal(gcBench.err)
	}
	mem := gcBench.mem
	record := gcBenchRecord{
		Bench: "gc-incremental", Checkpoints: gcBenchCheckpoints,
		RetiredGenerations: gcBenchRetired, WorldSize: gcBenchWorldSize,
		BlobsTotal: gcBench.blobsTotal,
	}

	var incRep, fullRep *ckpt.GCReport
	// The generational sub-benchmark must run before the full one: a full
	// GC validates the index and retires the superseded generations, after
	// which there is nothing incremental left to measure. Dry-run keeps
	// every timed iteration identical.
	b.Run("generational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := ckpt.GCGenerational(mem, "run", true)
			if err != nil {
				b.Fatal(err)
			}
			incRep = rep
		}
		record.NsPerOpIncremental = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(incRep.Examined), "blobs-examined/op")
	})
	// Correctness tie-in before the full path mutates anything: the real
	// (non-dry) generational sweep reclaims exactly what the dry run
	// predicted.
	realRep, err := ckpt.GCGenerational(mem, "run", false)
	if err != nil {
		b.Fatal(err)
	}
	if len(realRep.RemovedBlobs) != len(incRep.RemovedBlobs) || len(realRep.RemovedBlobs) == 0 {
		b.Fatalf("dry run predicted %d removals, sweep did %d",
			len(incRep.RemovedBlobs), len(realRep.RemovedBlobs))
	}

	// The full path then verifies the same 200-checkpoint run end to end:
	// every manifest container re-read, the whole store listed. Steady
	// state after the first call, so iterations are comparable.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := ckpt.GC(mem, "run")
			if err != nil {
				b.Fatal(err)
			}
			fullRep = rep
		}
		record.NsPerOpFull = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(fullRep.Examined), "blobs-examined/op")
	})

	record.BlobsExaminedInc = incRep.Examined
	record.BlobsExaminedFull = fullRep.Examined
	record.BlobsReclaimable = len(incRep.RemovedBlobs)
	record.IndexRecordsScanned = incRep.IndexRecords
	record.Speedup = record.NsPerOpFull / record.NsPerOpIncremental
	b.ReportMetric(record.Speedup, "speedup-x")

	// Acceptance floor 1: the incremental sweep's examination is O(retired
	// generations) — exactly the candidate digests the five retired
	// records referenced (~one checkpoint's worth each, independent of the
	// other 195 checkpoints in the run) — while the full path examines the
	// whole store.
	if incRep.Examined > gcBenchRetired*perGenDigestCeiling {
		b.Fatalf("incremental gc examined %d blobs for %d retired generations — not O(retired)",
			incRep.Examined, gcBenchRetired)
	}
	if incRep.Examined*2 > fullRep.Examined {
		b.Fatalf("incremental gc examined %d blobs vs full's %d — no examination win",
			incRep.Examined, fullRep.Examined)
	}
	if len(incRep.RemovedBlobs) == 0 {
		b.Fatal("scenario produced no reclaimable garbage")
	}
	// Acceptance floor 2: ≥5× faster than the whole-history mark-and-sweep
	// on the same 200-checkpoint state.
	if record.Speedup < 5 {
		b.Fatalf("generational gc speedup %.2fx < 5x (inc %.0fns, full %.0fns)",
			record.Speedup, record.NsPerOpIncremental, record.NsPerOpFull)
	}

	// Full and generational agree: after the sweeps above, neither path
	// finds anything left, and surviving checkpoints still restore.
	agree, err := ckpt.GC(mem, "run")
	if err != nil {
		b.Fatal(err)
	}
	if len(agree.RemovedBlobs) != 0 || len(agree.IndexRetired) != 0 || len(agree.IndexRepaired) != 0 {
		b.Fatalf("full gc disagrees with the generational sweep: %+v", agree)
	}
	for _, step := range []int{10, 50, gcBenchCheckpoints * 10} {
		if _, _, _, err := ckpt.Restore(mem, fmt.Sprintf("run/checkpoint-%d", step), tensor.BF16); err != nil {
			b.Fatalf("checkpoint-%d unrestorable after sweeps: %v", step, err)
		}
	}
	writeBenchJSON(b, "BENCH_gc.json", record)
}
