// BenchmarkReshardRawVsDecode measures what the zero-decode extent-splice
// path buys an elastic reshard: the same world-size change run with the
// splice (byte extents stitched straight from source payloads, CRCs
// carried forward where the partitions coincide) and with the gather →
// repartition fallback that decodes every FP32 triple. It emits
// BENCH_reshard.json recording both sides; benchcheck holds the committed
// record to a >= 2x floor.
package llmtailor_test

import (
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

const (
	reshardBenchWorldFrom = 4
	reshardBenchWorldTo   = 3
)

// setupReshardBench saves a sim-scale checkpoint at the source world size.
// The geometry is a step up from DefaultSimScale so the optimizer payload
// dominates the fixed per-reshard cost (weights copy, trailer, commit)
// that both measured sides share.
func setupReshardBench(b *testing.B) (*modelcfg.Config, *storage.Mem) {
	b.Helper()
	cfg := modelcfg.Llama32_1B().Scaled(128, 256, 512)
	back := storage.NewMem()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 44)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err := ckpt.Save(back, ckpt.SaveSpec{
		Dir: ckpt.DirName(100), Model: m, Optim: o, WorldSize: reshardBenchWorldFrom,
		Strategy: "full", State: ckpt.TrainerState{Step: 100, Seed: 44},
	}); err != nil {
		b.Fatal(err)
	}
	return cfg, back
}

func BenchmarkReshardRawVsDecode(b *testing.B) {
	cfg, back := setupReshardBench(b)
	run := func(b *testing.B, out string, noRaw bool) (*llmtailor.ReshardStats, float64) {
		var last *llmtailor.ReshardStats
		for i := 0; i < b.N; i++ {
			stats, err := llmtailor.ReshardCheckpoint(back, ckpt.DirName(100), out,
				reshardBenchWorldTo, llmtailor.ReshardOptions{
					Workers: 4, MaxInFlight: 8 << 20, NoRawCopy: noRaw, NoLatest: true,
				})
			if err != nil {
				b.Fatal(err)
			}
			last = stats
		}
		return last, float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}

	var record reshardBenchRecord
	record.Bench = "reshard-raw-vs-decode"
	record.Model = cfg.Name
	record.WorldFrom = reshardBenchWorldFrom
	record.WorldTo = reshardBenchWorldTo
	record.MaxInFlight = 8 << 20
	record.Workers = 4
	b.Run("raw", func(b *testing.B) {
		stats, ns := run(b, "out-raw", false)
		if stats.GroupsRawCopied != stats.Groups || stats.Groups == 0 {
			b.Fatalf("splice path did not arm: %+v", stats)
		}
		b.ReportMetric(float64(stats.BytesRawCopied), "bytes-raw-copied/op")
		record.Raw = reshardSideRecord{NsPerOp: ns, Stats: reshardStatsFields(stats)}
	})
	b.Run("decode", func(b *testing.B) {
		stats, ns := run(b, "out-decoded", true)
		if stats.GroupsDecoded != stats.Groups {
			b.Fatalf("NoRawCopy run raw-copied: %+v", stats)
		}
		record.Decode = reshardSideRecord{NsPerOp: ns, Stats: reshardStatsFields(stats)}
	})
	if record.Raw.NsPerOp > 0 && record.Decode.NsPerOp > 0 {
		record.Speedup = record.Decode.NsPerOp / record.Raw.NsPerOp
		writeBenchJSON(b, "BENCH_reshard.json", record)
	}
}

// reshardStatsFields extracts the reshard.Stats counters for the record.
func reshardStatsFields(s *llmtailor.ReshardStats) reshardStatsRecord {
	return reshardStatsRecord{
		Groups:            s.Groups,
		GroupsRawCopied:   s.GroupsRawCopied,
		GroupsDecoded:     s.GroupsDecoded,
		ShardsCarried:     s.ShardsCarried,
		ShardsSpliced:     s.ShardsSpliced,
		ShardsZeroed:      s.ShardsZeroed,
		BytesRawCopied:    s.BytesRawCopied,
		BytesDecoded:      s.BytesDecoded,
		BytesZeroFilled:   s.BytesZeroFilled,
		WeightBytes:       s.WeightBytes,
		PeakInFlightBytes: s.PeakInFlightBytes,
	}
}

// reshardStatsRecord mirrors reshard.Stats in BENCH_reshard.json.
type reshardStatsRecord struct {
	Groups            int   `json:"groups"`
	GroupsRawCopied   int   `json:"groups_raw_copied"`
	GroupsDecoded     int   `json:"groups_decoded"`
	ShardsCarried     int   `json:"shards_carried"`
	ShardsSpliced     int   `json:"shards_spliced"`
	ShardsZeroed      int   `json:"shards_zeroed"`
	BytesRawCopied    int64 `json:"bytes_raw_copied"`
	BytesDecoded      int64 `json:"bytes_decoded"`
	BytesZeroFilled   int64 `json:"bytes_zero_filled"`
	WeightBytes       int64 `json:"weight_bytes"`
	PeakInFlightBytes int64 `json:"peak_inflight_bytes"`
}

// reshardSideRecord is one measured side of BENCH_reshard.json.
type reshardSideRecord struct {
	NsPerOp float64            `json:"ns_per_op"`
	Stats   reshardStatsRecord `json:"stats"`
}

// reshardBenchRecord is the schema of BENCH_reshard.json: the same
// world-size change measured with the zero-decode splice on and off.
type reshardBenchRecord struct {
	Bench       string            `json:"bench"`
	Model       string            `json:"model"`
	WorldFrom   int               `json:"world_from"`
	WorldTo     int               `json:"world_to"`
	MaxInFlight int64             `json:"max_inflight"`
	Workers     int               `json:"workers"`
	Raw         reshardSideRecord `json:"raw"`
	Decode      reshardSideRecord `json:"decode"`
	// Speedup is decode ns/op over raw ns/op (>1 means the splice won).
	Speedup float64 `json:"speedup"`
}
