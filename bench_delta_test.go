// BenchmarkIncrementalSave measures the content-addressed (dedup) save
// path on the workload it exists for: a checkpoint sequence where only a
// small fraction of layers changes between saves — the incremental-
// snapshot observation that most tensor bytes are identical step to step.
// It emits BENCH_delta.json recording the bytes-written reduction, and
// asserts the acceptance floor (≥5× for a 10-save run with ≤20% of layers
// changing per step) plus bit-identical materialization, so the perf
// property is CI-checked on every bench-smoke pass.
package llmtailor_test

import (
	"bytes"
	"fmt"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
)

const (
	deltaSaves         = 10
	deltaLayersPerStep = 1 // of ~18 mergeable layers ≈ 6% ≤ 20%
)

// mutateLayers deterministically perturbs `deltaLayersPerStep` layers'
// weights and optimizer state for one step, rotating through the layer
// list so successive saves dirty different layers.
func mutateLayers(m *model.Model, o *optim.AdamW, cfg *modelcfg.Config, step int) {
	refs := cfg.AllLayers()
	changed := map[modelcfg.LayerRef]bool{}
	for j := 0; j < deltaLayersPerStep; j++ {
		changed[refs[(step*deltaLayersPerStep+j)%len(refs)]] = true
	}
	for i, spec := range m.Specs() {
		if !changed[spec.Layer] {
			continue
		}
		t := m.Tensors()[i]
		for k := 0; k < t.Len(); k += 97 {
			t.Set(k, t.At(k)+float32(step)*1e-3)
		}
	}
	for gi, g := range o.Layout.Groups {
		if !g.HasLayer || !changed[g.Layer] {
			continue
		}
		st := o.States[gi]
		for k := 0; k < len(st.Master); k += 97 {
			st.Master[k] += float32(step) * 1e-3
			st.ExpAvg[k] += float32(step) * 1e-4
		}
	}
}

// runIncrementalSaves executes the 10-save sequence in one mode and
// returns the metered bytes written plus the backend for inspection.
func runIncrementalSaves(b *testing.B, dedup bool) (int64, *storage.Mem) {
	b.Helper()
	cfg, m, o := buildDeltaWorkload(b)
	mem := storage.NewMem()
	meter := storage.NewMeter(mem, storage.Profile{})
	for i := 1; i <= deltaSaves; i++ {
		if i > 1 {
			mutateLayers(m, o, cfg, i)
		}
		err := ckpt.Save(meter, ckpt.SaveSpec{
			Dir: fmt.Sprintf("run/checkpoint-%d", i*100), Model: m, Optim: o,
			WorldSize: 2, Strategy: "full", Dedup: dedup,
			State: ckpt.TrainerState{Step: i * 100, Seed: 77},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return meter.Stats().BytesWritten, mem
}

// deltaBenchRecord is the schema of BENCH_delta.json.
type deltaBenchRecord struct {
	Bench             string  `json:"bench"`
	Model             string  `json:"model"`
	Saves             int     `json:"saves"`
	LayersPerStep     int     `json:"layers_changed_per_step"`
	TotalLayers       int     `json:"total_layers"`
	BytesWrittenFull  int64   `json:"bytes_written_full"`
	BytesWrittenDedup int64   `json:"bytes_written_dedup"`
	Reduction         float64 `json:"reduction"`
	BlobsStored       int     `json:"blobs_stored"`
	NsPerOpFull       float64 `json:"ns_per_op_full"`
	NsPerOpDedup      float64 `json:"ns_per_op_dedup"`
}

func BenchmarkIncrementalSave(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	record := deltaBenchRecord{
		Bench: "incremental-save", Model: cfg.Name,
		Saves: deltaSaves, LayersPerStep: deltaLayersPerStep,
		TotalLayers: len(cfg.AllLayers()),
	}
	var fullBytes, dedupBytes int64
	var plainMem, dedupMem *storage.Mem

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fullBytes, plainMem = runIncrementalSaves(b, false)
		}
		record.NsPerOpFull = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(fullBytes), "bytes-written/op")
	})
	b.Run("dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dedupBytes, dedupMem = runIncrementalSaves(b, true)
		}
		record.NsPerOpDedup = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(dedupBytes), "bytes-written/op")
	})

	record.BytesWrittenFull = fullBytes
	record.BytesWrittenDedup = dedupBytes
	record.Reduction = float64(fullBytes) / float64(dedupBytes)
	b.ReportMetric(record.Reduction, "reduction-x")

	// Acceptance floor: ≥5× fewer bytes written with ≤20% of layers
	// changing per step.
	if record.Reduction < 5 {
		b.Fatalf("bytes-written reduction %.2fx < 5x (full %d, dedup %d)",
			record.Reduction, fullBytes, dedupBytes)
	}

	// Correctness side of the acceptance: the dedup run's checkpoints
	// materialize byte-identical to the plain run's containers.
	lastDir := fmt.Sprintf("run/checkpoint-%d", deltaSaves*100)
	if err := ckpt.MaterializeWeights(dedupMem, lastDir, "mat.ltsf", 0); err != nil {
		b.Fatal(err)
	}
	want, _ := plainMem.ReadFile(lastDir + "/model.ltsf")
	got, _ := dedupMem.ReadFile("mat.ltsf")
	if len(want) == 0 || !bytes.Equal(want, got) {
		b.Fatal("materialized dedup checkpoint differs from the plain save")
	}
	for r := 0; r < 2; r++ {
		if err := ckpt.MaterializeShardFile(dedupMem, lastDir, r, "mat.ltos", 0); err != nil {
			b.Fatal(err)
		}
		want, _ := plainMem.ReadFile(lastDir + "/" + ckpt.ShardFileName(r))
		got, _ := dedupMem.ReadFile("mat.ltos")
		if len(want) == 0 || !bytes.Equal(want, got) {
			b.Fatalf("materialized rank %d shard differs from the plain save", r)
		}
	}

	store := storage.NewBlobStore(dedupMem, "run/objects")
	blobs, _, _, err := store.List()
	if err != nil {
		b.Fatal(err)
	}
	record.BlobsStored = len(blobs)
	writeBenchJSON(b, "BENCH_delta.json", record)
}
