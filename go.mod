module llmtailor

go 1.24
