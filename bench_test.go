// Benchmark harness: one testing.B benchmark per paper table/figure, plus
// ablations for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem .
//
// Table/figure benches regenerate the corresponding experiment (at Quick
// scale for the live pipelines) once per iteration; micro-ablations measure
// the engine pieces the paper discusses (§4.1 regrouping, §4.2 parallel
// shard loading, §5.4 load orders).
package llmtailor_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/costmodel"
	"llmtailor/internal/experiments"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/strategy"
	"llmtailor/internal/tailor"
	"llmtailor/internal/tensor"
	"llmtailor/internal/train"
)

// --- Figures -------------------------------------------------------------

// BenchmarkFigure1ModelAnatomy enumerates the Llama-3.1-8B tensor inventory
// (the structure Figure 1 draws).
func BenchmarkFigure1ModelAnatomy(b *testing.B) {
	cfg := modelcfg.Llama31_8B()
	for i := 0; i < b.N; i++ {
		if n := len(cfg.Tensors()); n == 0 {
			b.Fatal("empty inventory")
		}
	}
}

// BenchmarkFigure2OptimizerAnatomy builds the classic 2-group AdamW layout
// (Figure 2).
func BenchmarkFigure2OptimizerAnatomy(b *testing.B) {
	cfg := modelcfg.Llama31_8B()
	for i := 0; i < b.N; i++ {
		if l := optim.NewTwoGroupLayout(cfg); l.NumGroups() != 2 {
			b.Fatal("bad layout")
		}
	}
}

// BenchmarkFigure3Regroup performs the 2-group -> 2L+x optimizer state
// regrouping on a live optimizer (Figure 3).
func BenchmarkFigure3Regroup(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	m, err := model.NewInitialized(cfg, tensor.BF16, 1)
	if err != nil {
		b.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewTwoGroupLayout(cfg), optim.DefaultHyper())
	if err != nil {
		b.Fatal(err)
	}
	target := optim.NewLayerwiseLayout(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optim.Regroup(o, target); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 1/2: use case 1 (parity) -------------------------------------

// BenchmarkTable1ParityLoss runs the full use-case-1 pipeline (train, crash,
// parity merge, resume) and checks the Table 1 property: final losses match.
func BenchmarkTable1ParityLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := experiments.RunUseCase1(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if d := u.Qwen.OrigLoss - u.Qwen.MergedLoss; d > 0.05 || d < -0.05 {
			b.Fatalf("table 1 violated: delta %v", d)
		}
	}
}

// BenchmarkTable2ParityEval scores the use-case-1 models on the synthetic
// five-benchmark suite (Table 2).
func BenchmarkTable2ParityEval(b *testing.B) {
	u, err := experiments.RunUseCase1(experiments.Quick())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(u)
		if len(t.Rows) != 4 {
			b.Fatal("bad table 2")
		}
	}
}

// --- Table 3: parity overhead ---------------------------------------------

// BenchmarkTable3ParityOverhead evaluates the analytic cost model for the
// full-vs-parity storage and checkpoint-time comparison (Table 3).
func BenchmarkTable3ParityOverhead(b *testing.B) {
	tb := costmodel.Paper()
	for i := 0; i < b.N; i++ {
		full := tb.Overhead(modelcfg.Llama31_8B(), train.CPT(), strategy.Full{}, 16, 100)
		parity := tb.Overhead(modelcfg.Llama31_8B(), train.CPT(), strategy.Parity{}, 16, 100)
		if parity.TotalGB*2 > full.TotalGB*1.01 {
			b.Fatal("parity not half")
		}
	}
}

// --- Tables 4/5: use case 2 (filter) --------------------------------------

// BenchmarkTable4FilterLoss runs the use-case-2 pipeline (Table 4).
func BenchmarkTable4FilterLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := experiments.RunUseCase2(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		if u.Llama.MergedLoss < u.Llama.OrigLoss-0.05 {
			b.Fatal("filter merge implausibly better than original")
		}
	}
}

// BenchmarkTable5FilterEval renders the use-case-2 benchmark grid (Table 5).
func BenchmarkTable5FilterEval(b *testing.B) {
	u, err := experiments.RunUseCase2(experiments.Quick())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Table5(u)
		if len(t.Rows) != 4 {
			b.Fatal("bad table 5")
		}
	}
}

// --- Table 6: filtered overhead --------------------------------------------

// BenchmarkTable6FilterOverhead evaluates the filtered-checkpoint size model
// (Table 6; paper: 4.3x reduction on Llama-3.1-8B).
func BenchmarkTable6FilterOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		filtered := costmodel.StrategyRunBytes(modelcfg.Llama31_8B(), strategy.NewFilter(), 16)
		full := costmodel.StrategyRunBytes(modelcfg.Llama31_8B(), strategy.Full{}, 16)
		if r := float64(full) / float64(filtered); r < 3.5 {
			b.Fatalf("reduction %v", r)
		}
	}
}

// --- Table 7: loading strategies -------------------------------------------

// BenchmarkTable7LoadStrategies measures the live merge engine under the
// paper's four load scenarios on the scaled substrate (Table 7's shape).
func BenchmarkTable7LoadStrategies(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	back := storage.NewMem()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 42)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{100, 200} {
		if err := ckpt.Save(back, ckpt.SaveSpec{
			Dir: ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			State: ckpt.TrainerState{Step: step, Seed: 42},
		}); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("baseline-restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ckpt.Restore(back, "checkpoint-200", tensor.BF16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge-2-straightforward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := recipe.Parity("checkpoint-100", "checkpoint-200", cfg, "out")
			if _, err := tailor.Merge(back, rec, tailor.Options{Workers: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge-2-interleaved-parity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := recipe.Parity("checkpoint-100", "checkpoint-200", cfg, "out")
			if _, err := tailor.Merge(back, rec, tailor.Options{Workers: 2, LoadOrder: tailor.Interleaved}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Streaming merge: before/after -----------------------------------------

// setupMergeBench saves two full checkpoints of the scaled 1B geometry and
// returns the backend plus a parity recipe factory.
func setupMergeBench(b *testing.B) (*modelcfg.Config, *storage.Mem) {
	b.Helper()
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	back := storage.NewMem()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 42)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{100, 200} {
		if err := ckpt.Save(back, ckpt.SaveSpec{
			Dir: ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			State: ckpt.TrainerState{Step: step, Seed: 42},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return cfg, back
}

// bufferedMergeWeights replays the seed's pre-streaming behaviour: every
// tensor of the output model is accumulated in memory and written as one
// in-memory container — the "before" of the streaming refactor.
func bufferedMergeWeights(back storage.Backend, plan *tailor.Plan) error {
	var tensors []*tensor.Tensor
	for _, spec := range plan.Config.Tensors() {
		src := plan.Sources[plan.Assign[spec.Layer]]
		t, err := src.Weights().ReadTensor(spec.Name)
		if err != nil {
			return err
		}
		tensors = append(tensors, t)
	}
	return ckpt.WriteLTSF(back, plan.Recipe.Output+"/model.ltsf", plan.Config.Name, tensors)
}

// BenchmarkMergeWeightsStreamedVsBuffered compares the streamed pipeline
// (bounded in-flight bytes, overlapped read/convert/write) against the
// seed's accumulate-everything approach on the weights hot path. -benchmem
// makes the peak-memory difference visible as B/op.
func BenchmarkMergeWeightsStreamedVsBuffered(b *testing.B) {
	cfg, back := setupMergeBench(b)

	b.Run("buffered-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := recipe.Parity(ckpt.DirName(100), ckpt.DirName(200), cfg, "out")
			rec.Optimizer = false
			plan, err := tailor.NewPlan(back, rec)
			if err != nil {
				b.Fatal(err)
			}
			if err := bufferedMergeWeights(back, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(benchName("streamed-workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec := recipe.Parity(ckpt.DirName(100), ckpt.DirName(200), cfg, "out")
				rec.Optimizer = false
				if _, err := tailor.Merge(back, rec, tailor.Options{
					Workers: workers, MaxInFlight: 8 << 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeFullStreamed runs the complete streamed merge (weights +
// optimizer + configs) and emits BENCH_merge.json, the perf record future
// PRs diff against. The parity recipe alternates layers between two
// sources, so every weight tensor rides the zero-decode raw path while the
// optimizer keeps the group-decode path (whole-shard copies need a single
// source) — the reported raw counters make that split visible.
func BenchmarkMergeFullStreamed(b *testing.B) {
	cfg, back := setupMergeBench(b)
	var last *tailor.Stats
	for i := 0; i < b.N; i++ {
		rec := recipe.Parity(ckpt.DirName(100), ckpt.DirName(200), cfg, "out")
		stats, err := tailor.Merge(back, rec, tailor.Options{Workers: 4, MaxInFlight: 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		last = stats
	}
	b.ReportMetric(float64(last.PeakInFlightBytes), "peak-inflight-bytes")
	b.ReportMetric(float64(last.BytesRead), "bytes-read/op")
	b.ReportMetric(float64(last.BytesWritten), "bytes-written/op")
	b.ReportMetric(float64(last.TensorsRawCopied), "tensors-raw-copied")
	b.ReportMetric(float64(last.BytesRawCopied), "bytes-raw-copied/op")
	writeBenchJSON(b, "BENCH_merge.json", mergeBenchRecord{
		Bench:   "merge-full-streamed",
		Model:   cfg.Name,
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Stats:   statsFields(last), MaxInFlight: 8 << 20, Workers: 4,
	})
}

// BenchmarkMergeRawVsDecode runs the passthrough-heavy shape the fast path
// exists for — every layer from one source, optimizer included, so both
// the tensor-extent and the whole-shard raw copies arm — against the same
// recipe with the fast path disabled, and emits BENCH_merge_raw.json
// recording both sides.
func BenchmarkMergeRawVsDecode(b *testing.B) {
	cfg, back := setupMergeBench(b)
	mkRec := func() *recipe.Recipe {
		return &recipe.Recipe{
			MergeMethod: "passthrough",
			Base:        ckpt.DirName(200),
			Optimizer:   true,
			Output:      "out-raw",
		}
	}
	run := func(b *testing.B, noRaw bool) (*tailor.Stats, float64) {
		var last *tailor.Stats
		for i := 0; i < b.N; i++ {
			stats, err := tailor.Merge(back, mkRec(), tailor.Options{
				Workers: 4, MaxInFlight: 8 << 20, NoRawCopy: noRaw,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = stats
		}
		return last, float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}

	var record rawBenchRecord
	record.Bench = "merge-raw-vs-decode"
	record.Model = cfg.Name
	record.MaxInFlight = 8 << 20
	record.Workers = 4
	b.Run("raw", func(b *testing.B) {
		stats, ns := run(b, false)
		if stats.TensorsRawCopied == 0 || stats.ShardsRawCopied == 0 {
			b.Fatalf("raw paths did not arm: %+v", stats)
		}
		b.ReportMetric(float64(stats.BytesRawCopied), "bytes-raw-copied/op")
		record.Raw = mergeBenchRecord{NsPerOp: ns, Stats: statsFields(stats)}
	})
	b.Run("decode", func(b *testing.B) {
		stats, ns := run(b, true)
		if stats.TensorsRawCopied != 0 || stats.ShardsRawCopied != 0 {
			b.Fatalf("NoRawCopy run raw-copied: %+v", stats)
		}
		record.Decode = mergeBenchRecord{NsPerOp: ns, Stats: statsFields(stats)}
	})
	if record.Raw.NsPerOp > 0 && record.Decode.NsPerOp > 0 {
		record.Speedup = record.Decode.NsPerOp / record.Raw.NsPerOp
		writeBenchJSON(b, "BENCH_merge_raw.json", record)
	}
}

// statsFields extracts the Stats counters shared by the bench records.
func statsFields(s *tailor.Stats) mergeStatsRecord {
	return mergeStatsRecord{
		TensorsRead:       s.TensorsRead,
		TensorsRawCopied:  s.TensorsRawCopied,
		ShardFileLoads:    s.ShardFileLoads,
		ShardsRawCopied:   s.ShardsRawCopied,
		BytesRead:         s.BytesRead,
		BytesWritten:      s.BytesWritten,
		BytesRawCopied:    s.BytesRawCopied,
		PeakInFlightBytes: s.PeakInFlightBytes,
	}
}

// mergeStatsRecord mirrors tailor.Stats in the bench JSON records.
type mergeStatsRecord struct {
	TensorsRead       int   `json:"tensors_read"`
	TensorsRawCopied  int   `json:"tensors_raw_copied"`
	ShardFileLoads    int64 `json:"shard_file_loads"`
	ShardsRawCopied   int   `json:"shards_raw_copied"`
	BytesRead         int64 `json:"bytes_read"`
	BytesWritten      int64 `json:"bytes_written"`
	BytesRawCopied    int64 `json:"bytes_raw_copied"`
	PeakInFlightBytes int64 `json:"peak_inflight_bytes"`
}

// mergeBenchRecord is the schema of BENCH_merge.json (and of each side of
// BENCH_merge_raw.json).
type mergeBenchRecord struct {
	Bench       string           `json:"bench,omitempty"`
	Model       string           `json:"model,omitempty"`
	NsPerOp     float64          `json:"ns_per_op"`
	Stats       mergeStatsRecord `json:"stats"`
	MaxInFlight int64            `json:"max_inflight,omitempty"`
	Workers     int              `json:"workers,omitempty"`
}

// rawBenchRecord is the schema of BENCH_merge_raw.json: the same recipe
// measured with the zero-decode fast path on and off.
type rawBenchRecord struct {
	Bench       string           `json:"bench"`
	Model       string           `json:"model"`
	MaxInFlight int64            `json:"max_inflight"`
	Workers     int              `json:"workers"`
	Raw         mergeBenchRecord `json:"raw"`
	Decode      mergeBenchRecord `json:"decode"`
	// Speedup is decode ns/op over raw ns/op (>1 means the fast path won).
	Speedup float64 `json:"speedup"`
}

// writeBenchJSON refreshes a perf-record file. Records are only written
// when BENCH_RECORD is set (the bench-record make target sets it), so CI's
// bench-smoke pass — one noisy iteration of everything — never clobbers
// the committed records.
func writeBenchJSON(b *testing.B, name string, v any) {
	b.Helper()
	if os.Getenv("BENCH_RECORD") == "" {
		b.Logf("%s not refreshed (set BENCH_RECORD=1 to write perf records)", name)
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		b.Logf("bench record not written: %v", err)
	}
}

// --- Motivation and ablations ----------------------------------------------

// BenchmarkLayerUpdateNonuniformity runs the telemetry experiment behind the
// paper's motivation (non-uniform per-layer updates).
func BenchmarkLayerUpdateNonuniformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LayerDrift(experiments.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelLoadWorkers measures merge wall time vs worker
// count — the §4.2 claim that parallel shard loading cuts merge latency.
func BenchmarkAblationParallelLoadWorkers(b *testing.B) {
	cfg := modelcfg.Llama31_8B().DefaultSimScale()
	back := storage.NewMem()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 42)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{100, 200} {
		if err := ckpt.Save(back, ckpt.SaveSpec{
			Dir: ckpt.DirName(step), Model: m, Optim: o, WorldSize: 8,
			State: ckpt.TrainerState{Step: step, Seed: 42},
		}); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec := recipe.Parity("checkpoint-100", "checkpoint-200", cfg, "out")
				if _, err := tailor.Merge(back, rec, tailor.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRegroupOverhead quantifies §4.1's "small amount of
// computational overhead": an optimizer step under the 2-group vs the
// layerwise (2L+x) layout.
func BenchmarkAblationRegroupOverhead(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	for _, kind := range []optim.LayoutKind{optim.TwoGroup, optim.Layerwise} {
		b.Run(kind.String(), func(b *testing.B) {
			m, _ := model.NewInitialized(cfg, tensor.BF16, 1)
			var layout *optim.Layout
			if kind == optim.TwoGroup {
				layout = optim.NewTwoGroupLayout(cfg)
			} else {
				layout = optim.NewLayerwiseLayout(cfg)
			}
			o, _ := optim.NewAdamW(m, layout, optim.DefaultHyper())
			grads := optim.GradMap{}
			for _, ts := range m.Tensors() {
				grads[ts.Name] = make([]float32, ts.Len())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.Step(1e-3, grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicAPIMergeRoundtrip exercises the facade end to end on a tiny
// model: save two checkpoints, merge via the public API, restore.
func BenchmarkPublicAPIMergeRoundtrip(b *testing.B) {
	back := llmtailor.NewMemBackend()
	cfg, err := llmtailor.ModelByName("tiny")
	if err != nil {
		b.Fatal(err)
	}
	m, _ := model.NewInitialized(cfg, tensor.BF16, 9)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{10, 20} {
		if err := ckpt.Save(back, ckpt.SaveSpec{
			Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			State: ckpt.TrainerState{Step: step, Seed: 9},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := llmtailor.ParityRecipe("run/checkpoint-10", "run/checkpoint-20", cfg, "run/merged")
		if _, err := llmtailor.Merge(back, rec, llmtailor.MergeOptions{Workers: 2}); err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := ckpt.Restore(back, "run/merged", tensor.BF16); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}
