package llmtailor

import (
	"llmtailor/internal/ckpt"
	"llmtailor/internal/hub"
	"llmtailor/internal/reshard"
	"llmtailor/internal/storage"
	"llmtailor/internal/train"
)

// Store is the handle-based entry point to everything that lives on one
// storage backend: runs (checkpoint roots) and hubs (shared blob stores).
// It replaces the free-function surface — each former top-level maintenance
// function is now a method on the Run or Hub handle it operates on, with
// uniform Options structs instead of positional flags.
//
//	st, _ := llmtailor.Open("/data")
//	run := st.Run("sft-run")
//	rep, _ := run.GC(llmtailor.GCOptions{Full: true})
//	scan, _ := run.Scan(llmtailor.ScanOptions{Blobs: true, Refs: true})
type Store struct {
	b Backend
}

// Open returns a Store over an OS directory root.
func Open(root string) (*Store, error) {
	b, err := storage.NewOS(root)
	if err != nil {
		return nil, err
	}
	return &Store{b: b}, nil
}

// NewStore wraps an existing Backend (memory backends, fault injectors,
// remote stores) in the handle API.
func NewStore(b Backend) *Store { return &Store{b: b} }

// Backend exposes the store's underlying backend for code that still needs
// the raw surface (merges, trainers, inspection).
func (s *Store) Backend() Backend { return s.b }

// Run returns the handle for one run root — a directory of checkpoint
// dirs with a latest pointer and (for dedup saves) an objects store that
// is either run-local or redirected to a hub.
func (s *Store) Run(root string) *Run { return &Run{b: s.b, root: root} }

// Hub returns the handle for a checkpoint hub root — one shared
// content-addressed store any number of runs attach to.
func (s *Store) Hub(root string) *Hub { return &Hub{b: s.b, root: root} }

// Run is the handle for one run root. All maintenance that used to be a
// free function taking (Backend, runRoot) lives here.
type Run struct {
	b    Backend
	root string
}

// Root returns the run root path the handle was opened with.
func (r *Run) Root() string { return r.root }

// dir resolves a checkpoint name ("checkpoint-100") under the run root.
func (r *Run) dir(name string) string {
	if r.root == "" {
		return name
	}
	return r.root + "/" + name
}

// objects resolves the run's objects directory (pre-hub-resolution).
func (r *Run) objects() string { return r.dir(ckpt.ObjectsDirName) }

// GCOptions selects a garbage-collection flavour. The zero value is the
// incremental generational sweep — the cheap, routinely-run pass. Full
// switches to the mark-and-sweep verification pass that re-derives all
// references from manifests and validates the ref index. DryRun reports
// without mutating in either mode.
type GCOptions struct {
	Full   bool
	DryRun bool
}

// GC collects dead blobs from the run's store (the shared hub store when
// the run is attached — peer runs' references pin; see DESIGN.md
// "Checkpoint hub"). It consolidates the former GCCheckpointBlobs,
// GCCheckpointBlobsDryRun and GCRetiredGenerations entry points.
func (r *Run) GC(opts GCOptions) (*BlobGCReport, error) {
	switch {
	case opts.Full && opts.DryRun:
		return ckpt.GCDryRun(r.b, r.root)
	case opts.Full:
		return ckpt.GC(r.b, r.root)
	default:
		return ckpt.GCGenerational(r.b, r.root, opts.DryRun)
	}
}

// ScanOptions selects which doctor views Scan collects beyond the always-on
// directory classification.
type ScanOptions struct {
	Blobs  bool
	Refs   bool
	Codecs bool
}

// ScanReport aggregates the doctor views of one run root. Dirs is always
// populated; the other slices only when requested via ScanOptions.
type ScanReport struct {
	Dirs   []CheckpointStatus
	Blobs  []BlobStatus
	Refs   []RefStatus
	Codecs []CodecHealth
}

// Scan classifies the run root: checkpoint directories always, and on
// request the blob store, ref index and codec health. It consolidates the
// former ScanCheckpoints / ScanCheckpointBlobs / ScanCheckpointRefs /
// ScanCheckpointCodecs family.
func (r *Run) Scan(opts ScanOptions) (*ScanReport, error) {
	rep := &ScanReport{}
	var err error
	if rep.Dirs, err = ckpt.Scan(r.b, r.root); err != nil {
		return nil, err
	}
	if opts.Blobs {
		if rep.Blobs, err = ckpt.ScanBlobs(r.b, r.root); err != nil {
			return nil, err
		}
	}
	if opts.Refs {
		if rep.Refs, err = ckpt.ScanRefs(r.b, r.root); err != nil {
			return nil, err
		}
	}
	if opts.Codecs {
		if rep.Codecs, err = ckpt.ScanCodecs(r.b, r.root); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RetainOptions parameterises a keep-last retention pass.
type RetainOptions struct {
	KeepLast int
	DryRun   bool
}

// Retain keeps the newest KeepLast committed checkpoints, retires the rest
// and generationally sweeps the blobs whose youngest reference died with
// them. The latest pointer's target is never removed.
func (r *Run) Retain(opts RetainOptions) (*RetainReport, error) {
	return ckpt.Retain(r.b, r.root, opts.KeepLast, opts.DryRun)
}

// Repair removes torn checkpoints and orphaned staging directories and
// re-aims the latest pointer at the newest committed checkpoint.
func (r *Run) Repair() (*RepairReport, error) { return ckpt.Repair(r.b, r.root) }

// Adopt runs the adopt-or-quarantine migration over pre-commit-protocol
// checkpoints.
func (r *Run) Adopt() (*AdoptReport, error) { return ckpt.AdoptAll(r.b, r.root) }

// ReconcileRefs rebuilds the journaled ref index from the manifests.
func (r *Run) ReconcileRefs() (*RefReconcileReport, error) {
	return ckpt.ReconcileRefIndex(r.b, r.root)
}

// Latest resolves the run's "latest" pointer.
func (r *Run) Latest() (string, error) { return ckpt.Latest(r.b, r.root) }

// List returns the run's checkpoint directories sorted by step.
func (r *Run) List() ([]string, error) { return ckpt.List(r.b, r.root) }

// Shards reports the digest-prefix fan-out of the run's content-addressed
// store (the hub's when attached): the shard count under the sharded
// layout, 0 for the flat layout. Unlike the deprecated BlobShards free
// function it surfaces store-open errors — a corrupt shards.json is a
// configuration problem, not a flat layout.
func (r *Run) Shards() (int, error) {
	cas, err := storage.OpenCAS(r.b, r.objects())
	if err != nil {
		return 0, err
	}
	if ss, ok := cas.(*storage.ShardedStore); ok {
		return ss.Shards(), nil
	}
	return 0, nil
}

// HubAttachment reports the hub this run is attached to ("" when the run
// has a run-local store) and its id under that hub.
func (r *Run) HubAttachment() (hubRoot, runID string, err error) {
	ref, err := storage.ReadHubRef(r.b, r.objects())
	if err != nil || ref == nil {
		return "", "", err
	}
	return ref.Hub, ref.Run, nil
}

// Resume continues the run from its newest committed checkpoint, falling
// back to older committed checkpoints when the newest cannot restore.
func (r *Run) Resume(cfg TrainerConfig) (*Trainer, error) {
	return train.ResumeLatest(cfg, r.b, r.root)
}

// ResumeFrom continues the run from one named checkpoint.
func (r *Run) ResumeFrom(cfg TrainerConfig, name string) (*Trainer, error) {
	return train.Resume(cfg, r.b, r.dir(name))
}

// DedupifyOptions tunes a plain-to-dedup conversion. ChunkBytes sets the
// streaming I/O chunk size (0 = default), matching the MergeOptions /
// ReshardOptions knob of the same name.
type DedupifyOptions struct {
	ChunkBytes int
}

// Dedupify converts the named committed plain checkpoint to
// content-addressed form in place.
func (r *Run) Dedupify(name string, opts DedupifyOptions) (*DedupifyReport, error) {
	return ckpt.Dedupify(r.b, r.dir(name), opts.ChunkBytes)
}

// MaterializeOptions tunes a dedup-to-container materialisation.
// ChunkBytes sets the streaming I/O chunk size (0 = default).
type MaterializeOptions struct {
	ChunkBytes int
}

// MaterializeWeights writes a full model.ltsf container at dst from the
// named dedup checkpoint, byte-identical to a plain save of the same state.
func (r *Run) MaterializeWeights(name, dst string, opts MaterializeOptions) error {
	return ckpt.MaterializeWeights(r.b, r.dir(name), dst, opts.ChunkBytes)
}

// MaterializeOptimShard writes one rank's full .ltos container at dst from
// the named dedup checkpoint.
func (r *Run) MaterializeOptimShard(name string, rank int, dst string, opts MaterializeOptions) error {
	return ckpt.MaterializeShardFile(r.b, r.dir(name), rank, dst, opts.ChunkBytes)
}

// Reshard repartitions the named committed checkpoint into dstName at
// another world size, committing under the standard protocol.
func (r *Run) Reshard(srcName, dstName string, worldSize int, opts ReshardOptions) (*ReshardStats, error) {
	return reshard.Reshard(r.b, r.dir(srcName), r.dir(dstName), worldSize, opts)
}

// Reshard is the store-level two-path form of Run.Reshard: source and
// destination may live under different run roots.
func (s *Store) Reshard(srcDir, dstDir string, worldSize int, opts ReshardOptions) (*ReshardStats, error) {
	return reshard.Reshard(s.b, srcDir, dstDir, worldSize, opts)
}

// Hub is the handle for a checkpoint hub: one shared content-addressed
// blob store (plus per-run ref-journal namespaces and a run registry)
// serving any number of attached run roots. See DESIGN.md "Checkpoint
// hub" for the layout and the union-pin GC rule.
type Hub struct {
	b    Backend
	root string
}

// Root returns the hub root path the handle was opened with.
func (h *Hub) Root() string { return h.root }

// HubOptions parameterises Hub.Init. Shards > 0 initialises the shared
// store with that many digest shards; 0 keeps the flat layout.
type HubOptions struct {
	Shards int
}

// Init creates the hub (idempotent for an existing one).
func (h *Hub) Init(opts HubOptions) error {
	return hub.Init(h.b, h.root, hub.Options{Shards: opts.Shards})
}

// Attach registers runRoot under the hub as id ("" = the root's base name)
// and redirects its objects store to the hub. Runs with existing local
// blobs are refused — migrate first.
func (h *Hub) Attach(runRoot, id string) error { return hub.Attach(h.b, h.root, runRoot, id) }

// Detach unregisters runRoot from the hub. While the run still references
// hub blobs it is refused unless force is set; force abandons the claims.
func (h *Hub) Detach(runRoot string, force bool) error { return hub.Detach(h.b, runRoot, force) }

// Stat reports the hub's attached runs and shared-store footprint.
func (h *Hub) Stat() (*HubInfo, error) { return hub.Stat(h.b, h.root) }

// GC is the hub-level union-pin collection: one sweep of the shared store
// keeping every digest referenced by ANY attached run.
func (h *Hub) GC(dryRun bool) (*HubGCReport, error) { return hub.GC(h.b, h.root, dryRun) }

// Hub-related re-exports.
type (
	// HubInfo summarises a hub: attached runs, shard layout, store footprint.
	HubInfo = hub.Info
	// HubRunInfo summarises one attached run inside a HubInfo.
	HubRunInfo = hub.RunInfo
	// HubGCReport records what a hub-level garbage collection did.
	HubGCReport = ckpt.HubGCReport
	// DedupifyReport accounts a plain-to-dedup conversion (blobs written
	// versus reused, payload bytes deduplicated).
	DedupifyReport = ckpt.DedupifyReport
)
