// BenchmarkObjStoreMultipart measures what parallel multipart streaming
// buys over a serial whole-object PUT on a latency- and bandwidth-shaped
// object store: the payload is split into parts uploaded by concurrent
// workers (each overlapping its share of the simulated link), then stitched
// server-side with one Compose call. It emits BENCH_objstore.json with the
// measured speedup and asserts the ≥2× acceptance floor inline, so the
// perf property is CI-checked on every bench-smoke pass.
package llmtailor_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"llmtailor/internal/storage"
)

const (
	objBenchPayloadBytes = 8 << 20
	objBenchPartBytes    = 1 << 20
	objBenchWorkers      = 8
	objBenchLatency      = 200 * time.Microsecond
	objBenchBandwidth    = 256 << 20 // bytes/s across the simulated link
)

type objstoreBenchRecord struct {
	Bench        string  `json:"bench"`
	PayloadBytes int64   `json:"payload_bytes"`
	PartBytes    int64   `json:"part_bytes"`
	Workers      int     `json:"workers"`
	LatencyUS    float64 `json:"latency_us"`
	BandwidthBps float64 `json:"bandwidth_bps"`
	SerialNsOp   float64 `json:"serial_ns_per_op"`
	MultiNsOp    float64 `json:"multipart_ns_per_op"`
	Speedup      float64 `json:"speedup"`
}

func BenchmarkObjStoreMultipart(b *testing.B) {
	payload := make([]byte, objBenchPayloadBytes)
	rand.New(rand.NewSource(23)).Read(payload)

	// put streams the payload once; opts chooses serial (one part) or
	// parallel multipart. A fresh store per iteration keeps every PUT a
	// first write, never an overwrite of a cached object.
	put := func(b *testing.B, opts storage.MultipartOptions) float64 {
		b.Helper()
		for i := 0; i < b.N; i++ {
			obj := storage.NewObjStore()
			obj.SetLatency(objBenchLatency, objBenchBandwidth)
			dst := fmt.Sprintf("objects/blob-%d", i)
			if err := storage.MultipartPut(obj, dst, bytes.NewReader(payload),
				objBenchPayloadBytes, opts); err != nil {
				b.Fatal(err)
			}
			if n, err := obj.Stat(dst); err != nil || n != objBenchPayloadBytes {
				b.Fatalf("put landed %d bytes, %v", n, err)
			}
		}
		return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}

	record := objstoreBenchRecord{
		Bench:        "objstore-multipart-vs-serial",
		PayloadBytes: objBenchPayloadBytes,
		PartBytes:    objBenchPartBytes,
		Workers:      objBenchWorkers,
		LatencyUS:    float64(objBenchLatency.Microseconds()),
		BandwidthBps: objBenchBandwidth,
	}
	b.Run("serial", func(b *testing.B) {
		// PartBytes covering the whole payload forces the single-PUT path.
		record.SerialNsOp = put(b, storage.MultipartOptions{PartBytes: objBenchPayloadBytes})
	})
	b.Run("multipart", func(b *testing.B) {
		record.MultiNsOp = put(b, storage.MultipartOptions{
			PartBytes: objBenchPartBytes, Workers: objBenchWorkers,
			PartPrefix: "objects/.stage/mp-",
		})
	})
	if record.SerialNsOp > 0 && record.MultiNsOp > 0 {
		record.Speedup = record.SerialNsOp / record.MultiNsOp
		b.ReportMetric(record.Speedup, "speedup")
		if record.Speedup < 2 {
			b.Fatalf("multipart speedup %.2fx below the 2x acceptance floor", record.Speedup)
		}
		writeBenchJSON(b, "BENCH_objstore.json", record)
	}
}
