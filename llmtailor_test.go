package llmtailor_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"llmtailor"
	"llmtailor/internal/train"
)

// Crash-recovery end to end through the public facade on a real OS-backed
// directory: a save crashes via the fault injector, the doctor surface
// (ScanCheckpoints / RepairCheckpoints) cleans the root, and
// ResumeLatestTrainer continues from the last committed checkpoint.
func TestFacadeCrashRecoveryOnDisk(t *testing.T) {
	root := t.TempDir()
	back, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := llmtailor.ModelByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	task, err := train.TaskByName("sft")
	if err != nil {
		t.Fatal(err)
	}
	base := llmtailor.TrainerConfig{
		Model: cfg, Seed: 6, Task: task,
		TotalSteps: 30, WarmupSteps: 4, BaseLR: 2e-3,
		CkptInterval: 10, WorldSize: 2, RunRoot: "run",
	}

	// Train to the first checkpoint, then crash the second save mid-write
	// with torn bytes.
	first := base
	first.FailAt = 12
	tr, err := llmtailor.NewTrainer(first, back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	faulty := llmtailor.NewFaultBackend(back)
	faulty.SetTorn(true)
	cont, err := llmtailor.ResumeLatestTrainer(base, faulty, "run")
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailAt(7)
	if _, err := cont.Run(); err == nil {
		t.Fatal("run survived the injected crash")
	}

	// The crash left residue the scan sees and repair removes.
	statuses, err := llmtailor.ScanCheckpoints(back, "run")
	if err != nil {
		t.Fatal(err)
	}
	committed, other := 0, 0
	for _, st := range statuses {
		if st.State == llmtailor.StateCommitted {
			committed++
		} else {
			other++
		}
	}
	if committed != 1 || other == 0 {
		t.Fatalf("scan after crash: %d committed, %d residue (%+v)", committed, other, statuses)
	}
	if _, err := llmtailor.RepairCheckpoints(back, "run"); err != nil {
		t.Fatal(err)
	}

	// Recovery resumes from the committed step-10 checkpoint and finishes.
	rec, err := llmtailor.ResumeLatestTrainer(base, back, "run")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Step() != 10 {
		t.Fatalf("recovered at step %d, want 10", rec.Step())
	}
	res, err := rec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalStep != base.TotalSteps {
		t.Fatalf("recovered run stopped at %d", res.FinalStep)
	}
	if err := llmtailor.VerifyCommitted(back, "run/checkpoint-30"); err != nil {
		t.Fatal(err)
	}
}

// End-to-end through the public facade only: train with parity partials on a
// real OS-backed directory, crash, auto-generate a recipe, merge, resume,
// and verify the final loss matches an uninterrupted baseline.
func TestFacadeEndToEndOnDisk(t *testing.T) {
	root := t.TempDir()
	back, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := llmtailor.ModelByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	task, err := train.TaskByName("sft")
	if err != nil {
		t.Fatal(err)
	}
	parity, err := llmtailor.StrategyByName("parity")
	if err != nil {
		t.Fatal(err)
	}

	base := llmtailor.TrainerConfig{
		Model: cfg, Seed: 5, Task: task,
		TotalSteps: 90, WarmupSteps: 4, BaseLR: 2e-3,
		CkptInterval: 9, WorldSize: 2, RunRoot: "run",
	}

	// Baseline in memory.
	mem := llmtailor.NewMemBackend()
	trA, err := llmtailor.NewTrainer(base, mem)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := trA.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Crashing parity run on disk.
	cfgB := base
	cfgB.Strategy = parity
	cfgB.FailAt = 58
	trB, err := llmtailor.NewTrainer(cfgB, back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trB.Run(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint directories actually exist on disk.
	if _, err := os.Stat(filepath.Join(root, "run", "checkpoint-54", "model.ltsf")); err != nil {
		t.Fatal(err)
	}

	dirs, err := llmtailor.ListCheckpoints(back, "run")
	if err != nil || len(dirs) != 6 {
		t.Fatalf("checkpoints = %v, %v", dirs, err)
	}
	latest, err := llmtailor.LatestCheckpoint(back, "run")
	if err != nil || latest != "run/checkpoint-54" {
		t.Fatalf("latest = %q, %v", latest, err)
	}

	rec, err := llmtailor.RecipeFromManifests(back, "run", 0, cfg, "run/merged")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := llmtailor.NewPlan(back, rec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Describe() == "" {
		t.Fatal("empty plan description")
	}
	if _, err := llmtailor.Merge(back, rec, llmtailor.MergeOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	c, err := llmtailor.OpenCheckpoint(back, "run/merged")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Manifest.Complete {
		t.Fatal("merged checkpoint not complete")
	}

	trC, err := llmtailor.ResumeTrainer(base, back, "run/merged")
	if err != nil {
		t.Fatal(err)
	}
	resC, err := trC.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(resC.FinalLoss - resA.FinalLoss); d > 0.03 {
		t.Fatalf("facade parity recovery loss delta %v (orig %v merged %v)", d, resA.FinalLoss, resC.FinalLoss)
	}
}

// The format-stability roundtrip the streaming refactor must preserve: a
// merge run under a tight MaxInFlight byte budget produces a checkpoint
// that resumes training through the public facade, and its weight file is
// byte-identical to an unbounded merge's.
func TestStreamedMergeOutputResumesTraining(t *testing.T) {
	back := llmtailor.NewMemBackend()
	cfg, err := llmtailor.ModelByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	task, err := train.TaskByName("sft")
	if err != nil {
		t.Fatal(err)
	}
	base := llmtailor.TrainerConfig{
		Model: cfg, Seed: 11, Task: task,
		TotalSteps: 40, WarmupSteps: 4, BaseLR: 2e-3,
		CkptInterval: 10, WorldSize: 2, RunRoot: "run",
	}
	tr, err := llmtailor.NewTrainer(base, back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}

	rec := llmtailor.ParityRecipe("run/checkpoint-30", "run/checkpoint-40", cfg, "run/merged")
	stats, err := llmtailor.Merge(back, rec, llmtailor.MergeOptions{
		Workers: 4, MaxInFlight: 1 << 17, ChunkBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakInFlightBytes <= 0 || stats.PeakInFlightBytes > 1<<17 {
		t.Fatalf("peak in-flight %d outside (0, %d]", stats.PeakInFlightBytes, 1<<17)
	}

	rec2 := llmtailor.ParityRecipe("run/checkpoint-30", "run/checkpoint-40", cfg, "run/merged-unbounded")
	if _, err := llmtailor.Merge(back, rec2, llmtailor.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	a, err := back.ReadFile("run/merged/model.ltsf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ReadFile("run/merged-unbounded/model.ltsf")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("bounded and unbounded merges produced different weight files")
	}

	trC, err := llmtailor.ResumeTrainer(base, back, "run/merged")
	if err != nil {
		t.Fatal(err)
	}
	res, err := trC.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalStep != base.TotalSteps {
		t.Fatalf("resumed run ended at step %d, want %d", res.FinalStep, base.TotalSteps)
	}
}

func TestFacadeRecipeParsing(t *testing.T) {
	rec, err := llmtailor.ParseRecipe([]byte("base_checkpoint: a\noutput: b\ntailor:\n  optimizer: true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Base != "a" || !rec.Optimizer {
		t.Fatalf("recipe = %+v", rec)
	}
	if _, err := llmtailor.ParseRecipe([]byte("nonsense: [")); err == nil {
		t.Fatal("bad recipe accepted")
	}
}

func TestFacadeLookups(t *testing.T) {
	if _, err := llmtailor.ModelByName("nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := llmtailor.StrategyByName("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	cfg, err := llmtailor.ModelByName("qwen2.5-7b")
	if err != nil || cfg.NumLayers != 28 {
		t.Errorf("qwen preset: %+v, %v", cfg, err)
	}
}
