package main

import (
	"strings"
	"testing"
)

func TestFigure1Output(t *testing.T) {
	out := figure1()
	for _, want := range []string{"embed_tokens", "layer.0", "layer.31", "lm_head", "8.03B"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	out := figure2()
	for _, want := range []string{"2 parameter groups", "12 bytes/param", "7x model size"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure2 missing %q:\n%s", want, out)
		}
	}
}
