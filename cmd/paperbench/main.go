// Command paperbench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and writes the results under
// experiments/results/.
//
//	paperbench -exp all                 # everything (default)
//	paperbench -exp table1,table2      # use case 1 only
//	paperbench -exp table7 -scale paper-shape
//
// Experiments: figure1 figure2 figure3 table1 table2 table3 table4 table5
// table6 table7 table7live layerdrift.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"llmtailor/internal/experiments"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/report"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment list or 'all'")
	scaleFlag := flag.String("scale", "quick", "simulation scale: quick or paper-shape")
	outDir := flag.String("out", "experiments/results", "output directory ('' = stdout only)")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleFlag)
	if err != nil {
		fail(err)
	}
	selected := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }

	var outputs []namedOutput

	// Use-case pipelines are shared between their loss and eval tables.
	var uc1, uc2 *experiments.UseCase
	if want("table1") || want("table2") {
		fmt.Fprintln(os.Stderr, "running use case 1 (parity) ...")
		uc1, err = experiments.RunUseCase1(scale)
		if err != nil {
			fail(err)
		}
	}
	if want("table4") || want("table5") {
		fmt.Fprintln(os.Stderr, "running use case 2 (filter) ...")
		uc2, err = experiments.RunUseCase2(scale)
		if err != nil {
			fail(err)
		}
	}

	if want("figure1") {
		outputs = append(outputs, namedOutput{"figure1", figure1()})
	}
	if want("figure2") {
		outputs = append(outputs, namedOutput{"figure2", figure2()})
	}
	if want("figure3") {
		tb, before, after := experiments.Figure3()
		outputs = append(outputs, namedOutput{"figure3",
			tb.Render() + "\nBEFORE:\n" + before + "\nAFTER:\n" + after})
	}
	if want("table1") {
		outputs = append(outputs, tableOutput("table1", experiments.Table1(uc1)))
	}
	if want("table2") {
		outputs = append(outputs, tableOutput("table2", experiments.Table2(uc1)))
	}
	if want("table3") {
		outputs = append(outputs, tableOutput("table3", experiments.Table3()))
	}
	if want("table4") {
		outputs = append(outputs, tableOutput("table4", experiments.Table4(uc2)))
	}
	if want("table5") {
		outputs = append(outputs, tableOutput("table5", experiments.Table5(uc2)))
	}
	if want("table6") {
		outputs = append(outputs, tableOutput("table6", experiments.Table6()))
	}
	if want("table7") {
		outputs = append(outputs, tableOutput("table7", experiments.Table7()))
	}
	if want("table7live") {
		fmt.Fprintln(os.Stderr, "running live merge measurements ...")
		for _, cfg := range []*modelcfg.Config{modelcfg.Llama32_1B(), modelcfg.Llama31_8B()} {
			tb, err := experiments.Table7Live(cfg, scale.WorldSize)
			if err != nil {
				fail(err)
			}
			outputs = append(outputs, tableOutput("table7live-"+cfg.Name, tb))
		}
	}
	if want("layerdrift") {
		tb, err := experiments.LayerDrift(scale)
		if err != nil {
			fail(err)
		}
		outputs = append(outputs, tableOutput("layerdrift", tb))
	}

	if len(outputs) == 0 {
		fail(fmt.Errorf("no experiments selected by %q", *expFlag))
	}
	for _, o := range outputs {
		fmt.Println(o.content)
		if *outDir != "" {
			path := filepath.Join(*outDir, o.name+".txt")
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				fail(err)
			}
			if err := os.WriteFile(path, []byte(o.content+"\n"), 0o644); err != nil {
				fail(err)
			}
		}
	}
	if *outDir != "" {
		fmt.Fprintf(os.Stderr, "wrote %d result files under %s\n", len(outputs), *outDir)
	}
}

type namedOutput struct {
	name    string
	content string
}

func tableOutput(name string, t *report.Table) namedOutput {
	return namedOutput{name, t.Render()}
}

// figure1 renders the Llama-3.1-8B layer anatomy (the paper's Figure 1).
func figure1() string {
	cfg := modelcfg.Llama31_8B()
	t := report.New("Figure 1: layer-wise structure of "+cfg.Name,
		"Layer", "Tensors", "Params")
	for _, ref := range cfg.AllLayers() {
		var n int
		for _, s := range cfg.Tensors() {
			if s.Layer == ref {
				n++
			}
		}
		t.Add(ref.String(), report.Int(n), fmt.Sprintf("%d", cfg.LayerParamCount(ref)))
	}
	t.Note("total params: %d (%.2fB)", cfg.ParamCount(), float64(cfg.ParamCount())/1e9)
	return t.Render()
}

// figure2 renders the AdamW optimizer anatomy (the paper's Figure 2).
func figure2() string {
	cfg := modelcfg.Llama31_8B()
	layout := optim.NewTwoGroupLayout(cfg)
	var b strings.Builder
	b.WriteString("== Figure 2: AdamW optimizer layout (classic 2-group) ==\n")
	b.WriteString(layout.Describe())
	b.WriteString("\nper parameter group state (FP32, flattened):\n")
	b.WriteString("  master weights + exp_avg + exp_avg_sq = 12 bytes/param\n")
	b.WriteString("  + BF16 model weights 2 bytes/param => checkpoint ≈ 7x model size\n")
	return b.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
