package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/tensor"
)

// writeRun creates two full tiny checkpoints under root/run.
func writeRun(t *testing.T, root string) {
	t.Helper()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 3)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{10, 20} {
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", State: ckpt.TrainerState{Step: step, Seed: 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

const cliRecipe = `
merge_method: passthrough
base_checkpoint: run/checkpoint-20
slices:
  - sources:
      - checkpoint: run/checkpoint-10
        layer_range: [0, 2]
tailor:
  optimizer: true
output: run/merged
`

func TestCLIMergePlanVerifyInspect(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	recipePath := filepath.Join(root, "recipe.yaml")
	if err := os.WriteFile(recipePath, []byte(cliRecipe), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runPlan([]string{"-root", root, "-recipe", recipePath}); err != nil {
		t.Fatalf("plan: %v", err)
	}
	if err := runMerge([]string{"-root", root, "-recipe", recipePath, "-workers", "2"}); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "run", "merged", "model.ltsf")); err != nil {
		t.Fatal("merged output missing")
	}
	if err := runVerify([]string{"-root", root, "-ckpt", "run/merged"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := runInspect([]string{"-root", root, "-ckpt", "run/merged"}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestCLIMergeInterleaved(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	recipePath := filepath.Join(root, "recipe.yaml")
	os.WriteFile(recipePath, []byte(cliRecipe), 0o644)
	if err := runMerge([]string{"-root", root, "-recipe", recipePath, "-interleaved"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIGenRecipe(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	out := filepath.Join(root, "gen.yaml")
	err := runGenRecipe([]string{"-root", root, "-run", "run", "-model", "tiny",
		"-sim=false", "-output", "run/merged", "-write", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := llmtailor.ParseRecipe(data)
	if err != nil {
		t.Fatalf("generated recipe unparseable: %v\n%s", err, data)
	}
	if rec.Base != "run/checkpoint-20" {
		t.Fatalf("recipe base = %q", rec.Base)
	}
	// The generated recipe must actually merge.
	if err := runMerge([]string{"-root", root, "-recipe", out}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIDoctor(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	var out strings.Builder

	// Healthy root: zero problems (exit code 0 in main).
	problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out)
	if err != nil || problems != 0 {
		t.Fatalf("healthy doctor: %d problems, %v\n%s", problems, err, out.String())
	}
	if !strings.Contains(out.String(), "healthy") {
		t.Fatalf("output: %s", out.String())
	}

	// Tear a checkpoint and drop an orphan: doctor reports both without
	// -fix (main maps this to exit code 2).
	if err := os.Remove(filepath.Join(root, "run", "checkpoint-20", ckpt.CommitMarkerName)); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "run", "checkpoint-30.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	problems, err = runDoctor([]string{"-root", root, "-run", "run"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if problems != 2 {
		t.Fatalf("problems = %d, want 2\n%s", problems, out.String())
	}
	if !strings.Contains(out.String(), "torn") || !strings.Contains(out.String(), "orphaned-tmp") {
		t.Fatalf("output: %s", out.String())
	}
	// Report-only mode must not delete anything.
	if _, err := os.Stat(filepath.Join(root, "run", "checkpoint-20")); err != nil {
		t.Fatal("doctor without -fix removed a directory")
	}

	// -fix repairs and returns zero problems; a rescan stays healthy.
	out.Reset()
	problems, err = runDoctor([]string{"-root", root, "-run", "run", "-fix"}, &out)
	if err != nil || problems != 0 {
		t.Fatalf("fix doctor: %d problems, %v\n%s", problems, err, out.String())
	}
	if _, err := os.Stat(filepath.Join(root, "run", "checkpoint-20")); !os.IsNotExist(err) {
		t.Fatal("-fix left the torn checkpoint")
	}
	out.Reset()
	problems, err = runDoctor([]string{"-root", root, "-run", "run"}, &out)
	if err != nil || problems != 0 {
		t.Fatalf("post-fix doctor: %d problems, %v", problems, err)
	}
	// The pointer survived repair aimed at the committed checkpoint.
	data, err := os.ReadFile(filepath.Join(root, "run", "latest"))
	if err != nil || string(data) != "checkpoint-10" {
		t.Fatalf("latest = %q, %v", data, err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := runMerge([]string{"-recipe", "x"}); err == nil {
		t.Error("missing root accepted")
	}
	root := t.TempDir()
	if err := runMerge([]string{"-root", root}); err == nil {
		t.Error("missing recipe accepted")
	}
	if err := runInspect([]string{"-root", root}); err == nil {
		t.Error("missing ckpt accepted")
	}
	if err := runVerify([]string{"-root", root, "-ckpt", "absent"}); err == nil {
		t.Error("verify of absent checkpoint accepted")
	}
	if err := runGenRecipe([]string{"-root", root, "-run", "run", "-model", "tiny"}); err == nil {
		t.Error("gen-recipe without output accepted")
	}
}
