package main

import (
	"strings"
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/tensor"
)

func TestCLIReshard(t *testing.T) {
	root := t.TempDir()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 9)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err := ckpt.Save(b, ckpt.SaveSpec{
		Dir: "run/checkpoint-10", Model: m, Optim: o, WorldSize: 3,
		Strategy: "full", State: ckpt.TrainerState{Step: 10, Seed: 9},
	}); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = runReshard([]string{"-root", root, "-src", "run/checkpoint-10",
		"-out", "run/checkpoint-10-w2", "-world", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(world 3) -> run/checkpoint-10-w2 (world 2)") {
		t.Fatalf("output: %s", out.String())
	}

	// The output is a committed, restorable checkpoint at the new world.
	if err := ckpt.VerifyCommit(b, "run/checkpoint-10-w2"); err != nil {
		t.Fatal(err)
	}
	rm, _, c, err := ckpt.Restore(b, "run/checkpoint-10-w2", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if c.State.WorldSize != 2 || !model.Equal(rm, m) {
		t.Fatalf("resharded checkpoint wrong: world %d", c.State.WorldSize)
	}
	// The latest pointer moved to the resharded output.
	latest, err := ckpt.Latest(b, "run")
	if err != nil || latest != "run/checkpoint-10-w2" {
		t.Fatalf("latest = %q, %v", latest, err)
	}

	// Missing flags are rejected.
	if err := runReshard([]string{"-root", root, "-world", "2"}, &out); err == nil {
		t.Fatal("missing -src/-out accepted")
	}
	if err := runReshard([]string{"-root", root, "-src", "run/checkpoint-10",
		"-out", "x", "-world", "0"}, &out); err == nil {
		t.Fatal("world 0 accepted")
	}
}
