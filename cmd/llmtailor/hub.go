package main

import (
	"flag"
	"fmt"
	"io"

	"llmtailor"
)

// runHub dispatches the hub subcommands: one shared content-addressed
// store serving many run roots (init/attach/detach), plus maintenance over
// it (stat/gc). See DESIGN.md "Checkpoint hub".
func runHub(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("hub: missing subcommand (init|attach|detach|stat|gc)")
	}
	switch args[0] {
	case "init":
		return runHubInit(args[1:], out)
	case "attach":
		return runHubAttach(args[1:], out)
	case "detach":
		return runHubDetach(args[1:], out)
	case "stat":
		return runHubStat(args[1:], out)
	case "gc":
		return runHubGC(args[1:], out)
	default:
		return fmt.Errorf("hub: unknown subcommand %q (want init|attach|detach|stat|gc)", args[0])
	}
}

// hubHandle opens the store and resolves the -hub flag to a handle.
func hubHandle(root, hubRoot string) (*llmtailor.Store, *llmtailor.Hub, error) {
	b, err := openRoot(root)
	if err != nil {
		return nil, nil, err
	}
	if hubRoot == "" {
		return nil, nil, fmt.Errorf("missing -hub")
	}
	st := llmtailor.NewStore(b)
	return st, st.Hub(hubRoot), nil
}

func runHubInit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hub init", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	hubRoot := fs.String("hub", "", "hub root under the storage root")
	shards := fs.Int("shards", 0, "digest-prefix shard count for the shared store (0 = flat layout)")
	fs.Parse(args)

	_, h, err := hubHandle(*root, *hubRoot)
	if err != nil {
		return err
	}
	if err := h.Init(llmtailor.HubOptions{Shards: *shards}); err != nil {
		return err
	}
	fmt.Fprintf(out, "hub initialized at %s", *hubRoot)
	if *shards > 0 {
		fmt.Fprintf(out, " (%d shards)", *shards)
	}
	fmt.Fprintln(out)
	return nil
}

func runHubAttach(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hub attach", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	hubRoot := fs.String("hub", "", "hub root under the storage root")
	run := fs.String("run", "", "run root to attach")
	id := fs.String("id", "", "run id under the hub (default: the run root's base name)")
	fs.Parse(args)

	st, h, err := hubHandle(*root, *hubRoot)
	if err != nil {
		return err
	}
	if *run == "" {
		return fmt.Errorf("missing -run")
	}
	if err := h.Attach(*run, *id); err != nil {
		return err
	}
	_, attachedID, err := st.Run(*run).HubAttachment()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "attached %s to %s as %q\n", *run, *hubRoot, attachedID)
	return nil
}

func runHubDetach(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hub detach", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	hubRoot := fs.String("hub", "", "hub root under the storage root")
	run := fs.String("run", "", "run root to detach")
	force := fs.Bool("force", false, "detach even while the run still references hub blobs (abandons the claims)")
	fs.Parse(args)

	_, h, err := hubHandle(*root, *hubRoot)
	if err != nil {
		return err
	}
	if *run == "" {
		return fmt.Errorf("missing -run")
	}
	if err := h.Detach(*run, *force); err != nil {
		return err
	}
	fmt.Fprintf(out, "detached %s from %s\n", *run, *hubRoot)
	return nil
}

func runHubStat(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hub stat", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	hubRoot := fs.String("hub", "", "hub root under the storage root")
	fs.Parse(args)

	_, h, err := hubHandle(*root, *hubRoot)
	if err != nil {
		return err
	}
	info, err := h.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hub %s\n", info.Root)
	layout := "flat"
	if info.Shards > 0 {
		layout = fmt.Sprintf("%d digest-prefix shards", info.Shards)
	}
	fmt.Fprintf(out, "  store: %d blobs, %d bytes (%s)\n", info.Blobs, info.Bytes, layout)
	fmt.Fprintf(out, "  runs attached: %d\n", len(info.Runs))
	for _, r := range info.Runs {
		fmt.Fprintf(out, "    %-16s %s — %d checkpoints, %d referenced digests\n",
			r.ID, r.Root, r.Checkpoints, r.Referenced)
	}
	return nil
}

func runHubGC(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hub gc", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	hubRoot := fs.String("hub", "", "hub root under the storage root")
	dryRun := fs.Bool("dry-run", false, "report what the sweep would remove without removing anything")
	fs.Parse(args)

	_, h, err := hubHandle(*root, *hubRoot)
	if err != nil {
		return err
	}
	rep, err := h.GC(*dryRun)
	if err != nil {
		return err
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	for _, d := range rep.RemovedBlobs {
		fmt.Fprintf(out, "  %s blob %s\n", verb, d)
	}
	for _, p := range rep.RemovedStaging {
		fmt.Fprintf(out, "  %s staging %s\n", verb, p)
	}
	mode := "hub gc"
	if *dryRun {
		mode = "hub gc (dry run)"
	}
	fmt.Fprintf(out, "%s: %d runs, %d referenced digests, %d blobs examined, %d kept, %d removed (%d bytes freed)\n",
		mode, len(rep.Runs), rep.Referenced, rep.Examined, rep.Kept, len(rep.RemovedBlobs), rep.BytesFreed)
	return nil
}
