// Command llmtailor is the checkpoint-tailoring CLI: it plans and executes
// YAML merge recipes over checkpoint directories, inspects checkpoints, and
// auto-generates recipes from partial-checkpoint manifests.
//
// Usage:
//
//	llmtailor merge   -root DIR -recipe FILE [-workers N] [-interleaved]
//	llmtailor plan    -root DIR -recipe FILE
//	llmtailor inspect -root DIR -ckpt CHECKPOINT_DIR
//	llmtailor doctor  -root DIR [-run RUN_ROOT] [-fix]
//	llmtailor gen-recipe -root DIR -run RUN_ROOT -model NAME -fail-step N -output DIR [-write FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"llmtailor"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/tailor"
)

// exitProblems is the doctor exit code when uncommitted (torn / orphaned)
// checkpoint directories are found and not fixed; CI keys off it.
const exitProblems = 2

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merge":
		err = runMerge(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "gen-recipe":
		err = runGenRecipe(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "doctor":
		problems, derr := runDoctor(os.Args[2:], os.Stdout)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "llmtailor:", derr)
			os.Exit(1)
		}
		if problems > 0 {
			os.Exit(exitProblems)
		}
		return
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "llmtailor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmtailor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `llmtailor — layer-wise checkpoint tailoring

commands:
  merge       execute a YAML merge recipe; tensors whose stored dtype
              already matches the output (and, for single-source recipes,
              whole optimizer shard files) are raw-copied without decoding
              — the reported "raw-copied" stats count them; -no-raw-copy
              forces the decode path (identical output bytes)
  plan        validate a recipe and print the merge plan (dry run)
  inspect     print a checkpoint's anatomy
  verify      re-read a checkpoint end to end and check consistency
  doctor      classify checkpoints (committed / torn / orphaned staging)
              and optionally repair the run root; exits 0 when healthy,
              2 when problems were found and left in place
  gen-recipe  build a recipe from partial-checkpoint manifests

examples:
  llmtailor doctor -root /data -run sft-run        # report only
  llmtailor doctor -root /data -run sft-run -fix   # remove torn/orphaned
                                                   # dirs, re-aim 'latest'`)
}

func openRoot(root string) (llmtailor.Backend, error) {
	if root == "" {
		return nil, fmt.Errorf("missing -root")
	}
	return llmtailor.OpenDir(root)
}

func loadRecipe(path string) (*llmtailor.Recipe, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -recipe")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return llmtailor.ParseRecipe(data)
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory containing the checkpoints")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	workers := fs.Int("workers", 4, "parallel shard-loading / tensor-reading workers")
	interleaved := fs.Bool("interleaved", false, "use the pathological per-layer load order (Table 7's parity mode)")
	maxInFlight := fs.Int64("max-inflight", 0, "bound on in-flight tensor bytes in the weights pipeline (0 = unbounded)")
	chunkBytes := fs.Int("chunk-bytes", 0, "streaming I/O chunk size in bytes (0 = default)")
	noRawCopy := fs.Bool("no-raw-copy", false, "disable the zero-decode fast path (raw tensor-extent and shard-file copies); output bytes are identical either way")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	opts := llmtailor.MergeOptions{
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		ChunkBytes:  *chunkBytes,
		NoRawCopy:   *noRawCopy,
	}
	if *interleaved {
		opts.LoadOrder = tailor.Interleaved
	}
	stats, err := llmtailor.Merge(b, rec, opts)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d checkpoints -> %s\n", stats.CheckpointsUsed, rec.Output)
	fmt.Printf("  weight tensors read: %d (raw-copied without decode: %d)\n", stats.TensorsRead, stats.TensorsRawCopied)
	fmt.Printf("  optimizer shard file loads: %d  raw-copied shard files: %d\n", stats.ShardFileLoads, stats.ShardsRawCopied)
	fmt.Printf("  bytes read: %d  written: %d  raw-copied: %d\n", stats.BytesRead, stats.BytesWritten, stats.BytesRawCopied)
	fmt.Printf("  peak in-flight tensor bytes: %d\n", stats.PeakInFlightBytes)
	fmt.Printf("  wall time: %v\n", stats.WallTime)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	plan, err := llmtailor.NewPlan(b, rec)
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	c, err := llmtailor.OpenCheckpoint(b, *dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s\n", *dir)
	fmt.Printf("  model: %s (%d transformer layers, %d mergeable)\n",
		c.Config.Name, c.Config.NumLayers, c.Config.TotalMergeableLayers())
	fmt.Printf("  step: %d  task: %s  lr: %g  loss: %.4f\n",
		c.State.Step, c.State.Task, c.State.LR, c.State.Loss)
	fmt.Printf("  world size: %d  layout: %s\n", c.WorldSize(), c.State.Layout)
	fmt.Printf("  strategy: %s  complete: %v  layers: %d\n",
		c.Manifest.Strategy, c.Manifest.Complete, len(c.Manifest.Layers))
	fmt.Printf("  weight tensors: %d\n", len(c.Weights().Names()))
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	rep, err := tailor.Verify(b, *dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.Describe())
	if !rep.OK() {
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	return nil
}

// runDoctor scans (and with -fix repairs) a run root. It returns the
// number of problem directories left in place — the caller maps a
// non-zero count to exit code 2 so scripts and CI can gate on health.
func runDoctor(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root under the storage root (default: the root itself)")
	fix := fs.Bool("fix", false, "remove torn/orphaned directories and re-aim the latest pointer")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return 0, err
	}
	statuses, err := llmtailor.ScanCheckpoints(b, *run)
	if err != nil {
		return 0, err
	}
	problems := 0
	for _, st := range statuses {
		if st.State == llmtailor.StateCommitted {
			fmt.Fprintf(out, "  %-12s %s (step %d)\n", st.State, st.Path, st.Step)
			continue
		}
		problems++
		fmt.Fprintf(out, "  %-12s %s — %s\n", st.State, st.Path, st.Detail)
	}
	if len(statuses) == 0 {
		fmt.Fprintf(out, "no checkpoint directories under %q\n", *run)
	}
	if problems == 0 {
		fmt.Fprintln(out, "healthy: every checkpoint is committed")
		return 0, nil
	}
	if !*fix {
		fmt.Fprintf(out, "%d problem(s); run with -fix to repair\n", problems)
		return problems, nil
	}
	rep, err := llmtailor.RepairCheckpoints(b, *run)
	if err != nil {
		return problems, err
	}
	for _, p := range rep.Published {
		fmt.Fprintf(out, "published %s (completed a crashed rename)\n", p)
	}
	for _, r := range rep.Removed {
		fmt.Fprintf(out, "removed %s\n", r)
	}
	if rep.LatestFixed {
		if rep.Latest == "" {
			fmt.Fprintln(out, "removed dangling latest pointer (no committed checkpoint remains)")
		} else {
			fmt.Fprintf(out, "latest pointer -> %s\n", rep.Latest)
		}
	}
	fmt.Fprintf(out, "repaired: %d directories removed, %d published\n",
		len(rep.Removed), len(rep.Published))
	return 0, nil
}

func runGenRecipe(args []string) error {
	fs := flag.NewFlagSet("gen-recipe", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root containing checkpoint-N directories")
	modelName := fs.String("model", "", "model preset name (e.g. llama3.1-8b)")
	sim := fs.Bool("sim", true, "use the scaled simulation geometry")
	failStep := fs.Int("fail-step", 0, "use only checkpoints at or before this step (0 = all)")
	output := fs.String("output", "", "output checkpoint directory for the recipe")
	write := fs.String("write", "", "write the recipe YAML to this file (default: stdout)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	cfg, err := modelcfg.ByName(*modelName)
	if err != nil {
		return err
	}
	if *sim {
		cfg = cfg.DefaultSimScale()
	}
	if *output == "" {
		return fmt.Errorf("missing -output")
	}
	rec, err := llmtailor.RecipeFromManifests(b, *run, *failStep, cfg, *output)
	if err != nil {
		return err
	}
	data, err := rec.Marshal()
	if err != nil {
		return err
	}
	if *write == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(*write, data, 0o644)
}
