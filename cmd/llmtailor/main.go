// Command llmtailor is the checkpoint-tailoring CLI: it plans and executes
// YAML merge recipes over checkpoint directories, inspects checkpoints, and
// auto-generates recipes from partial-checkpoint manifests.
//
// Usage:
//
//	llmtailor merge   -root DIR -recipe FILE [-workers N] [-interleaved]
//	llmtailor plan    -root DIR -recipe FILE
//	llmtailor inspect -root DIR -ckpt CHECKPOINT_DIR
//	llmtailor gen-recipe -root DIR -run RUN_ROOT -model NAME -fail-step N -output DIR [-write FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"llmtailor"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/tailor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merge":
		err = runMerge(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "gen-recipe":
		err = runGenRecipe(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "llmtailor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmtailor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `llmtailor — layer-wise checkpoint tailoring

commands:
  merge       execute a YAML merge recipe
  plan        validate a recipe and print the merge plan (dry run)
  inspect     print a checkpoint's anatomy
  verify      re-read a checkpoint end to end and check consistency
  gen-recipe  build a recipe from partial-checkpoint manifests`)
}

func openRoot(root string) (llmtailor.Backend, error) {
	if root == "" {
		return nil, fmt.Errorf("missing -root")
	}
	return llmtailor.OpenDir(root)
}

func loadRecipe(path string) (*llmtailor.Recipe, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -recipe")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return llmtailor.ParseRecipe(data)
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory containing the checkpoints")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	workers := fs.Int("workers", 4, "parallel shard-loading / tensor-reading workers")
	interleaved := fs.Bool("interleaved", false, "use the pathological per-layer load order (Table 7's parity mode)")
	maxInFlight := fs.Int64("max-inflight", 0, "bound on in-flight tensor bytes in the weights pipeline (0 = unbounded)")
	chunkBytes := fs.Int("chunk-bytes", 0, "streaming I/O chunk size in bytes (0 = default)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	opts := llmtailor.MergeOptions{
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		ChunkBytes:  *chunkBytes,
	}
	if *interleaved {
		opts.LoadOrder = tailor.Interleaved
	}
	stats, err := llmtailor.Merge(b, rec, opts)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d checkpoints -> %s\n", stats.CheckpointsUsed, rec.Output)
	fmt.Printf("  weight tensors read: %d\n", stats.TensorsRead)
	fmt.Printf("  optimizer shard file loads: %d\n", stats.ShardFileLoads)
	fmt.Printf("  bytes read: %d  written: %d\n", stats.BytesRead, stats.BytesWritten)
	fmt.Printf("  peak in-flight tensor bytes: %d\n", stats.PeakInFlightBytes)
	fmt.Printf("  wall time: %v\n", stats.WallTime)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	plan, err := llmtailor.NewPlan(b, rec)
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	c, err := llmtailor.OpenCheckpoint(b, *dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s\n", *dir)
	fmt.Printf("  model: %s (%d transformer layers, %d mergeable)\n",
		c.Config.Name, c.Config.NumLayers, c.Config.TotalMergeableLayers())
	fmt.Printf("  step: %d  task: %s  lr: %g  loss: %.4f\n",
		c.State.Step, c.State.Task, c.State.LR, c.State.Loss)
	fmt.Printf("  world size: %d  layout: %s\n", c.WorldSize(), c.State.Layout)
	fmt.Printf("  strategy: %s  complete: %v  layers: %d\n",
		c.Manifest.Strategy, c.Manifest.Complete, len(c.Manifest.Layers))
	fmt.Printf("  weight tensors: %d\n", len(c.Weights().Names()))
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	rep, err := tailor.Verify(b, *dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.Describe())
	if !rep.OK() {
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	return nil
}

func runGenRecipe(args []string) error {
	fs := flag.NewFlagSet("gen-recipe", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root containing checkpoint-N directories")
	modelName := fs.String("model", "", "model preset name (e.g. llama3.1-8b)")
	sim := fs.Bool("sim", true, "use the scaled simulation geometry")
	failStep := fs.Int("fail-step", 0, "use only checkpoints at or before this step (0 = all)")
	output := fs.String("output", "", "output checkpoint directory for the recipe")
	write := fs.String("write", "", "write the recipe YAML to this file (default: stdout)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	cfg, err := modelcfg.ByName(*modelName)
	if err != nil {
		return err
	}
	if *sim {
		cfg = cfg.DefaultSimScale()
	}
	if *output == "" {
		return fmt.Errorf("missing -output")
	}
	rec, err := llmtailor.RecipeFromManifests(b, *run, *failStep, cfg, *output)
	if err != nil {
		return err
	}
	data, err := rec.Marshal()
	if err != nil {
		return err
	}
	if *write == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(*write, data, 0o644)
}
