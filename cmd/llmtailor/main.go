// Command llmtailor is the checkpoint-tailoring CLI: it plans and executes
// YAML merge recipes over checkpoint directories, inspects checkpoints, and
// auto-generates recipes from partial-checkpoint manifests.
//
// Usage:
//
//	llmtailor merge   -root DIR -recipe FILE [-workers N] [-interleaved]
//	llmtailor plan    -root DIR -recipe FILE
//	llmtailor inspect -root DIR -ckpt CHECKPOINT_DIR
//	llmtailor doctor  -root DIR [-run RUN_ROOT] [-fix]
//	llmtailor hub     init|attach|detach|stat|gc -root DIR -hub HUB_ROOT [...]
//	llmtailor gen-recipe -root DIR -run RUN_ROOT -model NAME -fail-step N -output DIR [-write FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"llmtailor"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/tailor"
)

// exitProblems is the doctor exit code when uncommitted (torn / orphaned)
// checkpoint directories are found and not fixed; CI keys off it.
const exitProblems = 2

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merge":
		err = runMerge(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "gen-recipe":
		err = runGenRecipe(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "doctor":
		problems, derr := runDoctor(os.Args[2:], os.Stdout)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "llmtailor:", derr)
			os.Exit(1)
		}
		if problems > 0 {
			os.Exit(exitProblems)
		}
		return
	case "reshard":
		err = runReshard(os.Args[2:], os.Stdout)
	case "gc":
		err = runGC(os.Args[2:], os.Stdout)
	case "retain":
		err = runRetain(os.Args[2:], os.Stdout)
	case "hub":
		err = runHub(os.Args[2:], os.Stdout)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "llmtailor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmtailor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `llmtailor — layer-wise checkpoint tailoring

commands:
  merge       execute a YAML merge recipe; tensors whose stored dtype
              already matches the output (and, for single-source recipes,
              whole optimizer shard files) are raw-copied without decoding
              — the reported "raw-copied" stats count them; -no-raw-copy
              forces the decode path (identical output bytes)
  plan        validate a recipe and print the merge plan (dry run)
  inspect     print a checkpoint's anatomy
  verify      re-read a checkpoint end to end and check consistency
  doctor      classify checkpoints (committed / torn / orphaned staging /
              quarantined) and the content-addressed blob store, and
              optionally repair the run root; -adopt seals intact
              pre-commit-protocol checkpoints in place (quarantining
              unreadable ones) instead of leaving them for -fix to delete;
              exits 0 when healthy, 2 when problems were left in place
  gc          sweep the run root's objects/ blob store. The default
              (-generations) mode is incremental: it retires journal
              records provably superseded by a newer save of the same
              checkpoint and examines only those generations' blobs —
              O(retired), not O(run length). -full keeps the whole-history
              mark-and-sweep as a verification/repair pass that re-derives
              references from every manifest and validates the ref index
              against them. Referenced blobs are never collected either
              way; -dry-run reports only
  retain      keep the newest -keep-last N committed checkpoints, retire
              the rest (directories + ref-index generations) and sweep the
              blobs whose youngest reference died with them; -dry-run
              reports only
  hub         manage a checkpoint hub: one shared content-addressed blob
              store serving many run roots. init creates it (-shards N
              selects the sharded layout); attach redirects a run root's
              objects/ store into the hub (cross-run dedup, journals
              namespaced per run); detach unregisters a run (-force
              abandons its blob claims); stat lists attached runs and the
              store footprint; gc sweeps the shared store keeping every
              digest referenced by ANY attached run (union-pin rule)
  gen-recipe  build a recipe from partial-checkpoint manifests
  reshard     repartition a committed checkpoint saved at world-size N
              into a new committed checkpoint at world-size M —
              byte-identical to a native save at M. Aligned extents move
              through a zero-decode splice (CRCs carried forward);
              -no-raw-copy forces the gather→repartition decode path
              (identical output bytes); -dedup stores the output
              content-addressed against the run root's objects/ store

examples:
  llmtailor doctor -root /data -run sft-run        # report only
  llmtailor doctor -root /data -run sft-run -fix   # remove torn/orphaned
                                                   # dirs, re-aim 'latest'
  llmtailor doctor -root /data -run old-run -adopt # migrate pre-protocol
                                                   # checkpoints
  llmtailor merge -root /data -recipe r.yaml -dedup # dedup the output
  llmtailor gc -root /data -run sft-run            # incremental reclaim
  llmtailor gc -root /data -run sft-run -full      # verify + full sweep
  llmtailor retain -root /data -run sft-run -keep-last 5
  llmtailor hub init -root /data -hub shared -shards 16
  llmtailor hub attach -root /data -hub shared -run sft-run
  llmtailor hub gc -root /data -hub shared
  llmtailor reshard -root /data -src sft-run/checkpoint-300 \
                    -out sft-run/checkpoint-300-w4 -world 4`)
}

func openRoot(root string) (llmtailor.Backend, error) {
	if root == "" {
		return nil, fmt.Errorf("missing -root")
	}
	return llmtailor.OpenDir(root)
}

func loadRecipe(path string) (*llmtailor.Recipe, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -recipe")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return llmtailor.ParseRecipe(data)
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory containing the checkpoints")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	workers := fs.Int("workers", 4, "parallel shard-loading / tensor-reading workers")
	interleaved := fs.Bool("interleaved", false, "use the pathological per-layer load order (Table 7's parity mode)")
	maxInFlight := fs.Int64("max-inflight", 0, "bound on in-flight tensor bytes in the weights pipeline (0 = unbounded)")
	chunkBytes := fs.Int("chunk-bytes", 0, "streaming I/O chunk size in bytes (0 = default)")
	noRawCopy := fs.Bool("no-raw-copy", false, "disable the zero-decode fast path (raw tensor-extent and shard-file copies); output bytes are identical either way")
	dedup := fs.Bool("dedup", false, "store the merged checkpoint content-addressed: payloads land in the run root's objects/ store, deduplicated against existing blobs")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	opts := llmtailor.MergeOptions{
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		ChunkBytes:  *chunkBytes,
		NoRawCopy:   *noRawCopy,
		DedupOutput: *dedup,
	}
	if *interleaved {
		opts.LoadOrder = tailor.Interleaved
	}
	stats, err := llmtailor.Merge(b, rec, opts)
	if err != nil {
		return err
	}
	fmt.Printf("merged %d checkpoints -> %s\n", stats.CheckpointsUsed, rec.Output)
	fmt.Printf("  weight tensors read: %d (raw-copied without decode: %d)\n", stats.TensorsRead, stats.TensorsRawCopied)
	fmt.Printf("  optimizer shard file loads: %d  raw-copied shard files: %d\n", stats.ShardFileLoads, stats.ShardsRawCopied)
	fmt.Printf("  bytes read: %d  written: %d  raw-copied: %d\n", stats.BytesRead, stats.BytesWritten, stats.BytesRawCopied)
	fmt.Printf("  peak in-flight tensor bytes: %d\n", stats.PeakInFlightBytes)
	if *dedup {
		fmt.Printf("  dedup: %d blobs written (%d bytes), %d reused (%d bytes deduplicated)\n",
			stats.BlobsPut, stats.BlobBytesWritten, stats.BlobsReused, stats.BytesDeduped)
	}
	fmt.Printf("  wall time: %v\n", stats.WallTime)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	recipePath := fs.String("recipe", "", "YAML recipe file")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	rec, err := loadRecipe(*recipePath)
	if err != nil {
		return err
	}
	plan, err := llmtailor.NewPlan(b, rec)
	if err != nil {
		return err
	}
	fmt.Print(plan.Describe())
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	c, err := llmtailor.OpenCheckpoint(b, *dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s\n", *dir)
	fmt.Printf("  model: %s (%d transformer layers, %d mergeable)\n",
		c.Config.Name, c.Config.NumLayers, c.Config.TotalMergeableLayers())
	fmt.Printf("  step: %d  task: %s  lr: %g  loss: %.4f\n",
		c.State.Step, c.State.Task, c.State.LR, c.State.Loss)
	fmt.Printf("  world size: %d  layout: %s\n", c.WorldSize(), c.State.Layout)
	fmt.Printf("  strategy: %s  complete: %v  layers: %d\n",
		c.Manifest.Strategy, c.Manifest.Complete, len(c.Manifest.Layers))
	fmt.Printf("  weight tensors: %d\n", len(c.Weights().Names()))
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	dir := fs.String("ckpt", "", "checkpoint directory (relative to root)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -ckpt")
	}
	rep, err := tailor.Verify(b, *dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.Describe())
	if !rep.OK() {
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	return nil
}

// runDoctor scans (and with -fix repairs, -adopt migrates) a run root. It
// returns the number of problem directories left in place — the caller
// maps a non-zero count to exit code 2 so scripts and CI can gate on
// health.
func runDoctor(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root under the storage root (default: the root itself)")
	fix := fs.Bool("fix", false, "remove torn/orphaned directories and re-aim the latest pointer")
	adopt := fs.Bool("adopt", false, "seal intact pre-commit-protocol checkpoints (full read + CRC pass) with a COMMITTED marker; quarantine unreadable ones instead of deleting")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return 0, err
	}
	rh := llmtailor.NewStore(b).Run(*run)
	if *adopt {
		rep, err := rh.Adopt()
		if err != nil {
			return 0, err
		}
		for _, d := range rep.Adopted {
			fmt.Fprintf(out, "adopted %s (readable; COMMITTED marker sealed in place)\n", d)
		}
		for i, q := range rep.Quarantined {
			fmt.Fprintf(out, "quarantined %s — %s\n", q, rep.Reasons[i])
		}
		for _, d := range rep.StillTorn {
			fmt.Fprintf(out, "left torn %s (carries a failing marker or is empty; -fix owns it)\n", d)
		}
	}
	scan, err := rh.Scan(llmtailor.ScanOptions{Blobs: true, Refs: true, Codecs: true})
	if err != nil {
		return 0, err
	}
	if hubRoot, hubID, err := rh.HubAttachment(); err != nil {
		return 0, err
	} else if hubRoot != "" {
		fmt.Fprintf(out, "hub: attached to %s as %q\n", hubRoot, hubID)
	}
	problems := 0
	for _, st := range scan.Dirs {
		switch st.State {
		case llmtailor.StateCommitted:
			fmt.Fprintf(out, "  %-12s %s (step %d)\n", st.State, st.Path, st.Step)
		case llmtailor.StateQuarantined:
			// Deliberately preserved; reported but not counted as a
			// problem -fix would act on.
			fmt.Fprintf(out, "  %-12s %s — %s\n", st.State, st.Path, st.Detail)
		default:
			problems++
			fmt.Fprintf(out, "  %-12s %s — %s\n", st.State, st.Path, st.Detail)
		}
	}
	if len(scan.Dirs) == 0 {
		fmt.Fprintf(out, "no checkpoint directories under %q\n", *run)
	}
	// Blob store health: staging residue counts as a problem (a crashed
	// blob put left it; -fix removes it). Unreferenced blobs are garbage
	// worth reporting but not a health failure — only an explicit gc
	// sweeps published blobs — and stray entries (external mutilation
	// under objects/) are flagged but never touched automatically.
	var referenced, unreferenced, staging, stray int
	for _, bl := range scan.Blobs {
		switch bl.State {
		case llmtailor.BlobReferenced:
			referenced++
		case llmtailor.BlobUnreferenced:
			unreferenced++
		case llmtailor.BlobStaging:
			staging++
			problems++
			fmt.Fprintf(out, "  %-12s %s\n", bl.State, bl.Path)
		case llmtailor.BlobTrashed:
			// A sweep crashed between trash and purge; -fix restores the
			// referenced ones and drops the rest.
			problems++
			fmt.Fprintf(out, "  %-12s %s (refs %d)\n", bl.State, bl.Path, bl.Refs)
		default:
			stray++
			fmt.Fprintf(out, "  %-12s %s\n", bl.State, bl.Path)
		}
	}
	if len(scan.Blobs) > 0 {
		fmt.Fprintf(out, "blob store: %d referenced, %d unreferenced, %d staging, %d stray\n",
			referenced, unreferenced, staging, stray)
		if n, err := rh.Shards(); err != nil {
			// A store that cannot open (corrupt shards.json, broken hub
			// attachment) is a problem, not a flat layout.
			problems++
			fmt.Fprintf(out, "  %-12s %v\n", "store", err)
		} else if n > 0 {
			fmt.Fprintf(out, "blob store layout: %d digest-prefix shards\n", n)
		}
		if unreferenced > 0 {
			fmt.Fprintln(out, "run `llmtailor gc` to reclaim unreferenced blobs")
		}
	}
	// Codec health: a dedup checkpoint whose manifests pin an xor parent
	// the store no longer holds cannot restore those entries — a problem.
	// Deep chains are telemetry (re-base bounds them at save time).
	var deepest int
	deepestAt := ""
	for _, ch := range scan.Codecs {
		if ch.Stats.DeepestChain > deepest {
			deepest = ch.Stats.DeepestChain
			deepestAt = ch.Dir + " " + ch.Stats.DeepestSlot
		}
		for _, mp := range ch.MissingParents {
			problems++
			fmt.Fprintf(out, "  %-12s %s — xor parent missing: %s\n", "codec", ch.Dir, mp)
		}
	}
	if deepest > 0 {
		fmt.Fprintf(out, "blob codec: deepest xor-parent chain %d (%s)\n", deepest, deepestAt)
	}
	// Ref-index health: records that disagree with the manifests (missing,
	// divergent, corrupt), stale records with no checkpoint behind them,
	// and append residue are problems -fix reconciles; superseded records
	// are ordinary reclaimable garbage a generational gc retires.
	var refOK, refSuperseded int
	for _, rs := range scan.Refs {
		switch rs.State {
		case llmtailor.RefOK:
			refOK++
		case llmtailor.RefSuperseded:
			refSuperseded++
		default:
			problems++
			fmt.Fprintf(out, "  %-12s %s — %s\n", rs.State, rs.Path, rs.Detail)
		}
	}
	if len(scan.Refs) > 0 {
		fmt.Fprintf(out, "ref index: %d ok, %d superseded, %d problem(s)\n",
			refOK, refSuperseded, len(scan.Refs)-refOK-refSuperseded)
		if refSuperseded > 0 {
			fmt.Fprintln(out, "run `llmtailor gc` to retire superseded generations")
		}
	}
	if problems == 0 {
		fmt.Fprintln(out, "healthy: every checkpoint is committed")
		return 0, nil
	}
	if !*fix {
		fmt.Fprintf(out, "%d problem(s); run with -fix to repair\n", problems)
		return problems, nil
	}
	rep, err := rh.Repair()
	if err != nil {
		return problems, err
	}
	for _, p := range rep.Published {
		fmt.Fprintf(out, "published %s (completed a crashed rename)\n", p)
	}
	for _, r := range rep.Removed {
		fmt.Fprintf(out, "removed %s\n", r)
	}
	for _, p := range rep.BlobStagingRemoved {
		fmt.Fprintf(out, "removed blob staging %s\n", p)
	}
	for _, r := range rep.RefRecordsRemoved {
		fmt.Fprintf(out, "removed stale ref record %s\n", r)
	}
	for _, r := range rep.RefRecordsWritten {
		fmt.Fprintf(out, "rebuilt ref record %s\n", r)
	}
	for _, r := range rep.RefStagingRemoved {
		fmt.Fprintf(out, "removed ref staging %s\n", r)
	}
	for _, d := range rep.TrashRestored {
		fmt.Fprintf(out, "restored trashed blob %s\n", d)
	}
	for _, d := range rep.TrashPurged {
		fmt.Fprintf(out, "purged trashed blob %s\n", d)
	}
	if rep.LatestFixed {
		if rep.Latest == "" {
			fmt.Fprintln(out, "removed dangling latest pointer (no committed checkpoint remains)")
		} else {
			fmt.Fprintf(out, "latest pointer -> %s\n", rep.Latest)
		}
	}
	fmt.Fprintf(out, "repaired: %d directories removed, %d published, %d blob staging entries cleaned\n",
		len(rep.Removed), len(rep.Published), len(rep.BlobStagingRemoved))
	return 0, nil
}

// runGC sweeps (or with -dry-run reports) the run root's blob store, in
// incremental -generations mode (the default) or -full verification mode.
func runGC(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root under the storage root (default: the root itself)")
	dryRun := fs.Bool("dry-run", false, "report what a sweep would remove without removing anything")
	full := fs.Bool("full", false, "whole-history mark-and-sweep: re-derive references from every manifest, sweep the whole store, validate and repair the ref index")
	generations := fs.Bool("generations", false, "incremental sweep of retired generations only (the default)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *full && *generations {
		return fmt.Errorf("gc: -full and -generations are mutually exclusive")
	}
	rh := llmtailor.NewStore(b).Run(*run)
	if !*full {
		rep, err := rh.GC(llmtailor.GCOptions{DryRun: *dryRun})
		if err != nil {
			return err
		}
		verb := "removed"
		if *dryRun {
			verb = "would remove"
		}
		for _, d := range rep.RemovedBlobs {
			fmt.Fprintf(out, "  %s blob %s\n", verb, d)
		}
		for _, p := range rep.RemovedStaging {
			fmt.Fprintf(out, "  %s staging %s\n", verb, p)
		}
		for _, r := range rep.IndexRetired {
			fmt.Fprintf(out, "  retired record %s\n", r)
		}
		if *dryRun {
			fmt.Fprintf(out, "dry run: %d generations retirable, %d candidate blobs examined, %d removable (%d bytes reclaimable)\n",
				len(rep.IndexRetired), rep.Examined, len(rep.RemovedBlobs), rep.BytesFreed)
			return nil
		}
		fmt.Fprintf(out, "gc (generational): %d records, %d retired, %d blobs examined, %d removed (%d bytes freed), %d staging entries cleaned\n",
			rep.IndexRecords, len(rep.IndexRetired), rep.Examined, len(rep.RemovedBlobs), rep.BytesFreed, len(rep.RemovedStaging))
		if rep.IndexStale > 0 {
			fmt.Fprintf(out, "%d stale/unmatched record(s) left pinned; run doctor -fix (quiescent) to reconcile\n", rep.IndexStale)
		}
		return nil
	}
	if *dryRun {
		rep, err := rh.GC(llmtailor.GCOptions{Full: true, DryRun: true})
		if err != nil {
			return err
		}
		for _, d := range rep.RemovedBlobs {
			fmt.Fprintf(out, "  would remove blob %s\n", d)
		}
		for _, p := range rep.RemovedStaging {
			fmt.Fprintf(out, "  would remove %s (staging residue)\n", p)
		}
		for _, r := range rep.IndexRetired {
			fmt.Fprintf(out, "  would retire record %s\n", r)
		}
		for _, r := range rep.IndexRepaired {
			fmt.Fprintf(out, "  would repair record %s\n", r)
		}
		fmt.Fprintf(out, "dry run (full): %d records, %d retirable, %d blobs examined, %d kept, %d removable (%d bytes reclaimable), %d staging entries\n",
			rep.IndexRecords, len(rep.IndexRetired), rep.Examined, rep.Kept,
			len(rep.RemovedBlobs), rep.BytesFreed, len(rep.RemovedStaging))
		if rep.IndexStale > 0 {
			fmt.Fprintf(out, "%d stale/unmatched record(s) left pinned; run doctor -fix (quiescent) to reconcile\n", rep.IndexStale)
		}
		return nil
	}
	rep, err := rh.GC(llmtailor.GCOptions{Full: true})
	if err != nil {
		return err
	}
	for _, d := range rep.RemovedBlobs {
		fmt.Fprintf(out, "  removed blob %s\n", d)
	}
	for _, p := range rep.RemovedStaging {
		fmt.Fprintf(out, "  removed staging %s\n", p)
	}
	for _, r := range rep.IndexRetired {
		fmt.Fprintf(out, "  retired record %s\n", r)
	}
	for _, r := range rep.IndexRepaired {
		fmt.Fprintf(out, "  repaired record %s\n", r)
	}
	fmt.Fprintf(out, "gc: %d referenced digests, %d blobs kept, %d removed (%d bytes freed), %d staging entries cleaned\n",
		rep.Referenced, rep.Kept, len(rep.RemovedBlobs), rep.BytesFreed, len(rep.RemovedStaging))
	if rep.IndexStale > 0 {
		fmt.Fprintf(out, "%d stale/unmatched record(s) left pinned; run doctor -fix (quiescent) to reconcile\n", rep.IndexStale)
	}
	return nil
}

// runRetain applies a keep-last retention policy: victims' directories and
// ref-index generations are retired, and the blobs whose youngest
// reference died with them are swept generationally.
func runRetain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("retain", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root under the storage root (default: the root itself)")
	keepLast := fs.Int("keep-last", 0, "number of newest committed checkpoints to keep (required, >= 1)")
	dryRun := fs.Bool("dry-run", false, "report what retention would remove without removing anything")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *keepLast < 1 {
		return fmt.Errorf("retain: missing or invalid -keep-last (want >= 1)")
	}
	rep, err := llmtailor.NewStore(b).Run(*run).Retain(llmtailor.RetainOptions{KeepLast: *keepLast, DryRun: *dryRun})
	if err != nil {
		return err
	}
	verb := "retired"
	if *dryRun {
		verb = "would retire"
	}
	for _, d := range rep.Removed {
		fmt.Fprintf(out, "  %s %s\n", verb, d)
	}
	for _, d := range rep.RemovedBlobs {
		fmt.Fprintf(out, "  swept blob %s\n", d)
	}
	mode := "retain"
	if *dryRun {
		mode = "retain (dry run)"
	}
	fmt.Fprintf(out, "%s: %d kept, %d checkpoints retired (%d records), %d blobs examined, %d swept (%d bytes freed)\n",
		mode, len(rep.Kept), len(rep.Removed), len(rep.RecordsRetired), rep.Examined, len(rep.RemovedBlobs), rep.BytesFreed)
	return nil
}

func runGenRecipe(args []string) error {
	fs := flag.NewFlagSet("gen-recipe", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	run := fs.String("run", "", "run root containing checkpoint-N directories")
	modelName := fs.String("model", "", "model preset name (e.g. llama3.1-8b)")
	sim := fs.Bool("sim", true, "use the scaled simulation geometry")
	failStep := fs.Int("fail-step", 0, "use only checkpoints at or before this step (0 = all)")
	output := fs.String("output", "", "output checkpoint directory for the recipe")
	write := fs.String("write", "", "write the recipe YAML to this file (default: stdout)")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	cfg, err := modelcfg.ByName(*modelName)
	if err != nil {
		return err
	}
	if *sim {
		cfg = cfg.DefaultSimScale()
	}
	if *output == "" {
		return fmt.Errorf("missing -output")
	}
	rec, err := llmtailor.RecipeFromManifests(b, *run, *failStep, cfg, *output)
	if err != nil {
		return err
	}
	data, err := rec.Marshal()
	if err != nil {
		return err
	}
	if *write == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(*write, data, 0o644)
}

func runReshard(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("reshard", flag.ExitOnError)
	root := fs.String("root", "", "storage root directory")
	src := fs.String("src", "", "source checkpoint directory (committed)")
	dst := fs.String("out", "", "output checkpoint directory")
	world := fs.Int("world", 0, "target world size M")
	workers := fs.Int("workers", 4, "parallel group-repartition workers")
	maxInFlight := fs.Int64("max-inflight", 0, "bound on in-flight group payload bytes (0 = unbounded)")
	chunkBytes := fs.Int("chunk-bytes", 0, "streaming I/O chunk size in bytes (0 = default)")
	noRawCopy := fs.Bool("no-raw-copy", false, "disable the zero-decode extent-splice fast path; output bytes are identical either way")
	dedup := fs.Bool("dedup", false, "store the resharded checkpoint content-addressed in the run root's objects/ store")
	noLatest := fs.Bool("no-latest", false, "do not move the run root's latest pointer to the output")
	fs.Parse(args)

	b, err := openRoot(*root)
	if err != nil {
		return err
	}
	if *src == "" || *dst == "" {
		return fmt.Errorf("missing -src or -out")
	}
	stats, err := llmtailor.ReshardCheckpoint(b, *src, *dst, *world, llmtailor.ReshardOptions{
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		ChunkBytes:  *chunkBytes,
		NoRawCopy:   *noRawCopy,
		Dedup:       *dedup,
		NoLatest:    *noLatest,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "resharded %s (world %d) -> %s (world %d)\n", *src, stats.WorldFrom, *dst, stats.WorldTo)
	fmt.Fprintf(out, "  groups: %d  raw-copied: %d  decoded: %d\n", stats.Groups, stats.GroupsRawCopied, stats.GroupsDecoded)
	fmt.Fprintf(out, "  shards carried: %d  spliced: %d  zero-filled: %d\n", stats.ShardsCarried, stats.ShardsSpliced, stats.ShardsZeroed)
	fmt.Fprintf(out, "  bytes raw-copied: %d  decoded: %d  zero-filled: %d  weights: %d\n",
		stats.BytesRawCopied, stats.BytesDecoded, stats.BytesZeroFilled, stats.WeightBytes)
	fmt.Fprintf(out, "  peak in-flight bytes: %d\n", stats.PeakInFlightBytes)
	if *dedup {
		fmt.Fprintf(out, "  dedup: %d blobs written (%d bytes), %d reused (%d bytes deduplicated)\n",
			stats.BlobsPut, stats.BlobBytesWritten, stats.BlobsReused, stats.BytesDeduped)
	}
	fmt.Fprintf(out, "  wall time: %v\n", stats.WallTime)
	return nil
}
