package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/tensor"
)

// writeDedupRun creates two content-addressed tiny checkpoints under
// root/run (shared state, so the second save dedups fully).
func writeDedupRun(t *testing.T, root string) {
	t.Helper()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 5)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{10, 20} {
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", Dedup: true, State: ckpt.TrainerState{Step: step, Seed: 5},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCLIGC(t *testing.T) {
	root := t.TempDir()
	writeDedupRun(t, root)
	// Orphan blobs: drop checkpoint-20 entirely (its exclusive refs die),
	// and plant staging residue. Shared content stays referenced by
	// checkpoint-10, so the sweep must keep it.
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "run", "objects", ".stage"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "run", "objects", ".stage", "put-5"), []byte("residue"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Dry run reports without removing.
	var out strings.Builder
	if err := runGC([]string{"-root", root, "-run", "run", "-dry-run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dry run:") {
		t.Fatalf("output: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(root, "run", "objects", ".stage", "put-5")); err != nil {
		t.Fatal("dry run removed staging residue")
	}

	out.Reset()
	if err := runGC([]string{"-root", root, "-run", "run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "staging entries cleaned") {
		t.Fatalf("output: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(root, "run", "objects", ".stage", "put-5")); !os.IsNotExist(err) {
		t.Fatal("gc left staging residue")
	}
	// Both checkpoints still restore after the sweep.
	for _, dir := range []string{"run/checkpoint-10", "run/checkpoint-20"} {
		if _, _, _, err := ckpt.Restore(b, dir, tensor.BF16); err != nil {
			t.Fatalf("%s after gc: %v", dir, err)
		}
	}
}

// Blob-staging residue is a doctor problem (exit 2) that -fix cleans.
func TestCLIDoctorCountsBlobStaging(t *testing.T) {
	root := t.TempDir()
	writeDedupRun(t, root)
	if err := os.MkdirAll(filepath.Join(root, "run", "objects", ".stage"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "run", "objects", ".stage", "put-8"), []byte("residue"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if problems != 1 || !strings.Contains(out.String(), "blob-staging") {
		t.Fatalf("problems = %d\n%s", problems, out.String())
	}
	out.Reset()
	problems, err = runDoctor([]string{"-root", root, "-run", "run", "-fix"}, &out)
	if err != nil || problems != 0 {
		t.Fatalf("fix: %d problems, %v\n%s", problems, err, out.String())
	}
	if _, err := os.Stat(filepath.Join(root, "run", "objects", ".stage", "put-8")); !os.IsNotExist(err) {
		t.Fatal("-fix left blob staging residue")
	}
	out.Reset()
	if problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out); err != nil || problems != 0 {
		t.Fatalf("post-fix: %d problems, %v", problems, err)
	}
}

// TestCLIGCGenerational: the default gc mode retires the generation a
// replaced checkpoint superseded and sweeps only its blobs; -full then
// finds nothing left.
func TestCLIGCGenerational(t *testing.T) {
	root := t.TempDir()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	save := func(seed uint64) {
		t.Helper()
		m, _ := model.NewInitialized(cfg, tensor.BF16, seed)
		o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/checkpoint-10", Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", Dedup: true, State: ckpt.TrainerState{Step: 10, Seed: seed},
		}); err != nil {
			t.Fatal(err)
		}
	}
	save(6)
	save(7) // replace: seed-6 generation superseded

	var out strings.Builder
	if err := runGC([]string{"-root", root, "-run", "run", "-dry-run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dry run:") || !strings.Contains(out.String(), "would remove blob") {
		t.Fatalf("dry run output: %s", out.String())
	}
	out.Reset()
	if err := runGC([]string{"-root", root, "-run", "run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gc (generational):") || !strings.Contains(out.String(), "retired record") {
		t.Fatalf("output: %s", out.String())
	}
	if _, _, _, err := ckpt.Restore(b, "run/checkpoint-10", tensor.BF16); err != nil {
		t.Fatalf("checkpoint unusable after generational gc: %v", err)
	}
	// -full verifies and agrees.
	out.Reset()
	if err := runGC([]string{"-root", root, "-run", "run", "-full"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 removed (0 bytes freed)") {
		t.Fatalf("full gc output: %s", out.String())
	}
	if err := runGC([]string{"-root", root, "-full", "-generations"}, &out); err == nil {
		t.Fatal("mutually exclusive flags accepted")
	}
}

// TestCLIGCFullDryRun: -full -dry-run prints the mark phase's full
// accounting (records considered, retirable generations, blobs examined
// and removable) without mutating anything, and a real -full sweep then
// agrees with it.
func TestCLIGCFullDryRun(t *testing.T) {
	root := t.TempDir()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	save := func(seed uint64) {
		t.Helper()
		m, _ := model.NewInitialized(cfg, tensor.BF16, seed)
		o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/checkpoint-10", Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", Dedup: true, State: ckpt.TrainerState{Step: 10, Seed: seed},
		}); err != nil {
			t.Fatal(err)
		}
	}
	save(6)
	save(7) // replace: seed-6 generation superseded, its blobs orphan

	var out strings.Builder
	if err := runGC([]string{"-root", root, "-run", "run", "-full", "-dry-run"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dry run (full):") ||
		!strings.Contains(s, "would remove blob") ||
		!strings.Contains(s, "would retire record") ||
		!strings.Contains(s, "1 retirable") {
		t.Fatalf("dry run output: %s", s)
	}
	// Nothing moved: the replaced generation's blobs are still on disk
	// (the real sweep below frees a nonzero byte count).
	out.Reset()
	if err := runGC([]string{"-root", root, "-run", "run", "-full"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "0 removed (0 bytes freed)") {
		t.Fatalf("dry run mutated the store, real sweep found nothing: %s", out.String())
	}
	if _, _, _, err := ckpt.Restore(b, "run/checkpoint-10", tensor.BF16); err != nil {
		t.Fatalf("checkpoint unusable after full gc: %v", err)
	}
}

func TestCLIRetain(t *testing.T) {
	root := t.TempDir()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 5)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	for _, step := range []int{10, 20, 30, 40} {
		ts := m.Tensors()[0]
		ts.Set(0, ts.At(0)+1)
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", Dedup: true, State: ckpt.TrainerState{Step: step, Seed: 5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := runRetain([]string{"-root", root, "-run", "run"}, &strings.Builder{}); err == nil {
		t.Fatal("missing -keep-last accepted")
	}
	var out strings.Builder
	if err := runRetain([]string{"-root", root, "-run", "run", "-keep-last", "2", "-dry-run"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "would retire run/checkpoint-10") {
		t.Fatalf("dry run output: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(root, "run", "checkpoint-10")); err != nil {
		t.Fatal("dry run removed a checkpoint")
	}
	out.Reset()
	if err := runRetain([]string{"-root", root, "-run", "run", "-keep-last", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 checkpoints retired") {
		t.Fatalf("output: %s", out.String())
	}
	for _, step := range []string{"checkpoint-10", "checkpoint-20"} {
		if _, err := os.Stat(filepath.Join(root, "run", step)); !os.IsNotExist(err) {
			t.Fatalf("%s survived retention", step)
		}
	}
	for _, dir := range []string{"run/checkpoint-30", "run/checkpoint-40"} {
		if _, _, _, err := ckpt.Restore(b, dir, tensor.BF16); err != nil {
			t.Fatalf("%s after retain: %v", dir, err)
		}
	}
	// Doctor agrees the run is healthy afterwards.
	if problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out); err != nil || problems != 0 {
		t.Fatalf("doctor after retain: %d problems, %v", problems, err)
	}
}

// A stale ref index (missing record for a committed dedup checkpoint plus
// an orphaned record) is a doctor problem that -fix reconciles.
func TestCLIDoctorRefIndex(t *testing.T) {
	root := t.TempDir()
	writeDedupRun(t, root)
	refsDir := filepath.Join(root, "run", "objects", "refs")
	entries, err := os.ReadDir(refsDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no ref records: %v", err)
	}
	// Stale index: drop one record, plant an orphaned one.
	if err := os.Remove(filepath.Join(refsDir, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(refsDir, "gen-000000000042-checkpoint-42.ref")
	if err := os.WriteFile(orphan, []byte(`{"version":1,"key":"checkpoint-42","generation":42,"digests":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if problems != 2 || !strings.Contains(out.String(), "ref-missing") || !strings.Contains(out.String(), "ref-orphaned") {
		t.Fatalf("problems = %d\n%s", problems, out.String())
	}
	out.Reset()
	if problems, err := runDoctor([]string{"-root", root, "-run", "run", "-fix"}, &out); err != nil || problems != 0 {
		t.Fatalf("fix: %d problems, %v\n%s", problems, err, out.String())
	}
	if !strings.Contains(out.String(), "rebuilt ref record") || !strings.Contains(out.String(), "removed stale ref record") {
		t.Fatalf("fix output: %s", out.String())
	}
	out.Reset()
	if problems, err := runDoctor([]string{"-root", root, "-run", "run"}, &out); err != nil || problems != 0 {
		t.Fatalf("post-fix: %d problems, %v\n%s", problems, err, out.String())
	}
}

func TestCLIDoctorAdopt(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	// Strip both markers: pre-protocol checkpoints. Corrupt the second so
	// it quarantines.
	for _, step := range []string{"checkpoint-10", "checkpoint-20"} {
		if err := os.Remove(filepath.Join(root, "run", step, ckpt.CommitMarkerName)); err != nil {
			t.Fatal(err)
		}
	}
	ltsf := filepath.Join(root, "run", "checkpoint-20", "model.ltsf")
	data, err := os.ReadFile(ltsf)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(ltsf, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	problems, err := runDoctor([]string{"-root", root, "-run", "run", "-adopt"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if problems != 0 {
		t.Fatalf("problems = %d\n%s", problems, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "adopted run/checkpoint-10") {
		t.Fatalf("output: %s", s)
	}
	if !strings.Contains(s, "quarantined run/checkpoint-20.quarantined") {
		t.Fatalf("output: %s", s)
	}
	// Adopted checkpoint is committed; quarantined dir preserved on disk.
	b, _ := llmtailor.OpenDir(root)
	if err := llmtailor.VerifyCommitted(b, "run/checkpoint-10"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "run", "checkpoint-20.quarantined")); err != nil {
		t.Fatal("quarantined dir missing")
	}
}

func TestCLIMergeDedupOutput(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root)
	recipePath := filepath.Join(root, "recipe.yaml")
	if err := os.WriteFile(recipePath, []byte(cliRecipe), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMerge([]string{"-root", root, "-recipe", recipePath, "-dedup"}); err != nil {
		t.Fatalf("merge -dedup: %v", err)
	}
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Exists("run/merged/" + ckpt.WeightManifestName) {
		t.Fatal("merged output is not content-addressed")
	}
	if b.Exists("run/merged/model.ltsf") {
		t.Fatal("merged output kept the payload container")
	}
	// The dedup output restores and verifies like any checkpoint.
	if _, _, _, err := ckpt.Restore(b, "run/merged", tensor.BF16); err != nil {
		t.Fatal(err)
	}
	rep, err := llmtailor.VerifyCheckpoint(b, "run/merged")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify: %s", rep.Describe())
	}
	// Inspect works against the dedup layout too.
	if err := runInspect([]string{"-root", root, "-ckpt", "run/merged"}); err != nil {
		t.Fatal(err)
	}
}
