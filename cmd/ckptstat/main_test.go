package main

import (
	"strings"
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/tensor"
)

// TestDescribeDelta drives the -delta surface: two dedup checkpoints with
// one block changed between them print one CHANGED row against the
// auto-resolved previous checkpoint.
func TestDescribeDelta(t *testing.T) {
	root := t.TempDir()
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 3)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	save := func(step int) {
		t.Helper()
		if err := ckpt.Save(b, ckpt.SaveSpec{
			Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", Dedup: true, State: ckpt.TrainerState{Step: step, Seed: 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	save(10)
	for i, spec := range m.Specs() {
		if spec.Layer == modelcfg.Block(1) {
			ts := m.Tensors()[i]
			ts.Set(0, ts.At(0)+1)
		}
	}
	save(20)

	var out strings.Builder
	if err := describeDelta(root, "run/checkpoint-20", &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "delta run/checkpoint-20 vs run/checkpoint-10") {
		t.Fatalf("output: %s", s)
	}
	if !strings.Contains(s, "CHANGED") || strings.Count(s, "CHANGED") != 1 {
		t.Fatalf("want exactly one CHANGED row:\n%s", s)
	}
	if !strings.Contains(s, "1/") || !strings.Contains(s, "layers changed") {
		t.Fatalf("missing summary line:\n%s", s)
	}

	out.Reset()
	if err := describeDelta(root, "run/checkpoint-10", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no previous checkpoint") {
		t.Fatalf("output: %s", out.String())
	}
}
