// Command ckptstat prints model and checkpoint anatomy: the layer-wise
// tensor structure (paper Figure 1), the optimizer parameter-group layout
// before and after layer-wise regrouping (Figures 2 and 3), and analytic
// checkpoint sizes for the supported model presets.
//
//	ckptstat -model llama3.1-8b            # anatomy + sizes
//	ckptstat -model llama3.2-1b -groups    # 2-group vs layerwise layouts
//	ckptstat -root DIR -ckpt checkpoint-100  # on-disk checkpoint stats
//	ckptstat -root DIR -ckpt checkpoint-100 -delta  # per-layer dedup delta
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
)

func main() {
	modelName := flag.String("model", "", "model preset to describe")
	groups := flag.Bool("groups", false, "print optimizer group layouts (Figures 2-3)")
	root := flag.String("root", "", "storage root (with -ckpt)")
	ckptDir := flag.String("ckpt", "", "checkpoint directory under -root")
	delta := flag.Bool("delta", false, "per-layer delta of a dedup checkpoint: bytes moved vs referenced against the previous checkpoint (with -root/-ckpt)")
	codec := flag.Bool("codec", false, "blob codec breakdown of a dedup checkpoint: entries per codec, stored vs payload bytes, deepest xor-parent chain (with -root/-ckpt)")
	flag.Parse()

	switch {
	case *modelName != "":
		if err := describeModel(*modelName, *groups); err != nil {
			fail(err)
		}
	case *root != "" && *ckptDir != "" && *codec:
		if err := describeCodec(*root, *ckptDir, os.Stdout); err != nil {
			fail(err)
		}
	case *root != "" && *ckptDir != "" && *delta:
		if err := describeDelta(*root, *ckptDir, os.Stdout); err != nil {
			fail(err)
		}
	case *root != "" && *ckptDir != "":
		if err := describeCheckpoint(*root, *ckptDir); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ckptstat -model NAME [-groups] | ckptstat -root DIR -ckpt DIR [-delta|-codec]")
		fmt.Fprintf(os.Stderr, "models: %v\n", modelcfg.PresetNames())
		os.Exit(2)
	}
}

func describeModel(name string, groups bool) error {
	cfg, err := modelcfg.ByName(name)
	if err != nil {
		return err
	}
	fmt.Printf("%s: hidden %d, intermediate %d, %d layers, %d heads (%d KV), vocab %d, tied=%v\n",
		cfg.Name, cfg.HiddenSize, cfg.IntermediateSize, cfg.NumLayers,
		cfg.NumHeads, cfg.NumKVHeads, cfg.VocabSize, cfg.TieWordEmbeddings)
	fmt.Printf("params: %.3fB   mergeable layers: %d\n",
		float64(cfg.ParamCount())/1e9, cfg.TotalMergeableLayers())
	fmt.Printf("checkpoint: weights %.2f GB + optimizer %.2f GB = %.2f GB (14 B/param)\n",
		modelcfg.GB(cfg.WeightBytes()), modelcfg.GB(cfg.OptimBytes()), modelcfg.GB(cfg.FullCkptBytes()))
	fmt.Println("\nlayer anatomy:")
	for _, ref := range cfg.AllLayers() {
		fmt.Printf("  %-14s %12d params  %8.3f GB/ckpt\n",
			ref, cfg.LayerParamCount(ref), modelcfg.GB(cfg.LayerCkptBytes(ref)))
	}
	if groups {
		fmt.Println("\noptimizer layout before regrouping (Figure 2):")
		fmt.Print(optim.NewTwoGroupLayout(cfg).Describe())
		fmt.Println("\noptimizer layout after layer-wise regrouping (Figure 3):")
		fmt.Print(optim.NewLayerwiseLayout(cfg).Describe())
	}
	return nil
}

func describeCheckpoint(root, dir string) error {
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		return err
	}
	c, err := llmtailor.OpenCheckpoint(b, dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s: model %s, step %d, ws %d, strategy %s, complete %v\n",
		dir, c.Config.Name, c.State.Step, c.WorldSize(), c.Manifest.Strategy, c.Manifest.Complete)
	var total int64
	for _, f := range []string{"model.ltsf", "config.json", "trainer_state.json", "manifest.json"} {
		if n, err := b.Stat(dir + "/" + f); err == nil {
			fmt.Printf("  %-24s %12d bytes\n", f, n)
			total += n
		}
	}
	for r := 0; r < c.WorldSize(); r++ {
		name := fmt.Sprintf("zero/rank_%02d_optim_states.ltos", r)
		if n, err := b.Stat(dir + "/" + name); err == nil {
			fmt.Printf("  %-24s %12d bytes\n", name, n)
			total += n
		}
	}
	fmt.Printf("  %-24s %12d bytes\n", "TOTAL", total)
	return nil
}

// describeDelta prints the per-layer dedup breakdown: which layers a
// checkpoint actually changed relative to its predecessor, and how many
// payload bytes moved (new blobs) versus were merely referenced.
func describeDelta(root, dir string, out io.Writer) error {
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		return err
	}
	prev, err := ckpt.PreviousCheckpoint(b, dir)
	if err != nil {
		return err
	}
	rows, err := ckpt.LayerDelta(b, dir, prev)
	if err != nil {
		return err
	}
	if prev == "" {
		fmt.Fprintf(out, "delta %s (no previous checkpoint: everything moved)\n", dir)
	} else {
		fmt.Fprintf(out, "delta %s vs %s\n", dir, prev)
	}
	fmt.Fprintf(out, "  %-14s %9s %14s %14s %14s %14s  %s\n",
		"layer", "payloads", "bytes", "moved", "referenced", "stored", "state")
	var total ckpt.LayerDeltaRow
	changed := 0
	for _, r := range rows {
		state := "reused"
		if r.Changed {
			state = "CHANGED"
			changed++
		}
		fmt.Fprintf(out, "  %-14s %9d %14d %14d %14d %14d  %s\n",
			r.Layer, r.Payloads, r.Bytes, r.BytesMoved, r.BytesReused, r.BytesStored, state)
		total.Payloads += r.Payloads
		total.Bytes += r.Bytes
		total.BytesMoved += r.BytesMoved
		total.BytesReused += r.BytesReused
		total.BytesStored += r.BytesStored
	}
	fmt.Fprintf(out, "  %-14s %9d %14d %14d %14d %14d  %d/%d layers changed\n",
		"TOTAL", total.Payloads, total.Bytes, total.BytesMoved, total.BytesReused,
		total.BytesStored, changed, len(rows))
	return nil
}

// describeCodec prints the blob codec breakdown of a dedup checkpoint:
// how many manifest entries landed per codec, the payload-vs-stored byte
// totals, and the deepest xor-parent ancestor chain.
func describeCodec(root, dir string, out io.Writer) error {
	b, err := llmtailor.OpenDir(root)
	if err != nil {
		return err
	}
	cs, err := ckpt.ReadCodecStats(b, dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "codec %s\n", dir)
	names := make([]string, 0, len(cs.Entries))
	for name := range cs.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "  %-12s %6d entries\n", name, cs.Entries[name])
	}
	ratio := 0.0
	if cs.StoredBytes > 0 {
		ratio = float64(cs.RawBytes) / float64(cs.StoredBytes)
	}
	fmt.Fprintf(out, "  payload %d bytes, stored %d bytes (%.2fx)\n",
		cs.RawBytes, cs.StoredBytes, ratio)
	if cs.DeepestChain > 0 {
		fmt.Fprintf(out, "  deepest xor-parent chain: %d (%s)\n", cs.DeepestChain, cs.DeepestSlot)
	} else {
		fmt.Fprintln(out, "  deepest xor-parent chain: 0 (no deltas)")
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ckptstat:", err)
	os.Exit(1)
}
