package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, dir string, gcSpeedup, rawSpeedup, reduction string) {
	t.Helper()
	files := map[string]string{
		"BENCH_merge_raw.json": `{"speedup": ` + rawSpeedup + `}`,
		"BENCH_delta.json":     `{"reduction": ` + reduction + `}`,
		"BENCH_gc.json":        `{"speedup": ` + gcSpeedup + `, "blobs_examined_incremental": 87, "blobs_examined_full": 281}`,
		"BENCH_merge.json":     `{"stats": {"peak_inflight_bytes": 1000}, "max_inflight": 8388608}`,
		"BENCH_stall.json":     `{"reduction": 8.2, "stall_bytes_lazy": 8805888, "stall_bytes_snapshot": 72519552, "total_layers": 18, "layers_changed_per_step": 1}`,
		"BENCH_objstore.json":  `{"speedup": 3.3, "payload_bytes": 8388608, "part_bytes": 1048576, "workers": 8}`,
		"BENCH_compress.json":  `{"reduction": 28.2, "changed_payload_bytes": 4402944, "changed_stored_bytes": 156141, "xor_entries": 585, "deepest_chain": 1}`,
		"BENCH_reshard.json":   `{"speedup": 2.5, "max_inflight": 8388608, "raw": {"stats": {"groups": 34, "groups_raw_copied": 34, "peak_inflight_bytes": 2279424}}, "decode": {"stats": {"groups": 34, "groups_raw_copied": 0, "peak_inflight_bytes": 2279424}}}`,
		"BENCH_hub.json":       `{"shared_ratio": 144.2, "standalone_bytes": 8114000, "attached_bytes": 56272, "hub_blobs": 214}`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFloorsHold(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "13.5", "3.4", "6.2")
	if errs := runChecks(dir); len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
}

func TestRottedRecordFails(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "4.9", "3.4", "6.2") // gc floor is 5
	errs := runChecks(dir)
	if len(errs) != 1 {
		t.Fatalf("failures = %v", errs)
	}
}

func TestMissingRecordFails(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "13.5", "3.4", "6.2")
	if err := os.Remove(filepath.Join(dir, "BENCH_delta.json")); err != nil {
		t.Fatal(err)
	}
	if errs := runChecks(dir); len(errs) != 1 {
		t.Fatalf("failures = %v", errs)
	}
}

// The committed records in the repository root must clear their floors —
// this is the same gate `make bench-check` applies in CI.
func TestCommittedRecords(t *testing.T) {
	if errs := runChecks("../.."); len(errs) != 0 {
		t.Fatalf("committed perf records rotted: %v", errs)
	}
}
