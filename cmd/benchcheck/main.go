// Command benchcheck guards the repository's recorded perf floors. The
// BENCH_*.json files are the perf records future PRs diff against; the
// benchmarks that produce them assert their floors at run time, but the
// committed records themselves could silently rot (a bad re-record, a
// hand edit, drift after a refactor). CI runs benchcheck against the
// checked-in files so a record that no longer clears its floor fails the
// build instead of quietly shifting the baseline:
//
//	BENCH_merge_raw.json  raw-copy merge speedup   >= 2x
//	BENCH_delta.json      dedup bytes reduction    >= 5x
//	BENCH_gc.json         generational gc speedup  >= 5x
//	BENCH_merge.json      bounded-memory merge: peak in-flight <= cap
//	BENCH_reshard.json    zero-decode reshard splice speedup >= 2x,
//	                      and the splice path fully engages
//	BENCH_stall.json      lazy-capture stall-bytes reduction >= 5x,
//	                      and the stall scales with changed layers
//	BENCH_compress.json   blob-codec changed-layer compression >= 3x,
//	                      and xor chains within the re-base bound
//	BENCH_hub.json        cross-run hub dedup bytes-shared   >= 3x
//
// Usage: benchcheck [-dir DIR]; exits non-zero on any violated floor or
// unreadable record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// check is one floor over one record file.
type check struct {
	file string
	desc string
	ok   func(map[string]any) error
}

// number digs a float out of decoded JSON by path.
func number(m map[string]any, path ...string) (float64, error) {
	var cur any = m
	for i, p := range path {
		mm, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("missing %v", path[:i+1])
		}
		cur, ok = mm[p]
		if !ok {
			return 0, fmt.Errorf("missing %v", path[:i+1])
		}
	}
	f, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("%v is not a number", path)
	}
	return f, nil
}

// atLeast asserts a floor on a numeric field.
func atLeast(floor float64, path ...string) func(map[string]any) error {
	return func(m map[string]any) error {
		v, err := number(m, path...)
		if err != nil {
			return err
		}
		if v < floor {
			return fmt.Errorf("%v = %.2f, floor is %.1f", path, v, floor)
		}
		return nil
	}
}

var checks = []check{
	{"BENCH_merge_raw.json", "zero-decode raw-copy merge speedup >= 2x", atLeast(2, "speedup")},
	{"BENCH_delta.json", "incremental dedup bytes-written reduction >= 5x", atLeast(5, "reduction")},
	{"BENCH_gc.json", "generational gc speedup over full mark-and-sweep >= 5x", atLeast(5, "speedup")},
	{"BENCH_gc.json", "generational gc examines O(retired) blobs", func(m map[string]any) error {
		inc, err := number(m, "blobs_examined_incremental")
		if err != nil {
			return err
		}
		full, err := number(m, "blobs_examined_full")
		if err != nil {
			return err
		}
		if inc*2 > full {
			return fmt.Errorf("incremental gc examined %.0f blobs vs full's %.0f", inc, full)
		}
		return nil
	}},
	{"BENCH_objstore.json", "multipart-vs-serial object streaming speedup >= 2x", atLeast(2, "speedup")},
	{"BENCH_stall.json", "lazy-capture checkpoint stall-bytes reduction >= 5x", atLeast(5, "reduction")},
	{"BENCH_stall.json", "lazy-capture stall is O(changed layers), not O(model)", func(m map[string]any) error {
		lazy, err := number(m, "stall_bytes_lazy")
		if err != nil {
			return err
		}
		snap, err := number(m, "stall_bytes_snapshot")
		if err != nil {
			return err
		}
		total, err := number(m, "total_layers")
		if err != nil {
			return err
		}
		changed, err := number(m, "layers_changed_per_step")
		if err != nil {
			return err
		}
		// 4x slack covers unlayered optimizer groups and container framing.
		if lazy*total > snap*changed*4 {
			return fmt.Errorf("lazy stall %.0f bytes vs snapshot %.0f with %.0f/%.0f layers changed",
				lazy, snap, changed, total)
		}
		return nil
	}},
	{"BENCH_compress.json", "blob-codec changed-layer compression >= 3x", atLeast(3, "reduction")},
	{"BENCH_compress.json", "xor-parent chains stay within the re-base bound", func(m map[string]any) error {
		deepest, err := number(m, "deepest_chain")
		if err != nil {
			return err
		}
		entries, err := number(m, "xor_entries")
		if err != nil {
			return err
		}
		if entries < 1 {
			return fmt.Errorf("record has no xor-parent entries")
		}
		if deepest > 8 { // ckpt.DefaultCodecRebase
			return fmt.Errorf("deepest chain %.0f exceeds the re-base bound 8", deepest)
		}
		return nil
	}},
	{"BENCH_reshard.json", "zero-decode reshard splice speedup >= 2x", atLeast(2, "speedup")},
	{"BENCH_reshard.json", "the raw-copy splice engages on every group", func(m map[string]any) error {
		groups, err := number(m, "raw", "stats", "groups")
		if err != nil {
			return err
		}
		rawCopied, err := number(m, "raw", "stats", "groups_raw_copied")
		if err != nil {
			return err
		}
		if groups < 1 {
			return fmt.Errorf("record measured no groups")
		}
		if rawCopied != groups {
			return fmt.Errorf("raw side spliced %.0f of %.0f groups", rawCopied, groups)
		}
		return nil
	}},
	{"BENCH_reshard.json", "resharding stays within its in-flight byte cap", func(m map[string]any) error {
		for _, side := range []string{"raw", "decode"} {
			peak, err := number(m, side, "stats", "peak_inflight_bytes")
			if err != nil {
				return err
			}
			cap, err := number(m, "max_inflight")
			if err != nil {
				return err
			}
			if cap > 0 && peak > cap {
				return fmt.Errorf("%s peak in-flight %.0f bytes exceeds the %.0f cap", side, peak, cap)
			}
		}
		return nil
	}},
	{"BENCH_hub.json", "cross-run hub dedup bytes-shared >= 3x", atLeast(3, "shared_ratio")},
	{"BENCH_merge.json", "streamed merge stays within its in-flight byte cap", func(m map[string]any) error {
		peak, err := number(m, "stats", "peak_inflight_bytes")
		if err != nil {
			return err
		}
		cap, err := number(m, "max_inflight")
		if err != nil {
			return err
		}
		if cap > 0 && peak > cap {
			return fmt.Errorf("peak in-flight %.0f bytes exceeds the %.0f cap", peak, cap)
		}
		return nil
	}},
}

// runChecks verifies every floor against records under dir; it returns the
// failures instead of exiting so tests can drive it.
func runChecks(dir string) []error {
	var errs []error
	for _, c := range checks {
		path := filepath.Join(dir, c.file)
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", c.file, err))
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", c.file, err))
			continue
		}
		if err := c.ok(m); err != nil {
			errs = append(errs, fmt.Errorf("%s: %s: %w", c.file, c.desc, err))
			continue
		}
		fmt.Printf("ok   %-22s %s\n", c.file, c.desc)
	}
	return errs
}

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json perf records")
	flag.Parse()
	errs := runChecks(*dir)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("benchcheck: all recorded perf floors hold")
}
