// Command trainsim runs the simulated LLM post-training substrate: a real
// AdamW optimization of a synthetic layered objective, producing checkpoint
// directories with the same anatomy as DeepSpeed ZeRO-3 runs (consolidated
// weights + per-rank optimizer shards + config/trainer-state/manifest).
//
// Example (train, crash at step 52, leaving parity partial checkpoints):
//
//	trainsim -root /tmp/runs -run sft -model qwen2.5-7b -task sft \
//	         -steps 96 -interval 6 -strategy parity -fail-at 52
//
// Then merge with:
//
//	llmtailor gen-recipe -root /tmp/runs -run sft -model qwen2.5-7b \
//	          -fail-step 48 -output sft/merged -write recipe.yaml
//	llmtailor merge -root /tmp/runs -recipe recipe.yaml
//
// And resume by re-running trainsim with -resume sft/merged.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
	"llmtailor/internal/train"
)

func main() {
	root := flag.String("root", "", "storage root directory")
	runRoot := flag.String("run", "run", "run root under the storage root")
	modelName := flag.String("model", "llama3.2-1b", "model preset")
	sim := flag.Bool("sim", true, "train the scaled simulation geometry")
	taskName := flag.String("task", "sft", "task profile: sft or cpt")
	steps := flag.Int("steps", 96, "total optimizer steps")
	warmup := flag.Int("warmup", 5, "warmup steps")
	lr := flag.Float64("lr", 2e-3, "base learning rate")
	interval := flag.Int("interval", 6, "checkpoint interval in steps")
	strategyName := flag.String("strategy", "full", "checkpoint strategy: full, parity, filter, delta-topk")
	worldSize := flag.Int("world-size", 2, "simulated rank count for optimizer sharding")
	seed := flag.Uint64("seed", 42, "run seed")
	failAt := flag.Int("fail-at", 0, "simulate a crash right after this step (0 = none)")
	resume := flag.String("resume", "", "resume from this complete checkpoint directory")
	dedup := flag.Bool("dedup", false, "save checkpoints content-addressed: payloads dedup against the run root's objects/ store, so unchanged layers cost zero bytes")
	keepLast := flag.Int("keep-last", 0, "retain only the newest N committed checkpoints, retiring older generations (and their blobs) after each save (0 = keep all)")
	lazy := flag.Bool("lazy-capture", false, "capture checkpoints lazily layer by layer, overlapped with the next step; with -dedup, unchanged layers are recognized before any byte moves (implies async saving)")
	objstore := flag.Bool("objstore", false, "run against an ephemeral in-process object store (flat namespace, no-rename commit protocol, retrying PUTs) instead of -root")
	objLatency := flag.Duration("objstore-latency", 0, "with -objstore: per-operation request latency injected into the object store")
	shards := flag.Int("shards", 0, "with -dedup: digest-shard the run's blob store across N prefix shards (0 = flat layout)")
	hubRoot := flag.String("hub", "", "with -dedup: attach the run to this checkpoint hub before training — payloads dedup against every run sharing the hub, not just this run's history (the hub is created if absent; -shards lays out ITS store)")
	codec := flag.String("codec", "", "with -dedup: blob compression codec — raw, plane (byte-plane split + RLE), or xor (delta changed layers against the previous checkpoint)")
	codecRebase := flag.Int("codec-rebase", 0, "with -codec xor: re-base a slot to a full plane blob when its parent chain would exceed this depth (0 = default)")
	reshardEvery := flag.Int("reshard-every", 0, "elastic-resume scenario: every N steps (a multiple of -interval), stop, reshard the latest committed checkpoint to the next world size from -reshard-worlds and resume from it (0 = off)")
	reshardWorlds := flag.String("reshard-worlds", "", "with -reshard-every: comma-separated world-size schedule cycled through at each resize (e.g. \"3,2,4\")")
	flag.Parse()

	if err := run(*root, *runRoot, *modelName, *sim, *taskName, *steps, *warmup, *lr,
		*interval, *strategyName, *worldSize, *seed, *failAt, *resume, *dedup, *keepLast, *lazy,
		*objstore, *objLatency, *shards, *hubRoot, *codec, *codecRebase, *reshardEvery, *reshardWorlds); err != nil {
		fmt.Fprintln(os.Stderr, "trainsim:", err)
		os.Exit(1)
	}
}

func run(root, runRoot, modelName string, sim bool, taskName string,
	steps, warmup int, lr float64, interval int, strategyName string,
	worldSize int, seed uint64, failAt int, resume string, dedup bool, keepLast int,
	lazy bool, objstore bool, objLatency time.Duration, shards int, hubRoot string,
	codec string, codecRebase int, reshardEvery int, reshardWorlds string) error {

	var b llmtailor.Backend
	var retry *storage.Retry
	if objstore {
		// Ephemeral remote-store simulation: every write is an object PUT,
		// commits publish by marker appearance, and transient request
		// failures are absorbed by the retry wrapper.
		obj := storage.NewObjStore()
		obj.SetLatency(objLatency, 0)
		retry = storage.NewRetry(obj, int64(seed))
		b = retry
	} else {
		if root == "" {
			return fmt.Errorf("missing -root (or use -objstore)")
		}
		var err error
		b, err = llmtailor.OpenDir(root)
		if err != nil {
			return err
		}
	}
	if shards > 0 && !dedup {
		return fmt.Errorf("-shards requires -dedup (it lays out the blob store)")
	}
	if hubRoot != "" {
		// Hub-attached run: the shared store is laid out at the hub, and the
		// run's objects/ becomes a redirect into it. Init is idempotent, so
		// a fleet of trainsims pointed at one hub all converge on it.
		if !dedup {
			return fmt.Errorf("-hub requires -dedup (only content-addressed saves share a hub store)")
		}
		h := llmtailor.NewStore(b).Hub(hubRoot)
		if err := h.Init(llmtailor.HubOptions{Shards: shards}); err != nil {
			return err
		}
		if err := h.Attach(runRoot, ""); err != nil {
			return err
		}
	} else if shards > 0 {
		if err := storage.InitShards(b, runRoot+"/"+ckpt.ObjectsDirName, shards); err != nil {
			return err
		}
	}
	cfg, err := modelcfg.ByName(modelName)
	if err != nil {
		return err
	}
	trueCfg := cfg
	if sim {
		cfg = cfg.DefaultSimScale()
	}
	task, err := train.TaskByName(taskName)
	if err != nil {
		return err
	}
	strat, err := llmtailor.StrategyByName(strategyName)
	if err != nil {
		return err
	}

	tc := train.Config{
		Model: cfg, Seed: seed, Task: task,
		TotalSteps: steps, WarmupSteps: warmup, BaseLR: lr,
		CkptInterval: interval, Strategy: strat,
		WorldSize: worldSize, RunRoot: runRoot, FailAt: failAt,
		DedupCkpt: dedup, KeepLast: keepLast, LazyCapture: lazy,
		CkptCodec: codec, CkptCodecRebase: codecRebase,
	}

	var tr *train.Trainer
	var res *train.Result
	if reshardEvery > 0 {
		if resume != "" {
			return fmt.Errorf("-reshard-every cannot be combined with -resume")
		}
		tr, res, err = runElastic(tc, b, trueCfg, reshardEvery, reshardWorlds)
		if err != nil {
			return err
		}
	} else {
		if resume != "" {
			tr, err = llmtailor.ResumeTrainer(tc, b, resume)
			if err != nil {
				return err
			}
			fmt.Printf("resumed from %s at step %d\n", resume, tr.Step())
		} else {
			tr, err = llmtailor.NewTrainer(tc, b)
			if err != nil {
				return err
			}
		}
		tr.SetTrueConfig(trueCfg)
		res, err = tr.Run()
		if err != nil {
			return err
		}
	}
	fmt.Printf("model %s (%s geometry), task %s, strategy %s\n", cfg.Name, geom(sim), task.Name, strat.Name())
	fmt.Printf("steps: %d  final loss: %.4f  final eval loss: %.4f\n",
		res.FinalStep, res.FinalLoss, res.FinalEvalLoss)
	if res.Failed {
		fmt.Printf("CRASHED at step %d (simulated failure)\n", res.FinalStep)
	}
	var bytes int64
	for _, ev := range res.Ckpts {
		bytes += ev.TrueBytes
	}
	fmt.Printf("checkpoints: %d (%.2f GB at true %s geometry)\n",
		len(res.Ckpts), modelcfg.GB(bytes), trueCfg.Name)
	var retired int
	var freed int64
	for _, ev := range res.Ckpts {
		kind := "full"
		if ev.Partial {
			kind = fmt.Sprintf("partial:%d layers", len(ev.Layers))
		}
		fmt.Printf("  %-28s %-18s %8.2f GB\n", ev.Dir, kind, modelcfg.GB(ev.TrueBytes))
		retired += len(ev.Retired)
		freed += ev.BlobBytesFreed
	}
	if keepLast > 0 {
		fmt.Printf("retention: kept newest %d, retired %d checkpoints (%d blob bytes freed)\n",
			keepLast, retired, freed)
	}
	if objstore {
		fmt.Printf("object store: %d transient PUTs retried\n", retry.Retries())
	}
	if shards > 0 {
		fmt.Printf("blob store layout: %d digest-prefix shards\n", shards)
	}
	if hubRoot != "" {
		if _, id, err := llmtailor.NewStore(b).Run(runRoot).HubAttachment(); err == nil {
			fmt.Printf("hub: saves deduped into %s as %q\n", hubRoot, id)
		}
	}
	if codec != "" && codec != "raw" {
		fmt.Printf("blob codec: %s\n", codec)
	}
	if lazy {
		cs := res.Capture
		fmt.Printf("lazy capture: %d saves, %d layers gen-reused, %d payloads spooled / %d referenced\n",
			cs.Saves, cs.LayersReused, cs.PayloadsSpooled, cs.PayloadsReferenced)
		fmt.Printf("  bytes hashed %d, spooled %d, referenced %d; stall %.2fms; spool peak %d\n",
			cs.BytesHashed, cs.BytesSpooled, cs.BytesReferenced,
			float64(cs.StallNs)/1e6, cs.SpoolPeakBytes)
	}
	return nil
}

func geom(sim bool) string {
	if sim {
		return "scaled-sim"
	}
	return "true"
}

// runElastic drives the elastic-resume scenario: train in segments of
// `every` steps, and between segments repartition the latest committed
// checkpoint to the next world size from the schedule (via the same
// transform `llmtailor reshard` exposes) and resume from the resharded
// output. The aggregated result spans all segments.
func runElastic(tc train.Config, b llmtailor.Backend, trueCfg *modelcfg.Config,
	every int, worldsSpec string) (*train.Trainer, *train.Result, error) {

	if every%tc.CkptInterval != 0 {
		return nil, nil, fmt.Errorf("-reshard-every %d must be a multiple of -interval %d (segments end on a committed checkpoint)", every, tc.CkptInterval)
	}
	var worlds []int
	for _, s := range strings.Split(worldsSpec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			return nil, nil, fmt.Errorf("-reshard-worlds: bad world size %q", s)
		}
		worlds = append(worlds, w)
	}
	if len(worlds) == 0 {
		return nil, nil, fmt.Errorf("-reshard-every requires -reshard-worlds (e.g. \"3,2,4\")")
	}

	total := tc.TotalSteps
	tc.FailAt = every
	if tc.FailAt >= total {
		tc.FailAt = 0
	}
	tr, err := llmtailor.NewTrainer(tc, b)
	if err != nil {
		return nil, nil, err
	}
	tr.SetTrueConfig(trueCfg)

	agg := &train.Result{}
	for seg := 0; ; seg++ {
		res, err := tr.Run()
		if err != nil {
			return nil, nil, err
		}
		agg.History = append(agg.History, res.History...)
		agg.Ckpts = append(agg.Ckpts, res.Ckpts...)
		agg.FinalStep, agg.FinalLoss = res.FinalStep, res.FinalLoss
		agg.FinalEvalLoss, agg.Capture = res.FinalEvalLoss, res.Capture
		if !res.Failed {
			return tr, agg, nil
		}

		latest, err := ckpt.Latest(b, tc.RunRoot)
		if err != nil {
			return nil, nil, fmt.Errorf("elastic: no committed checkpoint to reshard: %w", err)
		}
		next := worlds[seg%len(worlds)]
		out := fmt.Sprintf("%s-w%d", latest, next)
		stats, err := llmtailor.ReshardCheckpoint(b, latest, out, next, llmtailor.ReshardOptions{
			Workers: 2, Dedup: tc.DedupCkpt,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("elastic: reshard %s to world %d: %w", latest, next, err)
		}
		fmt.Printf("elastic: resharded %s (world %d -> %d, %d/%d groups raw-copied) -> %s\n",
			latest, stats.WorldFrom, stats.WorldTo, stats.GroupsRawCopied, stats.Groups, out)

		tc.WorldSize = next
		tc.FailAt += every
		if tc.FailAt >= total {
			tc.FailAt = 0
		}
		tr, err = llmtailor.ResumeTrainer(tc, b, out)
		if err != nil {
			return nil, nil, fmt.Errorf("elastic: resume from %s: %w", out, err)
		}
		tr.SetTrueConfig(trueCfg)
		fmt.Printf("elastic: resumed at step %d with world size %d\n", tr.Step(), next)
	}
}
