package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	root := t.TempDir()
	err := run(root, "demo", "tiny", false, "sft",
		30, 3, 2e-3, 10, "parity", 2, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Three parity checkpoints must exist on disk.
	for _, step := range []int{10, 20, 30} {
		p := filepath.Join(root, "demo", "checkpoint-"+itoa(step), "manifest.json")
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", p)
		}
	}
}

func TestRunFailureInjection(t *testing.T) {
	root := t.TempDir()
	if err := run(root, "demo", "tiny", false, "cpt",
		30, 3, 2e-3, 10, "full", 1, 7, 15, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// Crash after step 15: only checkpoint-10 exists.
	if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-10")); err != nil {
		t.Error("checkpoint-10 missing")
	}
	if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-20")); err == nil {
		t.Error("checkpoint-20 should not exist after crash at 15")
	}
}

func TestRunResume(t *testing.T) {
	root := t.TempDir()
	if err := run(root, "demo", "tiny", false, "sft",
		20, 2, 2e-3, 10, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// Resume from the step-20 checkpoint and continue to 30.
	if err := run(root, "demo", "tiny", false, "sft",
		30, 2, 2e-3, 10, "full", 1, 7, 0, "demo/checkpoint-20", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-30")); err != nil {
		t.Error("resumed run did not checkpoint at 30")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "demo", "tiny", false, "sft", 10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err == nil {
		t.Error("missing root accepted")
	}
	root := t.TempDir()
	if err := run(root, "demo", "no-such-model", false, "sft", 10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(root, "demo", "tiny", false, "rl", 10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err == nil {
		t.Error("unknown task accepted")
	}
	if err := run(root, "demo", "tiny", false, "sft", 10, 1, 1e-3, 5, "sometimes", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "", 0, 0, ""); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestRunDedupKeepLast drives the full retention pipeline from the CLI
// surface: dedup saves journal ref records, KeepLast retires old
// generations, and the surviving checkpoints stay resumable.
func TestRunDedupKeepLast(t *testing.T) {
	root := t.TempDir()
	if err := run(root, "demo", "tiny", false, "sft",
		50, 2, 2e-3, 10, "full", 2, 7, 0, "", true, 2, false, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{10, 20, 30} {
		if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-"+itoa(step))); err == nil {
			t.Errorf("checkpoint-%d should have been retired", step)
		}
	}
	for _, step := range []int{40, 50} {
		if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-"+itoa(step), "COMMITTED")); err != nil {
			t.Errorf("checkpoint-%d missing or uncommitted", step)
		}
	}
	// The retained run still resumes and trains on.
	if err := run(root, "demo", "tiny", false, "sft",
		60, 2, 2e-3, 10, "full", 2, 7, 0, "demo/checkpoint-50", true, 2, false, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunLazyCapture drives the lazy capture path from the CLI surface:
// dedup saves with layer-wise capture overlapped against training, then a
// resume from the final checkpoint.
func TestRunLazyCapture(t *testing.T) {
	root := t.TempDir()
	if err := run(root, "demo", "tiny", false, "sft",
		30, 2, 2e-3, 10, "full", 2, 7, 0, "", true, 0, true, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{10, 20, 30} {
		if _, err := os.Stat(filepath.Join(root, "demo", "checkpoint-"+itoa(step), "COMMITTED")); err != nil {
			t.Errorf("checkpoint-%d missing or uncommitted", step)
		}
	}
	if err := run(root, "demo", "tiny", false, "sft",
		40, 2, 2e-3, 10, "full", 2, 7, 0, "demo/checkpoint-30", true, 0, true, false, 0, 0, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunObjStore drives the ephemeral object-store mode end to end: no
// filesystem root, the no-rename commit protocol underneath, dedup blobs
// digest-sharded across two prefix shards.
func TestRunObjStore(t *testing.T) {
	if err := run("", "demo", "tiny", false, "sft",
		20, 2, 2e-3, 10, "full", 2, 7, 0, "", true, 0, false, true, 0, 2, "", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// -shards without -dedup must refuse (it lays out the blob store).
	if err := run("", "demo", "tiny", false, "sft",
		10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, true, 0, 2, "", "", 0, 0, ""); err == nil {
		t.Error("-shards without -dedup accepted")
	}
}

// TestRunCodec drives xor-parent blob compression from the CLI surface:
// dedup saves with -codec xor, then a resume from the final checkpoint
// (restore must decode the delta chain transparently).
func TestRunCodec(t *testing.T) {
	root := t.TempDir()
	if err := run(root, "demo", "tiny", false, "sft",
		30, 2, 2e-3, 10, "full", 2, 7, 0, "", true, 0, false, false, 0, 0, "", "xor", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(root, "demo", "tiny", false, "sft",
		40, 2, 2e-3, 10, "full", 2, 7, 0, "demo/checkpoint-30", true, 0, false, false, 0, 0, "", "xor", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// -codec without -dedup must refuse (compression lives in the blob store).
	if err := run(root, "demo2", "tiny", false, "sft",
		10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "", "xor", 0, 0, ""); err == nil {
		t.Error("-codec without -dedup accepted")
	}
}

// TestRunHub drives the checkpoint-hub path from the CLI surface: two runs
// attached to one hub, both saving dedup checkpoints into the shared store,
// both resumable afterwards.
func TestRunHub(t *testing.T) {
	root := t.TempDir()
	for _, r := range []string{"runs/a", "runs/b"} {
		if err := run(root, r, "tiny", false, "sft",
			20, 2, 2e-3, 10, "full", 2, 7, 0, "", true, 0, false, false, 0, 4, "hub", "", 0, 0, ""); err != nil {
			t.Fatal(err)
		}
	}
	// One shared store at the hub; neither run grew a local blob tree.
	if _, err := os.Stat(filepath.Join(root, "hub", "objects")); err != nil {
		t.Fatal("no shared store at the hub")
	}
	for _, r := range []string{"runs/a", "runs/b"} {
		if _, err := os.Stat(filepath.Join(root, r, "objects", "hubref.json")); err != nil {
			t.Errorf("%s not attached: %v", r, err)
		}
	}
	// Both runs resume from the shared store.
	if err := run(root, "runs/b", "tiny", false, "sft",
		30, 2, 2e-3, 10, "full", 2, 7, 0, "runs/b/checkpoint-20", true, 0, false, false, 0, 0, "hub", "", 0, 0, ""); err != nil {
		t.Fatal(err)
	}
	// -hub without -dedup must refuse.
	if err := run(root, "runs/c", "tiny", false, "sft",
		10, 1, 1e-3, 5, "full", 1, 7, 0, "", false, 0, false, false, 0, 0, "hub", "", 0, 0, ""); err == nil {
		t.Error("-hub without -dedup accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
