// BenchmarkHubCrossRunDedup measures what the checkpoint hub buys on the
// workload it exists for: many runs fine-tuning from the same base, each
// saving content-addressed checkpoints. Standalone, every run's first save
// pays the full payload into its own store; attached to a hub, a run whose
// layers match blobs a peer already published writes only manifests and
// journal records. The benchmark saves one identical model state twice —
// once into a fresh standalone store, once into a hub a peer has already
// warmed — and compares metered bytes written. It emits BENCH_hub.json and
// asserts the acceptance floor inline (≥3× bytes shared), so the perf
// property is CI-checked on every bench-smoke pass.
package llmtailor_test

import (
	"testing"

	"llmtailor"
	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

const hubBenchSeed = 4242

// hubBenchSave writes one dedup checkpoint of the deterministic seed-derived
// state into dir, counting bytes through the meter.
func hubBenchSave(b *testing.B, meter storage.Backend, cfg *modelcfg.Config, dir string) {
	b.Helper()
	m, err := model.NewInitialized(cfg, tensor.BF16, hubBenchSeed)
	if err != nil {
		b.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		b.Fatal(err)
	}
	if err := ckpt.Save(meter, ckpt.SaveSpec{Dir: dir, Model: m, Optim: o,
		WorldSize: 2, Strategy: "full", Dedup: true,
		State: ckpt.TrainerState{Step: 100, Seed: hubBenchSeed}}); err != nil {
		b.Fatal(err)
	}
}

// hubBenchRecord is the schema of BENCH_hub.json.
type hubBenchRecord struct {
	Bench           string  `json:"bench"`
	Model           string  `json:"model"`
	StandaloneBytes int64   `json:"standalone_bytes"`
	AttachedBytes   int64   `json:"attached_bytes"`
	SharedRatio     float64 `json:"shared_ratio"`
	HubBlobs        int     `json:"hub_blobs"`
}

func BenchmarkHubCrossRunDedup(b *testing.B) {
	cfg := modelcfg.Llama32_1B().DefaultSimScale()
	record := hubBenchRecord{Bench: "hub-cross-run-dedup", Model: cfg.Name}

	for i := 0; i < b.N; i++ {
		// Standalone: a fresh run root with its own store pays the full
		// payload on its first save.
		solo := storage.NewMeter(storage.NewMem(), storage.Profile{})
		hubBenchSave(b, solo, cfg, "solo/checkpoint-100")
		record.StandaloneBytes = solo.Stats().BytesWritten

		// Hub-attached: run A warms the shared store (unmetered), then run
		// B saves the same base state — every payload blob is already
		// published, so only manifests and journal records hit the backend.
		mem := storage.NewMem()
		st := llmtailor.NewStore(mem)
		if err := st.Hub("hub").Init(llmtailor.HubOptions{}); err != nil {
			b.Fatal(err)
		}
		for _, r := range []string{"runs/a", "runs/b"} {
			if err := st.Hub("hub").Attach(r, ""); err != nil {
				b.Fatal(err)
			}
		}
		warm := storage.NewMeter(mem, storage.Profile{})
		hubBenchSave(b, warm, cfg, "runs/a/checkpoint-100")
		meter := storage.NewMeter(mem, storage.Profile{})
		hubBenchSave(b, meter, cfg, "runs/b/checkpoint-100")
		record.AttachedBytes = meter.Stats().BytesWritten

		blobs, err := ckpt.ScanBlobs(mem, "runs/b")
		if err != nil {
			b.Fatal(err)
		}
		record.HubBlobs = len(blobs)
	}

	record.SharedRatio = float64(record.StandaloneBytes) / float64(record.AttachedBytes)
	b.ReportMetric(record.SharedRatio, "x-bytes-shared")
	b.Logf("standalone %d B, hub-attached %d B, shared ratio %.1fx (%d hub blobs)",
		record.StandaloneBytes, record.AttachedBytes, record.SharedRatio, record.HubBlobs)

	// Acceptance floor: a hub-attached peer saving an already-published
	// base must write at least 3x fewer bytes than a standalone first save.
	if record.SharedRatio < 3 {
		b.Fatalf("cross-run dedup ratio %.2fx below the 3x floor (standalone %d B, attached %d B)",
			record.SharedRatio, record.StandaloneBytes, record.AttachedBytes)
	}
	writeBenchJSON(b, "BENCH_hub.json", record)
}
