package llmtailor_test

import (
	"strings"
	"testing"

	"llmtailor"
	"llmtailor/internal/storage"
	"llmtailor/internal/train"
)

// trainerCfg builds a short dedup trainer config for one run root.
func trainerCfg(t *testing.T, root string, steps int) llmtailor.TrainerConfig {
	t.Helper()
	mc, err := llmtailor.ModelByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	task, err := train.TaskByName("sft")
	if err != nil {
		t.Fatal(err)
	}
	return llmtailor.TrainerConfig{Model: mc, Task: task, Seed: 11,
		TotalSteps: steps, BaseLR: 2e-3, CkptInterval: 2, WorldSize: 2,
		RunRoot: root, DedupCkpt: true}
}

// trainAndSave produces a short dedup run under root using the simulated
// trainer, returning the checkpoint directories.
func trainAndSave(t *testing.T, b llmtailor.Backend, root string, steps int) []string {
	t.Helper()
	tr, err := llmtailor.NewTrainer(trainerCfg(t, root, steps), b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	dirs, err := llmtailor.NewStore(b).Run(root).List()
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no checkpoints: %v, %v", dirs, err)
	}
	return dirs
}

// TestRunHandleDelegation: the handle methods and their deprecated free-
// function counterparts see the same state.
func TestRunHandleDelegation(t *testing.T) {
	b := llmtailor.NewMemBackend()
	trainAndSave(t, b, "run", 6)
	run := llmtailor.NewStore(b).Run("run")

	latest, err := run.Latest()
	if err != nil {
		t.Fatal(err)
	}
	oldLatest, err := llmtailor.LatestCheckpoint(b, "run")
	if err != nil || oldLatest != latest {
		t.Fatalf("latest: handle %q, free %q (%v)", latest, oldLatest, err)
	}

	scan, err := run.Scan(llmtailor.ScanOptions{Blobs: true, Refs: true, Codecs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Dirs) == 0 || len(scan.Blobs) == 0 || len(scan.Refs) == 0 || len(scan.Codecs) == 0 {
		t.Fatalf("scan views empty: %d dirs %d blobs %d refs %d codecs",
			len(scan.Dirs), len(scan.Blobs), len(scan.Refs), len(scan.Codecs))
	}
	oldBlobs, err := llmtailor.ScanCheckpointBlobs(b, "run")
	if err != nil || len(oldBlobs) != len(scan.Blobs) {
		t.Fatalf("blob scan: handle %d, free %d (%v)", len(scan.Blobs), len(oldBlobs), err)
	}

	// The scan defaults leave unrequested views nil.
	lean, err := run.Scan(llmtailor.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lean.Blobs != nil || lean.Refs != nil || lean.Codecs != nil {
		t.Fatalf("unrequested views populated: %+v", lean)
	}

	// GC flavours through one entry point.
	dry, err := run.GC(llmtailor.GCOptions{Full: true, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := run.GC(llmtailor.GCOptions{Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.RemovedBlobs) != len(dry.RemovedBlobs) {
		t.Fatalf("dry-run/full disagree: %d vs %d", len(dry.RemovedBlobs), len(full.RemovedBlobs))
	}
	if _, err := run.GC(llmtailor.GCOptions{}); err != nil {
		t.Fatal(err)
	}

	rep, err := run.Retain(llmtailor.RetainOptions{KeepLast: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) == 0 {
		t.Fatalf("retain kept everything: %+v", rep)
	}
	if _, err := run.Repair(); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardsErrorSurfaced: the Shards method distinguishes a flat
// layout (0, nil) from a store that cannot open; the deprecated BlobShards
// still flattens both to 0.
func TestRunShardsErrorSurfaced(t *testing.T) {
	b := llmtailor.NewMemBackend()
	run := llmtailor.NewStore(b).Run("run")
	if n, err := run.Shards(); n != 0 || err != nil {
		t.Fatalf("flat layout: %d, %v", n, err)
	}
	if err := storage.InitShards(b, "run/objects", 8); err != nil {
		t.Fatal(err)
	}
	if n, err := run.Shards(); n != 8 || err != nil {
		t.Fatalf("sharded layout: %d, %v", n, err)
	}
	// Corrupt shards.json: the old signature reports a flat layout, the
	// new one the actual problem.
	if err := b.WriteFile("run/objects/"+storage.ShardConfigName, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if n := llmtailor.BlobShards(b, "run"); n != 0 {
		t.Fatalf("BlobShards on corrupt config = %d", n)
	}
	if _, err := run.Shards(); err == nil {
		t.Fatal("Shards swallowed the corrupt shards.json")
	}
}

// TestHubHandleEndToEnd drives the public hub surface: init, attach two
// trainer runs, cross-run dedup, stat, GC, detach.
func TestHubHandleEndToEnd(t *testing.T) {
	b := llmtailor.NewMemBackend()
	st := llmtailor.NewStore(b)
	hub := st.Hub("hub")
	if err := hub.Init(llmtailor.HubOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"runs/a", "runs/b"} {
		if err := hub.Attach(r, ""); err != nil {
			t.Fatal(err)
		}
	}
	trainAndSave(t, b, "runs/a", 4)
	trainAndSave(t, b, "runs/b", 4)

	hubRoot, id, err := st.Run("runs/a").HubAttachment()
	if err != nil || hubRoot != "hub" || id != "a" {
		t.Fatalf("attachment = %q %q %v", hubRoot, id, err)
	}

	info, err := hub.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Runs) != 2 || info.Shards != 4 || info.Blobs == 0 {
		t.Fatalf("stat = %+v", info)
	}

	// Identical seeds: run B's saves dedup against run A's blobs, so the
	// store holds far less than two runs' worth.
	var runPins int
	for _, r := range info.Runs {
		if r.Referenced > runPins {
			runPins = r.Referenced
		}
	}
	if info.Blobs >= 2*runPins {
		t.Fatalf("no cross-run dedup: %d blobs for max %d per-run refs", info.Blobs, runPins)
	}

	if _, err := hub.GC(false); err != nil {
		t.Fatal(err)
	}
	// Both runs still resume from the shared store after the sweep.
	for _, r := range []string{"runs/a", "runs/b"} {
		if _, err := st.Run(r).Resume(trainerCfg(t, r, 6)); err != nil {
			t.Fatalf("resume %s: %v", r, err)
		}
	}

	if err := hub.Detach("runs/b", false); err == nil ||
		!strings.Contains(err.Error(), "force") {
		t.Fatalf("detach with live refs: %v", err)
	}
	if err := hub.Detach("runs/b", true); err != nil {
		t.Fatal(err)
	}
	if hubRoot, _, err := st.Run("runs/b").HubAttachment(); err != nil || hubRoot != "" {
		t.Fatalf("still attached after detach: %q, %v", hubRoot, err)
	}
}

// TestDedupifyOptionsDelegation: the options-struct form matches the
// deprecated zero-arg free function.
func TestDedupifyOptionsDelegation(t *testing.T) {
	b := llmtailor.NewMemBackend()
	cfg := trainerCfg(t, "run", 2)
	cfg.DedupCkpt = false
	tr, err := llmtailor.NewTrainer(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(); err != nil {
		t.Fatal(err)
	}
	run := llmtailor.NewStore(b).Run("run")
	dirs, err := run.List()
	if err != nil || len(dirs) == 0 {
		t.Fatal(err)
	}
	name := dirs[len(dirs)-1][len("run/"):]
	rep, err := run.Dedupify(name, llmtailor.DedupifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlobsPut == 0 {
		t.Fatalf("dedupify wrote nothing: %+v", rep)
	}
	// Materialize through the handle round-trips the container.
	if err := run.MaterializeWeights(name, "out/model.ltsf", llmtailor.MaterializeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !b.Exists("out/model.ltsf") {
		t.Fatal("no materialized container")
	}
	if err := run.MaterializeOptimShard(name, 0, "out/shard0.ltos", llmtailor.MaterializeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !b.Exists("out/shard0.ltos") {
		t.Fatal("no materialized shard container")
	}
	// The deprecated dir-path forms still work.
	if err := llmtailor.MaterializeWeights(b, "run/"+name, "out/model2.ltsf"); err != nil {
		t.Fatal(err)
	}
	a, _ := b.ReadFile("out/model.ltsf")
	c, _ := b.ReadFile("out/model2.ltsf")
	if string(a) != string(c) {
		t.Fatal("handle and free materialization differ")
	}
}
