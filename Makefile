# Tier-1 verification plus the perf-record targets. `make ci` is what a CI
# workflow should run.

GO ?= go

.PHONY: all build test race vet fmt-check ci bench bench-record clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci: fmt-check vet build race

# Quick benchmark sweep of the streaming merge hot path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMerge' -benchmem .

# Refresh BENCH_merge.json (the perf record future PRs diff against) with a
# stable measurement.
bench-record:
	$(GO) test -run '^$$' -bench 'BenchmarkMergeFullStreamed' -benchtime=5x .
	@cat BENCH_merge.json

clean:
	rm -f llmtailor trainsim paperbench ckptstat
