# Tier-1 verification plus the perf-record targets. `make ci` is what a CI
# workflow should run.

GO ?= go

.PHONY: all build test race vet fmt-check ci ci-fast ci-slow cover fuzz-smoke doctor-smoke objstore bench bench-smoke bench-check bench-record clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays whole paper use-cases; under the race
# detector it alone needs ~25 minutes, past go test's default 10m
# per-binary timeout.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# CI is split into two lanes so the workflow can run them as parallel
# jobs: ci-fast is the quick correctness gate (a couple of minutes),
# ci-slow carries the race detector, smokes, perf floors and coverage.
# `ci` stays the union for local one-shot verification.
ci-fast: fmt-check vet build test objstore

ci-slow: race fuzz-smoke doctor-smoke bench-check cover

ci: ci-fast ci-slow

# Coverage over the internal packages: per-function table, an HTML report
# (cover.html) and a hard floor so coverage cannot silently regress. The
# floor sits below the current total (~85%) to absorb noise, not drift.
COVER_FLOOR ?= 80
cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% is below the %s%% floor\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %s%%)\n", t, f }'

# Brief run of every fuzz target (the checked-in testdata/fuzz corpus plus
# ~5s of new coverage each); any reader panic fails the build.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/ckpt -run '^$$' -fuzz '^FuzzReadShardFile$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ckpt -run '^$$' -fuzz '^FuzzLTSFReader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ckpt -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzBlobCodec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/storage -run '^$$' -fuzz '^FuzzXORResolver$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/recipe -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)

# Exercise the doctor exit-code contract end to end: 2 when torn/orphaned
# checkpoint directories are found, 0 after -fix repairs them. The second
# scenario covers the dedup path: a real content-addressed run is seeded
# with a stray blob and a stale ref index (a record deleted out from under
# a committed checkpoint); doctor must exit 2, and -fix must rebuild the
# index from the manifests and exit 0. The third scenario covers the hub
# path: two runs attached to one shared store, a stray blob planted at the
# HUB's objects tree plus one run's namespaced ref journal deleted; doctor
# on that run must exit 2, -fix must rebuild its journal at the hub, and
# the peer run must stay healthy throughout.
doctor-smoke:
	@tmp=$$(mktemp -d); trap "rm -rf $$tmp" EXIT; \
	$(GO) build -o $$tmp/llmtailor ./cmd/llmtailor || exit 1; \
	mkdir -p $$tmp/root/run/checkpoint-10 $$tmp/root/run/checkpoint-20.tmp; \
	echo '{}' > $$tmp/root/run/checkpoint-10/manifest.json; \
	$$tmp/llmtailor doctor -root $$tmp/root -run run > /dev/null; rc=$$?; \
	if [ $$rc -ne 2 ]; then echo "doctor-smoke: want exit 2 on sick root, got $$rc"; exit 1; fi; \
	$$tmp/llmtailor doctor -root $$tmp/root -run run -fix > /dev/null || \
		{ echo "doctor-smoke: -fix failed"; exit 1; }; \
	$$tmp/llmtailor doctor -root $$tmp/root -run run > /dev/null || \
		{ echo "doctor-smoke: root still sick after -fix"; exit 1; }; \
	$(GO) build -o $$tmp/trainsim ./cmd/trainsim || exit 1; \
	$$tmp/trainsim -root $$tmp/root -run drun -model tiny -sim=false -steps 12 -interval 6 -dedup > /dev/null || \
		{ echo "doctor-smoke: dedup trainsim failed"; exit 1; }; \
	mkdir -p $$tmp/root/drun/objects/zz; \
	echo junk > $$tmp/root/drun/objects/zz/not-a-blob; \
	rec=$$(ls $$tmp/root/drun/objects/refs/gen-*.ref | head -1); \
	rm "$$rec"; \
	$$tmp/llmtailor doctor -root $$tmp/root -run drun > /dev/null; rc=$$?; \
	if [ $$rc -ne 2 ]; then echo "doctor-smoke: want exit 2 on stale ref index, got $$rc"; exit 1; fi; \
	$$tmp/llmtailor doctor -root $$tmp/root -run drun -fix > /dev/null || \
		{ echo "doctor-smoke: dedup -fix failed"; exit 1; }; \
	$$tmp/llmtailor doctor -root $$tmp/root -run drun > /dev/null || \
		{ echo "doctor-smoke: dedup root still sick after -fix"; exit 1; }; \
	ls $$tmp/root/drun/objects/refs/gen-*.ref > /dev/null || \
		{ echo "doctor-smoke: -fix did not rebuild the ref index"; exit 1; }; \
	$$tmp/llmtailor hub init -root $$tmp/root -hub hub -shards 4 > /dev/null || \
		{ echo "doctor-smoke: hub init failed"; exit 1; }; \
	for r in ha hb; do \
		$$tmp/llmtailor hub attach -root $$tmp/root -hub hub -run $$r > /dev/null || \
			{ echo "doctor-smoke: hub attach $$r failed"; exit 1; }; \
		$$tmp/trainsim -root $$tmp/root -run $$r -model tiny -sim=false -steps 12 -interval 6 -dedup -hub hub > /dev/null || \
			{ echo "doctor-smoke: hub trainsim $$r failed"; exit 1; }; \
	done; \
	mkdir -p $$tmp/root/hub/objects/zz; \
	echo junk > $$tmp/root/hub/objects/zz/not-a-blob; \
	rm $$tmp/root/hub/objects/refs/ha/gen-*.ref; \
	$$tmp/llmtailor doctor -root $$tmp/root -run ha > /dev/null; rc=$$?; \
	if [ $$rc -ne 2 ]; then echo "doctor-smoke: want exit 2 on stale hub ref journal, got $$rc"; exit 1; fi; \
	$$tmp/llmtailor doctor -root $$tmp/root -run ha -fix > /dev/null || \
		{ echo "doctor-smoke: hub -fix failed"; exit 1; }; \
	$$tmp/llmtailor doctor -root $$tmp/root -run ha > /dev/null || \
		{ echo "doctor-smoke: hub run still sick after -fix"; exit 1; }; \
	$$tmp/llmtailor doctor -root $$tmp/root -run hb > /dev/null || \
		{ echo "doctor-smoke: peer run hb sick after ha repair"; exit 1; }; \
	ls $$tmp/root/hub/objects/refs/ha/gen-*.ref > /dev/null || \
		{ echo "doctor-smoke: -fix did not rebuild the namespaced ref journal"; exit 1; }; \
	echo "doctor-smoke: OK"

# Object-store lane: the cross-backend conformance matrix, the object
# store's own suites (atomic PUTs, compose, multipart, retry metering),
# the no-rename commit-protocol crash explorations (save and elastic
# reshard) and the reshard round-trip — re-run with injected
# per-request latency so the remote-store timing paths (parallel part
# uploads overlapping the link, retry backoff on the sim clock) execute
# with real sleeps rather than degenerate zero-latency ones.
OBJSTORE_LAT_US ?= 200
objstore:
	OBJSTORE_LAT_US=$(OBJSTORE_LAT_US) $(GO) test ./internal/storage \
		-run 'TestBackendConformance|TestRenameSupportedProbe|TestObjStore|TestMultipart|TestRetry|TestMeterCharges'
	$(GO) test ./internal/ckpt -run 'TestCrashPointExplorationObjStoreSave|TestShardedObjStoreRoundTrip'
	$(GO) test ./internal/reshard -run 'TestReshardObjStore|TestCrashPointExplorationReshardObjStore'
	$(GO) test -race ./internal/ckpt -run 'TestShardedGCRacingConcurrentSave'

# Quick benchmark sweep of the streaming merge hot path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMerge' -benchmem .

# One iteration of every benchmark in the repo: benchmarks compile and run
# on each CI pass instead of bit-rotting between perf PRs. Perf-record
# files are NOT refreshed (that needs BENCH_RECORD=1, see bench-record).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -timeout 30m ./...

# Perf floors, both live and recorded: bench-smoke runs every benchmark
# once (the key benchmarks assert their floors inline — raw merge >= 2x,
# dedup delta >= 5x, generational gc >= 5x, lazy-capture stall >= 5x,
# multipart object streaming >= 2x), then benchcheck verifies the
# committed BENCH_*.json records still clear the same floors, so a stale
# or hand-edited perf record fails CI instead of silently shifting the
# baseline future PRs diff against.
bench-check: bench-smoke
	$(GO) run ./cmd/benchcheck

# Refresh the committed BENCH_*.json perf records (the baselines future
# PRs diff against) with stable measurements.
bench-record:
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkMergeFullStreamed|BenchmarkMergeRawVsDecode' -benchtime=5x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkIncrementalSave' -benchtime=3x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkGCIncremental' -benchtime=3x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkCaptureStall' -benchtime=3x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkObjStoreMultipart' -benchtime=10x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkCompressedSave' -benchtime=3x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkReshardRawVsDecode' -benchtime=5x .
	BENCH_RECORD=1 $(GO) test -run '^$$' -bench 'BenchmarkHubCrossRunDedup' -benchtime=3x .
	@cat BENCH_merge.json BENCH_merge_raw.json BENCH_delta.json BENCH_gc.json BENCH_stall.json BENCH_objstore.json BENCH_compress.json BENCH_reshard.json BENCH_hub.json

clean:
	rm -f llmtailor trainsim paperbench ckptstat cover.out cover.html
