package tailor

import (
	"fmt"
	"sync/atomic"
	"time"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/parallel"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// LoadOrder selects how optimizer shard files are loaded.
type LoadOrder uint8

const (
	// Straightforward loads each (checkpoint, rank) shard file exactly
	// once and extracts every needed group from it — the efficient order
	// ("layers 1–16 from checkpoint-100, layers 17–32 from checkpoint-200").
	Straightforward LoadOrder = iota
	// Interleaved replicates the paper's pathological "parity" measurement
	// (§5.4, Table 7): layers are processed strictly in model order and the
	// source shard file is re-loaded for every layer, because the optimizer
	// state can only be accessed after a full file load and nothing is
	// cached across layers.
	Interleaved
)

// String names the load order for reports.
func (o LoadOrder) String() string {
	if o == Interleaved {
		return "interleaved"
	}
	return "straightforward"
}

// Options tunes a merge run.
type Options struct {
	// Workers bounds both the tensor-read parallelism of the weights
	// pipeline and the rank-level parallelism of optimizer merging
	// (default 1; the paper's multiprocessing corresponds to >1).
	Workers int
	// LoadOrder selects shard-file loading behaviour (default
	// Straightforward).
	LoadOrder LoadOrder
	// ChunkBytes is the streaming I/O chunk size for container writes
	// (default storage.DefaultChunkBytes).
	ChunkBytes int
	// MaxInFlight bounds the total payload bytes of tensors admitted into
	// the weights pipeline and not yet written to the output container.
	// 0 (default) means unbounded; Stats.PeakInFlightBytes reports the
	// high-water mark either way.
	MaxInFlight int64
}

// Stats reports what a merge did.
type Stats struct {
	// TensorsRead counts individual weight tensors fetched lazily.
	TensorsRead int
	// ShardFileLoads counts whole optimizer shard-file reads, the dominant
	// I/O cost (Table 7's driver).
	ShardFileLoads int64
	// CheckpointsUsed is the number of distinct source checkpoints.
	CheckpointsUsed int
	// WallTime is the measured duration of the merge.
	WallTime time.Duration
	// BytesRead counts payload and container bytes fetched from sources
	// (weight tensor payloads, whole shard files, copied configs).
	BytesRead int64
	// BytesWritten counts bytes of output containers and configs.
	BytesWritten int64
	// PeakInFlightBytes is the high-water mark of tensor payload bytes
	// admitted into the weights pipeline and not yet written — the
	// quantity Options.MaxInFlight bounds.
	PeakInFlightBytes int64
}

// Merge executes a recipe end to end and returns merge statistics. Blend
// methods (linear, slerp) take the weights-only path; passthrough builds and
// executes a full layer-level plan including optimizer state.
func Merge(b storage.Backend, r *recipe.Recipe, opts Options) (*Stats, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.IsBlend() {
		start := time.Now()
		stats := &Stats{}
		if err := mergeBlend(b, r, opts, stats); err != nil {
			return nil, err
		}
		stats.WallTime = time.Since(start)
		return stats, nil
	}
	plan, err := NewPlan(b, r)
	if err != nil {
		return nil, err
	}
	return Execute(b, plan, opts)
}

// Execute runs a previously validated plan. The output directory is built
// under the same commit protocol as ckpt.Save: every file stages into
// `<output>.tmp`, a COMMITTED marker seals the tree, and one atomic rename
// publishes it before the latest pointer moves — a merge that crashes
// mid-flight leaves sources and any previous output untouched.
func Execute(b storage.Backend, plan *Plan, opts Options) (*Stats, error) {
	start := time.Now()
	stats := &Stats{CheckpointsUsed: len(plan.Sources)}

	txn, err := ckpt.Begin(b, plan.Recipe.Output)
	if err != nil {
		return nil, err
	}
	defer txn.Abort()
	out, outDir := txn.Backend(), txn.Dir()

	if err := mergeWeights(out, outDir, plan, opts, stats); err != nil {
		return nil, err
	}
	if plan.Recipe.Optimizer {
		if err := mergeOptimizer(out, outDir, plan, opts, stats); err != nil {
			return nil, err
		}
	}
	if err := copyConfigs(b, out, outDir, plan, stats); err != nil {
		return nil, err
	}
	if err := txn.Commit(plan.Sources[plan.Recipe.ConfigsSource()].State.Step); err != nil {
		return nil, err
	}
	// Refresh the run root's latest pointer so resume tooling finds the
	// merged checkpoint. For a single-segment Output ("merged") the run
	// root is the backend root itself, so the pointer lands at the
	// root-level "latest" — see ckpt.LatestPointerPath.
	if err := ckpt.WriteLatestPointer(b, plan.Recipe.Output); err != nil {
		return nil, err
	}
	stats.WallTime = time.Since(start)
	return stats, nil
}

// mergeWeights assembles the consolidated output weights file as a bounded-
// memory pipeline: per-tensor read jobs are admitted under the MaxInFlight
// byte gate (in model order, which makes the gate deadlock-free), fanned out
// over Options.Workers readers, and drained by a single in-order consumer
// streaming into the output container. Peak memory is bounded by the gate
// instead of the full model size, and reads overlap both each other and the
// output write.
func mergeWeights(out storage.Backend, outDir string, plan *Plan, opts Options, stats *Stats) error {
	outDType := tensor.BF16
	if plan.Recipe.DType != "" {
		d, err := tensor.ParseDType(plan.Recipe.DType)
		if err != nil {
			return err
		}
		outDType = d
	}
	w, err := ckpt.NewLTSFWriter(out, outDir+"/model.ltsf", plan.Config.Name, opts.ChunkBytes)
	if err != nil {
		return err
	}
	defer w.Abort()

	type job struct {
		spec modelcfg.TensorSpec
		src  string
	}
	type done struct {
		t        *tensor.Tensor
		srcBytes int64
	}
	gate := parallel.NewByteGate(opts.MaxInFlight)
	pipe := parallel.NewPipeline(opts.Workers, pipelineDepth(opts.Workers),
		func(j job) (done, error) {
			t, err := plan.Sources[j.src].Weights().ReadTensor(j.spec.Name)
			if err != nil {
				return done{}, fmt.Errorf("tailor: read %s from %s: %w", j.spec.Name, j.src, err)
			}
			srcBytes := t.Bytes()
			if t.DType != outDType {
				t = t.Convert(outDType)
			}
			return done{t, srcBytes}, nil
		},
		func(d done) error {
			if err := w.WriteTensor(d.t); err != nil {
				return err
			}
			stats.TensorsRead++
			stats.BytesRead += d.srcBytes
			return nil
		})

	for _, spec := range plan.Config.Tensors() {
		srcPath := plan.Assign[spec.Layer]
		cost := weightCost(plan.Sources[srcPath].Weights(), spec, outDType)
		// Admission happens in push order and release in sink order, so the
		// gate can never strand the head-of-line job behind later ones.
		gate.Acquire(cost)
		if err := pipe.PushWithCleanup(job{spec, srcPath}, func() { gate.Release(cost) }); err != nil {
			gate.Release(cost)
			break
		}
	}
	if err := pipe.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	stats.BytesWritten += w.BytesWritten()
	if p := gate.Peak(); p > stats.PeakInFlightBytes {
		stats.PeakInFlightBytes = p
	}
	return nil
}

// weightCost estimates the in-flight bytes of one tensor job: the stored
// source payload, plus the converted copy when the output dtype differs.
func weightCost(src *ckpt.LTSFReader, spec modelcfg.TensorSpec, outDType tensor.DType) int64 {
	outBytes := spec.NumElems() * int64(outDType.Size())
	srcBytes, ok := src.PayloadSize(spec.Name)
	if !ok {
		return outBytes
	}
	if srcBytes != outBytes {
		// A dtype conversion briefly holds both representations.
		return srcBytes + outBytes
	}
	return srcBytes
}

// pipelineDepth bounds how many completed tensors may queue between the
// reader pool and the ordered writer; the byte gate is the real memory
// bound, this only keeps the ordering queue short.
func pipelineDepth(workers int) int {
	if workers < 1 {
		workers = 1
	}
	return workers
}

// mergeOptimizer assembles one output shard file per rank by copying group
// shards from the sources. Ranks run under a bounded worker pool; each
// rank's output streams group by group through a ShardFileWriter, so a
// worker's peak memory is one rank shard, never the whole optimizer state.
func mergeOptimizer(out storage.Backend, outDir string, plan *Plan, opts Options, stats *Stats) error {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var loads, bytesIn, bytesOut atomic.Int64

	err := parallel.ForEach(workers, plan.WorldSize, func(rank int) error {
		shards, metas, step, n, readBytes, err := buildRankShards(plan, opts.LoadOrder, rank)
		if err != nil {
			return err
		}
		loads.Add(n)
		bytesIn.Add(readBytes)
		name := outDir + "/" + ckpt.ShardFileName(rank)
		w, err := ckpt.NewShardFileWriter(out, name, rank, plan.WorldSize, step, plan.Layout.Kind, opts.ChunkBytes)
		if err != nil {
			return err
		}
		defer w.Abort()
		for i, m := range metas {
			if err := w.WriteGroup(m, shards[i]); err != nil {
				return err
			}
			shards[i] = nil // release the shard as soon as it is spooled
		}
		if err := w.Close(); err != nil {
			return err
		}
		bytesOut.Add(w.BytesWritten())
		return nil
	})
	stats.ShardFileLoads = loads.Load()
	stats.BytesRead += bytesIn.Load()
	stats.BytesWritten += bytesOut.Load()
	return err
}

// buildRankShards gathers rank's shard of every layout group from the
// assigned sources, honouring the requested load order. It returns the
// shards in layout order, their metadata, the maximum source step, the
// number of shard-file loads performed and the bytes those loads read.
func buildRankShards(plan *Plan, order LoadOrder, rank int) (
	[]*zero.GroupShard, []ckpt.ShardGroupMeta, int, int64, int64, error) {

	nGroups := plan.Layout.NumGroups()
	shards := make([]*zero.GroupShard, nGroups)
	metas := make([]ckpt.ShardGroupMeta, nGroups)
	var loads, readBytes int64
	maxStep := 0

	extract := func(f *ckpt.ShardFile, ref modelcfg.LayerRef) error {
		groups, err := plan.Layout.GroupsOfLayer(ref)
		if err != nil {
			return err
		}
		for _, gi := range groups {
			s, m, err := f.GroupByIndex(gi)
			if err != nil {
				return fmt.Errorf("tailor: layer %s: %w", ref, err)
			}
			if m.Numel != plan.Layout.Groups[gi].Numel {
				return fmt.Errorf("tailor: layer %s group %d numel %d != layout %d", ref, gi, m.Numel, plan.Layout.Groups[gi].Numel)
			}
			shards[gi] = s
			metas[gi] = m
		}
		if f.Step > maxStep {
			maxStep = f.Step
		}
		return nil
	}

	switch order {
	case Straightforward:
		// One load per (source, rank); extract all of that source's layers.
		bySrc := map[string][]modelcfg.LayerRef{}
		for ref, path := range plan.Assign {
			bySrc[path] = append(bySrc[path], ref)
		}
		// Deterministic source order.
		for _, path := range plan.Recipe.Checkpoints() {
			refs, ok := bySrc[path]
			if !ok {
				continue
			}
			f, err := plan.Sources[path].ReadOptimShard(rank)
			if err != nil {
				return nil, nil, 0, 0, 0, err
			}
			loads++
			readBytes += f.FileBytes
			for _, ref := range refs {
				if err := extract(f, ref); err != nil {
					return nil, nil, 0, 0, 0, err
				}
			}
		}
	case Interleaved:
		// Model order; reload the source file for every layer, caching
		// nothing (the paper's worst-case measurement).
		for _, ref := range plan.Config.AllLayers() {
			path := plan.Assign[ref]
			f, err := plan.Sources[path].ReadOptimShard(rank)
			if err != nil {
				return nil, nil, 0, 0, 0, err
			}
			loads++
			readBytes += f.FileBytes
			if err := extract(f, ref); err != nil {
				return nil, nil, 0, 0, 0, err
			}
		}
	default:
		return nil, nil, 0, 0, 0, fmt.Errorf("tailor: unknown load order %d", order)
	}

	for gi := range shards {
		if shards[gi] == nil {
			return nil, nil, 0, 0, 0, fmt.Errorf("tailor: rank %d: group %d (%s) never filled", rank, gi, plan.Layout.Groups[gi].Layer)
		}
	}
	return shards, metas, maxStep, loads, readBytes, nil
}

// copyConfigs copies configuration files verbatim from the designated
// source (§4.4) and writes the output manifest. Sources are read through
// the original backend; everything written goes through the transaction's
// recording backend into the staging directory.
func copyConfigs(b, out storage.Backend, outDir string, plan *Plan, stats *Stats) error {
	src := plan.Recipe.ConfigsSource()
	for _, f := range []string{"config.json", "trainer_state.json"} {
		data, err := b.ReadFile(src + "/" + f)
		if err != nil {
			return fmt.Errorf("tailor: copy %s: %w", f, err)
		}
		if err := out.WriteFile(outDir+"/"+f, data); err != nil {
			return err
		}
		stats.BytesRead += int64(len(data))
		stats.BytesWritten += int64(len(data))
	}

	man := ckpt.Manifest{
		Step:     plan.Sources[src].State.Step,
		Strategy: "tailor-merge",
		Complete: true,
	}
	if !plan.Recipe.Optimizer {
		man.Strategy = "tailor-merge-weights-only"
	}
	for _, ref := range plan.Config.AllLayers() {
		man.Layers = append(man.Layers, ref.String())
	}
	return writeManifest(out, outDir+"/manifest.json", &man)
}

func writeManifest(b storage.Backend, name string, man *ckpt.Manifest) error {
	data, err := jsonMarshalIndent(man)
	if err != nil {
		return err
	}
	return b.WriteFile(name, data)
}
