package tailor

import (
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/parallel"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// LoadOrder selects how optimizer shard files are loaded.
type LoadOrder uint8

const (
	// Straightforward loads each (checkpoint, rank) shard file exactly
	// once and extracts every needed group from it — the efficient order
	// ("layers 1–16 from checkpoint-100, layers 17–32 from checkpoint-200").
	Straightforward LoadOrder = iota
	// Interleaved replicates the paper's pathological "parity" measurement
	// (§5.4, Table 7): layers are processed strictly in model order and the
	// source shard file is re-loaded for every layer, because the optimizer
	// state can only be accessed after a full file load and nothing is
	// cached across layers.
	Interleaved
)

// String names the load order for reports.
func (o LoadOrder) String() string {
	if o == Interleaved {
		return "interleaved"
	}
	return "straightforward"
}

// Options tunes a merge run.
type Options struct {
	// Workers bounds both the tensor-read parallelism of the weights
	// pipeline and the rank-level parallelism of optimizer merging
	// (default 1; the paper's multiprocessing corresponds to >1).
	Workers int
	// LoadOrder selects shard-file loading behaviour (default
	// Straightforward).
	LoadOrder LoadOrder
	// ChunkBytes is the streaming I/O chunk size for container writes
	// (default storage.DefaultChunkBytes).
	ChunkBytes int
	// MaxInFlight bounds the total payload bytes of tensors admitted into
	// the weights pipeline and not yet written to the output container.
	// 0 (default) means unbounded; Stats.PeakInFlightBytes reports the
	// high-water mark either way.
	MaxInFlight int64
	// NoRawCopy disables the zero-decode fast path, forcing every tensor
	// through decode/re-encode and every optimizer shard through a full
	// group decode. The output bytes are identical either way (the golden
	// tests pin this); the knob exists for A/B benchmarking and diffing.
	NoRawCopy bool
	// DedupOutput converts the merged checkpoint to content-addressed
	// form after publication: payloads move into the run root's objects/
	// store (deduplicated against existing blobs) and the directory keeps
	// manifests. Stats gains the blob counters.
	DedupOutput bool
}

// Stats reports what a merge did.
type Stats struct {
	// TensorsRead counts individual weight tensors fetched lazily.
	TensorsRead int
	// ShardFileLoads counts whole optimizer shard-file reads, the dominant
	// I/O cost (Table 7's driver).
	ShardFileLoads int64
	// CheckpointsUsed is the number of distinct source checkpoints.
	CheckpointsUsed int
	// WallTime is the measured duration of the merge.
	WallTime time.Duration
	// BytesRead counts payload and container bytes fetched from sources
	// (weight tensor payloads, whole shard files, copied configs).
	BytesRead int64
	// BytesWritten counts bytes of output containers and configs.
	BytesWritten int64
	// PeakInFlightBytes is the high-water mark of tensor payload bytes
	// admitted into the weights pipeline and not yet written — the
	// quantity Options.MaxInFlight bounds.
	PeakInFlightBytes int64
	// TensorsRawCopied counts weight tensors that took the zero-decode
	// fast path: payload extent spliced source→output with the source CRC
	// carried forward, no decode/re-encode. A subset of TensorsRead.
	TensorsRawCopied int
	// ShardsRawCopied counts whole optimizer shard files streamed
	// backend-to-backend without group decode. Raw-copied shards are
	// deliberately NOT counted in ShardFileLoads — that counter tracks
	// full decode loads, the Table 7 cost the fast path removes.
	ShardsRawCopied int
	// BytesRawCopied totals the payload bytes moved by both raw paths.
	BytesRawCopied int64
	// BlobsPut counts content-addressed blobs written by a dedup-output
	// conversion (Options.DedupOutput).
	BlobsPut int
	// BlobsReused counts payloads that deduplicated against existing
	// blobs — zero new payload bytes.
	BlobsReused int
	// BlobBytesWritten / BytesDeduped split the converted payload volume
	// into newly stored and deduplicated bytes.
	BlobBytesWritten int64
	BytesDeduped     int64
}

// Merge executes a recipe end to end and returns merge statistics. Blend
// methods (linear, slerp) take the weights-only path; passthrough builds and
// executes a full layer-level plan including optimizer state.
func Merge(b storage.Backend, r *recipe.Recipe, opts Options) (*Stats, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.IsBlend() {
		start := time.Now()
		stats := &Stats{}
		if err := mergeBlend(b, r, opts, stats); err != nil {
			return nil, err
		}
		if opts.DedupOutput {
			rep, err := ckpt.Dedupify(b, r.Output, opts.ChunkBytes)
			if err != nil {
				return nil, fmt.Errorf("tailor: dedup output: %w", err)
			}
			stats.BlobsPut += rep.BlobsPut
			stats.BlobsReused += rep.BlobsReused
			stats.BlobBytesWritten += rep.BlobBytesWritten
			stats.BytesDeduped += rep.BytesDeduped
		}
		stats.WallTime = time.Since(start)
		return stats, nil
	}
	plan, err := NewPlan(b, r)
	if err != nil {
		return nil, err
	}
	return Execute(b, plan, opts)
}

// Execute runs a previously validated plan. The output directory is built
// under the same commit protocol as ckpt.Save: every file stages into
// `<output>.tmp`, a COMMITTED marker seals the tree, and one atomic rename
// publishes it before the latest pointer moves — a merge that crashes
// mid-flight leaves sources and any previous output untouched.
func Execute(b storage.Backend, plan *Plan, opts Options) (*Stats, error) {
	start := time.Now()
	stats := &Stats{CheckpointsUsed: len(plan.Sources)}

	txn, err := ckpt.Begin(b, plan.Recipe.Output)
	if err != nil {
		return nil, err
	}
	defer txn.Abort()
	out, outDir := txn.Backend(), txn.Dir()

	if err := mergeWeights(out, outDir, plan, opts, stats); err != nil {
		return nil, err
	}
	if plan.Recipe.Optimizer {
		if err := mergeOptimizer(out, outDir, plan, opts, stats); err != nil {
			return nil, err
		}
	}
	if err := copyConfigs(b, out, outDir, plan, stats); err != nil {
		return nil, err
	}
	if err := txn.Commit(plan.Sources[plan.Recipe.ConfigsSource()].State.Step); err != nil {
		return nil, err
	}
	// Refresh the run root's latest pointer so resume tooling finds the
	// merged checkpoint. For a single-segment Output ("merged") the run
	// root is the backend root itself, so the pointer lands at the
	// root-level "latest" — see ckpt.LatestPointerPath.
	if err := ckpt.WriteLatestPointer(b, plan.Recipe.Output); err != nil {
		return nil, err
	}
	if opts.DedupOutput {
		// Conversion runs after publication under its own replace-in-place
		// transaction: a crash here leaves the plain merged checkpoint
		// committed and intact.
		rep, err := ckpt.Dedupify(b, plan.Recipe.Output, opts.ChunkBytes)
		if err != nil {
			return nil, fmt.Errorf("tailor: dedup output: %w", err)
		}
		stats.BlobsPut += rep.BlobsPut
		stats.BlobsReused += rep.BlobsReused
		stats.BlobBytesWritten += rep.BlobBytesWritten
		stats.BytesDeduped += rep.BytesDeduped
	}
	stats.WallTime = time.Since(start)
	return stats, nil
}

// mergeWeights assembles the consolidated output weights file as a bounded-
// memory pipeline: per-tensor read jobs are admitted under the MaxInFlight
// byte gate (in model order, which makes the gate deadlock-free), fanned out
// over Options.Workers readers, and drained by a single in-order consumer
// streaming into the output container. Peak memory is bounded by the gate
// instead of the full model size, and reads overlap both each other and the
// output write.
//
// Each spec is classified on admission: a pure passthrough whose stored
// dtype already matches the output dtype takes the zero-decode fast path
// (raw extent read + AppendRaw splice, source CRC carried forward); a spec
// needing dtype conversion — or any spec when Options.NoRawCopy is set —
// keeps the decode path. Both run inside the same ordered pipeline under
// the same byte gate, and produce identical output bytes.
func mergeWeights(out storage.Backend, outDir string, plan *Plan, opts Options, stats *Stats) error {
	outDType := tensor.BF16
	if plan.Recipe.DType != "" {
		d, err := tensor.ParseDType(plan.Recipe.DType)
		if err != nil {
			return err
		}
		outDType = d
	}
	w, err := ckpt.NewLTSFWriter(out, outDir+"/model.ltsf", plan.Config.Name, opts.ChunkBytes)
	if err != nil {
		return err
	}
	defer w.Abort()

	type job struct {
		spec modelcfg.TensorSpec
		src  string
		raw  bool
	}
	type done struct {
		t        *tensor.Tensor
		raw      *ckpt.RawTensor // non-nil: d.data splices via AppendRaw
		data     []byte
		srcBytes int64
	}
	gate := parallel.NewByteGate(opts.MaxInFlight)
	pipe := parallel.NewPipeline(opts.Workers, pipelineDepth(opts.Workers),
		func(j job) (done, error) {
			if j.raw {
				rt, data, err := readRawPayload(plan.Sources[j.src].Weights(), j.spec.Name)
				if err != nil {
					return done{}, fmt.Errorf("tailor: raw read %s from %s: %w", j.spec.Name, j.src, err)
				}
				return done{raw: rt, data: data, srcBytes: rt.Size}, nil
			}
			t, err := plan.Sources[j.src].Weights().ReadTensor(j.spec.Name)
			if err != nil {
				return done{}, fmt.Errorf("tailor: read %s from %s: %w", j.spec.Name, j.src, err)
			}
			srcBytes := t.Bytes()
			if t.DType != outDType {
				t = t.Convert(outDType)
			}
			return done{t: t, srcBytes: srcBytes}, nil
		},
		func(d done) error {
			if d.raw != nil {
				if err := w.AppendRaw(*d.raw, bytes.NewReader(d.data)); err != nil {
					return err
				}
				stats.TensorsRawCopied++
				stats.BytesRawCopied += d.raw.Size
			} else if err := w.WriteTensor(d.t); err != nil {
				return err
			}
			stats.TensorsRead++
			stats.BytesRead += d.srcBytes
			return nil
		})

	for _, spec := range plan.Config.Tensors() {
		srcPath := plan.Assign[spec.Layer]
		src := plan.Sources[srcPath].Weights()
		raw := !opts.NoRawCopy && src.RawEligible(spec.Name, outDType)
		cost := weightCost(src, spec, outDType)
		// Admission happens in push order and release in sink order, so the
		// gate can never strand the head-of-line job behind later ones.
		gate.Acquire(cost)
		if err := pipe.PushWithCleanup(job{spec, srcPath, raw}, func() { gate.Release(cost) }); err != nil {
			gate.Release(cost)
			break
		}
	}
	if err := pipe.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	stats.BytesWritten += w.BytesWritten()
	if p := gate.Peak(); p > stats.PeakInFlightBytes {
		stats.PeakInFlightBytes = p
	}
	return nil
}

// weightCost estimates the in-flight bytes of one tensor job: the stored
// source payload, plus the converted copy when the output dtype differs.
func weightCost(src ckpt.WeightsReader, spec modelcfg.TensorSpec, outDType tensor.DType) int64 {
	outBytes := spec.NumElems() * int64(outDType.Size())
	srcBytes, ok := src.PayloadSize(spec.Name)
	if !ok {
		return outBytes
	}
	if srcBytes != outBytes {
		// A dtype conversion briefly holds both representations.
		return srcBytes + outBytes
	}
	return srcBytes
}

// readRawPayload fetches one tensor's stored payload bytes verbatim through
// the backend's sectioned-read stream. The bytes are held (under the byte
// gate) until the ordered sink splices them; no decode happens anywhere.
func readRawPayload(src ckpt.WeightsReader, name string) (*ckpt.RawTensor, []byte, error) {
	rt, rc, err := src.OpenRaw(name)
	if err != nil {
		return nil, nil, err
	}
	data := make([]byte, rt.Size)
	_, err = io.ReadFull(rc, data)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("read payload extent: %w", err)
	}
	return &rt, data, nil
}

// pipelineDepth bounds how many completed tensors may queue between the
// reader pool and the ordered writer; the byte gate is the real memory
// bound, this only keeps the ordering queue short.
func pipelineDepth(workers int) int {
	if workers < 1 {
		workers = 1
	}
	return workers
}

// mergeOptimizer assembles one output shard file per rank by copying group
// shards from the sources. Ranks run under a bounded worker pool; each
// rank's output streams group by group through a ShardFileWriter, so a
// worker's peak memory is one rank shard, never the whole optimizer state.
//
// When every layer is assigned to a single complete source, the group-level
// copy degenerates to the identity and the whole `.ltos` file is streamed
// backend-to-backend instead — no group decode, no f32 re-encode, no CRC
// recompute. A cheap header-only validation pass decides eligibility; any
// mismatch falls back to the decode path, never to a wrong copy.
func mergeOptimizer(out storage.Backend, outDir string, plan *Plan, opts Options, stats *Stats) error {
	if src, ok := rawShardSource(plan, opts); ok {
		copied, err := rawCopyOptimizer(out, outDir, plan, src, opts, stats)
		if copied || err != nil {
			return err
		}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var loads, bytesIn, bytesOut atomic.Int64

	err := parallel.ForEach(workers, plan.WorldSize, func(rank int) error {
		shards, metas, step, n, readBytes, err := buildRankShards(plan, opts.LoadOrder, rank)
		if err != nil {
			return err
		}
		loads.Add(n)
		bytesIn.Add(readBytes)
		name := outDir + "/" + ckpt.ShardFileName(rank)
		w, err := ckpt.NewShardFileWriter(out, name, rank, plan.WorldSize, step, plan.Layout.Kind, opts.ChunkBytes)
		if err != nil {
			return err
		}
		defer w.Abort()
		for i, m := range metas {
			if err := w.WriteGroup(m, shards[i]); err != nil {
				return err
			}
			shards[i] = nil // release the shard as soon as it is spooled
		}
		if err := w.Close(); err != nil {
			return err
		}
		bytesOut.Add(w.BytesWritten())
		return nil
	})
	stats.ShardFileLoads = loads.Load()
	stats.BytesRead += bytesIn.Load()
	stats.BytesWritten += bytesOut.Load()
	return err
}

// rawShardSource returns the single source checkpoint path when the merge
// is a whole-rank passthrough: every layer assigned to one complete source.
// Only then is each rank's output shard file byte-identical to the source's
// and eligible for a verbatim copy.
func rawShardSource(plan *Plan, opts Options) (string, bool) {
	if opts.NoRawCopy {
		return "", false
	}
	src := ""
	for _, path := range plan.Assign {
		if src == "" {
			src = path
		} else if path != src {
			return "", false
		}
	}
	if src == "" {
		return "", false
	}
	if _, mismatched := plan.Resharded[src]; mismatched {
		// A mismatched-world-size source is never byte-identical to the
		// output — its groups must be repartitioned shard by shard.
		return "", false
	}
	return src, plan.Sources[src].Manifest.Complete
}

// rawCopyOptimizer streams every rank's `.ltos` file verbatim from the
// single source into the staging directory. Before any payload byte moves,
// a header-only pass over all ranks confirms each file is exactly what the
// decode path would rebuild (rank, world size, layout, group order, numels,
// contiguous payload); any surprise returns copied=false so the caller
// falls back to the group-decode path. Copy errors after validation are
// real merge errors — fault injection and disk failures surface, they do
// not silently demote the merge to the slow path mid-write.
func rawCopyOptimizer(out storage.Backend, outDir string, plan *Plan, src string, opts Options, stats *Stats) (bool, error) {
	c := plan.Sources[src]
	var payloadBytes int64
	for rank := 0; rank < plan.WorldSize; rank++ {
		h, err := ckpt.ReadShardHeader(c.Backend, c.Dir+"/"+ckpt.ShardFileName(rank))
		if err != nil || !shardCopyable(h, plan, rank) {
			return false, nil
		}
		payloadBytes += h.PayloadBytes
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var copied atomic.Int64
	err := parallel.ForEach(workers, plan.WorldSize, func(rank int) error {
		rel := ckpt.ShardFileName(rank)
		n, err := storage.CopyFile(out, outDir+"/"+rel, c.Backend, c.Dir+"/"+rel, opts.ChunkBytes)
		if err != nil {
			return fmt.Errorf("tailor: raw copy %s from %s: %w", rel, src, err)
		}
		copied.Add(n)
		return nil
	})
	if err != nil {
		return true, err
	}
	stats.ShardsRawCopied += plan.WorldSize
	// BytesRawCopied counts payload extents only (matching the weights
	// path); the file counters take the whole containers as moved.
	stats.BytesRawCopied += payloadBytes
	stats.BytesRead += copied.Load()
	stats.BytesWritten += copied.Load()
	return true, nil
}

// shardCopyable reports whether a source shard file is byte-equivalent to
// what the decode path would write for this plan: same rank, world size and
// layout, exactly the layout's groups in index order with matching numels,
// and a gap-free payload.
func shardCopyable(h *ckpt.ShardHeader, plan *Plan, rank int) bool {
	if h.Rank != rank || h.WorldSize != plan.WorldSize || h.Layout != plan.Layout.Kind {
		return false
	}
	if len(h.Groups) != plan.Layout.NumGroups() {
		return false
	}
	var pos int64
	for i, g := range h.Groups {
		if g.Index != i || g.Numel != plan.Layout.Groups[i].Numel {
			return false
		}
		if g.Offsets[0] != pos {
			return false
		}
		pos = g.Offsets[1]
		// The decode path rejects a group whose extent is not exactly
		// 12×ShardLen (master + exp_avg + exp_avg_sq in f32), so the raw
		// copy must too. Range-check ShardLen before multiplying: a
		// near-MaxInt64 value could wrap ShardLen*12 around to the extent.
		extent := g.Offsets[1] - g.Offsets[0]
		if g.ShardLen < 0 || g.ShardLen > extent || extent != g.ShardLen*12 {
			return false
		}
	}
	return pos == h.PayloadBytes
}

// shardSource adapts one source checkpoint to rank-level group extraction.
// A source whose native world size matches the plan's holds the target
// rank's file directly; a mismatched source holds every native rank's file
// and repartitions each requested group through zero.Partition math on
// demand — the on-the-fly counterpart of `llmtailor reshard`.
type shardSource struct {
	files []*ckpt.ShardFile // 1 file when native, all native ranks when resharding
	world int               // plan (output) world size
	rank  int               // target output rank
	step  int
	loads int64
	bytes int64
}

// loadShardSource reads the shard file(s) a source contributes to one
// output rank. A mismatched source costs a load per native rank: every
// shard participates in the repartition, exactly the Table 7 whole-file
// cost model.
func loadShardSource(plan *Plan, path string, rank int) (*shardSource, error) {
	c := plan.Sources[path]
	s := &shardSource{world: plan.WorldSize, rank: rank}
	native, mismatched := plan.Resharded[path]
	if !mismatched {
		native = 1
	}
	for r := 0; r < native; r++ {
		srcRank := rank
		if mismatched {
			srcRank = r
		}
		f, err := c.ReadOptimShard(srcRank)
		if err != nil {
			return nil, err
		}
		s.files = append(s.files, f)
		s.loads++
		s.bytes += f.FileBytes
		if f.Step > s.step {
			s.step = f.Step
		}
	}
	return s, nil
}

// group returns the target rank's shard of one layout group, resharding
// across the source's native ranks when the world sizes differ. Metadata
// geometry (ShardLen, Offsets, CRC32) is left for WriteGroup to recompute
// against the output partition.
func (s *shardSource) group(gi int) (*zero.GroupShard, ckpt.ShardGroupMeta, error) {
	if len(s.files) == 1 {
		return s.files[0].GroupByIndex(gi)
	}
	shards := make([]*zero.GroupShard, len(s.files))
	var meta ckpt.ShardGroupMeta
	for r, f := range s.files {
		sh, m, err := f.GroupByIndex(gi)
		if err != nil {
			return nil, ckpt.ShardGroupMeta{}, err
		}
		if r == 0 {
			meta = m
		} else if m.Numel != meta.Numel {
			return nil, ckpt.ShardGroupMeta{}, fmt.Errorf("tailor: group %d numel differs across source ranks (%d vs %d)", gi, m.Numel, meta.Numel)
		}
		shards[r] = sh
	}
	out, err := zero.Reshard(shards, meta.Numel, s.world)
	if err != nil {
		return nil, ckpt.ShardGroupMeta{}, fmt.Errorf("tailor: reshard group %d from world %d to %d: %w", gi, len(s.files), s.world, err)
	}
	return out[s.rank], ckpt.ShardGroupMeta{
		Index: meta.Index, Numel: meta.Numel, NoDecay: meta.NoDecay, Layer: meta.Layer,
	}, nil
}

// buildRankShards gathers rank's shard of every layout group from the
// assigned sources, honouring the requested load order. It returns the
// shards in layout order, their metadata, the maximum source step, the
// number of shard-file loads performed and the bytes those loads read.
func buildRankShards(plan *Plan, order LoadOrder, rank int) (
	[]*zero.GroupShard, []ckpt.ShardGroupMeta, int, int64, int64, error) {

	nGroups := plan.Layout.NumGroups()
	shards := make([]*zero.GroupShard, nGroups)
	metas := make([]ckpt.ShardGroupMeta, nGroups)
	var loads, readBytes int64
	maxStep := 0

	extract := func(src *shardSource, ref modelcfg.LayerRef) error {
		groups, err := plan.Layout.GroupsOfLayer(ref)
		if err != nil {
			return err
		}
		for _, gi := range groups {
			s, m, err := src.group(gi)
			if err != nil {
				return fmt.Errorf("tailor: layer %s: %w", ref, err)
			}
			if m.Numel != plan.Layout.Groups[gi].Numel {
				return fmt.Errorf("tailor: layer %s group %d numel %d != layout %d", ref, gi, m.Numel, plan.Layout.Groups[gi].Numel)
			}
			shards[gi] = s
			metas[gi] = m
		}
		if src.step > maxStep {
			maxStep = src.step
		}
		return nil
	}

	switch order {
	case Straightforward:
		// One load per (source, rank); extract all of that source's layers.
		bySrc := map[string][]modelcfg.LayerRef{}
		for ref, path := range plan.Assign {
			bySrc[path] = append(bySrc[path], ref)
		}
		// Deterministic source order.
		for _, path := range plan.Recipe.Checkpoints() {
			refs, ok := bySrc[path]
			if !ok {
				continue
			}
			src, err := loadShardSource(plan, path, rank)
			if err != nil {
				return nil, nil, 0, 0, 0, err
			}
			loads += src.loads
			readBytes += src.bytes
			for _, ref := range refs {
				if err := extract(src, ref); err != nil {
					return nil, nil, 0, 0, 0, err
				}
			}
		}
	case Interleaved:
		// Model order; reload the source file for every layer, caching
		// nothing (the paper's worst-case measurement).
		for _, ref := range plan.Config.AllLayers() {
			src, err := loadShardSource(plan, plan.Assign[ref], rank)
			if err != nil {
				return nil, nil, 0, 0, 0, err
			}
			loads += src.loads
			readBytes += src.bytes
			if err := extract(src, ref); err != nil {
				return nil, nil, 0, 0, 0, err
			}
		}
	default:
		return nil, nil, 0, 0, 0, fmt.Errorf("tailor: unknown load order %d", order)
	}

	for gi := range shards {
		if shards[gi] == nil {
			return nil, nil, 0, 0, 0, fmt.Errorf("tailor: rank %d: group %d (%s) never filled", rank, gi, plan.Layout.Groups[gi].Layer)
		}
	}
	return shards, metas, maxStep, loads, readBytes, nil
}

// copyConfigs copies configuration files verbatim from the designated
// source (§4.4) and writes the output manifest. Sources are read through
// the original backend; everything written goes through the transaction's
// recording backend into the staging directory.
func copyConfigs(b, out storage.Backend, outDir string, plan *Plan, stats *Stats) error {
	src := plan.Recipe.ConfigsSource()
	for _, f := range []string{"config.json", "trainer_state.json"} {
		data, err := b.ReadFile(src + "/" + f)
		if err != nil {
			return fmt.Errorf("tailor: copy %s: %w", f, err)
		}
		if err := out.WriteFile(outDir+"/"+f, data); err != nil {
			return err
		}
		stats.BytesRead += int64(len(data))
		stats.BytesWritten += int64(len(data))
	}

	man := ckpt.Manifest{
		Step:     plan.Sources[src].State.Step,
		Strategy: "tailor-merge",
		Complete: true,
	}
	if !plan.Recipe.Optimizer {
		man.Strategy = "tailor-merge-weights-only"
	}
	for _, ref := range plan.Config.AllLayers() {
		man.Layers = append(man.Layers, ref.String())
	}
	return writeManifest(out, outDir+"/manifest.json", &man)
}

func writeManifest(b storage.Backend, name string, man *ckpt.Manifest) error {
	data, err := jsonMarshalIndent(man)
	if err != nil {
		return err
	}
	return b.WriteFile(name, data)
}
