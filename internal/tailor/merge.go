package tailor

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/parallel"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// LoadOrder selects how optimizer shard files are loaded.
type LoadOrder uint8

const (
	// Straightforward loads each (checkpoint, rank) shard file exactly
	// once and extracts every needed group from it — the efficient order
	// ("layers 1–16 from checkpoint-100, layers 17–32 from checkpoint-200").
	Straightforward LoadOrder = iota
	// Interleaved replicates the paper's pathological "parity" measurement
	// (§5.4, Table 7): layers are processed strictly in model order and the
	// source shard file is re-loaded for every layer, because the optimizer
	// state can only be accessed after a full file load and nothing is
	// cached across layers.
	Interleaved
)

// String names the load order for reports.
func (o LoadOrder) String() string {
	if o == Interleaved {
		return "interleaved"
	}
	return "straightforward"
}

// Options tunes a merge run.
type Options struct {
	// Workers bounds the rank-level parallelism of optimizer merging
	// (default 1; the paper's multiprocessing corresponds to >1).
	Workers int
	// LoadOrder selects shard-file loading behaviour (default
	// Straightforward).
	LoadOrder LoadOrder
}

// Stats reports what a merge did.
type Stats struct {
	// TensorsRead counts individual weight tensors fetched lazily.
	TensorsRead int
	// ShardFileLoads counts whole optimizer shard-file reads, the dominant
	// I/O cost (Table 7's driver).
	ShardFileLoads int64
	// CheckpointsUsed is the number of distinct source checkpoints.
	CheckpointsUsed int
	// WallTime is the measured duration of the merge.
	WallTime time.Duration
}

// Merge executes a recipe end to end and returns merge statistics. Blend
// methods (linear, slerp) take the weights-only path; passthrough builds and
// executes a full layer-level plan including optimizer state.
func Merge(b storage.Backend, r *recipe.Recipe, opts Options) (*Stats, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if r.IsBlend() {
		start := time.Now()
		stats := &Stats{}
		if err := mergeBlend(b, r, stats); err != nil {
			return nil, err
		}
		stats.WallTime = time.Since(start)
		return stats, nil
	}
	plan, err := NewPlan(b, r)
	if err != nil {
		return nil, err
	}
	return Execute(b, plan, opts)
}

// Execute runs a previously validated plan.
func Execute(b storage.Backend, plan *Plan, opts Options) (*Stats, error) {
	start := time.Now()
	stats := &Stats{CheckpointsUsed: len(plan.Sources)}

	if err := mergeWeights(b, plan, stats); err != nil {
		return nil, err
	}
	if plan.Recipe.Optimizer {
		if err := mergeOptimizer(b, plan, opts, stats); err != nil {
			return nil, err
		}
	}
	if err := copyConfigs(b, plan); err != nil {
		return nil, err
	}
	stats.WallTime = time.Since(start)
	return stats, nil
}

// mergeWeights assembles the consolidated output weights file, reading each
// tensor lazily from its assigned source.
func mergeWeights(b storage.Backend, plan *Plan, stats *Stats) error {
	outDType := tensor.BF16
	if plan.Recipe.DType != "" {
		d, err := tensor.ParseDType(plan.Recipe.DType)
		if err != nil {
			return err
		}
		outDType = d
	}
	var tensors []*tensor.Tensor
	for _, spec := range plan.Config.Tensors() {
		srcPath := plan.Assign[spec.Layer]
		src := plan.Sources[srcPath]
		t, err := src.Weights().ReadTensor(spec.Name)
		if err != nil {
			return fmt.Errorf("tailor: read %s from %s: %w", spec.Name, srcPath, err)
		}
		stats.TensorsRead++
		if t.DType != outDType {
			t = t.Convert(outDType)
		}
		tensors = append(tensors, t)
	}
	return ckpt.WriteLTSF(b, plan.Recipe.Output+"/model.ltsf", plan.Config.Name, tensors)
}

// mergeOptimizer assembles one output shard file per rank by copying group
// shards from the sources. Ranks run under a bounded worker pool.
func mergeOptimizer(b storage.Backend, plan *Plan, opts Options, stats *Stats) error {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var loads atomic.Int64
	var stepMu sync.Mutex
	outStep := 0

	err := parallel.ForEach(workers, plan.WorldSize, func(rank int) error {
		shards, metas, step, n, err := buildRankShards(b, plan, opts.LoadOrder, rank)
		if err != nil {
			return err
		}
		loads.Add(n)
		stepMu.Lock()
		if step > outStep {
			outStep = step
		}
		stepMu.Unlock()
		name := plan.Recipe.Output + "/" + ckpt.ShardFileName(rank)
		return ckpt.WriteShardFile(b, name, rank, plan.WorldSize, step, plan.Layout.Kind, metas, shards)
	})
	stats.ShardFileLoads = loads.Load()
	return err
}

// buildRankShards gathers rank's shard of every layout group from the
// assigned sources, honouring the requested load order. It returns the
// shards in layout order, their metadata, the maximum source step and the
// number of shard-file loads performed.
func buildRankShards(b storage.Backend, plan *Plan, order LoadOrder, rank int) (
	[]*zero.GroupShard, []ckpt.ShardGroupMeta, int, int64, error) {

	nGroups := plan.Layout.NumGroups()
	shards := make([]*zero.GroupShard, nGroups)
	metas := make([]ckpt.ShardGroupMeta, nGroups)
	var loads int64
	maxStep := 0

	extract := func(f *ckpt.ShardFile, ref modelcfg.LayerRef) error {
		groups, err := plan.Layout.GroupsOfLayer(ref)
		if err != nil {
			return err
		}
		for _, gi := range groups {
			s, m, err := f.GroupByIndex(gi)
			if err != nil {
				return fmt.Errorf("tailor: layer %s: %w", ref, err)
			}
			if m.Numel != plan.Layout.Groups[gi].Numel {
				return fmt.Errorf("tailor: layer %s group %d numel %d != layout %d", ref, gi, m.Numel, plan.Layout.Groups[gi].Numel)
			}
			shards[gi] = s
			metas[gi] = m
		}
		if f.Step > maxStep {
			maxStep = f.Step
		}
		return nil
	}

	switch order {
	case Straightforward:
		// One load per (source, rank); extract all of that source's layers.
		bySrc := map[string][]modelcfg.LayerRef{}
		for ref, path := range plan.Assign {
			bySrc[path] = append(bySrc[path], ref)
		}
		// Deterministic source order.
		for _, path := range plan.Recipe.Checkpoints() {
			refs, ok := bySrc[path]
			if !ok {
				continue
			}
			f, err := plan.Sources[path].ReadOptimShard(rank)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			loads++
			for _, ref := range refs {
				if err := extract(f, ref); err != nil {
					return nil, nil, 0, 0, err
				}
			}
		}
	case Interleaved:
		// Model order; reload the source file for every layer, caching
		// nothing (the paper's worst-case measurement).
		for _, ref := range plan.Config.AllLayers() {
			path := plan.Assign[ref]
			f, err := plan.Sources[path].ReadOptimShard(rank)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			loads++
			if err := extract(f, ref); err != nil {
				return nil, nil, 0, 0, err
			}
		}
	default:
		return nil, nil, 0, 0, fmt.Errorf("tailor: unknown load order %d", order)
	}

	for gi := range shards {
		if shards[gi] == nil {
			return nil, nil, 0, 0, fmt.Errorf("tailor: rank %d: group %d (%s) never filled", rank, gi, plan.Layout.Groups[gi].Layer)
		}
	}
	return shards, metas, maxStep, loads, nil
}

// copyConfigs copies configuration files verbatim from the designated
// source (§4.4) and writes the output manifest and latest pointer.
func copyConfigs(b storage.Backend, plan *Plan) error {
	src := plan.Recipe.ConfigsSource()
	for _, f := range []string{"config.json", "trainer_state.json"} {
		data, err := b.ReadFile(src + "/" + f)
		if err != nil {
			return fmt.Errorf("tailor: copy %s: %w", f, err)
		}
		if err := b.WriteFile(plan.Recipe.Output+"/"+f, data); err != nil {
			return err
		}
	}

	man := ckpt.Manifest{
		Step:     plan.Sources[src].State.Step,
		Strategy: "tailor-merge",
		Complete: true,
	}
	if !plan.Recipe.Optimizer {
		man.Strategy = "tailor-merge-weights-only"
	}
	for _, ref := range plan.Config.AllLayers() {
		man.Layers = append(man.Layers, ref.String())
	}
	if err := writeManifest(b, plan.Recipe.Output+"/manifest.json", &man); err != nil {
		return err
	}

	// Refresh the parent directory's latest pointer so resume tooling
	// finds the merged checkpoint.
	parts := strings.Split(plan.Recipe.Output, "/")
	latest := "latest"
	if len(parts) > 1 {
		latest = strings.Join(parts[:len(parts)-1], "/") + "/latest"
	}
	return b.WriteFile(latest, []byte(parts[len(parts)-1]))
}

func writeManifest(b storage.Backend, name string, man *ckpt.Manifest) error {
	data, err := jsonMarshalIndent(man)
	if err != nil {
		return err
	}
	return b.WriteFile(name, data)
}
