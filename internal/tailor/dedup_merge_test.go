package tailor

// Dedup × merge integration: dedup checkpoints as transparent merge
// sources (raw splice straight from blobs), and the -dedup output mode
// (Options.DedupOutput) for both passthrough and blend merges.

import (
	"bytes"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// TestMergeFromDedupSources pins byte identity: the same parity recipe
// executed over plain sources and over dedup-converted sources produces
// identical output containers.
func TestMergeFromDedupSources(t *testing.T) {
	cfg := modelcfg.Tiny()
	plain := storage.NewMem()
	newRun(t, plain, cfg, 2, []int{5, 10}, nil)
	dedup := storage.NewMem()
	newRun(t, dedup, cfg, 2, []int{5, 10}, nil)
	for _, dir := range []string{"run/checkpoint-5", "run/checkpoint-10"} {
		if _, err := ckpt.Dedupify(dedup, dir, 0); err != nil {
			t.Fatal(err)
		}
	}

	mk := func() *recipe.Recipe {
		return recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "run/merged")
	}
	for _, noRaw := range []bool{false, true} {
		sp, err := Merge(plain, mk(), Options{Workers: 2, NoRawCopy: noRaw})
		if err != nil {
			t.Fatal(err)
		}
		sd, err := Merge(dedup, mk(), Options{Workers: 2, NoRawCopy: noRaw})
		if err != nil {
			t.Fatal(err)
		}
		if !noRaw && (sd.TensorsRawCopied == 0 || sp.TensorsRawCopied != sd.TensorsRawCopied) {
			t.Fatalf("raw path over dedup sources: plain %d, dedup %d raw-copied",
				sp.TensorsRawCopied, sd.TensorsRawCopied)
		}
		for _, f := range []string{"model.ltsf", ckpt.ShardFileName(0), ckpt.ShardFileName(1)} {
			want, err := plain.ReadFile("run/merged/" + f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dedup.ReadFile("run/merged/" + f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("noRaw=%v: %s differs between plain and dedup sources", noRaw, f)
			}
		}
	}
}

func TestMergeDedupOutput(t *testing.T) {
	cfg := modelcfg.Tiny()
	b := storage.NewMem()
	r := newRun(t, b, cfg, 2, []int{5, 10}, nil)

	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "run/merged")
	stats, err := Merge(b, rec, Options{Workers: 2, DedupOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsPut == 0 {
		t.Fatalf("no blobs stored: %+v", stats)
	}
	if b.Exists("run/merged/model.ltsf") || !b.Exists("run/merged/"+ckpt.WeightManifestName) {
		t.Fatal("output is not content-addressed")
	}
	// The dedup output restores exactly like a plain merge would.
	m, _, _, err := ckpt.Restore(b, "run/merged", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a passthrough tensor against its source model.
	name := "model.norm.weight"
	got, _ := m.Tensor(name)
	want, _ := r.models[10].Tensor(name)
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("elem %d: %v != %v", i, got.At(i), want.At(i))
		}
	}

	// Re-merging with -dedup against the populated store reuses blobs.
	stats2, err := Merge(b, recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "run/merged2"), Options{DedupOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.BlobsReused == 0 {
		t.Fatalf("second dedup merge reused nothing: %+v", stats2)
	}
}

func TestBlendDedupOutput(t *testing.T) {
	cfg := modelcfg.Tiny()
	b := storage.NewMem()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	rec := &recipe.Recipe{
		MergeMethod: "linear",
		Models: []recipe.WeightedSource{
			{Checkpoint: "run/checkpoint-5"},
			{Checkpoint: "run/checkpoint-10"},
		},
		Output: "soup",
	}
	stats, err := Merge(b, rec, Options{DedupOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsPut == 0 {
		t.Fatalf("no blobs stored: %+v", stats)
	}
	if b.Exists("soup/model.ltsf") || !b.Exists("soup/"+ckpt.WeightManifestName) {
		t.Fatal("blend output is not content-addressed")
	}
	c, err := ckpt.Open(b, "soup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Weights().ReadAll(); err != nil {
		t.Fatal(err)
	}
}
