package tailor

import (
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// singleSourceRecipe routes every layer to one checkpoint — the whole-rank
// passthrough shape that arms both raw fast paths (tensor extents and
// shard-file copies).
func singleSourceRecipe(src, out string) *recipe.Recipe {
	return &recipe.Recipe{
		MergeMethod: "passthrough",
		Base:        src,
		Optimizer:   true,
		Output:      out,
	}
}

// The acceptance property of the zero-decode fast path: raw-copy and decode
// merges produce byte-identical output containers, for every worker count,
// on both a single-source (shard raw copy armed) and a two-source parity
// (tensor raw copy only) recipe.
func TestRawCopyByteIdenticalToDecodeAcrossWorkers(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	recipes := map[string]func(out string) *recipe.Recipe{
		"single-source": func(out string) *recipe.Recipe {
			return singleSourceRecipe("run/checkpoint-10", out)
		},
		"parity": func(out string) *recipe.Recipe {
			return recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, out)
		},
	}
	files := []string{"model.ltsf", ckpt.ShardFileName(0), ckpt.ShardFileName(1), "manifest.json"}

	for name, mk := range recipes {
		t.Run(name, func(t *testing.T) {
			refOut := "ref-" + name
			refStats, err := Merge(b, mk(refOut), Options{Workers: 1, NoRawCopy: true})
			if err != nil {
				t.Fatal(err)
			}
			if refStats.TensorsRawCopied != 0 || refStats.ShardsRawCopied != 0 || refStats.BytesRawCopied != 0 {
				t.Fatalf("NoRawCopy merge still raw-copied: %+v", refStats)
			}

			for _, workers := range []int{1, 2, 8} {
				out := "raw-" + name + "-" + string(rune('0'+workers))
				stats, err := Merge(b, mk(out), Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if stats.TensorsRawCopied != len(cfg.Tensors()) {
					t.Fatalf("workers=%d: %d of %d tensors raw-copied", workers, stats.TensorsRawCopied, len(cfg.Tensors()))
				}
				if name == "single-source" && stats.ShardsRawCopied != 2 {
					t.Fatalf("workers=%d: %d shard files raw-copied, want 2", workers, stats.ShardsRawCopied)
				}
				if name == "parity" && stats.ShardsRawCopied != 0 {
					t.Fatalf("workers=%d: parity merge raw-copied whole shards from two sources", workers)
				}
				if name == "single-source" && stats.ShardFileLoads != 0 {
					t.Fatalf("workers=%d: raw shard copy still decoded %d shard files", workers, stats.ShardFileLoads)
				}
				if stats.BytesRawCopied <= 0 {
					t.Fatalf("workers=%d: BytesRawCopied not tracked", workers)
				}
				for _, f := range files {
					ref, err := b.ReadFile(refOut + "/" + f)
					if err != nil {
						t.Fatal(err)
					}
					got, err := b.ReadFile(out + "/" + f)
					if err != nil {
						t.Fatal(err)
					}
					if string(ref) != string(got) {
						t.Fatalf("workers=%d: %s differs between raw and decode merges", workers, f)
					}
				}
				if _, _, _, err := ckpt.Restore(b, out, tensor.BF16); err != nil {
					t.Fatalf("workers=%d: raw-merged checkpoint not restorable: %v", workers, err)
				}
			}
		})
	}
}

// A dtype conversion must force every tensor back onto the decode path.
func TestRawCopyFallsBackOnDTypeConversion(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	rec := singleSourceRecipe("run/checkpoint-10", "conv")
	rec.DType = "float32" // sources store bf16
	rec.Optimizer = false
	stats, err := Merge(b, rec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TensorsRawCopied != 0 || stats.BytesRawCopied != 0 {
		t.Fatalf("converted merge took the raw path: %+v", stats)
	}
	if stats.TensorsRead != len(cfg.Tensors()) {
		t.Fatalf("TensorsRead = %d, want %d", stats.TensorsRead, len(cfg.Tensors()))
	}
}

// A multi-source merge must not whole-file-copy optimizer shards, and a
// partial source must not arm the fast path even when it is the only one.
func TestRawShardCopyDetection(t *testing.T) {
	cfg := modelcfg.Tiny()

	b := storage.NewMem()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	plan, err := NewPlan(b, recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out"))
	if err != nil {
		t.Fatal(err)
	}
	if src, ok := rawShardSource(plan, Options{}); ok {
		t.Fatalf("two-source parity plan armed raw shard copy from %q", src)
	}

	plan, err = NewPlan(b, singleSourceRecipe("run/checkpoint-10", "out"))
	if err != nil {
		t.Fatal(err)
	}
	if src, ok := rawShardSource(plan, Options{}); !ok || src != "run/checkpoint-10" {
		t.Fatalf("single-source plan did not arm raw shard copy (src=%q ok=%v)", src, ok)
	}
	if _, ok := rawShardSource(plan, Options{NoRawCopy: true}); ok {
		t.Fatal("NoRawCopy did not disarm raw shard copy")
	}
}

// Every header inconsistency the decode path would reject must disarm the
// whole-file copy — a shard the group decode refuses to load can never be
// published verbatim by the fast path.
func TestShardCopyableRejectsInconsistentHeaders(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	plan, err := NewPlan(b, singleSourceRecipe("run/checkpoint-10", "out"))
	if err != nil {
		t.Fatal(err)
	}
	read := func() *ckpt.ShardHeader {
		h, err := ckpt.ReadShardHeader(b, "run/checkpoint-10/"+ckpt.ShardFileName(0))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if !shardCopyable(read(), plan, 0) {
		t.Fatal("pristine source shard not copyable")
	}

	corruptions := map[string]func(h *ckpt.ShardHeader){
		"wrong rank":        func(h *ckpt.ShardHeader) { h.Rank = 1 },
		"wrong world size":  func(h *ckpt.ShardHeader) { h.WorldSize = 4 },
		"missing group":     func(h *ckpt.ShardHeader) { h.Groups = h.Groups[:len(h.Groups)-1] },
		"reordered groups":  func(h *ckpt.ShardHeader) { h.Groups[0].Index, h.Groups[1].Index = 1, 0 },
		"wrong numel":       func(h *ckpt.ShardHeader) { h.Groups[2].Numel++ },
		"payload gap":       func(h *ckpt.ShardHeader) { h.Groups[1].Offsets[0]++ },
		"short payload":     func(h *ckpt.ShardHeader) { h.PayloadBytes++ },
		"corrupt shard len": func(h *ckpt.ShardHeader) { h.Groups[0].ShardLen++ },
		"negative shard len": func(h *ckpt.ShardHeader) {
			h.Groups[0].ShardLen = -h.Groups[0].ShardLen
		},
		"wrapping shard len": func(h *ckpt.ShardHeader) {
			// Chosen so ShardLen*12 wraps int64 back to a small value.
			h.Groups[0].ShardLen = (1<<63)/6 + h.Groups[0].ShardLen
		},
	}
	for name, corrupt := range corruptions {
		h := read()
		corrupt(h)
		if shardCopyable(h, plan, 0) {
			t.Errorf("%s: still copyable", name)
		}
	}
}

// The byte gate still bounds the raw path: a MaxInFlight well below the
// model's total bytes holds as a hard ceiling while every tensor raw-copies.
func TestRawCopyRespectsMaxInFlight(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	var largest, total int64
	for _, spec := range cfg.Tensors() {
		n := spec.NumElems() * 2
		total += n
		if n > largest {
			largest = n
		}
	}
	bound := largest * 2
	if bound >= total {
		t.Fatalf("test model too small to exercise the bound (largest %d, total %d)", largest, total)
	}
	stats, err := Merge(b, singleSourceRecipe("run/checkpoint-10", "bounded"),
		Options{Workers: 4, MaxInFlight: bound, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TensorsRawCopied != len(cfg.Tensors()) {
		t.Fatalf("%d of %d tensors raw-copied under the gate", stats.TensorsRawCopied, len(cfg.Tensors()))
	}
	if stats.PeakInFlightBytes <= 0 || stats.PeakInFlightBytes > bound {
		t.Fatalf("peak in-flight %d outside (0, %d]", stats.PeakInFlightBytes, bound)
	}
}

// Raw merges must survive adversarial short reads on the source backend —
// extent reads may deliver any number of bytes per call.
func TestRawMergeUnderShortReads(t *testing.T) {
	cfg := modelcfg.Tiny()
	clean := storage.NewMem()
	newRun(t, clean, cfg, 2, []int{5, 10}, nil)
	rec := singleSourceRecipe("run/checkpoint-10", "merged")
	if _, err := Merge(clean, rec, Options{Workers: 1, ChunkBytes: 512}); err != nil {
		t.Fatal(err)
	}
	want := mergeTreeDigest(t, clean, "merged")

	b := storage.NewMem()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	f := storage.NewFault(b)
	f.SetShortReads(true)
	stats, err := Merge(f, rec, Options{Workers: 1, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TensorsRawCopied == 0 || stats.ShardsRawCopied == 0 {
		t.Fatalf("short-read merge left the raw path: %+v", stats)
	}
	if got := mergeTreeDigest(t, b, "merged"); got != want {
		t.Fatal("short reads changed raw merge output")
	}
}
