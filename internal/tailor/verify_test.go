package tailor

import (
	"strings"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
)

func TestVerifyCleanCheckpoint(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5}, nil)
	rep, err := Verify(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean checkpoint reported problems: %v", rep.Problems)
	}
	if rep.WeightTensors != len(cfg.Tensors()) {
		t.Fatalf("verified %d tensors, want %d", rep.WeightTensors, len(cfg.Tensors()))
	}
	if rep.ShardFiles != 2 {
		t.Fatalf("verified %d shard files", rep.ShardFiles)
	}
	wantGroups := 2*cfg.NumLayers + 3
	if rep.Groups != wantGroups {
		t.Fatalf("groups = %d, want %d", rep.Groups, wantGroups)
	}
	if !strings.Contains(rep.Describe(), "OK") {
		t.Fatalf("describe: %s", rep.Describe())
	}
}

func TestVerifyMergedCheckpoint(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged")
	if _, err := Merge(b, rec, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(b, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !rep.Complete {
		t.Fatalf("merged checkpoint failed verify: %v", rep.Problems)
	}
}

func TestVerifyPartialCheckpoint(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	layers := []modelcfg.LayerRef{modelcfg.Block(0), modelcfg.Block(1), modelcfg.Embed}
	newRun(t, b, cfg, 2, []int{5}, map[int][]modelcfg.LayerRef{5: layers})
	rep, err := Verify(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("partial checkpoint failed verify: %v", rep.Problems)
	}
	if rep.Complete {
		t.Fatal("partial marked complete")
	}
	// blocks 0, 1 (2 groups each) + embed (1) = 5 groups per rank.
	if rep.Groups != 5 {
		t.Fatalf("groups = %d, want 5", rep.Groups)
	}
}

func TestVerifyDetectsWeightCorruption(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 1, []int{5}, nil)
	raw, _ := b.ReadFile("run/checkpoint-5/model.ltsf")
	raw[len(raw)-2] ^= 0xFF
	b.WriteFile("run/checkpoint-5/model.ltsf", raw)

	rep, err := Verify(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("weight corruption undetected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "CRC") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems: %v", rep.Problems)
	}
}

func TestVerifyDetectsMissingShard(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5}, nil)
	b.Remove("run/checkpoint-5/" + ckpt.ShardFileName(1))
	rep, err := Verify(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing shard undetected")
	}
}

func TestVerifyDetectsShardCorruption(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5}, nil)
	name := "run/checkpoint-5/" + ckpt.ShardFileName(0)
	raw, _ := b.ReadFile(name)
	raw[len(raw)-1] ^= 0x01
	b.WriteFile(name, raw)
	rep, err := Verify(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("shard corruption undetected")
	}
}

func TestVerifyMissingDir(t *testing.T) {
	if _, err := Verify(storage.NewMem(), "absent"); err == nil {
		t.Fatal("expected error")
	}
}
