package tailor

// Crash-point exploration for the merge path: every mutating storage
// operation of a full passthrough merge (weights + optimizer + configs +
// commit + pointer) fails in turn, and recovery must always land on a
// committed checkpoint — the previous merge output or the new one, never
// a hybrid, with the sources untouched.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func mergeTreeDigest(t *testing.T, b storage.Backend, dir string) string {
	t.Helper()
	h := sha256.New()
	var walk func(d string)
	walk = func(d string) {
		entries, err := b.List(d)
		if err != nil {
			t.Fatalf("list %s: %v", d, err)
		}
		sort.Strings(entries)
		for _, e := range entries {
			if strings.HasSuffix(e, "/") {
				walk(d + "/" + strings.TrimSuffix(e, "/"))
				continue
			}
			data, err := b.ReadFile(d + "/" + e)
			if err != nil {
				t.Fatalf("read %s/%s: %v", d, e, err)
			}
			fmt.Fprintf(h, "%s/%s:%d:", d, e, len(data))
			h.Write(data)
		}
	}
	walk(dir)
	return hex.EncodeToString(h.Sum(nil))
}

func TestCrashPointExplorationFullMerge(t *testing.T) {
	cfg := modelcfg.Tiny()
	exploreMergeCrashPoints(t, cfg,
		recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged-b"))
}

// The raw-copy fast path (tensor extents plus whole shard files, armed by a
// single-source recipe) runs the same crash exploration: every fault point
// of the zero-decode merge must still land on previous-or-new-never-hybrid.
func TestCrashPointExplorationRawPassthroughMerge(t *testing.T) {
	cfg := modelcfg.Tiny()
	rec := singleSourceRecipe("run/checkpoint-10", "merged-b")

	// Sanity: this recipe really arms both raw paths before we explore it.
	b := storage.NewMem()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	stats, err := Merge(b, rec, Options{Workers: 1, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TensorsRawCopied == 0 || stats.ShardsRawCopied == 0 {
		t.Fatalf("recipe does not arm the raw paths: %+v", stats)
	}

	exploreMergeCrashPoints(t, cfg, rec)
}

// exploreMergeCrashPoints fails a merge of recB at every mutating storage
// operation (clean and torn) on top of a previously-committed merge output
// merged-a, asserting sources and the previous output survive untouched,
// the new output is all-or-nothing, resolution lands on a committed
// checkpoint, and repair-then-replay converges to the fault-free bytes.
func exploreMergeCrashPoints(t *testing.T, cfg *modelcfg.Config, recB *recipe.Recipe) {
	t.Helper()
	// Tiny chunks force multi-chunk container assembly, so torn-final-
	// chunk crash points exist inside every output file. Workers=1 keeps
	// the storage op sequence identical across replays.
	opts := Options{Workers: 1, ChunkBytes: 512}
	recA := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged-a")

	// setup builds sources plus the previously-committed merge output
	// merged-a (whose root-level latest pointer is the single-segment edge
	// case: the run root is the backend root itself).
	setup := func() *storage.Mem {
		b := storage.NewMem()
		newRun(t, b, cfg, 2, []int{5, 10}, nil)
		if _, err := Merge(b, recA, opts); err != nil {
			t.Fatal(err)
		}
		return b
	}

	clean := setup()
	prevDigest := mergeTreeDigest(t, clean, "merged-a")
	srcDigest := mergeTreeDigest(t, clean, "run")
	if _, err := Merge(clean, recB, opts); err != nil {
		t.Fatal(err)
	}
	nextDigest := mergeTreeDigest(t, clean, "merged-b")

	// Count the fault points of the merged-b merge.
	count := setup()
	f := storage.NewFault(count)
	if _, err := Merge(f, recB, opts); err != nil {
		t.Fatal(err)
	}
	if d := mergeTreeDigest(t, count, "merged-b"); d != nextDigest {
		t.Fatal("merge is not byte-deterministic; crash exploration would be meaningless")
	}
	n := int(f.Ops())
	if n < 10 {
		t.Fatalf("suspiciously few fault points in a full merge: %d", n)
	}
	t.Logf("exploring %d crash points × {clean, torn}", n)

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := setup()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			f.FailAt(k)
			_, err := Merge(f, recB, opts)
			if !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Sources and the previous merge output are untouched.
			if d := mergeTreeDigest(t, base, "run"); d != srcDigest {
				t.Fatalf("k=%d torn=%v: merge crash damaged the sources", k, torn)
			}
			if err := ckpt.VerifyCommit(base, "merged-a"); err != nil {
				t.Fatalf("k=%d torn=%v: previous output damaged: %v", k, torn, err)
			}
			if d := mergeTreeDigest(t, base, "merged-a"); d != prevDigest {
				t.Fatalf("k=%d torn=%v: previous output bytes changed", k, torn)
			}

			// The new output is all or nothing.
			if base.Exists("merged-b") {
				if err := ckpt.VerifyCommit(base, "merged-b"); err != nil {
					t.Fatalf("k=%d torn=%v: published output not committed: %v", k, torn, err)
				}
				if d := mergeTreeDigest(t, base, "merged-b"); d != nextDigest {
					t.Fatalf("k=%d torn=%v: published output differs from fault-free merge", k, torn)
				}
			}

			// Root-level resolution lands on a committed output.
			latest, lerr := ckpt.Latest(base, "")
			if lerr != nil {
				t.Fatalf("k=%d torn=%v: latest: %v", k, torn, lerr)
			}
			if latest != "merged-a" && latest != "merged-b" {
				t.Fatalf("k=%d torn=%v: latest = %q", k, torn, latest)
			}
			if _, _, _, err := ckpt.Restore(base, latest, tensor.BF16); err != nil {
				t.Fatalf("k=%d torn=%v: restore %s: %v", k, torn, latest, err)
			}

			// Repair clears residue; replaying the merge converges to the
			// fault-free bytes.
			if _, err := ckpt.Repair(base, ""); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			statuses, err := ckpt.Scan(base, "")
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range statuses {
				if st.State != ckpt.StateCommitted {
					t.Fatalf("k=%d torn=%v: %s still %v after repair", k, torn, st.Path, st.State)
				}
			}
			if _, err := Merge(base, recB, opts); err != nil {
				t.Fatalf("k=%d torn=%v: merge after repair: %v", k, torn, err)
			}
			if d := mergeTreeDigest(t, base, "merged-b"); d != nextDigest {
				t.Fatalf("k=%d torn=%v: post-repair merge differs from fault-free merge", k, torn)
			}
		}
	}
}

// The merge engine must read containers correctly under adversarial
// short reads (no io.Read full-buffer assumptions anywhere on the path).
func TestMergeUnderShortReads(t *testing.T) {
	cfg := modelcfg.Tiny()
	b := storage.NewMem()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged")
	opts := Options{Workers: 1, ChunkBytes: 512}

	clean := storage.NewMem()
	newRun(t, clean, cfg, 2, []int{5, 10}, nil)
	if _, err := Merge(clean, rec, opts); err != nil {
		t.Fatal(err)
	}
	want := mergeTreeDigest(t, clean, "merged")

	f := storage.NewFault(b)
	f.SetShortReads(true)
	if _, err := Merge(f, rec, opts); err != nil {
		t.Fatal(err)
	}
	if got := mergeTreeDigest(t, b, "merged"); got != want {
		t.Fatal("short reads changed merge output")
	}
}
