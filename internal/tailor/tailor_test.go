package tailor

import (
	"strings"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// run simulates a training run: AdamW steps on random gradients with full
// checkpoints saved at the requested steps. It returns per-step snapshots of
// (model, optimizer) at each save point for ground-truth comparison.
type run struct {
	cfg    *modelcfg.Config
	b      storage.Backend
	models map[int]*model.Model
	optims map[int]*optim.AdamW
}

func newRun(t testing.TB, b storage.Backend, cfg *modelcfg.Config, ws int, saveSteps []int, partial map[int][]modelcfg.LayerRef) *run {
	t.Helper()
	m, err := model.NewInitialized(cfg, tensor.BF16, 77)
	if err != nil {
		t.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	r := &run{cfg: cfg, b: b, models: map[int]*model.Model{}, optims: map[int]*optim.AdamW{}}
	rng := tensor.NewRNG(88)
	last := saveSteps[len(saveSteps)-1]
	next := 0
	for step := 1; step <= last; step++ {
		grads := optim.GradMap{}
		for _, ts := range m.Tensors() {
			g := make([]float32, ts.Len())
			for i := range g {
				g[i] = rng.NormFloat32() * 0.1
			}
			grads[ts.Name] = g
		}
		if err := o.Step(1e-3, grads); err != nil {
			t.Fatal(err)
		}
		if next < len(saveSteps) && step == saveSteps[next] {
			layers := partial[step] // nil = full
			err := ckpt.Save(b, ckpt.SaveSpec{
				Dir: "run/" + ckpt.DirName(step), Model: m, Optim: o,
				WorldSize: ws, Layers: layers, Strategy: "test",
				State: ckpt.TrainerState{Step: step, LR: 1e-3, Loss: 2, Task: "sft", Seed: 77},
			})
			if err != nil {
				t.Fatal(err)
			}
			r.models[step] = m.Clone()
			r.optims[step] = o.Clone(r.models[step])
			next++
		}
	}
	return r
}

// assertLayerMatches verifies that merged's weights and optimizer state for
// every tensor of layer ref equal the snapshot from the given step.
func (r *run) assertLayerMatches(t *testing.T, merged *model.Model, mergedOpt *optim.AdamW, ref modelcfg.LayerRef, step int) {
	t.Helper()
	src := r.models[step]
	srcOpt := r.optims[step]
	for _, ts := range src.LayerTensors(ref) {
		got, err := merged.Tensor(ts.Name)
		if err != nil {
			t.Fatalf("merged missing %s: %v", ts.Name, err)
		}
		if !tensor.Equal(got, ts) {
			t.Fatalf("layer %s tensor %s weights differ from checkpoint-%d", ref, ts.Name, step)
		}
		am, ae, av, err := srcOpt.TensorState(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		bm, be, bv, err := mergedOpt.TensorState(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range am {
			if am[i] != bm[i] || ae[i] != be[i] || av[i] != bv[i] {
				t.Fatalf("layer %s tensor %s optimizer state differs from checkpoint-%d at %d", ref, ts.Name, step, i)
			}
		}
	}
}

func TestParityMergeEndToEnd(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 4, []int{5, 10}, nil)

	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged/checkpoint-10")
	stats, err := Merge(b, rec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointsUsed != 2 {
		t.Fatalf("checkpoints used = %d", stats.CheckpointsUsed)
	}
	// Straightforward: 2 sources × 4 ranks = 8 shard loads.
	if stats.ShardFileLoads != 8 {
		t.Fatalf("shard loads = %d, want 8", stats.ShardFileLoads)
	}

	m, o, c, err := ckpt.Restore(b, "merged/checkpoint-10", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if c.State.Step != 10 {
		t.Fatalf("configs step = %d, want 10 (copied from current)", c.State.Step)
	}
	for i := 0; i < cfg.NumLayers; i++ {
		step := 10
		if i%2 == 1 {
			step = 5
		}
		r.assertLayerMatches(t, m, o, modelcfg.Block(i), step)
	}
	r.assertLayerMatches(t, m, o, modelcfg.Embed, 5)
	r.assertLayerMatches(t, m, o, modelcfg.FinalNorm, 10)
	r.assertLayerMatches(t, m, o, modelcfg.LMHead, 10)
}

func TestSingleSourceMergeIsIdentity(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 2, []int{4}, nil)

	rec := &recipe.Recipe{
		MergeMethod: "passthrough", Base: "run/checkpoint-4",
		Output: "out", Optimizer: true,
	}
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	m, o, _, err := ckpt.Restore(b, "out", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(m, r.models[4]) {
		t.Fatal("identity merge changed weights")
	}
	for _, ref := range cfg.AllLayers() {
		r.assertLayerMatches(t, m, o, ref, 4)
	}
}

func TestMergeFromPartialCheckpoints(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	// Alternating partial saves: step 5 holds odd layers + embed, step 10
	// holds even layers + norm + head.
	odd := []modelcfg.LayerRef{modelcfg.Block(1), modelcfg.Block(3), modelcfg.Embed}
	even := []modelcfg.LayerRef{modelcfg.Block(0), modelcfg.Block(2), modelcfg.FinalNorm, modelcfg.LMHead}
	r := newRun(t, b, cfg, 2, []int{5, 10}, map[int][]modelcfg.LayerRef{5: odd, 10: even})

	rec, err := recipe.FromManifests(b, "run", 0, cfg, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(b, rec, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	m, o, _, err := ckpt.Restore(b, "merged", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range odd {
		r.assertLayerMatches(t, m, o, ref, 5)
	}
	for _, ref := range even {
		r.assertLayerMatches(t, m, o, ref, 10)
	}
}

func TestInterleavedMatchesStraightforward(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out-a")

	statsA, err := Merge(b, rec, Options{LoadOrder: Straightforward})
	if err != nil {
		t.Fatal(err)
	}
	recB := *rec
	recB.Output = "out-b"
	statsB, err := Merge(b, &recB, Options{LoadOrder: Interleaved})
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved loads once per layer per rank: 7 mergeable layers × 2
	// ranks = 14; straightforward: 2 sources × 2 ranks = 4.
	if statsA.ShardFileLoads != 4 {
		t.Fatalf("straightforward loads = %d, want 4", statsA.ShardFileLoads)
	}
	if statsB.ShardFileLoads != int64(cfg.TotalMergeableLayers())*2 {
		t.Fatalf("interleaved loads = %d, want %d", statsB.ShardFileLoads, cfg.TotalMergeableLayers()*2)
	}

	ma, oa, _, err := ckpt.Restore(b, "out-a", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	mb, ob, _, err := ckpt.Restore(b, "out-b", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(ma, mb) {
		t.Fatal("load orders produced different weights")
	}
	for _, ts := range ma.Tensors() {
		am, ae, av, _ := oa.TensorState(ts.Name)
		bm, be, bv, _ := ob.TensorState(ts.Name)
		for i := range am {
			if am[i] != bm[i] || ae[i] != be[i] || av[i] != bv[i] {
				t.Fatalf("load orders differ at %s[%d]", ts.Name, i)
			}
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 8, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out-serial")
	if _, err := Merge(b, rec, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	recP := *rec
	recP.Output = "out-par"
	if _, err := Merge(b, &recP, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a, err := b.ReadFile("out-serial/" + ckpt.ShardFileName(r))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.ReadFile("out-par/" + ckpt.ShardFileName(r))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(bb) {
			t.Fatalf("rank %d shard differs between serial and parallel", r)
		}
	}
}

func TestWeightsOnlyMerge(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out")
	rec.Optimizer = false
	stats, err := Merge(b, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardFileLoads != 0 {
		t.Fatalf("weights-only merge loaded %d shards", stats.ShardFileLoads)
	}
	if b.Exists("out/zero") {
		t.Fatal("weights-only merge wrote optimizer shards")
	}
	// A weights-only "MergeKit-style" output cannot resume training.
	if _, _, _, err := ckpt.Restore(b, "out", tensor.BF16); err == nil {
		t.Fatal("weights-only output restored as resumable")
	}
}

func TestMergedCheckpointContinuesTraining(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged")
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	m, o, _, err := ckpt.Restore(b, "merged", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	// The Frankenstein model must accept further optimization steps.
	rng := tensor.NewRNG(3)
	for step := 0; step < 3; step++ {
		grads := optim.GradMap{}
		for _, ts := range m.Tensors() {
			g := make([]float32, ts.Len())
			for i := range g {
				g[i] = rng.NormFloat32() * 0.1
			}
			grads[ts.Name] = g
		}
		if err := o.Step(1e-3, grads); err != nil {
			t.Fatal(err)
		}
	}
	if o.StepCount <= 10 {
		t.Fatalf("step count = %d, want > 10 (resumed)", o.StepCount)
	}
}

func TestPlanErrors(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5}, nil)

	// Missing source checkpoint.
	rec := &recipe.Recipe{Base: "run/checkpoint-999", Output: "o", Optimizer: true}
	if _, err := NewPlan(b, rec); err == nil {
		t.Error("missing source accepted")
	}

	// Partial source missing an assigned layer.
	b2 := storage.NewMem()
	newRun(t, b2, cfg, 2, []int{5}, map[int][]modelcfg.LayerRef{5: {modelcfg.Block(0)}})
	rec2 := &recipe.Recipe{Base: "run/checkpoint-5", Output: "o", Optimizer: true}
	if _, err := NewPlan(b2, rec2); err == nil || !strings.Contains(err.Error(), "does not contain") {
		t.Errorf("missing layer: %v", err)
	}

	// World-size mismatch across sources is admitted and routed through the
	// reshard transform: the plan records the mismatched source's native
	// world size and keeps the configs source's as the output.
	b3 := storage.NewMem()
	newRun(t, b3, cfg, 2, []int{5}, nil)
	m, _ := model.NewInitialized(cfg, tensor.BF16, 5)
	o, _ := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err := ckpt.Save(b3, ckpt.SaveSpec{Dir: "run/checkpoint-9", Model: m, Optim: o,
		WorldSize: 4, State: ckpt.TrainerState{Step: 9}}); err != nil {
		t.Fatal(err)
	}
	rec3 := recipe.Parity("run/checkpoint-5", "run/checkpoint-9", cfg, "o")
	plan3, err := NewPlan(b3, rec3)
	if err != nil {
		t.Fatalf("ws mismatch no longer merges: %v", err)
	}
	if plan3.WorldSize != 4 || plan3.Resharded["run/checkpoint-5"] != 2 {
		t.Errorf("ws mismatch plan: world %d, resharded %v", plan3.WorldSize, plan3.Resharded)
	}

	// Two-group source cannot be layer-merged.
	b4 := storage.NewMem()
	o2, _ := optim.NewAdamW(m, optim.NewTwoGroupLayout(cfg), optim.DefaultHyper())
	if err := ckpt.Save(b4, ckpt.SaveSpec{Dir: "run/checkpoint-5", Model: m, Optim: o2,
		WorldSize: 2, State: ckpt.TrainerState{Step: 5}}); err != nil {
		t.Fatal(err)
	}
	rec4 := &recipe.Recipe{Base: "run/checkpoint-5", Output: "o", Optimizer: true}
	if _, err := NewPlan(b4, rec4); err == nil || !strings.Contains(err.Error(), "regroup") {
		t.Errorf("two-group source: %v", err)
	}

	// Architecture mismatch.
	b5 := storage.NewMem()
	newRun(t, b5, cfg, 2, []int{5}, nil)
	mq, _ := model.NewInitialized(modelcfg.TinyQwen(), tensor.BF16, 5)
	oq, _ := optim.NewAdamW(mq, optim.NewLayerwiseLayout(modelcfg.TinyQwen()), optim.DefaultHyper())
	if err := ckpt.Save(b5, ckpt.SaveSpec{Dir: "run/checkpoint-9", Model: mq, Optim: oq,
		WorldSize: 2, State: ckpt.TrainerState{Step: 9}}); err != nil {
		t.Fatal(err)
	}
	rec5 := recipe.Parity("run/checkpoint-5", "run/checkpoint-9", cfg, "o")
	if _, err := NewPlan(b5, rec5); err == nil {
		t.Error("arch mismatch accepted")
	}
}

func TestPlanDescribe(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out")
	p, err := NewPlan(b, rec)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{"run/checkpoint-5", "run/checkpoint-10", "embed_tokens", "out", "world size 2"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q:\n%s", want, d)
		}
	}
}

func TestMergeDTypeConversion(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 1, []int{3}, nil)
	rec := &recipe.Recipe{Base: "run/checkpoint-3", Output: "out", DType: "float32", Optimizer: true}
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	c, err := ckpt.Open(b, "out")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := c.Weights().ReadTensor("model.norm.weight")
	if err != nil {
		t.Fatal(err)
	}
	if ts.DType != tensor.F32 {
		t.Fatalf("output dtype = %s", ts.DType)
	}
}

func TestMergeStatsTensorCount(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 1, []int{3}, nil)
	rec := &recipe.Recipe{Base: "run/checkpoint-3", Output: "out", Optimizer: true}
	stats, err := Merge(b, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TensorsRead != len(cfg.Tensors()) {
		t.Fatalf("tensors read = %d, want %d", stats.TensorsRead, len(cfg.Tensors()))
	}
	if stats.WallTime <= 0 {
		t.Fatal("wall time not measured")
	}
}

// TestMergeReshardedSources merges two checkpoints saved at different world
// sizes, as if the run had been elastically resized between them: the
// mismatched source's groups are repartitioned on the fly instead of the
// old "resharding is not supported" dead end. Both load orders must agree,
// the output carries the configs source's world size, and every layer's
// weights and optimizer state match its source snapshot bit for bit.
func TestMergeReshardedSources(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 3, []int{5, 10}, nil)
	// Re-save the step-10 state at world size 5, simulating a resize.
	err := ckpt.Save(b, ckpt.SaveSpec{
		Dir: "wide/checkpoint-10", Model: r.models[10], Optim: r.optims[10],
		WorldSize: 5, Strategy: "test",
		State: ckpt.TrainerState{Step: 10, LR: 1e-3, Loss: 2, Task: "sft", Seed: 77},
	})
	if err != nil {
		t.Fatal(err)
	}

	rec := recipe.Parity("run/checkpoint-5", "wide/checkpoint-10", cfg, "merged/checkpoint-10")
	plan, err := NewPlan(b, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Configs come from the wide checkpoint, so its world size (5) wins and
	// the narrow source reshards 3→5.
	if plan.WorldSize != 5 || plan.Resharded["run/checkpoint-5"] != 3 {
		t.Fatalf("plan: world %d, resharded %v", plan.WorldSize, plan.Resharded)
	}

	stats, err := Merge(b, rec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Straightforward: the native source costs 1 load per output rank, the
	// mismatched one its full native world (3) per output rank: 5×(1+3).
	if stats.ShardFileLoads != 20 {
		t.Fatalf("shard loads = %d, want 20", stats.ShardFileLoads)
	}
	if stats.ShardsRawCopied != 0 {
		t.Fatalf("raw-copied %d shards across a world-size boundary", stats.ShardsRawCopied)
	}

	m, o, c, err := ckpt.Restore(b, "merged/checkpoint-10", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if c.State.WorldSize != 5 {
		t.Fatalf("merged world size = %d, want 5", c.State.WorldSize)
	}
	for ref, path := range plan.Assign {
		step := 10
		if path == "run/checkpoint-5" {
			step = 5
		}
		r.assertLayerMatches(t, m, o, ref, step)
	}

	// The interleaved order must produce the same merged state.
	rec.Output = "merged-il/checkpoint-10"
	if _, err := Merge(b, rec, Options{LoadOrder: Interleaved}); err != nil {
		t.Fatal(err)
	}
	m2, o2, _, err := ckpt.Restore(b, "merged-il/checkpoint-10", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(m, m2) {
		t.Fatal("load orders disagree on merged weights")
	}
	for ref := range plan.Assign {
		for _, ts := range m.LayerTensors(ref) {
			am, ae, av, _ := o.TensorState(ts.Name)
			bm, be, bv, err := o2.TensorState(ts.Name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range am {
				if am[i] != bm[i] || ae[i] != be[i] || av[i] != bv[i] {
					t.Fatalf("load orders disagree on optimizer state of %s", ts.Name)
				}
			}
		}
	}
}
