package tailor

import "encoding/json"

func jsonMarshalIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
