package tailor

import (
	"math"
	"strings"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func TestLinearMergeAverages(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 2, []int{5, 10}, nil)

	rec := &recipe.Recipe{
		MergeMethod: "linear",
		Models: []recipe.WeightedSource{
			{Checkpoint: "run/checkpoint-5"},
			{Checkpoint: "run/checkpoint-10"},
		},
		Output: "soup",
	}
	stats, err := Merge(b, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointsUsed != 2 || stats.ShardFileLoads != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	c, err := ckpt.Open(b, "soup")
	if err != nil {
		t.Fatal(err)
	}
	name := "model.norm.weight"
	got, err := c.Weights().ReadTensor(name)
	if err != nil {
		t.Fatal(err)
	}
	a5, _ := r.models[5].Tensor(name)
	a10, _ := r.models[10].Tensor(name)
	for i := 0; i < got.Len(); i++ {
		want := tensor.BF16ToF32(tensor.F32ToBF16((a5.At(i) + a10.At(i)) / 2))
		if math.Abs(float64(got.At(i)-want)) > 1e-6 {
			t.Fatalf("elem %d: %v, want average %v", i, got.At(i), want)
		}
	}
}

func TestLinearMergeExtremeWeightIsIdentity(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := &recipe.Recipe{
		MergeMethod: "linear",
		Models: []recipe.WeightedSource{
			{Checkpoint: "run/checkpoint-5", Weight: 1e-12},
			{Checkpoint: "run/checkpoint-10", Weight: 1},
		},
		Output: "soup",
	}
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	c, _ := ckpt.Open(b, "soup")
	for _, name := range []string{"model.norm.weight", "model.layers.0.self_attn.q_proj.weight"} {
		got, _ := c.Weights().ReadTensor(name)
		want, _ := r.models[10].Tensor(name)
		for i := 0; i < got.Len(); i++ {
			if math.Abs(float64(got.At(i)-want.At(i))) > 1e-2 {
				t.Fatalf("%s[%d]: %v vs %v", name, i, got.At(i), want.At(i))
			}
		}
	}
}

func TestSlerpEndpoints(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	r := newRun(t, b, cfg, 2, []int{5, 10}, nil)
	for _, tc := range []struct {
		t    float64
		step int
	}{{0, 5}, {1, 10}} {
		rec := &recipe.Recipe{
			MergeMethod: "slerp",
			T:           tc.t,
			Models: []recipe.WeightedSource{
				{Checkpoint: "run/checkpoint-5"},
				{Checkpoint: "run/checkpoint-10"},
			},
			Output: "soup",
		}
		if _, err := Merge(b, rec, Options{}); err != nil {
			t.Fatal(err)
		}
		c, _ := ckpt.Open(b, "soup")
		got, _ := c.Weights().ReadTensor("model.norm.weight")
		want, _ := r.models[tc.step].Tensor("model.norm.weight")
		for i := 0; i < got.Len(); i++ {
			if math.Abs(float64(got.At(i)-want.At(i))) > 1e-2 {
				t.Fatalf("t=%v elem %d: %v vs %v", tc.t, i, got.At(i), want.At(i))
			}
		}
	}
}

func TestSlerpUnitVectors(t *testing.T) {
	// Orthogonal unit vectors at t=0.5 must stay unit length (the property
	// lerp does not have).
	a := []float32{1, 0}
	b := []float32{0, 1}
	out := slerpBlend(a, b, 0.5)
	norm := math.Sqrt(float64(out[0]*out[0] + out[1]*out[1]))
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("slerp norm = %v", norm)
	}
	if math.Abs(float64(out[0]-out[1])) > 1e-6 {
		t.Fatalf("slerp midpoint not symmetric: %v", out)
	}
}

func TestSlerpDegenerateFallsBackToLerp(t *testing.T) {
	a := []float32{1, 1}
	out := slerpBlend(a, a, 0.25)
	for i := range out {
		if math.Abs(float64(out[i]-1)) > 1e-6 {
			t.Fatalf("identical-vector slerp = %v", out)
		}
	}
	zero := []float32{0, 0}
	out = slerpBlend(zero, []float32{2, 0}, 0.5)
	if math.Abs(float64(out[0]-1)) > 1e-6 {
		t.Fatalf("zero-vector slerp = %v", out)
	}
}

// Blend outputs cannot resume training: no optimizer shards are written and
// restore refuses them. This is exactly MergeKit's limitation (§3).
func TestBlendOutputsCannotResume(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	rec := &recipe.Recipe{
		MergeMethod: "linear",
		Models: []recipe.WeightedSource{
			{Checkpoint: "run/checkpoint-5"},
			{Checkpoint: "run/checkpoint-10"},
		},
		Output: "soup",
	}
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	if b.Exists("soup/zero") {
		t.Fatal("blend wrote optimizer shards")
	}
	if _, _, _, err := ckpt.Restore(b, "soup", tensor.BF16); err == nil {
		t.Fatal("blend output restored as resumable")
	}
}

func TestBlendValidation(t *testing.T) {
	cases := []*recipe.Recipe{
		{MergeMethod: "linear", Output: "o", Models: []recipe.WeightedSource{{Checkpoint: "a"}}},                                                           // 1 model
		{MergeMethod: "slerp", Output: "o", Models: []recipe.WeightedSource{{Checkpoint: "a"}, {Checkpoint: "b"}, {Checkpoint: "c"}}},                      // 3 models
		{MergeMethod: "slerp", Output: "o", T: 1.5, Models: []recipe.WeightedSource{{Checkpoint: "a"}, {Checkpoint: "b"}}},                                 // t out of range
		{MergeMethod: "linear", Output: "o", Optimizer: true, Models: []recipe.WeightedSource{{Checkpoint: "a"}, {Checkpoint: "b"}}},                       // optimizer
		{MergeMethod: "linear", Output: "o", Models: []recipe.WeightedSource{{Checkpoint: "a", Weight: -1}, {Checkpoint: "b"}}},                            // negative
		{MergeMethod: "linear", Output: "", Models: []recipe.WeightedSource{{Checkpoint: "a"}, {Checkpoint: "b"}}},                                         // no output
		{MergeMethod: "linear", Output: "o", Base: "x", Slices: []recipe.Slice{{}}, Models: []recipe.WeightedSource{{Checkpoint: "a"}, {Checkpoint: "b"}}}, // slices
		{MergeMethod: "passthrough", Base: "x", Output: "o", Models: []recipe.WeightedSource{{Checkpoint: "a"}}},                                           // models on passthrough
	}
	for i, rec := range cases {
		if err := rec.Validate(); err == nil {
			t.Errorf("case %d: invalid blend recipe accepted: %+v", i, rec)
		}
	}
}

func TestBlendRejectsPartialSources(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5}, map[int][]modelcfg.LayerRef{5: {modelcfg.Block(0)}})
	rec := &recipe.Recipe{
		MergeMethod: "linear",
		Models: []recipe.WeightedSource{
			{Checkpoint: "run/checkpoint-5"},
			{Checkpoint: "run/checkpoint-5"},
		},
		Output: "soup",
	}
	if _, err := Merge(b, rec, Options{}); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("err = %v", err)
	}
}

func TestBlendRecipeYAMLRoundtrip(t *testing.T) {
	src := `
merge_method: slerp
t: 0.4
models:
  - checkpoint: run/checkpoint-100
  - checkpoint: run/checkpoint-200
output: soup
`
	rec, err := recipe.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if rec.T != 0.4 || len(rec.Models) != 2 || !rec.IsBlend() {
		t.Fatalf("recipe: %+v", rec)
	}
	out, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := recipe.Parse(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if back.T != rec.T || len(back.Models) != 2 || back.Models[0].Checkpoint != "run/checkpoint-100" {
		t.Fatalf("roundtrip: %+v", back)
	}
}
