// Package tailor is the paper's primary contribution: the engine that
// assembles a fully resumable "Frankenstein" checkpoint by selecting layers
// — weights *and* optimizer state — from multiple source checkpoints
// according to a YAML recipe (§4).
//
// The merge proceeds in four phases mirroring §4.1–§4.4:
//
//  1. Plan: open every source checkpoint, verify architectural
//     compatibility, world sizes, layerwise optimizer layouts and layer
//     availability (via partial manifests).
//  2. Weights: lazily read each tensor from its assigned source (LTSF
//     offset reads) and write one consolidated output weights file.
//  3. Optimizer: for every rank, load source shard files (whole-file reads
//     — optimizer state cannot be lazily loaded), copy each layer's groups
//     by their fixed layout indices, and write the rank's output shard.
//     Ranks are processed by a bounded worker pool (the Go analogue of the
//     paper's ProcessPoolExecutor).
//  4. Configs: copy config.json/trainer_state.json from the designated
//     source and emit a complete manifest.
package tailor

import (
	"fmt"
	"sort"
	"strings"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
)

// Plan is a validated, executable merge plan.
type Plan struct {
	Recipe *recipe.Recipe
	Config *modelcfg.Config
	// Assign maps every mergeable layer to its source checkpoint path.
	Assign map[modelcfg.LayerRef]string
	// Sources holds the opened checkpoints by path.
	Sources map[string]*ckpt.Checkpoint
	// WorldSize is the output rank count: the world size of the configs
	// source. Sources saved at a different world size are admitted and
	// resharded on the fly (see Resharded).
	WorldSize int
	// Resharded maps each source whose native world size differs from
	// WorldSize to that native size. The merge repartitions these sources'
	// groups through zero.Partition math instead of erroring; a standalone
	// transform is also available as `llmtailor reshard`.
	Resharded map[string]int
	// Layout is the layerwise group layout shared by all sources.
	Layout *optim.Layout
}

// NewPlan opens sources and validates the recipe against them.
func NewPlan(b storage.Backend, r *recipe.Recipe) (*Plan, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Recipe: r, Sources: map[string]*ckpt.Checkpoint{}}

	for _, path := range r.Checkpoints() {
		c, err := ckpt.Open(b, path)
		if err != nil {
			return nil, fmt.Errorf("tailor: open source %s: %w", path, err)
		}
		p.Sources[path] = c
	}

	// Architectural compatibility: every source must describe the same
	// model geometry.
	base := p.Sources[r.ConfigsSource()]
	if base == nil {
		// ConfigsSource defaults to Base; with no Base, fall back to the
		// first source in sorted order.
		base = p.Sources[r.Checkpoints()[0]]
	}
	p.Config = base.Config
	for path, c := range p.Sources {
		if err := sameArch(p.Config, c.Config); err != nil {
			return nil, fmt.Errorf("tailor: source %s: %w", path, err)
		}
	}

	assign, err := r.Assignments(p.Config)
	if err != nil {
		return nil, err
	}
	p.Assign = assign

	// Layer availability: each assigned layer must exist in its source's
	// manifest (partial checkpoints list what they hold).
	for ref, path := range assign {
		if !p.Sources[path].Manifest.HasLayer(ref) {
			return nil, fmt.Errorf("tailor: source %s does not contain layer %s (partial checkpoint?)", path, ref)
		}
	}

	if r.Optimizer {
		// The output inherits the configs source's world size; any source
		// saved at a different world size is recorded for on-the-fly
		// resharding rather than rejected (`llmtailor reshard` performs the
		// same repartition as a standalone transform).
		ws := base.WorldSize()
		if ws <= 0 {
			return nil, fmt.Errorf("tailor: configs source has invalid world size %d — reshard it first with `llmtailor reshard`", ws)
		}
		p.Resharded = map[string]int{}
		for path, c := range p.Sources {
			if c.WorldSize() <= 0 {
				return nil, fmt.Errorf("tailor: source %s has invalid world size %d", path, c.WorldSize())
			}
			if c.WorldSize() != ws {
				p.Resharded[path] = c.WorldSize()
			}
			if c.State.Layout != optim.Layerwise.String() {
				return nil, fmt.Errorf("tailor: source %s uses a %s optimizer layout; regroup before training to enable layer merging (§4.1)", path, c.State.Layout)
			}
		}
		p.WorldSize = ws
		p.Layout = optim.NewLayerwiseLayout(p.Config)
	}
	return p, nil
}

// sameArch verifies two configs describe interchangeable checkpoints.
func sameArch(a, b *modelcfg.Config) error {
	switch {
	case a.Name != b.Name:
		return fmt.Errorf("model %q != %q", b.Name, a.Name)
	case a.HiddenSize != b.HiddenSize, a.IntermediateSize != b.IntermediateSize,
		a.NumLayers != b.NumLayers, a.NumHeads != b.NumHeads,
		a.NumKVHeads != b.NumKVHeads, a.VocabSize != b.VocabSize,
		a.TieWordEmbeddings != b.TieWordEmbeddings, a.AttentionBias != b.AttentionBias:
		return fmt.Errorf("architecture mismatch with %q", a.Name)
	}
	return nil
}

// LayersBySource inverts the assignment map: checkpoint path -> sorted layer
// names.
func (p *Plan) LayersBySource() map[string][]string {
	out := map[string][]string{}
	for ref, path := range p.Assign {
		out[path] = append(out[path], ref.String())
	}
	for _, layers := range out {
		sort.Strings(layers)
	}
	return out
}

// Describe renders a human-readable dry-run summary.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "merge plan for %s (%d transformer layers, %d mergeable)\n",
		p.Config.Name, p.Config.NumLayers, p.Config.TotalMergeableLayers())
	fmt.Fprintf(&b, "output: %s\n", p.Recipe.Output)
	if p.Recipe.Optimizer {
		fmt.Fprintf(&b, "optimizer: merged (%d groups, world size %d)\n", p.Layout.NumGroups(), p.WorldSize)
		for _, path := range p.Recipe.Checkpoints() {
			if native, ok := p.Resharded[path]; ok {
				fmt.Fprintf(&b, "  reshard: %s from world size %d to %d\n", path, native, p.WorldSize)
			}
		}
	} else {
		b.WriteString("optimizer: NOT merged (weights-only output cannot resume training)\n")
	}
	fmt.Fprintf(&b, "configs from: %s\n", p.Recipe.ConfigsSource())
	bySrc := p.LayersBySource()
	paths := make([]string, 0, len(bySrc))
	for path := range bySrc {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(&b, "  %-32s -> %s\n", path, strings.Join(bySrc[path], ", "))
	}
	return b.String()
}
