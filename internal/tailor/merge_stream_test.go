package tailor

import (
	"strings"
	"testing"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// The acceptance property of the streaming refactor: the merge runs with
// peak in-flight tensor memory bounded by Options.MaxInFlight, and the
// output bytes are identical to an unbounded (seed-equivalent) run.
func TestStreamedMergeBoundedInFlight(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	// Reference: unbounded, serial.
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out-ref")
	refStats, err := Merge(b, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if refStats.PeakInFlightBytes <= 0 {
		t.Fatal("peak in-flight not tracked")
	}
	if refStats.BytesRead <= 0 || refStats.BytesWritten <= 0 {
		t.Fatalf("byte counters not tracked: %+v", refStats)
	}

	// Bound well below the model's total weight bytes but above the
	// largest single tensor (embed: vocab × hidden × 2 bytes).
	var largest int64
	var total int64
	for _, spec := range cfg.Tensors() {
		n := spec.NumElems() * 2
		total += n
		if n > largest {
			largest = n
		}
	}
	bound := largest * 2
	if bound >= total {
		t.Fatalf("test model too small to exercise the bound (largest %d, total %d)", largest, total)
	}

	recB := *rec
	recB.Output = "out-bounded"
	stats, err := Merge(b, &recB, Options{Workers: 4, MaxInFlight: bound, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakInFlightBytes > bound {
		t.Fatalf("peak in-flight %d exceeds MaxInFlight %d", stats.PeakInFlightBytes, bound)
	}
	if stats.PeakInFlightBytes <= 0 {
		t.Fatal("peak in-flight not tracked under bound")
	}

	for _, f := range []string{"model.ltsf", ckpt.ShardFileName(0), ckpt.ShardFileName(1), "manifest.json"} {
		ref, err := b.ReadFile("out-ref/" + f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile("out-bounded/" + f)
		if err != nil {
			t.Fatal(err)
		}
		if string(ref) != string(got) {
			t.Fatalf("%s differs between bounded and unbounded merge", f)
		}
	}
}

// Worker count must never change the output bytes of the weights file (the
// ordered sink guarantees deterministic tensor order).
func TestStreamedWeightsDeterministicAcrossWorkers(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	var ref []byte
	for i, workers := range []int{1, 2, 8} {
		rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "out")
		rec.Output = "out-" + string(rune('a'+i))
		if _, err := Merge(b, rec, Options{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile(rec.Output + "/model.ltsf")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if string(ref) != string(got) {
			t.Fatalf("workers=%d produced different model.ltsf", workers)
		}
	}
}

// Blends run through the same pipeline; worker count must not change the
// result, and the gate must track the peak.
func TestStreamedBlendDeterministicAcrossWorkers(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)
	mk := func(out string, workers int) *Stats {
		rec := &recipe.Recipe{
			MergeMethod: "linear",
			Models: []recipe.WeightedSource{
				{Checkpoint: "run/checkpoint-5", Weight: 0.3},
				{Checkpoint: "run/checkpoint-10", Weight: 0.7},
			},
			Output: out,
		}
		stats, err := Merge(b, rec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	s1 := mk("blend-serial", 1)
	s8 := mk("blend-par", 8)
	if s1.PeakInFlightBytes <= 0 || s8.PeakInFlightBytes <= 0 {
		t.Fatal("blend peak in-flight not tracked")
	}
	a, _ := b.ReadFile("blend-serial/model.ltsf")
	bb, _ := b.ReadFile("blend-par/model.ltsf")
	if string(a) != string(bb) {
		t.Fatal("blend output depends on worker count")
	}
}

// The latest-pointer contract, including the single-segment edge case the
// seed left implicit: a root-level Output writes the pointer at the backend
// root, and ckpt.Latest(b, "") resolves it.
func TestMergeLatestPointer(t *testing.T) {
	b := storage.NewMem()
	cfg := modelcfg.Tiny()
	newRun(t, b, cfg, 2, []int{5, 10}, nil)

	// Nested output: pointer in the parent (run root) directory.
	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged/checkpoint-10")
	if _, err := Merge(b, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	data, err := b.ReadFile("merged/latest")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "checkpoint-10" {
		t.Fatalf("merged/latest = %q", data)
	}
	dir, err := ckpt.Latest(b, "merged")
	if err != nil || dir != "merged/checkpoint-10" {
		t.Fatalf("Latest = %q, %v", dir, err)
	}

	// Single-segment output: the run root is the backend root, so the
	// pointer is the root-level "latest" file.
	rec2 := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "franken")
	if _, err := Merge(b, rec2, Options{}); err != nil {
		t.Fatal(err)
	}
	data, err = b.ReadFile("latest")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "franken" {
		t.Fatalf("root latest = %q", data)
	}
	dir, err = ckpt.Latest(b, "")
	if err != nil || dir != "franken" {
		t.Fatalf("Latest(root) = %q, %v", dir, err)
	}
	if _, _, _, err := ckpt.Restore(b, dir, tensor.BF16); err != nil {
		t.Fatalf("restore via root latest pointer: %v", err)
	}
}

// A merge onto a metered OS backend exercises the full streamed path —
// spool files, chunked writes, per-chunk metering — end to end.
func TestStreamedMergeOnMeteredOSBackend(t *testing.T) {
	osb, err := storage.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := storage.NewMeter(osb, storage.LocalNVMe())
	cfg := modelcfg.Tiny()
	newRun(t, m, cfg, 2, []int{5, 10}, nil)
	m.Reset()

	rec := recipe.Parity("run/checkpoint-5", "run/checkpoint-10", cfg, "merged")
	stats, err := Merge(m, rec, Options{Workers: 2, MaxInFlight: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ms := m.Stats()
	if ms.BytesWritten <= 0 || ms.FilesWritten <= 0 {
		t.Fatalf("meter saw no writes: %+v", ms)
	}
	// The meter's write count must cover what the merge claims to have
	// written (the meter also counts manifest/latest, so >=).
	if ms.BytesWritten < stats.BytesWritten {
		t.Fatalf("meter bytes %d < stats bytes %d", ms.BytesWritten, stats.BytesWritten)
	}
	if _, _, _, err := ckpt.Restore(m, "merged", tensor.BF16); err != nil {
		t.Fatal(err)
	}
}
