package tailor

import (
	"fmt"
	"math"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/parallel"
	"llmtailor/internal/recipe"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// mergeBlend executes the whole-model blend methods (linear, slerp). These
// reproduce MergeKit's model-soup style merging: weights only — the output
// carries no optimizer shards and therefore cannot resume training, the
// exact limitation the paper's §3 identifies and passthrough+tailor removes.
// Like the passthrough weights path, blending runs as a bounded pipeline:
// per-tensor blend jobs fan out over Options.Workers and a single ordered
// consumer streams the results into the output container.
func mergeBlend(b storage.Backend, r *recipe.Recipe, opts Options, stats *Stats) error {
	sources := make([]*ckpt.Checkpoint, len(r.Models))
	for i, m := range r.Models {
		c, err := ckpt.Open(b, m.Checkpoint)
		if err != nil {
			return fmt.Errorf("tailor: open blend source %s: %w", m.Checkpoint, err)
		}
		if !c.Manifest.Complete {
			return fmt.Errorf("tailor: blend source %s is a partial checkpoint", m.Checkpoint)
		}
		sources[i] = c
	}
	stats.CheckpointsUsed = len(sources)
	cfg := sources[0].Config
	for i := 1; i < len(sources); i++ {
		if err := sameArch(cfg, sources[i].Config); err != nil {
			return fmt.Errorf("tailor: blend source %s: %w", r.Models[i].Checkpoint, err)
		}
	}

	outDType := tensor.BF16
	if r.DType != "" {
		d, err := tensor.ParseDType(r.DType)
		if err != nil {
			return err
		}
		outDType = d
	}

	// Blend outputs publish under the same commit protocol as passthrough
	// merges: stage, seal with a COMMITTED marker, rename atomically.
	txn, err := ckpt.Begin(b, r.Output)
	if err != nil {
		return err
	}
	defer txn.Abort()
	out, outDir := txn.Backend(), txn.Dir()

	w, err := ckpt.NewLTSFWriter(out, outDir+"/model.ltsf", cfg.Name, opts.ChunkBytes)
	if err != nil {
		return err
	}
	defer w.Abort()

	type done struct {
		t        *tensor.Tensor
		srcBytes int64
	}
	weights := r.NormalizedWeights()
	gate := parallel.NewByteGate(opts.MaxInFlight)
	pipe := parallel.NewPipeline(opts.Workers, pipelineDepth(opts.Workers),
		func(spec modelcfg.TensorSpec) (done, error) {
			inputs := make([][]float32, len(sources))
			var srcBytes int64
			for i, src := range sources {
				t, err := src.Weights().ReadTensor(spec.Name)
				if err != nil {
					return done{}, fmt.Errorf("tailor: blend read %s from %s: %w", spec.Name, r.Models[i].Checkpoint, err)
				}
				srcBytes += t.Bytes()
				inputs[i] = t.Float32s()
			}
			var blended []float32
			if r.MergeMethod == "linear" {
				blended = linearBlend(inputs, weights)
			} else {
				blended = slerpBlend(inputs[0], inputs[1], r.T)
			}
			out := tensor.New(spec.Name, outDType, spec.Shape...)
			out.CopyFromF32(blended)
			return done{out, srcBytes}, nil
		},
		func(d done) error {
			if err := w.WriteTensor(d.t); err != nil {
				return err
			}
			stats.TensorsRead += len(sources)
			stats.BytesRead += d.srcBytes
			return nil
		})
	for _, spec := range cfg.Tensors() {
		cost := blendCost(sources, spec, outDType)
		gate.Acquire(cost)
		if err := pipe.PushWithCleanup(spec, func() { gate.Release(cost) }); err != nil {
			gate.Release(cost)
			break
		}
	}
	if err := pipe.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	stats.BytesWritten += w.BytesWritten()
	if p := gate.Peak(); p > stats.PeakInFlightBytes {
		stats.PeakInFlightBytes = p
	}

	// Configs from the first model (or configs_from); weights-only manifest.
	cfgSrc := r.ConfigsSource()
	if cfgSrc == "" {
		cfgSrc = r.Models[0].Checkpoint
	}
	for _, f := range []string{"config.json", "trainer_state.json"} {
		data, err := b.ReadFile(cfgSrc + "/" + f)
		if err != nil {
			return fmt.Errorf("tailor: blend copy %s: %w", f, err)
		}
		if err := out.WriteFile(outDir+"/"+f, data); err != nil {
			return err
		}
	}
	man := ckpt.Manifest{
		Step:     maxStep(sources),
		Strategy: r.MergeMethod + "-merge-weights-only",
		Complete: true,
	}
	for _, ref := range cfg.AllLayers() {
		man.Layers = append(man.Layers, ref.String())
	}
	if err := writeManifest(out, outDir+"/manifest.json", &man); err != nil {
		return err
	}
	return txn.Commit(man.Step)
}

// blendCost estimates a blend job's in-flight bytes: every source tensor is
// expanded to float32 for the arithmetic, plus the blended output.
func blendCost(sources []*ckpt.Checkpoint, spec modelcfg.TensorSpec, outDType tensor.DType) int64 {
	f32Bytes := spec.NumElems() * 4
	var cost int64
	for _, src := range sources {
		if n, ok := src.Weights().PayloadSize(spec.Name); ok {
			cost += n + f32Bytes // stored payload plus its float32 expansion
		} else {
			cost += f32Bytes
		}
	}
	return cost + spec.NumElems()*int64(outDType.Size())
}

func maxStep(sources []*ckpt.Checkpoint) int {
	max := 0
	for _, c := range sources {
		if c.State.Step > max {
			max = c.State.Step
		}
	}
	return max
}

// linearBlend computes the convex combination Σ w_i x_i elementwise.
func linearBlend(inputs [][]float32, weights []float64) []float32 {
	out := make([]float32, len(inputs[0]))
	for i, in := range inputs {
		w := float32(weights[i])
		for j, v := range in {
			out[j] += w * v
		}
	}
	return out
}

// slerpBlend spherically interpolates between two flat vectors at parameter
// t ∈ [0, 1], treating each tensor as a single high-dimensional direction
// (MergeKit's per-tensor SLERP). Nearly collinear or degenerate inputs fall
// back to linear interpolation.
func slerpBlend(a, b []float32, t float64) []float32 {
	na := math.Sqrt(tensor.SumSq(a))
	nb := math.Sqrt(tensor.SumSq(b))
	out := make([]float32, len(a))
	if na == 0 || nb == 0 {
		for i := range out {
			out[i] = float32((1-t)*float64(a[i]) + t*float64(b[i]))
		}
		return out
	}
	cos := tensor.Dot(a, b) / (na * nb)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	theta := math.Acos(cos)
	if theta < 1e-6 || math.Sin(theta) < 1e-6 {
		for i := range out {
			out[i] = float32((1-t)*float64(a[i]) + t*float64(b[i]))
		}
		return out
	}
	s := math.Sin(theta)
	wa := math.Sin((1-t)*theta) / s
	wb := math.Sin(t*theta) / s
	for i := range out {
		out[i] = float32(wa*float64(a[i]) + wb*float64(b[i]))
	}
	return out
}
