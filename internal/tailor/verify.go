package tailor

import (
	"fmt"
	"strings"

	"llmtailor/internal/ckpt"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
)

// VerifyReport summarises a checkpoint consistency check — the artifact's
// "confirm correctness by comparing size and file structure" task (T2
// analysis). Verify is stricter than structure comparison: it re-reads every
// tensor (CRC-checked by the format layer), confirms the tensor inventory
// matches the config, and cross-checks every optimizer shard against the
// layout geometry.
type VerifyReport struct {
	Dir string
	// Complete mirrors the manifest flag.
	Complete bool
	// WeightTensors is the number of weight tensors validated.
	WeightTensors int
	// ShardFiles is the number of optimizer shard files validated.
	ShardFiles int
	// Groups is the number of optimizer groups covered per rank.
	Groups int
	// Problems lists every inconsistency found (empty = valid).
	Problems []string
}

// OK reports whether the checkpoint passed all checks.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Describe renders the report.
func (r *VerifyReport) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify %s: %d weight tensors, %d shard files, %d groups/rank\n",
		r.Dir, r.WeightTensors, r.ShardFiles, r.Groups)
	if r.OK() {
		b.WriteString("  OK\n")
		return b.String()
	}
	for _, p := range r.Problems {
		fmt.Fprintf(&b, "  PROBLEM: %s\n", p)
	}
	return b.String()
}

// Verify checks a checkpoint directory for structural and data consistency:
//
//   - config parses and validates;
//   - every expected weight tensor of the manifest's layers is present with
//     the right shape, and its payload CRC verifies (a full read);
//   - every rank's optimizer shard file parses, covers exactly the groups of
//     the manifest's layers, agrees on world size / step / layout, and every
//     group's numel matches the layout geometry;
//   - for complete checkpoints, the whole-model group coverage is exact.
func Verify(b storage.Backend, dir string) (*VerifyReport, error) {
	rep := &VerifyReport{Dir: dir}
	c, err := ckpt.Open(b, dir)
	if err != nil {
		return nil, err
	}
	rep.Complete = c.Manifest.Complete
	cfg := c.Config

	// Layer set under verification.
	wanted := map[string]bool{}
	for _, l := range c.Manifest.Layers {
		wanted[l] = true
	}
	problem := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	// 1. Weights: presence, shape, CRC (via ReadTensor).
	for _, spec := range cfg.Tensors() {
		if !wanted[spec.Layer.String()] {
			if c.Weights().Has(spec.Name) {
				problem("weight %s present but layer %s not in manifest", spec.Name, spec.Layer)
			}
			continue
		}
		t, err := c.Weights().ReadTensor(spec.Name)
		if err != nil {
			problem("weight %s: %v", spec.Name, err)
			continue
		}
		if int64(t.Len()) != spec.NumElems() {
			problem("weight %s: %d elements, want %d", spec.Name, t.Len(), spec.NumElems())
		}
		rep.WeightTensors++
	}

	// 2. Optimizer shards.
	layoutKind, err := optim.ParseLayoutKind(c.State.Layout)
	if err != nil {
		problem("trainer state: %v", err)
		return rep, nil
	}
	var layout *optim.Layout
	if layoutKind == optim.Layerwise {
		layout = optim.NewLayerwiseLayout(cfg)
	} else {
		layout = optim.NewTwoGroupLayout(cfg)
	}
	wantGroups := map[int]optim.Group{}
	for _, g := range layout.Groups {
		if !g.HasLayer || wanted[g.Layer.String()] {
			wantGroups[g.Index] = g
		}
	}

	ws := c.WorldSize()
	if ws <= 0 {
		problem("invalid world size %d", ws)
		return rep, nil
	}
	step := -1
	for r := 0; r < ws; r++ {
		sf, err := c.ReadOptimShard(r)
		if err != nil {
			problem("rank %d: %v", r, err)
			continue
		}
		rep.ShardFiles++
		if sf.WorldSize != ws {
			problem("rank %d: world size %d != %d", r, sf.WorldSize, ws)
		}
		if sf.Rank != r {
			problem("rank %d: file claims rank %d", r, sf.Rank)
		}
		if step == -1 {
			step = sf.Step
		} else if sf.Step != step {
			problem("rank %d: step %d != %d", r, sf.Step, step)
		}
		seen := map[int]bool{}
		for i, m := range sf.Meta {
			g, ok := wantGroups[m.Index]
			if !ok {
				problem("rank %d: unexpected group %d", r, m.Index)
				continue
			}
			if seen[m.Index] {
				problem("rank %d: duplicate group %d", r, m.Index)
			}
			seen[m.Index] = true
			if m.Numel != g.Numel {
				problem("rank %d group %d: numel %d != layout %d", r, m.Index, m.Numel, g.Numel)
			}
			if sf.Shards[i].Numel() != m.ShardLen {
				problem("rank %d group %d: shard len %d != header %d", r, m.Index, sf.Shards[i].Numel(), m.ShardLen)
			}
		}
		for idx := range wantGroups {
			if !seen[idx] {
				problem("rank %d: missing group %d (%s)", r, idx, wantGroups[idx].Layer)
			}
		}
		if r == 0 {
			rep.Groups = len(seen)
		}
	}
	return rep, nil
}
