package modelcfg

// Analytic checkpoint size accounting. A full training checkpoint stores,
// per parameter (paper §2.2):
//
//   - 2 bytes  : BF16 model weight (consolidated weights file)
//   - 4 bytes  : FP32 master weight   (optimizer shard)
//   - 4 bytes  : FP32 Adam exp_avg    (optimizer shard)
//   - 4 bytes  : FP32 Adam exp_avg_sq (optimizer shard)
//
// i.e. 14 bytes/param ≈ "7× the size of the FP16/BF16 model" the paper
// quotes. Applied to the true geometries this reproduces Table 7's
// checkpoint sizes: Llama-3.1-8B → 112.4 GB (paper: 112.47 G),
// Llama-3.2-1B → 17.3 GB (paper: 17.29 G).

const (
	// WeightBytesPerParam is the BF16 weight width.
	WeightBytesPerParam = 2
	// OptimBytesPerParam covers FP32 master + exp_avg + exp_avg_sq.
	OptimBytesPerParam = 12
	// CkptBytesPerParam is the full per-parameter checkpoint footprint.
	CkptBytesPerParam = WeightBytesPerParam + OptimBytesPerParam
)

// WeightBytes returns the consolidated BF16 weights file size.
func (c *Config) WeightBytes() int64 { return c.ParamCount() * WeightBytesPerParam }

// OptimBytes returns the total optimizer state bytes across all shards.
func (c *Config) OptimBytes() int64 { return c.ParamCount() * OptimBytesPerParam }

// FullCkptBytes returns the size of one complete checkpoint.
func (c *Config) FullCkptBytes() int64 { return c.ParamCount() * CkptBytesPerParam }

// LayerCkptBytes returns the checkpoint footprint of a single mergeable
// layer (weights + optimizer state).
func (c *Config) LayerCkptBytes(ref LayerRef) int64 {
	return c.LayerParamCount(ref) * CkptBytesPerParam
}

// PartialCkptBytes returns the checkpoint footprint of a subset of layers.
func (c *Config) PartialCkptBytes(layers []LayerRef) int64 {
	var n int64
	for _, ref := range layers {
		n += c.LayerCkptBytes(ref)
	}
	return n
}

// GB converts bytes to decimal gigabytes, the unit the paper's tables use
// (e.g. 8.03e9 params × 14 B = 112.4e9 B, reported as "112.47 G").
func GB(b int64) float64 { return float64(b) / 1e9 }
