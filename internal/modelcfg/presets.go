package modelcfg

import (
	"fmt"
	"sort"
)

// Preset model geometries. These are the published architectural parameters
// of the models the paper evaluates; the analytic parameter counts they
// produce reproduce the paper's checkpoint sizes (e.g. Llama-3.1-8B at
// 14 bytes/param = 112.4 GB vs Table 7's 112.47 G).

// Llama32_1B returns the Llama-3.2-1B geometry (16 layers, tied embeddings).
func Llama32_1B() *Config {
	return &Config{
		Name:              "llama3.2-1b",
		HiddenSize:        2048,
		IntermediateSize:  8192,
		NumLayers:         16,
		NumHeads:          32,
		NumKVHeads:        8,
		VocabSize:         128256,
		TieWordEmbeddings: true,
		TorchDType:        "bfloat16",
		SeqLen:            2048,
	}
}

// Llama31_8B returns the Llama-3.1-8B geometry (32 layers, untied lm_head).
func Llama31_8B() *Config {
	return &Config{
		Name:              "llama3.1-8b",
		HiddenSize:        4096,
		IntermediateSize:  14336,
		NumLayers:         32,
		NumHeads:          32,
		NumKVHeads:        8,
		VocabSize:         128256,
		TieWordEmbeddings: false,
		TorchDType:        "bfloat16",
		SeqLen:            2048,
	}
}

// Qwen25_7B returns the Qwen-2.5-7B geometry (28 layers, QKV bias).
func Qwen25_7B() *Config {
	return &Config{
		Name:              "qwen2.5-7b",
		HiddenSize:        3584,
		IntermediateSize:  18944,
		NumLayers:         28,
		NumHeads:          28,
		NumKVHeads:        4,
		VocabSize:         152064,
		TieWordEmbeddings: false,
		AttentionBias:     true,
		TorchDType:        "bfloat16",
		SeqLen:            2048,
	}
}

// Tiny returns a minimal 4-layer model used throughout the test suite. It is
// small enough for exhaustive property tests yet exercises every structural
// feature except weight tying.
func Tiny() *Config {
	return &Config{
		Name:              "tiny",
		HiddenSize:        16,
		IntermediateSize:  32,
		NumLayers:         4,
		NumHeads:          4,
		NumKVHeads:        2,
		VocabSize:         64,
		TieWordEmbeddings: false,
		TorchDType:        "bfloat16",
		SeqLen:            128,
	}
}

// TinyTied is Tiny with weight tying enabled (no lm_head tensor), covering
// the x=2 auxiliary-layer case of the 2L+x regrouping.
func TinyTied() *Config {
	c := Tiny()
	c.Name = "tiny-tied"
	c.TieWordEmbeddings = true
	return c
}

// TinyQwen is Tiny with attention bias, covering Qwen-style extra tensors.
func TinyQwen() *Config {
	c := Tiny()
	c.Name = "tiny-qwen"
	c.AttentionBias = true
	return c
}

var presets = map[string]func() *Config{
	"llama3.2-1b": Llama32_1B,
	"llama3.1-8b": Llama31_8B,
	"qwen2.5-7b":  Qwen25_7B,
	"tiny":        Tiny,
	"tiny-tied":   TinyTied,
	"tiny-qwen":   TinyQwen,
}

// ByName looks up a preset by canonical name.
func ByName(name string) (*Config, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("modelcfg: unknown model %q (known: %v)", name, PresetNames())
	}
	return f(), nil
}

// PresetNames returns the sorted list of known preset names.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
