package modelcfg

import (
	"math"
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("gpt-5"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// The analytic parameter counts must reproduce the published model sizes —
// this is what makes the checkpoint-size tables land on the paper's numbers.
func TestParamCountsMatchPublishedModels(t *testing.T) {
	cases := []struct {
		cfg    *Config
		wantB  float64 // billions of params
		within float64
	}{
		{Llama32_1B(), 1.236, 0.01},
		{Llama31_8B(), 8.030, 0.01},
		{Qwen25_7B(), 7.616, 0.01},
	}
	for _, c := range cases {
		got := float64(c.cfg.ParamCount()) / 1e9
		if math.Abs(got-c.wantB) > c.within {
			t.Errorf("%s: param count %.3fB, want %.3fB", c.cfg.Name, got, c.wantB)
		}
	}
}

// Full-checkpoint sizes must match Table 7's "Checkpoint Size (G)" column.
func TestFullCkptBytesMatchTable7(t *testing.T) {
	cases := []struct {
		cfg  *Config
		want float64 // GB, paper value
	}{
		{Llama32_1B(), 17.29},
		{Llama31_8B(), 112.47},
	}
	for _, c := range cases {
		got := GB(c.cfg.FullCkptBytes())
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%s: full ckpt %.2f GB, want ≈%.2f GB", c.cfg.Name, got, c.want)
		}
	}
}

// Total mergeable layers must match Table 7's "Total layers" column:
// 18 for the 1B (16 blocks + norm + embed, tied) and 35 for the 8B
// (32 blocks + norm + embed + lm_head).
func TestTotalMergeableLayersMatchTable7(t *testing.T) {
	if got := Llama32_1B().TotalMergeableLayers(); got != 18 {
		t.Errorf("llama3.2-1b layers = %d, want 18", got)
	}
	if got := Llama31_8B().TotalMergeableLayers(); got != 35 {
		t.Errorf("llama3.1-8b layers = %d, want 35", got)
	}
	if got := Qwen25_7B().TotalMergeableLayers(); got != 31 {
		t.Errorf("qwen2.5-7b layers = %d, want 31", got)
	}
}

func TestTensorInventoryStructure(t *testing.T) {
	cfg := Tiny()
	specs := cfg.Tensors()
	// 4 blocks × 9 tensors + embed + norm + lm_head.
	if len(specs) != 4*9+3 {
		t.Fatalf("tiny tensor count = %d", len(specs))
	}
	if specs[0].Name != "model.embed_tokens.weight" {
		t.Errorf("first tensor = %s", specs[0].Name)
	}
	last := specs[len(specs)-1]
	if last.Name != "lm_head.weight" {
		t.Errorf("last tensor = %s", last.Name)
	}
	// Names are unique.
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate tensor %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestTiedModelHasNoLMHead(t *testing.T) {
	for _, s := range TinyTied().Tensors() {
		if s.Name == "lm_head.weight" {
			t.Fatal("tied model should not enumerate lm_head")
		}
	}
	aux := TinyTied().AuxLayers()
	if len(aux) != 2 {
		t.Fatalf("tied aux layers = %d, want 2", len(aux))
	}
}

func TestQwenBiasTensors(t *testing.T) {
	cfg := TinyQwen()
	var biases int
	for _, s := range cfg.Tensors() {
		if strings.HasSuffix(s.Name, ".bias") {
			biases++
			if !s.NoDecay {
				t.Errorf("bias %s should be NoDecay", s.Name)
			}
		}
	}
	if biases != 3*cfg.NumLayers {
		t.Errorf("bias count = %d, want %d", biases, 3*cfg.NumLayers)
	}
}

func TestDecayClassification(t *testing.T) {
	for _, s := range Tiny().Tensors() {
		isNorm := strings.Contains(s.Name, "norm")
		if isNorm && !s.NoDecay {
			t.Errorf("%s should be NoDecay", s.Name)
		}
		if !isNorm && !strings.HasSuffix(s.Name, ".bias") && s.NoDecay {
			t.Errorf("%s should have weight decay", s.Name)
		}
	}
}

func TestLayerOf(t *testing.T) {
	cfg := Tiny()
	ref, err := cfg.LayerOf("model.layers.2.mlp.up_proj.weight")
	if err != nil || ref != Block(2) {
		t.Fatalf("LayerOf = %v, %v", ref, err)
	}
	ref, err = cfg.LayerOf("model.embed_tokens.weight")
	if err != nil || ref != Embed {
		t.Fatalf("LayerOf embed = %v, %v", ref, err)
	}
	if _, err := cfg.LayerOf("nonexistent"); err == nil {
		t.Fatal("expected error")
	}
}

func TestLayerParamCounts(t *testing.T) {
	cfg := Tiny()
	var sum int64
	for _, ref := range cfg.AllLayers() {
		sum += cfg.LayerParamCount(ref)
	}
	if sum != cfg.ParamCount() {
		t.Fatalf("layer params sum %d != total %d", sum, cfg.ParamCount())
	}
}

func TestPartialCkptBytes(t *testing.T) {
	cfg := Tiny()
	all := cfg.PartialCkptBytes(cfg.AllLayers())
	if all != cfg.FullCkptBytes() {
		t.Fatalf("all-layer partial %d != full %d", all, cfg.FullCkptBytes())
	}
	half := cfg.PartialCkptBytes([]LayerRef{Block(0), Block(1)})
	if half <= 0 || half >= all {
		t.Fatalf("partial bytes out of range: %d vs %d", half, all)
	}
}

func TestScaledPreservesStructure(t *testing.T) {
	cfg := Llama31_8B()
	s := cfg.DefaultSimScale()
	if s.NumLayers != cfg.NumLayers {
		t.Fatalf("scaled layer count changed: %d", s.NumLayers)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalMergeableLayers() != cfg.TotalMergeableLayers() {
		t.Fatal("scaled mergeable layer count changed")
	}
	if s.ParamCount() >= cfg.ParamCount() {
		t.Fatal("scaled model not smaller")
	}
	if s.Name != "llama3.1-8b-sim" {
		t.Fatalf("scaled name = %s", s.Name)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Tiny()
	bad.NumHeads = 3 // 16 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Error("expected divisibility error")
	}
	bad2 := Tiny()
	bad2.VocabSize = 0
	if err := bad2.Validate(); err == nil {
		t.Error("expected vocab error")
	}
	bad3 := Tiny()
	bad3.Name = ""
	if err := bad3.Validate(); err == nil {
		t.Error("expected name error")
	}
	bad4 := Tiny()
	bad4.NumKVHeads = 3
	if err := bad4.Validate(); err == nil {
		t.Error("expected kv-head divisibility error")
	}
}

func TestLayerRefString(t *testing.T) {
	if Block(3).String() != "layer.3" {
		t.Errorf("Block(3) = %s", Block(3))
	}
	if Embed.String() != "embed_tokens" {
		t.Errorf("Embed = %s", Embed)
	}
	if FinalNorm.String() != "final_norm" {
		t.Errorf("FinalNorm = %s", FinalNorm)
	}
	if LMHead.String() != "lm_head" {
		t.Errorf("LMHead = %s", LMHead)
	}
}

func TestHeadDims(t *testing.T) {
	cfg := Llama31_8B()
	if cfg.HeadDim() != 128 {
		t.Errorf("head dim = %d", cfg.HeadDim())
	}
	if cfg.KVDim() != 1024 {
		t.Errorf("kv dim = %d", cfg.KVDim())
	}
}
