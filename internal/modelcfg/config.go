// Package modelcfg describes transformer model architectures at two levels:
//
//   - the true geometry of the models the paper evaluates (Llama-3.2-1B,
//     Llama-3.1-8B, Qwen-2.5-7B), used for analytic checkpoint-size and
//     timing arithmetic; and
//   - scaled-down geometries with identical layer structure, used to
//     materialise models in memory for the live simulation.
//
// The per-tensor enumeration here is the single source of truth for tensor
// names, shapes and weight-decay classification used by the model, optimizer
// and checkpoint packages.
package modelcfg

import "fmt"

// Config captures the architectural parameters that determine a model's
// layer-wise tensor inventory.
type Config struct {
	// Name is the canonical model identifier, e.g. "llama3.1-8b".
	Name string `json:"name"`
	// HiddenSize is the residual-stream width.
	HiddenSize int `json:"hidden_size"`
	// IntermediateSize is the FFN expansion width.
	IntermediateSize int `json:"intermediate_size"`
	// NumLayers is the number of transformer blocks.
	NumLayers int `json:"num_hidden_layers"`
	// NumHeads is the number of attention heads.
	NumHeads int `json:"num_attention_heads"`
	// NumKVHeads is the number of key/value heads (grouped-query attention).
	NumKVHeads int `json:"num_key_value_heads"`
	// VocabSize is the tokenizer vocabulary size.
	VocabSize int `json:"vocab_size"`
	// TieWordEmbeddings indicates lm_head shares storage with embed_tokens,
	// as in Llama-3.2-1B. Tied models have no separate lm_head tensor.
	TieWordEmbeddings bool `json:"tie_word_embeddings"`
	// AttentionBias indicates QKV projections carry bias vectors (Qwen2.5).
	AttentionBias bool `json:"attention_bias"`
	// TorchDType is the storage dtype of model weights ("bfloat16").
	TorchDType string `json:"torch_dtype"`
	// SeqLen is the training sequence length (paper: 2048).
	SeqLen int `json:"max_position_embeddings"`
}

// HeadDim returns the per-head dimension.
func (c *Config) HeadDim() int { return c.HiddenSize / c.NumHeads }

// KVDim returns the total key/value projection width.
func (c *Config) KVDim() int { return c.NumKVHeads * c.HeadDim() }

// Validate checks internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("modelcfg: empty name")
	case c.HiddenSize <= 0 || c.IntermediateSize <= 0 || c.NumLayers <= 0:
		return fmt.Errorf("modelcfg: %s: non-positive core dims", c.Name)
	case c.NumHeads <= 0 || c.NumKVHeads <= 0:
		return fmt.Errorf("modelcfg: %s: non-positive head counts", c.Name)
	case c.HiddenSize%c.NumHeads != 0:
		return fmt.Errorf("modelcfg: %s: hidden %d not divisible by heads %d", c.Name, c.HiddenSize, c.NumHeads)
	case c.NumHeads%c.NumKVHeads != 0:
		return fmt.Errorf("modelcfg: %s: heads %d not divisible by kv heads %d", c.Name, c.NumHeads, c.NumKVHeads)
	case c.VocabSize <= 0:
		return fmt.Errorf("modelcfg: %s: non-positive vocab", c.Name)
	}
	return nil
}

// Scaled returns a copy with matrix dimensions divided so the in-memory
// simulation stays small while layer count and structure are preserved.
// Head counts are reduced to keep divisibility; the vocabulary is capped.
// The scaled config keeps the original name with a "-sim" suffix so
// checkpoints record their provenance.
func (c *Config) Scaled(hidden, intermediate, vocab int) *Config {
	s := *c
	s.Name = c.Name + "-sim"
	s.HiddenSize = hidden
	s.IntermediateSize = intermediate
	s.VocabSize = vocab
	// Preserve the GQA ratio where possible with small head counts.
	ratio := c.NumHeads / c.NumKVHeads
	s.NumKVHeads = 1
	s.NumHeads = ratio
	if hidden%s.NumHeads != 0 {
		s.NumHeads = 1
	}
	return &s
}

// DefaultSimScale returns the standard scaled geometry used by tests,
// examples and the experiment harness: structure intact, matrices tiny.
func (c *Config) DefaultSimScale() *Config {
	return c.Scaled(64, 128, 256)
}
