package modelcfg

import "fmt"

// LayerKind distinguishes transformer blocks from the auxiliary layers the
// paper's §4.3 handles specially.
type LayerKind uint8

const (
	// KindTransformer is one of the L transformer blocks.
	KindTransformer LayerKind = iota
	// KindEmbed is the token embedding (model.embed_tokens).
	KindEmbed
	// KindFinalNorm is the final RMSNorm before the head (model.norm).
	KindFinalNorm
	// KindLMHead is the output projection (lm_head), absent when tied.
	KindLMHead
)

// String returns the layer-kind name used in recipes and manifests.
func (k LayerKind) String() string {
	switch k {
	case KindTransformer:
		return "transformer"
	case KindEmbed:
		return "embed_tokens"
	case KindFinalNorm:
		return "final_norm"
	case KindLMHead:
		return "lm_head"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// LayerRef identifies a mergeable unit: either transformer block Index (when
// Kind == KindTransformer) or one auxiliary layer.
type LayerRef struct {
	Kind  LayerKind
	Index int // transformer block index; 0 for auxiliary layers
}

// Embed, FinalNorm and LMHead are the auxiliary layer references.
var (
	Embed     = LayerRef{Kind: KindEmbed}
	FinalNorm = LayerRef{Kind: KindFinalNorm}
	LMHead    = LayerRef{Kind: KindLMHead}
)

// Block returns the reference for transformer block i.
func Block(i int) LayerRef { return LayerRef{Kind: KindTransformer, Index: i} }

// String renders "layer.3", "embed_tokens", etc.
func (r LayerRef) String() string {
	if r.Kind == KindTransformer {
		return fmt.Sprintf("layer.%d", r.Index)
	}
	return r.Kind.String()
}

// ParseLayerRef is the inverse of LayerRef.String. It accepts "layer.N",
// "embed_tokens", "final_norm" and "lm_head".
func ParseLayerRef(s string) (LayerRef, error) {
	switch s {
	case "embed_tokens":
		return Embed, nil
	case "final_norm":
		return FinalNorm, nil
	case "lm_head":
		return LMHead, nil
	}
	var idx int
	if _, err := fmt.Sscanf(s, "layer.%d", &idx); err != nil || idx < 0 || fmt.Sprintf("layer.%d", idx) != s {
		return LayerRef{}, fmt.Errorf("modelcfg: bad layer ref %q", s)
	}
	return Block(idx), nil
}

// TensorSpec describes one trainable tensor: its canonical (HuggingFace-
// style) name, shape, weight-decay classification and owning layer.
type TensorSpec struct {
	Name string
	// Shape is row-major; [out, in] for projection weights.
	Shape []int
	// NoDecay marks norm weights and biases, which AdamW exempts from
	// weight decay (paper §2.2).
	NoDecay bool
	// Layer is the mergeable unit this tensor belongs to.
	Layer LayerRef
}

// NumElems returns the element count of the spec's shape.
func (s TensorSpec) NumElems() int64 {
	n := int64(1)
	for _, d := range s.Shape {
		n *= int64(d)
	}
	return n
}

// Tensors enumerates every trainable tensor in canonical order: embedding,
// transformer blocks 0..L-1 (attention, MLP, norms), final norm, lm_head.
// This order is shared by the model container, the checkpoint writer and the
// optimizer layout, so indices computed from it are stable everywhere.
func (c *Config) Tensors() []TensorSpec {
	specs := make([]TensorSpec, 0, 9*c.NumLayers+3)
	specs = append(specs, TensorSpec{
		Name:  "model.embed_tokens.weight",
		Shape: []int{c.VocabSize, c.HiddenSize},
		Layer: Embed,
	})
	for i := 0; i < c.NumLayers; i++ {
		specs = append(specs, c.blockTensors(i)...)
	}
	specs = append(specs, TensorSpec{
		Name:    "model.norm.weight",
		Shape:   []int{c.HiddenSize},
		NoDecay: true,
		Layer:   FinalNorm,
	})
	if !c.TieWordEmbeddings {
		specs = append(specs, TensorSpec{
			Name:  "lm_head.weight",
			Shape: []int{c.VocabSize, c.HiddenSize},
			Layer: LMHead,
		})
	}
	return specs
}

func (c *Config) blockTensors(i int) []TensorSpec {
	p := func(sub string) string { return fmt.Sprintf("model.layers.%d.%s", i, sub) }
	ref := Block(i)
	h, kv, inter := c.HiddenSize, c.KVDim(), c.IntermediateSize

	specs := []TensorSpec{
		{Name: p("self_attn.q_proj.weight"), Shape: []int{h, h}, Layer: ref},
		{Name: p("self_attn.k_proj.weight"), Shape: []int{kv, h}, Layer: ref},
		{Name: p("self_attn.v_proj.weight"), Shape: []int{kv, h}, Layer: ref},
		{Name: p("self_attn.o_proj.weight"), Shape: []int{h, h}, Layer: ref},
	}
	if c.AttentionBias {
		specs = append(specs,
			TensorSpec{Name: p("self_attn.q_proj.bias"), Shape: []int{h}, NoDecay: true, Layer: ref},
			TensorSpec{Name: p("self_attn.k_proj.bias"), Shape: []int{kv}, NoDecay: true, Layer: ref},
			TensorSpec{Name: p("self_attn.v_proj.bias"), Shape: []int{kv}, NoDecay: true, Layer: ref},
		)
	}
	specs = append(specs,
		TensorSpec{Name: p("mlp.gate_proj.weight"), Shape: []int{inter, h}, Layer: ref},
		TensorSpec{Name: p("mlp.up_proj.weight"), Shape: []int{inter, h}, Layer: ref},
		TensorSpec{Name: p("mlp.down_proj.weight"), Shape: []int{h, inter}, Layer: ref},
		TensorSpec{Name: p("input_layernorm.weight"), Shape: []int{h}, NoDecay: true, Layer: ref},
		TensorSpec{Name: p("post_attention_layernorm.weight"), Shape: []int{h}, NoDecay: true, Layer: ref},
	)
	return specs
}

// ParamCount returns the total trainable parameter count.
func (c *Config) ParamCount() int64 {
	var n int64
	for _, s := range c.Tensors() {
		n += s.NumElems()
	}
	return n
}

// LayerParamCount returns the parameter count of one mergeable unit.
func (c *Config) LayerParamCount(ref LayerRef) int64 {
	var n int64
	for _, s := range c.Tensors() {
		if s.Layer == ref {
			n += s.NumElems()
		}
	}
	return n
}

// AuxLayers lists the auxiliary layers present in this model, in the group-
// layout order the paper's Figure 3 fixes: final norm, embed, lm_head.
func (c *Config) AuxLayers() []LayerRef {
	aux := []LayerRef{FinalNorm, Embed}
	if !c.TieWordEmbeddings {
		aux = append(aux, LMHead)
	}
	return aux
}

// AllLayers lists every mergeable unit: transformer blocks in order, then
// auxiliary layers.
func (c *Config) AllLayers() []LayerRef {
	all := make([]LayerRef, 0, c.NumLayers+3)
	for i := 0; i < c.NumLayers; i++ {
		all = append(all, Block(i))
	}
	return append(all, c.AuxLayers()...)
}

// TotalMergeableLayers returns the paper's "total layers" accounting: L
// transformer layers plus auxiliary layers (18 for Llama-3.2-1B, 35 for
// Llama-3.1-8B — matching Table 7's "Total layers" column).
func (c *Config) TotalMergeableLayers() int {
	return c.NumLayers + len(c.AuxLayers())
}

// LayerOf resolves a tensor name to its owning layer. It returns an error
// for names outside the canonical inventory.
func (c *Config) LayerOf(name string) (LayerRef, error) {
	for _, s := range c.Tensors() {
		if s.Name == name {
			return s.Layer, nil
		}
	}
	return LayerRef{}, fmt.Errorf("modelcfg: %s: unknown tensor %q", c.Name, name)
}
