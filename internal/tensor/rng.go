package tensor

import "math"

// RNG is a small, fast, deterministic generator (splitmix64) with a
// Box-Muller normal sampler. Each tensor initialisation derives its own RNG
// from a (seed, name) pair so results are independent of initialisation
// order — a property the trainer's resume-equivalence tests rely on.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with s.
func NewRNG(s uint64) *RNG { return &RNG{state: s} }

// NewNamedRNG derives an independent stream from a base seed and a name,
// e.g. a tensor name. The derivation is FNV-1a over the name mixed into the
// seed, so the same (seed, name) always produces the same stream.
func NewNamedRNG(seed uint64, name string) *RNG {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &RNG{state: seed ^ h}
}

// Uint64 returns the next pseudo-random 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 1e-300 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }
