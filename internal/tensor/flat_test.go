package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAxpyScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	want := []float32{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v", i, y[i])
		}
	}
	Scale(0.5, y)
	for i := range want {
		if y[i] != want[i]/2 {
			t.Fatalf("Scale[%d] = %v", i, y[i])
		}
	}
	if got := Dot(x, x); math.Abs(got-14) > 1e-9 {
		t.Fatalf("Dot = %v", got)
	}
	if got := SumSq(x); math.Abs(got-14) > 1e-9 {
		t.Fatalf("SumSq = %v", got)
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, []float32{1}, []float32{1, 2})
}

func TestFlattenUnflattenRoundtrip(t *testing.T) {
	rng := NewRNG(11)
	a := New("a", F32, 3, 2)
	b := New("b", F32, 5)
	a.FillRandN(rng, 1)
	b.FillRandN(rng, 1)
	flat := Flatten([]*Tensor{a, b})
	if len(flat) != 11 {
		t.Fatalf("flat len = %d", len(flat))
	}

	a2 := New("a", F32, 3, 2)
	b2 := New("b", F32, 5)
	if err := Unflatten(flat, []*Tensor{a2, b2}); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, a2) || !Equal(b, b2) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestUnflattenErrors(t *testing.T) {
	a := New("a", F32, 4)
	if err := Unflatten(make([]float32, 3), []*Tensor{a}); err == nil {
		t.Fatal("expected short-vector error")
	}
	if err := Unflatten(make([]float32, 5), []*Tensor{a}); err == nil {
		t.Fatal("expected trailing-elements error")
	}
}

// Property: Flatten/Unflatten round-trips arbitrary splits of a vector.
func TestFlattenQuick(t *testing.T) {
	f := func(vals []float32, split uint8) bool {
		if len(vals) < 2 {
			return true
		}
		k := 1 + int(split)%(len(vals)-1)
		a := New("a", F32, k)
		b := New("b", F32, len(vals)-k)
		copy(a.f32, vals[:k])
		copy(b.f32, vals[k:])
		flat := Flatten([]*Tensor{a, b})
		a2 := New("a", F32, k)
		b2 := New("b", F32, len(vals)-k)
		if err := Unflatten(flat, []*Tensor{a2, b2}); err != nil {
			return false
		}
		return Equal(a, a2) && Equal(b, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Unflatten into half tensors rounds to the dtype, which matters because the
// trainer writes FP32 master weights back into BF16 model tensors.
func TestUnflattenRoundsToHalf(t *testing.T) {
	h := New("h", BF16, 1)
	if err := Unflatten([]float32{1.0 / 3.0}, []*Tensor{h}); err != nil {
		t.Fatal(err)
	}
	if h.At(0) != BF16ToF32(F32ToBF16(1.0/3.0)) {
		t.Fatalf("got %v", h.At(0))
	}
}
