package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBF16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		want float32
	}{
		{0, 0},
		{1, 1},
		{-1, -1},
		{0.5, 0.5},
		{2, 2},
		{-0.25, -0.25},
		{65504, 65536}, // rounds up to next bf16
		{1.0 / 3.0, 0.33398438},
	}
	for _, c := range cases {
		got := BF16ToF32(F32ToBF16(c.in))
		if got != c.want {
			t.Errorf("BF16 roundtrip(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		in   float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7BFF},                // max finite f16
		{float32(math.Inf(1)), 0x7C00}, // +Inf
		{float32(math.Inf(-1)), 0xFC00},
		{5.960464477539063e-08, 0x0001}, // min subnormal
		{6.097555160522461e-05, 0x03FF}, // max subnormal
		{6.103515625e-05, 0x0400},       // min normal
	}
	for _, c := range cases {
		got := F32ToF16(c.in)
		if got != c.bits {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.in, got, c.bits)
		}
		back := F16ToF32(c.bits)
		if back != c.in {
			t.Errorf("F16ToF32(%#04x) = %v, want %v", c.bits, back, c.in)
		}
	}
}

func TestF16Overflow(t *testing.T) {
	if got := F32ToF16(1e9); got != 0x7C00 {
		t.Errorf("F32ToF16(1e9) = %#04x, want +Inf", got)
	}
	if got := F32ToF16(-1e9); got != 0xFC00 {
		t.Errorf("F32ToF16(-1e9) = %#04x, want -Inf", got)
	}
	if got := F32ToF16(1e-10); got != 0x0000 {
		t.Errorf("F32ToF16(1e-10) = %#04x, want +0", got)
	}
}

func TestF16NaN(t *testing.T) {
	n := F32ToF16(float32(math.NaN()))
	if n&0x7C00 != 0x7C00 || n&0x03FF == 0 {
		t.Errorf("F32ToF16(NaN) = %#04x is not a NaN", n)
	}
	back := F16ToF32(n)
	if !math.IsNaN(float64(back)) {
		t.Errorf("F16ToF32(NaN bits) = %v, want NaN", back)
	}
}

func TestBF16NaN(t *testing.T) {
	n := F32ToBF16(float32(math.NaN()))
	f := BF16ToF32(n)
	if !math.IsNaN(float64(f)) {
		t.Errorf("BF16 NaN roundtrip = %v, want NaN", f)
	}
}

// Property: every representable bf16 value round-trips exactly through f32.
func TestBF16ExactRoundtripAll(t *testing.T) {
	for u := 0; u <= 0xFFFF; u++ {
		h := uint16(u)
		f := BF16ToF32(h)
		if math.IsNaN(float64(f)) {
			continue // NaN payloads may be quietened
		}
		if got := F32ToBF16(f); got != h {
			t.Fatalf("bf16 %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

// Property: every representable f16 value round-trips exactly through f32.
func TestF16ExactRoundtripAll(t *testing.T) {
	for u := 0; u <= 0xFFFF; u++ {
		h := uint16(u)
		f := F16ToF32(h)
		if math.IsNaN(float64(f)) {
			continue
		}
		if got := F32ToF16(f); got != h {
			t.Fatalf("f16 %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

// Property: conversion error of f32 -> bf16 is bounded by half a ULP of the
// 8-bit mantissa (relative error <= 2^-8 for normal values).
func TestBF16RelativeErrorBound(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if v != 0 && math.Abs(float64(v)) < 1e-30 {
			return true // near-subnormal range, absolute error dominates
		}
		got := BF16ToF32(F32ToBF16(v))
		if math.IsInf(float64(got), 0) {
			// Overflowed to Inf: only allowed very near f32 max.
			return math.Abs(float64(v)) > 3.3e38
		}
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got)-float64(v)) / math.Abs(float64(v))
		return rel <= 1.0/256.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// Property: f16 conversion is monotonic on a dense sample of the
// representable range.
func TestF16Monotonic(t *testing.T) {
	prev := F16ToF32(0xFBFF) // most negative finite
	for u := 0x0000; u <= 0x7BFF; u++ {
		f := F16ToF32(uint16(u))
		if u > 0 && f <= prev {
			t.Fatalf("f16 not monotonic at %#04x: %v <= %v", u, f, prev)
		}
		prev = f
	}
}

// Property: rounding is to nearest — the roundtripped value is never further
// from the input than the neighbouring representable value.
func TestF16NearestRounding(t *testing.T) {
	f := func(v float32) bool {
		av := math.Abs(float64(v))
		if math.IsNaN(float64(v)) || av > 65504 || (av != 0 && av < 6.0e-8) {
			return true
		}
		h := F32ToF16(v)
		got := F16ToF32(h)
		// The error must be at most the gap to the next representable value.
		up := F16ToF32(h + 1)
		gap := math.Abs(float64(up) - float64(got))
		if gap == 0 || math.IsInf(float64(up), 0) {
			return true
		}
		return math.Abs(float64(got)-float64(v)) <= gap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeDispatch(t *testing.T) {
	if got := DecodeF32(F16, EncodeF32(F16, 1.5)); got != 1.5 {
		t.Errorf("f16 dispatch roundtrip = %v", got)
	}
	if got := DecodeF32(BF16, EncodeF32(BF16, 1.5)); got != 1.5 {
		t.Errorf("bf16 dispatch roundtrip = %v", got)
	}
}

func BenchmarkF32ToBF16(b *testing.B) {
	v := float32(1.2345)
	for i := 0; i < b.N; i++ {
		v = BF16ToF32(F32ToBF16(v))
	}
	_ = v
}

func BenchmarkF32ToF16(b *testing.B) {
	v := float32(1.2345)
	for i := 0; i < b.N; i++ {
		v = F16ToF32(F32ToF16(v))
	}
	_ = v
}
