package tensor

import "fmt"

// Flat vector helpers operating on []float32. The optimizer keeps its master
// weights and Adam moments as flat FP32 vectors (one per parameter group),
// matching the flattened layout of DeepSpeed optimizer files that makes
// layer-level splitting hard — the core problem §4.1 of the paper solves.

// Axpy computes y += a*x elementwise. Lengths must match.
func Axpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies every element of x by a.
func Scale(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Dot returns the float64 dot product of x and y.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}

// SumSq returns the float64 sum of squares of x.
func SumSq(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}

// Flatten concatenates the FP32 views of the given tensors into one flat
// vector, in order. This is how parameter groups are laid out on disk.
func Flatten(ts []*Tensor) []float32 {
	n := 0
	for _, t := range ts {
		n += t.Len()
	}
	out := make([]float32, 0, n)
	for _, t := range ts {
		out = append(out, t.Float32s()...)
	}
	return out
}

// Unflatten scatters a flat vector back into the given tensors, in order,
// rounding to each tensor's dtype. It returns an error if the total length
// does not match.
func Unflatten(flat []float32, ts []*Tensor) error {
	off := 0
	for _, t := range ts {
		n := t.Len()
		if off+n > len(flat) {
			return fmt.Errorf("tensor: unflatten: flat vector too short at %s (have %d, need %d)", t.Name, len(flat), off+n)
		}
		t.CopyFromF32(flat[off : off+n])
		off += n
	}
	if off != len(flat) {
		return fmt.Errorf("tensor: unflatten: %d trailing elements", len(flat)-off)
	}
	return nil
}
