package tensor

import "math"

// Half-precision conversion routines. These are bit-exact software
// implementations: F32<->BF16 uses round-to-nearest-even truncation of the
// upper 16 bits; F32<->F16 implements the full IEEE-754 binary16 conversion
// including subnormals, infinities and NaN payload preservation (quietened).

// F32ToBF16 converts a float32 to bfloat16 with round-to-nearest-even.
func F32ToBF16(f float32) uint16 {
	bits := math.Float32bits(f)
	if f != f { // NaN: preserve a quiet NaN, keep top mantissa bits
		return uint16(bits>>16) | 0x0040
	}
	// Round to nearest even on bit 16.
	rounding := uint32(0x7FFF) + (bits>>16)&1
	return uint16((bits + rounding) >> 16)
}

// BF16ToF32 converts a bfloat16 to float32 (exact).
func BF16ToF32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// F32ToF16 converts a float32 to IEEE-754 binary16 with round-to-nearest-even.
func F32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF

	switch {
	case bits&0x7FFFFFFF > 0x7F800000: // NaN
		return sign | 0x7E00 | uint16(mant>>13) | uint16(b2u(mant>>13 == 0))
	case exp >= 0x1F: // overflow or Inf -> Inf
		return sign | 0x7C00
	case exp <= 0: // subnormal or underflow
		if exp < -10 {
			return sign // rounds to zero
		}
		// Add implicit leading 1, shift into subnormal position.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round to nearest even.
		if mant&(half<<1-1) == half && rounded>>shift&1 == 1 && mant&(half-1) == 0 {
			rounded -= 1 << shift
		}
		return sign | uint16(rounded>>shift)
	default:
		// Normal: round mantissa from 23 to 10 bits, nearest-even.
		h := uint32(exp)<<10 | mant>>13
		rem := mant & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && h&1 == 1) {
			h++ // may carry into exponent; that is correct (e.g. rounds to Inf)
		}
		return sign | uint16(h)
	}
}

// F16ToF32 converts an IEEE-754 binary16 to float32 (exact).
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		return math.Float32frombits(sign | 0x7F800000 | mant<<13) // Inf/NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// EncodeF32 converts v to the in-memory representation of dtype d. For F32
// the value round-trips exactly; for half types it is rounded.
func EncodeF32(d DType, v float32) uint16 {
	switch d {
	case F16:
		return F32ToF16(v)
	case BF16:
		return F32ToBF16(v)
	default:
		panic("tensor: EncodeF32 on non-half dtype")
	}
}

// DecodeF32 converts a stored half-precision value back to float32.
func DecodeF32(d DType, u uint16) float32 {
	switch d {
	case F16:
		return F16ToF32(u)
	case BF16:
		return BF16ToF32(u)
	default:
		panic("tensor: DecodeF32 on non-half dtype")
	}
}
