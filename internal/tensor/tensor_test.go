package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	if F32.Size() != 4 || F16.Size() != 2 || BF16.Size() != 2 {
		t.Fatalf("dtype sizes wrong: %d %d %d", F32.Size(), F16.Size(), BF16.Size())
	}
}

func TestParseDType(t *testing.T) {
	for _, d := range []DType{F32, F16, BF16} {
		got, err := ParseDType(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDType(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDType("int8"); err == nil {
		t.Error("ParseDType(int8) should fail")
	}
	for in, want := range map[string]DType{"fp16": F16, "bf16": BF16, "fp32": F32, "half": F16} {
		got, err := ParseDType(in)
		if err != nil || got != want {
			t.Errorf("ParseDType(%q) = %v, %v", in, got, err)
		}
	}
}

func TestNewAndAccessors(t *testing.T) {
	ts := New("w", F32, 3, 4)
	if ts.Len() != 12 || ts.Bytes() != 48 {
		t.Fatalf("len=%d bytes=%d", ts.Len(), ts.Bytes())
	}
	ts.Set(5, 2.5)
	if ts.At(5) != 2.5 {
		t.Fatalf("At(5) = %v", ts.At(5))
	}

	th := New("h", BF16, 2, 2)
	if th.Bytes() != 8 {
		t.Fatalf("bf16 bytes = %d", th.Bytes())
	}
	th.Set(0, 1.5)
	if th.At(0) != 1.5 {
		t.Fatalf("bf16 At = %v", th.At(0))
	}
}

func TestNumElemsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dim")
		}
	}()
	NumElems([]int{3, 0})
}

func TestCloneIndependence(t *testing.T) {
	a := New("a", F32, 4)
	a.Fill(1)
	b := a.Clone("b")
	b.Set(0, 9)
	if a.At(0) != 1 {
		t.Fatal("clone shares storage")
	}
	if b.Name != "b" {
		t.Fatalf("clone name = %q", b.Name)
	}
	c := a.Clone("")
	if c.Name != "a" {
		t.Fatalf("clone default name = %q", c.Name)
	}
}

func TestConvert(t *testing.T) {
	a := New("a", F32, 8)
	rng := NewRNG(7)
	a.FillRandN(rng, 1)
	h := a.Convert(BF16)
	if h.DType != BF16 || h.Len() != 8 {
		t.Fatal("convert metadata wrong")
	}
	for i := 0; i < 8; i++ {
		want := BF16ToF32(F32ToBF16(a.At(i)))
		if h.At(i) != want {
			t.Fatalf("convert[%d] = %v, want %v", i, h.At(i), want)
		}
	}
	back := h.Convert(F32)
	if back.DType != F32 {
		t.Fatal("convert back dtype")
	}
}

func TestCopyFromF32RoundsToDtype(t *testing.T) {
	h := New("h", BF16, 2)
	h.CopyFromF32([]float32{1.0 / 3.0, 2})
	if h.At(0) != BF16ToF32(F32ToBF16(1.0/3.0)) {
		t.Fatalf("copy did not round: %v", h.At(0))
	}
}

func TestEncodeDecodeRoundtripF32(t *testing.T) {
	a := New("a", F32, 17)
	a.FillRandN(NewRNG(3), 2)
	buf := a.Encode(nil)
	b := New("a", F32, 17)
	if err := b.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("f32 roundtrip mismatch")
	}
}

func TestEncodeDecodeRoundtripHalf(t *testing.T) {
	for _, d := range []DType{F16, BF16} {
		a := New("a", d, 9)
		a.FillRandN(NewRNG(4), 0.5)
		buf := a.Encode(nil)
		if int64(len(buf)) != a.Bytes() {
			t.Fatalf("%s encode length %d", d, len(buf))
		}
		b := New("a", d, 9)
		if err := b.Decode(buf); err != nil {
			t.Fatal(err)
		}
		if !Equal(a, b) {
			t.Fatalf("%s roundtrip mismatch", d)
		}
	}
}

func TestDecodeLengthMismatch(t *testing.T) {
	a := New("a", F32, 4)
	if err := a.Decode(make([]byte, 15)); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestChecksumDetectsChange(t *testing.T) {
	a := New("a", F32, 32)
	a.FillRandN(NewRNG(5), 1)
	c1 := a.Checksum()
	a.Set(7, a.At(7)+1)
	if a.Checksum() == c1 {
		t.Fatal("checksum did not change")
	}
}

func TestEqual(t *testing.T) {
	a := New("a", F32, 2, 3)
	b := New("a", F32, 2, 3)
	if !Equal(a, b) {
		t.Fatal("zero tensors should be equal")
	}
	b.Set(0, 1)
	if Equal(a, b) {
		t.Fatal("different data should differ")
	}
	c := New("c", F32, 2, 3)
	if Equal(a, c) {
		t.Fatal("different names should differ")
	}
	d := New("a", F32, 3, 2)
	if Equal(a, d) {
		t.Fatal("different shapes should differ")
	}
	e := New("a", BF16, 2, 3)
	if Equal(a, e) {
		t.Fatal("different dtypes should differ")
	}
}

func TestL2(t *testing.T) {
	a := New("a", F32, 3)
	b := New("b", F32, 3)
	a.CopyFromF32([]float32{3, 0, 0})
	b.CopyFromF32([]float32{0, 4, 0})
	if got := L2Dist(a, b); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Dist = %v", got)
	}
	if got := a.L2Norm(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("L2Norm = %v", got)
	}
}

// Property: Encode/Decode round-trips arbitrary payload bit patterns.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		a := New("q", F32, len(vals))
		copy(a.f32, vals)
		b := New("q", F32, len(vals))
		if err := b.Decode(a.Encode(nil)); err != nil {
			return false
		}
		for i := range vals {
			if math.Float32bits(a.f32[i]) != math.Float32bits(b.f32[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNamedRNGDeterminism(t *testing.T) {
	a := NewNamedRNG(42, "model.layers.0.self_attn.q_proj.weight")
	b := NewNamedRNG(42, "model.layers.0.self_attn.q_proj.weight")
	c := NewNamedRNG(42, "model.layers.1.self_attn.q_proj.weight")
	for i := 0; i < 100; i++ {
		av, bv := a.Uint64(), b.Uint64()
		if av != bv {
			t.Fatal("same (seed, name) diverged")
		}
		if av == c.Uint64() && i > 3 {
			t.Fatal("different names should produce different streams")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(99)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}
