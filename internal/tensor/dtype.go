// Package tensor provides the numeric substrate for the LLMTailor
// reproduction: densely stored tensors in FP32, FP16 and BF16, bit-exact
// conversions between them, deterministic random number generation, and the
// small set of vector operations the simulated trainer and merge engine need.
//
// Design notes:
//   - FP32 data is held as []float32; FP16 and BF16 are held as []uint16 with
//     explicit conversion helpers. This mirrors the storage widths that drive
//     all checkpoint size arithmetic in the paper (2 bytes for half-precision
//     weights, 4 bytes for FP32 master weights and Adam moments).
//   - Everything is deterministic under a seed; no package-level mutable
//     state.
package tensor

import "fmt"

// DType identifies the element type of a Tensor.
type DType uint8

const (
	// F32 is IEEE-754 binary32.
	F32 DType = iota
	// F16 is IEEE-754 binary16.
	F16
	// BF16 is bfloat16 (truncated binary32).
	BF16
)

// Size returns the element width in bytes.
func (d DType) Size() int {
	switch d {
	case F32:
		return 4
	case F16, BF16:
		return 2
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", d))
	}
}

// String returns the canonical lowercase name used in checkpoint headers.
func (d DType) String() string {
	switch d {
	case F32:
		return "float32"
	case F16:
		return "float16"
	case BF16:
		return "bfloat16"
	default:
		return fmt.Sprintf("dtype(%d)", d)
	}
}

// ParseDType converts a checkpoint-header name back into a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32", "fp32", "f32":
		return F32, nil
	case "float16", "fp16", "f16", "half":
		return F16, nil
	case "bfloat16", "bf16":
		return BF16, nil
	default:
		return 0, fmt.Errorf("tensor: unknown dtype %q", s)
	}
}
