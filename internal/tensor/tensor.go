package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Tensor is a named, dense, row-major tensor. FP32 data lives in f32;
// half-precision data (F16/BF16) lives in u16. Exactly one backing slice is
// non-nil.
type Tensor struct {
	Name  string
	Shape []int
	DType DType

	f32 []float32
	u16 []uint16
}

// New allocates a zero-filled tensor.
func New(name string, dtype DType, shape ...int) *Tensor {
	n := NumElems(shape)
	t := &Tensor{Name: name, Shape: append([]int(nil), shape...), DType: dtype}
	if dtype == F32 {
		t.f32 = make([]float32, n)
	} else {
		t.u16 = make([]uint16, n)
	}
	return t
}

// NumElems returns the element count of a shape. Empty shapes denote scalars
// and count as one element; any non-positive dimension panics.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	if t.DType == F32 {
		return len(t.f32)
	}
	return len(t.u16)
}

// Bytes returns the serialized payload size in bytes.
func (t *Tensor) Bytes() int64 { return int64(t.Len()) * int64(t.DType.Size()) }

// At returns element i as float32 regardless of dtype.
func (t *Tensor) At(i int) float32 {
	if t.DType == F32 {
		return t.f32[i]
	}
	return DecodeF32(t.DType, t.u16[i])
}

// Set stores v at element i, rounding to the tensor's dtype.
func (t *Tensor) Set(i int, v float32) {
	if t.DType == F32 {
		t.f32[i] = v
		return
	}
	t.u16[i] = EncodeF32(t.DType, v)
}

// F32Data returns the FP32 backing slice. It panics for half tensors; use
// Float32s for a dtype-agnostic copy.
func (t *Tensor) F32Data() []float32 {
	if t.DType != F32 {
		panic(fmt.Sprintf("tensor: F32Data on %s tensor %s", t.DType, t.Name))
	}
	return t.f32
}

// U16Data returns the raw half-precision backing slice. It panics for FP32
// tensors.
func (t *Tensor) U16Data() []uint16 {
	if t.DType == F32 {
		panic(fmt.Sprintf("tensor: U16Data on float32 tensor %s", t.Name))
	}
	return t.u16
}

// Float32s returns a freshly allocated FP32 copy of the data.
func (t *Tensor) Float32s() []float32 {
	out := make([]float32, t.Len())
	if t.DType == F32 {
		copy(out, t.f32)
		return out
	}
	for i, u := range t.u16 {
		out[i] = DecodeF32(t.DType, u)
	}
	return out
}

// CopyFromF32 overwrites the tensor contents from an FP32 slice, rounding to
// the tensor's dtype. Lengths must match.
func (t *Tensor) CopyFromF32(src []float32) {
	if len(src) != t.Len() {
		panic(fmt.Sprintf("tensor: CopyFromF32 length %d != %d for %s", len(src), t.Len(), t.Name))
	}
	if t.DType == F32 {
		copy(t.f32, src)
		return
	}
	for i, v := range src {
		t.u16[i] = EncodeF32(t.DType, v)
	}
}

// Clone returns a deep copy, optionally renamed (empty name keeps the old).
func (t *Tensor) Clone(name string) *Tensor {
	if name == "" {
		name = t.Name
	}
	c := &Tensor{Name: name, Shape: append([]int(nil), t.Shape...), DType: t.DType}
	if t.DType == F32 {
		c.f32 = append([]float32(nil), t.f32...)
	} else {
		c.u16 = append([]uint16(nil), t.u16...)
	}
	return c
}

// Convert returns a copy of the tensor in the given dtype (rounding values
// as needed). Converting to the same dtype is a plain clone.
func (t *Tensor) Convert(d DType) *Tensor {
	if d == t.DType {
		return t.Clone("")
	}
	c := New(t.Name, d, t.Shape...)
	for i := 0; i < t.Len(); i++ {
		c.Set(i, t.At(i))
	}
	return c
}

// FillRandN fills the tensor with N(0, std) values from rng.
func (t *Tensor) FillRandN(rng *RNG, std float64) {
	for i := 0; i < t.Len(); i++ {
		t.Set(i, float32(rng.NormFloat64()*std))
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := 0; i < t.Len(); i++ {
		t.Set(i, v)
	}
}

// L2Dist returns the Euclidean distance between two tensors of equal length,
// computed in float64.
func L2Dist(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("tensor: L2Dist length mismatch %d vs %d (%s, %s)", a.Len(), b.Len(), a.Name, b.Name))
	}
	var s float64
	for i := 0; i < a.Len(); i++ {
		d := float64(a.At(i)) - float64(b.At(i))
		s += d * d
	}
	return math.Sqrt(s)
}

// L2Norm returns the Euclidean norm of the tensor in float64.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for i := 0; i < t.Len(); i++ {
		v := float64(t.At(i))
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether two tensors have identical name, shape, dtype and
// bit-identical contents.
func Equal(a, b *Tensor) bool {
	if a.Name != b.Name || a.DType != b.DType || len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	if a.DType == F32 {
		for i := range a.f32 {
			if math.Float32bits(a.f32[i]) != math.Float32bits(b.f32[i]) {
				return false
			}
		}
		return true
	}
	for i := range a.u16 {
		if a.u16[i] != b.u16[i] {
			return false
		}
	}
	return true
}

// Encode appends the little-endian serialisation of the tensor payload to
// dst and returns the extended slice.
func (t *Tensor) Encode(dst []byte) []byte {
	if t.DType == F32 {
		for _, v := range t.f32 {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
		return dst
	}
	for _, u := range t.u16 {
		dst = binary.LittleEndian.AppendUint16(dst, u)
	}
	return dst
}

// EncodeTo streams the little-endian serialisation of the tensor payload to
// w in chunks of at most len(buf) bytes, so a tensor can be written without
// materialising its full encoding. buf must hold at least one element; a nil
// or undersized buf gets a small local buffer. Returns the bytes written.
func (t *Tensor) EncodeTo(w io.Writer, buf []byte) (int64, error) {
	elem := t.DType.Size()
	if len(buf) < elem {
		buf = make([]byte, 4096)
	}
	perChunk := len(buf) / elem
	var total int64
	for base := 0; base < t.Len(); base += perChunk {
		end := base + perChunk
		if end > t.Len() {
			end = t.Len()
		}
		chunk := buf[:(end-base)*elem]
		if t.DType == F32 {
			for i := base; i < end; i++ {
				binary.LittleEndian.PutUint32(chunk[(i-base)*4:], math.Float32bits(t.f32[i]))
			}
		} else {
			for i := base; i < end; i++ {
				binary.LittleEndian.PutUint16(chunk[(i-base)*2:], t.u16[i])
			}
		}
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("tensor: encode %s: %w", t.Name, err)
		}
	}
	return total, nil
}

// Decode fills the tensor from a little-endian payload produced by Encode.
// The payload length must match Bytes exactly.
func (t *Tensor) Decode(src []byte) error {
	if int64(len(src)) != t.Bytes() {
		return fmt.Errorf("tensor: decode %s: payload %d bytes, want %d", t.Name, len(src), t.Bytes())
	}
	if t.DType == F32 {
		for i := range t.f32 {
			t.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		}
		return nil
	}
	for i := range t.u16 {
		t.u16[i] = binary.LittleEndian.Uint16(src[i*2:])
	}
	return nil
}

// Checksum returns the CRC32 (IEEE) of the serialised payload. Checkpoint
// headers store this so readers can detect corruption.
func (t *Tensor) Checksum() uint32 {
	return crc32.ChecksumIEEE(t.Encode(make([]byte, 0, t.Bytes())))
}

// ShapeEqual reports whether two shapes are identical.
func ShapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
