package tensor

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestPlaneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, width := range []int{1, 2, 4, 12} {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 64, 65, 4096, 4097} {
			src := make([]byte, n)
			rng.Read(src)
			split := make([]byte, n)
			SplitPlanes(split, src, width)
			sum := 0
			for p := 0; p < width; p++ {
				sum += PlaneLen(n, width, p)
			}
			if sum != n {
				t.Fatalf("width=%d n=%d: plane lengths sum to %d", width, n, sum)
			}
			join := make([]byte, n)
			JoinPlanes(join, split, width)
			if !bytes.Equal(join, src) {
				t.Fatalf("width=%d n=%d: join(split(x)) != x", width, n)
			}
		}
	}
}

func TestPlaneGroupsBytes(t *testing.T) {
	// Two-byte elements with a constant high byte: the second plane must be
	// one solid run.
	src := make([]byte, 64)
	for i := 0; i < len(src); i += 2 {
		src[i] = byte(i)
		src[i+1] = 0x3f
	}
	split := make([]byte, len(src))
	SplitPlanes(split, src, 2)
	for _, b := range split[32:] {
		if b != 0x3f {
			t.Fatalf("high plane not contiguous: %x", split)
		}
	}
}

func TestXORBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 7, 8, 9, 1023} {
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		d := make([]byte, n)
		XORBytes(d, a, b)
		back := make([]byte, n)
		XORBytes(back, d, b)
		if !bytes.Equal(back, a) {
			t.Fatalf("n=%d: xor not involutive", n)
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]byte{
		nil,
		{0},
		bytes.Repeat([]byte{0}, 1000),
		bytes.Repeat([]byte{0xab}, 3), // below the repeat threshold
		[]byte("abcabcabc"),
	}
	noise := make([]byte, 2048)
	rng.Read(noise)
	cases = append(cases, noise)
	sparse := make([]byte, 4096)
	for i := 0; i < len(sparse); i += 97 {
		sparse[i] = byte(i)
	}
	cases = append(cases, sparse)
	for i, src := range cases {
		enc := AppendRLE(nil, src)
		dst := make([]byte, len(src))
		if err := DecodeRLE(dst, enc); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("case %d: roundtrip mismatch", i)
		}
	}
	// The sparse delta-like case is the one that must actually compress.
	if enc := AppendRLE(nil, sparse); len(enc)*3 > len(sparse) {
		t.Fatalf("sparse input encoded to %d of %d bytes", len(enc), len(sparse))
	}
}

func TestRLEDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"zero run":          {0x00},
		"zero repeat":       {0x01, 0xff},
		"truncated varint":  {0x80},
		"truncated literal": {0x08, 0x01}, // 4-byte literal, 1 byte present
		"truncated repeat":  {0x09},
		"run past output":   {0xff, 0x01, 0xaa}, // repeat 127 into 8 bytes
		"short stream":      {0x02, 0xaa},       // 1 literal byte, 8 expected
	}
	for name, src := range cases {
		dst := make([]byte, 8)
		if err := DecodeRLE(dst, src); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// Exact fill must still succeed.
	if err := DecodeRLE(make([]byte, 4), []byte{0x09, 0xaa}); err != nil {
		t.Fatalf("valid repeat rejected: %v", err)
	}
}
