package tensor

import (
	"encoding/binary"
	"errors"
)

// Byte-plane kernels for the blob compression codec. A tensor payload is a
// sequence of fixed-width little-endian elements; splitting it into per-byte
// planes groups the sign/exponent bytes (near-constant between adjacent
// checkpoints, and near-zero after XOR against the parent generation) away
// from the noisy mantissa bytes, so a simple run-length coder gets the
// several-fold wins the incremental-snapshots literature reports.
//
// Plane p of an n-byte buffer holds the bytes at indices i with i%width == p,
// in order. Buffers whose length is not a multiple of width are still valid:
// plane p simply holds PlaneLen(n, width, p) bytes. Split and Join are exact
// inverses for every (n, width).

// PlaneLen returns the length of plane p for an n-byte buffer of width-byte
// elements.
func PlaneLen(n, width, p int) int {
	if width <= 1 {
		if p == 0 {
			return n
		}
		return 0
	}
	if p >= n {
		return 0
	}
	return (n - p + width - 1) / width
}

// SplitPlanes rearranges src into plane-major order in dst. dst must be
// exactly len(src) bytes.
func SplitPlanes(dst, src []byte, width int) {
	if len(dst) != len(src) {
		panic("tensor: SplitPlanes length mismatch")
	}
	if width <= 1 {
		copy(dst, src)
		return
	}
	k := 0
	for p := 0; p < width; p++ {
		for i := p; i < len(src); i += width {
			dst[k] = src[i]
			k++
		}
	}
}

// JoinPlanes is the inverse of SplitPlanes: src is plane-major, dst receives
// the original element-interleaved bytes. dst must be exactly len(src) bytes.
func JoinPlanes(dst, src []byte, width int) {
	if len(dst) != len(src) {
		panic("tensor: JoinPlanes length mismatch")
	}
	if width <= 1 {
		copy(dst, src)
		return
	}
	k := 0
	for p := 0; p < width; p++ {
		for i := p; i < len(dst); i += width {
			dst[i] = src[k]
			k++
		}
	}
}

// XORBytes writes a XOR b into dst. All three slices must be the same
// length; dst may alias a or b.
func XORBytes(dst, a, b []byte) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: XORBytes length mismatch")
	}
	i := 0
	// 8-byte lanes cover the bulk; the tail is handled byte-wise.
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// The RLE stream is a sequence of ops. Each op starts with a uvarint v
// (v>>1 is the run length n, which must be > 0): bit0 == 0 is a literal run
// (the next n stream bytes are copied verbatim), bit0 == 1 is a repeat run
// (the next single stream byte appears n times). The decoder knows the
// exact output length, so the stream carries no trailer.

// rleRepeatMin is the shortest run worth a repeat op: a repeat costs up to
// 3 bytes (uvarint + value) and breaking a literal adds another header.
const rleRepeatMin = 4

var (
	errRLEVarint    = errors.New("rle: malformed varint")
	errRLEZeroRun   = errors.New("rle: zero-length run")
	errRLEOverflow  = errors.New("rle: run overflows output")
	errRLETruncated = errors.New("rle: truncated stream")
	errRLEShort     = errors.New("rle: stream ends before output is full")
)

// AppendRLE appends the RLE encoding of src to dst and returns the extended
// slice. Encoding never fails; callers compare len(out) against len(src) to
// decide whether coding paid.
func AppendRLE(dst, src []byte) []byte {
	litStart := 0
	i := 0
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		if run := j - i; run >= rleRepeatMin {
			if i > litStart {
				dst = binary.AppendUvarint(dst, uint64(i-litStart)<<1)
				dst = append(dst, src[litStart:i]...)
			}
			dst = binary.AppendUvarint(dst, uint64(run)<<1|1)
			dst = append(dst, src[i])
			litStart = j
		}
		i = j
	}
	if litStart < len(src) {
		dst = binary.AppendUvarint(dst, uint64(len(src)-litStart)<<1)
		dst = append(dst, src[litStart:]...)
	}
	return dst
}

// DecodeRLE decodes src into dst, which must be exactly the expected output
// length. Every malformed input — bad varint, zero-length op, runs past the
// output, truncated literals or repeats, short streams — returns an error;
// the decoder never panics and never writes outside dst.
func DecodeRLE(dst, src []byte) error {
	di, si := 0, 0
	for si < len(src) {
		v, n := binary.Uvarint(src[si:])
		if n <= 0 {
			return errRLEVarint
		}
		si += n
		cnt64 := v >> 1
		if cnt64 == 0 {
			return errRLEZeroRun
		}
		if cnt64 > uint64(len(dst)-di) {
			return errRLEOverflow
		}
		cnt := int(cnt64)
		if v&1 == 1 {
			if si >= len(src) {
				return errRLETruncated
			}
			b := src[si]
			si++
			for k := 0; k < cnt; k++ {
				dst[di+k] = b
			}
		} else {
			if cnt > len(src)-si {
				return errRLETruncated
			}
			copy(dst[di:di+cnt], src[si:])
			si += cnt
		}
		di += cnt
	}
	if di != len(dst) {
		return errRLEShort
	}
	return nil
}
