package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// DefaultChunkBytes is the chunk size streaming callers use when they do not
// specify one. 256 KiB keeps per-stream buffers negligible next to tensor
// payloads while amortising per-call overhead.
const DefaultChunkBytes = 256 * 1024

// ChunkOrDefault normalises a chunk-size knob: non-positive means default.
func ChunkOrDefault(n int) int {
	if n <= 0 {
		return DefaultChunkBytes
	}
	return n
}

// CopyFile streams an entire file from one backend to another in chunkBytes
// chunks without interpreting a single byte — the shard-file raw-copy
// primitive. Both sides are charged by their own instrumentation exactly
// like any other stream. Returns the number of bytes copied.
func CopyFile(dst Backend, dstName string, src Backend, srcName string, chunkBytes int) (int64, error) {
	size, err := src.Stat(srcName)
	if err != nil {
		return 0, err
	}
	r, err := src.OpenRange(srcName, 0, size)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	w, err := dst.Create(dstName)
	if err != nil {
		return 0, err
	}
	n, err := io.CopyBuffer(w, r, make([]byte, ChunkOrDefault(chunkBytes)))
	if err != nil {
		w.Close()
		return n, fmt.Errorf("storage: copy %s -> %s: %w", srcName, dstName, err)
	}
	if err := w.Close(); err != nil {
		return n, fmt.Errorf("storage: copy %s -> %s: close: %w", srcName, dstName, err)
	}
	if n != size {
		return n, fmt.Errorf("storage: copy %s -> %s: copied %d of %d bytes", srcName, dstName, n, size)
	}
	return n, nil
}

// Spool is unmetered scratch space for staging a container payload whose
// header (offsets, CRCs) is only known once the payload has been produced.
// Write the payload, then call Reader exactly once to stream it back out;
// Discard releases resources and is safe to call at any point (including
// after Reader's Close).
type Spool interface {
	io.Writer
	// Len returns the number of bytes written so far.
	Len() int64
	// Reader finishes the write side and streams the spooled bytes back.
	// Closing the reader releases the spool.
	Reader() (io.ReadCloser, error)
	// Discard drops the spool without reading it. Idempotent.
	Discard() error
}

// spooler is implemented by backends that can provide out-of-memory scratch
// space (the OS backend spools to a temp file so assembling a container never
// holds the payload in memory).
type spooler interface {
	NewSpool() (Spool, error)
}

// spoolGrower is optionally implemented by spools that can reserve
// capacity ahead of the writes that fill it.
type spoolGrower interface {
	Grow(n int64)
}

// GrowSpool reserves capacity for n further bytes when the spool supports
// it. Advisory: file-backed spools ignore it, and writes beyond the
// reservation still succeed. Writers that know a payload's total size
// upfront use this to replace repeated grow-and-move reallocation with a
// single exact allocation.
func GrowSpool(s Spool, n int64) {
	if g, ok := s.(spoolGrower); ok && n > 0 {
		g.Grow(n)
	}
}

// NewSpool returns scratch space appropriate for the backend: file-backed for
// OS-rooted backends (and meters over them), in-memory otherwise. Spools are
// implementation scratch — they are never charged to a Meter.
func NewSpool(b Backend) (Spool, error) {
	if s, ok := b.(spooler); ok {
		return s.NewSpool()
	}
	return &memSpool{}, nil
}

// memSpool buffers the payload in memory (the Mem backend would hold the
// bytes in memory anyway). Plain append growth: the spare capacity of a
// pointer-free slice is never zeroed, so spooling a large container costs
// one move per byte instead of bytes.Buffer's zero-then-copy doubling.
type memSpool struct {
	data []byte
}

func (s *memSpool) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

// Grow reserves capacity for n further bytes (see GrowSpool).
func (s *memSpool) Grow(n int64) {
	if need := int64(len(s.data)) + n; need > int64(cap(s.data)) {
		nd := make([]byte, len(s.data), need)
		copy(nd, s.data)
		s.data = nd
	}
}

func (s *memSpool) Len() int64     { return int64(len(s.data)) }
func (s *memSpool) Discard() error { s.data = nil; return nil }

func (s *memSpool) Reader() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(s.data)), nil
}

// fileSpool spools to an unlinked-on-close temp file outside the backend
// root, so payload staging is bounded-memory and never visible to List.
type fileSpool struct {
	f    *os.File
	n    int64
	done bool
}

func newFileSpool() (Spool, error) {
	f, err := os.CreateTemp("", "llmtailor-spool-*")
	if err != nil {
		return nil, fmt.Errorf("storage: create spool: %w", err)
	}
	return &fileSpool{f: f}, nil
}

func (s *fileSpool) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	s.n += int64(n)
	return n, err
}

func (s *fileSpool) Len() int64 { return s.n }

func (s *fileSpool) Reader() (io.ReadCloser, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("storage: rewind spool: %w", err)
	}
	return spoolReader{s}, nil
}

func (s *fileSpool) Discard() error {
	if s.done {
		return nil
	}
	s.done = true
	name := s.f.Name()
	s.f.Close()
	return os.Remove(name)
}

// spoolReader reads the spooled bytes back and removes the file on Close.
type spoolReader struct{ s *fileSpool }

func (r spoolReader) Read(p []byte) (int, error) { return r.s.f.Read(p) }
func (r spoolReader) Close() error               { return r.s.Discard() }
