package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestObjStoreCreateIsAtomic(t *testing.T) {
	s := NewObjStore()
	w, err := s.Create("a/blob")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if s.Exists("a/blob") {
		t.Fatalf("object visible before Close — PUT must be atomic")
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := s.ReadFile("a/blob")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}

func TestObjStoreCompose(t *testing.T) {
	s := NewObjStore()
	for i, part := range []string{"aa", "bbb", "c"} {
		if err := s.WriteFile(fmt.Sprintf("p/part-%d", i), []byte(part)); err != nil {
			t.Fatalf("put part: %v", err)
		}
	}
	if !ComposeSupported(s) {
		t.Fatalf("ComposeSupported(ObjStore) = false")
	}
	if err := Compose(s, "p/all", "p/part-0", "p/part-1", "p/part-2"); err != nil {
		t.Fatalf("Compose: %v", err)
	}
	data, err := s.ReadFile("p/all")
	if err != nil || string(data) != "aabbbc" {
		t.Fatalf("composed = %q, %v; want aabbbc", data, err)
	}
	for i := 0; i < 3; i++ {
		if s.Exists(fmt.Sprintf("p/part-%d", i)) {
			t.Fatalf("part %d survived Compose", i)
		}
	}
}

func TestObjStoreComposeMissingPartLeavesEverythingUnchanged(t *testing.T) {
	s := NewObjStore()
	if err := s.WriteFile("p/part-0", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := Compose(s, "p/all", "p/part-0", "p/part-1"); err == nil {
		t.Fatalf("Compose with a missing part succeeded")
	}
	if s.Exists("p/all") {
		t.Fatalf("failed Compose published dst")
	}
	if !s.Exists("p/part-0") {
		t.Fatalf("failed Compose consumed a part")
	}
}

func TestObjStoreComposeUnsupportedOnMem(t *testing.T) {
	if ComposeSupported(NewMem()) {
		t.Fatalf("ComposeSupported(Mem) = true")
	}
	if err := Compose(NewMem(), "x", "y"); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("Compose on Mem: %v, want ErrNotSupported", err)
	}
}

func TestObjStoreFlakeEvery(t *testing.T) {
	s := NewObjStore()
	s.SetFlakeEvery(3)
	var transients int
	for i := 0; i < 9; i++ {
		err := s.WriteFile(fmt.Sprintf("k%d", i), []byte("v"))
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("flake error %v is not IsTransient", err)
			}
			if s.Exists(fmt.Sprintf("k%d", i)) {
				t.Fatalf("flaked PUT %d mutated the store", i)
			}
			transients++
		}
	}
	if transients != 3 {
		t.Fatalf("flake every 3rd: %d of 9 PUTs failed, want 3", transients)
	}
}

// TestObjStoreListDelimiter pins the flat namespace's delimiter-style
// listing: common prefixes synthesize directory entries.
func TestObjStoreListDelimiter(t *testing.T) {
	s := NewObjStore()
	for _, k := range []string{"run/ckpt-1/model", "run/ckpt-1/opt", "run/ckpt-2/model", "run/latest"} {
		if err := s.WriteFile(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("run")
	if err != nil {
		t.Fatalf("List(run): %v", err)
	}
	want := "ckpt-1/,ckpt-2/,latest"
	if strings.Join(got, ",") != want {
		t.Fatalf("List(run) = %v, want %s", got, want)
	}
}

func TestMultipartPutRoundTrips(t *testing.T) {
	s := NewObjStore()
	payload := make([]byte, 1<<20+3379)
	rand.New(rand.NewSource(7)).Read(payload)
	opts := MultipartOptions{PartBytes: 64 << 10, Workers: 4, PartPrefix: "stage/mp-"}
	if err := MultipartPut(s, "objects/big", bytes.NewReader(payload), int64(len(payload)), opts); err != nil {
		t.Fatalf("MultipartPut: %v", err)
	}
	got, err := s.ReadFile("objects/big")
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("multipart round-trip corrupted payload (%d vs %d bytes)", len(got), len(payload))
	}
	if s.Exists("stage") {
		t.Fatalf("part residue survived a successful multipart put")
	}
}

func TestMultipartPutSerialFallback(t *testing.T) {
	// One part's worth of payload — and a compose-less backend — both take
	// the serial path.
	for _, b := range []Backend{NewObjStore(), NewMem()} {
		payload := []byte("small payload")
		if err := MultipartPut(b, "x/blob", bytes.NewReader(payload), int64(len(payload)), MultipartOptions{}); err != nil {
			t.Fatalf("serial fallback: %v", err)
		}
		got, err := b.ReadFile("x/blob")
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("read back = %q, %v", got, err)
		}
	}
}

func TestMultipartPutFailureCleansParts(t *testing.T) {
	s := NewObjStore()
	s.SetFlakeEvery(3) // some part PUTs will fail; no retry layer here
	payload := make([]byte, 512<<10)
	opts := MultipartOptions{PartBytes: 32 << 10, Workers: 4, PartPrefix: "stage/mp-"}
	err := MultipartPut(s, "objects/big", bytes.NewReader(payload), int64(len(payload)), opts)
	if err == nil {
		t.Fatalf("MultipartPut succeeded despite flaking part uploads")
	}
	if !IsTransient(err) {
		t.Fatalf("error %v does not preserve the transient cause", err)
	}
	s.SetFlakeEvery(0)
	if s.Exists("objects/big") {
		t.Fatalf("failed multipart published dst")
	}
	if s.Exists("stage") {
		t.Fatalf("failed multipart left part residue behind")
	}
}

// TestMultipartPutRetryComposable proves the standard stack — Retry over
// the flaky store — turns part-level transients into a successful put.
func TestMultipartPutRetryComposable(t *testing.T) {
	obj := NewObjStore()
	obj.SetFlakeEvery(4)
	r := NewRetry(obj, 1)
	r.Sleep = func(time.Duration) {}
	payload := make([]byte, 512<<10)
	rand.New(rand.NewSource(11)).Read(payload)
	opts := MultipartOptions{PartBytes: 32 << 10, Workers: 4, PartPrefix: "stage/mp-"}
	if err := MultipartPut(r, "objects/big", bytes.NewReader(payload), int64(len(payload)), opts); err != nil {
		t.Fatalf("MultipartPut over Retry: %v", err)
	}
	got, err := r.ReadFile("objects/big")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round-trip failed: %v", err)
	}
	if r.Retries() == 0 {
		t.Fatalf("flake every 4th PUT caused zero retries")
	}
}

func TestObjStoreRemovePrefix(t *testing.T) {
	s := NewObjStore()
	for _, k := range []string{"d/a", "d/sub/b", "e/c"} {
		if err := s.WriteFile(k, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove("d"); err != nil {
		t.Fatalf("Remove(d): %v", err)
	}
	if s.Exists("d") || s.Exists("d/a") || s.Exists("d/sub/b") {
		t.Fatalf("prefix delete left keys behind")
	}
	if !s.Exists("e/c") {
		t.Fatalf("prefix delete overreached")
	}
}
