// Checkpoint-hub attachment plumbing: one shared CAS serving many runs.
//
// A hub is a directory holding a `hub.json` marker, a `runs/` registry (one
// small JSON file per attached run — per-run files, so attach and detach
// never race a read-modify-write over a shared document) and one `objects/`
// blob store (flat or sharded, exactly as a run-local store would be). A
// run root attaches by dropping a `hubref.json` redirect into its own
// `objects/` directory; from then on OpenCAS and OpenRefIndex follow the
// redirect, so every existing save, GC, scan and reshard path resolves the
// shared store without knowing hubs exist. The run keeps its checkpoint
// directories and latest pointer; only blobs and its ref journal move — the
// journal lands namespaced under `<hub>/objects/refs/<run-id>/`, so each
// run's generation counter and record files stay private while the blobs
// dedup globally.
//
// Indirection is one level deep by construction: a hub's objects root must
// not itself carry a hubref.json, and OpenCAS rejects such a chain rather
// than following it — a cycle of redirects should be a loud config error,
// never a hang or a surprise store.
package storage

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

const (
	// HubConfigName marks a directory as a hub root.
	HubConfigName = "hub.json"
	// HubRefName is the redirect file inside an attached run's objects dir.
	HubRefName = "hubref.json"
	// HubRunsDirName holds the per-run registry files under a hub root.
	HubRunsDirName = "runs"
	// HubObjectsDirName is the shared store's directory under a hub root.
	HubObjectsDirName = "objects"
)

// HubConfig is the hub.json marker payload.
type HubConfig struct {
	Version int `json:"version"`
}

// HubRef is the hubref.json redirect inside an attached run's objects
// directory: where the shared store lives and which registry identity the
// run journals under.
type HubRef struct {
	Version int    `json:"version"`
	Hub     string `json:"hub"`
	Run     string `json:"run"`
}

// HubRun is one runs/<id>.json registry entry: the attached run's identity
// and its run root (checkpoint directories, latest pointer).
type HubRun struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Root    string `json:"root"`
}

// HubObjectsRoot returns a hub's shared store root.
func HubObjectsRoot(hubRoot string) string {
	hubRoot = strings.TrimSuffix(hubRoot, "/")
	if hubRoot == "" {
		return HubObjectsDirName
	}
	return hubRoot + "/" + HubObjectsDirName
}

// hubRunPath returns the registry file of one attached run.
func hubRunPath(hubRoot, id string) string {
	return strings.TrimSuffix(hubRoot, "/") + "/" + HubRunsDirName + "/" + id + ".json"
}

// ValidHubRunID reports whether an identity can name a run under a hub: it
// becomes both a registry file name and a refs/<id>/ namespace directory,
// so it is restricted to a conservative path-segment alphabet.
func ValidHubRunID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// IsHub reports whether root carries a hub.json marker.
func IsHub(b Backend, root string) bool {
	return b.Exists(strings.TrimSuffix(root, "/") + "/" + HubConfigName)
}

// WriteHubConfig marks root as a hub (idempotent).
func WriteHubConfig(b Backend, hubRoot string) error {
	data, err := json.Marshal(HubConfig{Version: 1})
	if err != nil {
		return err
	}
	return b.WriteFile(strings.TrimSuffix(hubRoot, "/")+"/"+HubConfigName, data)
}

// ReadHubConfig reads and validates a hub marker.
func ReadHubConfig(b Backend, hubRoot string) (*HubConfig, error) {
	p := strings.TrimSuffix(hubRoot, "/") + "/" + HubConfigName
	data, err := b.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("storage: read %s: %w", p, err)
	}
	var cfg HubConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("storage: parse %s: %w", p, err)
	}
	if cfg.Version != 1 {
		return nil, fmt.Errorf("storage: %s: unsupported hub version %d", p, cfg.Version)
	}
	return &cfg, nil
}

// ReadHubRef reads the redirect inside an objects root. An absent file
// returns (nil, nil) — the root is an ordinary local store. An unreadable
// or malformed file is an error: silently treating a corrupt attachment as
// "unattached" would point savers and sweeps at an empty local store while
// the run's blobs live at the hub.
func ReadHubRef(b Backend, objectsRoot string) (*HubRef, error) {
	p := strings.TrimSuffix(objectsRoot, "/") + "/" + HubRefName
	data, err := b.ReadFile(p)
	if err != nil {
		if IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: read %s: %w", p, err)
	}
	var ref HubRef
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, fmt.Errorf("storage: parse %s: %w", p, err)
	}
	if ref.Version != 1 || !ValidHubRunID(ref.Run) {
		return nil, fmt.Errorf("storage: %s: invalid hub attachment %+v", p, ref)
	}
	return &ref, nil
}

// WriteHubRef publishes the redirect inside an objects root.
func WriteHubRef(b Backend, objectsRoot string, ref *HubRef) error {
	if !ValidHubRunID(ref.Run) {
		return fmt.Errorf("storage: invalid hub run id %q", ref.Run)
	}
	data, err := json.Marshal(ref)
	if err != nil {
		return err
	}
	return b.WriteFile(strings.TrimSuffix(objectsRoot, "/")+"/"+HubRefName, data)
}

// RemoveHubRef deletes the redirect (detach). Removing an absent redirect
// is a no-op so detach converges under crash-and-retry.
func RemoveHubRef(b Backend, objectsRoot string) error {
	p := strings.TrimSuffix(objectsRoot, "/") + "/" + HubRefName
	if !b.Exists(p) {
		return nil
	}
	return b.Remove(p)
}

// WriteHubRun publishes one run's registry entry under the hub.
func WriteHubRun(b Backend, hubRoot string, run *HubRun) error {
	if !ValidHubRunID(run.ID) {
		return fmt.Errorf("storage: invalid hub run id %q", run.ID)
	}
	data, err := json.Marshal(run)
	if err != nil {
		return err
	}
	return b.WriteFile(hubRunPath(hubRoot, run.ID), data)
}

// ReadHubRun reads one run's registry entry ((nil, nil) when absent).
func ReadHubRun(b Backend, hubRoot, id string) (*HubRun, error) {
	p := hubRunPath(hubRoot, id)
	data, err := b.ReadFile(p)
	if err != nil {
		if IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: read %s: %w", p, err)
	}
	var run HubRun
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("storage: parse %s: %w", p, err)
	}
	if run.Version != 1 || run.ID != id {
		return nil, fmt.Errorf("storage: %s: invalid registry entry %+v", p, run)
	}
	return &run, nil
}

// RemoveHubRun deletes one run's registry entry (no-op when absent).
func RemoveHubRun(b Backend, hubRoot, id string) error {
	p := hubRunPath(hubRoot, id)
	if !b.Exists(p) {
		return nil
	}
	return b.Remove(p)
}

// ListHubRuns returns every attached run's registry entry, sorted by ID.
// A malformed entry is an error, not a skip: a sweep that cannot see every
// attached run must not run at all — under-pinning is the one unforgivable
// failure in a shared store.
func ListHubRuns(b Backend, hubRoot string) ([]HubRun, error) {
	dir := strings.TrimSuffix(hubRoot, "/") + "/" + HubRunsDirName
	if !b.Exists(dir) {
		return nil, nil
	}
	names, err := b.List(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list hub registry %s: %w", dir, err)
	}
	var out []HubRun
	for _, n := range names {
		if strings.HasSuffix(n, "/") || !strings.HasSuffix(n, ".json") {
			continue
		}
		run, err := ReadHubRun(b, hubRoot, strings.TrimSuffix(n, ".json"))
		if err != nil {
			return nil, err
		}
		if run != nil {
			out = append(out, *run)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
