package storage

import (
	"strings"
	"testing"
)

// attach wires runRoot's objects dir to hubRoot's shared store without
// going through the higher-level hub package (which lives above storage).
func attach(t *testing.T, b Backend, hubRoot, runRoot, id string) {
	t.Helper()
	if err := WriteHubConfig(b, hubRoot); err != nil {
		t.Fatal(err)
	}
	if err := WriteHubRun(b, hubRoot, &HubRun{Version: 1, ID: id, Root: runRoot}); err != nil {
		t.Fatal(err)
	}
	if err := WriteHubRef(b, runRoot+"/objects", &HubRef{Version: 1, Hub: hubRoot, Run: id}); err != nil {
		t.Fatal(err)
	}
}

// TestHubConfigRoundTrip: init is recognisable and versions are checked.
func TestHubConfigRoundTrip(t *testing.T) {
	b := NewMem()
	if IsHub(b, "hub") {
		t.Fatal("uninitialised root claims to be a hub")
	}
	if err := WriteHubConfig(b, "hub"); err != nil {
		t.Fatal(err)
	}
	if !IsHub(b, "hub") {
		t.Fatal("initialised hub not recognised")
	}
	if _, err := ReadHubConfig(b, "hub"); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile("hub/"+HubConfigName, []byte(`{"version":99}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHubConfig(b, "hub"); err == nil {
		t.Fatal("future hub version accepted")
	}
}

// TestHubRunsRegistry: per-run entries round-trip, list sorts, malformed
// entries are loud errors (a skipped entry would under-pin a shared sweep).
func TestHubRunsRegistry(t *testing.T) {
	b := NewMem()
	if err := WriteHubConfig(b, "hub"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []HubRun{{Version: 1, ID: "zeta", Root: "roots/z"}, {Version: 1, ID: "alpha", Root: "roots/a"}} {
		if err := WriteHubRun(b, "hub", &r); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := ListHubRuns(b, "hub")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].ID != "alpha" || runs[1].ID != "zeta" {
		t.Fatalf("runs = %+v", runs)
	}
	got, err := ReadHubRun(b, "hub", "alpha")
	if err != nil || got.Root != "roots/a" {
		t.Fatalf("ReadHubRun = %+v, %v", got, err)
	}
	if err := RemoveHubRun(b, "hub", "zeta"); err != nil {
		t.Fatal(err)
	}
	if runs, _ = ListHubRuns(b, "hub"); len(runs) != 1 {
		t.Fatalf("after remove: %+v", runs)
	}
	if err := b.WriteFile("hub/runs/bad.json", []byte("{")); err != nil {
		t.Fatal(err)
	}
	if _, err := ListHubRuns(b, "hub"); err == nil {
		t.Fatal("malformed registry entry silently skipped")
	}
}

// TestHubRefAbsentVsCorrupt: missing hubref means unattached (nil, nil);
// an unreadable one must error rather than silently detaching the run.
func TestHubRefAbsentVsCorrupt(t *testing.T) {
	b := NewMem()
	ref, err := ReadHubRef(b, "run/objects")
	if err != nil || ref != nil {
		t.Fatalf("absent hubref: %+v, %v", ref, err)
	}
	if err := b.WriteFile("run/objects/"+HubRefName, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHubRef(b, "run/objects"); err == nil {
		t.Fatal("corrupt hubref treated as unattached")
	}
}

// TestOpenCASFollowsHubRef: an attached run's store resolves to the hub's
// shared objects root, including its shard layout.
func TestOpenCASFollowsHubRef(t *testing.T) {
	b := NewMem()
	attach(t, b, "hub", "runs/a", "a")
	if err := InitShards(b, HubObjectsRoot("hub"), 4); err != nil {
		t.Fatal(err)
	}
	store, err := OpenCAS(b, "runs/a/objects")
	if err != nil {
		t.Fatal(err)
	}
	if store.Root() != HubObjectsRoot("hub") {
		t.Fatalf("store root = %s", store.Root())
	}
	ss, ok := store.(*ShardedStore)
	if !ok || ss.Shards() != 4 {
		t.Fatalf("hub shard layout not honoured: %T", store)
	}
	digest, _, err := store.PutBytes([]byte("shared payload"))
	if err != nil {
		t.Fatal(err)
	}
	// A second attached run sees the same blob through its own objects dir.
	attach(t, b, "hub", "runs/b", "b")
	other, err := OpenCAS(b, "runs/b/objects")
	if err != nil {
		t.Fatal(err)
	}
	if !other.Has(digest) {
		t.Fatal("cross-run blob not visible through second run's store")
	}
}

// TestOpenCASRejectsChainedHubs: a hub whose own store is attached
// elsewhere is a configuration error, not a second hop.
func TestOpenCASRejectsChainedHubs(t *testing.T) {
	b := NewMem()
	attach(t, b, "hub", "runs/a", "a")
	if err := WriteHubRef(b, HubObjectsRoot("hub"), &HubRef{Version: 1, Hub: "other", Run: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCAS(b, "runs/a/objects"); err == nil || !strings.Contains(err.Error(), "chained") {
		t.Fatalf("chained hub accepted: %v", err)
	}
}

// TestOpenCASCorruptHubRef: a broken attachment must fail loudly — falling
// back to the (empty) local store would re-upload and then sweep wrongly.
func TestOpenCASCorruptHubRef(t *testing.T) {
	b := NewMem()
	if err := b.WriteFile("run/objects/"+HubRefName, []byte(`{"version":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCAS(b, "run/objects"); err == nil {
		t.Fatal("corrupt hubref did not fail OpenCAS")
	}
}

// TestOpenRefIndexNamespacing: an attached run journals under the hub's
// refs/<run-id>/ namespace; an unattached run keeps the flat refs dir.
func TestOpenRefIndexNamespacing(t *testing.T) {
	b := NewMem()
	ix, err := OpenRefIndex(b, "solo/objects")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Namespace() != "" || ix.Dir() != "solo/objects/refs" {
		t.Fatalf("unattached: ns=%q dir=%s", ix.Namespace(), ix.Dir())
	}

	attach(t, b, "hub", "runs/a", "runa")
	ix, err = OpenRefIndex(b, "runs/a/objects")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Namespace() != "runa" {
		t.Fatalf("namespace = %q", ix.Namespace())
	}
	want := HubObjectsRoot("hub") + "/refs/runa"
	if ix.Dir() != want {
		t.Fatalf("dir = %s, want %s", ix.Dir(), want)
	}
	gen, err := ix.NextGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Append(&RefRecord{Generation: gen, Key: "checkpoint-10",
		Digests: []string{strings.Repeat("ab", 32)}}); err != nil {
		t.Fatal(err)
	}
	entries, _, _, err := ix.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != "checkpoint-10" {
		t.Fatalf("entries = %+v", entries)
	}

	// A second run's namespace is disjoint: it sees none of runa's records.
	attach(t, b, "hub", "runs/b", "runb")
	other, err := OpenRefIndex(b, "runs/b/objects")
	if err != nil {
		t.Fatal(err)
	}
	entries, _, _, err = other.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("runb sees runa's records: %+v", entries)
	}
}

// TestHubRunIDValidation mirrors ref-key validation (IDs become path
// segments under refs/).
func TestHubRunIDValidation(t *testing.T) {
	for _, ok := range []string{"runa", "run-1", "a_b.c"} {
		if !ValidHubRunID(ok) {
			t.Errorf("rejected valid id %q", ok)
		}
	}
	for _, bad := range []string{"", "a/b", "a b", "..", strings.Repeat("x", 300)} {
		if ValidHubRunID(bad) {
			t.Errorf("accepted invalid id %q", bad)
		}
	}
}
