package storage

import (
	"errors"
	"io"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

// conformanceBackend is one backend under the cross-backend suite.
type conformanceBackend struct {
	name string
	b    Backend
	// flat marks object-store semantics: directories exist only while a
	// key lives under them, so an emptied directory reads as missing.
	flat bool
}

// conformanceBackends builds every Backend implementation (bare and
// wrapped) over a fresh store. The wrappers matter: Meter and Fault must
// not change List/Exists/Stat/Remove semantics, and the suite is what
// pins that.
func conformanceBackends(t *testing.T) []conformanceBackend {
	t.Helper()
	osb, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatalf("NewOS: %v", err)
	}
	lat := objstoreTestLatency()
	obj := NewObjStore()
	obj.SetLatency(lat, 0)
	wrappedObj := NewObjStore()
	wrappedObj.SetLatency(lat, 0)
	retry := NewRetry(wrappedObj, 1)
	retry.Sleep = func(time.Duration) {}
	return []conformanceBackend{
		{name: "os", b: osb},
		{name: "mem", b: NewMem()},
		{name: "meter", b: NewMeter(NewMem(), LocalNVMe())},
		{name: "fault", b: NewFault(NewMem())},
		{name: "objstore", b: obj, flat: true},
		{name: "retry+meter+objstore", b: retry, flat: true},
	}
}

// objstoreTestLatency reads the CI lane's injected latency (OBJSTORE_LAT_US
// microseconds per operation); zero outside the lane.
func objstoreTestLatency() time.Duration {
	us := 0
	for _, c := range os.Getenv("OBJSTORE_LAT_US") {
		if c < '0' || c > '9' {
			return 0
		}
		us = us*10 + int(c-'0')
	}
	return time.Duration(us) * time.Microsecond
}

func writeAll(t *testing.T, b Backend, name, content string) {
	t.Helper()
	if err := b.WriteFile(name, []byte(content)); err != nil {
		t.Fatalf("WriteFile(%s): %v", name, err)
	}
}

// TestBackendConformance runs every backend through the same
// List/Exists/Stat/Remove matrix: missing paths, empty directories,
// nested directories, and file-vs-directory confusion. The assertions are
// the cross-backend contract Repair and the commit protocol rely on.
func TestBackendConformance(t *testing.T) {
	for _, cb := range conformanceBackends(t) {
		cb := cb
		t.Run(cb.name, func(t *testing.T) {
			b := cb.b

			// -- Missing paths -------------------------------------------------
			if b.Exists("nope") {
				t.Fatalf("Exists(nope) = true on empty store")
			}
			if _, err := b.Stat("nope"); err == nil {
				t.Fatalf("Stat(nope) succeeded")
			} else if !IsNotExist(err) {
				t.Fatalf("Stat(nope): error %v not IsNotExist", err)
			}
			if _, err := b.List("nope"); err == nil {
				t.Fatalf("List(nope) succeeded")
			} else if !IsNotExist(err) {
				t.Fatalf("List(nope): error %v not IsNotExist", err)
			}
			if _, err := b.ReadFile("nope"); err == nil || !IsNotExist(err) {
				t.Fatalf("ReadFile(nope): want IsNotExist, got %v", err)
			}
			// Remove of a missing path is idempotent cleanup on every
			// backend — Repair's best-effort deletions depend on it.
			if err := b.Remove("nope"); err != nil {
				t.Fatalf("Remove(nope): %v", err)
			}
			if err := b.Remove("no/such/nested/path"); err != nil {
				t.Fatalf("Remove(nested missing): %v", err)
			}

			// -- Root ----------------------------------------------------------
			if !b.Exists("") {
				t.Fatalf(`Exists("") = false; the root always exists`)
			}

			// -- Nested content ------------------------------------------------
			writeAll(t, b, "a/b/c.txt", "ccc")
			writeAll(t, b, "a/d.txt", "dd")
			for _, p := range []string{"a", "a/b", "a/b/c.txt", "a/d.txt"} {
				if !b.Exists(p) {
					t.Fatalf("Exists(%s) = false after writes", p)
				}
			}
			got, err := b.List("a")
			if err != nil {
				t.Fatalf("List(a): %v", err)
			}
			want := []string{"b/", "d.txt"}
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("List(a) = %v, want %v", got, want)
			}
			if !sort.StringsAreSorted(got) {
				t.Fatalf("List(a) not sorted: %v", got)
			}
			if n, err := b.Stat("a/d.txt"); err != nil || n != 2 {
				t.Fatalf("Stat(a/d.txt) = %d, %v; want 2, nil", n, err)
			}

			// -- File-vs-directory ---------------------------------------------
			// Stat names a FILE's size; a directory path must error rather
			// than answer with filesystem metadata.
			if _, err := b.Stat("a/b"); err == nil {
				t.Fatalf("Stat(a/b) succeeded on a directory")
			}
			// Listing a file path is an error everywhere (not-a-directory
			// on hierarchical backends, nothing-under-prefix on flat ones).
			if _, err := b.List("a/d.txt"); err == nil {
				t.Fatalf("List(a/d.txt) succeeded on a file")
			}
			// Reading a directory path must not hand back bytes.
			if _, err := b.ReadFile("a/b"); err == nil {
				t.Fatalf("ReadFile(a/b) succeeded on a directory")
			}

			// -- Empty-but-existing directories --------------------------------
			if err := b.Remove("a/b/c.txt"); err != nil {
				t.Fatalf("Remove(a/b/c.txt): %v", err)
			}
			if cb.flat {
				// Flat namespace: the directory existed only through its
				// key, so it vanishes with it.
				if b.Exists("a/b") {
					t.Fatalf("flat Exists(a/b) = true after removing its only key")
				}
				if _, err := b.List("a/b"); err == nil || !IsNotExist(err) {
					t.Fatalf("flat List(a/b): want IsNotExist, got %v", err)
				}
			} else {
				// Hierarchical: the emptied directory remains, listing as
				// empty — the Mem regression this suite pins.
				if !b.Exists("a/b") {
					t.Fatalf("Exists(a/b) = false after emptying the directory")
				}
				entries, err := b.List("a/b")
				if err != nil {
					t.Fatalf("List(a/b) on emptied directory: %v", err)
				}
				if len(entries) != 0 {
					t.Fatalf("List(a/b) = %v, want empty", entries)
				}
				// And the emptied directory shows in the parent listing.
				got, err := b.List("a")
				if err != nil {
					t.Fatalf("List(a): %v", err)
				}
				want := []string{"b/", "d.txt"}
				if strings.Join(got, ",") != strings.Join(want, ",") {
					t.Fatalf("List(a) = %v, want %v", got, want)
				}
			}

			// -- Directory-tree removal ----------------------------------------
			if err := b.Remove("a"); err != nil {
				t.Fatalf("Remove(a): %v", err)
			}
			for _, p := range []string{"a", "a/b", "a/d.txt"} {
				if b.Exists(p) {
					t.Fatalf("Exists(%s) = true after Remove(a)", p)
				}
			}
			if _, err := b.List("a"); err == nil || !IsNotExist(err) {
				t.Fatalf("List(a) after removal: want IsNotExist, got %v", err)
			}

			// -- Streams and ranges keep file semantics ------------------------
			w, err := b.Create("s/stream.bin")
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			if _, err := w.Write([]byte("0123456789")); err != nil {
				t.Fatalf("stream write: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("stream close: %v", err)
			}
			rc, err := b.OpenRange("s/stream.bin", 2, 5)
			if err != nil {
				t.Fatalf("OpenRange: %v", err)
			}
			part, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || string(part) != "23456" {
				t.Fatalf("OpenRange read = %q, %v", part, err)
			}
			if _, err := b.OpenRange("s/stream.bin", 8, 5); err == nil {
				t.Fatalf("OpenRange past EOF succeeded")
			}
			p := make([]byte, 4)
			if err := b.ReadAt("s/stream.bin", 6, p); err != nil || string(p) != "6789" {
				t.Fatalf("ReadAt = %q, %v", p, err)
			}
			// Removing a path "under" a file is a no-op everywhere, like
			// any other missing path — this is where OS (ENOTDIR from
			// RemoveAll) historically diverged from Mem's silent nil.
			if err := b.Remove("s/stream.bin/child"); err != nil {
				t.Fatalf("Remove(under a file): %v", err)
			}
			if _, err := b.Stat("s/stream.bin"); err != nil {
				t.Fatalf("file damaged by Remove(under a file): %v", err)
			}
		})
	}
}

// TestRenameSupportedProbe pins the capability probe: every filesystem
// backend (and wrapper over one) renames; ObjStore (and wrappers over it)
// do not, and Rename surfaces ErrNotSupported there.
func TestRenameSupportedProbe(t *testing.T) {
	for _, cb := range conformanceBackends(t) {
		if got := RenameSupported(cb.b); got == cb.flat {
			t.Fatalf("%s: RenameSupported = %v, want %v", cb.name, got, !cb.flat)
		}
		if cb.flat {
			writeAll(t, cb.b, "x", "1")
			if err := cb.b.Rename("x", "y"); !errors.Is(err, ErrNotSupported) {
				t.Fatalf("%s: Rename err = %v, want ErrNotSupported", cb.name, err)
			}
		}
	}
}
