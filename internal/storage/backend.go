// Package storage abstracts the filesystem under checkpoints and adds the
// two things the reproduction needs that a plain filesystem lacks:
//
//   - instrumentation (bytes and files read/written), so experiments can
//     report exact I/O volumes; and
//   - a simulated clock driven by a parallel-filesystem performance profile,
//     so timing tables can be produced for the paper's true checkpoint sizes
//     (hundreds of GB) while the live system moves only scaled-down bytes.
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Backend is the minimal filesystem surface the checkpoint and merge code
// uses. Paths are slash-separated and relative to the backend root.
type Backend interface {
	// WriteFile creates or replaces a file with the given contents,
	// creating parent directories as needed.
	WriteFile(name string, data []byte) error
	// ReadFile returns the full contents of a file.
	ReadFile(name string) ([]byte, error)
	// Create opens a sequential streaming writer that creates or replaces
	// the file, creating parent directories as needed. The file contents
	// are defined once Close returns; abandoning a writer without Close
	// may leave a partial file behind.
	Create(name string) (io.WriteCloser, error)
	// Open opens a sequential streaming reader over the file.
	Open(name string) (io.ReadCloser, error)
	// OpenRange opens a sequential streaming reader over the n bytes of a
	// file starting at offset off — the sectioned-read primitive behind
	// zero-decode extent copies. The range is validated eagerly: a range
	// escaping the file fails at open, not mid-read. Unlike ReadAt, a
	// ranged stream is charged like any other stream by instrumentation
	// (one file + open latency at open, bandwidth per chunk), however many
	// Read calls drain it.
	OpenRange(name string, off, n int64) (io.ReadCloser, error)
	// ReadAt reads len(p) bytes at offset off of a file. Weight files are
	// read this way (lazy, per tensor); optimizer shards deliberately
	// never use it (paper §5.4: no lazy loading of optimizer state).
	ReadAt(name string, off int64, p []byte) error
	// Stat returns the file size.
	Stat(name string) (int64, error)
	// List returns the sorted relative names of entries directly under dir
	// (files and directories; directories carry a trailing slash).
	List(dir string) ([]string, error)
	// Exists reports whether the file or directory exists.
	Exists(name string) bool
	// Remove deletes a file or directory tree.
	Remove(name string) error
	// Rename atomically moves a file or directory tree to a new name,
	// creating the destination's parent directories as needed. Renaming
	// over an existing file replaces it; renaming over an existing
	// directory fails. This is the publication primitive of the checkpoint
	// commit protocol: a staged directory becomes visible in one step.
	Rename(oldName, newName string) error
}

// OS is a Backend rooted at a real directory.
type OS struct {
	Root string
}

// NewOS creates the root directory if needed and returns a backend over it.
func NewOS(root string) (*OS, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &OS{Root: root}, nil
}

func (b *OS) resolve(name string) (string, error) {
	for _, el := range strings.Split(name, "/") {
		if el == ".." {
			return "", fmt.Errorf("storage: path escapes root: %q", name)
		}
	}
	clean := path.Clean("/" + name)[1:]
	if clean == "" {
		return b.Root, nil
	}
	return filepath.Join(b.Root, filepath.FromSlash(clean)), nil
}

// WriteFile implements Backend. Data is fsynced before the write reports
// success: the commit protocol's publishing rename is only crash-durable
// if the staged bytes reached stable storage first.
func (b *OS) WriteFile(name string, data []byte) error {
	p, err := b.resolve(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: mkdir for %s: %w", name, err)
	}
	f, err := os.Create(p)
	if err != nil {
		return fmt.Errorf("storage: write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("storage: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: sync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: write %s: %w", name, err)
	}
	return nil
}

// ReadFile implements Backend.
func (b *OS) ReadFile(name string) ([]byte, error) {
	p, err := b.resolve(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("storage: read %s: %w", name, err)
	}
	return data, nil
}

// Create implements Backend: the stream writes straight to the target path,
// mirroring WriteFile's non-atomic create-or-replace semantics. Close
// fsyncs before returning, so a stream that closed cleanly is durable.
func (b *OS) Create(name string) (io.WriteCloser, error) {
	p, err := b.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir for %s: %w", name, err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", name, err)
	}
	return syncOnClose{f}, nil
}

// syncOnClose fsyncs the file before closing it.
type syncOnClose struct{ f *os.File }

func (s syncOnClose) Write(p []byte) (int, error) { return s.f.Write(p) }

func (s syncOnClose) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Open implements Backend.
func (b *OS) Open(name string) (io.ReadCloser, error) {
	p, err := b.resolve(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", name, err)
	}
	return f, nil
}

// OpenRange implements Backend. The extent is validated against the file
// size before any payload byte moves.
func (b *OS) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	p, err := b.resolve(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	if err := checkRange(name, off, n, fi.Size()); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek %s@%d: %w", name, off, err)
	}
	return &rangeReader{r: io.LimitReader(f, n), c: f}, nil
}

// checkRange rejects extents escaping a file of the given size. The sum is
// compared by subtraction so an adversarial off+n cannot wrap int64.
func checkRange(name string, off, n, size int64) error {
	if off < 0 || n < 0 || off > size || n > size-off {
		return fmt.Errorf("storage: open %s@%d+%d: out of range (size %d)", name, off, n, size)
	}
	return nil
}

// rangeReader pairs a limited reader with the underlying file's Close.
type rangeReader struct {
	r io.Reader
	c io.Closer
}

func (r *rangeReader) Read(p []byte) (int, error) { return r.r.Read(p) }
func (r *rangeReader) Close() error               { return r.c.Close() }

// NewSpool gives OS backends file-backed scratch space (see NewSpool).
func (b *OS) NewSpool() (Spool, error) { return newFileSpool() }

// ReadAt implements Backend.
func (b *OS) ReadAt(name string, off int64, p []byte) error {
	fp, err := b.resolve(name)
	if err != nil {
		return err
	}
	f, err := os.Open(fp)
	if err != nil {
		return fmt.Errorf("storage: open %s: %w", name, err)
	}
	defer f.Close()
	if _, err := f.ReadAt(p, off); err != nil {
		return fmt.Errorf("storage: read %s@%d: %w", name, off, err)
	}
	return nil
}

// Stat implements Backend. Stat names a file: a directory path answers
// not-exist (its FileInfo size is filesystem metadata, not content — and
// Mem/ObjStore have no such path to stat at all, so agreeing here keeps
// callers backend-agnostic).
func (b *OS) Stat(name string) (int64, error) {
	p, err := b.resolve(name)
	if err != nil {
		return 0, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return 0, fmt.Errorf("storage: stat %s: %w", name, err)
	}
	if fi.IsDir() {
		return 0, fmt.Errorf("storage: stat %s: is a directory: %w", name, fs.ErrNotExist)
	}
	return fi.Size(), nil
}

// List implements Backend.
func (b *OS) List(dir string) ([]string, error) {
	p, err := b.resolve(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(p)
	if err != nil {
		return nil, fmt.Errorf("storage: list %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() {
			n += "/"
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements Backend.
func (b *OS) Exists(name string) bool {
	p, err := b.resolve(name)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Rename implements Backend. After the rename the destination's parent
// directory is fsynced, so the publication survives a host crash — the
// durability half of the commit protocol's atomic-rename step.
func (b *OS) Rename(oldName, newName string) error {
	op, err := b.resolve(oldName)
	if err != nil {
		return err
	}
	np, err := b.resolve(newName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return fmt.Errorf("storage: mkdir for %s: %w", newName, err)
	}
	if err := os.Rename(op, np); err != nil {
		return fmt.Errorf("storage: rename %s -> %s: %w", oldName, newName, err)
	}
	syncDir(filepath.Dir(np))
	return nil
}

// syncDir fsyncs a directory (best effort — some filesystems reject it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Remove implements Backend. Removal of an absent path is a silent no-op,
// matching Mem and ObjStore — including a path "under" a file, where
// RemoveAll reports ENOTDIR rather than ENOENT. Repair's best-effort
// cleanup depends on idempotent removes behaving identically everywhere.
func (b *OS) Remove(name string) error {
	p, err := b.resolve(name)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(p); err != nil {
		if _, statErr := os.Lstat(p); statErr != nil {
			return nil // nothing at that path: removal already holds
		}
		return fmt.Errorf("storage: remove %s: %w", name, err)
	}
	return nil
}

// IsNotExist reports whether an error from a Backend denotes a missing
// file. OS surfaces *fs.PathError from the syscall layer; Mem and ObjStore
// wrap fs.ErrNotExist directly — both forms answer true here, so callers
// never need to know which backend produced the error.
func IsNotExist(err error) bool {
	if errors.Is(err, fs.ErrNotExist) {
		return true
	}
	var pe *fs.PathError
	return errorsAs(err, &pe) && os.IsNotExist(pe)
}

// errorsAs is a tiny local wrapper to keep the import list tidy.
func errorsAs(err error, target *(*fs.PathError)) bool {
	for err != nil {
		if pe, ok := err.(*fs.PathError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
