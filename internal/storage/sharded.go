// Digest-sharded content-addressed storage.
//
// A single backend eventually bottlenecks a fleet of checkpointing jobs;
// the standard fix is to spread the CAS over several stores keyed by
// digest prefix. ShardedStore routes every per-digest operation through
// the blob digest's leading hex byte — the same two characters the
// BlobStore fan-out already uses — so each digest lives in exactly one
// shard and puts/gets/sweeps of distinct prefixes never contend.
//
// The layout is declared once by InitShards, which writes
// `<root>/shards.json` ({"version":1,"count":N}); OpenCAS reads it and
// returns a ShardedStore over `<root>/shard-<i>/` roots, or a plain
// BlobStore over `<root>` when no config exists. The journaled ref index
// stays unsharded at `<root>/refs/` — references span shards, and the
// index is tiny next to the blobs it pins.

package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CAS is the content-addressed store surface the checkpoint layer uses.
// BlobStore implements it directly; ShardedStore implements it by routing
// per-digest calls to the owning shard and fanning enumeration and sweeps
// across all shards.
type CAS interface {
	Root() string
	Path(digest string) string
	Has(digest string) bool
	Stat(digest string) (int64, error)
	Open(digest string) (io.ReadCloser, error)
	OpenRange(digest string, off, n int64) (io.ReadCloser, error)
	Meta(digest string) (BlobMeta, error)
	Put(digest string, r io.Reader) (bool, int64, error)
	PutBytes(data []byte) (digest string, written bool, err error)
	PutStream(digest string, encode func(io.Writer) (int64, error)) (bool, error)
	PutStreamOpts(digest string, opts BlobPutOptions, encode func(io.Writer) (int64, error)) (PutResult, error)
	Remove(digest string) error
	List() (blobs []BlobInfo, staging, stray []string, err error)
	Trash(digest string) error
	Restore(digest string) error
	PurgeTrash(digest string) error
	ListTrash() ([]BlobInfo, error)
	Sweep(refs map[string]int) (*SweepReport, error)
	SweepRecheck(refs map[string]int, recheck RecheckFunc) (*SweepReport, error)
	SweepDigests(candidates []string, refs map[string]int, dryRun bool, recheck RecheckFunc) (*SweepReport, error)
	StagingResidue() ([]string, error)
	SetMultipart(opts MultipartOptions)
}

var (
	_ CAS = (*BlobStore)(nil)
	_ CAS = (*ShardedStore)(nil)
)

// ShardConfigName is the shard-map declaration inside a CAS root.
const ShardConfigName = "shards.json"

type shardConfig struct {
	Version int `json:"version"`
	Count   int `json:"count"`
}

// InitShards declares a sharded layout under root: subsequent OpenCAS
// calls return a ShardedStore with the given shard count. It must run
// before the first blob lands (an existing unsharded store's blobs would
// become unreachable) and the count is immutable thereafter — resharding
// would re-home digests.
func InitShards(b Backend, root string, count int) error {
	if count < 1 || count > 256 {
		return fmt.Errorf("storage: shard count %d out of range [1,256]", count)
	}
	root = strings.TrimSuffix(root, "/")
	p := root + "/" + ShardConfigName
	if data, err := b.ReadFile(p); err == nil {
		var have shardConfig
		if json.Unmarshal(data, &have) == nil && have.Count == count {
			return nil // idempotent re-init
		}
		return fmt.Errorf("storage: %s already declares a different shard layout", p)
	}
	data, err := json.Marshal(shardConfig{Version: 1, Count: count})
	if err != nil {
		return err
	}
	return b.WriteFile(p, data)
}

// OpenCAS opens the content-addressed store rooted at root, honouring a
// shard declaration when one exists and falling back to a plain BlobStore
// otherwise. When root carries a hub attachment (hubref.json), the hub's
// shared store is opened instead — one level of indirection only, so a hub
// whose own objects root claims an attachment is rejected as a chain. This
// is the only constructor the checkpoint layer should use.
func OpenCAS(b Backend, root string) (CAS, error) {
	root = strings.TrimSuffix(root, "/")
	ref, err := ReadHubRef(b, root)
	if err != nil {
		return nil, err
	}
	if ref != nil {
		hubObjects := HubObjectsRoot(ref.Hub)
		nested, err := ReadHubRef(b, hubObjects)
		if err != nil {
			return nil, err
		}
		if nested != nil {
			return nil, fmt.Errorf("storage: %s attaches to hub %s, whose store is itself attached elsewhere (chained hubs unsupported)", root, ref.Hub)
		}
		root = hubObjects
	}
	data, err := b.ReadFile(root + "/" + ShardConfigName)
	if err != nil {
		if IsNotExist(err) {
			return NewBlobStore(b, root), nil
		}
		return nil, fmt.Errorf("storage: read shard config under %s: %w", root, err)
	}
	var cfg shardConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("storage: parse %s/%s: %w", root, ShardConfigName, err)
	}
	if cfg.Version != 1 || cfg.Count < 1 || cfg.Count > 256 {
		return nil, fmt.Errorf("storage: unsupported shard config %+v under %s", cfg, root)
	}
	return NewShardedStore(b, root, cfg.Count), nil
}

// ShardedStore is a CAS spread over count BlobStores rooted at
// `<root>/shard-<i>/`, routing each digest by its leading hex byte.
type ShardedStore struct {
	root   string
	shards []*BlobStore
}

// NewShardedStore builds the store without consulting a config; most
// callers want OpenCAS.
func NewShardedStore(b Backend, root string, count int) *ShardedStore {
	root = strings.TrimSuffix(root, "/")
	s := &ShardedStore{root: root}
	for i := 0; i < count; i++ {
		s.shards = append(s.shards, NewBlobStore(b, fmt.Sprintf("%s/shard-%d", root, i)))
	}
	// An xor-parent blob's parent digest routes independently, so decoding
	// must resolve parents across shards, not just within the owning one.
	for _, sh := range s.shards {
		sh.resolveFn = s.resolveRaw
	}
	return s
}

// resolveRaw resolves a digest to its decoded payload via its owning shard,
// threading the chain walk's cycle/depth guard across shard boundaries.
func (s *ShardedStore) resolveRaw(digest string, seen map[string]bool, depth int) ([]byte, error) {
	return s.shard(digest).resolveLocal(digest, seen, depth)
}

// Shards returns the number of shards.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// shard routes a digest to its owning store. Invalid digests route to
// shard 0, whose own validation produces the error the caller expects.
func (s *ShardedStore) shard(digest string) *BlobStore {
	if len(digest) < 2 {
		return s.shards[0]
	}
	v, err := strconv.ParseUint(digest[:2], 16, 16)
	if err != nil {
		return s.shards[0]
	}
	return s.shards[int(v)%len(s.shards)]
}

// Root returns the sharded root (the directory holding shards.json).
func (s *ShardedStore) Root() string { return s.root }

// Path returns the digest's path inside its owning shard.
func (s *ShardedStore) Path(digest string) string { return s.shard(digest).Path(digest) }

// Has implements CAS.
func (s *ShardedStore) Has(digest string) bool { return s.shard(digest).Has(digest) }

// Stat implements CAS.
func (s *ShardedStore) Stat(digest string) (int64, error) { return s.shard(digest).Stat(digest) }

// Open implements CAS.
func (s *ShardedStore) Open(digest string) (io.ReadCloser, error) {
	return s.shard(digest).Open(digest)
}

// OpenRange implements CAS.
func (s *ShardedStore) OpenRange(digest string, off, n int64) (io.ReadCloser, error) {
	return s.shard(digest).OpenRange(digest, off, n)
}

// Put implements CAS.
func (s *ShardedStore) Put(digest string, r io.Reader) (bool, int64, error) {
	return s.shard(digest).Put(digest, r)
}

// PutBytes implements CAS; the digest is computed first so the payload
// routes to its owning shard.
func (s *ShardedStore) PutBytes(data []byte) (string, bool, error) {
	digest := DigestBytes(data)
	written, _, err := s.shard(digest).Put(digest, strings.NewReader(string(data)))
	return digest, written, err
}

// PutStream implements CAS.
func (s *ShardedStore) PutStream(digest string, encode func(io.Writer) (int64, error)) (bool, error) {
	return s.shard(digest).PutStream(digest, encode)
}

// PutStreamOpts implements CAS; the owning shard's cross-shard resolver
// reaches parents wherever they live.
func (s *ShardedStore) PutStreamOpts(digest string, opts BlobPutOptions, encode func(io.Writer) (int64, error)) (PutResult, error) {
	return s.shard(digest).PutStreamOpts(digest, opts, encode)
}

// Meta implements CAS.
func (s *ShardedStore) Meta(digest string) (BlobMeta, error) {
	return s.shard(digest).Meta(digest)
}

// Remove implements CAS.
func (s *ShardedStore) Remove(digest string) error { return s.shard(digest).Remove(digest) }

// Trash implements CAS.
func (s *ShardedStore) Trash(digest string) error { return s.shard(digest).Trash(digest) }

// Restore implements CAS.
func (s *ShardedStore) Restore(digest string) error { return s.shard(digest).Restore(digest) }

// PurgeTrash implements CAS.
func (s *ShardedStore) PurgeTrash(digest string) error { return s.shard(digest).PurgeTrash(digest) }

// List aggregates all shards' enumeration; blobs arrive sorted by digest
// exactly as a single store would report them.
func (s *ShardedStore) List() (blobs []BlobInfo, staging, stray []string, err error) {
	for _, sh := range s.shards {
		b, st, sy, err := sh.List()
		if err != nil {
			return nil, nil, nil, err
		}
		blobs = append(blobs, b...)
		staging = append(staging, st...)
		stray = append(stray, sy...)
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].Digest < blobs[j].Digest })
	sort.Strings(staging)
	sort.Strings(stray)
	return blobs, staging, stray, nil
}

// ListTrash aggregates all shards' trash areas.
func (s *ShardedStore) ListTrash() ([]BlobInfo, error) {
	var out []BlobInfo
	for _, sh := range s.shards {
		t, err := sh.ListTrash()
		if err != nil {
			return nil, err
		}
		out = append(out, t...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out, nil
}

// StagingResidue aggregates all shards' staging residue.
func (s *ShardedStore) StagingResidue() ([]string, error) {
	var out []string
	for _, sh := range s.shards {
		r, err := sh.StagingResidue()
		if err != nil {
			return nil, err
		}
		out = append(out, r...)
	}
	sort.Strings(out)
	return out, nil
}

func mergeReports(dst, src *SweepReport) {
	dst.Kept += src.Kept
	dst.Examined += src.Examined
	dst.RemovedBlobs = append(dst.RemovedBlobs, src.RemovedBlobs...)
	dst.Restored = append(dst.Restored, src.Restored...)
	dst.RemovedStaging = append(dst.RemovedStaging, src.RemovedStaging...)
	dst.BytesFreed += src.BytesFreed
}

// Sweep implements CAS, sweeping shard by shard. The per-blob safety
// invariant is the per-shard one; an interrupted sweep leaves later shards
// untouched for the next run.
func (s *ShardedStore) Sweep(refs map[string]int) (*SweepReport, error) {
	return s.SweepRecheck(refs, nil)
}

// SweepRecheck implements CAS. Each shard runs its own two-phase
// trash/recheck pass; the recheck sees only that shard's trashed digests,
// which is sound — restores depend on the fresh pin set, not on what other
// shards trashed.
func (s *ShardedStore) SweepRecheck(refs map[string]int, recheck RecheckFunc) (*SweepReport, error) {
	rep := &SweepReport{}
	for _, sh := range s.shards {
		r, err := sh.SweepRecheck(refs, recheck)
		if r != nil {
			mergeReports(rep, r)
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// SweepDigests implements CAS: candidates partition by owning shard and
// each partition sweeps independently.
func (s *ShardedStore) SweepDigests(candidates []string, refs map[string]int, dryRun bool, recheck RecheckFunc) (*SweepReport, error) {
	byShard := make(map[*BlobStore][]string)
	for _, d := range candidates {
		if !ValidDigest(d) {
			return &SweepReport{}, fmt.Errorf("storage: sweep candidate: invalid digest %q", d)
		}
		sh := s.shard(d)
		byShard[sh] = append(byShard[sh], d)
	}
	rep := &SweepReport{}
	for _, sh := range s.shards {
		part := byShard[sh]
		if len(part) == 0 {
			continue
		}
		r, err := sh.SweepDigests(part, refs, dryRun, recheck)
		if r != nil {
			mergeReports(rep, r)
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// SetMultipart forwards tuning to every shard.
func (s *ShardedStore) SetMultipart(opts MultipartOptions) {
	for _, sh := range s.shards {
		sh.SetMultipart(opts)
	}
}
