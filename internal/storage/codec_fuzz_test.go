package storage

// Fuzz targets for the blob-codec layer. Contract: corrupt container bytes
// — truncated, bit-flipped, adversarial headers, self-referential or
// cyclic parent chains — must surface as an error, never a panic,
// unbounded allocation or unbounded recursion; and every container the
// encoder emits must decode back to the exact payload. The regression
// corpora live in testdata/fuzz/FuzzBlobCodec and testdata/fuzz/FuzzXORResolver.

import (
	"bytes"
	"io"
	"testing"
)

// fuzzMaxRaw caps the payload size a fuzzed container may declare, the
// same guard any path decoding untrusted bytes must set.
const fuzzMaxRaw = 1 << 24

// codecMutations seeds a corpus entry plus truncations and bit flips of it.
func codecMutations(f *testing.F, data []byte, width byte) {
	f.Add(data, width)
	for _, cut := range []int{1, 4, blobHeaderSize - 1, blobHeaderSize, len(data) - 1} {
		if cut > 0 && cut < len(data) {
			f.Add(data[:cut], width)
		}
	}
	for _, pos := range []int{4, 5, 6, 8, 16, 80, 87} {
		if pos < len(data) {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0xff
			f.Add(mut, width)
		}
	}
}

// FuzzBlobCodec drives DecodeContainer over arbitrary bytes and checks the
// encoder's containers roundtrip through it bit-exactly.
func FuzzBlobCodec(f *testing.F) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i / 11) // plane-friendly: low bytes vary slowly
	}
	if c, ok := EncodeContainer(payload, CodecPlane, 2, "", nil); ok {
		codecMutations(f, c, 2)
	}
	delta := make([]byte, 3000)
	delta[1700] = 0x5a
	if c, ok := EncodeContainer(delta, CodecXORParent, 4, DigestBytes(payload), nil); ok {
		codecMutations(f, c, 4)
	}
	f.Add([]byte("LTBC"), byte(1))
	f.Add(append([]byte(nil), storedHeader()...), byte(1))
	f.Add(payload[:64], byte(0))

	f.Fuzz(func(t *testing.T, data []byte, width byte) {
		if p, meta, err := DecodeContainer(data, DecodeOpts{MaxRawSize: fuzzMaxRaw}); err == nil {
			// Accepted containers must hold the invariant readers rely on:
			// the payload is exactly as long as the header declares.
			if int64(len(p)) != meta.RawSize {
				t.Fatalf("accepted container: payload %d bytes, header declares %d", len(p), meta.RawSize)
			}
			if meta.Codec == CodecXORParent && !ValidDigest(meta.Parent) {
				t.Fatalf("accepted xor container with malformed parent %q", meta.Parent)
			}
		}
		// Whatever the encoder emits for the same bytes must decode back.
		if c, ok := EncodeContainer(data, CodecPlane, int(width), "", nil); ok {
			p, meta, err := DecodeContainer(c, DecodeOpts{MaxRawSize: fuzzMaxRaw})
			if err != nil {
				t.Fatalf("decoder rejects own encoding: %v", err)
			}
			if meta.Codec != CodecPlane || !bytes.Equal(p, data) {
				t.Fatal("plane roundtrip differs from the payload")
			}
		}
	})
}

// FuzzXORResolver stores fuzzed bytes verbatim at a blob path and opens the
// blob, so corrupt containers exercise the full parent-chain resolution:
// missing parents, wrong-length parents, self-referential and mutually
// cyclic chains must all error out of Open, never panic or recurse forever.
func FuzzXORResolver(f *testing.F) {
	parentRaw := make([]byte, 2048)
	for i := range parentRaw {
		parentRaw[i] = byte(i)
	}
	parentDigest := DigestBytes(parentRaw)
	// The digest slot the fuzzed bytes are stored under, and a partner blob
	// whose parent pointer aims back at it (a 2-cycle when the fuzzed
	// container points at the partner).
	fuzzDigest := DigestBytes([]byte("fuzz-blob"))
	cycleDigest := DigestBytes([]byte("cycle-partner"))
	cyclePartner, ok := EncodeContainer(make([]byte, 2048), CodecXORParent, 1, fuzzDigest, nil)
	if !ok {
		f.Fatal("cycle partner did not encode")
	}

	delta := make([]byte, 2048)
	delta[77] = 0x5a
	if c, ok := EncodeContainer(delta, CodecXORParent, 2, parentDigest, nil); ok {
		f.Add(c) // resolvable: parent exists with matching length
	}
	if c, ok := EncodeContainer(delta, CodecXORParent, 2, fuzzDigest, nil); ok {
		f.Add(c) // self-referential: blob is its own parent
	}
	if c, ok := EncodeContainer(delta, CodecXORParent, 2, cycleDigest, nil); ok {
		f.Add(c) // two-blob cycle via the partner
	}
	if c, ok := EncodeContainer(delta, CodecXORParent, 2, DigestBytes([]byte("absent")), nil); ok {
		f.Add(c) // missing parent
	}
	if c, ok := EncodeContainer(delta[:100], CodecXORParent, 2, parentDigest, nil); ok {
		f.Add(c) // parent length mismatch
	}
	f.Add(parentRaw[:128]) // plain raw blob bytes
	f.Add([]byte("LTBC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewMem()
		s := NewBlobStore(b, "objects")
		b.WriteFile(s.Path(parentDigest), parentRaw)
		b.WriteFile(s.Path(cycleDigest), cyclePartner)
		b.WriteFile(s.Path(fuzzDigest), data)
		if rc, err := s.Open(fuzzDigest); err == nil {
			io.Copy(io.Discard, rc)
			rc.Close()
		}
		if _, err := s.Meta(fuzzDigest); err != nil && !IsNotExist(err) {
			_ = err // corrupt headers may error; they must only not panic
		}
	})
}
