package storage

import (
	"fmt"
	"testing"
	"time"
)

// backendCases runs the same conformance suite over both backends.
func backendCases(t *testing.T, mk func(t *testing.T) Backend) {
	t.Helper()

	t.Run("write-read-roundtrip", func(t *testing.T) {
		b := mk(t)
		data := []byte("hello checkpoint")
		if err := b.WriteFile("run/ckpt-100/model.ltsf", data); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile("run/ckpt-100/model.ltsf")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(data) {
			t.Fatalf("got %q", got)
		}
	})

	t.Run("read-missing", func(t *testing.T) {
		b := mk(t)
		if _, err := b.ReadFile("nope"); err == nil {
			t.Fatal("expected error")
		}
	})

	t.Run("readat", func(t *testing.T) {
		b := mk(t)
		if err := b.WriteFile("f", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 4)
		if err := b.ReadAt("f", 3, p); err != nil {
			t.Fatal(err)
		}
		if string(p) != "3456" {
			t.Fatalf("ReadAt = %q", p)
		}
		if err := b.ReadAt("f", 8, make([]byte, 4)); err == nil {
			t.Fatal("expected out-of-range error")
		}
	})

	t.Run("stat", func(t *testing.T) {
		b := mk(t)
		b.WriteFile("s", make([]byte, 123))
		n, err := b.Stat("s")
		if err != nil || n != 123 {
			t.Fatalf("stat = %d, %v", n, err)
		}
		if _, err := b.Stat("missing"); err == nil {
			t.Fatal("expected error")
		}
	})

	t.Run("list", func(t *testing.T) {
		b := mk(t)
		b.WriteFile("d/a", []byte("1"))
		b.WriteFile("d/b", []byte("2"))
		b.WriteFile("d/sub/c", []byte("3"))
		names, err := b.List("d")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"a", "b", "sub/"}
		if len(names) != len(want) {
			t.Fatalf("list = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("list = %v, want %v", names, want)
			}
		}
	})

	t.Run("exists-remove", func(t *testing.T) {
		b := mk(t)
		b.WriteFile("x/y/z", []byte("1"))
		if !b.Exists("x/y/z") || !b.Exists("x/y") || !b.Exists("x") {
			t.Fatal("exists failed")
		}
		if b.Exists("x/q") {
			t.Fatal("phantom file")
		}
		if err := b.Remove("x"); err != nil {
			t.Fatal(err)
		}
		if b.Exists("x/y/z") {
			t.Fatal("remove did not recurse")
		}
	})

	t.Run("overwrite", func(t *testing.T) {
		b := mk(t)
		b.WriteFile("f", []byte("old"))
		b.WriteFile("f", []byte("newer"))
		got, _ := b.ReadFile("f")
		if string(got) != "newer" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestOSBackend(t *testing.T) {
	backendCases(t, func(t *testing.T) Backend {
		b, err := NewOS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
}

func TestMemBackend(t *testing.T) {
	backendCases(t, func(t *testing.T) Backend { return NewMem() })
}

func TestOSBackendRejectsEscape(t *testing.T) {
	b, _ := NewOS(t.TempDir())
	if err := b.WriteFile("../evil", []byte("x")); err == nil {
		t.Fatal("path escape allowed")
	}
}

func TestProfileTimes(t *testing.T) {
	p := Profile{Name: "t", ReadBandwidth: 1e9, WriteBandwidth: 5e8, OpenLatency: time.Millisecond}
	if got := p.ReadTime(1e9); got != time.Second+time.Millisecond {
		t.Fatalf("ReadTime = %v", got)
	}
	if got := p.WriteTime(5e8); got != time.Second+time.Millisecond {
		t.Fatalf("WriteTime = %v", got)
	}
}

func TestMeterCountsAndSimTime(t *testing.T) {
	m := NewMeter(NewMem(), Profile{Name: "t", ReadBandwidth: 1e6, WriteBandwidth: 1e6, OpenLatency: time.Millisecond})
	data := make([]byte, 1000)
	if err := m.WriteFile("a", data); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAt("a", 0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.FilesWritten != 1 || s.FilesRead != 2 {
		t.Fatalf("files: %+v", s)
	}
	if s.BytesWritten != 1000 || s.BytesRead != 1100 {
		t.Fatalf("bytes: %+v", s)
	}
	// 3 opens (3ms) + 2100 bytes at 1e6 B/s (2.1ms) = 5.1ms.
	want := 3*time.Millisecond + 2100*time.Microsecond
	if s.SimTime != want {
		t.Fatalf("sim time = %v, want %v", s.SimTime, want)
	}
}

func TestMeterByteScale(t *testing.T) {
	m := NewMeter(NewMem(), Profile{Name: "t", ReadBandwidth: 1e6, WriteBandwidth: 1e6})
	m.ByteScale = 1000 // sim bytes stand for 1000× true bytes
	m.WriteFile("a", make([]byte, 100))
	s := m.Stats()
	if s.BytesWritten != 100 {
		t.Fatalf("raw bytes = %d", s.BytesWritten)
	}
	if s.SimTime != 100*time.Millisecond { // 100*1000 bytes / 1e6 B/s
		t.Fatalf("scaled sim time = %v", s.SimTime)
	}
}

func TestMeterErrorsNotCharged(t *testing.T) {
	m := NewMeter(NewMem(), Lustre())
	if _, err := m.ReadFile("missing"); err == nil {
		t.Fatal("expected error")
	}
	if s := m.Stats(); s.FilesRead != 0 {
		t.Fatalf("failed read charged: %+v", s)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(NewMem(), Lustre())
	m.WriteFile("a", []byte("x"))
	m.Reset()
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("reset left %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FilesRead: 1, BytesRead: 10, SimTime: time.Second}
	b := Stats{FilesWritten: 2, BytesWritten: 20, SimTime: time.Second}
	c := a.Add(b)
	if c.FilesRead != 1 || c.FilesWritten != 2 || c.BytesRead != 10 || c.BytesWritten != 20 || c.SimTime != 2*time.Second {
		t.Fatalf("add = %+v", c)
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := NewMeter(NewMem(), LocalNVMe())
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			name := fmt.Sprintf("f%d", i)
			if err := m.WriteFile(name, make([]byte, 64)); err != nil {
				done <- err
				return
			}
			_, err := m.ReadFile(name)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.FilesWritten != 16 || s.FilesRead != 16 {
		t.Fatalf("concurrent counts: %+v", s)
	}
}
