package storage

import (
	"io"
	"sync"
	"time"
)

// Profile models a storage system's first-order performance: per-file open
// latency plus streaming bandwidth. It is deliberately simple — the paper's
// timing tables depend on byte volume, file counts and load order, all of
// which this captures.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// ReadBandwidth and WriteBandwidth are in bytes/second.
	ReadBandwidth  float64
	WriteBandwidth float64
	// OpenLatency is charged once per file operation (open+metadata).
	OpenLatency time.Duration
}

// Lustre returns a profile resembling the paper's testbed: a Lustre
// filesystem over InfiniBand shared by an 8-GPU node. Bandwidths are chosen
// so the analytic checkpoint times land in the ranges Tables 3/6/7 report
// (§ EXPERIMENTS.md documents the calibration).
func Lustre() Profile {
	return Profile{
		Name:           "lustre-ib",
		ReadBandwidth:  5.0e9,
		WriteBandwidth: 3.8e9,
		OpenLatency:    3 * time.Millisecond,
	}
}

// LocalNVMe returns a fast local-disk profile for comparisons.
func LocalNVMe() Profile {
	return Profile{
		Name:           "local-nvme",
		ReadBandwidth:  7.0e9,
		WriteBandwidth: 5.0e9,
		OpenLatency:    100 * time.Microsecond,
	}
}

// ReadTime returns the modelled time to read n bytes as one file.
func (p Profile) ReadTime(n int64) time.Duration {
	return p.OpenLatency + p.ReadChunkTime(n)
}

// WriteTime returns the modelled time to write n bytes as one file.
func (p Profile) WriteTime(n int64) time.Duration {
	return p.OpenLatency + p.WriteChunkTime(n)
}

// ReadChunkTime returns the bandwidth-only time to read n bytes mid-stream
// (no open latency; streamed reads charge OpenLatency once at Open).
func (p Profile) ReadChunkTime(n int64) time.Duration {
	return time.Duration(float64(n) / p.ReadBandwidth * float64(time.Second))
}

// WriteChunkTime returns the bandwidth-only time to write n bytes mid-stream.
func (p Profile) WriteChunkTime(n int64) time.Duration {
	return time.Duration(float64(n) / p.WriteBandwidth * float64(time.Second))
}

// Stats aggregates I/O activity observed by a Meter.
type Stats struct {
	FilesRead    int64
	FilesWritten int64
	BytesRead    int64
	BytesWritten int64
	// SimTime is the modelled wall time of all I/O under the profile,
	// charged as if operations were serial (the paper's per-rank loads are
	// serialised by the shared filesystem; parallel loading helps CPU-side
	// deserialisation, which the merge engine accounts separately).
	SimTime time.Duration
}

// Add returns the sum of two stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		FilesRead:    s.FilesRead + o.FilesRead,
		FilesWritten: s.FilesWritten + o.FilesWritten,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
		SimTime:      s.SimTime + o.SimTime,
	}
}

// Meter wraps a Backend, counting traffic and accruing simulated time under
// a Profile. Byte volumes can be scaled: the live system moves scaled-down
// tensors, while SimTime should reflect the true model's bytes. Setting
// ByteScale to the true-to-sim parameter ratio accomplishes that.
type Meter struct {
	Backend Backend
	Profile Profile
	// ByteScale multiplies observed byte counts when charging SimTime
	// (default 1).
	ByteScale float64

	mu    sync.Mutex
	stats Stats
}

// NewMeter wraps a backend with instrumentation.
func NewMeter(b Backend, p Profile) *Meter {
	return &Meter{Backend: b, Profile: p, ByteScale: 1}
}

// Stats returns a snapshot of accumulated counters.
func (m *Meter) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

func (m *Meter) scale(n int64) int64 {
	if m.ByteScale == 0 || m.ByteScale == 1 {
		return n
	}
	return int64(float64(n) * m.ByteScale)
}

func (m *Meter) chargeRead(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.FilesRead++
	m.stats.BytesRead += n
	m.stats.SimTime += m.Profile.ReadTime(m.scale(n))
}

func (m *Meter) chargeWrite(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.FilesWritten++
	m.stats.BytesWritten += n
	m.stats.SimTime += m.Profile.WriteTime(m.scale(n))
}

// WriteFile implements Backend. The attempt is charged whether or not it
// succeeds: a PUT that fails server-side still moved its bytes over the
// link, and a retry loop above us must pay open latency and bandwidth
// again on every attempt or the cost model silently flatters retries.
func (m *Meter) WriteFile(name string, data []byte) error {
	err := m.Backend.WriteFile(name, data)
	m.chargeWrite(int64(len(data)))
	return err
}

// AddSimTime adds d to the accumulated simulated time. Retry wrappers use
// it to bill backoff delays to the sim clock instead of sleeping.
func (m *Meter) AddSimTime(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.SimTime += d
}

// ReadFile implements Backend.
func (m *Meter) ReadFile(name string) ([]byte, error) {
	data, err := m.Backend.ReadFile(name)
	if err != nil {
		return nil, err
	}
	m.chargeRead(int64(len(data)))
	return data, nil
}

// ReadAt implements Backend.
func (m *Meter) ReadAt(name string, off int64, p []byte) error {
	if err := m.Backend.ReadAt(name, off, p); err != nil {
		return err
	}
	m.chargeRead(int64(len(p)))
	return nil
}

// Create implements Backend. The stream is charged exactly like a WriteFile
// of the same total size: one file + OpenLatency at Create, bytes and
// bandwidth time per chunk as they are written.
func (m *Meter) Create(name string) (io.WriteCloser, error) {
	w, err := m.Backend.Create(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.stats.FilesWritten++
	m.stats.SimTime += m.Profile.OpenLatency
	m.mu.Unlock()
	return &meteredWriter{m: m, w: w}, nil
}

// Open implements Backend with the same per-chunk accounting as Create.
func (m *Meter) Open(name string) (io.ReadCloser, error) {
	r, err := m.Backend.Open(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.stats.FilesRead++
	m.stats.SimTime += m.Profile.OpenLatency
	m.mu.Unlock()
	return &meteredReader{m: m, r: r}, nil
}

// OpenRange implements Backend with the same per-chunk accounting as Open:
// one file and one OpenLatency at open, bandwidth time per chunk as bytes
// drain. This is deliberately NOT ReadAt's accounting — ReadAt charges a
// full ReadTime (open latency included) per call, which is right for
// isolated lazy tensor reads but would overcharge a sectioned copy that
// drains one extent in many chunks.
func (m *Meter) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	r, err := m.Backend.OpenRange(name, off, n)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.stats.FilesRead++
	m.stats.SimTime += m.Profile.OpenLatency
	m.mu.Unlock()
	return &meteredReader{m: m, r: r}, nil
}

// NewSpool delegates to the wrapped backend so OS-rooted meters still get
// file-backed scratch space. Spool traffic is deliberately uncharged: it is
// node-local staging, not parallel-filesystem I/O.
func (m *Meter) NewSpool() (Spool, error) { return NewSpool(m.Backend) }

type meteredWriter struct {
	m *Meter
	w io.WriteCloser
}

func (w *meteredWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	if n > 0 {
		w.m.mu.Lock()
		w.m.stats.BytesWritten += int64(n)
		w.m.stats.SimTime += w.m.Profile.WriteChunkTime(w.m.scale(int64(n)))
		w.m.mu.Unlock()
	}
	return n, err
}

func (w *meteredWriter) Close() error { return w.w.Close() }

type meteredReader struct {
	m *Meter
	r io.ReadCloser
}

func (r *meteredReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	if n > 0 {
		r.m.mu.Lock()
		r.m.stats.BytesRead += int64(n)
		r.m.stats.SimTime += r.m.Profile.ReadChunkTime(r.m.scale(int64(n)))
		r.m.mu.Unlock()
	}
	return n, err
}

func (r *meteredReader) Close() error { return r.r.Close() }

// Stat implements Backend (uncharged: metadata only).
func (m *Meter) Stat(name string) (int64, error) { return m.Backend.Stat(name) }

// List implements Backend (uncharged).
func (m *Meter) List(dir string) ([]string, error) { return m.Backend.List(dir) }

// Exists implements Backend (uncharged).
func (m *Meter) Exists(name string) bool { return m.Backend.Exists(name) }

// Remove implements Backend (uncharged).
func (m *Meter) Remove(name string) error { return m.Backend.Remove(name) }

// Rename implements Backend (uncharged: metadata only).
func (m *Meter) Rename(oldName, newName string) error { return m.Backend.Rename(oldName, newName) }

// RenameSupported forwards the capability of the wrapped backend.
func (m *Meter) RenameSupported() bool { return RenameSupported(m.Backend) }

// ComposeSupported forwards the capability of the wrapped backend.
func (m *Meter) ComposeSupported() bool { return ComposeSupported(m.Backend) }

// Compose forwards multipart completion, charged as a single metadata-ish
// operation: one file written plus one open latency. The payload bytes were
// already charged when the parts uploaded; a server-side concatenation
// moves no client bandwidth.
func (m *Meter) Compose(dst string, parts ...string) error {
	err := Compose(m.Backend, dst, parts...)
	m.mu.Lock()
	m.stats.FilesWritten++
	m.stats.SimTime += m.Profile.OpenLatency
	m.mu.Unlock()
	return err
}
