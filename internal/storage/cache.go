// Read-through local blob cache.
//
// Resume and merge against a remote store would otherwise pay the remote
// link for every tensor read — including lazy OpenRange reads that revisit
// the same blob many times. CachedCAS interposes a local BlobStore: the
// first read of a blob pulls it whole from the remote and publishes it
// locally (content-addressed, so the copy is self-verifying); subsequent
// reads, including ranged ones, hit local disk.
//
// Invalidation rules, deliberately minimal because blobs are immutable:
//
//   - a digest's content never changes, so a cached blob can never be
//     stale — only present or absent;
//   - existence/size authority stays with the remote (Has/Stat are never
//     answered from the cache), so a blob GC'd remotely stops being
//     reported even while a local copy lingers; and
//   - Remove/Trash/PurgeTrash forward to the remote and evict the local
//     copy (best effort), so the cache never outlives the authority by
//     more than the current call.

package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// CachedCAS wraps a remote CAS with a local read cache. All writes, sweeps
// and metadata queries go straight to the remote; only Open/OpenRange
// consult the cache.
type CachedCAS struct {
	CAS              // the remote authority
	local *BlobStore // read cache
}

// NewCachedCAS wraps remote with a read-through cache stored in local.
func NewCachedCAS(remote CAS, local *BlobStore) *CachedCAS {
	return &CachedCAS{CAS: remote, local: local}
}

// fill pulls one whole blob from the remote into the local cache,
// verifying its digest on the way (a corrupt transfer never lands). The
// pull is best-effort: on any failure the caller falls back to reading
// remote directly.
func (c *CachedCAS) fill(digest string) bool {
	r, err := c.CAS.Open(digest)
	if err != nil {
		return false
	}
	defer r.Close()
	sum := sha256.New()
	_, err = c.local.PutStream(digest, func(w io.Writer) (int64, error) {
		return io.Copy(io.MultiWriter(w, sum), r)
	})
	if err != nil {
		return false
	}
	if hex.EncodeToString(sum.Sum(nil)) != digest {
		// PutStream's own commit check makes this unreachable, but a cheap
		// second opinion on cache fills costs nothing.
		c.local.Remove(digest)
		return false
	}
	return true
}

// Open implements CAS: local copy if cached, else pull-through then local,
// else straight remote.
func (c *CachedCAS) Open(digest string) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if c.local.Has(digest) || c.fill(digest) {
		return c.local.Open(digest)
	}
	return c.CAS.Open(digest)
}

// OpenRange implements CAS with the same read-through policy; ranged reads
// pull the whole blob once so later ranges over it stay local.
func (c *CachedCAS) OpenRange(digest string, off, n int64) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if c.local.Has(digest) || c.fill(digest) {
		return c.local.OpenRange(digest, off, n)
	}
	return c.CAS.OpenRange(digest, off, n)
}

// Remove forwards to the remote and evicts the local copy.
func (c *CachedCAS) Remove(digest string) error {
	err := c.CAS.Remove(digest)
	c.local.Remove(digest)
	return err
}

// Trash forwards to the remote and evicts the local copy: a provisionally
// removed blob must stop serving reads immediately, even cached ones.
func (c *CachedCAS) Trash(digest string) error {
	err := c.CAS.Trash(digest)
	c.local.Remove(digest)
	return err
}

// PurgeTrash forwards to the remote and evicts the local copy.
func (c *CachedCAS) PurgeTrash(digest string) error {
	err := c.CAS.PurgeTrash(digest)
	c.local.Remove(digest)
	return err
}

// EvictAll drops the entire local cache (e.g. to reclaim disk).
func (c *CachedCAS) EvictAll() error {
	blobs, staging, _, err := c.local.List()
	if err != nil {
		return err
	}
	for _, b := range blobs {
		if err := c.local.Remove(b.Digest); err != nil {
			return err
		}
	}
	for _, p := range staging {
		c.local.b.Remove(p)
	}
	return nil
}

var _ CAS = (*CachedCAS)(nil)
