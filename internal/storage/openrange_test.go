package storage

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// openRangeBackends builds one of each rangeable backend over the same file.
func openRangeBackends(t *testing.T, data []byte) map[string]Backend {
	t.Helper()
	osb, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMem()
	backends := map[string]Backend{
		"os":    osb,
		"mem":   mem,
		"meter": NewMeter(NewMem(), LocalNVMe()),
		"fault": NewFault(NewMem()),
	}
	for name, b := range backends {
		if err := b.WriteFile("f", data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return backends
}

func TestOpenRangeReadsExactExtent(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for name, b := range openRangeBackends(t, data) {
		for _, ext := range [][2]int64{{0, 4096}, {100, 300}, {4095, 1}, {4096, 0}, {0, 0}} {
			r, err := b.OpenRange("f", ext[0], ext[1])
			if err != nil {
				t.Fatalf("%s: open %v: %v", name, ext, err)
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil {
				t.Fatalf("%s: read %v: %v", name, ext, err)
			}
			if !bytes.Equal(got, data[ext[0]:ext[0]+ext[1]]) {
				t.Fatalf("%s: extent %v delivered wrong bytes", name, ext)
			}
		}
	}
}

func TestOpenRangeRejectsEscapingExtents(t *testing.T) {
	data := make([]byte, 64)
	for name, b := range openRangeBackends(t, data) {
		for _, ext := range [][2]int64{{-1, 4}, {0, -1}, {0, 65}, {65, 0}, {60, 5}, {1 << 62, 1 << 62}} {
			if r, err := b.OpenRange("f", ext[0], ext[1]); err == nil {
				r.Close()
				t.Fatalf("%s: extent %v accepted (file is 64 bytes)", name, ext)
			}
		}
		if _, err := b.OpenRange("missing", 0, 0); err == nil {
			t.Fatalf("%s: missing file accepted", name)
		}
	}
}

// The accounting-granularity regression the raw-copy path depends on:
// draining one extent through OpenRange charges a single open latency (like
// Open), however many chunked Reads it takes — whereas the same bytes
// fetched as N ReadAt calls charge N open latencies. Both models are
// correct for their use (lazy isolated tensor reads vs. sectioned copies);
// the sectioned path must not inherit ReadAt's per-call charge.
func TestOpenRangeAmortizesOpenLatency(t *testing.T) {
	const total = 1 << 20
	const chunk = 64 << 10
	prof := Lustre()
	data := make([]byte, total)

	m := NewMeter(NewMem(), prof)
	if err := m.Backend.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}

	r, err := m.OpenRange("f", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, chunk)
	chunks := 0
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			chunks++
		}
		if err != nil {
			break
		}
	}
	r.Close()
	if chunks != total/chunk {
		t.Fatalf("drained %d chunks, want %d", chunks, total/chunk)
	}
	rangeStats := m.Stats()

	wantRange := prof.OpenLatency
	for i := 0; i < chunks; i++ {
		wantRange += prof.ReadChunkTime(chunk)
	}
	if rangeStats.SimTime != wantRange {
		t.Fatalf("OpenRange SimTime %v, want one open latency + bandwidth = %v", rangeStats.SimTime, wantRange)
	}
	if rangeStats.FilesRead != 1 || rangeStats.BytesRead != total {
		t.Fatalf("OpenRange counters %+v, want 1 file / %d bytes", rangeStats, total)
	}

	// The same extent as chunked ReadAt calls: one full ReadTime (open
	// latency included) per call.
	m.Reset()
	for off := int64(0); off < total; off += chunk {
		if err := m.ReadAt("f", off, buf); err != nil {
			t.Fatal(err)
		}
	}
	readAtStats := m.Stats()
	var wantReadAt time.Duration
	for i := 0; i < chunks; i++ {
		wantReadAt += prof.ReadTime(chunk)
	}
	if readAtStats.SimTime != wantReadAt {
		t.Fatalf("ReadAt SimTime %v, want %v", readAtStats.SimTime, wantReadAt)
	}
	if rangeStats.SimTime >= readAtStats.SimTime {
		t.Fatalf("sectioned read (%v) should be cheaper than %d ReadAt calls (%v)",
			rangeStats.SimTime, chunks, readAtStats.SimTime)
	}
}

// OpenRange under the fault injector's short-read mode must still deliver
// the exact extent; sectioned reads are never fault points.
func TestFaultOpenRangeShortReadsAndNoFaultPoints(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	f := NewFault(NewMem())
	if err := f.Backend.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	f.SetShortReads(true)
	f.FailAt(1) // armed, but reads must never trip it
	r, err := f.OpenRange("f", 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if n > 7 {
		t.Fatalf("short-read mode delivered %d bytes in one call", n)
	}
	rest, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := append(buf[:n], rest...)
	if !bytes.Equal(got, data[10:510]) {
		t.Fatal("short reads corrupted the extent")
	}
	if f.Crashed() || f.Ops() != 0 {
		t.Fatalf("sectioned read consumed fault points: ops=%d crashed=%v", f.Ops(), f.Crashed())
	}
}

func TestCopyFileStreamsVerbatim(t *testing.T) {
	data := make([]byte, 300_000) // several default-free chunks at 64 KiB
	for i := range data {
		data[i] = byte(i * 13)
	}
	src := NewMem()
	if err := src.WriteFile("a/in", data); err != nil {
		t.Fatal(err)
	}
	dst := NewMeter(NewMem(), LocalNVMe())
	n, err := CopyFile(dst, "b/out", src, "a/in", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("copied %d bytes, want %d", n, len(data))
	}
	got, err := dst.ReadFile("b/out")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("copy not verbatim")
	}
	// The write side is charged as one streamed file.
	if s := dst.Stats(); s.FilesWritten != 1 || s.BytesWritten != int64(len(data)) {
		t.Fatalf("dst meter %+v, want 1 file / %d bytes", s, len(data))
	}
	if _, err := CopyFile(dst, "b/out2", src, "a/missing", 0); err == nil {
		t.Fatal("copying a missing file succeeded")
	}
}
