// Retrying wrapper for flaky backends.
//
// Remote object stores fail transiently as a matter of course; clients are
// expected to retry idempotent requests with exponential backoff. Retry
// adds that layer over any Backend: operations whose replay is safe (whole
// object PUT, GET, DELETE, Compose) are re-attempted a bounded number of
// times when the underlying error is transient (IsTransient). Streams from
// Create buffer privately and replay as whole-object PUTs at Close, which
// is what makes a retried upload idempotent — and which means a Meter
// stacked UNDER the Retry charges open latency and per-chunk bandwidth on
// every attempt, as a real re-upload would cost.
//
// Backoff delays are delivered through the Sleep hook. The default really
// sleeps; simulation stacks point it at Meter.AddSimTime so waits are
// billed to the sim clock instead of wall time, with deterministic jitter
// from a seeded source.

package storage

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// DefaultRetryAttempts bounds the attempts per operation (first try
// included) when Retry.Attempts is unset.
const DefaultRetryAttempts = 4

// Retry wraps a Backend with bounded-attempt retries of transient errors.
type Retry struct {
	Backend Backend
	// Attempts is the total tries per operation (default
	// DefaultRetryAttempts). 1 disables retrying.
	Attempts int
	// Base is the first backoff delay; attempt k waits about Base·2^(k-1)
	// plus jitter (default 2ms, capped at 1s).
	Base time.Duration
	// Sleep delivers backoff delays (default time.Sleep). Point it at
	// Meter.AddSimTime to bill waits to the simulated clock.
	Sleep func(time.Duration)

	mu      sync.Mutex
	rng     *rand.Rand
	retries int64
}

// NewRetry wraps a backend; seed fixes the jitter schedule so exploration
// runs are reproducible.
func NewRetry(b Backend, seed int64) *Retry {
	return &Retry{Backend: b, rng: rand.New(rand.NewSource(seed))}
}

// Retries reports how many individual re-attempts (not counting first
// tries) the wrapper has performed.
func (r *Retry) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

func (r *Retry) attempts() int {
	if r.Attempts <= 0 {
		return DefaultRetryAttempts
	}
	return r.Attempts
}

func (r *Retry) sleep(d time.Duration) {
	if r.Sleep != nil {
		r.Sleep(d)
		return
	}
	time.Sleep(d)
}

// do runs op up to Attempts times, backing off between transient failures.
// Only transient errors retry: an injected crash fault, a missing object or
// a genuine bug must surface on the first attempt.
func (r *Retry) do(op func() error) error {
	attempts := r.attempts()
	for k := 1; ; k++ {
		err := op()
		if err == nil || !IsTransient(err) || k >= attempts {
			return err
		}
		r.mu.Lock()
		r.retries++
		frac := r.rng.Float64()
		r.mu.Unlock()
		r.sleep(backoffJitter(r.Base, k, frac))
	}
}

// WriteFile implements Backend; a whole-object PUT is idempotent, so
// transient failures replay the full write.
func (r *Retry) WriteFile(name string, data []byte) error {
	return r.do(func() error { return r.Backend.WriteFile(name, data) })
}

// ReadFile implements Backend; GETs are idempotent.
func (r *Retry) ReadFile(name string) ([]byte, error) {
	var data []byte
	err := r.do(func() (e error) { data, e = r.Backend.ReadFile(name); return e })
	return data, err
}

// Create implements Backend. The stream buffers privately and replays as a
// retried WriteFile at Close: a half-sent stream cannot be resumed on an
// object store, only re-PUT from the start.
func (r *Retry) Create(name string) (io.WriteCloser, error) {
	return &retryWriter{r: r, name: name}, nil
}

type retryWriter struct {
	r      *Retry
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *retryWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write %s: stream closed", w.name)
	}
	return w.buf.Write(p)
}

func (w *retryWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.r.WriteFile(w.name, w.buf.Bytes())
}

// Open implements Backend; the open itself retries, the stream does not
// (a torn read surfaces to the caller, whose digest check re-drives it).
func (r *Retry) Open(name string) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := r.do(func() (e error) { rc, e = r.Backend.Open(name); return e })
	return rc, err
}

// OpenRange implements Backend.
func (r *Retry) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := r.do(func() (e error) { rc, e = r.Backend.OpenRange(name, off, n); return e })
	return rc, err
}

// ReadAt implements Backend.
func (r *Retry) ReadAt(name string, off int64, p []byte) error {
	return r.do(func() error { return r.Backend.ReadAt(name, off, p) })
}

// Stat implements Backend.
func (r *Retry) Stat(name string) (int64, error) {
	var n int64
	err := r.do(func() (e error) { n, e = r.Backend.Stat(name); return e })
	return n, err
}

// List implements Backend.
func (r *Retry) List(dir string) ([]string, error) {
	var names []string
	err := r.do(func() (e error) { names, e = r.Backend.List(dir); return e })
	return names, err
}

// Exists implements Backend (no error channel, nothing to retry).
func (r *Retry) Exists(name string) bool { return r.Backend.Exists(name) }

// Remove implements Backend; object DELETE is idempotent.
func (r *Retry) Remove(name string) error {
	return r.do(func() error { return r.Backend.Remove(name) })
}

// Rename implements Backend; forwarded without retry (a rename that failed
// mid-flight is not safely replayable — the source may already have moved).
func (r *Retry) Rename(oldName, newName string) error {
	return r.Backend.Rename(oldName, newName)
}

// RenameSupported forwards the capability of the wrapped backend.
func (r *Retry) RenameSupported() bool { return RenameSupported(r.Backend) }

// ComposeSupported forwards the capability of the wrapped backend.
func (r *Retry) ComposeSupported() bool { return ComposeSupported(r.Backend) }

// Compose implements Composer with retries: a failed compose leaves dst and
// the parts untouched (the Composer contract), so replaying is safe.
func (r *Retry) Compose(dst string, parts ...string) error {
	return r.do(func() error { return Compose(r.Backend, dst, parts...) })
}
