// Capture spools: reusable payload buffers for lazy checkpoint capture.
//
// A lazy save copies each layer's live bytes out of the optimizer into a
// spool the moment the layer is quiescent, then publishes the spool from a
// background writer. Two properties distinguish these spools from the
// one-shot Spool in stream.go: they are *re-openable* (blob publication can
// retry its encode, so the bytes must be replayable), and the memory-backed
// kind is *pooled* (a training run captures the same layer sizes every
// save, so buffers are recycled instead of churned through the allocator).
// Payloads that do not fit under the caller's memory budget fall back to
// unmetered temp files on the local filesystem — scratch space, like
// stream.go's fileSpool, never part of the checkpoint backend.

package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
)

// CaptureSpool holds one captured payload's exact bytes between the moment
// the live state is copied out and the moment a background write consumes
// them. Unlike Spool (whose Reader is one-shot), Open may be called any
// number of times; each call returns an independent reader over the full
// spooled content. Release must not race an open reader.
type CaptureSpool interface {
	io.Writer
	// Len returns the number of bytes written so far.
	Len() int64
	// Open returns a fresh reader over the spooled bytes.
	Open() (io.ReadCloser, error)
	// Release frees the spool's resources — the buffer returns to its pool,
	// a temp file is removed. Idempotent; the spool is unusable afterwards.
	Release() error
}

// BufferPoolStats counts what a pool handed out, for capture accounting.
type BufferPoolStats struct {
	// Spools is the total number of spools handed out (pooled + file).
	Spools int64
	// Reused counts pooled spools satisfied from the free list.
	Reused int64
	// Allocated counts pooled spools that needed a fresh allocation.
	Allocated int64
	// FileSpools counts file-backed fallback spools.
	FileSpools int64
}

// BufferPool recycles capture buffers across saves. Released buffers join a
// bounded free list; PooledSpool picks the smallest buffer that fits (best
// fit keeps a run's few distinct layer sizes from all mapping onto the one
// largest buffer). The pool does not bound memory itself — callers meter
// admission with a parallel.ByteGate and use FileSpool when the gate is
// full.
type BufferPool struct {
	mu    sync.Mutex
	free  [][]byte
	stats BufferPoolStats
}

// maxFreeBuffers bounds the free list; beyond it, released buffers are
// dropped for the allocator to reclaim.
const maxFreeBuffers = 64

// NewBufferPool returns an empty pool.
func NewBufferPool() *BufferPool { return &BufferPool{} }

// Stats returns a snapshot of the pool's counters.
func (p *BufferPool) Stats() BufferPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// PooledSpool returns a memory-backed spool with capacity for size bytes,
// reusing a free buffer when one fits.
func (p *BufferPool) PooledSpool(size int64) CaptureSpool {
	if size < 0 {
		size = 0
	}
	p.mu.Lock()
	best := -1
	for i, b := range p.free {
		if int64(cap(b)) >= size && (best < 0 || cap(p.free[i]) < cap(p.free[best])) {
			best = i
		}
	}
	var buf []byte
	if best >= 0 {
		buf = p.free[best][:0]
		p.free = append(p.free[:best], p.free[best+1:]...)
		p.stats.Reused++
	} else {
		p.stats.Allocated++
	}
	p.stats.Spools++
	p.mu.Unlock()
	if buf == nil {
		buf = make([]byte, 0, size)
	}
	return &pooledSpool{pool: p, buf: buf}
}

// FileSpool returns a temp-file-backed spool for payloads that must not
// count against pooled memory. The file lives on the local filesystem (like
// stream.go's large-merge spool), never on the checkpoint backend.
func (p *BufferPool) FileSpool() (CaptureSpool, error) {
	f, err := os.CreateTemp("", "llmtailor-capture-*")
	if err != nil {
		return nil, fmt.Errorf("storage: capture spool: %w", err)
	}
	p.mu.Lock()
	p.stats.Spools++
	p.stats.FileSpools++
	p.mu.Unlock()
	return &fileCaptureSpool{f: f, path: f.Name()}, nil
}

// put returns a buffer to the free list (or drops it when full).
func (p *BufferPool) put(buf []byte) {
	if buf == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxFreeBuffers {
		p.free = append(p.free, buf[:0])
	}
	p.mu.Unlock()
}

type pooledSpool struct {
	pool     *BufferPool
	buf      []byte
	released bool
}

func (s *pooledSpool) Write(p []byte) (int, error) {
	if s.released {
		return 0, fmt.Errorf("storage: write to released capture spool")
	}
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func (s *pooledSpool) Len() int64 { return int64(len(s.buf)) }

func (s *pooledSpool) Open() (io.ReadCloser, error) {
	if s.released {
		return nil, fmt.Errorf("storage: open released capture spool")
	}
	return io.NopCloser(bytes.NewReader(s.buf)), nil
}

func (s *pooledSpool) Release() error {
	if s.released {
		return nil
	}
	s.released = true
	s.pool.put(s.buf)
	s.buf = nil
	return nil
}

type fileCaptureSpool struct {
	f        *os.File
	path     string
	n        int64
	released bool
}

func (s *fileCaptureSpool) Write(p []byte) (int, error) {
	if s.released {
		return 0, fmt.Errorf("storage: write to released capture spool")
	}
	n, err := s.f.Write(p)
	s.n += int64(n)
	return n, err
}

func (s *fileCaptureSpool) Len() int64 { return s.n }

func (s *fileCaptureSpool) Open() (io.ReadCloser, error) {
	if s.released {
		return nil, fmt.Errorf("storage: open released capture spool")
	}
	return os.Open(s.path)
}

func (s *fileCaptureSpool) Release() error {
	if s.released {
		return nil
	}
	s.released = true
	err := s.f.Close()
	if rmErr := os.Remove(s.path); err == nil {
		err = rmErr
	}
	return err
}
