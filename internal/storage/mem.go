package storage

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory Backend used by tests and fast benchmarks. It is safe
// for concurrent use.
//
// Unlike an object store's flat namespace, Mem models a filesystem: writing
// a/b/c brings directories a and a/b into existence (the dirs set), and
// they persist after their last file is removed — so List over an emptied
// directory returns an empty slice and Exists keeps reporting it, exactly
// like the OS backend. The cross-backend conformance suite pins this.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{files: map[string][]byte{}, dirs: map[string]bool{}} }

func memClean(name string) string { return strings.TrimPrefix(path.Clean("/"+name), "/") }

func memNotExist(op, name string) error {
	return fmt.Errorf("storage: %s %s: %w", op, name, fs.ErrNotExist)
}

// addParents registers every ancestor directory of a path (mirroring the
// MkdirAll the OS backend performs before a write). Callers hold b.mu.
func (b *Mem) addParents(name string) {
	for i, c := range name {
		if c == '/' {
			b.dirs[name[:i]] = true
		}
	}
}

// WriteFile implements Backend.
func (b *Mem) WriteFile(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	clean := memClean(name)
	b.files[clean] = append([]byte(nil), data...)
	b.addParents(clean)
	return nil
}

// ReadFile implements Backend.
func (b *Mem) ReadFile(name string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return nil, memNotExist("read", name)
	}
	return append([]byte(nil), data...), nil
}

// Create implements Backend. The stream accumulates privately and the file
// becomes visible atomically when the writer is closed.
func (b *Mem) Create(name string) (io.WriteCloser, error) {
	return &memWriter{b: b, name: memClean(name)}, nil
}

type memWriter struct {
	b      *Mem
	name   string
	data   []byte
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write %s: stream closed", w.name)
	}
	// append-based growth: the spare capacity of a pointer-free slice is
	// never zeroed, so accumulating large streamed files costs one move
	// per byte instead of bytes.Buffer's zero-then-copy doubling.
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	// Ownership transfer, not a copy: the stream is closed, so nothing
	// can append to (or otherwise mutate) the accumulated bytes again.
	w.b.files[w.name] = w.data
	w.data = nil
	w.b.addParents(w.name)
	return nil
}

// Open implements Backend.
func (b *Mem) Open(name string) (io.ReadCloser, error) {
	data, err := b.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// OpenRange implements Backend.
func (b *Mem) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	b.mu.RLock()
	data, ok := b.files[memClean(name)]
	b.mu.RUnlock()
	if !ok {
		return nil, memNotExist("open", name)
	}
	if err := checkRange(name, off, n, int64(len(data))); err != nil {
		return nil, err
	}
	// Stored slices are never mutated in place (writes always install a
	// fresh slice), so the reader can serve the range without copying.
	return memRange{bytes.NewReader(data[off : off+n])}, nil
}

// memRange is an OpenRange reader that keeps bytes.Reader's Len and
// WriteTo visible (io.NopCloser would hide Len), letting splice sinks
// take the payload in one wide write instead of chunked double-buffering.
type memRange struct{ *bytes.Reader }

func (memRange) Close() error { return nil }

// ReadAt implements Backend.
func (b *Mem) ReadAt(name string, off int64, p []byte) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return memNotExist("read", name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(data)) {
		return fmt.Errorf("storage: read %s@%d+%d: out of range (size %d)", name, off, len(p), len(data))
	}
	copy(p, data[off:])
	return nil
}

// Stat implements Backend.
func (b *Mem) Stat(name string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return 0, memNotExist("stat", name)
	}
	return int64(len(data)), nil
}

// List implements Backend. An existing-but-empty directory (all files
// removed, or only ever created as a parent) lists as an empty slice; a
// directory that never existed is a not-exist error, matching OS.
func (b *Mem) List(dir string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	clean := memClean(dir)
	prefix := clean
	if prefix != "" {
		prefix += "/"
	}
	seen := map[string]bool{}
	for name := range b.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i+1]] = true // directory entry
		} else {
			seen[rest] = true
		}
	}
	for name := range b.dirs {
		if name == clean || !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest+"/"] = true
	}
	if len(seen) == 0 && clean != "" && !b.dirs[clean] {
		if _, isFile := b.files[clean]; isFile {
			return nil, fmt.Errorf("storage: list %s: not a directory", dir)
		}
		return nil, memNotExist("list", dir)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements Backend: file keys, registered directories (empty ones
// included) and the root all exist.
func (b *Mem) Exists(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	clean := memClean(name)
	if clean == "" {
		return true
	}
	if _, ok := b.files[clean]; ok {
		return true
	}
	if b.dirs[clean] {
		return true
	}
	prefix := clean + "/"
	for n := range b.files {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// Rename implements Backend. The move is atomic under the backend mutex:
// no concurrent reader can observe a half-moved tree.
func (b *Mem) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	oc, nc := memClean(oldName), memClean(newName)
	if oc == nc {
		return nil
	}
	_, isFile := b.files[oc]
	isDir := b.dirs[oc]
	oldPrefix := oc + "/"
	var moved []string
	for n := range b.files {
		if strings.HasPrefix(n, oldPrefix) {
			moved = append(moved, n)
		}
	}
	if !isFile && !isDir && len(moved) == 0 {
		return memNotExist("rename", oldName)
	}
	// Mirror os.Rename: replacing a file with a file is fine, clobbering a
	// directory (even an empty one) is not, and neither is renaming a
	// directory over an existing file (ENOTDIR on a real filesystem).
	newPrefix := nc + "/"
	destDir := b.dirs[nc]
	for n := range b.files {
		if strings.HasPrefix(n, newPrefix) {
			destDir = true
		}
	}
	if destDir {
		return fmt.Errorf("storage: rename %s -> %s: destination directory exists", oldName, newName)
	}
	if !isFile {
		if _, clobbersFile := b.files[nc]; clobbersFile {
			return fmt.Errorf("storage: rename %s -> %s: destination is a file, not a directory", oldName, newName)
		}
	}
	if isFile {
		b.files[nc] = b.files[oc]
		delete(b.files, oc)
	}
	for _, n := range moved {
		b.files[nc+n[len(oc):]] = b.files[n]
		delete(b.files, n)
	}
	// Move the directory set: the source tree's dirs re-root under the
	// destination, and the destination's parents come into existence.
	if isDir || len(moved) > 0 {
		var movedDirs []string
		for d := range b.dirs {
			if d == oc || strings.HasPrefix(d, oldPrefix) {
				movedDirs = append(movedDirs, d)
			}
		}
		for _, d := range movedDirs {
			delete(b.dirs, d)
			b.dirs[nc+d[len(oc):]] = true
		}
	}
	b.addParents(nc)
	return nil
}

// Remove implements Backend: the file or directory tree is deleted, parent
// directories stay (matching os.RemoveAll).
func (b *Mem) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	clean := memClean(name)
	delete(b.files, clean)
	delete(b.dirs, clean)
	prefix := clean + "/"
	if clean == "" {
		prefix = ""
	}
	for n := range b.files {
		if strings.HasPrefix(n, prefix) {
			delete(b.files, n)
		}
	}
	for n := range b.dirs {
		if strings.HasPrefix(n, prefix) {
			delete(b.dirs, n)
		}
	}
	return nil
}
