package storage

import (
	"bytes"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory Backend used by tests and fast benchmarks. It is safe
// for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{files: map[string][]byte{}} }

func memClean(name string) string { return strings.TrimPrefix(path.Clean("/"+name), "/") }

// WriteFile implements Backend.
func (b *Mem) WriteFile(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[memClean(name)] = append([]byte(nil), data...)
	return nil
}

// ReadFile implements Backend.
func (b *Mem) ReadFile(name string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return nil, fmt.Errorf("storage: read %s: file does not exist", name)
	}
	return append([]byte(nil), data...), nil
}

// Create implements Backend. The stream accumulates privately and the file
// becomes visible atomically when the writer is closed.
func (b *Mem) Create(name string) (io.WriteCloser, error) {
	return &memWriter{b: b, name: memClean(name)}, nil
}

type memWriter struct {
	b      *Mem
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write %s: stream closed", w.name)
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.b.mu.Lock()
	defer w.b.mu.Unlock()
	w.b.files[w.name] = append([]byte(nil), w.buf.Bytes()...)
	return nil
}

// Open implements Backend.
func (b *Mem) Open(name string) (io.ReadCloser, error) {
	data, err := b.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// OpenRange implements Backend.
func (b *Mem) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	b.mu.RLock()
	data, ok := b.files[memClean(name)]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: open %s: file does not exist", name)
	}
	if err := checkRange(name, off, n, int64(len(data))); err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), data[off:off+n]...))), nil
}

// ReadAt implements Backend.
func (b *Mem) ReadAt(name string, off int64, p []byte) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return fmt.Errorf("storage: read %s: file does not exist", name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(data)) {
		return fmt.Errorf("storage: read %s@%d+%d: out of range (size %d)", name, off, len(p), len(data))
	}
	copy(p, data[off:])
	return nil
}

// Stat implements Backend.
func (b *Mem) Stat(name string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.files[memClean(name)]
	if !ok {
		return 0, fmt.Errorf("storage: stat %s: file does not exist", name)
	}
	return int64(len(data)), nil
}

// List implements Backend.
func (b *Mem) List(dir string) ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	prefix := memClean(dir)
	if prefix != "" {
		prefix += "/"
	}
	seen := map[string]bool{}
	for name := range b.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i+1]] = true // directory entry
		} else {
			seen[rest] = true
		}
	}
	if len(seen) == 0 && prefix != "" {
		return nil, fmt.Errorf("storage: list %s: directory does not exist", dir)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements Backend.
func (b *Mem) Exists(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	clean := memClean(name)
	if _, ok := b.files[clean]; ok {
		return true
	}
	prefix := clean + "/"
	for n := range b.files {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// Rename implements Backend. The move is atomic under the backend mutex:
// no concurrent reader can observe a half-moved tree.
func (b *Mem) Rename(oldName, newName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	oc, nc := memClean(oldName), memClean(newName)
	if oc == nc {
		return nil
	}
	_, isFile := b.files[oc]
	oldPrefix := oc + "/"
	var moved []string
	for n := range b.files {
		if strings.HasPrefix(n, oldPrefix) {
			moved = append(moved, n)
		}
	}
	if !isFile && len(moved) == 0 {
		return fmt.Errorf("storage: rename %s: file does not exist", oldName)
	}
	// Mirror os.Rename: replacing a file with a file is fine, clobbering a
	// directory that has contents is not, and neither is renaming a
	// directory over an existing file (ENOTDIR on a real filesystem).
	newPrefix := nc + "/"
	for n := range b.files {
		if strings.HasPrefix(n, newPrefix) {
			return fmt.Errorf("storage: rename %s -> %s: destination directory exists", oldName, newName)
		}
	}
	if !isFile {
		if _, clobbersFile := b.files[nc]; clobbersFile {
			return fmt.Errorf("storage: rename %s -> %s: destination is a file, not a directory", oldName, newName)
		}
	}
	if isFile {
		b.files[nc] = b.files[oc]
		delete(b.files, oc)
	}
	for _, n := range moved {
		b.files[nc+n[len(oc):]] = b.files[n]
		delete(b.files, n)
	}
	return nil
}

// Remove implements Backend.
func (b *Mem) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	clean := memClean(name)
	delete(b.files, clean)
	prefix := clean + "/"
	for n := range b.files {
		if strings.HasPrefix(n, prefix) {
			delete(b.files, n)
		}
	}
	return nil
}
