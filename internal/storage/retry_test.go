package storage

import (
	"errors"
	"testing"
	"time"
)

// retryStack builds the canonical remote stack — Retry over Meter over a
// flaky ObjStore — with backoff delays billed to the meter's sim clock.
// The store flakes every 2nd PUT and a warm-up PUT (issued below the
// meter, so it charges nothing) burns slot #1: the first metered attempt
// lands on PUT #2 and fails, its retry on PUT #3 and succeeds.
func retryStack(t *testing.T) (*Retry, *Meter, *ObjStore) {
	t.Helper()
	obj := NewObjStore()
	obj.SetFlakeEvery(2)
	if err := obj.WriteFile("warmup", []byte("x")); err != nil {
		t.Fatalf("warm-up put: %v", err)
	}
	m := NewMeter(obj, Lustre())
	r := NewRetry(m, 42)
	r.Sleep = m.AddSimTime
	return r, m, obj
}

// TestRetryMeteringPerAttempt is the satellite regression: a retried PUT
// must re-charge open latency and per-chunk bandwidth on EVERY attempt —
// an uncharged retry would silently flatter the BENCH numbers and the
// cost model. The failed first attempt and the successful second one each
// count one file and one payload's bytes.
func TestRetryMeteringPerAttempt(t *testing.T) {
	r, m, _ := retryStack(t) // first metered PUT flakes, its retry succeeds
	payload := make([]byte, 1<<16)
	if err := r.WriteFile("k", payload); err != nil {
		t.Fatalf("WriteFile through retry: %v", err)
	}
	if r.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", r.Retries())
	}
	st := m.Stats()
	if st.FilesWritten != 2 {
		t.Fatalf("FilesWritten = %d, want 2 (one per attempt)", st.FilesWritten)
	}
	if want := int64(2 * len(payload)); st.BytesWritten != want {
		t.Fatalf("BytesWritten = %d, want %d (payload re-sent on retry)", st.BytesWritten, want)
	}
	// The sim clock carries both attempts' transfer time AND the backoff
	// wait between them.
	twoPuts := 2 * m.Profile.WriteTime(int64(len(payload)))
	if st.SimTime <= twoPuts {
		t.Fatalf("SimTime = %v, want > %v (two attempts plus backoff)", st.SimTime, twoPuts)
	}
}

// TestRetryCreateReplaysWholeObject pins the stream contract: Create
// buffers and replays as an idempotent whole-object PUT, so a transient
// failure at publish re-sends (and re-charges) the entire payload.
func TestRetryCreateReplaysWholeObject(t *testing.T) {
	r, m, _ := retryStack(t)
	w, err := r.Create("s/obj")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Write(make([]byte, 1024)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n, err := r.Stat("s/obj"); err != nil || n != 4096 {
		t.Fatalf("Stat = %d, %v; want 4096", n, err)
	}
	st := m.Stats()
	if st.FilesWritten != 2 || st.BytesWritten != 2*4096 {
		t.Fatalf("stats = %d files / %d bytes, want 2 files / %d bytes", st.FilesWritten, st.BytesWritten, 2*4096)
	}
}

// TestMeterChargesFailedWrite pins the Meter half of the fix in
// isolation: a PUT that fails still moved its bytes, so it is charged.
func TestMeterChargesFailedWrite(t *testing.T) {
	obj := NewObjStore()
	obj.SetFlakeEvery(1)
	m := NewMeter(obj, Lustre())
	if err := m.WriteFile("k", make([]byte, 512)); err == nil {
		t.Fatalf("flaked write succeeded")
	}
	st := m.Stats()
	if st.FilesWritten != 1 || st.BytesWritten != 512 {
		t.Fatalf("failed write uncharged: %d files / %d bytes", st.FilesWritten, st.BytesWritten)
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	obj := NewObjStore()
	obj.SetFlakeEvery(1) // every PUT fails
	r := NewRetry(obj, 1)
	r.Sleep = func(time.Duration) {}
	err := r.WriteFile("k", []byte("v"))
	if err == nil {
		t.Fatalf("write through an always-flaky store succeeded")
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted retries must surface the transient cause, got %v", err)
	}
	if got := r.Retries(); got != DefaultRetryAttempts-1 {
		t.Fatalf("Retries = %d, want %d", got, DefaultRetryAttempts-1)
	}
}

// TestRetryLeavesInjectedFaultsAlone: crash-exploration faults are NOT
// transient — retrying them would hide crash points from the exploration
// loop.
func TestRetryLeavesInjectedFaultsAlone(t *testing.T) {
	f := NewFault(NewObjStore())
	f.FailAt(1)
	r := NewRetry(f, 1)
	r.Sleep = func(time.Duration) {}
	err := r.WriteFile("k", []byte("v"))
	if !IsInjected(err) {
		t.Fatalf("want the injected fault surfaced, got %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("injected fault was retried %d times", r.Retries())
	}
}

// TestRetryBackoffDeterministic pins the seeded jitter schedule: two
// wrappers with the same seed bill identical backoff to the sim clock.
func TestRetryBackoffDeterministic(t *testing.T) {
	run := func() time.Duration {
		var total time.Duration
		obj := NewObjStore()
		obj.SetFlakeEvery(2)
		r := NewRetry(obj, 99)
		r.Sleep = func(d time.Duration) { total += d }
		for i := 0; i < 16; i++ {
			if err := r.WriteFile("k", []byte("v")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return total
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("backoff schedules diverge: %v vs %v", a, b)
	}
}

func TestRetryErrorChainStaysInspectable(t *testing.T) {
	// IsTransient answers through wrapped chains — a retry loop above a
	// Meter above an ObjStore still classifies correctly.
	obj := NewObjStore()
	obj.SetFlakeEvery(1)
	m := NewMeter(obj, LocalNVMe())
	err := m.WriteFile("k", []byte("v"))
	if !IsTransient(err) {
		t.Fatalf("transient lost through Meter: %v", err)
	}
	if IsTransient(errors.New("other")) {
		t.Fatalf("IsTransient(other) = true")
	}
}
