package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestBlobStorePutGetRoundtrip(t *testing.T) {
	for name, b := range map[string]Backend{"mem": NewMem()} {
		t.Run(name, func(t *testing.T) {
			s := NewBlobStore(b, "run/objects")
			data := []byte("layer payload bytes")
			digest, written, err := s.PutBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if !written {
				t.Fatal("first put reported a dedup hit")
			}
			if !ValidDigest(digest) {
				t.Fatalf("digest %q malformed", digest)
			}
			if !s.Has(digest) {
				t.Fatal("blob missing after put")
			}
			if size, err := s.Stat(digest); err != nil || size != int64(len(data)) {
				t.Fatalf("stat = %d, %v", size, err)
			}
			rc, err := s.Open(digest)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if _, err := got.ReadFrom(rc); err != nil {
				t.Fatal(err)
			}
			rc.Close()
			if !bytes.Equal(got.Bytes(), data) {
				t.Fatalf("roundtrip = %q", got.Bytes())
			}
			// Fan-out layout: two-char prefix directory.
			if want := "run/objects/" + digest[:2] + "/" + digest; s.Path(digest) != want {
				t.Fatalf("path = %q, want %q", s.Path(digest), want)
			}

			// Idempotent: the second put moves zero bytes.
			_, written, err = s.PutBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if written {
				t.Fatal("second put rewrote the blob")
			}
		})
	}
}

func TestBlobWriterRejectsDigestMismatch(t *testing.T) {
	s := NewBlobStore(NewMem(), "objects")
	w, err := s.Writer()
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("content"))
	wrong := DigestBytes([]byte("other"))
	if _, err := w.Commit(wrong); err == nil {
		t.Fatal("mismatched digest accepted")
	}
	if s.Has(wrong) {
		t.Fatal("corrupt blob published")
	}
	// The failed commit leaves no staging residue either.
	if _, staging, _, _ := s.List(); len(staging) != 0 {
		t.Fatalf("staging residue: %v", staging)
	}
}

func TestBlobStoreRejectsMalformedDigests(t *testing.T) {
	s := NewBlobStore(NewMem(), "objects")
	for _, d := range []string{"", "zz", strings.Repeat("g", 64), strings.Repeat("A", 64), "../escape"} {
		if s.Has(d) {
			t.Errorf("Has(%q) = true", d)
		}
		if _, _, err := s.Put(d, bytes.NewReader(nil)); err == nil {
			t.Errorf("Put(%q) accepted", d)
		}
		if _, err := s.Open(d); err == nil {
			t.Errorf("Open(%q) accepted", d)
		}
	}
}

func TestBlobStoreListAndSweep(t *testing.T) {
	b := NewMem()
	s := NewBlobStore(b, "run/objects")
	d1, _, err := s.PutBytes([]byte("referenced"))
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := s.PutBytes([]byte("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	// Crashed-put residue and a stray entry.
	b.WriteFile("run/objects/.stage/put-99", []byte("partial"))
	b.WriteFile("run/objects/notes.txt", []byte("x"))

	blobs, staging, stray, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 || len(staging) != 1 || len(stray) != 1 {
		t.Fatalf("list = %d blobs, %v staging, %v stray", len(blobs), staging, stray)
	}

	rep, err := s.Sweep(map[string]int{d1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || len(rep.RemovedBlobs) != 1 || rep.RemovedBlobs[0] != d2 {
		t.Fatalf("sweep = %+v", rep)
	}
	if len(rep.RemovedStaging) != 1 {
		t.Fatalf("staging survived sweep: %+v", rep)
	}
	if rep.BytesFreed != int64(len("garbage")) {
		t.Fatalf("bytes freed = %d", rep.BytesFreed)
	}
	if !s.Has(d1) {
		t.Fatal("referenced blob swept")
	}
	if s.Has(d2) {
		t.Fatal("unreferenced blob survived")
	}
	// The stray file is never touched.
	if !b.Exists("run/objects/notes.txt") {
		t.Fatal("sweep removed a stray entry")
	}
	// Sweeping an empty/absent store is a no-op.
	empty := NewBlobStore(b, "nowhere/objects")
	if rep, err := empty.Sweep(nil); err != nil || rep.Kept != 0 {
		t.Fatalf("empty sweep = %+v, %v", rep, err)
	}
}

func TestBlobStoreConcurrentSameDigestPut(t *testing.T) {
	s := NewBlobStore(NewMem(), "objects")
	data := []byte("shared content")
	digest := DigestBytes(data)
	// Two writers stream the same content concurrently; both commits
	// succeed (one wins the rename, one detects the existing blob) and the
	// stored bytes are intact.
	w1, err := s.Writer()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Writer()
	if err != nil {
		t.Fatal(err)
	}
	w1.Write(data)
	w2.Write(data)
	won1, err := w1.Commit(digest)
	if err != nil {
		t.Fatal(err)
	}
	won2, err := w2.Commit(digest)
	if err != nil {
		t.Fatal(err)
	}
	if won1 == won2 {
		t.Fatalf("exactly one writer should win: %v %v", won1, won2)
	}
	rc, err := s.Open(digest)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(rc)
	rc.Close()
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("blob corrupted by concurrent puts")
	}
	if _, staging, _, _ := s.List(); len(staging) != 0 {
		t.Fatalf("staging residue after both commits: %v", staging)
	}
}

func TestBlobStoreOnOSBackend(t *testing.T) {
	b, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewBlobStore(b, "objects")
	digest, written, err := s.PutBytes([]byte("os-backed blob"))
	if err != nil || !written {
		t.Fatalf("put = %v, %v", written, err)
	}
	rc, err := s.OpenRange(digest, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(rc)
	rc.Close()
	if got.String() != "backed" {
		t.Fatalf("range read = %q", got.String())
	}
}
