package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the error every injected fault surfaces as. Tests match it
// with errors.Is to distinguish injected crashes from genuine bugs.
var ErrInjected = errors.New("storage: injected fault")

// IsInjected reports whether an error chain contains an injected fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Fault wraps a Backend and injects a failure at the K-th mutating
// operation, emulating a process crash mid-checkpoint. Counted fault points
// are, in backend call order:
//
//   - WriteFile (optionally torn: a prefix of the data lands on disk),
//   - Create (the open itself),
//   - each chunk Write on a stream returned by Create (optionally torn:
//     a prefix of the chunk lands),
//   - Close of a created stream,
//   - Rename,
//   - Remove, and
//   - Compose (multipart completion).
//
// Once the armed fault fires, the wrapper enters the crashed state: every
// subsequent mutating operation fails immediately with ErrInjected, exactly
// as if the process had died — later writes of the same logical save can
// not "heal" the torn state. Reads keep working so recovery code can be
// exercised over the same wrapper without rebuilding it; call Reset to
// rearm, or read through the wrapped Backend directly.
//
// A Fault with no armed point is transparent and merely counts fault
// points: run the workload once unarmed, read Ops, then replay with
// FailAt(k) for k = 1..Ops to explore every crash point systematically.
type Fault struct {
	Backend Backend

	mu      sync.Mutex
	ops     int64 // fault points observed since the last Reset
	failAt  int64 // 1-based fault point to fail at; 0 = never
	torn    bool  // injected write faults first land a prefix of the data
	crashed bool
	// shortReads caps every stream Read at a few bytes, verifying readers
	// never assume a full buffer per call. It is adversarial, not a fault.
	shortReads bool
}

// NewFault wraps a backend with an unarmed fault injector.
func NewFault(b Backend) *Fault { return &Fault{Backend: b} }

// FailAt arms the injector to fail at the k-th fault point from now
// (1-based) and clears the counter and crashed state. k <= 0 disarms.
func (f *Fault) FailAt(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = int64(k)
	f.ops = 0
	f.crashed = false
}

// SetTorn selects whether injected write faults leave a torn prefix of the
// failing data behind (the realistic partially-flushed-page crash) instead
// of failing cleanly before any byte lands.
func (f *Fault) SetTorn(torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.torn = torn
}

// SetShortReads makes every stream returned by Open deliver at most a few
// bytes per Read call.
func (f *Fault) SetShortReads(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortReads = on
}

// Ops returns the number of fault points observed since the last FailAt or
// Reset. Run the workload unarmed and use this as the exploration bound N.
func (f *Fault) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the armed fault has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reset disarms the injector and clears the counter and crashed state.
func (f *Fault) Reset() { f.FailAt(0) }

// point registers one fault point. It returns (fire, torn): fire when this
// exact point is the armed one (or the backend has already crashed).
func (f *Fault) point() (bool, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, false
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		f.crashed = true
		return true, f.torn
	}
	return false, false
}

func injectedf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInjected)...)
}

// WriteFile implements Backend; one fault point, torn-aware.
func (f *Fault) WriteFile(name string, data []byte) error {
	if fire, torn := f.point(); fire {
		if torn && len(data) > 0 {
			f.Backend.WriteFile(name, data[:(len(data)+1)/2])
		}
		return injectedf("storage: write %s", name)
	}
	return f.Backend.WriteFile(name, data)
}

// Create implements Backend; the open is one fault point and the returned
// stream registers one per chunk Write plus one at Close.
func (f *Fault) Create(name string) (io.WriteCloser, error) {
	if fire, _ := f.point(); fire {
		return nil, injectedf("storage: create %s", name)
	}
	w, err := f.Backend.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWriter{f: f, name: name, w: w}, nil
}

type faultWriter struct {
	f    *Fault
	name string
	w    io.WriteCloser
	dead bool // a clean fault cut this stream: no further byte reached the wire
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if fire, torn := w.f.point(); fire {
		n := 0
		if torn && len(p) > 0 {
			// A torn final chunk: half of it reaches the backend before
			// the crash.
			n, _ = w.w.Write(p[:(len(p)+1)/2])
		} else {
			w.dead = true
		}
		return n, injectedf("storage: write %s", w.name)
	}
	return w.w.Write(p)
}

func (w *faultWriter) Close() error {
	if fire, _ := w.f.point(); fire {
		// A crash at the close itself models a request already in flight:
		// the backend may still apply it (on buffering backends Close IS
		// the publish). But a stream a clean fault already cut mid-write
		// never sent a complete request — forwarding the close would let a
		// buffering backend publish the partial buffer at the final name,
		// which an atomic-PUT store can not do. Such a stream just dies.
		if !w.dead {
			w.w.Close()
		}
		return injectedf("storage: close %s", w.name)
	}
	return w.w.Close()
}

// Open implements Backend; reads are never fault points, but honour the
// short-read mode.
func (f *Fault) Open(name string) (io.ReadCloser, error) {
	r, err := f.Backend.Open(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	short := f.shortReads
	f.mu.Unlock()
	if short {
		return &shortReader{r: r}, nil
	}
	return r, nil
}

// OpenRange implements Backend. Like Open, sectioned reads are never fault
// points (a crash mid-read is indistinguishable from a crash before the
// next durable write), but each chunk honours the short-read mode so raw
// extent copies are exercised against partial Read returns.
func (f *Fault) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	r, err := f.Backend.OpenRange(name, off, n)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	short := f.shortReads
	f.mu.Unlock()
	if short {
		return &shortReader{r: r}, nil
	}
	return r, nil
}

// shortReader delivers at most 7 bytes per Read.
type shortReader struct{ r io.ReadCloser }

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > 7 {
		p = p[:7]
	}
	return s.r.Read(p)
}

func (s *shortReader) Close() error { return s.r.Close() }

// Rename implements Backend; one fault point (failing before the move, the
// staged tree stays un-published).
func (f *Fault) Rename(oldName, newName string) error {
	if fire, _ := f.point(); fire {
		return injectedf("storage: rename %s -> %s", oldName, newName)
	}
	return f.Backend.Rename(oldName, newName)
}

// Remove implements Backend; one fault point.
func (f *Fault) Remove(name string) error {
	if fire, _ := f.point(); fire {
		return injectedf("storage: remove %s", name)
	}
	return f.Backend.Remove(name)
}

// RenameSupported forwards the capability of the wrapped backend, so the
// commit protocol picks the same publication mode with or without fault
// injection.
func (f *Fault) RenameSupported() bool { return RenameSupported(f.Backend) }

// ComposeSupported forwards the capability of the wrapped backend.
func (f *Fault) ComposeSupported() bool { return ComposeSupported(f.Backend) }

// Compose implements Composer; one fault point. A fired fault fails before
// the backend mutates anything — Compose is atomic on the backend, so the
// only crash outcomes are "nothing happened" and "dst fully published",
// which is exactly the guarantee multipart recovery leans on.
func (f *Fault) Compose(dst string, parts ...string) error {
	if fire, _ := f.point(); fire {
		return injectedf("storage: compose %s", dst)
	}
	return Compose(f.Backend, dst, parts...)
}

// ReadFile implements Backend (never a fault point).
func (f *Fault) ReadFile(name string) ([]byte, error) { return f.Backend.ReadFile(name) }

// ReadAt implements Backend (never a fault point).
func (f *Fault) ReadAt(name string, off int64, p []byte) error {
	return f.Backend.ReadAt(name, off, p)
}

// Stat implements Backend.
func (f *Fault) Stat(name string) (int64, error) { return f.Backend.Stat(name) }

// List implements Backend.
func (f *Fault) List(dir string) ([]string, error) { return f.Backend.List(dir) }

// Exists implements Backend.
func (f *Fault) Exists(name string) bool { return f.Backend.Exists(name) }

// NewSpool delegates to the wrapped backend. Spool traffic is staging
// scratch, not durable I/O: a crash while spooling is indistinguishable
// from a crash at the first durable write of the spooled payload, so
// spools carry no fault points of their own.
func (f *Fault) NewSpool() (Spool, error) { return NewSpool(f.Backend) }
