package storage

import (
	"errors"
	"io"
	"testing"
)

func TestRenameFileAndTree(t *testing.T) {
	for _, mk := range []func(t *testing.T) Backend{
		func(t *testing.T) Backend { return NewMem() },
		func(t *testing.T) Backend {
			b, err := NewOS(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	} {
		b := mk(t)
		// File rename, including replace-over-existing.
		b.WriteFile("a", []byte("one"))
		b.WriteFile("dst", []byte("stale"))
		if err := b.Rename("a", "dst"); err != nil {
			t.Fatal(err)
		}
		if got, _ := b.ReadFile("dst"); string(got) != "one" {
			t.Fatalf("renamed file = %q", got)
		}
		if b.Exists("a") {
			t.Fatal("source survived rename")
		}
		// Directory tree rename.
		b.WriteFile("d.tmp/x", []byte("1"))
		b.WriteFile("d.tmp/sub/y", []byte("2"))
		if err := b.Rename("d.tmp", "d"); err != nil {
			t.Fatal(err)
		}
		if got, _ := b.ReadFile("d/sub/y"); string(got) != "2" {
			t.Fatalf("tree rename lost file: %q", got)
		}
		if b.Exists("d.tmp") {
			t.Fatal("staging dir survived rename")
		}
		// Clobbering a non-empty directory fails.
		b.WriteFile("e.tmp/x", []byte("1"))
		b.WriteFile("e/occupied", []byte("2"))
		if err := b.Rename("e.tmp", "e"); err == nil {
			t.Fatal("rename over non-empty dir accepted")
		}
		// Missing source fails.
		if err := b.Rename("ghost", "anything"); err == nil {
			t.Fatal("rename of missing source accepted")
		}
	}
}

func TestFaultCountsAndFailsAtEveryPoint(t *testing.T) {
	workload := func(f *Fault) error {
		if err := f.WriteFile("a", []byte("aaaa")); err != nil {
			return err
		}
		w, err := f.Create("b")
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if _, err := w.Write([]byte("chunk")); err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		if err := f.Rename("b", "c"); err != nil {
			return err
		}
		return f.Remove("a")
	}

	f := NewFault(NewMem())
	if err := workload(f); err != nil {
		t.Fatal(err)
	}
	n := f.Ops()
	// WriteFile + Create + 3 chunks + Close + Rename + Remove = 8.
	if n != 8 {
		t.Fatalf("fault points = %d, want 8", n)
	}
	for k := 1; k <= int(n); k++ {
		f := NewFault(NewMem())
		f.FailAt(k)
		err := workload(f)
		if !IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}
		if !f.Crashed() {
			t.Fatalf("k=%d: not crashed", k)
		}
		// Crashed state is sticky: later mutations fail too.
		if err := f.WriteFile("late", []byte("x")); !IsInjected(err) {
			t.Fatalf("k=%d: post-crash write err = %v", k, err)
		}
	}
	// k beyond the workload never fires.
	f = NewFault(NewMem())
	f.FailAt(int(n) + 1)
	if err := workload(f); err != nil {
		t.Fatal(err)
	}
	if f.Crashed() {
		t.Fatal("fault beyond workload fired")
	}
}

func TestFaultTornWrites(t *testing.T) {
	base := NewMem()
	f := NewFault(base)
	f.SetTorn(true)
	f.FailAt(1)
	if err := f.WriteFile("t", []byte("0123456789")); !IsInjected(err) {
		t.Fatalf("err = %v", err)
	}
	got, err := base.ReadFile("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= 10 || string(got) != "01234" {
		t.Fatalf("torn write left %q", got)
	}

	// Torn final chunk on a stream.
	base = NewMem()
	f = NewFault(base)
	f.SetTorn(true)
	f.FailAt(3) // Create, chunk 1, then tear chunk 2
	w, err := f.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("BBBB")); !IsInjected(err) {
		t.Fatalf("err = %v", err)
	}
	w.Close()
	// Mem streams publish on Close; the underlying memWriter got AAAA+BB
	// but close-after-crash is itself a fault point, so nothing newer can
	// land. The durable observation: no complete "AAAABBBB" exists.
	if got, err := base.ReadFile("s"); err == nil && string(got) == "AAAABBBB" {
		t.Fatal("torn stream produced the full content")
	}
}

// Mem must mirror os.Rename's refusal to move a directory over an existing
// file — the crash-consistency explorations run on Mem and would otherwise
// accept protocol bugs a real filesystem rejects with ENOTDIR.
func TestMemRenameDirOverFileFails(t *testing.T) {
	b := NewMem()
	if err := b.WriteFile("dst", []byte("file")); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile("d.tmp/f", []byte("staged")); err != nil {
		t.Fatal(err)
	}
	if err := b.Rename("d.tmp", "dst"); err == nil {
		t.Fatal("renamed a directory over an existing file")
	}
	if data, err := b.ReadFile("dst"); err != nil || string(data) != "file" {
		t.Fatalf("destination file damaged: %q, %v", data, err)
	}
	if _, err := b.ReadFile("d.tmp/f"); err != nil {
		t.Fatalf("source tree damaged: %v", err)
	}
	// File-over-file replacement still works.
	if err := b.WriteFile("p.tmp", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := b.Rename("p.tmp", "dst"); err != nil {
		t.Fatalf("file-over-file rename: %v", err)
	}
}

func TestFaultShortReads(t *testing.T) {
	base := NewMem()
	base.WriteFile("f", []byte("a long enough payload to need several reads"))
	f := NewFault(base)
	f.SetShortReads(true)
	r, err := f.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 64)
	n, _ := r.Read(buf)
	if n > 7 {
		t.Fatalf("short read returned %d bytes", n)
	}
	all, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n])+string(all) != "a long enough payload to need several reads" {
		t.Fatal("short reads corrupted content")
	}
}

func TestFaultResetRearms(t *testing.T) {
	f := NewFault(NewMem())
	f.FailAt(1)
	if err := f.WriteFile("a", nil); !IsInjected(err) {
		t.Fatal("armed fault did not fire")
	}
	f.Reset()
	if err := f.WriteFile("a", []byte("x")); err != nil {
		t.Fatalf("reset fault still firing: %v", err)
	}
	if f.Ops() != 1 {
		t.Fatalf("ops after reset = %d", f.Ops())
	}
	if !errors.Is(injectedf("wrap"), ErrInjected) {
		t.Fatal("injectedf does not wrap ErrInjected")
	}
}
