package storage

import (
	"strings"
	"testing"
)

func testDigest(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func TestRefIndexAppendReadEntries(t *testing.T) {
	b := NewMem()
	ix := NewRefIndex(b, "run/objects")
	if ix.Exists() {
		t.Fatal("index should not exist before the first append")
	}
	if gen, err := ix.NextGeneration(); err != nil || gen != 1 {
		t.Fatalf("next generation of empty index = %d, %v", gen, err)
	}
	recs := []*RefRecord{
		{Version: 1, Key: "checkpoint-100", Step: 100, Generation: 1,
			Digests: []string{testDigest(0), testDigest(1)}},
		{Version: 1, Key: "checkpoint-200", Step: 200, Generation: 2,
			Digests: []string{testDigest(1), testDigest(1), testDigest(2)}},
	}
	for _, r := range recs {
		if err := ix.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	entries, staging, foreign, err := ix.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || len(staging) != 0 || len(foreign) != 0 {
		t.Fatalf("entries=%v staging=%v foreign=%v", entries, staging, foreign)
	}
	if entries[0].Key != "checkpoint-100" || entries[0].Generation != 1 ||
		entries[1].Key != "checkpoint-200" || entries[1].Generation != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	got, err := ix.Read(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	// Digests come back sorted and de-duplicated.
	if len(got.Digests) != 2 || got.Digests[0] != testDigest(1) || got.Digests[1] != testDigest(2) {
		t.Fatalf("digests = %v", got.Digests)
	}
	if got.Step != 200 {
		t.Fatalf("step = %d", got.Step)
	}
	if gen, err := ix.NextGeneration(); err != nil || gen != 3 {
		t.Fatalf("next generation = %d, %v", gen, err)
	}
	if err := ix.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	// Removing twice converges.
	if err := ix.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	entries, _, _, _ = ix.Entries()
	if len(entries) != 1 || entries[0].Key != "checkpoint-200" {
		t.Fatalf("entries after remove = %+v", entries)
	}
}

func TestRefIndexRejectsMalformed(t *testing.T) {
	ix := NewRefIndex(NewMem(), "objects")
	bad := []*RefRecord{
		{Key: "", Generation: 1},
		{Key: "a/b", Generation: 1},
		{Key: "k.tmp", Generation: 1},
		{Key: "k", Generation: 0},
		{Key: "k", Generation: 1, Digests: []string{"nope"}},
	}
	for i, r := range bad {
		if err := ix.Append(r); err == nil {
			t.Errorf("record %d accepted: %+v", i, r)
		}
	}
}

// A record whose content disagrees with its file name (renamed aside, or
// bit-flipped key/generation) must fail Read rather than misattribute pins.
func TestRefIndexReadValidatesNameBinding(t *testing.T) {
	b := NewMem()
	ix := NewRefIndex(b, "objects")
	if err := ix.Append(&RefRecord{Key: "checkpoint-1", Generation: 1, Digests: []string{testDigest(0)}}); err != nil {
		t.Fatal(err)
	}
	entries, _, _, _ := ix.Entries()
	data, _ := b.ReadFile("objects/refs/" + entries[0].Name)
	if err := b.WriteFile("objects/refs/"+recordName(7, "checkpoint-9"), data); err != nil {
		t.Fatal(err)
	}
	entries, _, _, _ = ix.Entries()
	var bound RefEntry
	for _, e := range entries {
		if e.Generation == 7 {
			bound = e
		}
	}
	if _, err := ix.Read(bound); err == nil {
		t.Fatal("misnamed record accepted")
	}
	// Truncated JSON fails too.
	if err := b.WriteFile("objects/refs/"+entries[0].Name, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Read(entries[0]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// Entries classifies crashed-append residue and foreign names without
// touching them.
func TestRefIndexEntriesClassification(t *testing.T) {
	b := NewMem()
	ix := NewRefIndex(b, "objects")
	if err := ix.Append(&RefRecord{Key: "checkpoint-1", Generation: 1}); err != nil {
		t.Fatal(err)
	}
	b.WriteFile("objects/refs/gen-000000000002-checkpoint-2.ref.tmp", []byte("{"))
	b.WriteFile("objects/refs/README", []byte("external"))
	b.WriteFile("objects/refs/gen-zz-x.ref", []byte("{}"))
	entries, staging, foreign, err := ix.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(staging) != 1 || len(foreign) != 2 {
		t.Fatalf("entries=%v staging=%v foreign=%v", entries, staging, foreign)
	}
	if err := ix.RemoveStaging(staging[0]); err != nil {
		t.Fatal(err)
	}
	if _, s, _, _ := ix.Entries(); len(s) != 0 {
		t.Fatal("staging residue survived")
	}
}

// A crash at any fault point of an append leaves either no record or a
// whole record — never a torn one — and the retry converges.
func TestRefIndexAppendCrashConsistent(t *testing.T) {
	rec := &RefRecord{Key: "checkpoint-5", Generation: 3, Digests: []string{testDigest(2)}}
	probe := NewFault(NewMem())
	if err := NewRefIndex(probe, "objects").Append(rec); err != nil {
		t.Fatal(err)
	}
	n := int(probe.Ops())
	if n < 2 {
		t.Fatalf("suspiciously few fault points: %d", n)
	}
	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := NewMem()
			f := NewFault(base)
			f.SetTorn(torn)
			ix := NewRefIndex(base, "objects")
			f.FailAt(k)
			if err := NewRefIndex(f, "objects").Append(rec); !IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}
			entries, _, _, err := ix.Entries()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				got, err := ix.Read(e)
				if err != nil {
					t.Fatalf("k=%d torn=%v: published record torn: %v", k, torn, err)
				}
				if got.Key != rec.Key || len(got.Digests) != 1 {
					t.Fatalf("k=%d torn=%v: record content %+v", k, torn, got)
				}
			}
			// Retry on the durable state converges to exactly one record.
			if err := ix.Append(rec); err != nil {
				t.Fatal(err)
			}
			entries, _, _, _ = ix.Entries()
			if len(entries) != 1 {
				t.Fatalf("k=%d torn=%v: %d records after retry", k, torn, len(entries))
			}
		}
	}
}

func TestSweepDigestsExaminesOnlyCandidates(t *testing.T) {
	b := NewMem()
	store := NewBlobStore(b, "objects")
	var digests []string
	for i := 0; i < 8; i++ {
		d, _, err := store.PutBytes([]byte{byte(i), byte(i >> 1), byte(i >> 2)})
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	pins := map[string]int{digests[0]: 1}
	candidates := []string{digests[0], digests[1], digests[2], testDigest(3)}
	rep, err := store.SweepDigests(candidates, pins, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every candidate counts as examined — pinned and already-gone ones
	// included — so the generational and full modes report comparably.
	if rep.Kept != 1 || len(rep.RemovedBlobs) != 2 || rep.Examined != 4 {
		t.Fatalf("sweep = %+v", rep)
	}
	if !store.Has(digests[0]) || store.Has(digests[1]) || store.Has(digests[2]) {
		t.Fatal("sweep removed the wrong blobs")
	}
	// Non-candidates are untouched, however unreferenced.
	for _, d := range digests[3:] {
		if !store.Has(d) {
			t.Fatalf("non-candidate %s swept", d)
		}
	}
	// Dry run examines without removing.
	rep, err = store.SweepDigests([]string{digests[3]}, nil, true, nil)
	if err != nil || len(rep.RemovedBlobs) != 1 || !store.Has(digests[3]) {
		t.Fatalf("dry run = %+v, %v (blob present: %v)", rep, err, store.Has(digests[3]))
	}
	if _, err := store.SweepDigests([]string{"bogus"}, nil, false, nil); err == nil {
		t.Fatal("invalid candidate digest accepted")
	}
}

// Two-phase removal: trash hides the blob, restore brings it back (or
// drops the duplicate when it was re-published meanwhile), purge is
// final; a recheck that re-pins a trashed digest rescues it.
func TestTrashRestorePurge(t *testing.T) {
	b := NewMem()
	store := NewBlobStore(b, "objects")
	d1, _, err := store.PutBytes([]byte("payload one"))
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := store.PutBytes([]byte("payload two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Trash(d1); err != nil {
		t.Fatal(err)
	}
	if store.Has(d1) {
		t.Fatal("trashed blob still visible")
	}
	if trash, _ := store.ListTrash(); len(trash) != 1 || trash[0].Digest != d1 {
		t.Fatalf("trash = %v", trash)
	}
	if err := store.Restore(d1); err != nil {
		t.Fatal(err)
	}
	if !store.Has(d1) {
		t.Fatal("restore did not bring the blob back")
	}
	// Restore after a racing re-publish: drop the trash copy, keep the blob.
	if err := store.Trash(d1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.PutBytes([]byte("payload one")); err != nil {
		t.Fatal(err)
	}
	if err := store.Restore(d1); err != nil {
		t.Fatal(err)
	}
	if !store.Has(d1) {
		t.Fatal("blob lost after re-publish restore")
	}
	if trash, _ := store.ListTrash(); len(trash) != 0 {
		t.Fatalf("trash residue: %v", trash)
	}
	// SweepRecheck with a recheck that re-pins d2 restores it.
	rep, err := store.SweepRecheck(map[string]int{d1: 1}, func(trashed []string) (map[string]int, error) {
		return map[string]int{d2: 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Restored) != 1 || rep.Restored[0] != d2 || len(rep.RemovedBlobs) != 0 {
		t.Fatalf("sweep = %+v", rep)
	}
	if !store.Has(d1) || !store.Has(d2) {
		t.Fatal("recheck-pinned blob was not restored")
	}
}

// The refs directory under the store root is index territory: List must
// not report it as stray.
func TestBlobStoreListSkipsRefsDir(t *testing.T) {
	b := NewMem()
	store := NewBlobStore(b, "objects")
	if _, _, err := store.PutBytes([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	ix := NewRefIndex(b, "objects")
	if err := ix.Append(&RefRecord{Key: "checkpoint-1", Generation: 1}); err != nil {
		t.Fatal(err)
	}
	blobs, staging, stray, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 || len(staging) != 0 || len(stray) != 0 {
		t.Fatalf("blobs=%v staging=%v stray=%v", blobs, staging, stray)
	}
}
