package storage

import (
	"bytes"
	"io"
	"testing"
)

// streamCases runs streaming conformance over both backends.
func streamCases(t *testing.T, mk func(t *testing.T) Backend) {
	t.Helper()

	t.Run("create-chunked-then-open", func(t *testing.T) {
		b := mk(t)
		w, err := b.Create("run/ckpt/model.ltsf")
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		for i := 0; i < 10; i++ {
			chunk := bytes.Repeat([]byte{byte('a' + i)}, 100)
			want.Write(chunk)
			if _, err := w.Write(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := b.Open("run/ckpt/model.ltsf")
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("streamed roundtrip: got %d bytes, want %d", len(got), want.Len())
		}
		// The streamed file is indistinguishable from a WriteFile one.
		whole, err := b.ReadFile("run/ckpt/model.ltsf")
		if err != nil || !bytes.Equal(whole, want.Bytes()) {
			t.Fatalf("ReadFile after Create: %v", err)
		}
	})

	t.Run("create-replaces", func(t *testing.T) {
		b := mk(t)
		b.WriteFile("f", []byte("old contents, longer than the new ones"))
		w, _ := b.Create("f")
		w.Write([]byte("new"))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, _ := b.ReadFile("f")
		if string(got) != "new" {
			t.Fatalf("got %q", got)
		}
	})

	t.Run("open-missing", func(t *testing.T) {
		b := mk(t)
		if _, err := b.Open("nope"); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestOSBackendStreaming(t *testing.T) {
	streamCases(t, func(t *testing.T) Backend { return newTestOSBackend(t) })
}

func TestMemBackendStreaming(t *testing.T) {
	streamCases(t, func(t *testing.T) Backend { return NewMem() })
}

func TestMeterStreaming(t *testing.T) {
	streamCases(t, func(t *testing.T) Backend { return NewMeter(NewMem(), Lustre()) })
}

// A streamed write/read must be charged exactly like a whole-file one of
// the same size: one file, same bytes, same simulated time.
func TestMeterStreamChargesMatchWholeFile(t *testing.T) {
	p := Lustre()
	whole := NewMeter(NewMem(), p)
	if err := whole.WriteFile("f", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := whole.ReadFile("f"); err != nil {
		t.Fatal(err)
	}

	streamed := NewMeter(NewMem(), p)
	w, err := streamed.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := streamed.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	r.Close()

	a, b := whole.Stats(), streamed.Stats()
	if a.FilesWritten != b.FilesWritten || a.FilesRead != b.FilesRead {
		t.Fatalf("file counts differ: %+v vs %+v", a, b)
	}
	if a.BytesWritten != b.BytesWritten || a.BytesRead != b.BytesRead {
		t.Fatalf("byte counts differ: %+v vs %+v", a, b)
	}
	// Chunked SimTime accrues per chunk with float rounding; allow 1µs.
	if d := a.SimTime - b.SimTime; d < -1000 || d > 1000 {
		t.Fatalf("SimTime differs: %v vs %v", a.SimTime, b.SimTime)
	}
}

func TestSpoolRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"mem", NewMem()},
		{"os", newTestOSBackend(t)},
		{"meter-over-os", NewMeter(newTestOSBackend(t), Lustre())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSpool(tc.b)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("spool"), 1000)
			if _, err := s.Write(payload); err != nil {
				t.Fatal(err)
			}
			if s.Len() != int64(len(payload)) {
				t.Fatalf("Len = %d", s.Len())
			}
			r, err := s.Reader()
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("spool roundtrip mismatch")
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Discard(); err != nil { // idempotent after Close
				t.Fatal(err)
			}
		})
	}
}

func TestSpoolIsUncharged(t *testing.T) {
	m := NewMeter(NewMem(), Lustre())
	s, err := NewSpool(m)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(make([]byte, 4096))
	r, _ := s.Reader()
	io.ReadAll(r)
	r.Close()
	if st := m.Stats(); st.BytesWritten != 0 || st.BytesRead != 0 || st.FilesWritten != 0 {
		t.Fatalf("spool traffic was metered: %+v", st)
	}
}

func newTestOSBackend(t *testing.T) *OS {
	t.Helper()
	b, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return b
}
