// Parallel multipart streaming for high-latency backends.
//
// A serial stream to a remote object store pays the link's bandwidth for
// every byte back to back. Multipart upload splits the payload into parts,
// ships the parts concurrently (each on its own connection, so their
// transfer time overlaps), and completes with one server-side Compose —
// the standard S3 multipart shape. MultipartPut is the generic primitive;
// BlobStore uses it automatically for large blobs on compose-capable
// no-rename backends.

package storage

import (
	"fmt"
	"io"
	"time"

	"llmtailor/internal/parallel"
)

// Composer is the multipart-completion capability: Compose atomically
// concatenates the named parts (in order) into dst and deletes them. A
// failed compose must leave dst unchanged and the parts in place.
type Composer interface {
	Compose(dst string, parts ...string) error
}

// ComposeSupported reports whether a backend can complete multipart
// uploads. Wrappers forward the question to what they wrap.
func ComposeSupported(b Backend) bool {
	if cs, ok := b.(interface{ ComposeSupported() bool }); ok {
		return cs.ComposeSupported()
	}
	_, ok := b.(Composer)
	return ok
}

// Compose invokes the backend's Composer capability, or reports
// ErrNotSupported when it has none.
func Compose(b Backend, dst string, parts ...string) error {
	if c, ok := b.(Composer); ok {
		return c.Compose(dst, parts...)
	}
	return fmt.Errorf("storage: compose %s: %w", dst, ErrNotSupported)
}

// DefaultPartBytes is the multipart part size when the caller does not
// choose one: big enough to amortise per-request latency, small enough
// that a handful of in-flight parts keeps memory bounded.
const DefaultPartBytes = 4 * 1024 * 1024

// MultipartOptions tunes MultipartPut.
type MultipartOptions struct {
	// PartBytes is the part size (default DefaultPartBytes).
	PartBytes int
	// Workers bounds concurrent part uploads (default 8).
	Workers int
	// MaxInflightBytes caps the payload bytes buffered across in-flight
	// parts (default Workers×PartBytes); the reader stalls when uploads
	// fall behind, exactly like the merge pipeline's ByteGate budget.
	MaxInflightBytes int64
	// PartPrefix names the part objects: part i is uploaded as
	// PartPrefix + "NNNNNN". Defaults to dst + ".part-". Callers that
	// survive crashes should point it at residue-swept space (BlobStore
	// uses its staging directory).
	PartPrefix string
}

func (o MultipartOptions) partBytes() int {
	if o.PartBytes <= 0 {
		return DefaultPartBytes
	}
	return o.PartBytes
}

func (o MultipartOptions) workers() int {
	if o.Workers <= 0 {
		return 8
	}
	return o.Workers
}

func (o MultipartOptions) budget() int64 {
	if o.MaxInflightBytes > 0 {
		return o.MaxInflightBytes
	}
	return int64(o.workers()) * int64(o.partBytes())
}

// MultipartPut streams size bytes from r into dst. On a compose-capable
// backend with more than one part's worth of payload, parts upload in
// parallel under a bounded byte budget and a final Compose publishes dst
// atomically; otherwise the payload streams serially through Create. On
// error any uploaded parts are removed (best effort) and dst is untouched
// — a crash mid-multipart leaves only part residue under PartPrefix.
func MultipartPut(b Backend, dst string, r io.Reader, size int64, opts MultipartOptions) error {
	partBytes := int64(opts.partBytes())
	nparts := int((size + partBytes - 1) / partBytes)
	if nparts <= 1 || !ComposeSupported(b) {
		return serialPut(b, dst, r, size)
	}
	prefix := opts.PartPrefix
	if prefix == "" {
		prefix = dst + ".part-"
	}
	gate := parallel.NewByteGate(opts.budget())

	type part struct {
		name string
		data []byte
	}
	parts := make(chan part, nparts)
	names := make([]string, nparts)
	errc := make(chan error, 1)

	// The reader side: sequential, admission-gated. Each part buffer is
	// acquired from the gate before it is filled, so reading never runs
	// more than the budget ahead of the slowest upload.
	go func() {
		defer close(parts)
		for i := 0; i < nparts; i++ {
			n := partBytes
			if rem := size - int64(i)*partBytes; rem < n {
				n = rem
			}
			gate.Acquire(n)
			buf := make([]byte, n)
			if _, err := io.ReadFull(r, buf); err != nil {
				gate.Release(n)
				errc <- fmt.Errorf("storage: multipart %s: read part %d: %w", dst, i, err)
				return
			}
			name := fmt.Sprintf("%s%06d", prefix, i)
			names[i] = name
			parts <- part{name: name, data: buf}
		}
		errc <- nil
	}()

	uploadErr := parallel.ForEach(opts.workers(), nparts, func(int) error {
		p, ok := <-parts
		if !ok {
			return nil // reader aborted; its error arrives via errc
		}
		err := b.WriteFile(p.name, p.data)
		gate.Release(int64(len(p.data)))
		if err != nil {
			return err
		}
		return nil
	})
	readErr := <-errc

	cleanup := func() {
		for _, name := range names {
			if name != "" {
				b.Remove(name)
			}
		}
	}
	if readErr != nil {
		cleanup()
		return readErr
	}
	if uploadErr != nil {
		cleanup()
		return fmt.Errorf("storage: multipart %s: %w", dst, uploadErr)
	}
	if err := Compose(b, dst, names...); err != nil {
		cleanup()
		return fmt.Errorf("storage: multipart %s: %w", dst, err)
	}
	return nil
}

// serialPut is the fallback: one streamed object write.
func serialPut(b Backend, dst string, r io.Reader, size int64) error {
	w, err := b.Create(dst)
	if err != nil {
		return err
	}
	n, err := io.CopyBuffer(w, r, make([]byte, ChunkOrDefault(0)))
	if err != nil {
		w.Close()
		return fmt.Errorf("storage: put %s: %w", dst, err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("storage: put %s: %w", dst, err)
	}
	if n != size {
		return fmt.Errorf("storage: put %s: wrote %d of %d bytes", dst, n, size)
	}
	return nil
}

// backoffJitter derives a deterministic exponential-backoff delay with
// jitter for attempt k (1-based): base·2^(k-1) plus up to half of itself,
// from the caller-supplied jitter source. Shared by Retry so tests can
// reproduce schedules exactly.
func backoffJitter(base time.Duration, attempt int, frac float64) time.Duration {
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	return d + time.Duration(float64(d)/2*frac)
}
