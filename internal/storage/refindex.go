// Journaled blob reference index.
//
// A RefIndex turns blob reference maintenance from a whole-history manifest
// sweep into per-save bookkeeping: every content-addressed checkpoint save
// appends one compact record — the digest set it references plus a
// monotonically increasing generation number — under `<objects>/refs/`.
// Garbage collection then reads the index (O(live records)) instead of
// re-reading every committed manifest in the run (O(run length)), and a
// generational sweep examines only the blobs whose youngest reference falls
// inside the generations being retired.
//
// Records are append-only journal entries, one file per generation:
//
//	<objects>/refs/gen-000000000007-checkpoint-700.ref
//
// Each is written crash-consistently with the same stage+rename protocol as
// every other published file (a `.tmp` sibling renamed into place), so a
// crash mid-append leaves staging residue, never a torn record. The index
// is pure bookkeeping derived from the checkpoint manifests: if it is ever
// missing, stale or corrupt, it can be rebuilt from the manifests (see
// ckpt.ReconcileRefIndex) — losing it can cost reclaim work, never data.
package storage

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// RefsDirName is the ref index's directory name under a blob store root.
const RefsDirName = "refs"

// refSuffix is the record file suffix; refStageSuffix marks in-flight
// record writes (stage+rename residue after a crash).
const (
	refSuffix      = ".ref"
	refStageSuffix = ".ref.tmp"
)

// RefRecord is one journal entry: the digest set one checkpoint references.
//
// On disk a record is deliberately line-oriented rather than one JSON
// document: a small JSON header line (version, key, step, generation,
// digest count) followed by one bare hex digest per line. The digest set
// is the hot payload every sweep re-reads across the whole live index, and
// splitting lines + validating hex is several times cheaper than
// unmarshalling a JSON string array — the difference between an index read
// and a manifest sweep is the whole point of the index.
type RefRecord struct {
	Version int `json:"version"`
	// Key is the checkpoint directory's base name (e.g. "checkpoint-700").
	Key string `json:"key"`
	// Step mirrors the checkpoint's global step for reports.
	Step int `json:"step"`
	// Generation is the run-wide save counter this record was appended at.
	// The checkpoint's manifest.json records the same number (ref_gen),
	// binding a published directory to exactly one journal entry.
	Generation int64 `json:"generation"`
	// Digests is the sorted, de-duplicated blob digest set the checkpoint's
	// manifests reference.
	Digests []string `json:"-"`
	// DigestCount is serialized in the header so a truncated digest section
	// cannot go unnoticed.
	DigestCount int `json:"digests"`
}

// RefEntry locates one record file in the index without reading it.
type RefEntry struct {
	// Key and Generation are parsed from the file name.
	Key        string
	Generation int64
	// Name is the record's file name inside the refs directory.
	Name string
}

// RefIndex is the journaled ref index of one blob store. A namespaced
// index (hub attachment) keeps its records under `refs/<ns>/` so many
// runs journal against one shared store without sharing generation
// counters or record files.
type RefIndex struct {
	b    Backend
	root string
	ns   string
}

// NewRefIndex returns the index rooted under a blob store root (the same
// root a BlobStore was opened with, e.g. "run/objects").
func NewRefIndex(b Backend, objectsRoot string) *RefIndex {
	return &RefIndex{b: b, root: strings.TrimSuffix(objectsRoot, "/")}
}

// NewRefIndexNS is the direct form of a hub-namespaced index: the journal
// under objectsRoot's refs/<ns>/ directory, no hubref resolution. Hub
// maintenance uses it to reach one run's records without that run's root.
func NewRefIndexNS(b Backend, objectsRoot, ns string) *RefIndex {
	ix := NewRefIndex(b, objectsRoot)
	ix.ns = ns
	return ix
}

// OpenRefIndex resolves the index serving an objects root, following a hub
// attachment the same way OpenCAS does: an attached run's journal lives
// under the hub store's `refs/<run-id>/` namespace, an unattached root's
// under its own `refs/`. This is the constructor the checkpoint layer
// should use; NewRefIndex stays the direct, resolution-free form.
func OpenRefIndex(b Backend, objectsRoot string) (*RefIndex, error) {
	root := strings.TrimSuffix(objectsRoot, "/")
	ref, err := ReadHubRef(b, root)
	if err != nil {
		return nil, err
	}
	if ref == nil {
		return NewRefIndex(b, root), nil
	}
	ix := NewRefIndex(b, HubObjectsRoot(ref.Hub))
	ix.ns = ref.Run
	return ix, nil
}

// Namespace returns the index's hub namespace ("" for a run-local index).
func (ix *RefIndex) Namespace() string { return ix.ns }

// Dir returns the index directory ("<objects>/refs", or the namespaced
// "<objects>/refs/<ns>" for a hub-attached run).
func (ix *RefIndex) Dir() string {
	if ix.ns != "" {
		return ix.root + "/" + RefsDirName + "/" + ix.ns
	}
	return ix.root + "/" + RefsDirName
}

// Exists reports whether the index directory exists.
func (ix *RefIndex) Exists() bool { return ix.b.Exists(ix.Dir()) }

// ValidRefKey reports whether a key can name a record: non-empty, no path
// separators, and none of the protocol suffixes that would collide with
// staging or checkpoint-directory classification.
func ValidRefKey(key string) bool {
	return key != "" && !strings.ContainsAny(key, "/\\") && !strings.HasSuffix(key, ".tmp")
}

// recordName returns the journal file name of a (generation, key) pair. The
// zero-padded generation keeps lexical listing order equal to append order.
func recordName(gen int64, key string) string {
	return fmt.Sprintf("gen-%012d-%s%s", gen, key, refSuffix)
}

// parseRecordName recovers (generation, key) from a journal file name.
func parseRecordName(name string) (RefEntry, bool) {
	if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, refSuffix) {
		return RefEntry{}, false
	}
	rest := strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), refSuffix)
	i := strings.IndexByte(rest, '-')
	if i <= 0 || i == len(rest)-1 {
		return RefEntry{}, false
	}
	var gen int64
	if _, err := fmt.Sscanf(rest[:i], "%d", &gen); err != nil || gen < 0 {
		return RefEntry{}, false
	}
	key := rest[i+1:]
	if !ValidRefKey(key) {
		return RefEntry{}, false
	}
	return RefEntry{Key: key, Generation: gen, Name: name}, true
}

// Entries lists the journal: parseable record entries sorted by generation
// (then key), staging residue left by crashed appends, and foreign names
// that are neither (external mutilation, reported but never touched).
// Listing alone never reads a record file, so generation discovery is
// O(index size) name parses, not O(index size) file reads.
func (ix *RefIndex) Entries() (entries []RefEntry, staging, foreign []string, err error) {
	if !ix.Exists() {
		return nil, nil, nil, nil
	}
	names, err := ix.b.List(ix.Dir())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("storage: list ref index %s: %w", ix.Dir(), err)
	}
	for _, n := range names {
		name := strings.TrimSuffix(n, "/")
		switch {
		case strings.HasSuffix(n, "/"):
			foreign = append(foreign, name)
		case strings.HasSuffix(name, refStageSuffix):
			staging = append(staging, name)
		default:
			e, ok := parseRecordName(name)
			if !ok {
				foreign = append(foreign, name)
				continue
			}
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Generation != entries[j].Generation {
			return entries[i].Generation < entries[j].Generation
		}
		return entries[i].Key < entries[j].Key
	})
	sort.Strings(staging)
	sort.Strings(foreign)
	return entries, staging, foreign, nil
}

// NextGeneration returns one past the highest generation in the journal
// (1 for an empty or absent index). Computed from file names only.
func (ix *RefIndex) NextGeneration() (int64, error) {
	entries, _, _, err := ix.Entries()
	if err != nil {
		return 0, err
	}
	var max int64
	for _, e := range entries {
		if e.Generation > max {
			max = e.Generation
		}
	}
	return max + 1, nil
}

// validate rejects malformed records before they reach the journal.
func (r *RefRecord) validate() error {
	if !ValidRefKey(r.Key) {
		return fmt.Errorf("storage: ref record: invalid key %q", r.Key)
	}
	if r.Generation <= 0 {
		return fmt.Errorf("storage: ref record %s: generation %d", r.Key, r.Generation)
	}
	for _, d := range r.Digests {
		if !ValidDigest(d) {
			return fmt.Errorf("storage: ref record %s: malformed digest %q", r.Key, d)
		}
	}
	return nil
}

// NormalizeDigests sorts and de-duplicates a digest list in place,
// returning the compacted slice — the canonical record payload.
func NormalizeDigests(digests []string) []string {
	sort.Strings(digests)
	out := digests[:0]
	for i, d := range digests {
		if i == 0 || d != digests[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// Append publishes one record crash-consistently: the JSON is staged into a
// `.ref.tmp` sibling and renamed into place, so a crash leaves either no
// record or the whole record — never a torn one. Appending an existing
// (generation, key) pair replaces it (idempotent retry).
func (ix *RefIndex) Append(r *RefRecord) error {
	if err := r.validate(); err != nil {
		return err
	}
	rec := *r
	rec.Digests = NormalizeDigests(append([]string(nil), r.Digests...))
	rec.DigestCount = len(rec.Digests)
	hdr, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("storage: marshal ref record %s: %w", rec.Key, err)
	}
	data := make([]byte, 0, len(hdr)+1+len(rec.Digests)*65)
	data = append(data, hdr...)
	for _, d := range rec.Digests {
		data = append(data, '\n')
		data = append(data, d...)
	}
	final := ix.Dir() + "/" + recordName(rec.Generation, rec.Key)
	if !RenameSupported(ix.b) {
		// Object-store mode: a whole-object PUT is already atomic (no torn
		// record possible) and idempotent, so the record publishes directly
		// — no staging sibling, no rename, nothing for a sweep to steal.
		if err := ix.b.WriteFile(final, append(data, '\n')); err != nil {
			return fmt.Errorf("storage: publish ref record %s: %w", rec.Key, err)
		}
		return nil
	}
	stage := strings.TrimSuffix(final, refSuffix) + refStageSuffix
	const maxAttempts = 8
	for attempt := 1; ; attempt++ {
		if err := ix.b.WriteFile(stage, append(data, '\n')); err != nil {
			return fmt.Errorf("storage: stage ref record %s: %w", rec.Key, err)
		}
		err := ix.b.Rename(stage, final)
		if err == nil {
			return nil
		}
		// A concurrent sweep may mistake the in-flight staging file for
		// crash residue and remove it; the whole-file write replays
		// losslessly, so retry (bounded) before surfacing the error.
		if attempt >= maxAttempts || ix.b.Exists(stage) || ix.b.Exists(final) {
			return fmt.Errorf("storage: publish ref record %s: %w", rec.Key, err)
		}
	}
}

// Read loads and validates one record. The content must agree with the
// entry's file name (key and generation) and the digest section with the
// header's count, so a renamed, truncated or bit-flipped record surfaces
// as an error, never as a silently misattributed or partial pin.
func (ix *RefIndex) Read(e RefEntry) (*RefRecord, error) {
	data, err := ix.b.ReadFile(ix.Dir() + "/" + e.Name)
	if err != nil {
		return nil, fmt.Errorf("storage: read ref record %s: %w", e.Name, err)
	}
	head := data
	var rest []byte
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		head, rest = data[:i], data[i+1:]
	}
	r := &RefRecord{}
	if err := json.Unmarshal(head, r); err != nil {
		return nil, fmt.Errorf("storage: decode ref record %s: %w", e.Name, err)
	}
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		if len(line) == 0 {
			continue
		}
		r.Digests = append(r.Digests, string(line))
	}
	if len(r.Digests) != r.DigestCount {
		return nil, fmt.Errorf("storage: ref record %s holds %d digests, header says %d", e.Name, len(r.Digests), r.DigestCount)
	}
	if err := r.validate(); err != nil {
		return nil, fmt.Errorf("storage: ref record %s: %w", e.Name, err)
	}
	if r.Key != e.Key || r.Generation != e.Generation {
		return nil, fmt.Errorf("storage: ref record %s claims key %q generation %d", e.Name, r.Key, r.Generation)
	}
	return r, nil
}

// Remove deletes one record file (best effort on the missing case: removing
// an already-removed record is not an error, so retiring converges under
// crash-and-retry).
func (ix *RefIndex) Remove(e RefEntry) error {
	name := ix.Dir() + "/" + e.Name
	if !ix.b.Exists(name) {
		return nil
	}
	return ix.b.Remove(name)
}

// RemoveStaging deletes one staging-residue file by its listed name.
func (ix *RefIndex) RemoveStaging(name string) error {
	return ix.b.Remove(ix.Dir() + "/" + name)
}
