package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"llmtailor/internal/parallel"
	"llmtailor/internal/tensor"
)

// The blob codec: a CAS object may hold either the payload's raw bytes or an
// LTBC container wrapping an encoded form of them. The digest that names the
// blob is ALWAYS the SHA-256 of the uncompressed payload — the container is
// a storage detail invisible to readers, which receive decoded bytes from
// Open/OpenRange.
//
// Container layout (all integers little-endian):
//
//	offset size
//	     0    4  magic "LTBC"
//	     4    1  format version (1)
//	     5    1  codec: 1=plane, 2=xor-parent, 3=stored
//	     6    1  element width in bytes (plane/xor)
//	     7    1  reserved (0)
//	     8    8  raw payload size (0 for stored: body is the payload)
//	    16    4  chunk size
//	    20   64  parent digest, ASCII hex (xor-parent) or zero bytes
//	    84    4  chunk count
//	    88   4N  encoded length of each chunk
//	   ...       chunk streams, concatenated
//
// Each chunk covers chunkSize raw bytes (the last may be short) and is
// byte-plane split (tensor.SplitPlanes) before coding. A chunk stream is one
// record per plane: tag byte (0=stored, 1=RLE), uvarint encoded length, then
// that many bytes. For codec xor-parent the chunk payload is raw XOR
// parentRaw; the store resolves the parent chain on read.
//
// Codec 3 ("stored") is the escape hatch keeping magic sniffing sound: a raw
// payload that itself begins with "LTBC" is wrapped in a stored container,
// so file bytes starting with the magic are always a container.

// BlobCodec identifies how a blob's bytes are stored.
type BlobCodec uint8

const (
	// CodecRaw means the object file holds the payload bytes directly.
	CodecRaw BlobCodec = 0
	// CodecPlane is byte-plane split + per-plane RLE of the payload itself.
	CodecPlane BlobCodec = 1
	// CodecXORParent is CodecPlane applied to payload XOR parent-payload.
	CodecXORParent BlobCodec = 2
	// CodecStored wraps the raw payload in a container unmodified.
	CodecStored BlobCodec = 3
)

// String returns the manifest spelling of the codec.
func (c BlobCodec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecPlane:
		return "plane"
	case CodecXORParent:
		return "xor-parent"
	case CodecStored:
		return "stored"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ParseBlobCodec maps a manifest codec string back to its value. The empty
// string is CodecRaw (pre-codec manifests carry no codec field).
func ParseBlobCodec(s string) (BlobCodec, error) {
	switch s {
	case "", "raw":
		return CodecRaw, nil
	case "plane":
		return CodecPlane, nil
	case "xor-parent", "xor":
		return CodecXORParent, nil
	case "stored":
		return CodecStored, nil
	}
	return 0, fmt.Errorf("unknown blob codec %q", s)
}

// BlobMeta describes how one blob is stored.
type BlobMeta struct {
	Codec      BlobCodec
	Width      int    // element width (plane/xor containers)
	ChunkSize  int    // coding chunk size (plane/xor containers)
	RawSize    int64  // uncompressed payload size
	StoredSize int64  // bytes on the backend (container included)
	Parent     string // parent digest (xor-parent only)
}

const (
	blobMagic        = "LTBC"
	blobCodecVersion = 1
	blobHeaderSize   = 88
	defaultChunkSize = 256 << 10
	maxChunkSize     = 4 << 20
	planeTagStored   = 0
	planeTagRLE      = 1
	// MaxParentDepth bounds xor-parent chain resolution; chains are re-based
	// well below this (ckpt re-bases every K generations), so hitting it
	// means a corrupt or cyclic chain.
	MaxParentDepth = 64
)

var (
	errNotContainer    = errors.New("blob codec: not an LTBC container")
	errContainerShort  = errors.New("blob codec: truncated container")
	errContainerHeader = errors.New("blob codec: malformed container header")
	// ErrRawTooLarge reports a container whose declared payload exceeds the
	// decode cap.
	ErrRawTooLarge = errors.New("blob codec: declared payload exceeds decode limit")
)

// IsContainer reports whether a blob file beginning with prefix is an LTBC
// container rather than raw payload bytes.
func IsContainer(prefix []byte) bool {
	return len(prefix) >= len(blobMagic) && string(prefix[:len(blobMagic)]) == blobMagic
}

// DecodeOpts bounds container decoding.
type DecodeOpts struct {
	// MaxRawSize caps the declared payload size (0 = no cap). Fuzzing and
	// any path decoding untrusted bytes should set it.
	MaxRawSize int64
}

// ParseContainerHeader validates the fixed header of a container and returns
// its metadata. storedSize is the full object size on the backend (used for
// StoredSize and to size stored-codec payloads). hdr needs only the first
// blobHeaderSize bytes.
func ParseContainerHeader(hdr []byte, storedSize int64) (BlobMeta, error) {
	if !IsContainer(hdr) {
		return BlobMeta{}, errNotContainer
	}
	if len(hdr) < blobHeaderSize {
		return BlobMeta{}, errContainerShort
	}
	if hdr[4] != blobCodecVersion {
		return BlobMeta{}, fmt.Errorf("blob codec: unsupported container version %d", hdr[4])
	}
	if hdr[7] != 0 {
		return BlobMeta{}, errContainerHeader
	}
	codec := BlobCodec(hdr[5])
	width := int(hdr[6])
	rawSize := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	chunkSize := int64(binary.LittleEndian.Uint32(hdr[16:20]))
	nChunks := int64(binary.LittleEndian.Uint32(hdr[84:88]))
	parent := ""
	switch codec {
	case CodecStored:
		if width != 0 || rawSize != 0 || chunkSize != 0 || nChunks != 0 {
			return BlobMeta{}, errContainerHeader
		}
		if storedSize < blobHeaderSize {
			return BlobMeta{}, errContainerShort
		}
		for _, b := range hdr[20:84] {
			if b != 0 {
				return BlobMeta{}, errContainerHeader
			}
		}
		return BlobMeta{Codec: codec, RawSize: storedSize - blobHeaderSize, StoredSize: storedSize}, nil
	case CodecPlane, CodecXORParent:
		if width < 1 || rawSize < 0 {
			return BlobMeta{}, errContainerHeader
		}
		if chunkSize < 1 || chunkSize > maxChunkSize {
			return BlobMeta{}, errContainerHeader
		}
		want := (rawSize + chunkSize - 1) / chunkSize
		if nChunks != want {
			return BlobMeta{}, errContainerHeader
		}
		if codec == CodecXORParent {
			parent = string(hdr[20:84])
			if !ValidDigest(parent) {
				return BlobMeta{}, fmt.Errorf("blob codec: invalid parent digest in container")
			}
		} else {
			for _, b := range hdr[20:84] {
				if b != 0 {
					return BlobMeta{}, errContainerHeader
				}
			}
		}
		return BlobMeta{Codec: codec, Width: width, ChunkSize: int(chunkSize), RawSize: rawSize, StoredSize: storedSize, Parent: parent}, nil
	}
	return BlobMeta{}, fmt.Errorf("blob codec: unknown codec %d", hdr[5])
}

// DecodeContainer decodes a full container into its chunk payload. For
// CodecPlane and CodecStored the result is the raw payload; for
// CodecXORParent it is payload XOR parent-payload — the caller resolves the
// parent and XORs. Every malformed input errors; nothing panics, and no
// allocation happens before the lengths it implies are validated.
func DecodeContainer(data []byte, opts DecodeOpts) ([]byte, BlobMeta, error) {
	meta, err := ParseContainerHeader(data, int64(len(data)))
	if err != nil {
		return nil, BlobMeta{}, err
	}
	if opts.MaxRawSize > 0 && meta.RawSize > opts.MaxRawSize {
		return nil, BlobMeta{}, ErrRawTooLarge
	}
	if meta.Codec == CodecStored {
		return data[blobHeaderSize:], meta, nil
	}
	chunkSize := meta.ChunkSize
	nChunks := int((meta.RawSize + int64(chunkSize) - 1) / int64(chunkSize))
	lensEnd := blobHeaderSize + 4*nChunks
	if lensEnd > len(data) {
		return nil, BlobMeta{}, errContainerShort
	}
	var total int64
	lens := make([]int, nChunks)
	for i := 0; i < nChunks; i++ {
		l := binary.LittleEndian.Uint32(data[blobHeaderSize+4*i:])
		lens[i] = int(l)
		total += int64(l)
	}
	if total != int64(len(data)-lensEnd) {
		return nil, BlobMeta{}, errContainerShort
	}
	out := make([]byte, meta.RawSize)
	off := lensEnd
	var rawOff int64
	var scratch []byte
	for i := 0; i < nChunks; i++ {
		rawLen := int(min64(int64(chunkSize), meta.RawSize-rawOff))
		if cap(scratch) < rawLen {
			scratch = make([]byte, rawLen)
		}
		split := scratch[:rawLen]
		if err := decodeChunk(split, data[off:off+lens[i]], meta.Width); err != nil {
			return nil, BlobMeta{}, err
		}
		tensor.JoinPlanes(out[rawOff:rawOff+int64(rawLen)], split, meta.Width)
		off += lens[i]
		rawOff += int64(rawLen)
	}
	return out, meta, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// decodeChunk decodes one chunk stream into split, the plane-major bytes of
// the chunk (length = the chunk's raw length).
func decodeChunk(split, stream []byte, width int) error {
	if width < 1 {
		return errContainerHeader
	}
	off := 0
	si := 0
	for p := 0; p < width; p++ {
		planeLen := tensor.PlaneLen(len(split), width, p)
		if si >= len(stream) {
			return errContainerShort
		}
		tag := stream[si]
		si++
		encLen, n := binary.Uvarint(stream[si:])
		if n <= 0 {
			return errContainerHeader
		}
		si += n
		if encLen > uint64(len(stream)-si) {
			return errContainerShort
		}
		enc := stream[si : si+int(encLen)]
		si += int(encLen)
		switch tag {
		case planeTagStored:
			if int(encLen) != planeLen {
				return errContainerHeader
			}
			copy(split[off:off+planeLen], enc)
		case planeTagRLE:
			if err := tensor.DecodeRLE(split[off:off+planeLen], enc); err != nil {
				return fmt.Errorf("blob codec: plane %d: %w", p, err)
			}
		default:
			return fmt.Errorf("blob codec: unknown plane tag %d", tag)
		}
		off += planeLen
	}
	if si != len(stream) {
		return errContainerHeader
	}
	return nil
}

// EncodeStored wraps raw in a stored-codec container (the "LTBC"-prefix
// escape).
func EncodeStored(raw []byte) []byte {
	out := make([]byte, blobHeaderSize+len(raw))
	copy(out, blobMagic)
	out[4] = blobCodecVersion
	out[5] = byte(CodecStored)
	copy(out[blobHeaderSize:], raw)
	return out
}

// storedHeader returns just the 88-byte stored-codec header, for streaming
// writers that prepend it before payload bytes of unknown length.
func storedHeader() []byte {
	hdr := make([]byte, blobHeaderSize)
	copy(hdr, blobMagic)
	hdr[4] = blobCodecVersion
	hdr[5] = byte(CodecStored)
	return hdr
}

// EncodeContainer encodes raw into a plane or xor-parent container. For
// CodecXORParent, raw must already be payload XOR parent-payload and parent
// the parent's digest. Chunks are coded in parallel; gate (optional) bounds
// the raw bytes admitted to workers at once. The bool result is false when
// coding did not pay (the container would be at least as large as raw) — the
// caller should then store raw.
func EncodeContainer(raw []byte, codec BlobCodec, width int, parent string, gate *parallel.ByteGate) ([]byte, bool) {
	if codec != CodecPlane && codec != CodecXORParent {
		return nil, false
	}
	if width < 1 || width > 255 {
		width = 1
	}
	if codec == CodecXORParent && !ValidDigest(parent) {
		return nil, false
	}
	chunkSize := defaultChunkSize
	nChunks := (len(raw) + chunkSize - 1) / chunkSize
	encoded := make([][]byte, nChunks)
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					off := i * chunkSize
					end := off + chunkSize
					if end > len(raw) {
						end = len(raw)
					}
					if gate != nil {
						gate.Acquire(int64(end - off))
					}
					encoded[i] = encodeChunk(raw[off:end], width)
					if gate != nil {
						gate.Release(int64(end - off))
					}
				}
			}()
		}
		for i := 0; i < nChunks; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for i := 0; i < nChunks; i++ {
			off := i * chunkSize
			end := off + chunkSize
			if end > len(raw) {
				end = len(raw)
			}
			encoded[i] = encodeChunk(raw[off:end], width)
		}
	}
	total := blobHeaderSize + 4*nChunks
	for _, c := range encoded {
		total += len(c)
	}
	if total >= len(raw) {
		return nil, false
	}
	out := make([]byte, blobHeaderSize, total)
	copy(out, blobMagic)
	out[4] = blobCodecVersion
	out[5] = byte(codec)
	out[6] = byte(width)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(raw)))
	binary.LittleEndian.PutUint32(out[16:20], uint32(chunkSize))
	if codec == CodecXORParent {
		copy(out[20:84], parent)
	}
	binary.LittleEndian.PutUint32(out[84:88], uint32(nChunks))
	for _, c := range encoded {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(c)))
		out = append(out, l[:]...)
	}
	for _, c := range encoded {
		out = append(out, c...)
	}
	return out, true
}

// encodeChunk plane-splits one chunk and codes each plane, falling back to a
// stored plane whenever RLE does not shrink it.
func encodeChunk(chunk []byte, width int) []byte {
	split := make([]byte, len(chunk))
	tensor.SplitPlanes(split, chunk, width)
	out := make([]byte, 0, len(chunk)/4+width*4)
	off := 0
	for p := 0; p < width; p++ {
		planeLen := tensor.PlaneLen(len(chunk), width, p)
		plane := split[off : off+planeLen]
		enc := tensor.AppendRLE(nil, plane)
		if len(enc) < planeLen {
			out = append(out, planeTagRLE)
			out = binary.AppendUvarint(out, uint64(len(enc)))
			out = append(out, enc...)
		} else {
			out = append(out, planeTagStored)
			out = binary.AppendUvarint(out, uint64(planeLen))
			out = append(out, plane...)
		}
		off += planeLen
	}
	return out
}
