// Content-addressed blob storage.
//
// A BlobStore keeps immutable payload blobs under a root directory, each
// named by the lowercase-hex SHA-256 of its contents with a two-character
// fan-out: `<root>/ab/abcdef...`. Writers stream into a uniquely named
// staging file under `<root>/.stage/` and publish with one atomic rename,
// so a crash mid-put leaves only staging residue — never a half-written
// blob under a valid digest. Puts are idempotent: a blob that already
// exists is never rewritten, which is the dedup win incremental
// checkpointing is built on.
//
// The store itself holds no reference counts on disk (stored counters
// cannot survive crashes coherently); instead Sweep takes a refcount map
// derived by the caller from its committed manifests and removes exactly
// the unreferenced blobs plus any staging residue. A blob with a non-zero
// refcount is never touched.
package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"llmtailor/internal/parallel"
	"llmtailor/internal/tensor"
)

// ErrStagingLost reports that a writer's staging file vanished before its
// publishing rename: a sweep running concurrently mistook the in-flight
// put for crash residue and removed it. The put is retryable — re-stream
// the payload into a fresh staging name (PutStream does this) — and the
// bounded retry is what makes sweeping staging residue safe to run beside
// live writers.
var ErrStagingLost = errors.New("storage: staging file lost to a concurrent sweep")

// blobStageDir is the staging subdirectory blobs are streamed into before
// their publishing rename.
const blobStageDir = ".stage"

// blobTrashDir holds blobs a sweep has provisionally removed: the
// two-phase sweep renames a victim here, re-checks for references that
// appeared after its pin snapshot (a concurrent save reusing the blob),
// and only then purges — or restores. See SweepDigests.
const blobTrashDir = ".trash"

// blobSeq makes concurrent staging names unique within the process (two
// async savers putting the same digest must not interleave writes into one
// staging file).
var blobSeq atomic.Int64

// BlobStore is a content-addressed store rooted at a directory of a
// Backend.
//
// On a backend without rename (RenameSupported false — object stores) the
// store switches publication modes: writers spool the payload locally and
// publish with one idempotent whole-object PUT (multipart for large blobs
// when the backend can Compose). The PUT itself is atomic on an object
// store, so the no-half-written-blob invariant holds in both modes.
type BlobStore struct {
	b      Backend
	root   string
	rename bool
	mp     MultipartOptions
	// resolveFn, when set, resolves a parent digest to its raw payload
	// across stores (ShardedStore routes a parent that hashes to another
	// shard). Nil means parents resolve locally.
	resolveFn parentResolver
}

// parentResolver resolves a digest to its fully decoded payload while
// walking an xor-parent chain. seen and depth thread the cycle/depth guard
// across store boundaries.
type parentResolver func(digest string, seen map[string]bool, depth int) ([]byte, error)

// NewBlobStore returns a store over root (e.g. "run/objects"). The root is
// created lazily by the first put.
func NewBlobStore(b Backend, root string) *BlobStore {
	return &BlobStore{b: b, root: strings.TrimSuffix(root, "/"), rename: RenameSupported(b)}
}

// SetMultipart tunes how no-rename publication streams large blobs (part
// size, upload parallelism, in-flight byte budget). Rename-mode stores
// ignore it.
func (s *BlobStore) SetMultipart(opts MultipartOptions) { s.mp = opts }

// Root returns the store's root directory.
func (s *BlobStore) Root() string { return s.root }

// ValidDigest reports whether d is a well-formed blob digest: 64 lowercase
// hex characters (SHA-256).
func ValidDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DigestBytes returns the store digest of a byte slice.
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Path returns the blob's path relative to the backend root.
func (s *BlobStore) Path(digest string) string {
	return s.root + "/" + digest[:2] + "/" + digest
}

// Has reports whether the blob exists.
func (s *BlobStore) Has(digest string) bool {
	return ValidDigest(digest) && s.b.Exists(s.Path(digest))
}

// Stat returns the blob's size.
func (s *BlobStore) Stat(digest string) (int64, error) {
	if !ValidDigest(digest) {
		return 0, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Stat(s.Path(digest))
}

// Open opens a sequential reader over the blob's payload bytes. A blob
// stored as an LTBC container is decoded transparently (xor-parent chains
// resolved against the store), so readers always see the bytes the digest
// names.
func (s *BlobStore) Open(digest string) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	rc, err := s.b.Open(s.Path(digest))
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	n, err := io.ReadFull(rc, magic[:])
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Shorter than the magic: raw by definition, fully read already.
		rc.Close()
		return io.NopCloser(bytes.NewReader(magic[:n])), nil
	}
	if err != nil {
		rc.Close()
		return nil, err
	}
	if !IsContainer(magic[:]) {
		return &prefixedReader{r: io.MultiReader(bytes.NewReader(magic[:]), rc), c: rc}, nil
	}
	rest, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	raw, err := s.decodeContainerBlob(digest, append(magic[:], rest...), map[string]bool{digest: true}, 0)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(raw)), nil
}

// prefixedReader re-attaches sniffed leading bytes to the backend stream.
type prefixedReader struct {
	r io.Reader
	c io.Closer
}

func (p *prefixedReader) Read(b []byte) (int, error) { return p.r.Read(b) }
func (p *prefixedReader) Close() error               { return p.c.Close() }

// OpenRange opens a sectioned reader over the blob's payload bytes. Raw
// blobs serve the range straight off the backend; containers are decoded in
// full first (range reads address the *payload*, which has no fixed layout
// inside a container).
func (s *BlobStore) OpenRange(digest string, off, n int64) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("storage: invalid range [%d,+%d) for blob %s", off, n, digest)
	}
	path := s.Path(digest)
	hdr, err := s.sniff(path)
	if err != nil {
		return nil, err
	}
	if !IsContainer(hdr) {
		return s.b.OpenRange(path, off, n)
	}
	raw, err := s.readDecoded(digest)
	if err != nil {
		return nil, err
	}
	if off > int64(len(raw)) || off+n > int64(len(raw)) {
		return nil, fmt.Errorf("storage: range [%d,+%d) beyond blob %s payload (%d bytes)", off, n, digest, len(raw))
	}
	return io.NopCloser(bytes.NewReader(raw[off : off+n])), nil
}

// sniff reads up to the magic length from the head of an object.
func (s *BlobStore) sniff(path string) ([]byte, error) {
	rc, err := s.b.OpenRange(path, 0, int64(len(blobMagic)))
	if err != nil {
		// A file shorter than the magic cannot be a container; fall back to
		// a whole-object open so short raw blobs still sniff cleanly.
		rc, err = s.b.Open(path)
		if err != nil {
			return nil, err
		}
	}
	defer rc.Close()
	hdr := make([]byte, len(blobMagic))
	n, err := io.ReadFull(rc, hdr)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return hdr[:n], nil
	}
	if err != nil {
		return nil, err
	}
	return hdr, nil
}

// Meta describes how the blob is stored: its codec, uncompressed payload
// size, on-backend size, and (for xor-parent containers) the parent digest.
// For raw blobs RawSize == StoredSize.
func (s *BlobStore) Meta(digest string) (BlobMeta, error) {
	if !ValidDigest(digest) {
		return BlobMeta{}, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	path := s.Path(digest)
	size, err := s.b.Stat(path)
	if err != nil {
		return BlobMeta{}, err
	}
	if size < blobHeaderSize {
		return BlobMeta{Codec: CodecRaw, RawSize: size, StoredSize: size}, nil
	}
	rc, err := s.b.OpenRange(path, 0, blobHeaderSize)
	if err != nil {
		return BlobMeta{}, err
	}
	hdr := make([]byte, blobHeaderSize)
	_, rerr := io.ReadFull(rc, hdr)
	rc.Close()
	if rerr != nil {
		return BlobMeta{}, rerr
	}
	if !IsContainer(hdr) {
		return BlobMeta{Codec: CodecRaw, RawSize: size, StoredSize: size}, nil
	}
	meta, err := ParseContainerHeader(hdr, size)
	if err != nil {
		return BlobMeta{}, fmt.Errorf("storage: blob %s: %w", digest, err)
	}
	return meta, nil
}

// readDecoded returns the blob's full payload bytes with any container
// decoded and xor-parent chains resolved.
func (s *BlobStore) readDecoded(digest string) ([]byte, error) {
	return s.resolveLocal(digest, map[string]bool{}, 0)
}

// resolveAny resolves a digest through the configured cross-store resolver,
// falling back to this store.
func (s *BlobStore) resolveAny(digest string, seen map[string]bool, depth int) ([]byte, error) {
	if s.resolveFn != nil {
		return s.resolveFn(digest, seen, depth)
	}
	return s.resolveLocal(digest, seen, depth)
}

// resolveLocal reads one blob from this store and decodes it, recursing
// through resolveAny for xor parents. seen and depth bound the walk so a
// corrupt chain (cycle, self-parent, unbounded depth) errors instead of
// recursing forever.
func (s *BlobStore) resolveLocal(digest string, seen map[string]bool, depth int) ([]byte, error) {
	if depth > MaxParentDepth {
		return nil, fmt.Errorf("storage: blob %s: xor-parent chain deeper than %d", digest, MaxParentDepth)
	}
	if seen[digest] {
		return nil, fmt.Errorf("storage: blob %s: xor-parent chain cycles", digest)
	}
	seen[digest] = true
	rc, err := s.b.Open(s.Path(digest))
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	if !IsContainer(data) {
		return data, nil
	}
	return s.decodeContainerBlob(digest, data, seen, depth)
}

// decodeContainerBlob decodes container bytes read for digest, resolving the
// parent chain when the codec is xor-parent.
func (s *BlobStore) decodeContainerBlob(digest string, data []byte, seen map[string]bool, depth int) ([]byte, error) {
	payload, meta, err := DecodeContainer(data, DecodeOpts{})
	if err != nil {
		return nil, fmt.Errorf("storage: blob %s: %w", digest, err)
	}
	if meta.Codec != CodecXORParent {
		return payload, nil
	}
	parentRaw, err := s.resolveAny(meta.Parent, seen, depth+1)
	if err != nil {
		return nil, fmt.Errorf("storage: blob %s: resolve parent: %w", digest, err)
	}
	if len(parentRaw) != len(payload) {
		return nil, fmt.Errorf("storage: blob %s: parent %s payload is %d bytes, delta is %d",
			digest, meta.Parent, len(parentRaw), len(payload))
	}
	raw := make([]byte, len(payload))
	tensor.XORBytes(raw, payload, parentRaw)
	return raw, nil
}

// Put streams r into the store under the given digest, unless the blob
// already exists. It returns (written, bytes, err); written is false on a
// dedup hit, in which case not a single payload byte moves.
func (s *BlobStore) Put(digest string, r io.Reader) (bool, int64, error) {
	if !ValidDigest(digest) {
		return false, 0, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if s.Has(digest) {
		return false, 0, nil
	}
	w, err := s.Writer()
	if err != nil {
		return false, 0, err
	}
	n, err := io.Copy(w, r)
	if err != nil {
		w.Abort()
		return false, n, fmt.Errorf("storage: put blob %s: %w", digest, err)
	}
	written, err := w.Commit(digest)
	return written, n, err
}

// PutBytes stores a byte slice (convenience over Put).
func (s *BlobStore) PutBytes(data []byte) (digest string, written bool, err error) {
	digest = DigestBytes(data)
	written, _, err = s.Put(digest, bytes.NewReader(data))
	return digest, written, err
}

// PutStream stores a payload under its digest by replaying encode() into
// staging space, unless the blob already exists. Unlike Put it owns the
// byte source, so a staging file stolen by a concurrent sweep
// (ErrStagingLost) is survived by re-streaming into a fresh staging name —
// bounded, then surfaced honestly.
func (s *BlobStore) PutStream(digest string, encode func(io.Writer) (int64, error)) (bool, error) {
	if !ValidDigest(digest) {
		return false, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	const maxAttempts = 8
	for attempt := 1; ; attempt++ {
		if s.Has(digest) {
			return false, nil
		}
		w, err := s.Writer()
		if err != nil {
			return false, err
		}
		if _, err := encode(w); err != nil {
			w.Abort()
			return false, err
		}
		written, err := w.Commit(digest)
		if err == nil {
			return written, nil
		}
		if attempt >= maxAttempts || !errors.Is(err, ErrStagingLost) {
			return false, err
		}
	}
}

// BlobPutOptions requests an encoded put: the codec to try, the payload's
// element width, the parent digest (CodecXORParent) and an optional gate
// bounding the raw bytes the chunk coders hold in flight.
type BlobPutOptions struct {
	Codec  BlobCodec
	Width  int
	Parent string
	Gate   *parallel.ByteGate
}

// PutResult reports how a put ended up stored. On a dedup hit the fields
// describe the existing blob (whose codec may differ from the request).
type PutResult struct {
	Written     bool
	Codec       BlobCodec
	Parent      string
	RawBytes    int64
	StoredBytes int64
}

// resultFor describes the stored blob as a PutResult.
func (s *BlobStore) resultFor(digest string, written bool) (PutResult, error) {
	meta, err := s.Meta(digest)
	if err != nil {
		return PutResult{Written: written}, err
	}
	return PutResult{
		Written:     written,
		Codec:       meta.Codec,
		Parent:      meta.Parent,
		RawBytes:    meta.RawSize,
		StoredBytes: meta.StoredSize,
	}, nil
}

// PutStreamOpts is PutStream with codec negotiation: the payload is encoded
// per opts when that pays, with a size-gated fallback chain xor-parent →
// plane → raw. The digest is ALWAYS verified over the uncompressed payload
// bytes before anything is published, whatever form ends up stored. An
// unreachable or size-mismatched parent demotes to plane rather than
// failing — compression is an optimization, never a correctness dependency.
func (s *BlobStore) PutStreamOpts(digest string, opts BlobPutOptions, encode func(io.Writer) (int64, error)) (PutResult, error) {
	if !ValidDigest(digest) {
		return PutResult{}, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if opts.Codec != CodecPlane && opts.Codec != CodecXORParent {
		written, err := s.PutStream(digest, encode)
		if err != nil {
			return PutResult{}, err
		}
		return s.resultFor(digest, written)
	}
	if s.Has(digest) {
		return s.resultFor(digest, false)
	}
	var buf bytes.Buffer
	sum := sha256.New()
	if _, err := encode(io.MultiWriter(&buf, sum)); err != nil {
		return PutResult{}, err
	}
	if got := hex.EncodeToString(sum.Sum(nil)); got != digest {
		return PutResult{}, fmt.Errorf("storage: blob content hashes to %s, want %s", got, digest)
	}
	raw := buf.Bytes()
	container, codec := s.encodeBlob(digest, raw, opts)
	var written bool
	var err error
	if codec == CodecRaw {
		written, err = s.PutStream(digest, func(w io.Writer) (int64, error) {
			n, werr := w.Write(raw)
			return int64(n), werr
		})
	} else {
		written, err = s.putContainer(digest, container)
	}
	if err != nil {
		return PutResult{}, err
	}
	return s.resultFor(digest, written)
}

// encodeBlob picks the effective codec for raw under opts, returning the
// container bytes, or (nil, CodecRaw) when nothing pays.
func (s *BlobStore) encodeBlob(digest string, raw []byte, opts BlobPutOptions) ([]byte, BlobCodec) {
	codec := opts.Codec
	if codec == CodecXORParent {
		if ValidDigest(opts.Parent) && opts.Parent != digest {
			parentRaw, err := s.resolveAny(opts.Parent, map[string]bool{digest: true}, 1)
			if err == nil && len(parentRaw) == len(raw) {
				delta := make([]byte, len(raw))
				tensor.XORBytes(delta, raw, parentRaw)
				if c, ok := EncodeContainer(delta, CodecXORParent, opts.Width, opts.Parent, opts.Gate); ok {
					return c, CodecXORParent
				}
			}
		}
		codec = CodecPlane
	}
	if codec == CodecPlane {
		if c, ok := EncodeContainer(raw, CodecPlane, opts.Width, "", opts.Gate); ok {
			return c, CodecPlane
		}
	}
	return nil, CodecRaw
}

// putContainer publishes container bytes under digest. The container's own
// bytes deliberately do not hash to the digest — the payload they decode to
// does, verified by the caller — so the writer's content-hash check is
// skipped, with the same publish-race and staging-loss handling as
// PutStream.
func (s *BlobStore) putContainer(digest string, container []byte) (bool, error) {
	const maxAttempts = 8
	for attempt := 1; ; attempt++ {
		if s.Has(digest) {
			return false, nil
		}
		w, err := s.Writer()
		if err != nil {
			return false, err
		}
		w.container = true
		w.started = true
		if _, err := w.Write(container); err != nil {
			w.Abort()
			return false, err
		}
		written, err := w.Commit(digest)
		if err == nil {
			return written, nil
		}
		if attempt >= maxAttempts || !errors.Is(err, ErrStagingLost) {
			return false, err
		}
	}
}

// Writer opens a streaming blob writer. The caller streams the payload,
// then calls Commit with the expected digest (verified against the bytes
// actually written) to publish, or Abort to drop the staging file.
func (s *BlobStore) Writer() (*BlobWriter, error) {
	// The PID keeps staging names unique across processes sharing a run
	// root (a dedup-saving trainer and a -dedup merge, say): OS Create
	// truncates rather than excluding, so a name collision would
	// interleave two writers' bytes in one staging file.
	stage := fmt.Sprintf("%s/%s/put-%d-%d", s.root, blobStageDir, os.Getpid(), blobSeq.Add(1))
	if !s.rename {
		// No rename to publish with: spool the payload locally, verify the
		// digest against the spooled bytes, then publish with one atomic
		// PUT at Commit. Nothing touches the backend until the content is
		// proven, so ErrStagingLost cannot occur in this mode.
		sp, err := NewSpool(s.b)
		if err != nil {
			return nil, fmt.Errorf("storage: spool blob: %w", err)
		}
		return &BlobWriter{s: s, stage: stage, spool: sp, sum: sha256.New()}, nil
	}
	w, err := s.b.Create(stage)
	if err != nil {
		return nil, fmt.Errorf("storage: stage blob: %w", err)
	}
	return &BlobWriter{s: s, stage: stage, w: w, sum: sha256.New()}, nil
}

// BlobWriter streams one blob into staging space; see BlobStore.Writer.
type BlobWriter struct {
	s     *BlobStore
	stage string
	w     io.WriteCloser // rename mode: staging stream
	spool Spool          // no-rename mode: local spool until Commit
	sum   hash.Hash
	n     int64 // payload bytes streamed by the caller
	done  bool
	// The first magic-length payload bytes are held back until the escape
	// decision: a raw payload that begins with the container magic is
	// prefixed with a stored-codec header so file bytes starting with "LTBC"
	// are always a container. container marks an internal put whose bytes
	// already ARE a container (no escape, no content-hash check — the digest
	// names the payload, not the container).
	head      []byte
	started   bool
	container bool
	stored    int64 // bytes written to the staging stream / spool
}

// Write implements io.Writer. The payload hash always covers the caller's
// bytes; the escape header, when emitted, is storage framing outside it.
func (w *BlobWriter) Write(p []byte) (int, error) {
	if !w.started {
		w.sum.Write(p)
		w.n += int64(len(p))
		w.head = append(w.head, p...)
		if len(w.head) < len(blobMagic) {
			return len(p), nil
		}
		if err := w.flushHead(); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	n, err := w.writeOut(p)
	if n > 0 {
		w.sum.Write(p[:n])
		w.n += int64(n)
	}
	return n, err
}

// flushHead makes the escape decision and starts the underlying stream.
func (w *BlobWriter) flushHead() error {
	w.started = true
	if IsContainer(w.head) {
		if _, err := w.writeOut(storedHeader()); err != nil {
			return err
		}
	}
	_, err := w.writeOut(w.head)
	w.head = nil
	return err
}

// writeOut sends bytes to the staging stream (rename mode) or spool.
func (w *BlobWriter) writeOut(p []byte) (int, error) {
	var n int
	var err error
	if w.spool != nil {
		n, err = w.spool.Write(p)
	} else {
		n, err = w.w.Write(p)
	}
	w.stored += int64(n)
	return n, err
}

// Commit closes the staging stream, verifies the streamed bytes hash to
// digest, and publishes the blob with one atomic rename. It returns false
// (without error) when another writer published the same digest first —
// content-addressing makes the copies identical, so losing the race is a
// dedup hit, not a failure.
func (w *BlobWriter) Commit(digest string) (bool, error) {
	if w.done {
		return false, fmt.Errorf("storage: blob commit after close")
	}
	w.done = true
	if !w.started {
		// Payload shorter than the magic: the escape decision is trivially
		// "raw"; flush what was held back.
		if err := w.flushHead(); err != nil {
			w.abortStage()
			return false, fmt.Errorf("storage: stage blob %s: %w", digest, err)
		}
	}
	if w.spool != nil {
		return w.commitPut(digest)
	}
	if err := w.w.Close(); err != nil {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: stage blob %s: %w", digest, err)
	}
	if !ValidDigest(digest) {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if got := hex.EncodeToString(w.sum.Sum(nil)); !w.container && got != digest {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: blob content hashes to %s, want %s", got, digest)
	}
	if w.s.Has(digest) {
		w.s.b.Remove(w.stage)
		return false, nil
	}
	if err := w.s.b.Rename(w.stage, w.s.Path(digest)); err != nil {
		if w.s.Has(digest) {
			// Lost the publish race to another writer of the same digest
			// (possibly after a sweep stole our staging file): the content
			// is durably stored, so this is a dedup hit, not a failure.
			w.s.b.Remove(w.stage)
			return false, nil
		}
		if !w.s.b.Exists(w.stage) {
			return false, fmt.Errorf("storage: publish blob %s: %w", digest, ErrStagingLost)
		}
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: publish blob %s: %w", digest, err)
	}
	return true, nil
}

// commitPut is Commit for no-rename backends: verify the spooled content,
// then publish with one whole-object PUT — multipart when the payload
// spans several parts and the backend can Compose, serial otherwise. Part
// objects are named into the staging directory so residue from a crash
// mid-multipart is swept exactly like rename-mode staging residue.
func (w *BlobWriter) commitPut(digest string) (bool, error) {
	defer w.spool.Discard()
	if !ValidDigest(digest) {
		return false, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if got := hex.EncodeToString(w.sum.Sum(nil)); !w.container && got != digest {
		return false, fmt.Errorf("storage: blob content hashes to %s, want %s", got, digest)
	}
	if w.s.Has(digest) {
		return false, nil
	}
	r, err := w.spool.Reader()
	if err != nil {
		return false, fmt.Errorf("storage: publish blob %s: %w", digest, err)
	}
	defer r.Close()
	opts := w.s.mp
	if opts.PartPrefix == "" {
		opts.PartPrefix = w.stage + ".part-"
	}
	// w.stored, not w.n: an escape header makes the object longer than the
	// payload the caller streamed.
	if err := MultipartPut(w.s.b, w.s.Path(digest), r, w.stored, opts); err != nil {
		if w.s.Has(digest) {
			// Lost the publish race to another writer of the same digest;
			// content addressing makes the copies identical.
			return false, nil
		}
		return false, fmt.Errorf("storage: publish blob %s: %w", digest, err)
	}
	return true, nil
}

// Abort drops the staging state (best effort; safe after Commit).
func (w *BlobWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.abortStage()
}

// abortStage drops staging state once done is set.
func (w *BlobWriter) abortStage() {
	if w.spool != nil {
		w.spool.Discard()
		return
	}
	w.w.Close()
	w.s.b.Remove(w.stage)
}

// BlobInfo describes one stored blob.
type BlobInfo struct {
	Digest string
	Size   int64
}

// List enumerates the store: published blobs (sorted by digest) and any
// staging residue paths left by crashed puts. Entries under the root that
// are neither are reported as stray so scans can surface them.
func (s *BlobStore) List() (blobs []BlobInfo, staging, stray []string, err error) {
	if !s.b.Exists(s.root) {
		return nil, nil, nil, nil
	}
	entries, err := s.b.List(s.root)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("storage: list blob store %s: %w", s.root, err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e, "/")
		dir := s.root + "/" + name
		switch {
		case name == RefsDirName && strings.HasSuffix(e, "/"):
			// The journaled ref index lives under the store root but is
			// managed by RefIndex, not the blob sweeper.
			continue
		case name == blobTrashDir && strings.HasSuffix(e, "/"):
			// Trash is enumerated separately (ListTrash); a sweep in
			// progress or a crash mid-sweep leaves entries here.
			continue
		case name == blobStageDir && strings.HasSuffix(e, "/"):
			files, err := s.b.List(dir)
			if err != nil {
				continue // raced with a concurrent cleanup
			}
			for _, f := range files {
				staging = append(staging, dir+"/"+strings.TrimSuffix(f, "/"))
			}
		case len(name) == 2 && strings.HasSuffix(e, "/"):
			files, err := s.b.List(dir)
			if err != nil {
				continue
			}
			for _, f := range files {
				fname := strings.TrimSuffix(f, "/")
				p := dir + "/" + fname
				if !ValidDigest(fname) || !strings.HasPrefix(fname, name) {
					stray = append(stray, p)
					continue
				}
				size, err := s.b.Stat(p)
				if err != nil {
					size = -1
				}
				blobs = append(blobs, BlobInfo{Digest: fname, Size: size})
			}
		default:
			stray = append(stray, dir)
		}
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].Digest < blobs[j].Digest })
	sort.Strings(staging)
	sort.Strings(stray)
	return blobs, staging, stray, nil
}

// Remove deletes one blob. Callers must hold the refcount invariant: only
// Sweep (or a caller that proved zero references) may remove.
func (s *BlobStore) Remove(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Remove(s.Path(digest))
}

// SweepReport records what a sweep removed and kept.
type SweepReport struct {
	// Kept is the number of blobs with a non-zero refcount (including any
	// restored from trash by the recheck).
	Kept int
	// Examined is the number of candidates the sweep considered: every
	// blob in the store for a full Sweep, only the candidate digests for a
	// generational SweepDigests — the cost difference the ref index buys.
	// Pinned candidates count too, so the two modes report comparably.
	Examined int
	// RemovedBlobs lists swept (unreferenced) blob digests.
	RemovedBlobs []string
	// Restored lists digests the post-trash recheck rescued: a reference
	// appeared (a concurrent save reusing the blob) after the pin
	// snapshot, so the provisional removal was undone.
	Restored []string
	// RemovedStaging lists deleted staging-residue paths.
	RemovedStaging []string
	// BytesFreed totals the removed blobs' sizes.
	BytesFreed int64
}

// trashPath returns a digest's location inside the trash area.
func (s *BlobStore) trashPath(digest string) string {
	return s.root + "/" + blobTrashDir + "/" + digest
}

// moveObject relocates one object: a single atomic rename when the backend
// has one, copy-then-delete otherwise. In the copy mode the destination is
// fully published before the source disappears, so a crash between the two
// steps leaves the object visible at both paths — and both callers
// (trash/restore) converge from that state on the next pass: Restore drops
// the redundant trash copy, and a re-trash of an already-trashed digest
// just re-copies identical content.
func (s *BlobStore) moveObject(from, to string) error {
	if s.rename {
		return s.b.Rename(from, to)
	}
	if _, err := CopyFile(s.b, to, s.b, from, 0); err != nil {
		return err
	}
	return s.b.Remove(from)
}

// Trash provisionally removes a blob into the trash area. The blob stops
// being visible to Has/Open; a recheck either restores it or purges it.
func (s *BlobStore) Trash(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.moveObject(s.Path(digest), s.trashPath(digest))
}

// Restore undoes a provisional removal. If the blob was re-published
// meanwhile (a racing writer saw it missing and re-streamed it), the
// trash copy is simply dropped — content addressing makes the copies
// identical.
func (s *BlobStore) Restore(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if s.Has(digest) {
		return s.b.Remove(s.trashPath(digest))
	}
	return s.moveObject(s.trashPath(digest), s.Path(digest))
}

// PurgeTrash deletes a trashed blob permanently.
func (s *BlobStore) PurgeTrash(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Remove(s.trashPath(digest))
}

// ListTrash enumerates trashed blobs (a sweep in progress, or residue of
// one that crashed between trash and purge).
func (s *BlobStore) ListTrash() ([]BlobInfo, error) {
	dir := s.root + "/" + blobTrashDir
	if !s.b.Exists(dir) {
		return nil, nil
	}
	files, err := s.b.List(dir)
	if err != nil {
		return nil, nil // raced with a concurrent purge draining the dir
	}
	var out []BlobInfo
	for _, f := range files {
		name := strings.TrimSuffix(f, "/")
		if !ValidDigest(name) {
			continue
		}
		size, err := s.b.Stat(dir + "/" + name)
		if err != nil {
			size = -1
		}
		out = append(out, BlobInfo{Digest: name, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out, nil
}

// RecheckFunc re-derives the pin set after candidates were trashed. The
// two-phase sweep calls it between trash and purge; any trashed digest
// the fresh pins cover is restored instead of purged.
type RecheckFunc func(trashed []string) (map[string]int, error)

// finalizeTrashed applies a recheck to provisionally removed digests:
// re-pinned ones are restored, the rest purged. With a nil recheck the
// purge is unconditional (quiescent callers).
func (s *BlobStore) finalizeTrashed(trashed []string, sizes map[string]int64, recheck RecheckFunc, rep *SweepReport) error {
	pins := map[string]int{}
	if recheck != nil && len(trashed) > 0 {
		p, err := recheck(trashed)
		if err != nil {
			return err
		}
		pins = p
	}
	for _, d := range trashed {
		if pins[d] > 0 {
			if err := s.Restore(d); err != nil {
				return fmt.Errorf("storage: restore blob %s: %w", d, err)
			}
			rep.Restored = append(rep.Restored, d)
			rep.Kept++
			continue
		}
		if err := s.PurgeTrash(d); err != nil {
			return fmt.Errorf("storage: purge blob %s: %w", d, err)
		}
		rep.RemovedBlobs = append(rep.RemovedBlobs, d)
		if size := sizes[d]; size > 0 {
			rep.BytesFreed += size
		}
	}
	return nil
}

// Sweep removes every blob whose refcount in refs is zero or absent, plus
// all staging residue. The invariant callers rely on: a blob with
// refs[digest] > 0 is never removed, whatever else fails — removals happen
// one file at a time, so an interrupted sweep only leaves extra garbage
// for the next run. Equivalent to SweepRecheck with a nil recheck; callers
// that may run beside live savers must supply one (see SweepRecheck).
func (s *BlobStore) Sweep(refs map[string]int) (*SweepReport, error) {
	return s.SweepRecheck(refs, nil)
}

// SweepRecheck is Sweep with the two-phase removal that makes sweeping
// safe beside concurrent savers. A saver that *reuses* an existing blob
// never rewrites it, so a refcount snapshot taken before the saver's
// journal append could sweep a blob a just-committed checkpoint
// references. Instead, victims are renamed into trash, recheck re-derives
// the pins, and only then are they purged — or restored.
//
// Why this closes the race: a saver appends its journal record BEFORE its
// reuse check (`Has`). If the reuse check saw the blob, it ran before the
// trash rename, so the record append ran before it too — and therefore
// before the recheck read, which then restores the blob. If the reuse
// check ran after the trash rename, it saw the blob missing and the saver
// re-published it. Either way no referenced blob is lost.
func (s *BlobStore) SweepRecheck(refs map[string]int, recheck RecheckFunc) (*SweepReport, error) {
	blobs, staging, stray, err := s.List()
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{}
	for _, p := range staging {
		if err := s.b.Remove(p); err != nil {
			return rep, fmt.Errorf("storage: sweep staging %s: %w", p, err)
		}
		rep.RemovedStaging = append(rep.RemovedStaging, p)
	}
	// Stray entries (not blobs, not staging) are left alone: the sweeper
	// only ever deletes what it fully understands.
	_ = stray
	var trashed []string
	sizes := map[string]int64{}
	for _, blob := range blobs {
		rep.Examined++
		if refs[blob.Digest] > 0 {
			rep.Kept++
			continue
		}
		if err := s.Trash(blob.Digest); err != nil {
			return rep, fmt.Errorf("storage: sweep blob %s: %w", blob.Digest, err)
		}
		trashed = append(trashed, blob.Digest)
		sizes[blob.Digest] = blob.Size
	}
	if err := s.finalizeTrashed(trashed, sizes, recheck, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// StagingResidue lists the store's staging-residue paths without walking
// the blob fan-out — the cheap cleanup enumeration the generational sweep
// uses (a full List touches every stored blob).
func (s *BlobStore) StagingResidue() ([]string, error) {
	dir := s.root + "/" + blobStageDir
	if !s.b.Exists(dir) {
		return nil, nil
	}
	files, err := s.b.List(dir)
	if err != nil {
		// Best effort: a concurrent publish can drain the directory between
		// the Exists check and the listing (implied directories vanish with
		// their last file). Residue missed here is caught next pass.
		return nil, nil
	}
	out := make([]string, 0, len(files))
	for _, f := range files {
		out = append(out, dir+"/"+strings.TrimSuffix(f, "/"))
	}
	sort.Strings(out)
	return out, nil
}

// SweepDigests is the generational sweep: it examines exactly the candidate
// digests — blobs whose youngest reference fell inside retired generations
// — and removes those that exist and are not pinned by refs. Unlike Sweep
// it never lists the store, so its cost is O(candidates), independent of
// how many live blobs the run has accumulated. When dryRun is set the
// candidates are examined (existence + size) but nothing is removed.
//
// The safety invariant matches Sweep's — a digest with refs[digest] > 0
// is never touched, removals are per-blob, an interrupted sweep only
// leaves reclaim work — and the same two-phase trash/recheck protocol as
// SweepRecheck protects blobs a concurrent saver reuses after the pin
// snapshot was taken.
func (s *BlobStore) SweepDigests(candidates []string, refs map[string]int, dryRun bool, recheck RecheckFunc) (*SweepReport, error) {
	rep := &SweepReport{}
	var trashed []string
	sizes := map[string]int64{}
	for _, d := range candidates {
		if !ValidDigest(d) {
			return rep, fmt.Errorf("storage: sweep candidate: invalid digest %q", d)
		}
		rep.Examined++
		if refs[d] > 0 {
			rep.Kept++
			continue
		}
		size, err := s.Stat(d)
		if err != nil {
			continue // already gone (a previous sweep, or never stored)
		}
		if dryRun {
			rep.RemovedBlobs = append(rep.RemovedBlobs, d)
			if size > 0 {
				rep.BytesFreed += size
			}
			continue
		}
		if err := s.Trash(d); err != nil {
			return rep, fmt.Errorf("storage: sweep blob %s: %w", d, err)
		}
		trashed = append(trashed, d)
		sizes[d] = size
	}
	if err := s.finalizeTrashed(trashed, sizes, recheck, rep); err != nil {
		return rep, err
	}
	return rep, nil
}
