// Content-addressed blob storage.
//
// A BlobStore keeps immutable payload blobs under a root directory, each
// named by the lowercase-hex SHA-256 of its contents with a two-character
// fan-out: `<root>/ab/abcdef...`. Writers stream into a uniquely named
// staging file under `<root>/.stage/` and publish with one atomic rename,
// so a crash mid-put leaves only staging residue — never a half-written
// blob under a valid digest. Puts are idempotent: a blob that already
// exists is never rewritten, which is the dedup win incremental
// checkpointing is built on.
//
// The store itself holds no reference counts on disk (stored counters
// cannot survive crashes coherently); instead Sweep takes a refcount map
// derived by the caller from its committed manifests and removes exactly
// the unreferenced blobs plus any staging residue. A blob with a non-zero
// refcount is never touched.
package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// blobStageDir is the staging subdirectory blobs are streamed into before
// their publishing rename.
const blobStageDir = ".stage"

// blobSeq makes concurrent staging names unique within the process (two
// async savers putting the same digest must not interleave writes into one
// staging file).
var blobSeq atomic.Int64

// BlobStore is a content-addressed store rooted at a directory of a
// Backend.
type BlobStore struct {
	b    Backend
	root string
}

// NewBlobStore returns a store over root (e.g. "run/objects"). The root is
// created lazily by the first put.
func NewBlobStore(b Backend, root string) *BlobStore {
	return &BlobStore{b: b, root: strings.TrimSuffix(root, "/")}
}

// Root returns the store's root directory.
func (s *BlobStore) Root() string { return s.root }

// ValidDigest reports whether d is a well-formed blob digest: 64 lowercase
// hex characters (SHA-256).
func ValidDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DigestBytes returns the store digest of a byte slice.
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Path returns the blob's path relative to the backend root.
func (s *BlobStore) Path(digest string) string {
	return s.root + "/" + digest[:2] + "/" + digest
}

// Has reports whether the blob exists.
func (s *BlobStore) Has(digest string) bool {
	return ValidDigest(digest) && s.b.Exists(s.Path(digest))
}

// Stat returns the blob's size.
func (s *BlobStore) Stat(digest string) (int64, error) {
	if !ValidDigest(digest) {
		return 0, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Stat(s.Path(digest))
}

// Open opens a sequential reader over the blob.
func (s *BlobStore) Open(digest string) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Open(s.Path(digest))
}

// OpenRange opens a sectioned reader over the blob.
func (s *BlobStore) OpenRange(digest string, off, n int64) (io.ReadCloser, error) {
	if !ValidDigest(digest) {
		return nil, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.OpenRange(s.Path(digest), off, n)
}

// Put streams r into the store under the given digest, unless the blob
// already exists. It returns (written, bytes, err); written is false on a
// dedup hit, in which case not a single payload byte moves.
func (s *BlobStore) Put(digest string, r io.Reader) (bool, int64, error) {
	if !ValidDigest(digest) {
		return false, 0, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if s.Has(digest) {
		return false, 0, nil
	}
	w, err := s.Writer()
	if err != nil {
		return false, 0, err
	}
	n, err := io.Copy(w, r)
	if err != nil {
		w.Abort()
		return false, n, fmt.Errorf("storage: put blob %s: %w", digest, err)
	}
	written, err := w.Commit(digest)
	return written, n, err
}

// PutBytes stores a byte slice (convenience over Put).
func (s *BlobStore) PutBytes(data []byte) (digest string, written bool, err error) {
	digest = DigestBytes(data)
	written, _, err = s.Put(digest, bytes.NewReader(data))
	return digest, written, err
}

// Writer opens a streaming blob writer. The caller streams the payload,
// then calls Commit with the expected digest (verified against the bytes
// actually written) to publish, or Abort to drop the staging file.
func (s *BlobStore) Writer() (*BlobWriter, error) {
	// The PID keeps staging names unique across processes sharing a run
	// root (a dedup-saving trainer and a -dedup merge, say): OS Create
	// truncates rather than excluding, so a name collision would
	// interleave two writers' bytes in one staging file.
	stage := fmt.Sprintf("%s/%s/put-%d-%d", s.root, blobStageDir, os.Getpid(), blobSeq.Add(1))
	w, err := s.b.Create(stage)
	if err != nil {
		return nil, fmt.Errorf("storage: stage blob: %w", err)
	}
	return &BlobWriter{s: s, stage: stage, w: w, sum: sha256.New()}, nil
}

// BlobWriter streams one blob into staging space; see BlobStore.Writer.
type BlobWriter struct {
	s     *BlobStore
	stage string
	w     io.WriteCloser
	sum   hash.Hash
	n     int64
	done  bool
}

// Write implements io.Writer.
func (w *BlobWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	if n > 0 {
		w.sum.Write(p[:n])
		w.n += int64(n)
	}
	return n, err
}

// Commit closes the staging stream, verifies the streamed bytes hash to
// digest, and publishes the blob with one atomic rename. It returns false
// (without error) when another writer published the same digest first —
// content-addressing makes the copies identical, so losing the race is a
// dedup hit, not a failure.
func (w *BlobWriter) Commit(digest string) (bool, error) {
	if w.done {
		return false, fmt.Errorf("storage: blob commit after close")
	}
	w.done = true
	if err := w.w.Close(); err != nil {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: stage blob %s: %w", digest, err)
	}
	if !ValidDigest(digest) {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	if got := hex.EncodeToString(w.sum.Sum(nil)); got != digest {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: blob content hashes to %s, want %s", got, digest)
	}
	if w.s.Has(digest) {
		w.s.b.Remove(w.stage)
		return false, nil
	}
	if err := w.s.b.Rename(w.stage, w.s.Path(digest)); err != nil {
		w.s.b.Remove(w.stage)
		return false, fmt.Errorf("storage: publish blob %s: %w", digest, err)
	}
	return true, nil
}

// Abort drops the staging file (best effort; safe after Commit).
func (w *BlobWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.w.Close()
	w.s.b.Remove(w.stage)
}

// BlobInfo describes one stored blob.
type BlobInfo struct {
	Digest string
	Size   int64
}

// List enumerates the store: published blobs (sorted by digest) and any
// staging residue paths left by crashed puts. Entries under the root that
// are neither are reported as stray so scans can surface them.
func (s *BlobStore) List() (blobs []BlobInfo, staging, stray []string, err error) {
	if !s.b.Exists(s.root) {
		return nil, nil, nil, nil
	}
	entries, err := s.b.List(s.root)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("storage: list blob store %s: %w", s.root, err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e, "/")
		dir := s.root + "/" + name
		switch {
		case name == blobStageDir && strings.HasSuffix(e, "/"):
			files, err := s.b.List(dir)
			if err != nil {
				continue // raced with a concurrent cleanup
			}
			for _, f := range files {
				staging = append(staging, dir+"/"+strings.TrimSuffix(f, "/"))
			}
		case len(name) == 2 && strings.HasSuffix(e, "/"):
			files, err := s.b.List(dir)
			if err != nil {
				continue
			}
			for _, f := range files {
				fname := strings.TrimSuffix(f, "/")
				p := dir + "/" + fname
				if !ValidDigest(fname) || !strings.HasPrefix(fname, name) {
					stray = append(stray, p)
					continue
				}
				size, err := s.b.Stat(p)
				if err != nil {
					size = -1
				}
				blobs = append(blobs, BlobInfo{Digest: fname, Size: size})
			}
		default:
			stray = append(stray, dir)
		}
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].Digest < blobs[j].Digest })
	sort.Strings(staging)
	sort.Strings(stray)
	return blobs, staging, stray, nil
}

// Remove deletes one blob. Callers must hold the refcount invariant: only
// Sweep (or a caller that proved zero references) may remove.
func (s *BlobStore) Remove(digest string) error {
	if !ValidDigest(digest) {
		return fmt.Errorf("storage: invalid blob digest %q", digest)
	}
	return s.b.Remove(s.Path(digest))
}

// SweepReport records what a sweep removed and kept.
type SweepReport struct {
	// Kept is the number of blobs with a non-zero refcount.
	Kept int
	// RemovedBlobs lists swept (unreferenced) blob digests.
	RemovedBlobs []string
	// RemovedStaging lists deleted staging-residue paths.
	RemovedStaging []string
	// BytesFreed totals the removed blobs' sizes.
	BytesFreed int64
}

// Sweep removes every blob whose refcount in refs is zero or absent, plus
// all staging residue. The invariant callers rely on: a blob with
// refs[digest] > 0 is never removed, whatever else fails — removals happen
// one file at a time, so an interrupted sweep only leaves extra garbage
// for the next run.
func (s *BlobStore) Sweep(refs map[string]int) (*SweepReport, error) {
	blobs, staging, stray, err := s.List()
	if err != nil {
		return nil, err
	}
	rep := &SweepReport{}
	for _, p := range staging {
		if err := s.b.Remove(p); err != nil {
			return rep, fmt.Errorf("storage: sweep staging %s: %w", p, err)
		}
		rep.RemovedStaging = append(rep.RemovedStaging, p)
	}
	// Stray entries (not blobs, not staging) are left alone: the sweeper
	// only ever deletes what it fully understands.
	_ = stray
	for _, blob := range blobs {
		if refs[blob.Digest] > 0 {
			rep.Kept++
			continue
		}
		if err := s.Remove(blob.Digest); err != nil {
			return rep, fmt.Errorf("storage: sweep blob %s: %w", blob.Digest, err)
		}
		rep.RemovedBlobs = append(rep.RemovedBlobs, blob.Digest)
		if blob.Size > 0 {
			rep.BytesFreed += blob.Size
		}
	}
	return rep, nil
}
