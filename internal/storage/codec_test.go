package storage

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"llmtailor/internal/parallel"
	"llmtailor/internal/tensor"
)

// deltaPayload builds a bf16-like payload whose XOR against a parent is
// sparse: every stride-th element perturbed, the rest identical.
func deltaPayload(n, stride int, seed int64) (parent, child []byte) {
	rng := rand.New(rand.NewSource(seed))
	parent = make([]byte, n)
	rng.Read(parent)
	child = append([]byte(nil), parent...)
	for i := 0; i+1 < n; i += 2 * stride {
		child[i] ^= byte(i + 1)
	}
	return parent, child
}

func TestEncodeContainerRoundTrip(t *testing.T) {
	for _, width := range []int{2, 4} {
		for _, n := range []int{0, 2, 4096, defaultChunkSize + 12} {
			// Constant high bytes compress; this is the plane codec's case.
			raw := make([]byte, n)
			for i := 0; i < n; i += width {
				raw[i] = byte(i)
				for p := 1; p < width && i+p < n; p++ {
					raw[i+p] = 0x3f
				}
			}
			enc, ok := EncodeContainer(raw, CodecPlane, width, "", nil)
			if n <= blobHeaderSize {
				// Payloads smaller than the container framing never pay.
				if ok {
					t.Fatalf("n=%d: tiny payload should not encode", n)
				}
				continue
			}
			if !ok {
				t.Fatalf("width=%d n=%d: coding did not pay", width, n)
			}
			got, meta, err := DecodeContainer(enc, DecodeOpts{})
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(got, raw) {
				t.Fatalf("width=%d n=%d: roundtrip mismatch", width, n)
			}
			if meta.Codec != CodecPlane || meta.Width != width || meta.RawSize != int64(n) {
				t.Fatalf("meta = %+v", meta)
			}
		}
	}
}

func TestEncodeContainerXOR(t *testing.T) {
	parent, child := deltaPayload(300_000, 97, 5)
	delta := make([]byte, len(child))
	tensor.XORBytes(delta, child, parent)
	digest := strings.Repeat("ab", 32)
	gate := parallel.NewByteGate(64 << 10)
	enc, ok := EncodeContainer(delta, CodecXORParent, 2, digest, gate)
	if !ok {
		t.Fatal("sparse delta did not pay")
	}
	if len(enc)*3 > len(delta) {
		t.Fatalf("sparse delta compressed to %d of %d bytes, want >=3x", len(enc), len(delta))
	}
	got, meta, err := DecodeContainer(enc, DecodeOpts{})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, delta) {
		t.Fatal("delta roundtrip mismatch")
	}
	if meta.Parent != digest || meta.Codec != CodecXORParent {
		t.Fatalf("meta = %+v", meta)
	}
	back := make([]byte, len(child))
	tensor.XORBytes(back, got, parent)
	if !bytes.Equal(back, child) {
		t.Fatal("xor reconstruction mismatch")
	}
}

func TestEncodeContainerGateFallsBackOnNoise(t *testing.T) {
	raw := make([]byte, 100_000)
	rand.New(rand.NewSource(9)).Read(raw)
	if _, ok := EncodeContainer(raw, CodecPlane, 2, "", nil); ok {
		t.Fatal("random payload should not pay under the size gate")
	}
}

func TestStoredEscape(t *testing.T) {
	raw := append([]byte(blobMagic), []byte("payload that looks like a container")...)
	enc := EncodeStored(raw)
	got, meta, err := DecodeContainer(enc, DecodeOpts{})
	if err != nil {
		t.Fatalf("decode stored: %v", err)
	}
	if !bytes.Equal(got, raw) || meta.Codec != CodecStored || meta.RawSize != int64(len(raw)) {
		t.Fatalf("stored roundtrip mismatch: meta=%+v", meta)
	}
}

func TestDecodeContainerRejectsMalformed(t *testing.T) {
	parent, child := deltaPayload(8192, 97, 1)
	delta := make([]byte, len(child))
	tensor.XORBytes(delta, child, parent)
	good, ok := EncodeContainer(delta, CodecXORParent, 2, strings.Repeat("cd", 32), nil)
	if !ok {
		t.Fatal("setup: encode failed")
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := map[string][]byte{
		"not container": []byte("nope"),
		"short header":  good[:40],
		"bad version":   mutate(func(b []byte) []byte { b[4] = 9; return b }),
		"bad codec":     mutate(func(b []byte) []byte { b[5] = 7; return b }),
		"zero width":    mutate(func(b []byte) []byte { b[6] = 0; return b }),
		"reserved set":  mutate(func(b []byte) []byte { b[7] = 1; return b }),
		"bad parent":    mutate(func(b []byte) []byte { b[20] = 'Z'; return b }),
		"huge chunk": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], maxChunkSize+1)
			return b
		}),
		"chunk count mismatch": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[84:88], 99)
			return b
		}),
		"truncated body": good[:len(good)-3],
		"trailing junk":  append(append([]byte(nil), good...), 0xff),
		"bad plane tag": mutate(func(b []byte) []byte {
			b[blobHeaderSize+4] = 9 // first chunk's first plane tag
			return b
		}),
	}
	for name, data := range cases {
		if _, _, err := DecodeContainer(data, DecodeOpts{}); err == nil {
			t.Errorf("%s: decode accepted malformed container", name)
		}
	}
	if _, _, err := DecodeContainer(good, DecodeOpts{MaxRawSize: 16}); err == nil {
		t.Error("MaxRawSize cap not enforced")
	}
	if _, _, err := DecodeContainer(good, DecodeOpts{}); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
}
