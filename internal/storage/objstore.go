// An in-process object store.
//
// ObjStore models the storage semantics of S3-class object stores, which
// differ from a filesystem in exactly the ways the checkpoint commit
// protocol cares about:
//
//   - the namespace is flat: "directories" are implied by key prefixes,
//     appear when the first object under them is PUT and vanish with the
//     last one — they cannot exist empty;
//   - PUTs are whole-object and atomic: a reader sees the previous object
//     or the new one, never a prefix (streamed writers buffer privately
//     and publish at Close);
//   - there is no rename. Rename returns ErrNotSupported, and publication
//     protocols must be re-derived around object visibility (see
//     ckpt.Txn's write-objects-then-manifest mode);
//   - requests fail transiently (throttling, connection resets) and must
//     be retried by the client (see Retry); and
//   - every request crosses a high-latency link, so large objects want
//     parallel multipart uploads (see MultipartPut and Compose).
//
// The fake injects the last two dimensions directly: SetLatency adds real
// per-request and per-byte delays (so parallel multipart streaming is
// measurably faster than serial, not just notionally), and SetFlakeEvery
// makes every k-th PUT fail with a transient error. Fault and Meter wrap
// an ObjStore like any other Backend for crash exploration and accounting.

package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotSupported reports that a backend cannot perform an operation at
// all — not a transient failure but a structural capability gap (an object
// store has no rename). Callers branch on capabilities up front
// (RenameSupported, ComposeSupported) rather than probing with errors.
var ErrNotSupported = errors.New("storage: operation not supported by this backend")

// ErrTransient marks failures that are safe and worthwhile to retry: the
// operation may have been dropped by the link or throttled by the store,
// and replaying it (PUTs are idempotent whole-object writes) can succeed.
var ErrTransient = errors.New("storage: transient backend error")

// IsTransient reports whether an error chain contains a transient failure.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// RenameSupported reports whether a backend implements atomic Rename.
// Wrappers forward the question to what they wrap; backends without the
// probe are rename-capable (every pre-object-store Backend was). The
// checkpoint commit protocol branches on this: with rename it publishes
// staged trees atomically, without it the COMMITTED marker object's
// appearance is the visibility point.
func RenameSupported(b Backend) bool {
	if rc, ok := b.(interface{ RenameSupported() bool }); ok {
		return rc.RenameSupported()
	}
	return true
}

// ObjStore is the in-process object-store Backend. Safe for concurrent use.
type ObjStore struct {
	mu      sync.RWMutex
	objects map[string][]byte

	// Latency model (real sleeps, so parallel uploads genuinely overlap).
	latMu       sync.RWMutex
	perOp       time.Duration
	bytesPerSec float64

	// Deterministic transient-failure injection: every flakeEvery-th PUT
	// fails with ErrTransient before mutating anything.
	flakeEvery int64
	puts       int64
}

// NewObjStore returns an empty in-process object store with no injected
// latency or failures.
func NewObjStore() *ObjStore { return &ObjStore{objects: map[string][]byte{}} }

// SetLatency configures the simulated link: perOp is charged (slept) once
// per request, and payload bytes flow at bytesPerSec (0 = infinite).
func (s *ObjStore) SetLatency(perOp time.Duration, bytesPerSec float64) {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	s.perOp, s.bytesPerSec = perOp, bytesPerSec
}

// SetFlakeEvery makes every k-th PUT (WriteFile, stream Close, Compose)
// fail with ErrTransient before any state changes; k <= 0 disables. The
// counter is deterministic, so tests can pin which attempt fails.
func (s *ObjStore) SetFlakeEvery(k int) {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	s.flakeEvery = int64(k)
	s.puts = 0
}

// sleepOp models one request's round trip.
func (s *ObjStore) sleepOp() {
	s.latMu.RLock()
	d := s.perOp
	s.latMu.RUnlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// sleepBytes models n payload bytes crossing the link.
func (s *ObjStore) sleepBytes(n int) {
	s.latMu.RLock()
	bw := s.bytesPerSec
	s.latMu.RUnlock()
	if bw > 0 && n > 0 {
		time.Sleep(time.Duration(float64(n) / bw * float64(time.Second)))
	}
}

// flake charges one PUT against the injected failure schedule.
func (s *ObjStore) flake() error {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	if s.flakeEvery <= 0 {
		return nil
	}
	s.puts++
	if s.puts%s.flakeEvery == 0 {
		return fmt.Errorf("storage: injected flake (put %d): %w", s.puts, ErrTransient)
	}
	return nil
}

func objKey(name string) string { return strings.TrimPrefix(path.Clean("/"+name), "/") }

func objNotExist(op, name string) error {
	return fmt.Errorf("storage: %s %s: %w", op, name, fs.ErrNotExist)
}

// WriteFile implements Backend: one atomic whole-object PUT.
func (s *ObjStore) WriteFile(name string, data []byte) error {
	s.sleepOp()
	s.sleepBytes(len(data))
	if err := s.flake(); err != nil {
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[objKey(name)] = append([]byte(nil), data...)
	return nil
}

// ReadFile implements Backend: one whole-object GET.
func (s *ObjStore) ReadFile(name string) ([]byte, error) {
	s.sleepOp()
	s.mu.RLock()
	data, ok := s.objects[objKey(name)]
	s.mu.RUnlock()
	if !ok {
		return nil, objNotExist("read", name)
	}
	s.sleepBytes(len(data))
	return append([]byte(nil), data...), nil
}

// Create implements Backend. The stream buffers privately; the object
// appears atomically when the writer is closed (PUT semantics — a crashed
// or abandoned stream leaves no trace, there are no partial objects).
// Bandwidth latency is charged per chunk as bytes are written, so
// concurrent streams genuinely overlap their transfer time.
func (s *ObjStore) Create(name string) (io.WriteCloser, error) {
	s.sleepOp()
	return &objWriter{s: s, key: objKey(name), name: name}, nil
}

type objWriter struct {
	s      *ObjStore
	key    string
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *objWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write %s: stream closed", w.name)
	}
	w.s.sleepBytes(len(p))
	return w.buf.Write(p)
}

func (w *objWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.s.flake(); err != nil {
		return fmt.Errorf("storage: put %s: %w", w.name, err)
	}
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	w.s.objects[w.key] = append([]byte(nil), w.buf.Bytes()...)
	return nil
}

// Open implements Backend.
func (s *ObjStore) Open(name string) (io.ReadCloser, error) {
	data, err := s.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// OpenRange implements Backend (a ranged GET).
func (s *ObjStore) OpenRange(name string, off, n int64) (io.ReadCloser, error) {
	s.sleepOp()
	s.mu.RLock()
	data, ok := s.objects[objKey(name)]
	s.mu.RUnlock()
	if !ok {
		return nil, objNotExist("open", name)
	}
	if err := checkRange(name, off, n, int64(len(data))); err != nil {
		return nil, err
	}
	s.sleepBytes(int(n))
	return io.NopCloser(bytes.NewReader(append([]byte(nil), data[off:off+n]...))), nil
}

// ReadAt implements Backend.
func (s *ObjStore) ReadAt(name string, off int64, p []byte) error {
	s.sleepOp()
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[objKey(name)]
	if !ok {
		return objNotExist("read", name)
	}
	if off < 0 || off+int64(len(p)) > int64(len(data)) {
		return fmt.Errorf("storage: read %s@%d+%d: out of range (size %d)", name, off, len(p), len(data))
	}
	copy(p, data[off:])
	return nil
}

// Stat implements Backend.
func (s *ObjStore) Stat(name string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[objKey(name)]
	if !ok {
		return 0, objNotExist("stat", name)
	}
	return int64(len(data)), nil
}

// List implements Backend: a delimiter-style LIST over the key prefix.
// Directories are implied by keys, so an empty directory cannot exist —
// listing a prefix no object lives under fails with a not-exist error,
// exactly like listing after the last object was removed.
func (s *ObjStore) List(dir string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := objKey(dir)
	if prefix != "" {
		prefix += "/"
	}
	seen := map[string]bool{}
	for name := range s.objects {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i+1]] = true // common prefix: a directory entry
		} else {
			seen[rest] = true
		}
	}
	if len(seen) == 0 && prefix != "" {
		return nil, objNotExist("list", dir)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Exists implements Backend: true for an object key or a non-empty
// implied-directory prefix.
func (s *ObjStore) Exists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	key := objKey(name)
	if key == "" {
		return true // the root always exists
	}
	if _, ok := s.objects[key]; ok {
		return true
	}
	prefix := key + "/"
	for n := range s.objects {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

// Remove implements Backend: DELETE the object, or every object under the
// prefix. Deleting a missing key succeeds (object-store DELETEs are
// idempotent), matching the other backends.
func (s *ObjStore) Remove(name string) error {
	s.sleepOp()
	s.mu.Lock()
	defer s.mu.Unlock()
	key := objKey(name)
	delete(s.objects, key)
	prefix := key + "/"
	if key == "" {
		prefix = ""
	}
	for n := range s.objects {
		if strings.HasPrefix(n, prefix) {
			delete(s.objects, n)
		}
	}
	return nil
}

// Rename implements Backend by refusing: object stores have no rename.
// Publication must go through write-objects-then-manifest instead.
func (s *ObjStore) Rename(oldName, newName string) error {
	return fmt.Errorf("storage: rename %s -> %s: %w", oldName, newName, ErrNotSupported)
}

// RenameSupported reports the capability gap Rename's error encodes.
func (s *ObjStore) RenameSupported() bool { return false }

// Compose implements Composer: one atomic server-side concatenation of the
// parts (in argument order) into dst, deleting the parts — the multipart-
// upload completion primitive. No payload bytes cross the link; only one
// request round trip is charged. A missing part fails the whole compose
// with nothing changed, so a retried compose after a reported-failed
// success surfaces honestly instead of corrupting dst.
func (s *ObjStore) Compose(dst string, parts ...string) error {
	s.sleepOp()
	if err := s.flake(); err != nil {
		return fmt.Errorf("storage: compose %s: %w", dst, err)
	}
	if len(parts) == 0 {
		return fmt.Errorf("storage: compose %s: no parts", dst)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int
	for _, p := range parts {
		data, ok := s.objects[objKey(p)]
		if !ok {
			return objNotExist("compose part", p)
		}
		total += len(data)
	}
	out := make([]byte, 0, total)
	for _, p := range parts {
		out = append(out, s.objects[objKey(p)]...)
	}
	s.objects[objKey(dst)] = out
	for _, p := range parts {
		delete(s.objects, objKey(p))
	}
	return nil
}
