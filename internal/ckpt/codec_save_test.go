package ckpt

// Blob-codec integration over the save/restore surface: xor-parent saves
// against a slightly-perturbed previous checkpoint must actually delta
// (manifest entries carry the codec and parent chain, stored bytes shrink),
// restore bit-exact and materialize byte-identical to a plain save; the
// re-base bound must cap chain depth; and Dedupify must convert committed
// checkpoints in place on no-rename (object store) backends, converging
// under crash-point exploration.

import (
	"bytes"
	"fmt"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// perturbLayer nudges every 97th master element of one mergeable layer's
// optimizer state and re-derives the model from the masters — a tiny
// training step: almost all bytes identical to the previous save, and the
// model = rounded-master invariant restore re-establishes holds by
// construction.
func perturbLayer(t testing.TB, m *model.Model, o *optim.AdamW, cfg *modelcfg.Config, layerIdx, step int) {
	t.Helper()
	ref := cfg.AllLayers()[layerIdx%len(cfg.AllLayers())]
	for gi, g := range o.Layout.Groups {
		if !g.HasLayer || g.Layer != ref {
			continue
		}
		st := o.States[gi]
		for k := 0; k < len(st.Master); k += 97 {
			st.Master[k] += float32(step) * 1e-2
			st.ExpAvg[k] += float32(step) * 1e-4
		}
	}
	if err := o.SyncModelFromMaster(); err != nil {
		t.Fatal(err)
	}
}

func codecSpec(dir string, step int, m *model.Model, o *optim.AdamW, codec string, rebase int) SaveSpec {
	return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2, Strategy: "full",
		Dedup: true, Codec: codec, CodecRebase: rebase,
		State: TrainerState{Step: step, Seed: 170}}
}

// TestCodecXorSaveRoundTrip: an xor save after a small perturbation must
// produce xor-parent manifest entries whose stored bytes undercut the
// payload, restore bit-exact, and materialize byte-identical to a plain
// (uncompressed, non-dedup) save of the same state.
func TestCodecXorSaveRoundTrip(t *testing.T) {
	cfg := modelcfg.Tiny()
	m, o := buildOptim(t, cfg, 170)
	b := storage.NewMem()
	plain := storage.NewMem()
	saveBoth := func(dir string, step int) {
		t.Helper()
		if err := Save(b, codecSpec(dir, step, m, o, "xor", 0)); err != nil {
			t.Fatal(err)
		}
		if err := Save(plain, SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", State: TrainerState{Step: step, Seed: 170}}); err != nil {
			t.Fatal(err)
		}
	}
	saveBoth("run/checkpoint-100", 100)
	perturbLayer(t, m, o, cfg, 2, 1)
	saveBoth("run/checkpoint-200", 200)

	cs, err := ReadCodecStats(b, "run/checkpoint-200")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Entries["xor-parent"] == 0 {
		t.Fatalf("no xor-parent entries after a perturbed save: %+v", cs.Entries)
	}
	if cs.DeepestChain != 1 {
		t.Fatalf("deepest chain = %d, want 1", cs.DeepestChain)
	}
	if cs.StoredBytes >= cs.RawBytes {
		t.Fatalf("no compression: stored %d >= payload %d", cs.StoredBytes, cs.RawBytes)
	}

	// Restore is bit-exact against the live state.
	rm, ro, c, err := Restore(b, "run/checkpoint-200", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if c.State.Step != 200 || !model.Equal(rm, m) || !sameOptim(ro, o) {
		t.Fatal("xor-parent restore differs from the saved state")
	}

	// Materialization reproduces the plain save's containers byte for byte
	// — the digest-over-uncompressed invariant end to end.
	if err := MaterializeWeights(b, "run/checkpoint-200", "mat.ltsf", 0); err != nil {
		t.Fatal(err)
	}
	want, _ := plain.ReadFile("run/checkpoint-200/model.ltsf")
	got, _ := b.ReadFile("mat.ltsf")
	if len(want) == 0 || !bytes.Equal(want, got) {
		t.Fatal("materialized xor checkpoint differs from the plain save")
	}
	for r := 0; r < 2; r++ {
		if err := MaterializeShardFile(b, "run/checkpoint-200", r, "mat.ltos", 0); err != nil {
			t.Fatal(err)
		}
		want, _ := plain.ReadFile("run/checkpoint-200/" + ShardFileName(r))
		got, _ := b.ReadFile("mat.ltos")
		if len(want) == 0 || !bytes.Equal(want, got) {
			t.Fatalf("materialized rank %d shard differs from the plain save", r)
		}
	}

	// Health: committed, referenced, clean index; a full GC must keep the
	// parents the delta chain pins and leave both checkpoints restorable.
	if err := VerifyCommit(b, "run/checkpoint-200"); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(b, "run"); err != nil {
		t.Fatal(err)
	}
	if problems := refProblems(t, b, "run"); len(problems) != 0 {
		t.Fatalf("ref-index problems: %+v", problems)
	}
	if _, _, _, err := Restore(b, "run/checkpoint-200", tensor.BF16); err != nil {
		t.Fatalf("restore after gc: %v", err)
	}
	if _, _, _, err := Restore(b, "run/checkpoint-100", tensor.BF16); err != nil {
		t.Fatalf("parent checkpoint unrestorable after gc: %v", err)
	}

	// Doctor's codec view agrees and finds no missing parents.
	health, err := ScanCodecs(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range health {
		if len(h.MissingParents) != 0 {
			t.Fatalf("%s reports missing parents: %v", h.Dir, h.MissingParents)
		}
	}
}

// TestCodecRebaseBoundsChain: with CodecRebase=2 and the same layer
// perturbed every save, chains must grow 1, 2, then re-base — never
// exceeding the bound — and every generation stays restorable.
func TestCodecRebaseBoundsChain(t *testing.T) {
	cfg := modelcfg.Tiny()
	m, o := buildOptim(t, cfg, 171)
	b := storage.NewMem()
	const saves = 7
	sawBound, sawRebase := false, false
	for i := 1; i <= saves; i++ {
		if i > 1 {
			perturbLayer(t, m, o, cfg, 2, i)
		}
		dir := fmt.Sprintf("run/checkpoint-%d", i*100)
		if err := Save(b, codecSpec(dir, i*100, m, o, "xor", 2)); err != nil {
			t.Fatal(err)
		}
		cs, err := ReadCodecStats(b, dir)
		if err != nil {
			t.Fatal(err)
		}
		if cs.DeepestChain > 2 {
			t.Fatalf("save %d: chain depth %d exceeds rebase bound 2", i, cs.DeepestChain)
		}
		if i > 1 {
			if cs.DeepestChain == 2 {
				sawBound = true
			}
			if sawBound && cs.DeepestChain < 2 {
				sawRebase = true
			}
		}
	}
	if !sawBound || !sawRebase {
		t.Fatalf("chain never cycled through the bound: sawBound=%v sawRebase=%v", sawBound, sawRebase)
	}
	rm, ro, _, err := Restore(b, fmt.Sprintf("run/checkpoint-%d", saves*100), tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(rm, m) || !sameOptim(ro, o) {
		t.Fatal("final restore differs after repeated deltas and re-bases")
	}
}

// TestDedupifyObjStore: in-place conversion on a no-rename backend via the
// write-objects-then-marker protocol — committed before, committed after,
// materialization bit-identical, second run a no-op.
func TestDedupifyObjStore(t *testing.T) {
	b := storage.NewObjStore()
	m, o := saveFull(t, b, "run/checkpoint-5", 172, 2)
	origLTSF, _ := b.ReadFile("run/checkpoint-5/model.ltsf")

	rep, err := Dedupify(b, "run/checkpoint-5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlobsPut == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if b.Exists("run/checkpoint-5/model.ltsf") {
		t.Fatal("payload container survived conversion")
	}
	if !IsDedup(b, "run/checkpoint-5") {
		t.Fatal("not content-addressed after dedupify")
	}
	if err := VerifyCommit(b, "run/checkpoint-5"); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(b, "run/checkpoint-5")
	if err != nil || !man.Dedup || man.RefGen == 0 {
		t.Fatalf("manifest = %+v, %v", man, err)
	}
	rm, ro, _, err := Restore(b, "run/checkpoint-5", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(rm, m) || !sameOptim(ro, o) {
		t.Fatal("restore differs after objstore dedupify")
	}
	if err := MaterializeWeights(b, "run/checkpoint-5", "mat.ltsf", 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.ReadFile("mat.ltsf"); !bytes.Equal(got, origLTSF) {
		t.Fatal("materialized weights differ from the original container")
	}
	if problems := refProblems(t, b, "run"); len(problems) != 0 {
		t.Fatalf("ref-index problems: %+v", problems)
	}

	rep2, err := Dedupify(b, "run/checkpoint-5", 0)
	if err != nil || rep2.BlobsPut != 0 || rep2.BlobsReused != 0 {
		t.Fatalf("second dedupify = %+v, %v", rep2, err)
	}
}

// TestCrashPointExplorationObjStoreDedupify fails every storage operation
// of an in-place conversion in turn. The invariant is stronger than the
// save path's previous-or-new: the directory being converted is the ONLY
// copy, so it must remain committed and readable at every crash point
// (plain until the marker swap, content-addressed after), and a re-run on
// the durable state must converge to the fault-free result. Torn writes
// are excluded: object-store PUTs are atomic, which the marker-swap
// protocol relies on — the torn mode models local-FS partial writes.
func TestCrashPointExplorationObjStoreDedupify(t *testing.T) {
	build := func() (*storage.ObjStore, *model.Model, *optim.AdamW, []byte) {
		b := storage.NewObjStore()
		m, o := saveFull(t, b, "run/checkpoint-5", 173, 2)
		ltsf, _ := b.ReadFile("run/checkpoint-5/model.ltsf")
		return b, m, o, ltsf
	}

	base, _, _, _ := build()
	f := storage.NewFault(base)
	if _, err := Dedupify(f, "run/checkpoint-5", 0); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())
	if n < 8 {
		t.Fatalf("suspiciously few fault points in an objstore dedupify: %d", n)
	}
	t.Logf("exploring %d dedupify crash points", n)

	for k := 1; k <= n; k++ {
		base, m, o, ltsf := build()
		f := storage.NewFault(base)
		f.FailAt(k)
		if _, err := Dedupify(f, "run/checkpoint-5", 0); !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}

		// Invariant 1: the checkpoint never stops being committed-readable.
		if err := VerifyCommit(base, "run/checkpoint-5"); err != nil {
			t.Fatalf("k=%d: checkpoint unverifiable mid-conversion: %v", k, err)
		}
		rm, ro, _, err := Restore(base, "run/checkpoint-5", tensor.BF16)
		if err != nil {
			t.Fatalf("k=%d: checkpoint unrestorable mid-conversion: %v", k, err)
		}
		if !model.Equal(rm, m) || !sameOptim(ro, o) {
			t.Fatalf("k=%d: mid-conversion restore differs", k)
		}

		// Invariant 2: a re-run converges to the converted form.
		if _, err := Dedupify(base, "run/checkpoint-5", 0); err != nil {
			t.Fatalf("k=%d: dedupify re-run: %v", k, err)
		}
		if !IsDedup(base, "run/checkpoint-5") {
			t.Fatalf("k=%d: not content-addressed after re-run", k)
		}
		if err := VerifyCommit(base, "run/checkpoint-5"); err != nil {
			t.Fatalf("k=%d: unverifiable after re-run: %v", k, err)
		}
		rm, ro, _, err = Restore(base, "run/checkpoint-5", tensor.BF16)
		if err != nil {
			t.Fatalf("k=%d: unrestorable after re-run: %v", k, err)
		}
		if !model.Equal(rm, m) || !sameOptim(ro, o) {
			t.Fatalf("k=%d: restore differs after re-run", k)
		}
		if err := MaterializeWeights(base, "run/checkpoint-5", "mat.ltsf", 0); err != nil {
			t.Fatalf("k=%d: materialize after re-run: %v", k, err)
		}
		if got, _ := base.ReadFile("mat.ltsf"); !bytes.Equal(got, ltsf) {
			t.Fatalf("k=%d: materialized weights differ from the original container", k)
		}

		// Invariant 3: no unlisted shard-file residue survives convergence,
		// and the marker's listing matches the files on the backend.
		marker, err := ReadCommitMarker(base, "run/checkpoint-5")
		if err != nil {
			t.Fatalf("k=%d: marker unreadable after re-run: %v", k, err)
		}
		for rank := 0; rank < 2; rank++ {
			name := ShardFileName(rank)
			if _, listed := marker.Files[name]; listed {
				t.Fatalf("k=%d: %s still listed after conversion", k, name)
			}
			if base.Exists("run/checkpoint-5/" + name) {
				t.Fatalf("k=%d: unlisted %s left on the backend", k, name)
			}
		}
		if base.Exists("run/checkpoint-5/model.ltsf") {
			t.Fatalf("k=%d: model.ltsf survived conversion", k)
		}
	}
}
