package ckpt

import (
	"strings"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// buildOptim creates a tiny trained-ish optimizer for shard tests.
func buildOptim(t testing.TB, cfg *modelcfg.Config, seed uint64) (*model.Model, *optim.AdamW) {
	t.Helper()
	m, err := model.NewInitialized(cfg, tensor.BF16, seed)
	if err != nil {
		t.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(seed + 1)
	grads := optim.GradMap{}
	for _, ts := range m.Tensors() {
		g := make([]float32, ts.Len())
		for i := range g {
			g[i] = rng.NormFloat32() * 0.1
		}
		grads[ts.Name] = g
	}
	for i := 0; i < 3; i++ {
		if err := o.Step(1e-3, grads); err != nil {
			t.Fatal(err)
		}
	}
	return m, o
}

func TestShardFileRoundtrip(t *testing.T) {
	cfg := modelcfg.Tiny()
	_, o := buildOptim(t, cfg, 10)
	b := storage.NewMem()

	ws := 4
	byRank, err := zero.ShardAll(o.States, ws)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]ShardGroupMeta, len(o.Layout.Groups))
	for i, g := range o.Layout.Groups {
		metas[i] = metaForGroup(g)
	}
	for r := 0; r < ws; r++ {
		if err := WriteShardFile(b, ShardFileName(r), r, ws, o.StepCount, o.Layout.Kind, metas, byRank[r]); err != nil {
			t.Fatal(err)
		}
	}

	for r := 0; r < ws; r++ {
		f, err := ReadShardFile(b, ShardFileName(r))
		if err != nil {
			t.Fatal(err)
		}
		if f.Rank != r || f.WorldSize != ws || f.Step != 3 || f.Layout != optim.Layerwise {
			t.Fatalf("rank %d header: %+v", r, f)
		}
		if len(f.Shards) != len(o.States) {
			t.Fatalf("rank %d: %d groups", r, len(f.Shards))
		}
		for i, s := range f.Shards {
			want := byRank[r][i]
			for j := range want.Master {
				if s.Master[j] != want.Master[j] || s.ExpAvg[j] != want.ExpAvg[j] || s.ExpAvgSq[j] != want.ExpAvgSq[j] {
					t.Fatalf("rank %d group %d elem %d mismatch", r, i, j)
				}
			}
		}
	}
}

func TestShardFileGroupByIndex(t *testing.T) {
	cfg := modelcfg.Tiny()
	_, o := buildOptim(t, cfg, 11)
	b := storage.NewMem()
	byRank, _ := zero.ShardAll(o.States, 2)
	metas := make([]ShardGroupMeta, len(o.Layout.Groups))
	for i, g := range o.Layout.Groups {
		metas[i] = metaForGroup(g)
	}
	WriteShardFile(b, "f", 0, 2, 1, optim.Layerwise, metas, byRank[0])
	f, _ := ReadShardFile(b, "f")

	s, m, err := f.GroupByIndex(3)
	if err != nil || s == nil || m.Index != 3 {
		t.Fatalf("GroupByIndex: %v %v %v", s, m, err)
	}
	if _, _, err := f.GroupByIndex(999); err == nil {
		t.Fatal("expected missing group error")
	}
}

func TestShardFileWrongRankRejected(t *testing.T) {
	cfg := modelcfg.Tiny()
	_, o := buildOptim(t, cfg, 12)
	byRank, _ := zero.ShardAll(o.States, 2)
	metas := make([]ShardGroupMeta, len(o.Layout.Groups))
	for i, g := range o.Layout.Groups {
		metas[i] = metaForGroup(g)
	}
	b := storage.NewMem()
	// Write rank-1 shards into a rank-0 file.
	if err := WriteShardFile(b, "f", 0, 2, 1, optim.Layerwise, metas, byRank[1]); err == nil {
		t.Fatal("wrong-rank shards accepted")
	}
}

func TestShardFileMetaShardMismatch(t *testing.T) {
	if err := WriteShardFile(storage.NewMem(), "f", 0, 1, 1, optim.Layerwise,
		make([]ShardGroupMeta, 2), make([]*zero.GroupShard, 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestShardFileCorruption(t *testing.T) {
	cfg := modelcfg.Tiny()
	_, o := buildOptim(t, cfg, 13)
	byRank, _ := zero.ShardAll(o.States, 1)
	metas := make([]ShardGroupMeta, len(o.Layout.Groups))
	for i, g := range o.Layout.Groups {
		metas[i] = metaForGroup(g)
	}
	b := storage.NewMem()
	WriteShardFile(b, "f", 0, 1, 1, optim.Layerwise, metas, byRank[0])

	raw, _ := b.ReadFile("f")
	raw[len(raw)-3] ^= 0x55
	b.WriteFile("f", raw)
	if _, err := ReadShardFile(b, "f"); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("err = %v", err)
	}

	raw2, _ := b.ReadFile("f")
	raw2[0] = 'X'
	b.WriteFile("g", raw2)
	if _, err := ReadShardFile(b, "g"); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestShardFileTruncated(t *testing.T) {
	b := storage.NewMem()
	b.WriteFile("f", []byte("LTOS"))
	if _, err := ReadShardFile(b, "f"); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestShardFileNameFormat(t *testing.T) {
	if got := ShardFileName(3); got != "zero/rank_03_optim_states.ltos" {
		t.Fatalf("name = %q", got)
	}
}

func TestShardMetaLayerRef(t *testing.T) {
	m := ShardGroupMeta{Layer: "layer.7"}
	ref, ok := m.LayerRefOf()
	if !ok || ref != modelcfg.Block(7) {
		t.Fatalf("LayerRefOf = %v %v", ref, ok)
	}
	m2 := ShardGroupMeta{}
	if _, ok := m2.LayerRefOf(); ok {
		t.Fatal("empty layer parsed")
	}
	m3 := ShardGroupMeta{Layer: "bogus"}
	if _, ok := m3.LayerRefOf(); ok {
		t.Fatal("bogus layer parsed")
	}
}
