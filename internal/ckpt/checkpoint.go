package ckpt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// TrainerState mirrors HuggingFace's trainer_state.json: everything needed
// to resume the run at the right point (paper §4.4).
type TrainerState struct {
	Step        int         `json:"global_step"`
	LR          float64     `json:"learning_rate"`
	Loss        float64     `json:"loss"`
	EvalLoss    float64     `json:"eval_loss"`
	Task        string      `json:"task"`
	Seed        uint64      `json:"seed"`
	WorldSize   int         `json:"world_size"`
	Layout      string      `json:"optimizer_layout"`
	Hyper       optim.Hyper `json:"optimizer_hyper"`
	TotalSteps  int         `json:"total_steps"`
	WarmupSteps int         `json:"warmup_steps"`
	BaseLR      float64     `json:"base_lr"`
	// LossHistory keeps the most recent per-step losses for diagnostics.
	LossHistory []float64 `json:"loss_history,omitempty"`
}

// Manifest records what a (possibly partial) checkpoint contains, matching
// the JSON file the paper's artifact produces in task T1.
type Manifest struct {
	Step int `json:"step"`
	// Strategy names the partial-checkpoint policy ("full", "parity", ...).
	Strategy string `json:"strategy"`
	// Layers lists the saved mergeable layers ("layer.0", "embed_tokens"...)
	// in canonical order.
	Layers []string `json:"layers"`
	// Complete is true when every model layer is present.
	Complete bool `json:"complete"`
	// Dedup is true when the checkpoint is content-addressed: payloads
	// live as blobs in the run root's objects/ store, referenced by
	// manifests instead of LTSF/LTOS containers.
	Dedup bool `json:"dedup,omitempty"`
	// RefGen is the ref-index generation this checkpoint's save journaled
	// (dedup checkpoints only; 0 on pre-ref-index checkpoints). It binds
	// the published directory to exactly one record under objects/refs/,
	// which is what lets a generational GC prove an older record for the
	// same directory name superseded.
	RefGen int64 `json:"ref_gen,omitempty"`
}

// HasLayer reports whether the manifest includes the given layer.
func (m *Manifest) HasLayer(ref modelcfg.LayerRef) bool {
	want := ref.String()
	for _, l := range m.Layers {
		if l == want {
			return true
		}
	}
	return false
}

// DirName returns the conventional checkpoint directory name for a step.
func DirName(step int) string { return fmt.Sprintf("checkpoint-%d", step) }

// SaveSpec describes one checkpoint write.
type SaveSpec struct {
	// Dir is the checkpoint directory (e.g. "checkpoint-100").
	Dir string
	// Model and Optim supply the state to snapshot. Optim's layout must be
	// layerwise for partial saves (a two-group layout cannot split layers).
	Model *model.Model
	Optim *optim.AdamW
	// WorldSize is the number of simulated ranks to shard optimizer state
	// across.
	WorldSize int
	// Layers selects which mergeable layers to save; nil means all.
	Layers []modelcfg.LayerRef
	// Strategy is recorded in the manifest.
	Strategy string
	// State is written to trainer_state.json.
	State TrainerState
	// Dedup selects the content-addressed save path: payloads are stored
	// once per content digest in the run root's objects/ store, and the
	// checkpoint directory holds manifests referencing them. Unchanged
	// layers between saves cost zero payload bytes.
	Dedup bool
	// Codec selects how dedup payload blobs are stored: "" or "raw" keeps
	// the pre-codec byte-for-byte blobs, "plane" byte-plane-codes every
	// blob standalone, "xor" (or "xor-parent") additionally deltas changed
	// payloads against the previous checkpoint's blob for the same slot.
	// Whatever is requested, blobs that would not shrink are stored raw and
	// manifests record the actual codec — restore is always byte-identical.
	Codec string
	// CodecRebase bounds xor-parent chain depth: a slot whose chain would
	// exceed it is re-based to a self-contained plane blob. 0 means
	// DefaultCodecRebase.
	CodecRebase int
	// LayerGens carries the optimizer's per-layer mutation counters
	// (optim.AdamW.LayerGens) at save time. Lazy capture uses them to prove
	// a layer unchanged since the previous save and skip hashing it
	// entirely; nil disables the proof (capture still dedups by digest).
	// The synchronous Save path ignores the field.
	LayerGens map[modelcfg.LayerRef]int64
}

// savePlan is the validated, enumerated shape of one checkpoint save: which
// live weight tensors and optimizer groups the layer selection includes,
// plus every header scalar the write needs, snapshotted at plan time.
// Building a plan moves no payload bytes — the lazy capture path relies on
// that to keep the foreground Save call O(metadata).
type savePlan struct {
	cfg    *modelcfg.Config
	layers []modelcfg.LayerRef
	// weights lists the included live tensors in model spec order;
	// weightLayers is parallel (each tensor's owning layer).
	weights      []*tensor.Tensor
	weightLayers []modelcfg.LayerRef
	// metas and states are parallel: the included groups' LTOS metadata
	// (offsets unset) and their live state, in layout order.
	metas  []ShardGroupMeta
	states []*optim.GroupState
	// groupLayers is parallel to metas; hasLayer[i] is false for two-group
	// layouts.
	groupLayers []modelcfg.LayerRef
	hasLayer    []bool

	worldSize  int
	stepCount  int
	layoutKind optim.LayoutKind
	hyper      optim.Hyper
	complete   bool
}

// buildSavePlan validates a spec and enumerates what it saves. It reads
// only metadata (names, shapes, counters) from the live model and
// optimizer, never payload bytes.
func buildSavePlan(spec *SaveSpec) (*savePlan, error) {
	cfg := spec.Model.Config
	layers := spec.Layers
	if layers == nil {
		layers = cfg.AllLayers()
	}
	if spec.WorldSize <= 0 {
		return nil, fmt.Errorf("ckpt: world size %d", spec.WorldSize)
	}
	inSet := map[modelcfg.LayerRef]bool{}
	for _, ref := range layers {
		inSet[ref] = true
	}
	if cfg.TieWordEmbeddings && inSet[modelcfg.LMHead] {
		return nil, fmt.Errorf("ckpt: model %s ties embeddings; lm_head is not a separate layer", cfg.Name)
	}
	o := spec.Optim
	p := &savePlan{
		cfg: cfg, layers: layers, worldSize: spec.WorldSize,
		stepCount: o.StepCount, layoutKind: o.Layout.Kind, hyper: o.Hyper,
		complete: len(layers) == len(cfg.AllLayers()),
	}
	for gi, g := range o.Layout.Groups {
		include := true
		if g.HasLayer {
			include = inSet[g.Layer]
		} else if len(layers) != len(cfg.AllLayers()) {
			return nil, fmt.Errorf("ckpt: partial save requires a layerwise optimizer layout (got %s)", o.Layout.Kind)
		}
		if include {
			p.metas = append(p.metas, metaForGroup(g))
			p.states = append(p.states, o.States[gi])
			p.groupLayers = append(p.groupLayers, g.Layer)
			p.hasLayer = append(p.hasLayer, g.HasLayer)
		}
	}
	for i, s := range spec.Model.Specs() {
		if inSet[s.Layer] {
			p.weights = append(p.weights, spec.Model.Tensors()[i])
			p.weightLayers = append(p.weightLayers, s.Layer)
		}
	}
	return p, nil
}

// Save writes a checkpoint directory: consolidated weights, per-rank
// optimizer shards, config, trainer state and manifest. The write is
// crash-consistent: every file is staged into `<dir>.tmp`, sealed with a
// COMMITTED marker (per-file sizes and CRCs) and published with one atomic
// rename before the run-root "latest" pointer moves. A crash at any point
// leaves the previous checkpoint intact and resolvable.
func Save(b storage.Backend, spec SaveSpec) error {
	// Validate the spec before opening the transaction, so spec errors
	// never leave a staging directory behind.
	plan, err := buildSavePlan(&spec)
	if err != nil {
		return err
	}

	txn, err := Begin(b, spec.Dir)
	if err != nil {
		return err
	}
	defer txn.Abort()
	sb, dir := txn.Backend(), txn.Dir()

	// 1+2. Weights and optimizer shards (only saved layers' tensors and
	// groups). The dedup path stores payloads as content-addressed blobs —
	// published on the base backend before the commit seals the manifests —
	// while the plain path writes full LTSF/LTOS containers into staging.
	byRank, err := zero.ShardAll(plan.states, plan.worldSize)
	if err != nil {
		return err
	}
	var refGen int64
	if spec.Dedup {
		cplan, err := newCodecPlan(b, spec.Dir, spec.Codec, spec.CodecRebase, nil)
		if err != nil {
			return err
		}
		gen, err := writeDedupPayloads(b, sb, dir, spec.Dir, plan.cfg.Name, plan.weights,
			plan.metas, byRank, plan.worldSize, plan.stepCount, plan.layoutKind, cplan)
		if err != nil {
			return err
		}
		refGen = gen
	} else {
		if err := WriteLTSF(sb, dir+"/model.ltsf", plan.cfg.Name, plan.weights); err != nil {
			return err
		}
		for r := 0; r < plan.worldSize; r++ {
			name := dir + "/" + ShardFileName(r)
			if err := WriteShardFile(sb, name, r, plan.worldSize, plan.stepCount, plan.layoutKind, plan.metas, byRank[r]); err != nil {
				return err
			}
		}
	}

	// 3. Config, trainer state, manifest.
	if err := writeTrailer(sb, dir, &spec, plan, refGen); err != nil {
		return err
	}

	// 4. Seal and publish, then move the run-root "latest" pointer.
	if err := txn.Commit(spec.State.Step); err != nil {
		return err
	}
	return WriteLatestPointer(b, spec.Dir)
}

// writeTrailer stages the small JSON files every checkpoint ends with:
// config, trainer state and manifest. Shared between the synchronous Save
// and the lazy capture writer, so the two paths stay byte-identical.
func writeTrailer(sb storage.Backend, dir string, spec *SaveSpec, plan *savePlan, refGen int64) error {
	if err := writeJSON(sb, dir+"/config.json", plan.cfg); err != nil {
		return err
	}
	st := spec.State
	st.WorldSize = plan.worldSize
	st.Layout = plan.layoutKind.String()
	st.Hyper = plan.hyper
	if err := writeJSON(sb, dir+"/trainer_state.json", &st); err != nil {
		return err
	}
	man := Manifest{
		Step:     st.Step,
		Strategy: spec.Strategy,
		Complete: plan.complete,
		Dedup:    spec.Dedup,
		RefGen:   refGen,
	}
	for _, ref := range plan.layers {
		man.Layers = append(man.Layers, ref.String())
	}
	sort.Strings(man.Layers)
	return writeJSON(sb, dir+"/manifest.json", &man)
}

// LatestPointerPath returns where the "latest" pointer for a checkpoint
// directory lives: next to the directory, i.e. in its parent. A
// single-segment dir ("merged") has the backend root as its run root, so
// its pointer is the root-level "latest" file — a deliberate, documented
// edge case: Latest(b, "") resolves it.
func LatestPointerPath(dir string) string {
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		return dir[:i] + "/latest"
	}
	return "latest"
}

// WriteLatestPointer refreshes the run root's "latest" pointer to name the
// given checkpoint directory, so resume tooling finds it. The update is
// atomic: write-staging + rename on filesystems, a single whole-object PUT
// on no-rename backends (an object PUT replaces atomically by itself) — a
// crash mid-update leaves the previous pointer intact, never a truncated
// one.
func WriteLatestPointer(b storage.Backend, dir string) error {
	name := dir
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		name = dir[i+1:]
	}
	p := LatestPointerPath(dir)
	if !storage.RenameSupported(b) {
		return b.WriteFile(p, []byte(name))
	}
	tmp := p + stagingSuffix
	if err := b.WriteFile(tmp, []byte(name)); err != nil {
		return err
	}
	return b.Rename(tmp, p)
}

func writeJSON(b storage.Backend, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: marshal %s: %w", name, err)
	}
	return b.WriteFile(name, append(data, '\n'))
}

func readJSON(b storage.Backend, name string, v any) error {
	data, err := b.ReadFile(name)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("ckpt: decode %s: %w", name, err)
	}
	return nil
}

// ReadManifest reads just a checkpoint's manifest.json, without touching
// weights or shards — recipe auto-generation scans many checkpoints this way.
func ReadManifest(b storage.Backend, dir string) (Manifest, error) {
	var man Manifest
	if err := readJSON(b, dir+"/manifest.json", &man); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// WeightsReader is the lazy per-tensor access surface a checkpoint's
// weights expose, satisfied by both container layouts: LTSFReader over a
// plain model.ltsf and DedupWeights over a content-addressed manifest.
// Merge, verify and resume code works against this interface so dedup
// checkpoints are transparent sources.
type WeightsReader interface {
	// Model returns the model name recorded at write time.
	Model() string
	// Names returns the sorted tensor names present.
	Names() []string
	// Has reports whether the named tensor is present.
	Has(name string) bool
	// PayloadSize returns the stored payload byte size (no payload I/O).
	PayloadSize(name string) (int64, bool)
	// ReadTensor reads, CRC-verifies and decodes one tensor.
	ReadTensor(name string) (*tensor.Tensor, error)
	// ReadAll reads every tensor in name order.
	ReadAll() ([]*tensor.Tensor, error)
	// RawTensor returns the stored payload extent and checksum.
	RawTensor(name string) (RawTensor, error)
	// OpenRaw opens a streaming reader over the stored payload extent.
	OpenRaw(name string) (RawTensor, io.ReadCloser, error)
	// RawEligible reports whether the tensor can be raw-copied into an
	// output of the given dtype.
	RawEligible(name string, out tensor.DType) bool
}

// Checkpoint is an open handle to a checkpoint directory. Opening reads only
// the small JSON files and the weight header (or manifest); tensor and shard
// payloads are fetched on demand.
type Checkpoint struct {
	Backend storage.Backend
	Dir     string

	Config   *modelcfg.Config
	State    TrainerState
	Manifest Manifest

	weights WeightsReader
}

// Open validates and indexes a checkpoint directory, plain or dedup.
func Open(b storage.Backend, dir string) (*Checkpoint, error) {
	c := &Checkpoint{Backend: b, Dir: dir}
	c.Config = &modelcfg.Config{}
	if err := readJSON(b, dir+"/config.json", c.Config); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	if err := c.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	if err := readJSON(b, dir+"/trainer_state.json", &c.State); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	if err := readJSON(b, dir+"/manifest.json", &c.Manifest); err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	if IsDedup(b, dir) {
		w, err := OpenDedupWeights(b, dir)
		if err != nil {
			return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
		}
		c.weights = w
		return c, nil
	}
	w, err := OpenLTSF(b, dir+"/model.ltsf")
	if err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %w", dir, err)
	}
	c.weights = w
	return c, nil
}

// Weights exposes the lazy weight reader (plain LTSF or dedup-backed).
func (c *Checkpoint) Weights() WeightsReader { return c.weights }

// ReadOptimShard fully reads one rank's optimizer state: the LTOS shard
// file of a plain checkpoint, or the rank's shard manifest plus group
// blobs of a dedup one.
func (c *Checkpoint) ReadOptimShard(rank int) (*ShardFile, error) {
	name := c.Dir + "/" + ShardFileName(rank)
	if !c.Backend.Exists(name) && c.Backend.Exists(c.Dir+"/"+ShardManifestName(rank)) {
		return readDedupShardFile(c.Backend, c.Dir, rank)
	}
	return ReadShardFile(c.Backend, name)
}

// WorldSize returns the rank count recorded at save time.
func (c *Checkpoint) WorldSize() int { return c.State.WorldSize }

// Latest resolves the run root's "latest" pointer to a checkpoint dir
// path. Only committed checkpoints are ever returned: when the pointer
// dangles, or its target fails the commit check (a crash window, external
// mutilation), Latest falls back to the newest committed checkpoint under
// the run root instead of handing resume tooling a torn directory.
func Latest(b storage.Backend, runRoot string) (string, error) {
	p := "latest"
	if runRoot != "" {
		p = runRoot + "/latest"
	}
	var pointerErr error
	if data, err := b.ReadFile(p); err != nil {
		pointerErr = fmt.Errorf("ckpt: no latest pointer under %q: %w", runRoot, err)
	} else {
		dir := strings.TrimSpace(string(data))
		if runRoot != "" {
			dir = runRoot + "/" + dir
		}
		if err := CheckCommit(b, dir); err == nil {
			return dir, nil
		} else {
			pointerErr = fmt.Errorf("ckpt: latest pointer target unusable: %w", err)
		}
	}
	// Fall back to the newest committed checkpoint.
	if dirs, err := List(b, runRoot); err == nil && len(dirs) > 0 {
		return dirs[len(dirs)-1], nil
	}
	return "", fmt.Errorf("ckpt: no committed checkpoint under %q: %w", runRoot, pointerErr)
}

// List returns the committed checkpoint directory paths under a run root,
// sorted by step number. Uncommitted directories — torn checkpoints,
// abandoned `.tmp` staging trees — are skipped, so every returned path is
// safe to Open.
func List(b storage.Backend, runRoot string) ([]string, error) {
	entries, err := b.List(runRoot)
	if err != nil {
		return nil, err
	}
	type item struct {
		path string
		step int
	}
	var items []item
	for _, e := range entries {
		if !strings.HasPrefix(e, "checkpoint-") || !strings.HasSuffix(e, "/") {
			continue
		}
		name := strings.TrimSuffix(e, "/")
		var step int
		if _, err := fmt.Sscanf(name, "checkpoint-%d", &step); err != nil || IsStagingPath(name) {
			continue
		}
		p := name
		if runRoot != "" {
			p = runRoot + "/" + name
		}
		if err := CheckCommit(b, p); err != nil {
			continue
		}
		items = append(items, item{p, step})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].step < items[j].step })
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.path
	}
	return out, nil
}

// Restore rebuilds a model and optimizer from a *complete* checkpoint. The
// checkpoint must contain every layer (merged "Frankenstein" checkpoints
// qualify; raw partial checkpoints do not).
func Restore(b storage.Backend, dir string, dtype tensor.DType) (*model.Model, *optim.AdamW, *Checkpoint, error) {
	c, err := Open(b, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if !c.Manifest.Complete {
		return nil, nil, nil, fmt.Errorf("ckpt: %s is a partial checkpoint (%d layers); merge it first", dir, len(c.Manifest.Layers))
	}
	m, err := model.New(c.Config, dtype)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, name := range c.weights.Names() {
		t, err := c.weights.ReadTensor(name)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := m.SetTensor(name, t); err != nil {
			return nil, nil, nil, err
		}
	}

	kind, err := optim.ParseLayoutKind(c.State.Layout)
	if err != nil {
		return nil, nil, nil, err
	}
	var layout *optim.Layout
	if kind == optim.Layerwise {
		layout = optim.NewLayerwiseLayout(c.Config)
	} else {
		layout = optim.NewTwoGroupLayout(c.Config)
	}

	ws := c.State.WorldSize
	if ws <= 0 {
		return nil, nil, nil, fmt.Errorf("ckpt: %s: invalid world size %d", dir, ws)
	}
	byRank := make([][]*zero.GroupShard, ws)
	var step int
	for r := 0; r < ws; r++ {
		sf, err := c.ReadOptimShard(r)
		if err != nil {
			return nil, nil, nil, err
		}
		if sf.WorldSize != ws {
			return nil, nil, nil, fmt.Errorf("ckpt: %s: rank %d world size %d != %d", dir, r, sf.WorldSize, ws)
		}
		ordered := make([]*zero.GroupShard, layout.NumGroups())
		for i, m := range sf.Meta {
			if m.Index < 0 || m.Index >= layout.NumGroups() {
				return nil, nil, nil, fmt.Errorf("ckpt: %s: rank %d group index %d out of range", dir, r, m.Index)
			}
			ordered[m.Index] = sf.Shards[i]
		}
		byRank[r] = ordered
		step = sf.Step
	}
	numels := make([]int64, layout.NumGroups())
	for i, g := range layout.Groups {
		numels[i] = g.Numel
	}
	states, err := zero.GatherAll(byRank, numels)
	if err != nil {
		return nil, nil, nil, err
	}

	o, err := optim.NewAdamW(m, layout, c.State.Hyper)
	if err != nil {
		return nil, nil, nil, err
	}
	o.States = states
	o.StepCount = step
	// Re-establish model = rounded master invariant (master is the source
	// of truth after restore, exactly as mixed-precision resume does).
	if err := o.SyncModelFromMaster(); err != nil {
		return nil, nil, nil, err
	}
	return m, o, c, nil
}
