// Codec planning for dedup saves.
//
// A save that requests blob compression decides, per payload slot (a weight
// tensor by name, an optimizer group by rank and index), how the blob should
// be encoded: XOR against the previous generation's blob for the same slot
// when a usable parent exists, a self-contained byte-plane blob otherwise.
// The parent chain is read off the previous checkpoint's manifests — the
// same generation chain the ref index journals — and is re-based to a full
// plane blob whenever it would grow past the configured depth, so restore
// cost and GC pinning stay O(K) per slot.
//
// Planning is advisory: the store's size gate can still demote any payload
// to plane or raw, and the manifests record what actually happened.

package ckpt

import (
	"fmt"
	"strings"

	"llmtailor/internal/parallel"
	"llmtailor/internal/storage"
)

// DefaultCodecRebase is the default xor-parent chain depth bound: a slot
// whose chain would exceed it is re-based to a full plane blob.
const DefaultCodecRebase = 8

// codecPlan decides per-slot blob codecs for one dedup save. A nil plan
// means raw (the pre-codec behavior).
type codecPlan struct {
	mode   storage.BlobCodec // CodecPlane or CodecXORParent
	rebase int
	gate   *parallel.ByteGate
	prev   map[string]prevSlot
}

// prevSlot is the previous generation's blob for a payload slot.
type prevSlot struct {
	digest  string
	parents []string
}

func weightSlot(name string) string       { return "w\x00" + name }
func groupSlotKey(rank, index int) string { return fmt.Sprintf("g\x00%d\x00%d", rank, index) }

// newCodecPlan builds the planner for a save publishing into finalDir.
// codec is the SaveSpec spelling: "" or "raw" disables planning (nil plan),
// "plane" encodes every payload standalone, "xor" / "xor-parent" deltas
// changed slots against the previous committed checkpoint in the run root.
func newCodecPlan(b storage.Backend, finalDir, codec string, rebase int, gate *parallel.ByteGate) (*codecPlan, error) {
	mode, err := storage.ParseBlobCodec(codec)
	if err != nil {
		return nil, fmt.Errorf("ckpt: save codec: %w", err)
	}
	switch mode {
	case storage.CodecRaw:
		return nil, nil
	case storage.CodecPlane, storage.CodecXORParent:
	default:
		return nil, fmt.Errorf("ckpt: save codec %q is not writable", codec)
	}
	if rebase <= 0 {
		rebase = DefaultCodecRebase
	}
	if rebase > storage.MaxParentDepth {
		rebase = storage.MaxParentDepth
	}
	p := &codecPlan{mode: mode, rebase: rebase, gate: gate, prev: map[string]prevSlot{}}
	if mode == storage.CodecXORParent {
		if prevDir := previousForSave(b, finalDir); prevDir != "" {
			p.loadPrev(b, prevDir)
		}
	}
	return p, nil
}

// previousForSave resolves the parent generation of a save publishing into
// finalDir. During a normal save finalDir is not committed yet, so the
// parent is the newest committed checkpoint under the run root; when
// finalDir is being re-saved (a retry over a committed dir), it is the
// checkpoint preceding it — never finalDir itself, whose manifests the
// save is about to replace.
func previousForSave(b storage.Backend, finalDir string) string {
	if prev, err := PreviousCheckpoint(b, finalDir); err == nil {
		return prev
	}
	runRoot := ""
	if i := strings.LastIndexByte(finalDir, '/'); i >= 0 {
		runRoot = finalDir[:i]
	}
	dirs, err := List(b, runRoot)
	if err != nil || len(dirs) == 0 {
		return ""
	}
	return dirs[len(dirs)-1]
}

// loadPrev indexes the previous checkpoint's manifests by slot. Best
// effort: a plain (non-dedup) or unreadable previous checkpoint simply
// yields no parents, demoting this save to plane blobs.
func (p *codecPlan) loadPrev(b storage.Backend, dir string) {
	if wm, err := ReadWeightManifest(b, dir+"/"+WeightManifestName); err == nil {
		for _, e := range wm.Tensors {
			p.prev[weightSlot(e.Name)] = prevSlot{digest: e.Digest, parents: e.Parents}
		}
	}
	for _, r := range shardManifestRanks(b, dir) {
		if sm, err := ReadShardManifest(b, dir+"/"+ShardManifestName(r)); err == nil {
			for _, g := range sm.Groups {
				p.prev[groupSlotKey(sm.Rank, g.Index)] = prevSlot{digest: g.Digest, parents: g.Parents}
			}
		}
	}
}

// optsFor plans one payload's put: the options to request and the full
// ancestor chain (direct parent first) an xor put would make the new blob
// depend on. A slot with no previous generation, an unchanged digest, or a
// chain at the re-base bound plans as plane.
func (p *codecPlan) optsFor(slot, digest string, width int) (storage.BlobPutOptions, []string) {
	opts := storage.BlobPutOptions{Codec: storage.CodecPlane, Width: width, Gate: p.gate}
	if p.mode != storage.CodecXORParent {
		return opts, nil
	}
	ps, ok := p.prev[slot]
	if !ok || !storage.ValidDigest(ps.digest) || ps.digest == digest {
		return opts, nil
	}
	chain := append([]string{ps.digest}, ps.parents...)
	if len(chain) > p.rebase {
		return opts, nil // re-base: chain depth stays O(K)
	}
	opts.Codec = storage.CodecXORParent
	opts.Parent = ps.digest
	return opts, chain
}

// blobChain returns the xor-parent ancestor chain of a stored blob (direct
// parent first) by walking container headers. Raw and plane blobs have an
// empty chain.
func blobChain(store storage.CAS, digest string) ([]string, error) {
	var chain []string
	cur := digest
	for i := 0; i <= storage.MaxParentDepth; i++ {
		meta, err := store.Meta(cur)
		if err != nil {
			return nil, err
		}
		if meta.Codec != storage.CodecXORParent {
			return chain, nil
		}
		chain = append(chain, meta.Parent)
		cur = meta.Parent
	}
	return nil, fmt.Errorf("ckpt: blob %s: xor-parent chain exceeds depth bound %d", digest, storage.MaxParentDepth)
}

// CodecStats summarises how one content-addressed checkpoint's payloads
// are encoded in the blob store: entry counts per codec, payload versus
// on-disk bytes, and the deepest xor-parent ancestor chain.
type CodecStats struct {
	// Entries counts manifest entries per codec name ("raw" for entries
	// stored verbatim).
	Entries map[string]int
	// RawBytes is the total (uncompressed) payload size; StoredBytes the
	// on-disk footprint after encoding.
	RawBytes    int64
	StoredBytes int64
	// DeepestChain is the longest xor-parent ancestor chain any entry
	// carries, and DeepestSlot names that entry.
	DeepestChain int
	DeepestSlot  string
}

// walkCodecEntries visits every manifest entry of a dedup checkpoint with
// its codec fields ("" codec = raw).
func walkCodecEntries(b storage.Backend, dir string, note func(slot, codec string, size, stored int64, parents []string)) error {
	if !IsDedup(b, dir) {
		return fmt.Errorf("ckpt: %s is not content-addressed (no %s)", dir, WeightManifestName)
	}
	wm, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return err
	}
	for _, e := range wm.Tensors {
		note("tensor "+e.Name, e.Codec, e.Size, e.Stored, e.Parents)
	}
	for _, r := range shardManifestRanks(b, dir) {
		sm, err := ReadShardManifest(b, dir+"/"+ShardManifestName(r))
		if err != nil {
			return err
		}
		for _, g := range sm.Groups {
			note(fmt.Sprintf("rank %d group %d", sm.Rank, g.Index), g.Codec, g.Size, g.Stored, g.Parents)
		}
	}
	return nil
}

// ReadCodecStats computes CodecStats from a dedup checkpoint's manifests.
func ReadCodecStats(b storage.Backend, dir string) (*CodecStats, error) {
	cs := &CodecStats{Entries: map[string]int{}}
	err := walkCodecEntries(b, dir, func(slot, codec string, size, stored int64, parents []string) {
		if codec == "" {
			codec, stored = "raw", size
		}
		cs.Entries[codec]++
		cs.RawBytes += size
		cs.StoredBytes += stored
		if len(parents) > cs.DeepestChain {
			cs.DeepestChain = len(parents)
			cs.DeepestSlot = slot
		}
	})
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// CodecHealth is one dedup checkpoint's blob-codec health in a doctor
// scan: the codec breakdown plus any xor parents the manifests pin that
// the blob store no longer holds (restoring those entries would fail).
type CodecHealth struct {
	Dir   string
	Stats *CodecStats
	// MissingParents lists pinned ancestor digests absent from the store,
	// each prefixed with the slot that depends on it.
	MissingParents []string
}

// ScanCodecs audits blob-codec health across every committed dedup
// checkpoint under a run root. Checkpoints whose manifests other scans
// already flag as unreadable are skipped — this scan owns only the codec
// layer.
func ScanCodecs(b storage.Backend, runRoot string) ([]CodecHealth, error) {
	dirs, err := List(b, runRoot)
	if err != nil {
		return nil, err
	}
	var out []CodecHealth
	for _, dir := range dirs {
		if !IsDedup(b, dir) {
			continue
		}
		cs, err := ReadCodecStats(b, dir)
		if err != nil {
			continue
		}
		store, err := storeFor(b, dir)
		if err != nil {
			return nil, err
		}
		h := CodecHealth{Dir: dir, Stats: cs}
		checked := map[string]bool{}
		_ = walkCodecEntries(b, dir, func(slot, codec string, size, stored int64, parents []string) {
			for _, pd := range parents {
				if checked[pd] {
					continue
				}
				checked[pd] = true
				if !store.Has(pd) {
					h.MissingParents = append(h.MissingParents, slot+" -> "+pd)
				}
			}
		})
		out = append(out, h)
	}
	return out, nil
}

// codecEntryMeta converts a put's outcome into the manifest entry's codec
// fields. planned is the chain optsFor computed; it is reused when the put
// landed on the planned parent, and re-derived from container headers when
// the slot dedup-hit an existing blob with a different lineage.
func codecEntryMeta(store storage.CAS, res storage.PutResult, planned []string) (codec string, stored int64, parents []string, err error) {
	switch res.Codec {
	case storage.CodecRaw:
		return "", 0, nil, nil
	case storage.CodecXORParent:
		if len(planned) > 0 && planned[0] == res.Parent {
			parents = planned
		} else {
			rest, err := blobChain(store, res.Parent)
			if err != nil {
				return "", 0, nil, err
			}
			parents = append([]string{res.Parent}, rest...)
		}
		return res.Codec.String(), res.StoredBytes, parents, nil
	default: // plane, stored
		return res.Codec.String(), res.StoredBytes, nil, nil
	}
}
