// Lazy layer-wise checkpoint capture.
//
// The snapshot-mode AsyncSaver stalls training for a full deep copy of the
// model and optimizer before any background work begins — O(model size)
// per save no matter how little changed. The capture engine here bounds
// that stall by the *changed-layer set* instead, the lazy asynchronous
// capture idea of DataStates-LLM combined with ByteCheckpoint's
// decomposition of save into pipelined stages:
//
//   - Save enumerates the checkpoint (buildSavePlan — metadata only) and
//     enqueues one capture unit per layer on a worker pipeline, returning
//     immediately.
//   - Capture workers drain each layer out of the live state: a dedup save
//     streams the layer through SHA-256 first and consults the blob store —
//     a digest hit short-circuits to a manifest reference with zero payload
//     bytes moved — and only content misses are copied into a spool (a
//     pooled buffer under a ByteGate budget, or an unmetered temp file when
//     the budget is exhausted, so a worker never blocks holding a layer).
//     When the optimizer's per-layer mutation counters (SaveSpec.LayerGens)
//     prove a layer untouched since the previous capture, even the hash is
//     skipped and the cached digests are reused.
//   - The ordered save pipeline assembles each checkpoint from its captured
//     payloads once every unit lands, under the exact same journal →
//     publish → seal → rename commit protocol as the synchronous path, so
//     the output is byte-identical and crash exploration carries over.
//
// The trainer calls WaitCaptured before the next optimizer step; from that
// point the live tensors are free to mutate while manifests and blobs are
// still being written in the background.

package ckpt

import (
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"sync"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/parallel"
	"llmtailor/internal/storage"
	"llmtailor/internal/zero"
)

// CaptureOptions tunes the lazy capture scheduler.
type CaptureOptions struct {
	// Workers is the number of concurrent capture workers (hash + spool).
	// Defaults to 4.
	Workers int
	// SpoolBytes bounds the pooled spool memory held by in-flight captures.
	// Payloads that do not fit fall back to unmetered temp files rather
	// than blocking a worker. Defaults to 256 MiB.
	SpoolBytes int64
}

func (o CaptureOptions) withDefaults() CaptureOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.SpoolBytes <= 0 {
		o.SpoolBytes = 256 << 20
	}
	return o
}

// CaptureStats is a snapshot of the engine's accounting. The stall-bound
// claim is measured in bytes: BytesHashed + BytesSpooled is the data the
// engine actually touched for a save, while BytesReferenced (digest hits)
// and gen-reused layers cost nothing — so on a workload where one of L
// layers changes per step, the touched bytes shrink by ~L× versus a
// snapshot of everything.
type CaptureStats struct {
	// Saves is the number of scheduled captures.
	Saves int64
	// LayersReused counts layer units short-circuited by the mutation-
	// counter proof (no hash, no copy).
	LayersReused int64
	// PayloadsSpooled / PayloadsReferenced count payloads copied into
	// spools vs deduplicated to existing blobs.
	PayloadsSpooled    int64
	PayloadsReferenced int64
	// BytesHashed is the payload bytes streamed through SHA-256.
	BytesHashed int64
	// BytesSpooled is the payload bytes copied out of live state.
	BytesSpooled int64
	// BytesReferenced is the payload bytes resolved to existing blobs
	// without moving.
	BytesReferenced int64
	// StallNs is the cumulative wall time the training loop was blocked in
	// Save and WaitCaptured.
	StallNs int64
	// SpoolPeakBytes is the pooled-spool memory high-water mark.
	SpoolPeakBytes int64
	// Pool reports buffer reuse.
	Pool storage.BufferPoolStats
}

// capturedPayload is one payload's landed identity: its digest/CRC/size
// plus, when the content had to move, the spool holding its exact bytes.
// A nil spool means the payload resolved to an existing blob (dedup hit or
// gen-proof reuse).
type capturedPayload struct {
	digest string
	crc    uint32
	size   int64
	spool  storage.CaptureSpool
	// gated is the spool's byte cost held in the engine's gate until the
	// payload is released (0 for file-backed spools).
	gated int64
	// entryCodec/entryStored/entryParents record how the blob actually
	// landed in the store; writeDedup fills them at publish time and the
	// manifest entries copy them.
	entryCodec   string
	entryStored  int64
	entryParents []string
}

// captureTicket tracks one save through capture: the plan, a result slot
// per payload, and a latch that closes when every unit has landed (or
// failed). The write stage waits on the latch; WaitCaptured waits on every
// outstanding ticket's latch.
type captureTicket struct {
	spec SaveSpec
	plan *savePlan
	// weightRes is parallel to plan.weights; groupRes[gi][rank] is parallel
	// to plan.metas × worldSize.
	weightRes []capturedPayload
	groupRes  [][]capturedPayload

	mu        sync.Mutex
	remaining int
	err       error
	done      chan struct{}
}

// fail records the ticket's first error.
func (t *captureTicket) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

func (t *captureTicket) failure() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// unitDone counts down the latch.
func (t *captureTicket) unitDone() {
	t.mu.Lock()
	t.remaining--
	last := t.remaining == 0
	t.mu.Unlock()
	if last {
		close(t.done)
	}
}

// captureUnit is one layer's slice of a ticket: the weight tensors and
// optimizer groups the layer owns. Auxiliary groups without a layer (the
// two-group layout) ride in their own units.
type captureUnit struct {
	t        *captureTicket
	layer    modelcfg.LayerRef
	hasLayer bool
	// weightIdx / groupIdx index into the plan's weights / metas.
	weightIdx []int
	groupIdx  []int
}

// payloadID is a payload's cached identity from a previous capture.
type payloadID struct {
	digest string
	crc    uint32
	size   int64
}

type groupSlot struct{ index, rank int }

// layerCacheEntry remembers one layer's payload identities as of a
// mutation-counter generation: if the counter has not moved, the layer's
// bytes are provably identical and the digests can be reused without
// hashing.
type layerCacheEntry struct {
	gen     int64
	weights map[string]payloadID
	groups  map[groupSlot]payloadID
}

// captureEngine owns the capture pipeline, the spool pool and budget gate,
// the per-layer generation cache, and the outstanding-ticket set.
type captureEngine struct {
	base storage.Backend
	pool *storage.BufferPool
	gate *parallel.ByteGate
	pipe *parallel.Pipeline[*captureUnit, struct{}]

	mu      sync.Mutex
	cache   map[string]*layerCacheEntry
	pending []*captureTicket
	stats   CaptureStats
}

func newCaptureEngine(b storage.Backend, opts CaptureOptions) *captureEngine {
	opts = opts.withDefaults()
	e := &captureEngine{
		base:  b,
		pool:  storage.NewBufferPool(),
		gate:  parallel.NewByteGate(opts.SpoolBytes),
		cache: map[string]*layerCacheEntry{},
	}
	// Units fan in unordered (each lands in its ticket slot), so the
	// pipeline's ordered sink is a no-op; errors travel through tickets.
	e.pipe = parallel.NewPipeline(opts.Workers, opts.Workers*4,
		func(u *captureUnit) (struct{}, error) {
			e.runUnit(u)
			return struct{}{}, nil
		},
		func(struct{}) error { return nil })
	return e
}

func (e *captureEngine) addStall(ns int64) {
	e.mu.Lock()
	e.stats.StallNs += ns
	e.mu.Unlock()
}

func (e *captureEngine) snapshot() CaptureStats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	s.SpoolPeakBytes = e.gate.Peak()
	s.Pool = e.pool.Stats()
	return s
}

// cacheKey scopes gen-proof reuse to one blob store, world size and layer:
// a different run root or resharding must never hit another run's entries.
func cacheKey(spec *SaveSpec, layer modelcfg.LayerRef) string {
	return ObjectsRoot(spec.Dir) + "|" + strconv.Itoa(spec.WorldSize) + "|" + layer.String()
}

// schedule validates a spec, carves it into per-layer units and enqueues
// them. It reads no payload bytes — the foreground cost of a lazy save.
func (e *captureEngine) schedule(spec SaveSpec) (*captureTicket, error) {
	plan, err := buildSavePlan(&spec)
	if err != nil {
		return nil, err
	}
	t := &captureTicket{
		spec: spec, plan: plan, done: make(chan struct{}),
		weightRes: make([]capturedPayload, len(plan.weights)),
		groupRes:  make([][]capturedPayload, len(plan.metas)),
	}
	for i := range t.groupRes {
		t.groupRes[i] = make([]capturedPayload, plan.worldSize)
	}
	units := unitsFor(t)
	t.remaining = len(units)
	if len(units) == 0 {
		close(t.done)
	}
	e.mu.Lock()
	e.pending = append(e.pending, t)
	e.stats.Saves++
	e.mu.Unlock()
	for i, u := range units {
		if err := e.pipe.Push(u); err != nil {
			t.fail(fmt.Errorf("ckpt: capture scheduler closed"))
			for j := i; j < len(units); j++ {
				t.unitDone()
			}
			break
		}
	}
	return t, nil
}

// unitsFor groups a plan's payloads by owning layer, preserving plan order
// within each unit so capture output matches the synchronous payload order.
func unitsFor(t *captureTicket) []*captureUnit {
	plan := t.plan
	var units []*captureUnit
	byLayer := map[modelcfg.LayerRef]*captureUnit{}
	unitOf := func(ref modelcfg.LayerRef) *captureUnit {
		u, ok := byLayer[ref]
		if !ok {
			u = &captureUnit{t: t, layer: ref, hasLayer: true}
			byLayer[ref] = u
			units = append(units, u)
		}
		return u
	}
	for i, ref := range plan.weightLayers {
		u := unitOf(ref)
		u.weightIdx = append(u.weightIdx, i)
	}
	for i := range plan.metas {
		if plan.hasLayer[i] {
			u := unitOf(plan.groupLayers[i])
			u.groupIdx = append(u.groupIdx, i)
		} else {
			units = append(units, &captureUnit{t: t, groupIdx: []int{i}})
		}
	}
	return units
}

// runUnit is the pipeline work function: capture one unit, routing any
// failure into the ticket instead of the pipeline's abort channel (every
// unit must land so the latch closes).
func (e *captureEngine) runUnit(u *captureUnit) {
	defer u.t.unitDone()
	if u.t.failure() != nil {
		return
	}
	if err := e.captureUnit(u); err != nil {
		u.t.fail(err)
	}
}

// captureUnit drains one layer out of the live state. On return, every
// slot of the unit is either filled or being cleaned up by the ticket's
// eventual release.
func (e *captureEngine) captureUnit(u *captureUnit) error {
	t := u.t
	plan := t.plan
	dedup := t.spec.Dedup
	var store storage.CAS
	if dedup {
		var err error
		if store, err = storeFor(e.base, t.spec.Dir); err != nil {
			return err
		}
	}

	// Mutation-counter short-circuit: if the layer's counter matches the
	// cached capture and every cached blob still exists, reuse the digests
	// without touching a payload byte.
	var gen int64
	var haveGen bool
	if dedup && u.hasLayer && t.spec.LayerGens != nil {
		gen, haveGen = t.spec.LayerGens[u.layer]
		if haveGen && e.tryReuse(u, gen, store) {
			e.mu.Lock()
			e.stats.LayersReused++
			e.mu.Unlock()
			return nil
		}
	}

	buf := make([]byte, storage.ChunkOrDefault(0))
	for _, i := range u.weightIdx {
		tns := plan.weights[i]
		size := int64(tns.Bytes())
		p, err := e.capturePayload(dedup, store, size, func(w io.Writer) (int64, error) {
			return tns.EncodeTo(w, buf)
		})
		if err != nil {
			return fmt.Errorf("ckpt: capture tensor %q: %w", tns.Name, err)
		}
		t.weightRes[i] = p
	}
	for _, gi := range u.groupIdx {
		m := plan.metas[gi]
		shards, err := zero.ShardGroup(m.Index, plan.states[gi], plan.worldSize)
		if err != nil {
			return fmt.Errorf("ckpt: capture group %d: %w", m.Index, err)
		}
		for r, s := range shards {
			size := s.Numel() * 12
			shard := s
			p, err := e.capturePayload(dedup, store, size, func(w io.Writer) (int64, error) {
				return encodeGroupPayload(w, buf, shard)
			})
			if err != nil {
				return fmt.Errorf("ckpt: capture rank %d group %d: %w", r, m.Index, err)
			}
			t.groupRes[gi][r] = p
		}
	}

	if haveGen {
		e.updateCache(u, gen)
	}
	return nil
}

// tryReuse fills the unit's slots from the layer's cached capture when the
// generation matches and every cached blob is still present. A missing
// blob (retention swept it) falls back to the hash path, which re-creates
// the content from live state.
func (e *captureEngine) tryReuse(u *captureUnit, gen int64, store storage.CAS) bool {
	t := u.t
	plan := t.plan
	key := cacheKey(&t.spec, u.layer)
	e.mu.Lock()
	entry := e.cache[key]
	e.mu.Unlock()
	if entry == nil || entry.gen != gen {
		return false
	}
	var fills []func()
	var reusedBytes int64
	take := func(id payloadID, ok bool, size int64, slot *capturedPayload) bool {
		if !ok || id.size != size || !store.Has(id.digest) {
			return false
		}
		fills = append(fills, func() { *slot = capturedPayload{digest: id.digest, crc: id.crc, size: id.size} })
		reusedBytes += id.size
		return true
	}
	for _, i := range u.weightIdx {
		tns := plan.weights[i]
		id, ok := entry.weights[tns.Name]
		if !take(id, ok, int64(tns.Bytes()), &t.weightRes[i]) {
			return false
		}
	}
	for _, gi := range u.groupIdx {
		part, err := zero.NewPartition(plan.states[gi].Numel(), plan.worldSize)
		if err != nil {
			return false
		}
		size := part.ShardLen() * 12
		for r := 0; r < plan.worldSize; r++ {
			id, ok := entry.groups[groupSlot{plan.metas[gi].Index, r}]
			if !take(id, ok, size, &t.groupRes[gi][r]) {
				return false
			}
		}
	}
	// Commit the reuse only once every slot checked out.
	n := int64(len(fills))
	for _, fill := range fills {
		fill()
	}
	e.mu.Lock()
	e.stats.PayloadsReferenced += n
	e.stats.BytesReferenced += reusedBytes
	e.mu.Unlock()
	return true
}

// updateCache records the unit's landed identities under the layer's
// generation. Out-of-order lands from back-to-back saves only ever move
// the entry forward (generations are monotonic).
func (e *captureEngine) updateCache(u *captureUnit, gen int64) {
	t := u.t
	plan := t.plan
	entry := &layerCacheEntry{
		gen:     gen,
		weights: map[string]payloadID{},
		groups:  map[groupSlot]payloadID{},
	}
	for _, i := range u.weightIdx {
		p := t.weightRes[i]
		entry.weights[plan.weights[i].Name] = payloadID{p.digest, p.crc, p.size}
	}
	for _, gi := range u.groupIdx {
		for r := 0; r < plan.worldSize; r++ {
			p := t.groupRes[gi][r]
			entry.groups[groupSlot{plan.metas[gi].Index, r}] = payloadID{p.digest, p.crc, p.size}
		}
	}
	key := cacheKey(&t.spec, u.layer)
	e.mu.Lock()
	if old := e.cache[key]; old == nil || old.gen <= gen {
		e.cache[key] = entry
	}
	e.mu.Unlock()
}

// capturePayload lands one payload. Dedup saves hash first (no storage
// I/O), short-circuit on an existing blob, and spool only content misses —
// paying a second encode pass for the bytes that actually move. Plain saves
// spool everything in a single pass with the CRC computed inline.
func (e *captureEngine) capturePayload(dedup bool, store storage.CAS,
	size int64, encode func(io.Writer) (int64, error)) (capturedPayload, error) {

	if dedup {
		digest, crc, err := hashStream(size, encode)
		if err != nil {
			return capturedPayload{}, err
		}
		e.mu.Lock()
		e.stats.BytesHashed += size
		e.mu.Unlock()
		if store.Has(digest) {
			e.mu.Lock()
			e.stats.PayloadsReferenced++
			e.stats.BytesReferenced += size
			e.mu.Unlock()
			return capturedPayload{digest: digest, crc: crc, size: size}, nil
		}
		sp, gated, err := e.newSpool(size)
		if err != nil {
			return capturedPayload{}, err
		}
		n, err := encode(sp)
		if err == nil && n != size {
			err = fmt.Errorf("ckpt: payload encoded %d bytes, expected %d", n, size)
		}
		if err != nil {
			sp.Release()
			e.gate.Release(gated)
			return capturedPayload{}, err
		}
		e.mu.Lock()
		e.stats.PayloadsSpooled++
		e.stats.BytesSpooled += size
		e.mu.Unlock()
		return capturedPayload{digest: digest, crc: crc, size: size, spool: sp, gated: gated}, nil
	}

	sp, gated, err := e.newSpool(size)
	if err != nil {
		return capturedPayload{}, err
	}
	crc := crc32.NewIEEE()
	n, err := encode(io.MultiWriter(sp, crc))
	if err == nil && n != size {
		err = fmt.Errorf("ckpt: payload encoded %d bytes, expected %d", n, size)
	}
	if err != nil {
		sp.Release()
		e.gate.Release(gated)
		return capturedPayload{}, err
	}
	e.mu.Lock()
	e.stats.PayloadsSpooled++
	e.stats.BytesSpooled += size
	e.mu.Unlock()
	return capturedPayload{crc: crc.Sum32(), size: size, spool: sp, gated: gated}, nil
}

// newSpool admits a payload under the memory budget without ever blocking:
// a full gate routes the payload to an unmetered temp file instead (a
// blocked capture worker would hold up the very layer release the trainer
// is waiting on).
func (e *captureEngine) newSpool(size int64) (storage.CaptureSpool, int64, error) {
	if e.gate.TryAcquire(size) {
		return e.pool.PooledSpool(size), size, nil
	}
	sp, err := e.pool.FileSpool()
	if err != nil {
		return nil, 0, err
	}
	return sp, 0, nil
}

// releasePayload frees a payload's spool and gate bytes, once.
func (e *captureEngine) releasePayload(p *capturedPayload) {
	if p.spool != nil {
		p.spool.Release()
		p.spool = nil
	}
	if p.gated > 0 {
		e.gate.Release(p.gated)
		p.gated = 0
	}
}

// releaseTicket frees every payload still holding resources. Safe after
// the write stage released some inline (release is idempotent per slot).
func (e *captureEngine) releaseTicket(t *captureTicket) {
	for i := range t.weightRes {
		e.releasePayload(&t.weightRes[i])
	}
	for gi := range t.groupRes {
		for r := range t.groupRes[gi] {
			e.releasePayload(&t.groupRes[gi][r])
		}
	}
}

// abandon waits out a ticket whose save was never enqueued and frees it.
func (e *captureEngine) abandon(t *captureTicket) {
	<-t.done
	e.releaseTicket(t)
}

// waitCaptured blocks until every outstanding ticket's live-state reads
// are finished — the point after which the caller may mutate the model and
// optimizer again. It returns the first capture failure (the write stage
// reports it too; the caller gets to abort early).
func (e *captureEngine) waitCaptured() error {
	e.mu.Lock()
	tickets := e.pending
	e.pending = nil
	e.mu.Unlock()
	var first error
	for _, t := range tickets {
		<-t.done
		if err := t.failure(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close drains the capture pipeline. Scheduled units finish; later
// schedules fail their tickets.
func (e *captureEngine) close() error { return e.pipe.Close() }

// write assembles and commits one captured save — the ordered (depth-1)
// stage of the saver. The protocol is the synchronous path's, step for
// step: journal the full digest set, publish moved payloads, stage
// manifests and trailer, seal with the COMMITTED marker, atomic rename,
// then move the latest pointer.
func (e *captureEngine) write(t *captureTicket) error {
	<-t.done
	defer e.releaseTicket(t)
	if err := t.failure(); err != nil {
		return err
	}
	if t.spec.Dedup {
		return e.writeDedup(t)
	}
	return e.writePlain(t)
}

func (e *captureEngine) writeDedup(t *captureTicket) error {
	plan := t.plan
	// Codec plan for this save. The gate is deliberately nil: spooled
	// payloads already hold their bytes in the engine's gate, and letting
	// the encoder block on the same gate could deadlock the write stage.
	cplan, err := newCodecPlan(e.base, t.spec.Dir, t.spec.Codec, t.spec.CodecRebase, nil)
	if err != nil {
		return err
	}
	store, err := storeFor(e.base, t.spec.Dir)
	if err != nil {
		return err
	}

	// Digest set in the synchronous path's journal order: weights, then
	// rank-major groups — extended with every xor ancestor the planned
	// puts would depend on, and with the actual lineage of any blob that
	// already exists (a dedup hit may carry a chain this save did not plan).
	type putPlan struct {
		opts    storage.BlobPutOptions
		planned []string
	}
	wPuts := make([]putPlan, len(plan.weights))
	gPuts := make([][]putPlan, len(plan.metas))
	for gi := range gPuts {
		gPuts[gi] = make([]putPlan, plan.worldSize)
	}
	digests := make([]string, 0, len(plan.weights)+len(plan.metas)*plan.worldSize)
	addPayload := func(slot, digest string, width int, pp *putPlan) {
		digests = append(digests, digest)
		if cplan != nil {
			pp.opts, pp.planned = cplan.optsFor(slot, digest, width)
			digests = append(digests, pp.planned...)
		}
		if ch, err := blobChain(store, digest); err == nil {
			digests = append(digests, ch...)
		}
	}
	for i := range plan.weights {
		tns := plan.weights[i]
		addPayload(weightSlot(tns.Name), t.weightRes[i].digest, tns.DType.Size(), &wPuts[i])
	}
	for r := 0; r < plan.worldSize; r++ {
		for gi := range plan.metas {
			addPayload(groupSlotKey(r, plan.metas[gi].Index), t.groupRes[gi][r].digest, 4, &gPuts[gi][r])
		}
	}

	txn, err := Begin(e.base, t.spec.Dir)
	if err != nil {
		return err
	}
	defer txn.Abort()
	sb, dir := txn.Backend(), txn.Dir()

	// Journal before any blob is published (record-precedes-blobs), then
	// publish the moved payloads in the same weights-then-rank-major order.
	gen, err := appendRefRecord(e.base, t.spec.Dir, plan.stepCount, digests)
	if err != nil {
		return err
	}
	publish := func(p *capturedPayload, pp putPlan, what string) error {
		var res storage.PutResult
		if p.spool != nil {
			res, err = store.PutStreamOpts(p.digest, pp.opts, func(w io.Writer) (int64, error) {
				rc, err := p.spool.Open()
				if err != nil {
					return 0, err
				}
				n, err := io.Copy(w, rc)
				if cerr := rc.Close(); err == nil {
					err = cerr
				}
				return n, err
			})
			if err != nil {
				return fmt.Errorf("ckpt: capture blob %s (%s): %w", p.digest, what, err)
			}
			e.releasePayload(p)
		} else {
			// A referenced payload moved nothing; its blob must still exist
			// (the journal record just appended pins it against any sweep's
			// recheck). If it is gone anyway, fail honestly — the live bytes
			// are no longer available to re-create it. The manifest entry
			// records how the existing blob actually landed.
			meta, err := store.Meta(p.digest)
			if err != nil {
				return fmt.Errorf("ckpt: capture reused blob %s (%s) missing from store: %w", p.digest, what, err)
			}
			res = storage.PutResult{
				Codec: meta.Codec, Parent: meta.Parent,
				RawBytes: meta.RawSize, StoredBytes: meta.StoredSize,
			}
		}
		codec, stored, parents, err := codecEntryMeta(store, res, pp.planned)
		if err != nil {
			return fmt.Errorf("ckpt: capture blob %s (%s): %w", p.digest, what, err)
		}
		p.entryCodec, p.entryStored, p.entryParents = codec, stored, parents
		return nil
	}
	for i := range plan.weights {
		if err := publish(&t.weightRes[i], wPuts[i], "tensor "+plan.weights[i].Name); err != nil {
			return err
		}
	}
	for r := 0; r < plan.worldSize; r++ {
		for gi := range plan.metas {
			if err := publish(&t.groupRes[gi][r], gPuts[gi][r], fmt.Sprintf("rank %d group %d", r, plan.metas[gi].Index)); err != nil {
				return err
			}
		}
	}

	// Manifests, in payload order, exactly as writeDedupPayloads builds.
	wm := &WeightManifest{Version: FormatVersion, Model: plan.cfg.Name}
	for i, tns := range plan.weights {
		p := t.weightRes[i]
		wm.Tensors = append(wm.Tensors, WeightEntry{
			Name: tns.Name, DType: tns.DType.String(),
			Shape: append([]int(nil), tns.Shape...),
			Size:  p.size, CRC32: p.crc, Digest: p.digest,
			Codec: p.entryCodec, Stored: p.entryStored, Parents: p.entryParents,
		})
	}
	if err := WriteWeightManifest(sb, dir+"/"+WeightManifestName, wm); err != nil {
		return err
	}
	for r := 0; r < plan.worldSize; r++ {
		sm := &ShardManifest{
			Version: FormatVersion, Rank: r, WorldSize: plan.worldSize,
			Step: plan.stepCount, Layout: plan.layoutKind.String(),
		}
		for gi, m := range plan.metas {
			p := t.groupRes[gi][r]
			sm.Groups = append(sm.Groups, ShardGroupEntry{
				Index: m.Index, Numel: m.Numel, ShardLen: p.size / 12,
				NoDecay: m.NoDecay, Layer: m.Layer,
				Size: p.size, CRC32: p.crc, Digest: p.digest,
				Codec: p.entryCodec, Stored: p.entryStored, Parents: p.entryParents,
			})
		}
		if err := WriteShardManifest(sb, dir+"/"+ShardManifestName(r), sm); err != nil {
			return err
		}
	}

	if err := writeTrailer(sb, dir, &t.spec, plan, gen); err != nil {
		return err
	}
	if err := txn.Commit(t.spec.State.Step); err != nil {
		return err
	}
	return WriteLatestPointer(e.base, t.spec.Dir)
}

func (e *captureEngine) writePlain(t *captureTicket) error {
	plan := t.plan
	txn, err := Begin(e.base, t.spec.Dir)
	if err != nil {
		return err
	}
	defer txn.Abort()
	sb, dir := txn.Backend(), txn.Dir()

	// Splice the spooled payloads into the containers with their inline
	// CRCs carried forward — byte-identical to WriteLTSF/WriteShardFile
	// over the same tensors and shards in the same order.
	w, err := NewLTSFWriter(sb, dir+"/model.ltsf", plan.cfg.Name, 0)
	if err != nil {
		return err
	}
	defer w.Abort()
	for i, tns := range plan.weights {
		p := &t.weightRes[i]
		rc, err := p.spool.Open()
		if err != nil {
			return fmt.Errorf("ckpt: capture tensor %q: %w", tns.Name, err)
		}
		err = w.AppendRaw(RawTensor{
			Name: tns.Name, DType: tns.DType.String(),
			Shape: append([]int(nil), tns.Shape...),
			Size:  p.size, CRC32: p.crc,
		}, rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		e.releasePayload(p)
	}
	if err := w.Close(); err != nil {
		return err
	}
	for r := 0; r < plan.worldSize; r++ {
		sw, err := NewShardFileWriter(sb, dir+"/"+ShardFileName(r), r, plan.worldSize,
			plan.stepCount, plan.layoutKind, 0)
		if err != nil {
			return err
		}
		for gi, m := range plan.metas {
			p := &t.groupRes[gi][r]
			m.ShardLen = p.size / 12
			m.CRC32 = p.crc
			rc, err := p.spool.Open()
			if err != nil {
				sw.Abort()
				return fmt.Errorf("ckpt: capture rank %d group %d: %w", r, m.Index, err)
			}
			err = sw.AppendRawGroup(m, p.size, rc)
			if cerr := rc.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				sw.Abort()
				return err
			}
			// Other ranks still need this group's sibling slots; only this
			// rank's payload is consumed.
			e.releasePayload(p)
		}
		if err := sw.Close(); err != nil {
			return err
		}
	}

	if err := writeTrailer(sb, dir, &t.spec, plan, 0); err != nil {
		return err
	}
	if err := txn.Commit(t.spec.State.Step); err != nil {
		return err
	}
	return WriteLatestPointer(e.base, t.spec.Dir)
}
