package ckpt

// Fuzz target for the dedup manifest codecs (LTMF weight manifests and
// LTOM shard manifests). Contract: corrupt input — truncated, bit-flipped,
// adversarial digests or extents — must surface as an error, never a panic
// or unbounded allocation; accepted input must be internally consistent.
// The regression corpus lives in testdata/fuzz/FuzzManifest.

import (
	"strings"
	"testing"

	"llmtailor/internal/storage"
)

func FuzzManifest(f *testing.F) {
	addMutations(f, goldenWeightManifest(f))
	addMutations(f, goldenShardManifest(f))
	d64 := strings.Repeat("ab", 32)
	// Adversarial headers: digests of the wrong shape, extents that only
	// pass if arithmetic wraps, duplicate identities.
	f.Add(manifestContainer(ltmfMagic,
		`{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[4611686018427387904,4611686018427387904],"size":8,"crc32":0,"digest":"`+d64+`"}]}`))
	f.Add(manifestContainer(ltmfMagic,
		`{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[2],"size":-8,"crc32":0,"digest":"`+d64+`"}]}`))
	f.Add(manifestContainer(ltmfMagic,
		`{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[2],"size":8,"crc32":0,"digest":"../../etc/passwd"}]}`))
	f.Add(manifestContainer(ltomMagic,
		`{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":1,"shard_len":4611686018427387904,"size":24,"crc32":0,"digest":"`+d64+`"}]}`))
	// 12×shard_len wraps int64 onto size while shard_len < size: must be
	// rejected by the division-checked geometry, never accepted.
	f.Add(manifestContainer(ltomMagic,
		`{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":1,"shard_len":2000000000000000000,"size":5553255926290448384,"crc32":0,"digest":"`+d64+`"}]}`))
	f.Add(manifestContainer(ltomMagic,
		`{"version":1,"rank":-1,"world_size":0,"layout":"layerwise","groups":[]}`))
	f.Add([]byte("LTMF"))
	f.Add([]byte("LTOM"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if wm, err := DecodeWeightManifest(data); err == nil {
			// Accepted manifests must hold the invariants readers rely on:
			// well-formed digests and coherent per-entry geometry.
			seen := map[string]bool{}
			for _, e := range wm.Tensors {
				if e.Name == "" || seen[e.Name] {
					t.Fatalf("accepted manifest has missing/duplicate name %q", e.Name)
				}
				seen[e.Name] = true
				if !storage.ValidDigest(e.Digest) {
					t.Fatalf("accepted manifest has malformed digest %q", e.Digest)
				}
				if e.Size < 0 {
					t.Fatalf("accepted manifest has negative size %d", e.Size)
				}
			}
		}
		if sm, err := DecodeShardManifest(data); err == nil {
			seen := map[int]bool{}
			for _, g := range sm.Groups {
				if g.Index < 0 || seen[g.Index] {
					t.Fatalf("accepted shard manifest has invalid/duplicate index %d", g.Index)
				}
				seen[g.Index] = true
				if !storage.ValidDigest(g.Digest) {
					t.Fatalf("accepted shard manifest has malformed digest %q", g.Digest)
				}
				// Division form: the multiplication can wrap int64 for
				// adversarial ShardLen values, which is exactly the class
				// of input this invariant exists to reject.
				if g.ShardLen < 0 || g.Size%12 != 0 || g.ShardLen != g.Size/12 {
					t.Fatalf("accepted shard manifest has incoherent geometry: %+v", g)
				}
			}
		}
	})
}
