package ckpt

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// rawTestTensors builds a deterministic mixed-dtype tensor set.
func rawTestTensors(tb testing.TB) []*tensor.Tensor {
	tb.Helper()
	a := tensor.New("w.a", tensor.BF16, 16, 8)
	b := tensor.New("w.b", tensor.F32, 33)
	c := tensor.New("w.c", tensor.BF16, 5)
	rng := tensor.NewRNG(123)
	for _, t := range []*tensor.Tensor{a, b, c} {
		for i := 0; i < t.Len(); i++ {
			t.Set(i, rng.NormFloat32())
		}
	}
	return []*tensor.Tensor{a, b, c}
}

// The byte-identity contract of the fast path: splicing every tensor of a
// container raw (AppendRaw with carried-forward CRCs) produces exactly the
// bytes the decode path (ReadTensor + WriteTensor) produces.
func TestAppendRawByteIdenticalToDecodePath(t *testing.T) {
	b := storage.NewMem()
	tensors := rawTestTensors(t)
	if err := WriteLTSF(b, "src", "m", tensors); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLTSF(b, "src")
	if err != nil {
		t.Fatal(err)
	}

	// Decode path.
	wd, err := NewLTSFWriter(b, "via-decode", "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range tensors {
		got, err := r.ReadTensor(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := wd.WriteTensor(got); err != nil {
			t.Fatal(err)
		}
	}
	if err := wd.Close(); err != nil {
		t.Fatal(err)
	}

	// Raw path, same order.
	wr, err := NewLTSFWriter(b, "via-raw", "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range tensors {
		rt, rc, err := r.OpenRaw(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := wr.AppendRaw(rt, rc); err != nil {
			t.Fatal(err)
		}
		rc.Close()
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	dec, _ := b.ReadFile("via-decode")
	raw, _ := b.ReadFile("via-raw")
	src, _ := b.ReadFile("src")
	if !bytes.Equal(dec, raw) {
		t.Fatal("raw splice differs from decode path")
	}
	if !bytes.Equal(src, raw) {
		t.Fatal("whole-container raw splice differs from the source container")
	}

	// The spliced container must decode and CRC-verify like the original.
	rr, err := OpenLTSF(b, "via-raw")
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range tensors {
		got, err := rr.ReadTensor(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ts.Len(); i++ {
			if got.At(i) != ts.At(i) {
				t.Fatalf("%s[%d]: %v != %v", ts.Name, i, got.At(i), ts.At(i))
			}
		}
	}
}

func TestRawTensorMetadata(t *testing.T) {
	b := storage.NewMem()
	tensors := rawTestTensors(t)
	if err := WriteLTSF(b, "src", "m", tensors); err != nil {
		t.Fatal(err)
	}
	r, err := OpenLTSF(b, "src")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := r.RawTensor("w.a")
	if err != nil {
		t.Fatal(err)
	}
	if rt.DType != tensor.BF16.String() || rt.Size != 16*8*2 || len(rt.Shape) != 2 {
		t.Fatalf("RawTensor meta = %+v", rt)
	}
	if size, _ := r.PayloadSize("w.a"); size != rt.Size {
		t.Fatalf("RawTensor size %d != PayloadSize %d", rt.Size, size)
	}
	if _, err := r.RawTensor("nope"); err == nil {
		t.Fatal("missing tensor accepted")
	}
	if !r.RawEligible("w.a", tensor.BF16) || r.RawEligible("w.a", tensor.F32) {
		t.Fatal("RawEligible dtype check wrong")
	}
	if !r.RawEligible("w.b", tensor.F32) || r.RawEligible("nope", tensor.BF16) {
		t.Fatal("RawEligible presence check wrong")
	}
}

// AppendRaw must reject inconsistent metadata and short extents with errors
// (never panics), leaving the writer failed rather than half-spliced.
func TestAppendRawRejectsCorruptExtents(t *testing.T) {
	mk := func() *LTSFWriter {
		w, err := NewLTSFWriter(storage.NewMem(), "out", "m", 0)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	payload := make([]byte, 64)

	cases := []struct {
		name string
		rt   RawTensor
		src  io.Reader
		want string
	}{
		{"bad dtype", RawTensor{Name: "t", DType: "q4", Shape: []int{16}, Size: 64},
			bytes.NewReader(payload), "dtype"},
		{"zero dim", RawTensor{Name: "t", DType: "f32", Shape: []int{0}, Size: 0},
			bytes.NewReader(nil), "dimension"},
		{"negative dim", RawTensor{Name: "t", DType: "f32", Shape: []int{-4}, Size: 64},
			bytes.NewReader(payload), "dimension"},
		{"size mismatch", RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: 32},
			bytes.NewReader(payload), "bytes"},
		{"negative size", RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: -64},
			bytes.NewReader(payload), "size"},
		{"overflow shape", RawTensor{Name: "t", DType: "f32", Shape: []int{1 << 62, 1 << 62}, Size: 64},
			bytes.NewReader(payload), "overflows"},
		{"short extent", RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: 64},
			bytes.NewReader(payload[:10]), "delivered"},
	}
	for _, tc := range cases {
		w := mk()
		err := w.AppendRaw(tc.rt, tc.src)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err %q does not mention %q", tc.name, err, tc.want)
		}
		w.Abort()
	}

	// Valid meta, duplicate name.
	w := mk()
	rt := RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: 64}
	if err := w.AppendRaw(rt, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRaw(rt, bytes.NewReader(payload)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate accepted: %v", err)
	}
	w.Abort()

	// A failed splice is sticky: the writer refuses further sections.
	w = mk()
	if err := w.AppendRaw(RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: 64},
		bytes.NewReader(payload[:1])); err == nil {
		t.Fatal("short extent accepted")
	}
	if err := w.AppendRaw(RawTensor{Name: "u", DType: "f32", Shape: []int{16}, Size: 64},
		bytes.NewReader(payload)); err == nil {
		t.Fatal("writer accepted a section after a failed splice")
	}
	w.Abort()
}

// An extent longer than advertised must not drag trailing bytes into the
// container: AppendRaw consumes exactly rt.Size bytes.
func TestAppendRawConsumesExactExtent(t *testing.T) {
	b := storage.NewMem()
	w, err := NewLTSFWriter(b, "out", "m", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64+17) // 17 trailing bytes must stay unread
	src := bytes.NewReader(payload)
	if err := w.AppendRaw(RawTensor{Name: "t", DType: "f32", Shape: []int{16}, Size: 64}, src); err != nil {
		t.Fatal(err)
	}
	if src.Len() != 17 {
		t.Fatalf("%d bytes left in source, want 17", src.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadShardHeaderMatchesFullRead(t *testing.T) {
	b := storage.NewMem()
	_, o := buildOptim(t, modelcfg.Tiny(), 7)
	var metas []ShardGroupMeta
	for _, g := range o.Layout.Groups {
		metas = append(metas, metaForGroup(g))
	}
	byRank, err := zero.ShardAll(o.States, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteShardFile(b, "s", 0, 2, 42, o.Layout.Kind, metas, byRank[0]); err != nil {
		t.Fatal(err)
	}

	h, err := ReadShardHeader(b, "s")
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReadShardFile(b, "s")
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank != full.Rank || h.WorldSize != full.WorldSize || h.Step != full.Step ||
		h.Layout != full.Layout || len(h.Groups) != len(full.Meta) || h.FileBytes != full.FileBytes {
		t.Fatalf("header read %+v disagrees with full read", h)
	}
	for i := range h.Groups {
		if h.Groups[i] != full.Meta[i] {
			t.Fatalf("group %d meta differs: %+v vs %+v", i, h.Groups[i], full.Meta[i])
		}
	}
	if h.Groups[len(h.Groups)-1].Offsets[1] != h.PayloadBytes {
		t.Fatalf("payload bytes %d do not end at the last group", h.PayloadBytes)
	}

	// Corrupt containers must error, not panic.
	if _, err := ReadShardHeader(b, "missing"); err == nil {
		t.Fatal("missing file accepted")
	}
	data, _ := b.ReadFile("s")
	b.WriteFile("torn", data[:len(data)/3])
	if _, err := ReadShardHeader(b, "torn"); err == nil {
		t.Log("truncated header accepted (payload truncation is invisible to a header read)")
	}
}
