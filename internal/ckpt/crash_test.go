package ckpt

// Systematic crash-point exploration: every mutating storage operation of
// a full checkpoint save is made to fail in turn (cleanly and with torn
// bytes), and after every crash the recovery invariant must hold — the run
// resolves to either the previous or the new checkpoint, fully intact,
// never a hybrid.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// treeDigest hashes a directory tree's file names and contents.
func treeDigest(t *testing.T, b storage.Backend, dir string) string {
	t.Helper()
	h := sha256.New()
	var walk func(d string)
	walk = func(d string) {
		entries, err := b.List(d)
		if err != nil {
			t.Fatalf("list %s: %v", d, err)
		}
		sort.Strings(entries)
		for _, e := range entries {
			if strings.HasSuffix(e, "/") {
				walk(d + "/" + strings.TrimSuffix(e, "/"))
				continue
			}
			data, err := b.ReadFile(d + "/" + e)
			if err != nil {
				t.Fatalf("read %s/%s: %v", d, e, err)
			}
			fmt.Fprintf(h, "%s/%s:%d:", d, e, len(data))
			h.Write(data)
		}
	}
	walk(dir)
	return hex.EncodeToString(h.Sum(nil))
}

// sameOptim compares full optimizer state element-wise.
func sameOptim(a, b *optim.AdamW) bool {
	if a.StepCount != b.StepCount || len(a.States) != len(b.States) {
		return false
	}
	for i := range a.States {
		x, y := a.States[i], b.States[i]
		for j := range x.Master {
			if x.Master[j] != y.Master[j] || x.ExpAvg[j] != y.ExpAvg[j] || x.ExpAvgSq[j] != y.ExpAvgSq[j] {
				return false
			}
		}
	}
	return true
}

func TestCrashPointExplorationFullSave(t *testing.T) {
	mPrev, oPrev := buildOptim(t, modelcfg.Tiny(), 91)
	mNext, oNext := buildOptim(t, modelcfg.Tiny(), 92)
	specFor := func(dir string, step int, m *model.Model, o *optim.AdamW) SaveSpec {
		return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2, Strategy: "full",
			State: TrainerState{Step: step, Seed: 91}}
	}

	// Ground truth: a fault-free pair of saves.
	clean := storage.NewMem()
	if err := Save(clean, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	prevDigest := treeDigest(t, clean, "run/checkpoint-100")
	if err := Save(clean, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	nextDigest := treeDigest(t, clean, "run/checkpoint-200")

	// Count the fault points of the second save.
	countBase := storage.NewMem()
	f := storage.NewFault(countBase)
	if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	f.FailAt(0) // reset the counter; stay disarmed
	if err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())
	if n < 10 {
		t.Fatalf("suspiciously few fault points in a full save: %d", n)
	}
	t.Logf("exploring %d crash points × {clean, torn}", n)

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := storage.NewMem()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
				t.Fatal(err)
			}
			f.FailAt(k)
			err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext))

			// The save must surface the injected crash — unless every
			// fault point at or past k belongs to the latest-pointer
			// update, which Save performs after the commit; even then Save
			// errors (pointer update failed), so err is always non-nil.
			if !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Recovery happens on the durable state ("after reboot").
			// Invariant 1: the previous checkpoint is intact, bit for bit.
			if err := VerifyCommit(base, "run/checkpoint-100"); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint damaged: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-100"); d != prevDigest {
				t.Fatalf("k=%d torn=%v: previous checkpoint bytes changed", k, torn)
			}

			// Invariant 2: the new checkpoint is all or nothing. If the
			// final directory exists it must be the complete, committed,
			// byte-exact checkpoint; otherwise only staging residue may
			// remain.
			if base.Exists("run/checkpoint-200") {
				if err := VerifyCommit(base, "run/checkpoint-200"); err != nil {
					t.Fatalf("k=%d torn=%v: published checkpoint not committed: %v", k, torn, err)
				}
				if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
					t.Fatalf("k=%d torn=%v: published checkpoint differs from fault-free save", k, torn)
				}
			}

			// Invariant 3: resolution never yields a hybrid — Latest finds
			// a committed checkpoint that restores to exactly one of the
			// two source states.
			latest, err := Latest(base, "run")
			if err != nil {
				t.Fatalf("k=%d torn=%v: no resolvable checkpoint after crash: %v", k, torn, err)
			}
			rm, ro, c, err := Restore(base, latest, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d torn=%v: restore %s: %v", k, torn, latest, err)
			}
			switch c.State.Step {
			case 100:
				if !model.Equal(rm, mPrev) || !sameOptim(ro, oPrev) {
					t.Fatalf("k=%d torn=%v: step-100 restore is a hybrid", k, torn)
				}
			case 200:
				if !model.Equal(rm, mNext) || !sameOptim(ro, oNext) {
					t.Fatalf("k=%d torn=%v: step-200 restore is a hybrid", k, torn)
				}
			default:
				t.Fatalf("k=%d torn=%v: restored unknown step %d", k, torn, c.State.Step)
			}

			// Invariant 4: Repair leaves a fully healthy run root, and the
			// next save over the repaired root succeeds.
			if _, err := Repair(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			statuses, err := Scan(base, "run")
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range statuses {
				if st.State != StateCommitted {
					t.Fatalf("k=%d torn=%v: %s still %v after repair", k, torn, st.Path, st.State)
				}
			}
			if err := Save(base, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
				t.Fatalf("k=%d torn=%v: save after repair: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
				t.Fatalf("k=%d torn=%v: post-repair save differs from fault-free save", k, torn)
			}
		}
	}
}

// Replace-in-place is the hardest window: re-saving an existing
// checkpoint dir removes the old tree before renaming the staged one in,
// so for a moment the only copy is the sealed staging dir. Exploration
// proves that after any crash plus Repair the directory holds exactly the
// old or the new bytes (Repair rolls a sealed-but-unpublished staging dir
// forward instead of deleting it).
func TestCrashPointExplorationReplaceInPlace(t *testing.T) {
	mOld, oOld := buildOptim(t, modelcfg.Tiny(), 95)
	mNew, oNew := buildOptim(t, modelcfg.Tiny(), 96)
	spec := func(m *model.Model, o *optim.AdamW) SaveSpec {
		return SaveSpec{Dir: "run/checkpoint-200", Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", State: TrainerState{Step: 200, Seed: 95}}
	}

	clean := storage.NewMem()
	if err := Save(clean, spec(mOld, oOld)); err != nil {
		t.Fatal(err)
	}
	oldDigest := treeDigest(t, clean, "run/checkpoint-200")
	if err := Save(clean, spec(mNew, oNew)); err != nil {
		t.Fatal(err)
	}
	newDigest := treeDigest(t, clean, "run/checkpoint-200")
	if oldDigest == newDigest {
		t.Fatal("fixture states collide; replace test is vacuous")
	}

	count := storage.NewMem()
	f := storage.NewFault(count)
	if err := Save(f, spec(mOld, oOld)); err != nil {
		t.Fatal(err)
	}
	f.FailAt(0)
	if err := Save(f, spec(mNew, oNew)); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := storage.NewMem()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			if err := Save(f, spec(mOld, oOld)); err != nil {
				t.Fatal(err)
			}
			f.FailAt(k)
			if err := Save(f, spec(mNew, oNew)); !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Repair must roll a sealed staging tree forward, never
			// delete the only surviving copy.
			if _, err := Repair(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			if err := VerifyCommit(base, "run/checkpoint-200"); err != nil {
				t.Fatalf("k=%d torn=%v: checkpoint lost after repair: %v", k, torn, err)
			}
			switch d := treeDigest(t, base, "run/checkpoint-200"); d {
			case oldDigest, newDigest:
			default:
				t.Fatalf("k=%d torn=%v: replaced checkpoint is a hybrid", k, torn)
			}
			latest, err := Latest(base, "run")
			if err != nil || latest != "run/checkpoint-200" {
				t.Fatalf("k=%d torn=%v: latest = %q, %v", k, torn, latest, err)
			}
		}
	}
}

// Satellite: kill the async background writer mid-checkpoint. Wait must
// surface the injected error and the run root must still resolve to the
// last committed checkpoint. Run with -race: the fault fires on the
// saver's goroutine while the trainer thread keeps mutating state.
func TestAsyncSaverCrashMidCheckpoint(t *testing.T) {
	mPrev, oPrev := buildOptim(t, modelcfg.Tiny(), 93)
	mNext, oNext := buildOptim(t, modelcfg.Tiny(), 94)

	// Count fault points of one async save so the crash can be planted at
	// several depths, including inside the container writes.
	count := storage.NewFault(storage.NewMem())
	s := NewAsyncSaver(count, 2)
	if err := s.Save(SaveSpec{Dir: "run/checkpoint-200", Model: mNext, Optim: oNext,
		WorldSize: 2, Strategy: "full", State: TrainerState{Step: 200, Seed: 94}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	n := int(count.Ops())

	for _, k := range []int{1, n / 2, n} {
		base := storage.NewMem()
		if err := Save(base, SaveSpec{Dir: "run/checkpoint-100", Model: mPrev, Optim: oPrev,
			WorldSize: 2, Strategy: "full", State: TrainerState{Step: 100, Seed: 93}}); err != nil {
			t.Fatal(err)
		}

		// Fresh "next" state per iteration: the trainer thread below
		// trashes it while the background writer crashes.
		mk, ok := buildOptim(t, modelcfg.Tiny(), 94)
		f := storage.NewFault(base)
		f.SetTorn(true)
		f.FailAt(k)
		saver := NewAsyncSaver(f, 2)
		if err := saver.Save(SaveSpec{Dir: "run/checkpoint-200", Model: mk, Optim: ok,
			WorldSize: 2, Strategy: "full", State: TrainerState{Step: 200, Seed: 94}}); err != nil {
			t.Fatal(err)
		}
		// Race the trainer thread against the crashing background writer.
		for _, ts := range mk.Tensors() {
			ts.Fill(42)
		}
		err := saver.Wait()
		if !storage.IsInjected(err) {
			t.Fatalf("k=%d: Wait = %v, want injected fault", k, err)
		}
		latest, lerr := Latest(base, "run")
		if lerr != nil || latest != "run/checkpoint-100" {
			t.Fatalf("k=%d: latest = %q, %v; want the last committed checkpoint", k, latest, lerr)
		}
		if _, _, _, err := Restore(base, latest, tensor.BF16); err != nil {
			t.Fatalf("k=%d: restore after async crash: %v", k, err)
		}
	}
}
