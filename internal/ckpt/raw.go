// Zero-decode raw access to container payloads.
//
// LTSF headers already carry every tensor's extent and CRC32, so a merge
// that takes a tensor verbatim from one source does not need to decode,
// dtype-check, re-encode and re-CRC it: the payload bytes can be spliced
// from the source extent into the output container and the source checksum
// carried forward untouched. RawTensor/OpenRaw expose the read side;
// LTSFWriter.AppendRaw is the write side. The bytes produced are identical
// to the decode path's (WriteTensor of the decoded tensor), which the
// merge golden tests pin.

package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"

	"llmtailor/internal/tensor"
)

// RawTensor describes one tensor's stored payload: everything AppendRaw
// needs to splice it into another container without decoding a byte.
type RawTensor struct {
	// Name is the tensor's name in the container header.
	Name string
	// DType is the stored dtype string (e.g. "bf16").
	DType string
	// Shape is the stored shape.
	Shape []int
	// Size is the payload extent's byte length.
	Size int64
	// CRC32 is the source header's checksum over the payload, carried
	// forward verbatim by AppendRaw.
	CRC32 uint32
	// Offset is the payload extent's absolute offset within the source
	// file (header prefix included).
	Offset int64
}

// RawTensor returns the named tensor's payload extent and header CRC. The
// metadata was bounds-checked against the real file size at OpenLTSF, so a
// corrupt header surfaces there (or here as a missing tensor), never as a
// panic downstream.
func (r *LTSFReader) RawTensor(name string) (RawTensor, error) {
	meta, ok := r.hdr.Tensors[name]
	if !ok {
		return RawTensor{}, fmt.Errorf("ckpt: %s: no tensor %q", r.name, name)
	}
	return RawTensor{
		Name:   name,
		DType:  meta.DType,
		Shape:  append([]int(nil), meta.Shape...),
		Size:   meta.Offsets[1] - meta.Offsets[0],
		CRC32:  meta.CRC32,
		Offset: r.payloadOff + meta.Offsets[0],
	}, nil
}

// OpenRaw opens a streaming reader over the named tensor's payload extent.
// The bytes are delivered exactly as stored — no CRC verification, no
// decode; integrity travels with the carried-forward checksum, which the
// eventual consumer (ReadTensor on the spliced container) still verifies.
func (r *LTSFReader) OpenRaw(name string) (RawTensor, io.ReadCloser, error) {
	rt, err := r.RawTensor(name)
	if err != nil {
		return RawTensor{}, nil, err
	}
	rc, err := r.backend.OpenRange(r.name, rt.Offset, rt.Size)
	if err != nil {
		return RawTensor{}, nil, fmt.Errorf("ckpt: %s: open raw tensor %q: %w", r.name, name, err)
	}
	return rt, rc, nil
}

// AppendRaw splices a pre-encoded tensor payload into the container and
// records its metadata with the source CRC carried forward, skipping the
// encode and checksum passes WriteTensor performs. Exactly rt.Size bytes
// are consumed from src. The metadata is validated the same way OpenLTSF
// validates headers — an inconsistent dtype/shape/size errors out (never
// panics) before any byte is spooled, so a corrupt source extent cannot
// poison the output container silently.
func (w *LTSFWriter) AppendRaw(rt RawTensor, src io.Reader) error {
	if err := w.writable(); err != nil {
		return err
	}
	if _, dup := w.hdr.Tensors[rt.Name]; dup {
		return fmt.Errorf("ckpt: duplicate tensor %q in LTSF write", rt.Name)
	}
	meta := ltsfTensorMeta{
		DType:   rt.DType,
		Shape:   append([]int(nil), rt.Shape...),
		Offsets: [2]int64{w.off, w.off + rt.Size},
		CRC32:   rt.CRC32,
	}
	if rt.Size < 0 {
		return fmt.Errorf("ckpt: %s: raw tensor %q: negative size %d", w.name, rt.Name, rt.Size)
	}
	// Validate against an unbounded virtual payload ending at the extent:
	// the same dtype/shape/extent consistency checks OpenLTSF applies.
	if err := validateTensorMeta(rt.Name, meta, meta.Offsets[1]); err != nil {
		return fmt.Errorf("ckpt: %s: %w", w.name, err)
	}
	var sink io.Writer = w.spool
	var sum hash.Hash
	if w.digests != nil {
		sum = sha256.New()
		sink = io.MultiWriter(sink, sum)
	}
	n, err := spliceTo(sink, src, rt.Size, w.buf)
	if err != nil {
		w.err = fmt.Errorf("ckpt: %s: splice raw tensor %q: %w", w.name, rt.Name, err)
		return w.err
	}
	if n != rt.Size {
		w.err = fmt.Errorf("ckpt: %s: raw tensor %q: extent delivered %d of %d bytes", w.name, rt.Name, n, rt.Size)
		return w.err
	}
	if sum != nil {
		w.digests[rt.Name] = hex.EncodeToString(sum.Sum(nil))
	}
	w.hdr.Tensors[rt.Name] = meta
	w.off += rt.Size
	return nil
}

// memExtent matches in-memory sources whose exact remaining length is
// known (bytes.Reader, the Mem backend's range readers).
type memExtent interface {
	io.WriterTo
	Len() int
}

// spliceTo copies exactly size bytes from src into sink. An in-memory
// source of exactly that length is handed over in one wide write (WriteTo);
// anything else streams through buf-sized chunks behind a LimitReader.
func spliceTo(sink io.Writer, src io.Reader, size int64, buf []byte) (int64, error) {
	if me, ok := src.(memExtent); ok && int64(me.Len()) == size {
		return me.WriteTo(sink)
	}
	return io.CopyBuffer(sink, io.LimitReader(src, size), buf)
}

// RawEligible reports whether the named tensor can be raw-copied into an
// output of the given dtype: present, and stored in exactly that dtype (a
// conversion forces the decode path).
func (r *LTSFReader) RawEligible(name string, out tensor.DType) bool {
	meta, ok := r.hdr.Tensors[name]
	if !ok {
		return false
	}
	dt, err := tensor.ParseDType(meta.DType)
	return err == nil && dt == out
}
