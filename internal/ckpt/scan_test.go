package ckpt

import (
	"strings"
	"testing"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
)

// corrupt applies a byte-level mutilation to one file of a committed
// checkpoint without touching its marker.
func corrupt(t *testing.T, b storage.Backend, name string, f func([]byte) []byte) {
	t.Helper()
	data, err := b.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(name, f(data)); err != nil {
		t.Fatal(err)
	}
}

// TestScanClassifiesEveryDirState covers the full recovery taxonomy:
// committed, missing marker, CRC mismatch, size mismatch, orphaned
// staging, and an (OS-backend) empty checkpoint directory.
func TestScanClassifiesEveryDirState(t *testing.T) {
	b := storage.NewMem()

	// committed
	saveFull(t, b, "run/checkpoint-10", 71, 2)
	// missing marker
	saveFull(t, b, "run/checkpoint-20", 72, 2)
	b.Remove("run/checkpoint-20/" + CommitMarkerName)
	// CRC mismatch (same size, flipped byte)
	saveFull(t, b, "run/checkpoint-30", 73, 2)
	corrupt(t, b, "run/checkpoint-30/model.ltsf", func(d []byte) []byte {
		d[len(d)-1] ^= 0xff
		return d
	})
	// size mismatch (truncated shard)
	saveFull(t, b, "run/checkpoint-40", 74, 2)
	corrupt(t, b, "run/checkpoint-40/"+ShardFileName(0), func(d []byte) []byte {
		return d[:len(d)-7]
	})
	// orphaned staging dir
	b.WriteFile("run/checkpoint-50.tmp/model.ltsf", []byte("partial"))
	// sealed-but-unpublished staging dir (crash between marker and rename)
	saveFull(t, b, "run/checkpoint-60", 86, 1)
	if err := b.Rename("run/checkpoint-60", "run/checkpoint-60.tmp"); err != nil {
		t.Fatal(err)
	}
	// unrelated directory: skipped entirely
	b.WriteFile("run/logs/out.txt", []byte("x"))
	// unrelated file at the root of the run: skipped
	b.WriteFile("run/notes.txt", []byte("x"))

	statuses, err := Scan(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		state  DirState
		detail string
	}{
		"run/checkpoint-10":     {StateCommitted, ""},
		"run/checkpoint-20":     {StateTorn, "missing COMMITTED marker"},
		"run/checkpoint-30":     {StateTorn, "CRC"},
		"run/checkpoint-40":     {StateTorn, "bytes"},
		"run/checkpoint-50.tmp": {StateOrphanTmp, "staging"},
		"run/checkpoint-60.tmp": {StateUnpublished, "not yet published"},
	}
	if len(statuses) != len(want) {
		t.Fatalf("scan found %d dirs, want %d: %+v", len(statuses), len(want), statuses)
	}
	for _, st := range statuses {
		w, ok := want[st.Path]
		if !ok {
			t.Errorf("unexpected dir %s in scan", st.Path)
			continue
		}
		if st.State != w.state {
			t.Errorf("%s: state %v, want %v (%s)", st.Path, st.State, w.state, st.Detail)
		}
		if w.detail != "" && !strings.Contains(st.Detail, w.detail) {
			t.Errorf("%s: detail %q does not mention %q", st.Path, st.Detail, w.detail)
		}
	}
	// Steps are recovered for ordering: the saved dirs all carry marker/
	// manifest step 3 (what saveFull records); the bare orphan falls back
	// to its directory name.
	if statuses[0].Step != 3 || statuses[len(statuses)-1].Step != 50 {
		t.Fatalf("scan steps out of order: %+v", statuses)
	}
}

// The empty-directory state only exists on OS backends (Mem directories
// are implied by their files).
func TestScanEmptyDirOnOSBackend(t *testing.T) {
	b, err := storage.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	saveFull(t, b, "run/checkpoint-10", 75, 1)
	// An interrupted mkdir: the directory exists with nothing inside.
	if err := b.WriteFile("run/checkpoint-20/probe", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("run/checkpoint-20/probe"); err != nil {
		t.Fatal(err)
	}
	statuses, err := Scan(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("scan = %+v", statuses)
	}
	empty := statuses[len(statuses)-1]
	if empty.Path != "run/checkpoint-20" || empty.State != StateTorn ||
		!strings.Contains(empty.Detail, "empty") {
		t.Fatalf("empty dir classified as %+v", empty)
	}
}

// Single-segment run-root edge case from PR 1: a root-level output dir
// ("merged") whose run root is the backend root itself.
func TestScanSingleSegmentRunRoot(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "merged", 76, 1)
	statuses, err := Scan(b, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || statuses[0].Path != "merged" || statuses[0].State != StateCommitted {
		t.Fatalf("root scan = %+v", statuses)
	}
	// Tear it: the scan must flag it even though the name is not
	// checkpoint-N (the marker makes it a candidate).
	corrupt(t, b, "merged/model.ltsf", func(d []byte) []byte {
		d[20] ^= 1
		return d
	})
	statuses, _ = Scan(b, "")
	if len(statuses) != 1 || statuses[0].State != StateTorn {
		t.Fatalf("torn root scan = %+v", statuses)
	}
}

func TestListSkipsUncommittedAndLatestFallsBack(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-10", 77, 1)
	saveFull(t, b, "run/checkpoint-20", 78, 1)
	// checkpoint-20 is the latest pointer target; tear it.
	b.Remove("run/checkpoint-20/" + CommitMarkerName)
	// An in-flight staging dir never shows up.
	b.WriteFile("run/checkpoint-30.tmp/model.ltsf", []byte("x"))

	dirs, err := List(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "run/checkpoint-10" {
		t.Fatalf("list = %v", dirs)
	}
	latest, err := Latest(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if latest != "run/checkpoint-10" {
		t.Fatalf("latest fell back to %q, want run/checkpoint-10", latest)
	}
	// No committed checkpoint at all: Latest errors.
	b.Remove("run/checkpoint-10/" + CommitMarkerName)
	if _, err := Latest(b, "run"); err == nil {
		t.Fatal("latest resolved with no committed checkpoint")
	}
}

func TestRepairRemovesProblemsAndFixesPointer(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-10", 79, 1)
	saveFull(t, b, "run/checkpoint-20", 80, 1)
	b.Remove("run/checkpoint-20/" + CommitMarkerName) // torn, holds the pointer
	b.WriteFile("run/checkpoint-30.tmp/x", []byte("x"))
	b.WriteFile("run/latest.tmp", []byte("checkpoint-999")) // crashed pointer update

	// A sealed-but-unpublished save at step 40 must be rolled forward, not
	// deleted, and then owns the latest pointer as the newest commit.
	saveFull(t, b, "run/checkpoint-40", 87, 1)
	if err := b.Rename("run/checkpoint-40", "run/checkpoint-40.tmp"); err != nil {
		t.Fatal(err)
	}
	WriteLatestPointer(b, "run/checkpoint-10")

	rep, err := Repair(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 2 {
		t.Fatalf("removed = %v", rep.Removed)
	}
	if len(rep.Published) != 1 || rep.Published[0] != "run/checkpoint-40" {
		t.Fatalf("published = %v", rep.Published)
	}
	if !rep.LatestFixed || rep.Latest != "run/checkpoint-40" {
		t.Fatalf("repair report = %+v", rep)
	}
	if b.Exists("run/checkpoint-20") || b.Exists("run/checkpoint-30.tmp") ||
		b.Exists("run/checkpoint-40.tmp") || b.Exists("run/latest.tmp") {
		t.Fatal("repair left problem dirs behind")
	}
	if err := VerifyCommit(b, "run/checkpoint-40"); err != nil {
		t.Fatal(err)
	}
	latest, err := Latest(b, "run")
	if err != nil || latest != "run/checkpoint-40" {
		t.Fatalf("latest after repair = %q, %v", latest, err)
	}
	// Idempotent.
	rep2, err := Repair(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Removed) != 0 || rep2.LatestFixed {
		t.Fatalf("second repair not a no-op: %+v", rep2)
	}
}

func TestRepairWithNoSurvivorsRemovesPointer(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-10", 81, 1)
	b.Remove("run/checkpoint-10/" + CommitMarkerName)
	rep, err := Repair(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LatestFixed || rep.Latest != "" {
		t.Fatalf("report = %+v", rep)
	}
	if b.Exists("run/latest") {
		t.Fatal("dangling pointer survived repair")
	}
}

// Satellite regression: the latest pointer must move atomically. A crash
// during the pointer update leaves the previous pointer intact — never a
// truncated or missing file.
func TestWriteLatestPointerAtomic(t *testing.T) {
	base := storage.NewMem()
	saveFull(t, base, "run/checkpoint-10", 82, 1)

	f := storage.NewFault(base)
	f.SetTorn(true)
	// Fault point 1 is the pointer-staging WriteFile, 2 the rename; under
	// either crash the durable pointer still names checkpoint-10.
	for k := 1; k <= 2; k++ {
		f.FailAt(k)
		if err := WriteLatestPointer(f, "run/checkpoint-20"); !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v", k, err)
		}
		got, err := base.ReadFile("run/latest")
		if err != nil {
			t.Fatalf("k=%d: pointer gone: %v", k, err)
		}
		if string(got) != "checkpoint-10" {
			t.Fatalf("k=%d: pointer = %q, want previous value", k, got)
		}
		base.Remove("run/latest.tmp")
	}
	// Unarmed, the update lands.
	f.Reset()
	if err := WriteLatestPointer(f, "run/checkpoint-20"); err != nil {
		t.Fatal(err)
	}
	if got, _ := base.ReadFile("run/latest"); string(got) != "checkpoint-20" {
		t.Fatalf("pointer = %q", got)
	}
}

// Saving through a transaction must leave a marker that verifies, and any
// post-publication mutilation must be caught by VerifyCommit.
func TestCommitMarkerRoundtrip(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-5", 83, 2)
	if err := CheckCommit(b, "run/checkpoint-5"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCommit(b, "run/checkpoint-5"); err != nil {
		t.Fatal(err)
	}
	m, err := ReadCommitMarker(b, "run/checkpoint-5")
	if err != nil {
		t.Fatal(err)
	}
	if m.Step != 3 {
		t.Fatalf("marker step = %d", m.Step)
	}
	// The marker covers every checkpoint file (not itself).
	for _, f := range []string{"model.ltsf", "config.json", "trainer_state.json",
		"manifest.json", ShardFileName(0), ShardFileName(1)} {
		if _, ok := m.Files[f]; !ok {
			t.Errorf("marker missing %s (has %v)", f, m.Files)
		}
	}
	if _, ok := m.Files[CommitMarkerName]; ok {
		t.Error("marker lists itself")
	}
	// No staging residue.
	if b.Exists(StagingDir("run/checkpoint-5")) {
		t.Fatal("staging dir survived commit")
	}
	// CRC pass catches a flipped bit that size checks cannot.
	corrupt(t, b, "run/checkpoint-5/config.json", func(d []byte) []byte {
		d[0] ^= 1
		return d
	})
	if err := VerifyCommit(b, "run/checkpoint-5"); err == nil {
		t.Fatal("VerifyCommit missed a flipped bit")
	}
	if err := CheckCommit(b, "run/checkpoint-5"); err != nil {
		t.Fatalf("CheckCommit should pass on same-size corruption: %v", err)
	}
}

func TestSaveReplacesExistingCheckpoint(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-7", 84, 1)
	old, _ := b.ReadFile("run/checkpoint-7/model.ltsf")
	m, o := buildOptim(t, modelcfg.Tiny(), 85)
	if err := Save(b, SaveSpec{Dir: "run/checkpoint-7", Model: m, Optim: o,
		WorldSize: 1, Strategy: "full", State: TrainerState{Step: 7, Seed: 85}}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCommit(b, "run/checkpoint-7"); err != nil {
		t.Fatal(err)
	}
	now, _ := b.ReadFile("run/checkpoint-7/model.ltsf")
	if string(old) == string(now) {
		t.Fatal("replacement save kept old weights")
	}
}
