package ckpt

// Crash-point exploration and stress for the write-objects-then-manifest
// commit protocol: dedup saves on a no-rename object store, where the
// COMMITTED marker's single atomic PUT is the publication. Every mutating
// operation fails in turn (clean and torn) and the previous-or-new-
// never-hybrid invariant must hold, exactly as it does for the rename
// protocol on filesystems.

import (
	"fmt"
	"sync"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func TestCrashPointExplorationObjStoreSave(t *testing.T) {
	mPrev, oPrev := buildOptim(t, modelcfg.Tiny(), 150)
	mNext, oNext := buildOptim(t, modelcfg.Tiny(), 151)
	specFor := func(dir string, step int, m *model.Model, o *optim.AdamW) SaveSpec {
		return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2, Strategy: "full",
			Dedup: true, State: TrainerState{Step: step, Seed: 150}}
	}

	// Ground truth: fault-free saves on a clean object store, and the same
	// pair on a local filesystem-like backend. The checkpoint directories
	// must be byte-identical across the two protocols — the commit
	// machinery differs, the published tree must not.
	clean := storage.NewObjStore()
	if err := Save(clean, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	prevDigest := treeDigest(t, clean, "run/checkpoint-100")
	if err := Save(clean, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	nextDigest := treeDigest(t, clean, "run/checkpoint-200")
	local := storage.NewMem()
	if err := Save(local, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	if d := treeDigest(t, local, "run/checkpoint-100"); d != prevDigest {
		t.Fatalf("object-store checkpoint differs from the local one")
	}

	// Count the fault points of the second save (blob puts included).
	f := storage.NewFault(storage.NewObjStore())
	if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	f.FailAt(0)
	if err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())
	if n < 10 {
		t.Fatalf("suspiciously few fault points in an object-store dedup save: %d", n)
	}
	t.Logf("exploring %d crash points × {clean, torn}", n)

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := storage.NewObjStore()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
				t.Fatal(err)
			}
			f.FailAt(k)
			if err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext)); !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Invariant 1: the previous checkpoint is untouched.
			if err := VerifyCommit(base, "run/checkpoint-100"); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint damaged: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-100"); d != prevDigest {
				t.Fatalf("k=%d torn=%v: previous checkpoint bytes changed", k, torn)
			}

			// Invariant 2: a readable marker means the checkpoint is whole.
			// On an object store the staging and final paths coincide, so a
			// crashed save leaves marker-less (or, torn, marker-corrupt)
			// objects at the final path — that state must never verify, and
			// a marker that parses must cap a byte-exact checkpoint.
			if _, err := ReadCommitMarker(base, "run/checkpoint-200"); err == nil {
				if err := VerifyCommit(base, "run/checkpoint-200"); err != nil {
					t.Fatalf("k=%d torn=%v: readable marker over a torn checkpoint: %v", k, torn, err)
				}
				if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
					t.Fatalf("k=%d torn=%v: published checkpoint differs from fault-free save", k, torn)
				}
			} else if err := VerifyCommit(base, "run/checkpoint-200"); err == nil {
				t.Fatalf("k=%d torn=%v: VerifyCommit passed without a readable marker", k, torn)
			}

			// Invariant 3: resolution yields exactly one of the two source
			// states — never a hybrid.
			latest, err := Latest(base, "run")
			if err != nil {
				t.Fatalf("k=%d torn=%v: no resolvable checkpoint after crash: %v", k, torn, err)
			}
			rm, ro, c, err := Restore(base, latest, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d torn=%v: restore %s: %v", k, torn, latest, err)
			}
			switch c.State.Step {
			case 100:
				if !model.Equal(rm, mPrev) || !sameOptim(ro, oPrev) {
					t.Fatalf("k=%d torn=%v: step-100 restore is a hybrid", k, torn)
				}
			case 200:
				if !model.Equal(rm, mNext) || !sameOptim(ro, oNext) {
					t.Fatalf("k=%d torn=%v: step-200 restore is a hybrid", k, torn)
				}
			default:
				t.Fatalf("k=%d torn=%v: restored unknown step %d", k, torn, c.State.Step)
			}

			// Invariant 4: Repair + GC converge to a healthy root and the
			// save retries to a byte-identical result.
			if _, err := Repair(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			if _, err := GC(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: gc: %v", k, torn, err)
			}
			statuses, err := Scan(base, "run")
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range statuses {
				if st.State != StateCommitted {
					t.Fatalf("k=%d torn=%v: %s still %v after repair+gc", k, torn, st.Path, st.State)
				}
			}
			if bs, _ := ScanBlobs(base, "run"); true {
				for _, s := range bs {
					if s.State != BlobReferenced {
						t.Fatalf("k=%d torn=%v: blob %s still %v after gc", k, torn, s.Path, s.State)
					}
				}
			}
			if problems := refProblems(t, base, "run"); len(problems) != 0 {
				t.Fatalf("k=%d torn=%v: ref-index problems after repair+gc: %+v", k, torn, problems)
			}
			if _, _, _, err := Restore(base, "run/checkpoint-100", tensor.BF16); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint unrestorable after gc: %v", k, torn, err)
			}
			if err := Save(base, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
				t.Fatalf("k=%d torn=%v: save after repair: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
				t.Fatalf("k=%d torn=%v: post-repair save differs from fault-free save", k, torn)
			}
		}
	}
}

// TestShardedObjStoreRoundTrip pins the acceptance bar for the sharded
// CAS: a dedup save routed through a digest-sharded object store must
// publish a checkpoint directory byte-identical to a local save, restore
// bit-exact, and survive repair + GC with a clean index.
func TestShardedObjStoreRoundTrip(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 160)
	spec := func(step int) SaveSpec {
		return SaveSpec{Dir: fmt.Sprintf("run/checkpoint-%d", step), Model: m, Optim: o,
			WorldSize: 2, Strategy: "full", Dedup: true,
			State: TrainerState{Step: step, Seed: 160}}
	}

	local := storage.NewMem()
	if err := Save(local, spec(100)); err != nil {
		t.Fatal(err)
	}
	want := treeDigest(t, local, "run/checkpoint-100")

	obj := storage.NewObjStore()
	if err := storage.InitShards(obj, objectsPath("run"), 4); err != nil {
		t.Fatalf("InitShards: %v", err)
	}
	if err := Save(obj, spec(100)); err != nil {
		t.Fatalf("sharded save: %v", err)
	}
	if got := treeDigest(t, obj, "run/checkpoint-100"); got != want {
		t.Fatalf("sharded checkpoint differs from local save")
	}

	// The blobs really live under shard directories, not the flat layout.
	if !obj.Exists(objectsPath("run") + "/" + storage.ShardConfigName) {
		t.Fatalf("shard config missing after save")
	}
	bs, err := ScanBlobs(obj, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Fatalf("sharded save published no blobs")
	}
	used := map[string]bool{}
	for _, s := range bs {
		if s.State != BlobReferenced {
			t.Fatalf("blob %s is %v, want referenced", s.Path, s.State)
		}
		var shard int
		if _, err := fmt.Sscanf(s.Path, objectsPath("run")+"/shard-%d/", &shard); err != nil {
			t.Fatalf("blob %s not under a shard directory", s.Path)
		}
		used[fmt.Sprintf("shard-%d", shard)] = true
	}
	if len(bs) >= 8 && len(used) < 2 {
		t.Fatalf("%d blobs all routed to one shard: %v", len(bs), used)
	}

	rm, ro, c, err := Restore(obj, "run/checkpoint-100", tensor.BF16)
	if err != nil {
		t.Fatalf("restore through sharded store: %v", err)
	}
	if c.State.Step != 100 || !model.Equal(rm, m) || !sameOptim(ro, o) {
		t.Fatalf("sharded round-trip not bit-exact")
	}

	// A second identical save is a full dedup hit: same tree, same blobs.
	if err := Save(obj, spec(200)); err != nil {
		t.Fatal(err)
	}
	bs2, err := ScanBlobs(obj, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs2) != len(bs) {
		t.Fatalf("identical payload grew the sharded store: %d -> %d blobs", len(bs), len(bs2))
	}

	if _, err := Repair(obj, "run"); err != nil {
		t.Fatalf("repair on sharded store: %v", err)
	}
	if _, err := GC(obj, "run"); err != nil {
		t.Fatalf("gc on sharded store: %v", err)
	}
	if problems := refProblems(t, obj, "run"); len(problems) != 0 {
		t.Fatalf("ref-index problems on sharded store: %+v", problems)
	}
}

// TestShardedGCRacingConcurrentSave hammers full GC against a stream of
// dedup saves on a two-shard object store. The sweeps partition by shard
// while the saves publish blobs across both; whatever interleaving the
// scheduler picks, every save must commit and every committed checkpoint
// must restore bit-exact. Run under -race this also pins the wrappers'
// and the sharded store's internal locking.
func TestShardedGCRacingConcurrentSave(t *testing.T) {
	obj := storage.NewObjStore()
	if err := storage.InitShards(obj, objectsPath("run"), 2); err != nil {
		t.Fatal(err)
	}
	const saves = 8
	states := make([]*model.Model, saves+1)
	optims := make([]*optim.AdamW, saves+1)

	var wg sync.WaitGroup
	done := make(chan struct{})
	saveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 1; i <= saves; i++ {
			m, o := buildOptim(t, modelcfg.Tiny(), uint64(360+i))
			states[i], optims[i] = m, o
			dir := fmt.Sprintf("run/checkpoint-%d", i*10)
			if err := Save(obj, SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2,
				Strategy: "full", Dedup: true, State: TrainerState{Step: i * 10, Seed: uint64(360 + i)}}); err != nil {
				select {
				case saveErr <- fmt.Errorf("save %s: %w", dir, err):
				default:
				}
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := GC(obj, "run"); err != nil {
				t.Errorf("concurrent gc on sharded store: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-saveErr:
		t.Fatal(err)
	default:
	}

	// Quiesce, then verify every committed checkpoint restores bit-exact.
	if _, err := Repair(obj, "run"); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(obj, "run"); err != nil {
		t.Fatal(err)
	}
	dirs, err := List(obj, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != saves {
		t.Fatalf("%d of %d checkpoints survived the race", len(dirs), saves)
	}
	for _, dir := range dirs {
		rm, ro, c, err := Restore(obj, dir, tensor.BF16)
		if err != nil {
			t.Fatalf("%s unrestorable after race: %v", dir, err)
		}
		i := c.State.Step / 10
		if i < 1 || i > saves || states[i] == nil {
			t.Fatalf("%s restored unknown step %d", dir, c.State.Step)
		}
		if !model.Equal(rm, states[i]) || !sameOptim(ro, optims[i]) {
			t.Fatalf("%s differs from the state that produced it", dir)
		}
	}
	if problems := refProblems(t, obj, "run"); len(problems) != 0 {
		t.Fatalf("ref-index problems after race: %+v", problems)
	}
}
