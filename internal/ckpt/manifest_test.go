package ckpt

import (
	"strings"
	"testing"

	"llmtailor/internal/storage"
)

// goldenWeightManifest builds a small valid weight manifest's container
// bytes (also the fuzz seed).
func goldenWeightManifest(tb testing.TB) []byte {
	tb.Helper()
	m := &WeightManifest{
		Version: FormatVersion,
		Model:   "tiny",
		Tensors: []WeightEntry{
			{Name: "embed_tokens.weight", DType: "bf16", Shape: []int{4, 8}, Size: 64,
				CRC32: 0xdeadbeef, Digest: strings.Repeat("ab", 32)},
			{Name: "layers.0.mlp.weight", DType: "f32", Shape: []int{2, 2}, Size: 16,
				CRC32: 7, Digest: strings.Repeat("cd", 32)},
		},
	}
	data, err := encodeManifest(ltmfMagic, m)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// goldenShardManifest builds a small valid shard manifest's container
// bytes (also the fuzz seed).
func goldenShardManifest(tb testing.TB) []byte {
	tb.Helper()
	m := &ShardManifest{
		Version: FormatVersion, Rank: 1, WorldSize: 2, Step: 7, Layout: "layerwise",
		Groups: []ShardGroupEntry{
			{Index: 0, Numel: 12, ShardLen: 6, Size: 72, CRC32: 3, Layer: "embed_tokens",
				Digest: strings.Repeat("ef", 32)},
			{Index: 2, Numel: 4, ShardLen: 2, Size: 24, CRC32: 9, NoDecay: true,
				Digest: strings.Repeat("01", 32)},
		},
	}
	data, err := encodeManifest(ltomMagic, m)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func TestWeightManifestRoundtrip(t *testing.T) {
	b := storage.NewMem()
	m := &WeightManifest{Version: FormatVersion, Model: "tiny", Tensors: []WeightEntry{
		{Name: "t", DType: "bf16", Shape: []int{3, 5}, Size: 30, CRC32: 5, Digest: strings.Repeat("77", 32)},
	}}
	if err := WriteWeightManifest(b, "ckpt/model.ltmf", m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightManifest(b, "ckpt/model.ltmf")
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "tiny" || len(got.Tensors) != 1 ||
		got.Tensors[0].Name != "t" || got.Tensors[0].Digest != m.Tensors[0].Digest ||
		got.Tensors[0].CRC32 != 5 || len(got.Tensors[0].Shape) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if e, ok := got.Entry("t"); !ok || e.Size != 30 {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
	if _, ok := got.Entry("missing"); ok {
		t.Fatal("phantom entry")
	}
	if d := got.Digests(); len(d) != 1 || d[0] != m.Tensors[0].Digest {
		t.Fatalf("digests = %v", d)
	}
}

func TestShardManifestRoundtrip(t *testing.T) {
	b := storage.NewMem()
	data := goldenShardManifest(t)
	if err := b.WriteFile("ckpt/"+ShardManifestName(1), data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardManifest(b, "ckpt/"+ShardManifestName(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != 1 || got.WorldSize != 2 || got.Step != 7 || len(got.Groups) != 2 {
		t.Fatalf("roundtrip = %+v", got)
	}
	meta := got.Groups[0].Meta()
	if meta.Index != 0 || meta.Numel != 12 || meta.Layer != "embed_tokens" || meta.CRC32 != 3 {
		t.Fatalf("meta = %+v", meta)
	}
}

// TestManifestDecodeRejectsCorruption covers the validation table for both
// codecs: every corrupt input must error (never panic).
func TestManifestDecodeRejectsCorruption(t *testing.T) {
	wm := goldenWeightManifest(t)
	sm := goldenShardManifest(t)
	d64 := strings.Repeat("ab", 32)

	weightCases := map[string]string{
		"bad-digest-short": `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[1],"size":4,"crc32":0,"digest":"abc"}]}`,
		"bad-digest-chars": `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[1],"size":4,"crc32":0,"digest":"` + strings.Repeat("zz", 32) + `"}]}`,
		"negative-size":    `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[1],"size":-4,"crc32":0,"digest":"` + d64 + `"}]}`,
		"size-mismatch":    `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[3],"size":4,"crc32":0,"digest":"` + d64 + `"}]}`,
		"zero-dim":         `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[0],"size":0,"crc32":0,"digest":"` + d64 + `"}]}`,
		"overflow-dim":     `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[4611686018427387904,4611686018427387904],"size":8,"crc32":0,"digest":"` + d64 + `"}]}`,
		"bad-dtype":        `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f13","shape":[1],"size":4,"crc32":0,"digest":"` + d64 + `"}]}`,
		"dup-name":         `{"version":1,"model":"m","tensors":[{"name":"t","dtype":"f32","shape":[1],"size":4,"crc32":0,"digest":"` + d64 + `"},{"name":"t","dtype":"f32","shape":[1],"size":4,"crc32":0,"digest":"` + d64 + `"}]}`,
		"empty-name":       `{"version":1,"model":"m","tensors":[{"name":"","dtype":"f32","shape":[1],"size":4,"crc32":0,"digest":"` + d64 + `"}]}`,
		"bad-version":      `{"version":9,"model":"m","tensors":[]}`,
	}
	for name, hdr := range weightCases {
		if _, err := DecodeWeightManifest(manifestContainer(ltmfMagic, hdr)); err == nil {
			t.Errorf("weight manifest %s: accepted", name)
		}
	}

	shardCases := map[string]string{
		"bad-layout":     `{"version":1,"rank":0,"world_size":1,"layout":"diagonal","groups":[]}`,
		"bad-rank":       `{"version":1,"rank":3,"world_size":2,"layout":"layerwise","groups":[]}`,
		"neg-world":      `{"version":1,"rank":0,"world_size":-1,"layout":"layerwise","groups":[]}`,
		"size-not-12x":   `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":2,"shard_len":2,"size":25,"crc32":0,"digest":"` + d64 + `"}]}`,
		"overflow-shard": `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":2,"shard_len":4611686018427387904,"size":24,"crc32":0,"digest":"` + d64 + `"}]}`,
		"wrap-shard":     `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":2,"shard_len":2000000000000000000,"size":5553255926290448384,"crc32":0,"digest":"` + d64 + `"}]}`,
		"dup-index":      `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":1,"shard_len":1,"size":12,"crc32":0,"digest":"` + d64 + `"},{"index":0,"numel":1,"shard_len":1,"size":12,"crc32":0,"digest":"` + d64 + `"}]}`,
		"neg-index":      `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":-1,"numel":1,"shard_len":1,"size":12,"crc32":0,"digest":"` + d64 + `"}]}`,
		"bad-digest":     `{"version":1,"rank":0,"world_size":1,"layout":"layerwise","groups":[{"index":0,"numel":1,"shard_len":1,"size":12,"crc32":0,"digest":"nope"}]}`,
	}
	for name, hdr := range shardCases {
		if _, err := DecodeShardManifest(manifestContainer(ltomMagic, hdr)); err == nil {
			t.Errorf("shard manifest %s: accepted", name)
		}
	}

	// Framing corruption applies to both.
	for name, mut := range map[string]func([]byte) []byte{
		"truncated":    func(d []byte) []byte { return d[:len(d)/2] },
		"short-prefix": func(d []byte) []byte { return d[:8] },
		"bad-magic":    func(d []byte) []byte { d[0] ^= 0xff; return d },
		"trailing":     func(d []byte) []byte { return append(d, 'x') },
		"huge-length": func(d []byte) []byte {
			for i := 4; i < 12; i++ {
				d[i] = 0xff
			}
			return d
		},
		"zero-length": func(d []byte) []byte {
			for i := 4; i < 12; i++ {
				d[i] = 0
			}
			return d
		},
	} {
		if _, err := DecodeWeightManifest(mut(append([]byte(nil), wm...))); err == nil {
			t.Errorf("weight manifest framing %s: accepted", name)
		}
		if _, err := DecodeShardManifest(mut(append([]byte(nil), sm...))); err == nil {
			t.Errorf("shard manifest framing %s: accepted", name)
		}
	}

	// The golden containers themselves decode.
	if _, err := DecodeWeightManifest(wm); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShardManifest(sm); err != nil {
		t.Fatal(err)
	}
}

// manifestContainer frames a JSON header into manifest container bytes.
func manifestContainer(magic [4]byte, hdr string) []byte {
	out := append([]byte(nil), magic[:]...)
	out = append(out, byte(len(hdr)), byte(len(hdr)>>8), 0, 0, 0, 0, 0, 0)
	return append(out, hdr...)
}
