package ckpt

import (
	"fmt"
	"sort"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
)

// LayerDeltaRow is one layer's share of a dedup checkpoint, split into
// bytes the save actually moved (digests absent from the previous
// checkpoint — new content that had to be stored) and bytes it merely
// referenced (digests the previous checkpoint already pinned).
type LayerDeltaRow struct {
	// Layer is the mergeable unit ("block-3", "embed", ...), or
	// "(unlayered)" for optimizer groups saved without a layer binding.
	Layer string
	// Payloads counts the layer's manifest entries (weight tensors plus
	// per-rank optimizer group shards).
	Payloads int
	// Bytes is the layer's total payload size.
	Bytes int64
	// BytesMoved is the size of payloads new relative to the previous
	// checkpoint (all of Bytes when there is no previous checkpoint).
	BytesMoved int64
	// BytesReused is the size of payloads whose digest the previous
	// checkpoint also references.
	BytesReused int64
	// BytesStored is the layer's on-disk footprint after blob compression:
	// the sum of each entry's stored (encoded) size, falling back to the
	// payload size for raw entries. Equal to Bytes for uncompressed
	// checkpoints.
	BytesStored int64
	// Changed is set when any payload moved.
	Changed bool
}

// Unlayered names the delta row of payloads with no layer binding.
const Unlayered = "(unlayered)"

// dirDigests collects every blob digest a dedup checkpoint references.
func dirDigests(b storage.Backend, dir string) (map[string]bool, error) {
	wm, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, e := range wm.Tensors {
		set[e.Digest] = true
	}
	for _, r := range shardManifestRanks(b, dir) {
		sm, err := ReadShardManifest(b, dir+"/"+ShardManifestName(r))
		if err != nil {
			return nil, err
		}
		for _, g := range sm.Groups {
			set[g.Digest] = true
		}
	}
	return set, nil
}

// LayerDelta breaks a dedup checkpoint down per layer: how many payload
// bytes each layer moved versus reused against prevDir (the previous
// checkpoint of the same run; "" treats every payload as moved). Rows
// come back in the model's layer order, with an "(unlayered)" row last
// when optimizer groups were saved without a layer binding. Both
// directories must be content-addressed — plain containers record no
// digests to diff.
func LayerDelta(b storage.Backend, dir, prevDir string) ([]LayerDeltaRow, error) {
	if !IsDedup(b, dir) {
		return nil, fmt.Errorf("ckpt: %s is not content-addressed (no %s)", dir, WeightManifestName)
	}
	prev := map[string]bool{}
	if prevDir != "" {
		if !IsDedup(b, prevDir) {
			return nil, fmt.Errorf("ckpt: %s is not content-addressed (no %s)", prevDir, WeightManifestName)
		}
		var err error
		if prev, err = dirDigests(b, prevDir); err != nil {
			return nil, err
		}
	}

	cfg := &modelcfg.Config{}
	if err := readJSON(b, dir+"/config.json", cfg); err != nil {
		return nil, err
	}
	weightLayer := map[string]string{}
	for _, spec := range cfg.Tensors() {
		weightLayer[spec.Name] = spec.Layer.String()
	}

	rows := map[string]*LayerDeltaRow{}
	add := func(layer string, size, stored int64, digest string) {
		if layer == "" {
			layer = Unlayered
		}
		row := rows[layer]
		if row == nil {
			row = &LayerDeltaRow{Layer: layer}
			rows[layer] = row
		}
		row.Payloads++
		row.Bytes += size
		if stored <= 0 {
			stored = size // raw entry: stored verbatim
		}
		row.BytesStored += stored
		if prev[digest] {
			row.BytesReused += size
		} else {
			row.BytesMoved += size
			row.Changed = true
		}
	}

	wm, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return nil, err
	}
	for _, e := range wm.Tensors {
		add(weightLayer[e.Name], e.Size, e.Stored, e.Digest)
	}
	for _, r := range shardManifestRanks(b, dir) {
		sm, err := ReadShardManifest(b, dir+"/"+ShardManifestName(r))
		if err != nil {
			return nil, err
		}
		for _, g := range sm.Groups {
			add(g.Layer, g.Size, g.Stored, g.Digest)
		}
	}

	// Model layer order, then anything the config does not name.
	order := map[string]int{}
	for i, ref := range cfg.AllLayers() {
		order[ref.String()] = i
	}
	out := make([]LayerDeltaRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, iok := order[out[i].Layer]
		oj, jok := order[out[j].Layer]
		if iok != jok {
			return iok
		}
		if iok && jok && oi != oj {
			return oi < oj
		}
		return out[i].Layer < out[j].Layer
	})
	return out, nil
}

// PreviousCheckpoint resolves the committed checkpoint immediately
// preceding dir under its run root ("" when dir is the oldest). The run
// root is dir's parent directory.
func PreviousCheckpoint(b storage.Backend, dir string) (string, error) {
	runRoot := ""
	if i := len(dir) - 1; i >= 0 {
		for j := i; j >= 0; j-- {
			if dir[j] == '/' {
				runRoot = dir[:j]
				break
			}
		}
	}
	dirs, err := List(b, runRoot)
	if err != nil {
		return "", err
	}
	prev := ""
	for _, d := range dirs {
		if d == dir {
			return prev, nil
		}
		prev = d
	}
	return "", fmt.Errorf("ckpt: %s is not a committed checkpoint under %q", dir, runRoot)
}
