package ckpt

import (
	"fmt"
	"sync"

	"llmtailor/internal/parallel"
	"llmtailor/internal/storage"
)

// AsyncSaver overlaps checkpoint writes with continued training, in the
// spirit of CheckFreq/DataStates-LLM (§6.1 of the paper — optimizations the
// paper notes are composable with partial checkpointing). Save snapshots the
// model and optimizer state synchronously (the only part that must stall the
// training step) and performs serialisation and I/O on a background
// goroutine, via the same ordered pipeline primitive the merge engine uses.
// At most `depth` writes may be in flight; further Saves block, bounding
// memory at depth+1 state copies.
type AsyncSaver struct {
	pipe *parallel.Pipeline[SaveSpec, error]

	mu   sync.Mutex
	errs []error
	done bool
}

// NewAsyncSaver starts a saver over the backend with the given in-flight
// depth (minimum 1).
func NewAsyncSaver(b storage.Backend, depth int) *AsyncSaver {
	if depth < 1 {
		depth = 1
	}
	s := &AsyncSaver{}
	// The pipeline's own error channel would abort on the first failure;
	// checkpoint saves must instead attempt every write and report the
	// combined outcome, so failures travel as values into the sink.
	s.pipe = parallel.NewPipeline(1, depth-1,
		func(spec SaveSpec) (error, error) {
			if err := Save(b, spec); err != nil {
				return fmt.Errorf("ckpt: async save %s: %w", spec.Dir, err), nil
			}
			return nil, nil
		},
		func(saveErr error) error {
			if saveErr != nil {
				s.mu.Lock()
				s.errs = append(s.errs, saveErr)
				s.mu.Unlock()
			}
			return nil
		})
	return s
}

// Save snapshots the spec's live state and enqueues the write. It returns as
// soon as the snapshot is taken (and a queue slot is free); the caller may
// immediately mutate the model and optimizer. Save is safe to race with
// Wait: a Save that loses the race reports an error instead of panicking on
// a closed queue.
func (s *AsyncSaver) Save(spec SaveSpec) error {
	// Snapshot: deep-copy model and optimizer so training can continue.
	modelCopy := spec.Model.Clone()
	spec.Optim = spec.Optim.Clone(modelCopy)
	spec.Model = modelCopy
	if err := s.pipe.Push(spec); err != nil {
		return fmt.Errorf("ckpt: async save after Wait")
	}
	return nil
}

// Wait drains all pending writes and returns the combined error of every
// failed save. The saver cannot be reused afterwards; Wait is idempotent.
func (s *AsyncSaver) Wait() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return s.combinedErr()
	}
	s.done = true
	s.mu.Unlock()

	if err := s.pipe.Close(); err != nil {
		s.mu.Lock()
		s.errs = append(s.errs, err)
		s.mu.Unlock()
	}
	return s.combinedErr()
}

func (s *AsyncSaver) combinedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) == 0 {
		return nil
	}
	if len(s.errs) == 1 {
		return s.errs[0]
	}
	return fmt.Errorf("ckpt: %d async saves failed, first: %w", len(s.errs), s.errs[0])
}
