package ckpt

import (
	"fmt"
	"sync"
	"time"

	"llmtailor/internal/parallel"
	"llmtailor/internal/storage"
)

// AsyncSaver overlaps checkpoint writes with continued training, in the
// spirit of CheckFreq/DataStates-LLM (§6.1 of the paper — optimizations the
// paper notes are composable with partial checkpointing). It runs in one of
// two modes:
//
// Snapshot mode (NewAsyncSaver): Save deep-copies the model and optimizer
// synchronously — the stall is O(model size) — and a background goroutine
// serialises and writes the copy through the same ordered pipeline
// primitive the merge engine uses.
//
// Lazy capture mode (NewLazyAsyncSaver): Save only enumerates the
// checkpoint and enqueues per-layer capture units; workers drain each layer
// out of the live state into pooled spools (or straight to a manifest
// reference when the content already exists as a blob), and the caller
// blocks in WaitCaptured — typically after computing the next gradients —
// only until the changed layers are landed. The stall is O(changed layers).
//
// At most `depth` writes may be in flight; further Saves block, bounding
// memory at depth+1 state copies (snapshot mode) or the capture engine's
// spool budget (lazy mode).
type AsyncSaver struct {
	pipe *parallel.Pipeline[asyncJob, error]
	eng  *captureEngine

	mu   sync.Mutex
	errs []error
	done bool
}

// asyncJob is one enqueued save: a snapshot-mode spec (ticket nil), a
// lazy-mode capture ticket, or a flush sentinel.
type asyncJob struct {
	spec   SaveSpec
	ticket *captureTicket
	flush  chan struct{}
}

// NewAsyncSaver starts a snapshot-mode saver over the backend with the
// given in-flight depth (minimum 1).
func NewAsyncSaver(b storage.Backend, depth int) *AsyncSaver {
	return newSaver(b, depth, nil)
}

// NewLazyAsyncSaver starts a lazy-capture saver: saves stream per-layer
// out of the live state instead of snapshotting it. Callers must not
// mutate the model or optimizer between Save and the next WaitCaptured.
func NewLazyAsyncSaver(b storage.Backend, depth int, opts CaptureOptions) *AsyncSaver {
	return newSaver(b, depth, newCaptureEngine(b, opts))
}

func newSaver(b storage.Backend, depth int, eng *captureEngine) *AsyncSaver {
	if depth < 1 {
		depth = 1
	}
	s := &AsyncSaver{eng: eng}
	// The pipeline's own error channel would abort on the first failure;
	// checkpoint saves must instead attempt every write and report the
	// combined outcome, so failures travel as values into the sink.
	s.pipe = parallel.NewPipeline(1, depth-1,
		func(j asyncJob) (error, error) {
			if j.flush != nil {
				close(j.flush)
				return nil, nil
			}
			var err error
			if j.ticket != nil {
				err = s.eng.write(j.ticket)
			} else {
				err = Save(b, j.spec)
			}
			if err != nil {
				return fmt.Errorf("ckpt: async save %s: %w", j.spec.Dir, err), nil
			}
			return nil, nil
		},
		func(saveErr error) error {
			if saveErr != nil {
				s.mu.Lock()
				s.errs = append(s.errs, saveErr)
				s.mu.Unlock()
			}
			return nil
		})
	return s
}

// Save enqueues one checkpoint write. In snapshot mode it deep-copies the
// spec's live state first; the caller may mutate model and optimizer as
// soon as Save returns. In lazy mode it only schedules per-layer capture:
// the caller must call WaitCaptured before the next mutation. Save is safe
// to race with Wait: a Save that loses the race reports an error instead
// of panicking on a closed queue.
func (s *AsyncSaver) Save(spec SaveSpec) error {
	if s.eng != nil {
		return s.saveLazy(spec)
	}
	// Snapshot: deep-copy model and optimizer so training can continue.
	modelCopy := spec.Model.Clone()
	spec.Optim = spec.Optim.Clone(modelCopy)
	spec.Model = modelCopy
	if err := s.pipe.Push(asyncJob{spec: spec}); err != nil {
		return fmt.Errorf("ckpt: async save after Wait")
	}
	return nil
}

func (s *AsyncSaver) saveLazy(spec SaveSpec) error {
	start := time.Now()
	t, err := s.eng.schedule(spec)
	if err != nil {
		return err
	}
	if err := s.pipe.Push(asyncJob{spec: spec, ticket: t}); err != nil {
		s.eng.abandon(t)
		return fmt.Errorf("ckpt: async save after Wait")
	}
	s.eng.addStall(int64(time.Since(start)))
	return nil
}

// Flush blocks until every save enqueued so far has been fully written
// (committed or failed — failures surface through Wait). Unlike Wait the
// saver stays usable. Callers that retire or sweep old checkpoints while
// a save is in flight can Flush first so the new save's ref record is on
// disk before the sweep scans.
func (s *AsyncSaver) Flush() error {
	ch := make(chan struct{})
	if err := s.pipe.Push(asyncJob{flush: ch}); err != nil {
		return fmt.Errorf("ckpt: flush after Wait")
	}
	<-ch
	return nil
}

// WaitCaptured blocks until every in-flight save has finished reading the
// live model and optimizer state — the point after which the caller may
// mutate them again. Snapshot mode copies eagerly, so it returns
// immediately. The first capture failure is returned early (the combined
// Wait error reports it too).
func (s *AsyncSaver) WaitCaptured() error {
	if s.eng == nil {
		return nil
	}
	start := time.Now()
	err := s.eng.waitCaptured()
	s.eng.addStall(int64(time.Since(start)))
	return err
}

// CaptureStats reports the lazy engine's accounting (zero value in
// snapshot mode).
func (s *AsyncSaver) CaptureStats() CaptureStats {
	if s.eng == nil {
		return CaptureStats{}
	}
	return s.eng.snapshot()
}

// Wait drains all pending writes and returns the combined error of every
// failed save. The saver cannot be reused afterwards; Wait is idempotent.
func (s *AsyncSaver) Wait() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return s.combinedErr()
	}
	s.done = true
	s.mu.Unlock()

	// Drain capture before the write stage: every scheduled unit lands (or
	// fails its ticket), then the ordered writes consume the tickets.
	if s.eng != nil {
		if err := s.eng.close(); err != nil {
			s.mu.Lock()
			s.errs = append(s.errs, err)
			s.mu.Unlock()
		}
	}
	if err := s.pipe.Close(); err != nil {
		s.mu.Lock()
		s.errs = append(s.errs, err)
		s.mu.Unlock()
	}
	return s.combinedErr()
}

func (s *AsyncSaver) combinedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) == 0 {
		return nil
	}
	if len(s.errs) == 1 {
		return s.errs[0]
	}
	return fmt.Errorf("ckpt: %d async saves failed, first: %w", len(s.errs), s.errs[0])
}
