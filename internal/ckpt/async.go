package ckpt

import (
	"fmt"
	"sync"

	"llmtailor/internal/storage"
)

// AsyncSaver overlaps checkpoint writes with continued training, in the
// spirit of CheckFreq/DataStates-LLM (§6.1 of the paper — optimizations the
// paper notes are composable with partial checkpointing). Save snapshots the
// model and optimizer state synchronously (the only part that must stall the
// training step) and performs serialisation and I/O on a background
// goroutine. At most `depth` writes may be in flight; further Saves block,
// bounding memory at depth+1 state copies.
type AsyncSaver struct {
	jobs chan SaveSpec
	wg   sync.WaitGroup

	mu   sync.Mutex
	errs []error
	done bool
}

// NewAsyncSaver starts a saver over the backend with the given in-flight
// depth (minimum 1).
func NewAsyncSaver(b storage.Backend, depth int) *AsyncSaver {
	if depth < 1 {
		depth = 1
	}
	s := &AsyncSaver{jobs: make(chan SaveSpec, depth-1)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for spec := range s.jobs {
			if err := Save(b, spec); err != nil {
				s.mu.Lock()
				s.errs = append(s.errs, fmt.Errorf("ckpt: async save %s: %w", spec.Dir, err))
				s.mu.Unlock()
			}
		}
	}()
	return s
}

// Save snapshots the spec's live state and enqueues the write. It returns as
// soon as the snapshot is taken (and a queue slot is free); the caller may
// immediately mutate the model and optimizer.
func (s *AsyncSaver) Save(spec SaveSpec) error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return fmt.Errorf("ckpt: async save after Wait")
	}
	s.mu.Unlock()

	// Snapshot: deep-copy model and optimizer so training can continue.
	modelCopy := spec.Model.Clone()
	spec.Optim = spec.Optim.Clone(modelCopy)
	spec.Model = modelCopy
	s.jobs <- spec
	return nil
}

// Wait drains all pending writes and returns the combined error of every
// failed save. The saver cannot be reused afterwards.
func (s *AsyncSaver) Wait() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return s.combinedErr()
	}
	s.done = true
	s.mu.Unlock()

	close(s.jobs)
	s.wg.Wait()
	return s.combinedErr()
}

func (s *AsyncSaver) combinedErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) == 0 {
		return nil
	}
	if len(s.errs) == 1 {
		return s.errs[0]
	}
	return fmt.Errorf("ckpt: %d async saves failed, first: %w", len(s.errs), s.errs[0])
}
