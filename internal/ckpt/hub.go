// Hub-aware reference maintenance: union pins across attached runs.
//
// When a run root is attached to a checkpoint hub, its blobs live in a
// store shared with every other attached run, so any sweep triggered from
// one run's perspective (retention, generational GC, full GC, trash
// disposal) must treat the other runs' references as pins. The rule is the
// union-pin rule: a digest is reclaimable only when it is dead across ALL
// attached runs' journals and manifests. Every sweeping path in this
// package folds peerPins into its pin set before touching the store, and
// the two-phase sweep's recheck re-reads every attached run's journal, so
// a save racing in run B journals its record before its reuse check and is
// seen by run A's recheck — the same record-precedes-blobs proof as the
// single-run case (see storage.BlobStore.SweepRecheck), extended across
// runs.
//
// HubGC is the hub-level entry point: one sweep of the shared store
// against the union of every attached run's pins.
package ckpt

import (
	"fmt"

	"llmtailor/internal/storage"
)

// hubPeers returns the registry entries of every OTHER run attached to the
// same hub as runRoot (nil when the run is unattached). The registry is
// read fresh on every call — a run attached since the last read must pin.
func hubPeers(b storage.Backend, runRoot string) ([]storage.HubRun, error) {
	ref, err := storage.ReadHubRef(b, objectsPath(runRoot))
	if err != nil || ref == nil {
		return nil, err
	}
	runs, err := storage.ListHubRuns(b, ref.Hub)
	if err != nil {
		return nil, err
	}
	peers := runs[:0]
	for _, r := range runs {
		if r.ID != ref.Run {
			peers = append(peers, r)
		}
	}
	return peers, nil
}

// RunPins derives one run's full pin set: every journal record it holds
// plus manifest fallbacks for directories no record covers (livePins over
// the whole journal). This is the per-run contribution to the union-pin
// rule.
func RunPins(b storage.Backend, runRoot string) (map[string]int, error) {
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	entries, _, _, err := ix.Entries()
	if err != nil {
		return nil, err
	}
	return livePins(b, runRoot, entries)
}

// peerPins returns the union pin set of every other run attached to the
// same hub — the references a sweep triggered from runRoot must honour on
// top of its own. An unattached run contributes an empty map.
func peerPins(b storage.Backend, runRoot string) (map[string]int, error) {
	peers, err := hubPeers(b, runRoot)
	if err != nil {
		return nil, err
	}
	pins := map[string]int{}
	for _, p := range peers {
		pp, err := RunPins(b, p.Root)
		if err != nil {
			return nil, fmt.Errorf("ckpt: hub peer %s: %w", p.ID, err)
		}
		mergePins(pins, pp)
	}
	return pins, nil
}

// mergePins adds src's counts into dst.
func mergePins(dst, src map[string]int) {
	for d, n := range src {
		dst[d] += n
	}
}

// journalPins reads every record of one run's journal (no manifest
// fallback — this is the fresh recheck read, where only records count:
// appends are atomic, and a concurrent save journals before it relies on
// a blob), skipping excluded record file names.
func journalPins(b storage.Backend, runRoot string, exclude map[string]bool) (map[string]int, error) {
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	entries, _, _, err := ix.Entries()
	if err != nil {
		return nil, err
	}
	pins := map[string]int{}
	for _, e := range entries {
		if exclude[e.Name] {
			continue
		}
		rec, err := ix.Read(e)
		if err != nil {
			continue // appends are atomic; a corrupt record is not a fresh save's
		}
		for _, d := range rec.Digests {
			pins[d]++
		}
	}
	return pins, nil
}

// HubGCReport records what a hub-level garbage collection did.
type HubGCReport struct {
	// Runs lists the attached run roots whose pins the sweep honoured.
	Runs []string
	// Referenced is the number of distinct digests pinned by the union.
	Referenced int
	// Kept and Examined count store blobs retained and looked at.
	Kept, Examined int
	// RemovedBlobs lists swept digests; BytesFreed totals their sizes.
	RemovedBlobs []string
	BytesFreed   int64
	// RemovedStaging lists cleaned blob-staging residue paths.
	RemovedStaging []string
	// DryRun is set when nothing was actually removed.
	DryRun bool
}

// HubGC is the hub-level full mark-and-sweep: the shared store is swept
// against the union of every attached run's pins (journal records plus
// manifest fallbacks). A digest referenced by ANY attached run survives;
// trash from a crashed earlier sweep is restored-or-purged first under the
// same union, and the two-phase recheck re-reads every run's journal so a
// save concurrent with the sweep keeps its blobs.
func HubGC(b storage.Backend, hubRoot string, dryRun bool) (*HubGCReport, error) {
	if _, err := storage.ReadHubConfig(b, hubRoot); err != nil {
		return nil, fmt.Errorf("ckpt: hub gc: %w", err)
	}
	runs, err := storage.ListHubRuns(b, hubRoot)
	if err != nil {
		return nil, err
	}
	rep := &HubGCReport{DryRun: dryRun}
	refs := map[string]int{}
	for _, r := range runs {
		rep.Runs = append(rep.Runs, r.Root)
		pins, err := RunPins(b, r.Root)
		if err != nil {
			return nil, fmt.Errorf("ckpt: hub gc: run %s: %w", r.ID, err)
		}
		mergePins(refs, pins)
	}
	rep.Referenced = len(refs)
	store, err := storage.OpenCAS(b, storage.HubObjectsRoot(hubRoot))
	if err != nil {
		return nil, err
	}
	if !b.Exists(store.Root()) {
		return rep, nil
	}
	if dryRun {
		blobs, staging, _, err := store.List()
		if err != nil {
			return rep, err
		}
		for _, blob := range blobs {
			rep.Examined++
			if refs[blob.Digest] > 0 {
				rep.Kept++
			} else {
				rep.RemovedBlobs = append(rep.RemovedBlobs, blob.Digest)
				if blob.Size > 0 {
					rep.BytesFreed += blob.Size
				}
			}
		}
		rep.RemovedStaging = staging
		trash, err := store.ListTrash()
		if err != nil {
			return rep, err
		}
		for _, t := range trash {
			if refs[t.Digest] == 0 {
				rep.RemovedBlobs = append(rep.RemovedBlobs, t.Digest)
				if t.Size > 0 {
					rep.BytesFreed += t.Size
				}
			}
		}
		return rep, nil
	}
	recheck := func([]string) (map[string]int, error) {
		pins := map[string]int{}
		for _, r := range runs {
			jp, err := journalPins(b, r.Root, nil)
			if err != nil {
				return nil, err
			}
			mergePins(pins, jp)
		}
		return pins, nil
	}
	if trash, _ := store.ListTrash(); len(trash) > 0 {
		if _, purged, err := handleTrash(store, refs); err != nil {
			return rep, err
		} else {
			rep.RemovedBlobs = append(rep.RemovedBlobs, purged...)
		}
	}
	sw, err := store.SweepRecheck(refs, recheck)
	if sw != nil {
		rep.Kept = sw.Kept
		rep.Examined = sw.Examined
		rep.RemovedBlobs = append(rep.RemovedBlobs, sw.RemovedBlobs...)
		rep.RemovedStaging = sw.RemovedStaging
		rep.BytesFreed = sw.BytesFreed
	}
	return rep, err
}
