package ckpt

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func TestAsyncSaveMatchesSyncByteForByte(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 50)
	spec := func(dir string) SaveSpec {
		return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2,
			Strategy: "full", State: TrainerState{Step: 3, Seed: 50}}
	}

	bSync := storage.NewMem()
	if err := Save(bSync, spec("c")); err != nil {
		t.Fatal(err)
	}
	bAsync := storage.NewMem()
	s := NewAsyncSaver(bAsync, 1)
	if err := s.Save(spec("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}

	for _, f := range []string{"c/model.ltsf", "c/config.json", "c/manifest.json",
		"c/" + ShardFileName(0), "c/" + ShardFileName(1)} {
		a, err := bSync.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bAsync.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between sync and async save", f)
		}
	}
}

// The decisive async property: mutations after Save must not leak into the
// written checkpoint (snapshot isolation).
func TestAsyncSaveSnapshotIsolation(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 51)
	want := m.Tensors()[0].At(0)

	b := storage.NewMem()
	s := NewAsyncSaver(b, 1)
	if err := s.Save(SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 1,
		State: TrainerState{Step: 3, Seed: 51}}); err != nil {
		t.Fatal(err)
	}
	// Trash the live state immediately.
	for _, ts := range m.Tensors() {
		ts.Fill(99)
	}
	for _, st := range o.States {
		for i := range st.Master {
			st.Master[i] = -99
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}

	m2, o2, _, err := Restore(b, "c", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Tensors()[0].At(0); got != want {
		t.Fatalf("snapshot leaked mutation: %v, want %v", got, want)
	}
	master, _, _, _ := o2.TensorState(m2.Tensors()[0].Name)
	if master[0] == -99 {
		t.Fatal("optimizer snapshot leaked mutation")
	}
}

func TestAsyncSaveMultipleQueued(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 52)
	b := storage.NewMem()
	s := NewAsyncSaver(b, 2)
	for i := 1; i <= 5; i++ {
		if err := s.Save(SaveSpec{Dir: fmt.Sprintf("run/checkpoint-%d", i),
			Model: m, Optim: o, WorldSize: 1,
			State: TrainerState{Step: i, Seed: 52}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	dirs, err := List(b, "run")
	if err != nil || len(dirs) != 5 {
		t.Fatalf("dirs = %v, %v", dirs, err)
	}
}

func TestAsyncSaveAfterWaitRejected(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 53)
	s := NewAsyncSaver(storage.NewMem(), 1)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 1}); err == nil {
		t.Fatal("save after Wait accepted")
	}
	// Wait is idempotent.
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Regression for the seed's Save/Wait race: Save checked done under the
// mutex but sent on the jobs channel after releasing it, so a Save racing
// Wait could send on a closed channel and panic. Run with -race.
func TestAsyncSaveWaitRaceDoesNotPanic(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 57)
	for iter := 0; iter < 30; iter++ {
		b := storage.NewMem()
		s := NewAsyncSaver(b, 2)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 1; i <= 4; i++ {
				if err := s.Save(SaveSpec{Dir: fmt.Sprintf("run/checkpoint-%d", i),
					Model: m, Optim: o, WorldSize: 1,
					State: TrainerState{Step: i, Seed: 57}}); err != nil {
					// Losing the race to Wait is the accepted outcome —
					// an error, never a panic.
					return
				}
			}
		}()
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		<-done
		// Whatever was accepted before Wait won must be fully written.
		if dirs, err := List(b, "run"); err == nil {
			for _, d := range dirs {
				if _, _, _, err := Restore(b, d, tensor.BF16); err != nil {
					t.Fatalf("accepted save %s not restorable: %v", d, err)
				}
			}
		}
	}
}

// failingBackend rejects every write, to exercise async error collection.
type failingBackend struct{ storage.Backend }

func (f failingBackend) WriteFile(name string, data []byte) error {
	return fmt.Errorf("disk full")
}

func TestAsyncSaveCollectsErrors(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 54)
	s := NewAsyncSaver(failingBackend{storage.NewMem()}, 1)
	for i := 1; i <= 3; i++ {
		if err := s.Save(SaveSpec{Dir: fmt.Sprintf("c%d", i), Model: m, Optim: o,
			WorldSize: 1, State: TrainerState{Step: i}}); err != nil {
			t.Fatal(err)
		}
	}
	err := s.Wait()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "3 async saves failed") {
		t.Fatalf("err should count failures: %v", err)
	}
}

// slowBackend delays writes so the stall comparison below is measurable.
type slowBackend struct {
	storage.Backend
	delay time.Duration
}

func (s slowBackend) WriteFile(name string, data []byte) error {
	time.Sleep(s.delay)
	return s.Backend.WriteFile(name, data)
}

// The point of async checkpointing: the Save call returns far faster than
// the write itself.
func TestAsyncSaveReducesStall(t *testing.T) {
	m, o := buildOptim(t, modelcfg.Tiny(), 55)
	slow := slowBackend{storage.NewMem(), 3 * time.Millisecond}
	spec := SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 4,
		State: TrainerState{Step: 1, Seed: 55}}

	start := time.Now()
	if err := Save(slow, spec); err != nil {
		t.Fatal(err)
	}
	syncStall := time.Since(start)

	s := NewAsyncSaver(slow, 1)
	start = time.Now()
	if err := s.Save(spec); err != nil {
		t.Fatal(err)
	}
	asyncStall := time.Since(start)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	// 9 files × 3ms ≈ 27ms sync; the async call should stall well under
	// half of that (it only clones the state).
	if asyncStall*2 >= syncStall {
		t.Fatalf("async stall %v not clearly below sync %v", asyncStall, syncStall)
	}
}

func BenchmarkAsyncVsSyncSaveStall(b *testing.B) {
	m, o := buildOptim(b, modelcfg.Tiny(), 56)
	slow := slowBackend{storage.NewMem(), time.Millisecond}
	spec := SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 2,
		State: TrainerState{Step: 1, Seed: 56}}
	b.Run("sync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := Save(slow, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async-stall", func(b *testing.B) {
		s := NewAsyncSaver(slow, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Save(spec); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := s.Wait(); err != nil {
			b.Fatal(err)
		}
	})
}
