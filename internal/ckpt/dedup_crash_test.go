package ckpt

// Crash-point exploration for the content-addressed paths: every mutating
// storage operation of a dedup save (blob puts included) and of a GC run
// fails in turn, and the recovery invariants must hold — previous-or-new-
// never-hybrid for saves, and no referenced blob ever lost for GC.

import (
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func TestCrashPointExplorationDedupSave(t *testing.T) {
	exploreDedupSaveCrashes(t, "")
}

// TestCrashPointExplorationDedupSaveCodec reruns the exploration with
// xor-parent compression on: the second save deltas changed slots against
// the first, so the fault points now include the crash window between the
// journal append that pins the parent chain and the child blob's publish.
func TestCrashPointExplorationDedupSaveCodec(t *testing.T) {
	exploreDedupSaveCrashes(t, "xor")
}

func exploreDedupSaveCrashes(t *testing.T, codec string) {
	mPrev, oPrev := buildOptim(t, modelcfg.Tiny(), 140)
	mNext, oNext := buildOptim(t, modelcfg.Tiny(), 141)
	specFor := func(dir string, step int, m *model.Model, o *optim.AdamW) SaveSpec {
		return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2, Strategy: "full",
			Dedup: true, Codec: codec, State: TrainerState{Step: step, Seed: 140}}
	}

	// Ground truth: a fault-free pair of dedup saves.
	clean := storage.NewMem()
	if err := Save(clean, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	prevDigest := treeDigest(t, clean, "run/checkpoint-100")
	if err := Save(clean, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	nextDigest := treeDigest(t, clean, "run/checkpoint-200")

	// Count the fault points of the second save (blob puts included).
	f := storage.NewFault(storage.NewMem())
	if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	f.FailAt(0)
	if err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())
	if n < 10 {
		t.Fatalf("suspiciously few fault points in a dedup save: %d", n)
	}
	t.Logf("exploring %d crash points × {clean, torn}", n)

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := storage.NewMem()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			if err := Save(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
				t.Fatal(err)
			}
			f.FailAt(k)
			if err := Save(f, specFor("run/checkpoint-200", 200, mNext, oNext)); !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Invariant 1: the previous dedup checkpoint is intact — dir
			// bytes unchanged and every blob reference resolvable.
			if err := VerifyCommit(base, "run/checkpoint-100"); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint damaged: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-100"); d != prevDigest {
				t.Fatalf("k=%d torn=%v: previous checkpoint bytes changed", k, torn)
			}

			// Invariant 2: the new checkpoint is all or nothing.
			if base.Exists("run/checkpoint-200") {
				if err := VerifyCommit(base, "run/checkpoint-200"); err != nil {
					t.Fatalf("k=%d torn=%v: published checkpoint not committed: %v", k, torn, err)
				}
				if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
					t.Fatalf("k=%d torn=%v: published checkpoint differs from fault-free save", k, torn)
				}
			}

			// Invariant 3: resolution yields exactly one of the two source
			// states, blob reads included — never a hybrid.
			latest, err := Latest(base, "run")
			if err != nil {
				t.Fatalf("k=%d torn=%v: no resolvable checkpoint after crash: %v", k, torn, err)
			}
			rm, ro, c, err := Restore(base, latest, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d torn=%v: restore %s: %v", k, torn, latest, err)
			}
			switch c.State.Step {
			case 100:
				if !model.Equal(rm, mPrev) || !sameOptim(ro, oPrev) {
					t.Fatalf("k=%d torn=%v: step-100 restore is a hybrid", k, torn)
				}
			case 200:
				if !model.Equal(rm, mNext) || !sameOptim(ro, oNext) {
					t.Fatalf("k=%d torn=%v: step-200 restore is a hybrid", k, torn)
				}
			default:
				t.Fatalf("k=%d torn=%v: restored unknown step %d", k, torn, c.State.Step)
			}

			// Invariant 4: Repair + GC leave a healthy root (blob-staging
			// residue and unreferenced blobs swept, every committed
			// checkpoint still restorable) and the save retries cleanly.
			if _, err := Repair(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			if _, err := GC(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: gc: %v", k, torn, err)
			}
			statuses, err := Scan(base, "run")
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range statuses {
				if st.State != StateCommitted {
					t.Fatalf("k=%d torn=%v: %s still %v after repair+gc", k, torn, st.Path, st.State)
				}
			}
			if bs, _ := ScanBlobs(base, "run"); true {
				for _, s := range bs {
					if s.State != BlobReferenced {
						t.Fatalf("k=%d torn=%v: blob %s still %v after gc", k, torn, s.Path, s.State)
					}
				}
			}
			// The journaled index agrees with the manifests on every
			// explored state once repair + full gc ran: no stale, missing,
			// divergent or corrupt records remain.
			if problems := refProblems(t, base, "run"); len(problems) != 0 {
				t.Fatalf("k=%d torn=%v: ref-index problems after repair+gc: %+v", k, torn, problems)
			}
			if _, _, _, err := Restore(base, "run/checkpoint-100", tensor.BF16); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint unrestorable after gc: %v", k, torn, err)
			}
			if err := Save(base, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
				t.Fatalf("k=%d torn=%v: save after repair: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
				t.Fatalf("k=%d torn=%v: post-repair save differs from fault-free save", k, torn)
			}
		}
	}
}

// buildGCScenario deterministically assembles a run root with two live
// dedup checkpoints, a batch of unreferenced blobs (from a replaced save)
// and blob-staging residue.
func buildGCScenario(t *testing.T) (*storage.Mem, *model.Model, *optim.AdamW) {
	t.Helper()
	b := storage.NewMem()
	m1, o1 := buildOptim(t, modelcfg.Tiny(), 142)
	m2, o2 := buildOptim(t, modelcfg.Tiny(), 143)
	save := func(dir string, step int, mm *model.Model, oo *optim.AdamW) {
		t.Helper()
		if err := Save(b, SaveSpec{Dir: dir, Model: mm, Optim: oo, WorldSize: 2,
			Strategy: "full", Dedup: true, State: TrainerState{Step: step, Seed: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	save("run/checkpoint-100", 100, m1, o1)
	save("run/checkpoint-200", 200, m2, o2)
	// Replace step 200 with state 1: state 2's blobs become garbage.
	save("run/checkpoint-200", 200, m1, o1)
	b.WriteFile("run/objects/.stage/put-1", []byte("residue-a"))
	b.WriteFile("run/objects/.stage/put-2", []byte("residue-b"))
	return b, m1, o1
}

func TestCrashPointExplorationGC(t *testing.T) {
	// Count the fault points of a full GC run.
	base, _, _ := buildGCScenario(t)
	f := storage.NewFault(base)
	rep, err := GC(f, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedBlobs) == 0 || len(rep.RemovedStaging) != 2 {
		t.Fatalf("scenario has no garbage: %+v", rep)
	}
	n := int(f.Ops())
	if n < 3 {
		t.Fatalf("suspiciously few fault points in gc: %d", n)
	}
	t.Logf("exploring %d gc crash points", n)

	for k := 1; k <= n; k++ {
		base, m1, o1 := buildGCScenario(t)
		f := storage.NewFault(base)
		f.FailAt(k)
		if _, err := GC(f, "run"); !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}
		// Invariant: an interrupted GC never loses a referenced blob —
		// every committed checkpoint still restores bit-exact.
		for _, dir := range []string{"run/checkpoint-100", "run/checkpoint-200"} {
			rm, ro, _, err := Restore(base, dir, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d: %s unrestorable after interrupted gc: %v", k, dir, err)
			}
			if !model.Equal(rm, m1) || !sameOptim(ro, o1) {
				t.Fatalf("k=%d: %s differs after interrupted gc", k, dir)
			}
		}
		// A rerun on the durable state converges: all garbage gone,
		// checkpoints intact.
		if _, err := GC(base, "run"); err != nil {
			t.Fatalf("k=%d: gc rerun: %v", k, err)
		}
		bs, err := ScanBlobs(base, "run")
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range bs {
			if s.State != BlobReferenced {
				t.Fatalf("k=%d: %s still %v after gc rerun", k, s.Path, s.State)
			}
		}
		if _, _, _, err := Restore(base, "run/checkpoint-100", tensor.BF16); err != nil {
			t.Fatalf("k=%d: restore after gc rerun: %v", k, err)
		}
	}
}
