package ckpt

import (
	"strings"
	"testing"

	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// preProtocol strips a committed checkpoint down to what a save from
// before the commit protocol looked like: same files, no marker.
func preProtocol(t *testing.T, b storage.Backend, dir string, seed uint64, ws int) {
	t.Helper()
	saveFull(t, b, dir, seed, ws)
	if err := b.Remove(dir + "/" + CommitMarkerName); err != nil {
		t.Fatal(err)
	}
}

// TestAdoptAllTable covers the three migration outcomes side by side:
// adopt (intact pre-protocol dir), quarantine (unreadable pre-protocol
// dir) and still-torn (post-protocol dir with a failing marker).
func TestAdoptAllTable(t *testing.T) {
	b := storage.NewMem()
	// 1. Intact pre-protocol checkpoint → adopted.
	preProtocol(t, b, "run/checkpoint-10", 130, 2)
	// 2. Pre-protocol checkpoint with a corrupt tensor payload → quarantined.
	preProtocol(t, b, "run/checkpoint-20", 131, 2)
	corrupt(t, b, "run/checkpoint-20/model.ltsf", func(d []byte) []byte {
		d[len(d)-3] ^= 0xff
		return d
	})
	// 3. Post-protocol torn dir (marker present, file truncated) → untouched.
	saveFull(t, b, "run/checkpoint-30", 132, 1)
	corrupt(t, b, "run/checkpoint-30/model.ltsf", func(d []byte) []byte {
		return d[:len(d)-5]
	})
	// 4. Orphaned staging dir: adoption ignores it entirely.
	b.WriteFile("run/checkpoint-40.tmp/model.ltsf", []byte("partial"))
	// Aim the pointer at the torn pre-protocol dir so repair has work too.
	WriteLatestPointer(b, "run/checkpoint-20")

	rep, err := AdoptAll(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adopted) != 1 || rep.Adopted[0] != "run/checkpoint-10" {
		t.Fatalf("adopted = %v", rep.Adopted)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "run/checkpoint-20"+quarantineSuffix {
		t.Fatalf("quarantined = %v", rep.Quarantined)
	}
	if len(rep.Reasons) != 1 || !strings.Contains(rep.Reasons[0], "unreadable") {
		t.Fatalf("reasons = %v", rep.Reasons)
	}
	if len(rep.StillTorn) != 1 || rep.StillTorn[0] != "run/checkpoint-30" {
		t.Fatalf("still torn = %v", rep.StillTorn)
	}

	// The adopted checkpoint is now first-class committed: marker verifies,
	// restore works, Latest/List surface it.
	if err := VerifyCommit(b, "run/checkpoint-10"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Restore(b, "run/checkpoint-10", tensor.BF16); err != nil {
		t.Fatal(err)
	}
	statuses, err := Scan(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]DirState{}
	for _, st := range statuses {
		byPath[st.Path] = st.State
	}
	if byPath["run/checkpoint-10"] != StateCommitted {
		t.Fatalf("adopted dir scans as %v", byPath["run/checkpoint-10"])
	}
	if byPath["run/checkpoint-20"+quarantineSuffix] != StateQuarantined {
		t.Fatalf("quarantined dir scans as %v", byPath["run/checkpoint-20"+quarantineSuffix])
	}
	if byPath["run/checkpoint-30"] != StateTorn {
		t.Fatalf("torn dir scans as %v", byPath["run/checkpoint-30"])
	}

	// Repair removes the torn and orphaned dirs but leaves the quarantined
	// one, and re-aims the pointer at the adopted checkpoint.
	rrep, err := Repair(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Exists("run/checkpoint-20" + quarantineSuffix) {
		t.Fatal("repair deleted the quarantined dir")
	}
	if b.Exists("run/checkpoint-30") || b.Exists("run/checkpoint-40.tmp") {
		t.Fatal("repair left torn/orphaned dirs")
	}
	if rrep.Latest != "run/checkpoint-10" {
		t.Fatalf("latest after repair = %q", rrep.Latest)
	}
	latest, err := Latest(b, "run")
	if err != nil || latest != "run/checkpoint-10" {
		t.Fatalf("latest = %q, %v", latest, err)
	}

	// AdoptAll is idempotent: nothing left to do.
	rep2, err := AdoptAll(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Adopted)+len(rep2.Quarantined)+len(rep2.StillTorn) != 0 {
		t.Fatalf("second adopt pass = %+v", rep2)
	}
}

// TestAdoptSingleDir covers Adopt's direct contract: idempotency on a
// committed dir, rejection of marker-bearing torn dirs, and the sealed
// marker covering every file with correct sums.
func TestAdoptSingleDir(t *testing.T) {
	b := storage.NewMem()
	preProtocol(t, b, "run/checkpoint-50", 133, 2)
	if err := Adopt(b, "run/checkpoint-50"); err != nil {
		t.Fatal(err)
	}
	// The sealed marker must pass the full CRC verification and cover the
	// shard files in the zero/ subdirectory.
	if err := VerifyCommit(b, "run/checkpoint-50"); err != nil {
		t.Fatal(err)
	}
	m, err := ReadCommitMarker(b, "run/checkpoint-50")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Files[ShardFileName(1)]; !ok {
		t.Fatalf("marker misses nested shard file: %v", m.Files)
	}
	if m.Step != 3 {
		t.Fatalf("marker step = %d", m.Step)
	}
	// Adopting an already-committed dir is a no-op.
	if err := Adopt(b, "run/checkpoint-50"); err != nil {
		t.Fatal(err)
	}
	// A dir whose marker fails verification is refused (Repair owns it).
	corrupt(t, b, "run/checkpoint-50/config.json", func(d []byte) []byte {
		d[0] ^= 1
		return d
	})
	if err := Adopt(b, "run/checkpoint-50"); err == nil {
		t.Fatal("adopt accepted a torn post-protocol dir")
	}
}

// TestAdoptDedupDir: adoption's readability pass follows blob references,
// so a marker-less dedup checkpoint adopts (or quarantines when a blob is
// missing).
func TestAdoptDedupDir(t *testing.T) {
	b := storage.NewMem()
	saveDedup(t, b, "run/checkpoint-60", 134, 1)
	b.Remove("run/checkpoint-60/" + CommitMarkerName)
	if err := Adopt(b, "run/checkpoint-60"); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCommit(b, "run/checkpoint-60"); err != nil {
		t.Fatal(err)
	}

	// Same dir with a missing blob: quarantine, not adoption.
	saveDedup(t, b, "run2/checkpoint-60", 135, 1)
	b.Remove("run2/checkpoint-60/" + CommitMarkerName)
	wm, err := ReadWeightManifest(b, "run2/checkpoint-60/"+WeightManifestName)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewBlobStore(b, "run2/objects")
	if err := store.Remove(wm.Tensors[0].Digest); err != nil {
		t.Fatal(err)
	}
	rep, err := AdoptAll(b, "run2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adopted) != 0 || len(rep.Quarantined) != 1 {
		t.Fatalf("dedup adopt with missing blob = %+v", rep)
	}
}

// TestQuarantineNameCollision: re-quarantining a recreated-and-torn-again
// directory takes a numeric suffix instead of aborting the migration.
func TestQuarantineNameCollision(t *testing.T) {
	b := storage.NewMem()
	quarantineOnce := func() {
		t.Helper()
		preProtocol(t, b, "run/checkpoint-10", 137, 1)
		corrupt(t, b, "run/checkpoint-10/model.ltsf", func(d []byte) []byte {
			d[len(d)-3] ^= 0xff
			return d
		})
		if _, err := AdoptAll(b, "run"); err != nil {
			t.Fatal(err)
		}
	}
	quarantineOnce()
	quarantineOnce()
	if !b.Exists("run/checkpoint-10"+quarantineSuffix) || !b.Exists("run/checkpoint-10.2"+quarantineSuffix) {
		t.Fatal("second quarantine did not take a suffixed name")
	}
	statuses, err := Scan(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range statuses {
		if st.State != StateQuarantined {
			t.Fatalf("%s scans as %v", st.Path, st.State)
		}
	}
}

// TestAdoptCrashMidSeal: a crash while sealing leaves either no marker
// (rerun adopts) or a complete one — never a half-written marker that
// breaks later verification.
func TestAdoptCrashMidSeal(t *testing.T) {
	for k := 1; k <= 2; k++ {
		base := storage.NewMem()
		preProtocol(t, base, "run/checkpoint-70", 136, 1)
		f := storage.NewFault(base)
		f.SetTorn(true)
		f.FailAt(k) // 1 = staged marker write, 2 = the rename
		err := Adopt(f, "run/checkpoint-70")
		if !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}
		// Whatever landed, a rerun on the durable state converges.
		base.Remove("run/checkpoint-70/" + adoptMarkerStaging)
		if err := Adopt(base, "run/checkpoint-70"); err != nil {
			t.Fatalf("k=%d: adopt rerun: %v", k, err)
		}
		if err := VerifyCommit(base, "run/checkpoint-70"); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
