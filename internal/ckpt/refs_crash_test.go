package ckpt

// Crash-point exploration over the journaled ref index's mutating paths:
// retention (directory + record retirement + generational sweep) and the
// standalone generational GC. Every storage mutation fails in turn, and
// the invariants must hold on the durable state: no referenced blob is
// ever lost, every surviving committed checkpoint stays bit-identical and
// restorable, and after quiescent repair the full GC agrees with the
// index on every explored state.

import (
	"fmt"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// buildRetainScenario assembles a run of five dedup checkpoints where each
// save dirties one tensor, so every generation has exclusive blobs and a
// shared base.
func buildRetainScenario(t *testing.T, b storage.Backend) {
	t.Helper()
	cfg := modelcfg.Tiny()
	m, err := model.NewInitialized(cfg, tensor.BF16, 300)
	if err != nil {
		t.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		ts := m.Tensors()[0]
		ts.Set(0, ts.At(0)+float32(i))
		if err := Save(b, SaveSpec{
			Dir: fmt.Sprintf("run/checkpoint-%d", i*10), Model: m, Optim: o,
			WorldSize: 2, Strategy: "full", Dedup: true,
			State: TrainerState{Step: i * 10, Seed: 300},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashPointExplorationRetain(t *testing.T) {
	// Probe the fault-point count of a fault-free retention pass.
	probe := storage.NewMem()
	buildRetainScenario(t, probe)
	pf := storage.NewFault(probe)
	rep, err := Retain(pf, "run", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 3 || len(rep.RemovedBlobs) == 0 {
		t.Fatalf("scenario not retiring anything: %+v", rep)
	}
	n := int(pf.Ops())
	if n < 5 {
		t.Fatalf("suspiciously few fault points in retain: %d", n)
	}
	t.Logf("exploring %d retain crash points", n)

	// Keeper trees must never change; record their fault-free digests.
	keeperDigest := map[string]string{}
	clean := storage.NewMem()
	buildRetainScenario(t, clean)
	for _, dir := range []string{"run/checkpoint-40", "run/checkpoint-50"} {
		keeperDigest[dir] = treeDigest(t, clean, dir)
	}

	for k := 1; k <= n; k++ {
		base := storage.NewMem()
		buildRetainScenario(t, base)
		f := storage.NewFault(base)
		f.FailAt(k)
		if _, err := Retain(f, "run", 2, false); !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}

		// Invariant 1: keepers untouched, bit for bit, and every committed
		// directory that survives (keeper or not-yet-removed victim) still
		// restores — i.e. no blob any manifest references was swept.
		for dir, want := range keeperDigest {
			if got := treeDigest(t, base, dir); got != want {
				t.Fatalf("k=%d: keeper %s bytes changed", k, dir)
			}
		}
		dirs, err := List(base, "run")
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) < 2 {
			t.Fatalf("k=%d: keepers missing: %v", k, dirs)
		}
		for _, dir := range dirs {
			if _, _, _, err := Restore(base, dir, tensor.BF16); err != nil {
				t.Fatalf("k=%d: %s unrestorable after interrupted retain: %v", k, dir, err)
			}
		}

		// Invariant 2: quiescent repair + full GC converge — the index
		// agrees with the manifests and no garbage survives.
		if _, err := Repair(base, "run"); err != nil {
			t.Fatalf("k=%d: repair: %v", k, err)
		}
		if _, err := Retain(base, "run", 2, false); err != nil {
			t.Fatalf("k=%d: retain rerun: %v", k, err)
		}
		if _, err := GC(base, "run"); err != nil {
			t.Fatalf("k=%d: full gc: %v", k, err)
		}
		if problems := refProblems(t, base, "run"); len(problems) != 0 {
			t.Fatalf("k=%d: index problems after repair+retain+gc: %+v", k, problems)
		}
		bs, err := ScanBlobs(base, "run")
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range bs {
			if s.State != BlobReferenced {
				t.Fatalf("k=%d: blob %s still %v after convergence", k, s.Path, s.State)
			}
		}
		dirs, _ = List(base, "run")
		if len(dirs) != 2 {
			t.Fatalf("k=%d: %d checkpoints after converged retain", k, len(dirs))
		}
		for dir, want := range keeperDigest {
			if got := treeDigest(t, base, dir); got != want {
				t.Fatalf("k=%d: keeper %s changed during convergence", k, dir)
			}
			if _, _, _, err := Restore(base, dir, tensor.BF16); err != nil {
				t.Fatalf("k=%d: keeper %s unrestorable after convergence: %v", k, dir, err)
			}
		}
	}
}

// buildGenerationalScenario: two live checkpoints plus a superseded
// generation (checkpoint-200 replaced in place) and append residue.
func buildGenerationalScenario(t *testing.T) (*storage.Mem, *model.Model, *optim.AdamW) {
	t.Helper()
	b := storage.NewMem()
	m1, o1 := buildOptim(t, modelcfg.Tiny(), 310)
	m2, o2 := buildOptim(t, modelcfg.Tiny(), 311)
	save := func(dir string, step int, mm *model.Model, oo *optim.AdamW) {
		t.Helper()
		if err := Save(b, SaveSpec{Dir: dir, Model: mm, Optim: oo, WorldSize: 2,
			Strategy: "full", Dedup: true, State: TrainerState{Step: step, Seed: 9}}); err != nil {
			t.Fatal(err)
		}
	}
	save("run/checkpoint-100", 100, m1, o1)
	save("run/checkpoint-200", 200, m2, o2)
	save("run/checkpoint-200", 200, m1, o1)
	b.WriteFile("run/objects/.stage/put-1", []byte("residue"))
	b.WriteFile("run/objects/refs/gen-000000000099-checkpoint-9.ref.tmp", []byte("{"))
	return b, m1, o1
}

func TestCrashPointExplorationGCGenerational(t *testing.T) {
	probe, _, _ := buildGenerationalScenario(t)
	pf := storage.NewFault(probe)
	rep, err := GCGenerational(pf, "run", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovedBlobs) == 0 || len(rep.IndexRetired) != 1 || len(rep.RemovedStaging) != 2 {
		t.Fatalf("scenario has nothing to sweep: %+v", rep)
	}
	n := int(pf.Ops())
	if n < 3 {
		t.Fatalf("suspiciously few fault points: %d", n)
	}
	t.Logf("exploring %d generational gc crash points", n)

	for k := 1; k <= n; k++ {
		base, m1, o1 := buildGenerationalScenario(t)
		f := storage.NewFault(base)
		f.FailAt(k)
		if _, err := GCGenerational(f, "run", false); !storage.IsInjected(err) {
			t.Fatalf("k=%d: err = %v, want injected", k, err)
		}
		// Invariant: an interrupted generational sweep never loses a
		// referenced blob — both checkpoints restore bit-exact.
		for _, dir := range []string{"run/checkpoint-100", "run/checkpoint-200"} {
			rm, ro, _, err := Restore(base, dir, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d: %s unrestorable: %v", k, dir, err)
			}
			if !model.Equal(rm, m1) || !sameOptim(ro, o1) {
				t.Fatalf("k=%d: %s differs after interrupted gc", k, dir)
			}
		}
		// Reruns converge; full GC then agrees with the index exactly.
		if _, err := GCGenerational(base, "run", false); err != nil {
			t.Fatalf("k=%d: generational rerun: %v", k, err)
		}
		full, err := GC(base, "run")
		if err != nil {
			t.Fatalf("k=%d: full gc: %v", k, err)
		}
		if len(full.RemovedBlobs) != 0 || len(full.IndexRetired) != 0 || len(full.IndexRepaired) != 0 {
			t.Fatalf("k=%d: full gc found work the generational rerun missed: %+v", k, full)
		}
		if problems := refProblems(t, base, "run"); len(problems) != 0 {
			t.Fatalf("k=%d: index problems after convergence: %+v", k, problems)
		}
		bs, err := ScanBlobs(base, "run")
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range bs {
			if s.State != BlobReferenced {
				t.Fatalf("k=%d: blob %s still %v after convergence", k, s.Path, s.State)
			}
		}
	}
}
