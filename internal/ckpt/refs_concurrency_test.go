package ckpt

// Direct concurrency coverage for the sweep-versus-save race the crash
// tests only reach point-wise: a garbage collection running while a dedup
// save is mid-flight must never sweep the save's blobs, whether the save
// has reached the journal, the staging manifests, or neither.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// TestSweepPinsStagedUnpublishedManifests constructs the worst mid-save
// state directly: blobs published, manifests staged under <dir>.tmp, no
// COMMITTED marker and no journal record (the pre-ref-index window). The
// refcounts BlobStore.Sweep is handed must pin those blobs.
func TestSweepPinsStagedUnpublishedManifests(t *testing.T) {
	b := storage.NewMem()
	saveDedup(t, b, "run/checkpoint-100", 320, 2)
	m, o := buildOptim(t, modelcfg.Tiny(), 321)
	if err := Save(b, SaveSpec{Dir: "run/checkpoint-200", Model: m, Optim: o, WorldSize: 2,
		Strategy: "full", Dedup: true, State: TrainerState{Step: 200, Seed: 11}}); err != nil {
		t.Fatal(err)
	}
	// Demote checkpoint-200 to a staged-but-unsealed tree: manifests only,
	// no marker, and drop its journal record.
	for _, name := range []string{WeightManifestName, ShardManifestName(0), ShardManifestName(1)} {
		data, err := b.ReadFile("run/checkpoint-200/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.WriteFile("run/checkpoint-200.tmp/"+name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove("run/checkpoint-200"); err != nil {
		t.Fatal(err)
	}
	ix := mustRefIndex(t, b, "run")
	entries, _, _, err := ix.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var staged []string
	for _, e := range entries {
		if e.Key == "checkpoint-200" {
			rec, err := ix.Read(e)
			if err != nil {
				t.Fatal(err)
			}
			staged = rec.Digests
			if err := ix.Remove(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(staged) == 0 {
		t.Fatal("no staged digests collected")
	}

	// The staged manifests alone must pin their blobs in BlobRefs...
	refs, err := BlobRefs(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range staged {
		if refs[d] == 0 {
			t.Fatalf("staged-but-unpublished manifest does not pin blob %s", d)
		}
	}
	// ...through a direct BlobStore.Sweep over those refcounts...
	store := storage.NewBlobStore(b, "run/objects")
	if _, err := store.Sweep(refs); err != nil {
		t.Fatal(err)
	}
	for _, d := range staged {
		if !store.Has(d) {
			t.Fatalf("sweep removed staged blob %s", d)
		}
	}
	// ...and through both GC modes.
	if _, err := GC(b, "run"); err != nil {
		t.Fatal(err)
	}
	if _, err := GCGenerational(b, "run", false); err != nil {
		t.Fatal(err)
	}
	for _, d := range staged {
		if !store.Has(d) {
			t.Fatalf("gc removed staged blob %s", d)
		}
	}
	// Completing the save over the durable state still works bit-for-bit.
	if err := Save(b, SaveSpec{Dir: "run/checkpoint-200", Model: m, Optim: o, WorldSize: 2,
		Strategy: "full", Dedup: true, State: TrainerState{Step: 200, Seed: 11}}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Restore(b, "run/checkpoint-200", tensor.BF16); err != nil {
		t.Fatal(err)
	}
}

// renameHookBackend triggers a callback before delegating a Rename —
// test plumbing to interleave operations at an exact sweep step.
type renameHookBackend struct {
	storage.Backend
	hook func(oldName, newName string)
}

func (b *renameHookBackend) Rename(oldName, newName string) error {
	if b.hook != nil {
		b.hook(oldName, newName)
	}
	return b.Backend.Rename(oldName, newName)
}

// TestSweepRestoresBlobReusedMidSweep pins the exact TOCTOU the two-phase
// sweep exists for: a retention sweep takes its pin snapshot, then a
// concurrent save journals a record REUSING one of the victim's blobs
// (its dedup-hit check passed while the blob was still live, so it never
// rewrites it). The sweep's post-trash recheck must see the new record
// and restore the blob instead of purging it.
func TestSweepRestoresBlobReusedMidSweep(t *testing.T) {
	mem := storage.NewMem()
	cfg := modelcfg.Tiny()
	m, err := model.NewInitialized(cfg, tensor.BF16, 340)
	if err != nil {
		t.Fatal(err)
	}
	o, err := optim.NewAdamW(m, optim.NewLayerwiseLayout(cfg), optim.DefaultHyper())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		// Two dirtied tensors per save: the victim ends up with (at least)
		// two exclusive blobs — one to restore, one to genuinely reclaim.
		for _, ti := range []int{0, 1} {
			ts := m.Tensors()[ti]
			ts.Set(0, ts.At(0)+float32(i))
		}
		if err := Save(mem, SaveSpec{Dir: fmt.Sprintf("run/checkpoint-%d", i*10),
			Model: m, Optim: o, WorldSize: 1, Strategy: "full", Dedup: true,
			State: TrainerState{Step: i * 10, Seed: 340}}); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a digest exclusive to the victim (checkpoint-10).
	ix := mustRefIndex(t, mem, "run")
	entries, _, _, err := ix.Entries()
	if err != nil {
		t.Fatal(err)
	}
	keeperPins := map[string]bool{}
	var victim *storage.RefRecord
	for _, e := range entries {
		rec, err := ix.Read(e)
		if err != nil {
			t.Fatal(err)
		}
		if e.Key == "checkpoint-10" {
			victim = rec
			continue
		}
		for _, d := range rec.Digests {
			keeperPins[d] = true
		}
	}
	var reused string
	for _, d := range victim.Digests {
		if !keeperPins[d] {
			reused = d
			break
		}
	}
	if reused == "" {
		t.Fatal("victim has no exclusive digest")
	}

	// At the first trash rename — after the sweep's pin snapshot — a
	// "concurrent save" journals a record reusing the victim-exclusive
	// blob, exactly as a dedup-hit save would before its commit.
	hb := &renameHookBackend{Backend: mem}
	fired := false
	hb.hook = func(_, newName string) {
		if fired || !strings.Contains(newName, "/.trash/") {
			return
		}
		fired = true
		if _, err := appendRefRecord(mem, "run/checkpoint-999", 999, []string{reused}); err != nil {
			t.Errorf("mid-sweep append: %v", err)
		}
	}
	rep, err := Retain(hb, "run", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("sweep never trashed anything — scenario broken")
	}
	store := storage.NewBlobStore(mem, "run/objects")
	if !store.Has(reused) {
		t.Fatal("sweep purged a blob a concurrent save had journaled a reuse of")
	}
	for _, d := range rep.RemovedBlobs {
		if d == reused {
			t.Fatal("reused blob reported removed")
		}
	}
	// The victim's other exclusive blobs are genuinely gone, and no trash
	// residue remains.
	if trash, _ := store.ListTrash(); len(trash) != 0 {
		t.Fatalf("trash residue after sweep: %v", trash)
	}
	if len(rep.RemovedBlobs) == 0 {
		t.Fatal("sweep reclaimed nothing at all")
	}
}

// TestSweepRacingConcurrentDedupSave hammers both GC modes against a
// stream of dedup saves (fresh steps and in-place replaces) on a shared
// backend. Whatever interleaving the scheduler picks, every save must
// commit, every committed checkpoint must restore bit-exact afterwards,
// and quiescent repair + full GC must converge with a clean index.
func TestSweepRacingConcurrentDedupSave(t *testing.T) {
	b := storage.NewMem()
	const saves = 12
	states := make([]*model.Model, saves+1)
	optims := make([]*optim.AdamW, saves+1)

	var wg sync.WaitGroup
	done := make(chan struct{})
	saveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 1; i <= saves; i++ {
			m, o := buildOptim(t, modelcfg.Tiny(), uint64(330+i))
			states[i], optims[i] = m, o
			// Every third save replaces the previous directory in place,
			// superseding its generation while sweeps run.
			dir := fmt.Sprintf("run/checkpoint-%d", i*10)
			if i%3 == 0 {
				dir = fmt.Sprintf("run/checkpoint-%d", (i-1)*10)
			}
			if err := Save(b, SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2,
				Strategy: "full", Dedup: true, State: TrainerState{Step: i * 10, Seed: uint64(330 + i)}}); err != nil {
				select {
				case saveErr <- fmt.Errorf("save %s: %w", dir, err):
				default:
				}
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := GC(b, "run"); err != nil {
				t.Errorf("concurrent full gc: %v", err)
				return
			}
			if _, err := GCGenerational(b, "run", false); err != nil {
				t.Errorf("concurrent generational gc: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-saveErr:
		t.Fatal(err)
	default:
	}

	// Quiesce, then verify every committed checkpoint restores bit-exact
	// against the state that produced it.
	if _, err := Repair(b, "run"); err != nil {
		t.Fatal(err)
	}
	if _, err := GC(b, "run"); err != nil {
		t.Fatal(err)
	}
	dirs, err := List(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no committed checkpoints survived the race")
	}
	for _, dir := range dirs {
		rm, ro, c, err := Restore(b, dir, tensor.BF16)
		if err != nil {
			t.Fatalf("%s unrestorable after race: %v", dir, err)
		}
		i := c.State.Step / 10
		if i < 1 || i > saves || states[i] == nil {
			t.Fatalf("%s restored unknown step %d", dir, c.State.Step)
		}
		if !model.Equal(rm, states[i]) || !sameOptim(ro, optims[i]) {
			t.Fatalf("%s is a hybrid after racing sweeps", dir)
		}
	}
	if problems := refProblems(t, b, "run"); len(problems) != 0 {
		t.Fatalf("index problems after quiesce: %+v", problems)
	}
}
