package ckpt

// Crash-point exploration and concurrency stress for the lazy capture
// path: every mutating storage operation of a lazily-captured dedup save
// fails in turn (clean and torn), and the recovery invariants of the
// commit protocol must hold exactly as they do for synchronous saves —
// previous-or-new-never-hybrid, all-or-nothing publication, and
// Repair+GC convergence.

import (
	"fmt"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

// mutateLayer advances one layer's state the way a training step does: the
// master floats move first, then the layer's model tensors are rewritten as
// their rounded image, and the group generations advance. Mutating weights
// directly would break the model == round(master) invariant that Restore
// re-establishes via SyncModelFromMaster, making round-trip comparisons
// fail for reasons that have nothing to do with the save path.
func mutateLayer(t *testing.T, m *model.Model, o *optim.AdamW, target modelcfg.LayerRef, delta float32) {
	t.Helper()
	for gi, g := range o.Layout.Groups {
		if !g.HasLayer || g.Layer != target {
			continue
		}
		st := o.States[gi]
		for j := 0; j < len(st.Master); j += 61 {
			st.Master[j] += delta
		}
		off := 0
		for _, name := range g.Names {
			mt, err := m.Tensor(name)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < mt.Len(); k++ {
				mt.Set(k, st.Master[off+k])
			}
			off += mt.Len()
		}
		o.Gens[gi]++
	}
}

// lazySave pushes one spec through a fresh lazy saver to completion and
// returns the combined error — the lazy analogue of a blocking Save.
func lazySave(b storage.Backend, spec SaveSpec) error {
	s := NewLazyAsyncSaver(b, 1, CaptureOptions{})
	if err := s.Save(spec); err != nil {
		s.Wait()
		return err
	}
	if err := s.WaitCaptured(); err != nil {
		s.Wait()
		return err
	}
	return s.Wait()
}

func TestCrashPointExplorationLazyCapture(t *testing.T) {
	mPrev, oPrev := buildOptim(t, modelcfg.Tiny(), 160)
	// The next state shares most content with the previous one (a single
	// block mutated), so the explored save exercises the interesting lazy
	// paths: referenced payloads with no spool, the post-journal blob
	// verification, and a spooled payload for the changed layer.
	mNext := mPrev.Clone()
	oNext := oPrev.Clone(mNext)
	mutateLayer(t, mNext, oNext, modelcfg.Block(0), 1)
	specFor := func(dir string, step int, m *model.Model, o *optim.AdamW) SaveSpec {
		return SaveSpec{Dir: dir, Model: m, Optim: o, WorldSize: 2, Strategy: "full",
			Dedup: true, State: TrainerState{Step: step, Seed: 160}}
	}

	// Ground truth from fault-free SYNCHRONOUS saves: the lazy path must
	// publish byte-identical trees, so its crash exploration can verify
	// against the sync digests.
	clean := storage.NewMem()
	if err := Save(clean, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	prevDigest := treeDigest(t, clean, "run/checkpoint-100")
	if err := Save(clean, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	nextDigest := treeDigest(t, clean, "run/checkpoint-200")

	// Count the fault points of the second lazy save. Capture itself only
	// reads the backend (spools live in memory or OS temp files); every
	// mutation — journal record, blob puts, staging, commit, publish,
	// pointer — happens in the write stage.
	f := storage.NewFault(storage.NewMem())
	if err := lazySave(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
		t.Fatal(err)
	}
	f.FailAt(0)
	if err := lazySave(f, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
		t.Fatal(err)
	}
	n := int(f.Ops())
	if n < 10 {
		t.Fatalf("suspiciously few fault points in a lazy dedup save: %d", n)
	}
	if d := treeDigest(t, f, "run/checkpoint-200"); d != nextDigest {
		t.Fatal("fault-free lazy save is not byte-identical to the sync save")
	}
	t.Logf("exploring %d crash points × {clean, torn}", n)

	for _, torn := range []bool{false, true} {
		for k := 1; k <= n; k++ {
			base := storage.NewMem()
			f := storage.NewFault(base)
			f.SetTorn(torn)
			if err := lazySave(f, specFor("run/checkpoint-100", 100, mPrev, oPrev)); err != nil {
				t.Fatal(err)
			}
			f.FailAt(k)
			if err := lazySave(f, specFor("run/checkpoint-200", 200, mNext, oNext)); !storage.IsInjected(err) {
				t.Fatalf("k=%d torn=%v: err = %v, want injected", k, torn, err)
			}

			// Invariant 1: the previous checkpoint is intact — dir bytes
			// unchanged and every blob reference resolvable.
			if err := VerifyCommit(base, "run/checkpoint-100"); err != nil {
				t.Fatalf("k=%d torn=%v: previous checkpoint damaged: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-100"); d != prevDigest {
				t.Fatalf("k=%d torn=%v: previous checkpoint bytes changed", k, torn)
			}

			// Invariant 2: the new checkpoint is all or nothing.
			if base.Exists("run/checkpoint-200") {
				if err := VerifyCommit(base, "run/checkpoint-200"); err != nil {
					t.Fatalf("k=%d torn=%v: published checkpoint not committed: %v", k, torn, err)
				}
				if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
					t.Fatalf("k=%d torn=%v: published checkpoint differs from fault-free save", k, torn)
				}
			}

			// Invariant 3: resolution yields exactly one of the two source
			// states, blob reads included — never a hybrid.
			latest, err := Latest(base, "run")
			if err != nil {
				t.Fatalf("k=%d torn=%v: no resolvable checkpoint after crash: %v", k, torn, err)
			}
			rm, ro, c, err := Restore(base, latest, tensor.BF16)
			if err != nil {
				t.Fatalf("k=%d torn=%v: restore %s: %v", k, torn, latest, err)
			}
			switch c.State.Step {
			case 100:
				if !model.Equal(rm, mPrev) || !sameOptim(ro, oPrev) {
					t.Fatalf("k=%d torn=%v: step-100 restore is a hybrid", k, torn)
				}
			case 200:
				if !model.Equal(rm, mNext) || !sameOptim(ro, oNext) {
					t.Fatalf("k=%d torn=%v: step-200 restore is a hybrid", k, torn)
				}
			default:
				t.Fatalf("k=%d torn=%v: restored unknown step %d", k, torn, c.State.Step)
			}

			// Invariant 4: Repair + GC converge and the save retries
			// cleanly through the lazy path.
			if _, err := Repair(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: repair: %v", k, torn, err)
			}
			if _, err := GC(base, "run"); err != nil {
				t.Fatalf("k=%d torn=%v: gc: %v", k, torn, err)
			}
			statuses, err := Scan(base, "run")
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range statuses {
				if st.State != StateCommitted {
					t.Fatalf("k=%d torn=%v: %s still %v after repair+gc", k, torn, st.Path, st.State)
				}
			}
			if bs, _ := ScanBlobs(base, "run"); true {
				for _, s := range bs {
					if s.State != BlobReferenced {
						t.Fatalf("k=%d torn=%v: blob %s still %v after gc", k, torn, s.Path, s.State)
					}
				}
			}
			if problems := refProblems(t, base, "run"); len(problems) != 0 {
				t.Fatalf("k=%d torn=%v: ref-index problems after repair+gc: %+v", k, torn, problems)
			}
			if err := lazySave(base, specFor("run/checkpoint-200", 200, mNext, oNext)); err != nil {
				t.Fatalf("k=%d torn=%v: lazy save after repair: %v", k, torn, err)
			}
			if d := treeDigest(t, base, "run/checkpoint-200"); d != nextDigest {
				t.Fatalf("k=%d torn=%v: post-repair save differs from fault-free save", k, torn)
			}
		}
	}
}

// TestLazyCaptureStress hammers back-to-back lazy saves while the live
// state keeps mutating between WaitCaptured and the next Save — captures
// overlap earlier saves' background writes, pooled spools are recycled
// across saves, and the tiny spool budget forces the file-backed
// fallback. Every published checkpoint must restore exactly the state
// captured at its Save call: no hybrids, no torn spool reuse. Run under
// -race this doubles as the data-race proof for the capture engine.
func TestLazyCaptureStress(t *testing.T) {
	for _, dedup := range []bool{true, false} {
		t.Run(fmt.Sprintf("dedup=%v", dedup), func(t *testing.T) {
			b := storage.NewMem()
			// 64 KiB spool budget: most payloads overflow to file spools,
			// and the pool recycles the rest across saves.
			s := NewLazyAsyncSaver(b, 2, CaptureOptions{Workers: 4, SpoolBytes: 64 << 10})
			cfg := modelcfg.Tiny()
			m, o := buildOptim(t, cfg, 170)
			refs := cfg.AllLayers()

			const saves = 8
			type expect struct {
				m *model.Model
				o *optim.AdamW
			}
			var want []expect
			for i := 1; i <= saves; i++ {
				if i > 1 {
					// Step one rotating layer, master-first, the way
					// AdamW.Step would.
					mutateLayer(t, m, o, refs[i%len(refs)], float32(i))
				}
				mc := m.Clone()
				want = append(want, expect{m: mc, o: o.Clone(mc)})
				err := s.Save(SaveSpec{
					Dir: fmt.Sprintf("run/checkpoint-%d", i*10), Model: m, Optim: o,
					WorldSize: 2, Strategy: "full", Dedup: dedup,
					LayerGens: o.LayerGens(),
					State:     TrainerState{Step: i * 10, Seed: 170},
				})
				if err != nil {
					t.Fatal(err)
				}
				// WaitCaptured releases the live state; the write stages of
				// this and earlier saves keep running while the next
				// iteration mutates.
				if err := s.WaitCaptured(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Wait(); err != nil {
				t.Fatal(err)
			}
			stats := s.CaptureStats()
			if stats.Saves != saves {
				t.Fatalf("stats.Saves = %d, want %d", stats.Saves, saves)
			}
			if stats.Pool.FileSpools == 0 {
				t.Error("tiny spool budget never hit the file-backed fallback")
			}
			for i := 1; i <= saves; i++ {
				dir := fmt.Sprintf("run/checkpoint-%d", i*10)
				if err := VerifyCommit(b, dir); err != nil {
					t.Fatalf("%s: %v", dir, err)
				}
				rm, ro, _, err := Restore(b, dir, tensor.BF16)
				if err != nil {
					t.Fatalf("restore %s: %v", dir, err)
				}
				if !model.Equal(rm, want[i-1].m) {
					t.Fatalf("%s: weights do not match the state captured at its Save", dir)
				}
				if !sameOptim(ro, want[i-1].o) {
					t.Fatalf("%s: optimizer state does not match the state captured at its Save", dir)
				}
			}
		})
	}
}
