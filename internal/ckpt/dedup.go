// Content-addressed ("dedup") checkpoints.
//
// A dedup save stores every weight-tensor and optimizer-group payload as a
// blob in the run root's `objects/` store (internal/storage.BlobStore) and
// writes small manifests referencing the blobs by SHA-256 digest in place
// of the LTSF/LTOS payload containers. Payloads unchanged since any
// earlier save cost zero payload bytes — the incremental-snapshot
// observation that most tensor bytes are identical between successive
// training checkpoints, applied at the paper's layer-wise granularity.
//
// Ordering makes the commit protocol carry over unchanged: blobs are
// published (atomic rename, idempotent) before the checkpoint's COMMITTED
// marker seals the manifest directory, so a committed manifest can only
// reference durable blobs. A crash mid-save leaves an orphaned staging
// directory plus possibly unreferenced blobs — garbage that Repair and GC
// remove, never a committed checkpoint with dangling references. GC
// derives refcounts from every committed (and sealed-but-unpublished)
// manifest and sweeps only blobs with zero references.

package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"

	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// ObjectsDirName is the blob store's directory name under a run root.
const ObjectsDirName = "objects"

// objectsPath returns the blob store root for a run root.
func objectsPath(runRoot string) string {
	if runRoot == "" {
		return ObjectsDirName
	}
	return runRoot + "/" + ObjectsDirName
}

// ObjectsRoot returns the blob store root serving a checkpoint directory:
// the `objects/` sibling in its run root. A single-segment dir ("merged")
// has the backend root as its run root, mirroring LatestPointerPath.
func ObjectsRoot(dir string) string {
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		return dir[:i] + "/" + ObjectsDirName
	}
	return ObjectsDirName
}

// storeFor opens the content-addressed store serving a checkpoint
// directory — a plain blob store, or the digest-sharded layout when the
// objects root declares one (storage.OpenCAS).
func storeFor(b storage.Backend, dir string) (storage.CAS, error) {
	return storage.OpenCAS(b, ObjectsRoot(dir))
}

// IsDedup reports whether a checkpoint directory is stored content-
// addressed (weight manifest present, no weight container).
func IsDedup(b storage.Backend, dir string) bool {
	return b.Exists(dir+"/"+WeightManifestName) && !b.Exists(dir+"/model.ltsf")
}

// hashStream computes one payload's content digest and CRC by streaming
// encode() through the hashes only — no storage I/O. Saves run this over
// every payload first, so the full digest set can be journaled in the ref
// index before a single blob is published.
func hashStream(size int64, encode func(io.Writer) (int64, error)) (digest string, crc uint32, err error) {
	c := crc32.NewIEEE()
	sum := sha256.New()
	n, err := encode(io.MultiWriter(c, sum))
	if err != nil {
		return "", 0, err
	}
	if n != size {
		return "", 0, fmt.Errorf("ckpt: payload encoded %d bytes, expected %d", n, size)
	}
	return hex.EncodeToString(sum.Sum(nil)), c.Sum32(), nil
}

// encodeGroupPayload streams one group shard's payload (master + exp_avg +
// exp_avg_sq, FP32 LE) — exactly the bytes ShardFileWriter.WriteGroup
// spools.
func encodeGroupPayload(w io.Writer, buf []byte, s *zero.GroupShard) (int64, error) {
	var n int64
	for _, sec := range [][]float32{s.Master, s.ExpAvg, s.ExpAvgSq} {
		k, err := writeF32s(w, buf, sec)
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// dedupPayload is one payload of a dedup save: its hashed identity plus
// the encoder that can replay its exact bytes into the store, and — when a
// codec plan is active — the planned put options and the manifest-entry
// patch that records how the blob actually landed.
type dedupPayload struct {
	digest string
	crc    uint32
	size   int64
	encode func(io.Writer) (int64, error)

	opts    storage.BlobPutOptions
	planned []string
	apply   func(codec string, stored int64, parents []string)
}

// writeDedupPayloads is the dedup half of Save: weight and group payloads
// go to the blob store on the base backend (published before the commit),
// and the manifests are staged through the transaction's recording backend
// like every other checkpoint file. finalDir names the checkpoint's
// eventual (published) path — the blob store location derives from it, not
// from the staging directory.
//
// Ordering is load-bearing: every payload is hashed first (metadata-only
// storage I/O), the full digest set — including every xor-parent ancestor a
// planned or existing delta blob depends on — is journaled in the ref
// index, and only then are missing blobs published — so a concurrent or
// later sweep always finds a record pinning a blob (and its decode
// ancestry) before the blob exists. The returned
// generation is recorded in the checkpoint's manifest.json (ref_gen),
// binding the published directory to its journal record.
func writeDedupPayloads(base, sb storage.Backend, stagingDir, finalDir string,
	modelName string, weights []*tensor.Tensor,
	metas []ShardGroupMeta, byRank [][]*zero.GroupShard, worldSize, step int,
	layout optim.LayoutKind, cplan *codecPlan) (int64, error) {

	store, err := storeFor(base, finalDir)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, storage.ChunkOrDefault(0))

	// Phase 1: hash everything; build manifests and the digest set. With a
	// codec plan active, each payload also gets its planned put options, and
	// the journal set is extended with every planned ancestor — the record
	// must pin a parent before a delta depending on it can exist.
	var payloads []dedupPayload
	var digests []string
	hash := func(slot string, width int, size int64, encode func(io.Writer) (int64, error)) (string, uint32, error) {
		digest, crc, err := hashStream(size, encode)
		if err != nil {
			return "", 0, err
		}
		p := dedupPayload{digest: digest, crc: crc, size: size, encode: encode}
		if cplan != nil {
			p.opts, p.planned = cplan.optsFor(slot, digest, width)
			digests = append(digests, p.planned...)
		}
		// A blob that already exists may carry an xor lineage this save did
		// not plan (written by an earlier save from another parent, or by a
		// codec-enabled save when this one runs raw); the record must pin
		// those actual ancestors too, or retiring the blob's original
		// record could orphan them under our feet.
		if ch, err := blobChain(store, digest); err == nil {
			digests = append(digests, ch...)
		}
		payloads = append(payloads, p)
		digests = append(digests, digest)
		return digest, crc, nil
	}
	wm := &WeightManifest{Version: FormatVersion, Model: modelName}
	for _, t := range weights {
		t := t
		size := int64(t.Bytes())
		digest, crc, err := hash(weightSlot(t.Name), t.DType.Size(), size, func(w io.Writer) (int64, error) {
			return t.EncodeTo(w, buf)
		})
		if err != nil {
			return 0, fmt.Errorf("ckpt: dedup tensor %q: %w", t.Name, err)
		}
		wm.Tensors = append(wm.Tensors, WeightEntry{
			Name: t.Name, DType: t.DType.String(),
			Shape: append([]int(nil), t.Shape...),
			Size:  size, CRC32: crc, Digest: digest,
		})
		idx := len(wm.Tensors) - 1
		payloads[len(payloads)-1].apply = func(codec string, stored int64, parents []string) {
			e := &wm.Tensors[idx]
			e.Codec, e.Stored, e.Parents = codec, stored, parents
		}
	}
	sms := make([]*ShardManifest, worldSize)
	for r := 0; r < worldSize; r++ {
		sm := &ShardManifest{
			Version: FormatVersion, Rank: r, WorldSize: worldSize,
			Step: step, Layout: layout.String(),
		}
		for i, s := range byRank[r] {
			m := metas[i]
			size := s.Numel() * 12
			shard := s
			// Group payloads are FP32 triples, so the plane width is 4.
			digest, crc, err := hash(groupSlotKey(r, m.Index), 4, size, func(w io.Writer) (int64, error) {
				return encodeGroupPayload(w, buf, shard)
			})
			if err != nil {
				return 0, fmt.Errorf("ckpt: dedup rank %d group %d: %w", r, m.Index, err)
			}
			sm.Groups = append(sm.Groups, ShardGroupEntry{
				Index: m.Index, Numel: m.Numel, ShardLen: s.Numel(),
				NoDecay: m.NoDecay, Layer: m.Layer,
				Size: size, CRC32: crc, Digest: digest,
			})
			idx := len(sm.Groups) - 1
			payloads[len(payloads)-1].apply = func(codec string, stored int64, parents []string) {
				g := &sm.Groups[idx]
				g.Codec, g.Stored, g.Parents = codec, stored, parents
			}
		}
		sms[r] = sm
	}

	// Phase 2: journal the reference record, then publish missing blobs.
	gen, err := appendRefRecord(base, finalDir, step, digests)
	if err != nil {
		return 0, err
	}
	for i := range payloads {
		// A zero-valued opts (no plan) is a plain raw put; either way the
		// manifest entry records how the blob actually landed — a dedup hit
		// may resolve to a container another save stored.
		p := &payloads[i]
		res, err := store.PutStreamOpts(p.digest, p.opts, p.encode)
		if err != nil {
			return 0, fmt.Errorf("ckpt: dedup blob %s: %w", p.digest, err)
		}
		codec, stored, parents, err := codecEntryMeta(store, res, p.planned)
		if err != nil {
			return 0, fmt.Errorf("ckpt: dedup blob %s: %w", p.digest, err)
		}
		p.apply(codec, stored, parents)
	}

	// Phase 3: stage the manifests through the recording backend.
	if err := WriteWeightManifest(sb, stagingDir+"/"+WeightManifestName, wm); err != nil {
		return 0, err
	}
	for r, sm := range sms {
		if err := WriteShardManifest(sb, stagingDir+"/"+ShardManifestName(r), sm); err != nil {
			return 0, err
		}
	}
	return gen, nil
}

// DedupWeights provides the same lazy per-tensor access over a dedup
// checkpoint that LTSFReader provides over a plain one: tensors are read
// (and CRC-verified) blob by blob, raw extents open directly on the blob
// files, so resume and merge work transparently against either layout.
type DedupWeights struct {
	store storage.CAS
	man   *WeightManifest
	// index maps tensor name to its manifest entry position, so per-tensor
	// lookups cost what the LTSF header map costs, not a slice scan.
	index map[string]int
}

// OpenDedupWeights opens the weight manifest of a dedup checkpoint.
func OpenDedupWeights(b storage.Backend, dir string) (*DedupWeights, error) {
	man, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, len(man.Tensors))
	for i, e := range man.Tensors {
		index[e.Name] = i
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return nil, err
	}
	return &DedupWeights{store: store, man: man, index: index}, nil
}

// entry returns the named tensor's manifest entry via the index.
func (r *DedupWeights) entry(name string) (WeightEntry, bool) {
	i, ok := r.index[name]
	if !ok {
		return WeightEntry{}, false
	}
	return r.man.Tensors[i], true
}

// Model returns the model name recorded at save time.
func (r *DedupWeights) Model() string { return r.man.Model }

// Names returns the sorted tensor names present in the manifest.
func (r *DedupWeights) Names() []string {
	out := make([]string, 0, len(r.man.Tensors))
	for _, e := range r.man.Tensors {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the manifest references the named tensor.
func (r *DedupWeights) Has(name string) bool {
	_, ok := r.entry(name)
	return ok
}

// PayloadSize returns the stored byte size of the named tensor's payload.
func (r *DedupWeights) PayloadSize(name string) (int64, bool) {
	e, ok := r.entry(name)
	if !ok {
		return 0, false
	}
	return e.Size, true
}

// ReadTensor reads the named tensor's blob, verifies its CRC and returns
// the decoded tensor.
func (r *DedupWeights) ReadTensor(name string) (*tensor.Tensor, error) {
	e, ok := r.entry(name)
	if !ok {
		return nil, fmt.Errorf("ckpt: dedup weights: no tensor %q", name)
	}
	dt, err := tensor.ParseDType(e.DType)
	if err != nil {
		return nil, fmt.Errorf("ckpt: dedup weights: tensor %q: %w", name, err)
	}
	rc, err := r.store.OpenRange(e.Digest, 0, e.Size)
	if err != nil {
		return nil, fmt.Errorf("ckpt: dedup weights: tensor %q: %w", name, err)
	}
	buf := make([]byte, e.Size)
	_, err = io.ReadFull(rc, buf)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: dedup weights: tensor %q blob %s: %w", name, e.Digest, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != e.CRC32 {
		return nil, fmt.Errorf("ckpt: dedup weights: tensor %q: CRC mismatch (%08x != %08x)", name, got, e.CRC32)
	}
	t := tensor.New(name, dt, e.Shape...)
	if err := t.Decode(buf); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadAll reads every tensor in name order.
func (r *DedupWeights) ReadAll() ([]*tensor.Tensor, error) {
	names := r.Names()
	out := make([]*tensor.Tensor, 0, len(names))
	for _, n := range names {
		t, err := r.ReadTensor(n)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// RawTensor returns the named tensor's blob extent and recorded CRC.
func (r *DedupWeights) RawTensor(name string) (RawTensor, error) {
	e, ok := r.entry(name)
	if !ok {
		return RawTensor{}, fmt.Errorf("ckpt: dedup weights: no tensor %q", name)
	}
	return RawTensor{
		Name:  name,
		DType: e.DType,
		Shape: append([]int(nil), e.Shape...),
		Size:  e.Size,
		CRC32: e.CRC32,
		// A blob holds exactly the payload, so the extent starts at 0.
		Offset: 0,
	}, nil
}

// OpenRaw opens a streaming reader over the named tensor's blob.
func (r *DedupWeights) OpenRaw(name string) (RawTensor, io.ReadCloser, error) {
	rt, err := r.RawTensor(name)
	if err != nil {
		return RawTensor{}, nil, err
	}
	e, _ := r.entry(name)
	rc, err := r.store.OpenRange(e.Digest, 0, e.Size)
	if err != nil {
		return RawTensor{}, nil, fmt.Errorf("ckpt: dedup weights: open blob for %q: %w", name, err)
	}
	return rt, rc, nil
}

// RawEligible reports whether the named tensor can be raw-copied into an
// output of the given dtype.
func (r *DedupWeights) RawEligible(name string, out tensor.DType) bool {
	e, ok := r.entry(name)
	if !ok {
		return false
	}
	dt, err := tensor.ParseDType(e.DType)
	return err == nil && dt == out
}

// readDedupShardFile rebuilds one rank's decoded ShardFile from its shard
// manifest and group blobs — the dedup counterpart of ReadShardFile, with
// the same whole-groups-only access (no lazy optimizer loading, §5.4).
func readDedupShardFile(b storage.Backend, dir string, rank int) (*ShardFile, error) {
	name := dir + "/" + ShardManifestName(rank)
	man, err := ReadShardManifest(b, name)
	if err != nil {
		return nil, err
	}
	if man.Rank != rank {
		return nil, fmt.Errorf("ckpt: %s: manifest is for rank %d", name, man.Rank)
	}
	layout, err := optim.ParseLayoutKind(man.Layout)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return nil, err
	}
	f := &ShardFile{
		Rank: man.Rank, WorldSize: man.WorldSize, Step: man.Step,
		Layout: layout,
		Shards: make([]*zero.GroupShard, len(man.Groups)),
	}
	if size, err := b.Stat(name); err == nil {
		f.FileBytes = size
	}
	for i, g := range man.Groups {
		rc, err := store.OpenRange(g.Digest, 0, g.Size)
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: group %d blob: %w", name, g.Index, err)
		}
		seg := make([]byte, g.Size)
		_, err = io.ReadFull(rc, seg)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: group %d blob %s: %w", name, g.Index, g.Digest, err)
		}
		if got := crc32.ChecksumIEEE(seg); got != g.CRC32 {
			return nil, fmt.Errorf("ckpt: %s: group %d CRC mismatch", name, g.Index)
		}
		meta := g.Meta()
		meta.Offsets = [2]int64{0, g.Size}
		f.Meta = append(f.Meta, meta)
		f.FileBytes += g.Size
		f.Shards[i] = &zero.GroupShard{
			GroupIndex: g.Index,
			Rank:       man.Rank,
			Master:     decodeF32(seg, g.ShardLen),
			ExpAvg:     decodeF32(seg[g.ShardLen*4:], g.ShardLen),
			ExpAvgSq:   decodeF32(seg[g.ShardLen*8:], g.ShardLen),
		}
	}
	return f, nil
}

// MaterializeWeights writes a full LTSF weight container at dst from a
// dedup checkpoint's manifest, splicing blob payloads in manifest (=
// payload) order with carried-forward CRCs. The output is byte-identical
// to what a plain Save of the same state would have written; every spliced
// payload is re-hashed on the way through and checked against the
// manifest's digest, so a corrupt blob fails the materialization instead
// of poisoning the container.
func MaterializeWeights(b storage.Backend, dir, dst string, chunkBytes int) error {
	man, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return err
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return err
	}
	w, err := NewLTSFWriter(b, dst, man.Model, chunkBytes)
	if err != nil {
		return err
	}
	defer w.Abort()
	w.RecordDigests()
	for _, e := range man.Tensors {
		rc, err := store.OpenRange(e.Digest, 0, e.Size)
		if err != nil {
			return fmt.Errorf("ckpt: materialize %s: tensor %q: %w", dir, e.Name, err)
		}
		err = w.AppendRaw(RawTensor{
			Name: e.Name, DType: e.DType, Shape: e.Shape,
			Size: e.Size, CRC32: e.CRC32,
		}, rc)
		rc.Close()
		if err != nil {
			return fmt.Errorf("ckpt: materialize %s: %w", dir, err)
		}
		if got, _ := w.Digest(e.Name); got != e.Digest {
			return fmt.Errorf("ckpt: materialize %s: tensor %q blob content hashes to %s, manifest says %s",
				dir, e.Name, got, e.Digest)
		}
	}
	return w.Close()
}

// MaterializeShardFile writes one rank's full LTOS container at dst from a
// dedup checkpoint's shard manifest, byte-identical to the plain save's,
// verifying each group blob's digest as it streams through.
func MaterializeShardFile(b storage.Backend, dir string, rank int, dst string, chunkBytes int) error {
	man, err := ReadShardManifest(b, dir+"/"+ShardManifestName(rank))
	if err != nil {
		return err
	}
	layout, err := optim.ParseLayoutKind(man.Layout)
	if err != nil {
		return err
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return err
	}
	w, err := NewShardFileWriter(b, dst, man.Rank, man.WorldSize, man.Step, layout, chunkBytes)
	if err != nil {
		return err
	}
	defer w.Abort()
	for _, g := range man.Groups {
		rc, err := store.OpenRange(g.Digest, 0, g.Size)
		if err != nil {
			return fmt.Errorf("ckpt: materialize %s rank %d: group %d: %w", dir, rank, g.Index, err)
		}
		sum := sha256.New()
		err = w.AppendRawGroup(g.Meta(), g.Size, io.TeeReader(rc, sum))
		rc.Close()
		if err != nil {
			return fmt.Errorf("ckpt: materialize %s rank %d: %w", dir, rank, err)
		}
		if got := hex.EncodeToString(sum.Sum(nil)); got != g.Digest {
			return fmt.Errorf("ckpt: materialize %s rank %d: group %d blob content hashes to %s, manifest says %s",
				dir, rank, g.Index, got, g.Digest)
		}
	}
	return w.Close()
}

// shardManifestRanks lists the ranks that have shard manifests in a
// checkpoint directory.
func shardManifestRanks(b storage.Backend, dir string) []int {
	entries, err := b.List(dir + "/zero")
	if err != nil {
		return nil
	}
	var ranks []int
	for _, e := range entries {
		var r int
		if _, err := fmt.Sscanf(e, "rank_%d_optim_states.ltom", &r); err == nil && strings.HasSuffix(e, ".ltom") {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// verifyDedupRefs checks that every blob a dedup checkpoint references
// exists with the manifest's exact payload size — the cheap half of
// reference integrity Scan runs on committed dedup directories (content
// digests are verified by readers and materialization). Sizes compare
// against the blob's decoded (raw) size, so compressed containers verify
// the same as raw blobs; xor entries additionally require every listed
// ancestor to be present, because decoding depends on the whole chain.
func verifyDedupRefs(b storage.Backend, dir string) error {
	if !b.Exists(dir + "/" + WeightManifestName) {
		return nil // plain checkpoint: nothing content-addressed to check
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return err
	}
	check := func(what, digest string, size int64, parents []string) error {
		meta, err := store.Meta(digest)
		if err != nil {
			return fmt.Errorf("ckpt: %s: %s references missing blob %s: %w", dir, what, digest, err)
		}
		if meta.RawSize != size {
			return fmt.Errorf("ckpt: %s: %s blob %s holds %d payload bytes, manifest says %d", dir, what, digest, meta.RawSize, size)
		}
		for _, pd := range parents {
			if !store.Has(pd) {
				return fmt.Errorf("ckpt: %s: %s blob %s: xor parent %s missing", dir, what, digest, pd)
			}
		}
		return nil
	}
	wm, err := ReadWeightManifest(b, dir+"/"+WeightManifestName)
	if err != nil {
		return err
	}
	for _, e := range wm.Tensors {
		if err := check("tensor "+e.Name, e.Digest, e.Size, e.Parents); err != nil {
			return err
		}
	}
	for _, r := range shardManifestRanks(b, dir) {
		sm, err := ReadShardManifest(b, dir+"/"+ShardManifestName(r))
		if err != nil {
			return err
		}
		for _, g := range sm.Groups {
			if err := check(fmt.Sprintf("rank %d group %d", r, g.Index), g.Digest, g.Size, g.Parents); err != nil {
				return err
			}
		}
	}
	return nil
}

// GCReport records what a blob garbage collection did.
type GCReport struct {
	// Mode is "full" (manifest mark-and-sweep plus index validation) or
	// "generational" (journal-driven incremental sweep).
	Mode string
	// DryRun is set when nothing was actually removed.
	DryRun bool
	// Referenced is the number of distinct digests pinned by manifests
	// (full mode) or by the live index and manifest fallbacks
	// (generational mode).
	Referenced int
	// Kept is the number of examined blobs retained.
	Kept int
	// Examined is the number of stored blobs the sweep looked at — every
	// blob for a full sweep, only the retired generations' candidates for
	// a generational one.
	Examined int
	// RemovedBlobs lists swept unreferenced blob digests.
	RemovedBlobs []string
	// RemovedStaging lists deleted blob-staging residue paths.
	RemovedStaging []string
	// BytesFreed totals the removed blobs' sizes.
	BytesFreed int64
	// IndexRecords is the number of journal records considered.
	IndexRecords int
	// IndexRetired lists superseded record files removed.
	IndexRetired []string
	// IndexRepaired lists records rewritten or added from manifests
	// (full mode's index validation).
	IndexRepaired []string
	// IndexStale counts records left pinned that match no published
	// checkpoint (in-flight saves or crash residue; Repair judges them).
	IndexStale int
}

// GC is the full mark-and-sweep — now the verification and repair path.
// Refcounts are re-derived from every manifest under the run root (the
// ground truth), unioned with the journal's pins (an in-flight save's
// record precedes its blobs and manifests, and must protect them), and the
// whole store is swept against the union. Superseded journal records are
// retired with their exclusive blobs, divergent or missing records of
// sealed directories are rewritten from the manifests, and orphaned
// records are counted stale but left pinned — an in-flight save looks
// exactly like one, so only quiescent Repair removes them. The safety
// invariant — a referenced blob is never collected — holds through any
// interruption: references are gathered before the first removal, removals
// are per-blob, and a crashed sweep only leaves extra garbage for the next
// run.
func GC(b storage.Backend, runRoot string) (*GCReport, error) {
	dirs, err := collectDirRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	refs := map[string]int{}
	for _, d := range dirs {
		for _, dg := range d.Digests {
			refs[dg]++
		}
	}
	rep := &GCReport{Mode: "full", Referenced: len(refs)}
	store, err := storage.OpenCAS(b, objectsPath(runRoot))
	if err != nil {
		return nil, err
	}
	if !b.Exists(store.Root()) {
		return rep, nil
	}
	audit, err := auditRefs(b, runRoot, dirs)
	if err != nil {
		return nil, err
	}
	rep.IndexRecords = len(audit.records)
	sweepRefs := map[string]int{}
	for d, n := range refs {
		sweepRefs[d] = n
	}
	// Union-pin rule: a hub-attached run sweeps the shared store, so every
	// peer run's references (journal + manifest fallbacks) pin. With the
	// union in place this full sweep reclaims exactly the digests dead
	// across ALL attached runs — the hub GC invariant.
	hp, err := peerPins(b, runRoot)
	if err != nil {
		return rep, err
	}
	mergePins(sweepRefs, hp)
	retiredName := map[string]bool{}
	for _, ar := range audit.records {
		switch ar.state {
		case RefSuperseded:
			// Provably replaced: pins nothing, its exclusive digests are
			// exactly the garbage this sweep reclaims.
			retiredName[ar.entry.Name] = true
		case RefCorrupt:
			// Unreadable: pins nothing it can name; its directory (if any)
			// pins through refs already.
			retiredName[ar.entry.Name] = true
		default:
			if ar.rec != nil {
				for _, dg := range ar.rec.Digests {
					sweepRefs[dg]++
				}
			}
			if ar.state == RefOrphaned {
				rep.IndexStale++
			}
		}
	}
	// Trash left by a sweep that crashed between trash and purge: restore
	// whatever is referenced, drop the rest, before the main sweep.
	if trash, _ := store.ListTrash(); len(trash) > 0 {
		if _, purged, err := handleTrash(store, sweepRefs); err != nil {
			return rep, err
		} else {
			rep.RemovedBlobs = append(rep.RemovedBlobs, purged...)
		}
	}
	sw, err := store.SweepRecheck(sweepRefs, indexRecheck(b, runRoot, retiredName))
	if sw != nil {
		rep.Kept = sw.Kept
		rep.Examined = sw.Examined
		rep.RemovedBlobs = append(rep.RemovedBlobs, sw.RemovedBlobs...)
		rep.RemovedStaging = sw.RemovedStaging
		rep.BytesFreed = sw.BytesFreed
	}
	if err != nil {
		return rep, err
	}
	// Index validation: retire superseded records, rewrite divergent ones,
	// add missing ones — all derived from the manifests just read, so the
	// index a generational sweep will trust next time agrees with ground
	// truth. Orphaned records are reported, never removed here.
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return rep, err
	}
	for _, ar := range audit.records {
		switch ar.state {
		case RefSuperseded, RefCorrupt:
			if err := ix.Remove(ar.entry); err != nil {
				return rep, err
			}
			rep.IndexRetired = append(rep.IndexRetired, ar.entry.Name)
		case RefDivergent:
			d, ok := findBound(dirs, ar.entry)
			if !ok {
				continue
			}
			if err := ix.Append(&storage.RefRecord{
				Version: FormatVersion, Key: ar.entry.Key, Step: stepOf(b, d.Path),
				Generation: ar.entry.Generation, Digests: storage.NormalizeDigests(append([]string(nil), d.Digests...)),
			}); err != nil {
				return rep, err
			}
			rep.IndexRepaired = append(rep.IndexRepaired, ar.entry.Name)
		}
	}
	for _, d := range audit.missing {
		gen := d.RefGen
		if gen <= 0 {
			if gen, err = ix.NextGeneration(); err != nil {
				return rep, err
			}
		}
		if err := ix.Append(&storage.RefRecord{
			Version: FormatVersion, Key: d.Key, Step: stepOf(b, d.Path),
			Generation: gen, Digests: storage.NormalizeDigests(append([]string(nil), d.Digests...)),
		}); err != nil {
			return rep, err
		}
		rep.IndexRepaired = append(rep.IndexRepaired, d.Key)
	}
	return rep, nil
}

// GCDryRun runs the full mark-and-sweep's mark phase without mutating
// anything: references are re-derived from every manifest, unioned with
// the journal's pins, and the whole store is classified against them. The
// report mirrors GC's accounting — Examined/Kept count every stored blob,
// RemovedBlobs/RemovedStaging/BytesFreed list what a real sweep would
// reclaim, and IndexRetired/IndexRepaired name the records it would
// retire or rebuild.
func GCDryRun(b storage.Backend, runRoot string) (*GCReport, error) {
	dirs, err := collectDirRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	refs := map[string]int{}
	for _, d := range dirs {
		for _, dg := range d.Digests {
			refs[dg]++
		}
	}
	rep := &GCReport{Mode: "full", DryRun: true, Referenced: len(refs)}
	store, err := storage.OpenCAS(b, objectsPath(runRoot))
	if err != nil {
		return nil, err
	}
	if !b.Exists(store.Root()) {
		return rep, nil
	}
	audit, err := auditRefs(b, runRoot, dirs)
	if err != nil {
		return nil, err
	}
	rep.IndexRecords = len(audit.records)
	sweepRefs := map[string]int{}
	for d, n := range refs {
		sweepRefs[d] = n
	}
	// Union-pin rule, as in GC: peer runs of a hub-attached store pin.
	hp, err := peerPins(b, runRoot)
	if err != nil {
		return rep, err
	}
	mergePins(sweepRefs, hp)
	for _, ar := range audit.records {
		switch ar.state {
		case RefSuperseded, RefCorrupt:
			rep.IndexRetired = append(rep.IndexRetired, ar.entry.Name)
		default:
			if ar.rec != nil {
				for _, dg := range ar.rec.Digests {
					sweepRefs[dg]++
				}
			}
			if ar.state == RefOrphaned {
				rep.IndexStale++
			}
			if ar.state == RefDivergent {
				rep.IndexRepaired = append(rep.IndexRepaired, ar.entry.Name)
			}
		}
	}
	for _, d := range audit.missing {
		rep.IndexRepaired = append(rep.IndexRepaired, d.Key)
	}
	blobs, staging, _, err := store.List()
	if err != nil {
		return rep, err
	}
	for _, blob := range blobs {
		rep.Examined++
		if sweepRefs[blob.Digest] > 0 {
			rep.Kept++
		} else {
			rep.RemovedBlobs = append(rep.RemovedBlobs, blob.Digest)
			if blob.Size > 0 {
				rep.BytesFreed += blob.Size
			}
		}
	}
	rep.RemovedStaging = staging
	// Trash from an interrupted two-phase sweep: a real run purges what is
	// no longer referenced (and restores the rest).
	trash, err := store.ListTrash()
	if err != nil {
		return rep, err
	}
	for _, t := range trash {
		if sweepRefs[t.Digest] == 0 {
			rep.RemovedBlobs = append(rep.RemovedBlobs, t.Digest)
			if t.Size > 0 {
				rep.BytesFreed += t.Size
			}
		}
	}
	return rep, nil
}

// BlobState classifies one entry of the run root's blob store.
type BlobState int

const (
	// BlobReferenced: at least one committed manifest references it.
	BlobReferenced BlobState = iota
	// BlobUnreferenced: no committed manifest references it (garbage a GC
	// run will sweep — harmless, but storage it would be nice to reclaim).
	BlobUnreferenced
	// BlobStaging: residue of a crashed blob put.
	BlobStaging
	// BlobStray: an entry under objects/ that is neither a valid blob nor
	// staging residue (external mutilation; never touched automatically).
	BlobStray
	// BlobTrashed: provisionally removed by a two-phase sweep that did not
	// finish. Repair (and doctor -fix) restores it when still referenced
	// and purges it otherwise.
	BlobTrashed
)

// String names the state for reports.
func (s BlobState) String() string {
	switch s {
	case BlobReferenced:
		return "referenced"
	case BlobUnreferenced:
		return "unreferenced"
	case BlobStaging:
		return "blob-staging"
	case BlobStray:
		return "stray"
	case BlobTrashed:
		return "trashed"
	}
	return fmt.Sprintf("blob-state(%d)", int(s))
}

// BlobStatus is one scanned blob-store entry.
type BlobStatus struct {
	// Path is the entry's path relative to the backend root.
	Path string
	// Digest is the blob's digest ("" for staging/stray entries).
	Digest string
	// State is the classification.
	State BlobState
	// Size is the entry's byte size when known (-1 otherwise).
	Size int64
	// Refs is the number of manifest references (referenced blobs only).
	Refs int
}

// ScanBlobs classifies every entry of the run root's blob store against
// the committed manifests' references — the blob half of the doctor view.
// A run root without an objects directory yields an empty scan.
func ScanBlobs(b storage.Backend, runRoot string) ([]BlobStatus, error) {
	store, err := storage.OpenCAS(b, objectsPath(runRoot))
	if err != nil {
		return nil, err
	}
	if !b.Exists(store.Root()) {
		return nil, nil
	}
	refs, err := BlobRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	// Union-pin rule: on a hub-attached run the store is shared, so blobs
	// referenced only by peer runs still classify as referenced, not orphan.
	hp, err := peerPins(b, runRoot)
	if err != nil {
		return nil, err
	}
	mergePins(refs, hp)
	blobs, staging, stray, err := store.List()
	if err != nil {
		return nil, err
	}
	var out []BlobStatus
	for _, blob := range blobs {
		st := BlobStatus{Path: store.Path(blob.Digest), Digest: blob.Digest, Size: blob.Size}
		if n := refs[blob.Digest]; n > 0 {
			st.State, st.Refs = BlobReferenced, n
		} else {
			st.State = BlobUnreferenced
		}
		out = append(out, st)
	}
	for _, p := range staging {
		out = append(out, BlobStatus{Path: p, State: BlobStaging, Size: -1})
	}
	for _, p := range stray {
		out = append(out, BlobStatus{Path: p, State: BlobStray, Size: -1})
	}
	trash, err := store.ListTrash()
	if err != nil {
		return nil, err
	}
	for _, t := range trash {
		out = append(out, BlobStatus{
			Path: store.Root() + "/.trash/" + t.Digest, Digest: t.Digest,
			State: BlobTrashed, Size: t.Size, Refs: refs[t.Digest],
		})
	}
	return out, nil
}

// DedupifyReport records what a checkpoint conversion stored and reused.
type DedupifyReport struct {
	// BlobsPut counts blobs written (new content).
	BlobsPut int
	// BlobsReused counts payloads whose blob already existed.
	BlobsReused int
	// BlobBytesWritten totals bytes of new blobs.
	BlobBytesWritten int64
	// BytesDeduped totals payload bytes that cost nothing (reused blobs).
	BytesDeduped int64
}

// Dedupify converts a committed plain checkpoint to content-addressed form
// in place: every weight-tensor and optimizer-group payload is stored as a
// blob (via the raw extent surface — no decode), the LTSF/LTOS containers
// are replaced by manifests, and the directory is republished under the
// commit protocol, so a crash mid-conversion leaves a committed, readable
// checkpoint at every instant. Already-dedup directories are a no-op.
//
// On a rename-capable backend the directory is re-staged and atomically
// renamed over itself. On a no-rename backend (object stores) the commit
// transaction cannot be reused — Begin clears the final directory, which
// here IS the input — so the conversion publishes in place instead:
//
//  1. manifests are PUT under their final keys as unlisted extras (the
//     commit contract checks only listed files, so the directory stays
//     committed under the old marker);
//  2. one marker PUT atomically swaps the file listing — manifests in,
//     payload containers and manifest.json out (manifest.json must go
//     unlisted so step 3 can rewrite it without a torn window);
//  3. manifest.json is rewritten (Dedup, RefGen) while unlisted;
//  4. a second marker PUT re-lists manifest.json under its new sum;
//  5. the now-unlisted LTSF/LTOS containers are deleted.
//
// A crash between any two steps leaves the directory committed — readers
// see the plain form until step 5 removes model.ltsf, the dedup form after
// — and a re-run converges: before step 5 the plain containers still
// exist, so the whole conversion replays idempotently; after it, the
// IsDedup no-op path sweeps any leftover unlisted shard containers.
func Dedupify(b storage.Backend, dir string, chunkBytes int) (*DedupifyReport, error) {
	rep := &DedupifyReport{}
	if IsDedup(b, dir) {
		if !storage.RenameSupported(b) {
			if err := sweepUnlistedShardFiles(b, dir); err != nil {
				return nil, err
			}
		}
		return rep, nil
	}
	marker, err := ReadCommitMarker(b, dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: dedupify %s: only committed checkpoints convert: %w", dir, err)
	}
	store, err := storeFor(b, dir)
	if err != nil {
		return nil, err
	}
	// Phase 1 hashes every extent without touching the store, so the full
	// digest set can be journaled before the first blob is published —
	// the same record-precedes-blobs ordering the dedup save path uses.
	type pendingBlob struct {
		digest string
		size   int64
		open   func() (io.ReadCloser, error)
	}
	var pendings []pendingBlob
	var digests []string
	encodeOf := func(open func() (io.ReadCloser, error)) func(io.Writer) (int64, error) {
		return func(w io.Writer) (int64, error) {
			rc, err := open()
			if err != nil {
				return 0, err
			}
			n, err := io.Copy(w, rc)
			if cerr := rc.Close(); err == nil {
				err = cerr
			}
			return n, err
		}
	}
	put := func(extentOpen func() (io.ReadCloser, error), size int64) (string, uint32, error) {
		digest, crc, err := hashStream(size, encodeOf(extentOpen))
		if err != nil {
			return "", 0, err
		}
		pendings = append(pendings, pendingBlob{digest: digest, size: size, open: extentOpen})
		digests = append(digests, digest)
		return digest, crc, nil
	}

	// Weights: blob every tensor extent in payload order, so the manifest
	// order (and any later materialization) matches the original container
	// byte for byte.
	lr, err := OpenLTSF(b, dir+"/model.ltsf")
	if err != nil {
		return nil, fmt.Errorf("ckpt: dedupify %s: %w", dir, err)
	}
	type ordered struct {
		name string
		meta ltsfTensorMeta
	}
	var tensors []ordered
	for name, meta := range lr.hdr.Tensors {
		tensors = append(tensors, ordered{name, meta})
	}
	sort.Slice(tensors, func(i, j int) bool {
		if tensors[i].meta.Offsets[0] != tensors[j].meta.Offsets[0] {
			return tensors[i].meta.Offsets[0] < tensors[j].meta.Offsets[0]
		}
		return tensors[i].name < tensors[j].name
	})
	wm := &WeightManifest{Version: FormatVersion, Model: lr.Model()}
	for _, t := range tensors {
		rt, err := lr.RawTensor(t.name)
		if err != nil {
			return nil, err
		}
		digest, crc, err := put(func() (io.ReadCloser, error) {
			_, rc, err := lr.OpenRaw(t.name)
			return rc, err
		}, rt.Size)
		if err != nil {
			return nil, fmt.Errorf("ckpt: dedupify %s: tensor %q: %w", dir, t.name, err)
		}
		if crc != rt.CRC32 {
			return nil, fmt.Errorf("ckpt: dedupify %s: tensor %q payload CRC %08x, header says %08x", dir, t.name, crc, rt.CRC32)
		}
		wm.Tensors = append(wm.Tensors, WeightEntry{
			Name: t.name, DType: rt.DType, Shape: rt.Shape,
			Size: rt.Size, CRC32: rt.CRC32, Digest: digest,
		})
	}

	// Optimizer shards: blob every group extent of every rank file found.
	var shardMans []rankManifest
	for rank := 0; ; rank++ {
		name := dir + "/" + ShardFileName(rank)
		if !b.Exists(name) {
			break
		}
		h, err := ReadShardHeader(b, name)
		if err != nil {
			return nil, fmt.Errorf("ckpt: dedupify %s: %w", dir, err)
		}
		payloadOff := h.FileBytes - h.PayloadBytes
		sm := &ShardManifest{
			Version: FormatVersion, Rank: h.Rank, WorldSize: h.WorldSize,
			Step: h.Step, Layout: h.Layout.String(),
		}
		for _, g := range h.Groups {
			size := g.Offsets[1] - g.Offsets[0]
			off := payloadOff + g.Offsets[0]
			digest, crc, err := put(func() (io.ReadCloser, error) {
				return b.OpenRange(name, off, size)
			}, size)
			if err != nil {
				return nil, fmt.Errorf("ckpt: dedupify %s: rank %d group %d: %w", dir, rank, g.Index, err)
			}
			if crc != g.CRC32 {
				return nil, fmt.Errorf("ckpt: dedupify %s: rank %d group %d CRC %08x, header says %08x", dir, rank, g.Index, crc, g.CRC32)
			}
			sm.Groups = append(sm.Groups, ShardGroupEntry{
				Index: g.Index, Numel: g.Numel, ShardLen: g.ShardLen,
				NoDecay: g.NoDecay, Layer: g.Layer,
				Size: size, CRC32: g.CRC32, Digest: digest,
			})
		}
		shardMans = append(shardMans, rankManifest{rank, sm})
	}

	// Journal the reference record, then publish the blobs it pins.
	gen, err := appendRefRecord(b, dir, marker.Step, digests)
	if err != nil {
		return nil, err
	}
	for _, p := range pendings {
		wrote, err := store.PutStream(p.digest, encodeOf(p.open))
		if err != nil {
			return nil, fmt.Errorf("ckpt: dedupify %s: blob %s: %w", dir, p.digest, err)
		}
		if wrote {
			rep.BlobsPut++
			rep.BlobBytesWritten += p.size
		} else {
			rep.BlobsReused++
			rep.BytesDeduped += p.size
		}
	}

	if !storage.RenameSupported(b) {
		return rep, dedupifyInPlace(b, dir, marker, gen, wm, shardMans)
	}

	// Re-stage the directory: manifests in place of payload containers,
	// every other committed file copied verbatim.
	txn, err := Begin(b, dir)
	if err != nil {
		return nil, err
	}
	defer txn.Abort()
	sb, staging := txn.Backend(), txn.Dir()
	if err := WriteWeightManifest(sb, staging+"/"+WeightManifestName, wm); err != nil {
		return nil, err
	}
	for _, rm := range shardMans {
		if err := WriteShardManifest(sb, staging+"/"+ShardManifestName(rm.rank), rm.man); err != nil {
			return nil, err
		}
	}
	skip := map[string]bool{"model.ltsf": true}
	for _, rm := range shardMans {
		skip[ShardFileName(rm.rank)] = true
	}
	names := make([]string, 0, len(marker.Files))
	for name := range marker.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if skip[name] {
			continue
		}
		data, err := b.ReadFile(dir + "/" + name)
		if err != nil {
			return nil, fmt.Errorf("ckpt: dedupify %s: copy %s: %w", dir, name, err)
		}
		if name == "manifest.json" {
			var man Manifest
			if err := json.Unmarshal(data, &man); err != nil {
				return nil, fmt.Errorf("ckpt: dedupify %s: decode manifest.json: %w", dir, err)
			}
			man.Dedup = true
			man.RefGen = gen
			if err := writeJSON(sb, staging+"/manifest.json", &man); err != nil {
				return nil, err
			}
			continue
		}
		if err := sb.WriteFile(staging+"/"+name, data); err != nil {
			return nil, err
		}
	}
	if err := txn.Commit(marker.Step); err != nil {
		return nil, err
	}
	return rep, nil
}

// rankManifest pairs one rank's shard manifest with its rank for staging.
type rankManifest struct {
	rank int
	man  *ShardManifest
}

// dedupifyInPlace is Dedupify's no-rename publication tail (steps 1–5 of
// the protocol described on Dedupify). The blobs and the ref record are
// already durable when it runs; every individual write here is an atomic
// whole-object PUT, and the directory verifies as committed between any
// two of them.
func dedupifyInPlace(b storage.Backend, dir string, marker CommitMarker, gen int64,
	wm *WeightManifest, shardMans []rankManifest) error {

	// Step 1: PUT the manifests under their final keys. They are not listed
	// in the current marker, so the directory's commit contract is
	// untouched; record their sums for the marker swap.
	sums := map[string]FileSum{}
	putSummed := func(name string, data []byte) error {
		if err := b.WriteFile(dir+"/"+name, data); err != nil {
			return err
		}
		sums[name] = FileSum{Size: int64(len(data)), CRC32: crc32.ChecksumIEEE(data)}
		return nil
	}
	wdata, err := encodeManifest(ltmfMagic, wm)
	if err != nil {
		return err
	}
	if err := putSummed(WeightManifestName, wdata); err != nil {
		return fmt.Errorf("ckpt: dedupify %s: %w", dir, err)
	}
	for _, rm := range shardMans {
		sdata, err := encodeManifest(ltomMagic, rm.man)
		if err != nil {
			return err
		}
		if err := putSummed(ShardManifestName(rm.rank), sdata); err != nil {
			return fmt.Errorf("ckpt: dedupify %s: %w", dir, err)
		}
	}

	// Step 2: one marker PUT swaps the listing — manifests in, payload
	// containers out. manifest.json goes unlisted too: it must be rewritten
	// (Dedup, RefGen) and a listed file can never change content without a
	// window in which the marker's CRC is wrong.
	drop := map[string]bool{"model.ltsf": true, "manifest.json": true}
	for _, rm := range shardMans {
		drop[ShardFileName(rm.rank)] = true
	}
	m2 := CommitMarker{Version: FormatVersion, Step: marker.Step, Files: map[string]FileSum{}}
	for name, sum := range marker.Files {
		if !drop[name] {
			m2.Files[name] = sum
		}
	}
	for name, sum := range sums {
		m2.Files[name] = sum
	}
	if err := writeJSON(b, dir+"/"+CommitMarkerName, &m2); err != nil {
		return fmt.Errorf("ckpt: dedupify %s: swap marker: %w", dir, err)
	}

	// Step 3: rewrite manifest.json while unlisted.
	mdata, err := b.ReadFile(dir + "/manifest.json")
	if err != nil {
		return fmt.Errorf("ckpt: dedupify %s: read manifest.json: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(mdata, &man); err != nil {
		return fmt.Errorf("ckpt: dedupify %s: decode manifest.json: %w", dir, err)
	}
	man.Dedup = true
	man.RefGen = gen
	newMan, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: dedupify %s: marshal manifest.json: %w", dir, err)
	}
	newMan = append(newMan, '\n')
	if err := b.WriteFile(dir+"/manifest.json", newMan); err != nil {
		return fmt.Errorf("ckpt: dedupify %s: rewrite manifest.json: %w", dir, err)
	}

	// Step 4: re-list manifest.json under its new sum.
	m2.Files["manifest.json"] = FileSum{Size: int64(len(newMan)), CRC32: crc32.ChecksumIEEE(newMan)}
	if err := writeJSON(b, dir+"/"+CommitMarkerName, &m2); err != nil {
		return fmt.Errorf("ckpt: dedupify %s: reseal marker: %w", dir, err)
	}

	// Step 5: drop the now-unlisted payload containers. model.ltsf first —
	// its disappearance is what flips readers to the dedup form.
	if err := b.Remove(dir + "/model.ltsf"); err != nil && !storage.IsNotExist(err) {
		return fmt.Errorf("ckpt: dedupify %s: remove model.ltsf: %w", dir, err)
	}
	for _, rm := range shardMans {
		if err := b.Remove(dir + "/" + ShardFileName(rm.rank)); err != nil && !storage.IsNotExist(err) {
			return fmt.Errorf("ckpt: dedupify %s: remove %s: %w", dir, ShardFileName(rm.rank), err)
		}
	}
	return nil
}

// sweepUnlistedShardFiles removes LTOS containers a crashed no-rename
// conversion left behind after its marker swap (they are unlisted extras —
// harmless to readers, but dead weight). Listed shard files are never
// touched.
func sweepUnlistedShardFiles(b storage.Backend, dir string) error {
	marker, err := ReadCommitMarker(b, dir)
	if err != nil {
		return nil // not committed: nothing to judge against
	}
	// The crashed conversion may have removed some ranks' containers
	// already, so missing files cannot end the scan — walk every rank the
	// dedup form manifests, which is exactly the set the conversion was
	// deleting when it died.
	for _, rank := range shardManifestRanks(b, dir) {
		name := ShardFileName(rank)
		if !b.Exists(dir + "/" + name) {
			continue
		}
		if _, listed := marker.Files[name]; listed {
			continue
		}
		if err := b.Remove(dir + "/" + name); err != nil {
			return fmt.Errorf("ckpt: dedupify %s: sweep %s: %w", dir, name, err)
		}
	}
	return nil
}
