// Incremental, generational blob reference maintenance.
//
// PR 4's GC derived blob refcounts by re-reading every committed manifest
// under the run root — O(run length) per sweep, the exact cost that grows
// without bound over a long training run. This file makes reference
// maintenance per-save bookkeeping instead: every content-addressed save
// appends one compact record (digest set + generation number) to the
// journaled ref index under `objects/refs/` *before* the first blob is
// published, so at any instant the union of journal records over-
// approximates the set of referenced blobs — including blobs of saves
// still in flight, whose manifests exist nowhere yet.
//
// Generation numbering: a run-wide save counter, one per journal append.
// The checkpoint's manifest.json records its generation (`ref_gen`), which
// binds a published directory to exactly one journal record; an older
// record for the same key (a checkpoint replaced in place) is thereby
// provably superseded, and its exclusive digests are exactly the blobs
// whose youngest reference died with it.
//
// Sweeping comes in two modes:
//
//   - GCGenerational examines only blobs whose youngest reference falls in
//     the generations being retired (superseded records, or checkpoints a
//     retention policy just dropped): candidate digests come from the
//     retired records, survivors are whatever any remaining record (or
//     recordless directory manifest) still pins. Cost is O(retired
//     generations + live index), independent of run length, and it never
//     lists the blob store.
//   - GC (full) keeps the old whole-history mark-and-sweep as the
//     verification and repair path: refcounts are re-derived from every
//     manifest, the whole store is swept against them, and the ref index
//     is validated against the manifests (divergent or missing records are
//     rewritten, superseded ones retired, stale ones reported).
//
// The index is bookkeeping, never ground truth: if it is missing, stale or
// corrupt, ReconcileRefIndex (run by Repair, and by `doctor -fix`) rebuilds
// it from the manifests. Losing the index can cost reclaim work — a pinned
// blob kept too long — never a referenced blob.
package ckpt

import (
	"fmt"
	"sort"
	"strings"

	"llmtailor/internal/storage"
)

// RefKey returns a checkpoint directory's journal key: its base name.
func RefKey(dir string) string {
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		return dir[i+1:]
	}
	return dir
}

// refIndexFor opens the run root's ref index, following a hub attachment:
// an attached run journals under the hub store's `refs/<run-id>/`
// namespace, an unattached one under its own `objects/refs/`.
func refIndexFor(b storage.Backend, runRoot string) (*storage.RefIndex, error) {
	return storage.OpenRefIndex(b, objectsPath(runRoot))
}

// appendRefRecord journals the digest set of a save that is about to
// publish blobs. It must run before the first blob put: the record is what
// pins a mid-save blob against a concurrent sweep, because the manifests
// that will reference it exist nowhere until the commit.
//
// The append is idempotent per save content: when the journal already
// holds a record with this key and exactly this digest set (a retried save
// after a crash, or a replay of an identical state), its generation is
// reused and nothing is written — so a retried save produces a checkpoint
// byte-identical to the fault-free one, manifest ref_gen included.
func appendRefRecord(b storage.Backend, finalDir string, step int, digests []string) (int64, error) {
	ix, err := storage.OpenRefIndex(b, ObjectsRoot(finalDir))
	if err != nil {
		return 0, err
	}
	key := RefKey(finalDir)
	entries, _, _, err := ix.Entries()
	if err != nil {
		return 0, err
	}
	var maxGen int64
	want := storage.NormalizeDigests(append([]string(nil), digests...))
	reuse := int64(0)
	for _, e := range entries {
		if e.Generation > maxGen {
			maxGen = e.Generation
		}
		if e.Key != key {
			continue
		}
		if rec, err := ix.Read(e); err == nil && digestsEqual(rec.Digests, want) && e.Generation > reuse {
			reuse = e.Generation
		}
	}
	if reuse > 0 {
		return reuse, nil
	}
	gen := maxGen + 1
	rec := &storage.RefRecord{
		Version: FormatVersion, Key: key, Step: step,
		Generation: gen, Digests: want,
	}
	if err := ix.Append(rec); err != nil {
		return 0, err
	}
	return gen, nil
}

// --- manifest-side reference collection (ground truth) ---------------------

// dirRefs describes one run-root directory's dedup references, collected
// from its manifests — the ground truth the ref index is bookkeeping for.
type dirRefs struct {
	Path string
	// Key is the journal key: the base name with the staging suffix
	// stripped (an in-flight `K.tmp` tree journals under K).
	Key         string
	Sealed      bool // commit marker verifies (committed or unpublished)
	Staging     bool
	Quarantined bool
	// Dedup is true when the directory carries a weight manifest.
	Dedup bool
	// RefGen is the generation manifest.json binds the directory to
	// (0 = unbound: pre-ref-index checkpoint, or manifest unreadable).
	RefGen int64
	// Digests are the blob references read from the manifests (sorted,
	// with repeats for multiply-referenced digests).
	Digests []string
}

// readDirManifestDigests reads every blob digest a directory's manifests
// keep alive — referenced blobs plus their xor-parent ancestor chains
// (PinDigests): sweeping an ancestor would corrupt every delta blob below
// it, so pinning is always transitive. With bestEffort set, unreadable
// manifests contribute nothing instead of failing — the right treatment for
// quarantined, torn and mid-write staging trees, which may be arbitrarily
// damaged.
func readDirManifestDigests(b storage.Backend, path string, bestEffort bool) ([]string, error) {
	if !b.Exists(path + "/" + WeightManifestName) {
		return nil, nil
	}
	var out []string
	wm, err := ReadWeightManifest(b, path+"/"+WeightManifestName)
	if err != nil {
		if bestEffort {
			return nil, nil
		}
		return nil, err
	}
	out = append(out, wm.PinDigests()...)
	for _, r := range shardManifestRanks(b, path) {
		sm, err := ReadShardManifest(b, path+"/"+ShardManifestName(r))
		if err != nil {
			if bestEffort {
				continue
			}
			return nil, err
		}
		out = append(out, sm.PinDigests()...)
	}
	return out, nil
}

// listRunRoot lists a run root, treating an absent root as empty — a GC
// or audit racing the very first save of a run must see "nothing yet",
// not an error.
func listRunRoot(b storage.Backend, runRoot string) ([]string, error) {
	if runRoot != "" && !b.Exists(runRoot) {
		return nil, nil
	}
	entries, err := b.List(runRoot)
	if err != nil {
		if runRoot == "" {
			return nil, nil // an empty backend root lists as missing on OS
		}
		return nil, err
	}
	return entries, nil
}

// collectDirRefs walks the run root once and returns every directory's
// reference view. Committed directories with unreadable manifests are an
// error (external mutilation should be loud); staging, torn and
// quarantined directories are read best-effort — over-approximating their
// references is safe for GC, under-reading them is not, so whatever is
// readable pins.
func collectDirRefs(b storage.Backend, runRoot string) ([]dirRefs, error) {
	entries, err := listRunRoot(b, runRoot)
	if err != nil {
		return nil, fmt.Errorf("ckpt: blob refs: %w", err)
	}
	var out []dirRefs
	for _, e := range entries {
		if !strings.HasSuffix(e, "/") {
			continue
		}
		name := strings.TrimSuffix(e, "/")
		if name == ObjectsDirName {
			continue
		}
		path := name
		if runRoot != "" {
			path = runRoot + "/" + name
		}
		d := dirRefs{Path: path, Key: name}
		switch {
		case IsQuarantinePath(name):
			d.Quarantined = true
		case IsStagingPath(name):
			d.Staging = true
			d.Key = strings.TrimSuffix(name, stagingSuffix)
			d.Sealed = VerifyCommit(b, path) == nil
		default:
			d.Sealed = CheckCommit(b, path) == nil
		}
		// Sealed, non-staging directories must account exactly; everything
		// else (torn, quarantined, mid-write staging) pins best-effort.
		bestEffort := !d.Sealed || d.Staging || d.Quarantined
		d.Dedup = b.Exists(path + "/" + WeightManifestName)
		if man, err := ReadManifest(b, path); err == nil {
			d.RefGen = man.RefGen
		}
		digests, err := readDirManifestDigests(b, path, bestEffort)
		if err != nil {
			return nil, fmt.Errorf("ckpt: blob refs: %w", err)
		}
		d.Digests = digests
		out = append(out, d)
	}
	return out, nil
}

// BlobRefs derives the blob refcount map of a run root from its checkpoint
// manifests: committed directories, staging trees (sealed or not — a
// concurrent save's staged manifests must pin its blobs until the commit
// decides their fate), torn directories awaiting Repair, and quarantined
// directories (preserved evidence stays readable). Over-approximation is
// always safe for GC; the collection stays O(manifest bytes).
//
// This is the whole-history ground-truth read that the ref index exists to
// avoid on the hot path; GC (full) uses it for verification, the
// generational paths read the journal instead.
func BlobRefs(b storage.Backend, runRoot string) (map[string]int, error) {
	dirs, err := collectDirRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	refs := map[string]int{}
	for _, d := range dirs {
		for _, dg := range d.Digests {
			refs[dg]++
		}
	}
	return refs, nil
}

// --- index audit -----------------------------------------------------------

// RefState classifies one ref-index record (or index-related problem).
type RefState int

const (
	// RefOK: the record is bound to a live directory and agrees with it.
	RefOK RefState = iota
	// RefSuperseded: an older generation of a live key — the checkpoint was
	// replaced in place; the record's exclusive digests are reclaimable by
	// a generational sweep.
	RefSuperseded
	// RefOrphaned: no matching directory, or a generation newer than the
	// published one. Either an in-flight save (its directory does not exist
	// *yet*) or residue of a crashed one — indistinguishable online, so
	// sweeps pin these and only quiescent repair removes them.
	RefOrphaned
	// RefDivergent: the bound record's digest set fails to cover the
	// directory's manifests (external mutilation or a lost update); the
	// manifests win and the record is rewritten from them. A record that
	// pins MORE than the manifests is healthy, not divergent: a save
	// journals the xor-parent chains it plans before publishing, and a
	// payload may land raw (incompressible) after its planned parents were
	// already journaled — over-pinning that only a generation retirement
	// reclaims.
	RefDivergent
	// RefCorrupt: the record file is unreadable or self-inconsistent.
	RefCorrupt
	// RefMissing: a sealed dedup directory has no readable record — the
	// index under-approximates and must be reconciled before a generational
	// sweep can trust it (manifest fallbacks keep the blobs safe meanwhile).
	RefMissing
	// RefStaging: residue of a crashed record append.
	RefStaging
)

// String names the state for reports.
func (s RefState) String() string {
	switch s {
	case RefOK:
		return "ref-ok"
	case RefSuperseded:
		return "ref-superseded"
	case RefOrphaned:
		return "ref-orphaned"
	case RefDivergent:
		return "ref-divergent"
	case RefCorrupt:
		return "ref-corrupt"
	case RefMissing:
		return "ref-missing"
	case RefStaging:
		return "ref-staging"
	}
	return fmt.Sprintf("ref-state(%d)", int(s))
}

// RefStatus is one audited ref-index finding.
type RefStatus struct {
	// Path is the record file (or, for RefMissing, the checkpoint
	// directory) relative to the backend root.
	Path string
	// Key is the journal key involved.
	Key string
	// Generation is the record's generation (0 for RefMissing/RefStaging).
	Generation int64
	// State is the classification.
	State RefState
	// Detail explains non-OK states.
	Detail string
}

// auditedRecord pairs a journal entry with its classification.
type auditedRecord struct {
	entry  storage.RefEntry
	rec    *storage.RefRecord // nil when unreadable
	state  RefState
	detail string
}

// refAudit is the full classification of a run root's ref index against
// its directories' manifests.
type refAudit struct {
	records []auditedRecord
	staging []string // residue file names inside the refs dir
	// missing lists sealed dedup directories with no usable record.
	missing []dirRefs
}

// digestsCover reports whether set a pins every digest of set b (a ⊇ b).
// A record covering more than the manifests require is healthy — planned
// xor parents whose puts fell back to raw stay journaled — but a record
// missing manifest digests under-pins and must be rewritten.
func digestsCover(a, b []string) bool {
	have := map[string]bool{}
	for _, d := range storage.NormalizeDigests(append([]string(nil), a...)) {
		have[d] = true
	}
	for _, d := range storage.NormalizeDigests(append([]string(nil), b...)) {
		if !have[d] {
			return false
		}
	}
	return true
}

// digestsEqual compares two reference lists as sets.
func digestsEqual(a, b []string) bool {
	as := storage.NormalizeDigests(append([]string(nil), a...))
	bs := storage.NormalizeDigests(append([]string(nil), b...))
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// auditRefs classifies every journal record against the directories'
// manifest ground truth (as collected by collectDirRefs).
func auditRefs(b storage.Backend, runRoot string, dirs []dirRefs) (*refAudit, error) {
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	entries, staging, _, err := ix.Entries()
	if err != nil {
		return nil, err
	}
	byKey := map[string][]dirRefs{}
	for _, d := range dirs {
		byKey[d.Key] = append(byKey[d.Key], d)
	}
	audit := &refAudit{staging: staging}
	covered := map[string]bool{} // keys with a usable (OK) record
	for _, e := range entries {
		ar := auditedRecord{entry: e}
		rec, err := ix.Read(e)
		switch {
		case err != nil:
			ar.state, ar.detail = RefCorrupt, err.Error()
		default:
			ar.rec = rec
			ds, live := byKey[e.Key]
			if !live {
				ar.state = RefOrphaned
				ar.detail = "no matching checkpoint directory (in-flight save, or stale after a crash)"
				break
			}
			var bound int64
			var boundDir *dirRefs
			for i := range ds {
				if ds[i].RefGen == e.Generation {
					boundDir = &ds[i]
				}
				if ds[i].RefGen > bound {
					bound = ds[i].RefGen
				}
			}
			switch {
			case boundDir != nil:
				if boundDir.Sealed && !boundDir.Staging && !digestsCover(rec.Digests, boundDir.Digests) {
					ar.state = RefDivergent
					ar.detail = fmt.Sprintf("record fails to cover the manifests of %s", boundDir.Path)
				} else {
					ar.state = RefOK
					covered[e.Key] = true
				}
			case bound > 0 && e.Generation < bound:
				ar.state = RefSuperseded
				ar.detail = fmt.Sprintf("generation %d replaced by %d", e.Generation, bound)
			case bound > 0 && e.Generation > bound:
				ar.state = RefOrphaned
				ar.detail = fmt.Sprintf("generation %d newer than the published %d (in-flight replace, or crashed before commit)", e.Generation, bound)
			default:
				// The directory is unbound (pre-ref-index checkpoint, or a
				// mid-write tree without a manifest yet): no proof either
				// way, so the record pins and the key counts as covered
				// when the digest sets agree. Exception: when every
				// directory under the key is a sealed plain checkpoint,
				// nothing it stores can reference a blob, so the record is
				// an in-flight dedup conversion's advance pin or residue of
				// a crashed one — sweeps still honor it, quiescent repair
				// retires it.
				if allSealedPlain(ds) {
					ar.state = RefOrphaned
					ar.detail = "record over a sealed plain directory (in-flight dedup conversion, or stale after a crashed one)"
				} else if digestsCover(rec.Digests, dirRefsetOf(ds)) {
					ar.state = RefOK
					covered[e.Key] = true
				} else {
					ar.state = RefOrphaned
					ar.detail = "directory carries no generation binding (pre-ref-index checkpoint)"
				}
			}
		}
		audit.records = append(audit.records, ar)
	}
	for _, d := range dirs {
		if d.Dedup && d.Sealed && !d.Staging && !d.Quarantined && !covered[d.Key] {
			audit.missing = append(audit.missing, d)
		}
	}
	return audit, nil
}

// allSealedPlain reports whether every directory view of one key is a
// sealed, non-dedup checkpoint in its final location — a tree that by
// construction references no blob.
func allSealedPlain(ds []dirRefs) bool {
	for i := range ds {
		if ds[i].Dedup || ds[i].Staging || ds[i].Quarantined || !ds[i].Sealed {
			return false
		}
	}
	return len(ds) > 0
}

// dirRefsetOf returns the union digest list over directory views of one key.
func dirRefsetOf(ds []dirRefs) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Digests...)
	}
	return out
}

// ScanRefs audits the run root's ref index against its manifests — the
// index half of the doctor view. A run root without an index (or without
// an objects store at all) yields findings only for unrecorded dedup
// directories.
func ScanRefs(b storage.Backend, runRoot string) ([]RefStatus, error) {
	dirs, err := collectDirRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	audit, err := auditRefs(b, runRoot, dirs)
	if err != nil {
		return nil, err
	}
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	var out []RefStatus
	for _, ar := range audit.records {
		out = append(out, RefStatus{
			Path: ix.Dir() + "/" + ar.entry.Name, Key: ar.entry.Key,
			Generation: ar.entry.Generation, State: ar.state, Detail: ar.detail,
		})
	}
	for _, name := range audit.staging {
		out = append(out, RefStatus{
			Path: ix.Dir() + "/" + name, State: RefStaging,
			Detail: "residue of a crashed record append",
		})
	}
	for _, d := range audit.missing {
		out = append(out, RefStatus{
			Path: d.Path, Key: d.Key, State: RefMissing,
			Detail: "dedup checkpoint without a ref record (doctor -fix rebuilds the index)",
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// --- reconcile (rebuild-from-manifests) ------------------------------------

// RefReconcileReport records what a reconcile pass changed.
type RefReconcileReport struct {
	// RemovedRecords lists retired record files (orphaned, superseded,
	// corrupt, divergent-before-rewrite).
	RemovedRecords []string
	// WrittenRecords lists records appended or rewritten from manifests.
	WrittenRecords []string
	// StagingRemoved lists deleted append-staging residue.
	StagingRemoved []string
}

// Changed reports whether the pass modified anything.
func (r *RefReconcileReport) Changed() bool {
	return len(r.RemovedRecords)+len(r.WrittenRecords)+len(r.StagingRemoved) > 0
}

// ReconcileRefIndex rebuilds the ref index from the manifests: missing and
// divergent records of sealed dedup directories are (re)written, orphaned,
// superseded and corrupt records are removed, and append residue is
// cleaned. Like Repair — which runs it — reconcile assumes quiescence: an
// in-flight save's record is indistinguishable from a crashed one's, so
// only run this when no saver is active (the worst outcome of breaking the
// rule is a committed checkpoint whose record must be rebuilt again — the
// manifests always win, no blob is lost).
func ReconcileRefIndex(b storage.Backend, runRoot string) (*RefReconcileReport, error) {
	dirs, err := collectDirRefs(b, runRoot)
	if err != nil {
		return nil, err
	}
	audit, err := auditRefs(b, runRoot, dirs)
	if err != nil {
		return nil, err
	}
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	rep := &RefReconcileReport{}
	for _, name := range audit.staging {
		if err := ix.RemoveStaging(name); err != nil {
			return rep, err
		}
		rep.StagingRemoved = append(rep.StagingRemoved, name)
	}
	byPath := map[string]dirRefs{}
	for _, d := range dirs {
		byPath[d.Path] = d
	}
	for _, ar := range audit.records {
		switch ar.state {
		case RefOK:
			continue
		case RefDivergent:
			// The manifests win: rewrite the record in place (same
			// generation and key, corrected digest set).
			d, ok := findBound(dirs, ar.entry)
			if !ok {
				continue
			}
			if err := ix.Append(&storage.RefRecord{
				Version: FormatVersion, Key: ar.entry.Key, Step: stepOf(b, d.Path),
				Generation: ar.entry.Generation, Digests: d.Digests,
			}); err != nil {
				return rep, err
			}
			rep.WrittenRecords = append(rep.WrittenRecords, ar.entry.Name)
		default:
			if err := ix.Remove(ar.entry); err != nil {
				return rep, err
			}
			rep.RemovedRecords = append(rep.RemovedRecords, ar.entry.Name)
		}
	}
	// Recompute coverage after removals, then write records for sealed
	// dedup directories that lost (or never had) one. Bound directories
	// keep their manifest generation; unbound (pre-ref-index) ones get a
	// fresh generation — their manifests cannot be rewritten under a sealed
	// marker, so they stay unbound and conservatively pinned.
	for _, d := range audit.missing {
		gen := d.RefGen
		if gen <= 0 {
			if gen, err = ix.NextGeneration(); err != nil {
				return rep, err
			}
		}
		if err := ix.Append(&storage.RefRecord{
			Version: FormatVersion, Key: d.Key, Step: stepOf(b, d.Path),
			Generation: gen, Digests: storage.NormalizeDigests(append([]string(nil), d.Digests...)),
		}); err != nil {
			return rep, err
		}
		rep.WrittenRecords = append(rep.WrittenRecords, d.Key)
	}
	return rep, nil
}

// findBound returns the directory view a record's generation binds to.
func findBound(dirs []dirRefs, e storage.RefEntry) (dirRefs, bool) {
	for _, d := range dirs {
		if d.Key == e.Key && d.RefGen == e.Generation {
			return d, true
		}
	}
	return dirRefs{}, false
}

// stepOf recovers a directory's step for record bookkeeping (best effort).
func stepOf(b storage.Backend, path string) int {
	if man, err := ReadManifest(b, path); err == nil {
		return man.Step
	}
	return 0
}

// --- generational sweep ----------------------------------------------------

// livePins reads the given journal entries and returns the digest counts
// they pin, falling back to manifests for safety: any run-root directory
// whose key is not covered by a successfully read entry — a recordless
// dedup checkpoint, a corrupt record's directory, a quarantined tree, a
// pre-ref-index staging tree — contributes its readable manifest digests
// instead. Under-pinning is the one unforgivable failure here, so every
// fallback over-approximates.
func livePins(b storage.Backend, runRoot string, pinEnts []storage.RefEntry) (map[string]int, error) {
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	pins := map[string]int{}
	covered := map[string]bool{}
	for _, e := range pinEnts {
		rec, err := ix.Read(e)
		if err != nil {
			continue // corrupt: its directory (if any) is pinned below
		}
		covered[e.Key] = true
		for _, d := range rec.Digests {
			pins[d]++
		}
	}
	entries, err := listRunRoot(b, runRoot)
	if err != nil {
		return nil, fmt.Errorf("ckpt: live pins: %w", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e, "/") {
			continue
		}
		name := strings.TrimSuffix(e, "/")
		if name == ObjectsDirName {
			continue
		}
		key := strings.TrimSuffix(name, stagingSuffix)
		if covered[key] && !IsQuarantinePath(name) {
			continue
		}
		path := name
		if runRoot != "" {
			path = runRoot + "/" + name
		}
		digests, err := readDirManifestDigests(b, path, true)
		if err != nil {
			return nil, err
		}
		for _, d := range digests {
			pins[d]++
		}
	}
	return pins, nil
}

// indexRecheck returns the RecheckFunc the two-phase sweeps use: it
// re-reads the journal *after* candidates were trashed and returns the
// fresh pin set, skipping the entries (by file name) the sweep itself
// retired. Any record appended since the original pin snapshot — a
// concurrent save that reused a candidate blob — is seen here, because
// savers journal before their reuse check (see SweepRecheck's proof).
// On a hub-attached run every peer run's journal is re-read too: a save
// racing in another attached run journals against the same shared store
// and must be able to rescue a trashed candidate exactly like a local one.
func indexRecheck(b storage.Backend, runRoot string, exclude map[string]bool) storage.RecheckFunc {
	return func([]string) (map[string]int, error) {
		pins, err := journalPins(b, runRoot, exclude)
		if err != nil {
			return nil, err
		}
		peers, err := hubPeers(b, runRoot)
		if err != nil {
			return nil, err
		}
		for _, p := range peers {
			pp, err := journalPins(b, p.Root, nil)
			if err != nil {
				return nil, err
			}
			mergePins(pins, pp)
		}
		return pins, nil
	}
}

// handleTrash disposes of trash left by a sweep that crashed between
// trash and purge: referenced blobs (per the given pins) are restored,
// the rest purged. Returns (restored, purged).
func handleTrash(store storage.CAS, pins map[string]int) (restored, purged []string, err error) {
	trash, err := store.ListTrash()
	if err != nil {
		return nil, nil, err
	}
	for _, t := range trash {
		if pins[t.Digest] > 0 {
			if err := store.Restore(t.Digest); err != nil {
				return restored, purged, fmt.Errorf("ckpt: restore trashed blob %s: %w", t.Digest, err)
			}
			restored = append(restored, t.Digest)
		} else {
			if err := store.PurgeTrash(t.Digest); err != nil {
				return restored, purged, fmt.Errorf("ckpt: purge trashed blob %s: %w", t.Digest, err)
			}
			purged = append(purged, t.Digest)
		}
	}
	return restored, purged, nil
}

// GCGenerational is the incremental sweep: it retires provably superseded
// journal records (a checkpoint replaced in place binds its directory to a
// newer generation via manifest ref_gen) and removes exactly the retired
// records' digests that nothing live still pins. It reads the journal and
// one run-root listing — never the store fan-out, never the full manifest
// history — so its cost is O(retired generations + live index), not O(run
// length). Orphaned records (no matching directory) are pinned, not
// retired: an in-flight save looks exactly like that, and only quiescent
// repair may judge it.
//
// With dryRun set the sweep is computed and candidates are examined, but
// no blob or record is removed.
func GCGenerational(b storage.Backend, runRoot string, dryRun bool) (*GCReport, error) {
	rep := &GCReport{Mode: "generational", DryRun: dryRun}
	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	entries, staging, _, err := ix.Entries()
	if err != nil {
		return nil, err
	}
	rep.IndexRecords = len(entries)

	// One run-root listing decides key liveness; manifest.json is read only
	// for keys with churn (more than one record), keeping the scan cost
	// O(index), not O(run length).
	rootEntries, err := listRunRoot(b, runRoot)
	if err != nil {
		return nil, fmt.Errorf("ckpt: gc: %w", err)
	}
	liveDir := map[string]string{} // key -> published (non-staging) path
	liveKey := map[string]bool{}
	for _, e := range rootEntries {
		if !strings.HasSuffix(e, "/") {
			continue
		}
		name := strings.TrimSuffix(e, "/")
		if name == ObjectsDirName {
			continue
		}
		path := name
		if runRoot != "" {
			path = runRoot + "/" + name
		}
		key := strings.TrimSuffix(name, stagingSuffix)
		liveKey[key] = true
		liveKey[name] = true
		if key == name {
			liveDir[key] = path
		}
	}

	byKey := map[string][]storage.RefEntry{}
	for _, e := range entries {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	var pinned, retired []storage.RefEntry
	for key, ents := range byKey {
		if !liveKey[key] {
			// No directory: in-flight save or crash residue — pinned.
			pinned = append(pinned, ents...)
			continue
		}
		path, published := liveDir[key]
		if !published || len(ents) == 1 {
			pinned = append(pinned, ents...)
			continue
		}
		var bound int64
		if man, err := ReadManifest(b, path); err == nil {
			bound = man.RefGen
		}
		if bound <= 0 {
			pinned = append(pinned, ents...)
			continue
		}
		for _, e := range ents {
			if e.Generation < bound {
				retired = append(retired, e)
			} else {
				pinned = append(pinned, e)
			}
		}
	}

	// Candidate digests: whatever the retired generations referenced.
	var candidates []string
	var retiredReadable []storage.RefEntry
	for _, e := range retired {
		rec, err := ix.Read(e)
		if err != nil {
			// Unreadable superseded record: it pins nothing and names
			// nothing reclaimable; drop the file, full GC owns its blobs.
			retiredReadable = append(retiredReadable, e)
			continue
		}
		candidates = append(candidates, rec.Digests...)
		retiredReadable = append(retiredReadable, e)
	}
	candidates = storage.NormalizeDigests(candidates)

	// The dry run reports what a real sweep would retire; only the real
	// run actually removes the record files (below, after the blob sweep).
	retiredName := map[string]bool{}
	for _, e := range retiredReadable {
		rep.IndexRetired = append(rep.IndexRetired, e.Name)
		retiredName[e.Name] = true
	}

	store, err := storage.OpenCAS(b, objectsPath(runRoot))
	if err != nil {
		return nil, err
	}
	if len(candidates) > 0 {
		pins, err := livePins(b, runRoot, pinned)
		if err != nil {
			return rep, err
		}
		// Union-pin rule: on a hub-attached run the candidates live in a
		// shared store, so every peer run's references pin too.
		hp, err := peerPins(b, runRoot)
		if err != nil {
			return rep, err
		}
		mergePins(pins, hp)
		rep.Referenced = len(pins)
		sw, err := store.SweepDigests(candidates, pins, dryRun, indexRecheck(b, runRoot, retiredName))
		if sw != nil {
			rep.Examined = sw.Examined
			rep.Kept = sw.Kept
			rep.RemovedBlobs = sw.RemovedBlobs
			rep.BytesFreed = sw.BytesFreed
		}
		if err != nil {
			return rep, err
		}
	}
	if !dryRun {
		for _, e := range retiredReadable {
			if err := ix.Remove(e); err != nil {
				return rep, err
			}
		}
		// Trash left by a crashed earlier sweep: restore what the index
		// still pins, purge the rest.
		if trash, _ := store.ListTrash(); len(trash) > 0 {
			pins, err := indexRecheck(b, runRoot, retiredName)(nil)
			if err != nil {
				return rep, err
			}
			// Manifest fallbacks pin too (recordless dirs), as do all peer
			// runs of a hub-attached store.
			fallback, err := livePins(b, runRoot, nil)
			if err != nil {
				return rep, err
			}
			mergePins(pins, fallback)
			hp, err := peerPins(b, runRoot)
			if err != nil {
				return rep, err
			}
			mergePins(pins, hp)
			if _, purged, err := handleTrash(store, pins); err != nil {
				return rep, err
			} else {
				rep.RemovedBlobs = append(rep.RemovedBlobs, purged...)
			}
		}
		// Crash residue cleanup that needs no store listing: blob staging
		// files and record-append staging files.
		residue, err := store.StagingResidue()
		if err != nil {
			return rep, err
		}
		for _, p := range residue {
			if err := b.Remove(p); err != nil {
				return rep, fmt.Errorf("ckpt: gc: remove blob staging %s: %w", p, err)
			}
			rep.RemovedStaging = append(rep.RemovedStaging, p)
		}
		for _, name := range staging {
			if err := ix.RemoveStaging(name); err != nil {
				return rep, err
			}
			rep.RemovedStaging = append(rep.RemovedStaging, ix.Dir()+"/"+name)
		}
	}
	rep.IndexStale = len(pinned) - countLiveBound(pinned, byKey, liveDir)
	return rep, nil
}

// countLiveBound counts pinned entries that are the (single or newest)
// record of a published key — i.e. ordinary live records, not stale ones.
func countLiveBound(pinned []storage.RefEntry, byKey map[string][]storage.RefEntry, liveDir map[string]string) int {
	newest := map[string]int64{}
	for key, ents := range byKey {
		for _, e := range ents {
			if e.Generation > newest[key] {
				newest[key] = e.Generation
			}
		}
	}
	n := 0
	for _, e := range pinned {
		if _, ok := liveDir[e.Key]; ok && e.Generation == newest[e.Key] {
			n++
		}
	}
	return n
}

// --- retention -------------------------------------------------------------

// RetainReport records what a retention pass removed and swept.
type RetainReport struct {
	// Kept lists the retained committed checkpoint paths (newest last).
	Kept []string
	// Removed lists the retired checkpoint directory paths.
	Removed []string
	// RecordsRetired lists the journal record files retired with them.
	RecordsRetired []string
	// Examined is the number of candidate blobs the sweep looked at.
	Examined int
	// RemovedBlobs lists swept blob digests.
	RemovedBlobs []string
	// BytesFreed totals the swept blobs' sizes.
	BytesFreed int64
	// DryRun is set when nothing was actually removed.
	DryRun bool
}

// Retain drops all but the newest keepLast committed checkpoints under the
// run root and generationally sweeps the blobs whose youngest reference
// died with them: candidates come from the victims' journal records (or
// their manifests when no record exists), survivors are whatever the
// remaining records and recordless directories still pin. The latest
// pointer's target is never removed, whatever its age. Removal order is
// crash-safe: directories first, then their records, then the per-blob
// sweep — an interruption at any point leaves only over-pinned garbage
// (reclaimable by GC) and never an under-pinned referenced blob.
func Retain(b storage.Backend, runRoot string, keepLast int, dryRun bool) (*RetainReport, error) {
	if keepLast < 1 {
		return nil, fmt.Errorf("ckpt: retain: keep-last %d (want >= 1)", keepLast)
	}
	rep := &RetainReport{DryRun: dryRun}
	if runRoot != "" && !b.Exists(runRoot) {
		// Nothing saved yet (e.g. retention racing the first async save).
		return rep, nil
	}
	committed, err := List(b, runRoot)
	if err != nil {
		return nil, fmt.Errorf("ckpt: retain: %w", err)
	}
	latest, _ := Latest(b, runRoot)
	var victims []string
	for i, dir := range committed {
		if i < len(committed)-keepLast && dir != latest {
			victims = append(victims, dir)
		} else {
			rep.Kept = append(rep.Kept, dir)
		}
	}
	if len(victims) == 0 {
		return rep, nil
	}

	ix, err := refIndexFor(b, runRoot)
	if err != nil {
		return nil, err
	}
	entries, _, _, err := ix.Entries()
	if err != nil {
		return nil, err
	}
	victimKey := map[string]bool{}
	for _, v := range victims {
		victimKey[RefKey(v)] = true
	}
	var retired, remaining []storage.RefEntry
	for _, e := range entries {
		if victimKey[e.Key] {
			retired = append(retired, e)
		} else {
			remaining = append(remaining, e)
		}
	}

	// Candidate digests: the victims' records where available, their
	// manifests otherwise (pre-ref-index runs). A victim whose references
	// cannot be determined is still removed — its blobs stay pinned-in-
	// place until a full GC accounts for them.
	var candidates []string
	recorded := map[string]bool{}
	for _, e := range retired {
		if rec, err := ix.Read(e); err == nil {
			candidates = append(candidates, rec.Digests...)
			recorded[e.Key] = true
		}
	}
	for _, v := range victims {
		if recorded[RefKey(v)] {
			continue
		}
		digests, err := readDirManifestDigests(b, v, false)
		if err != nil {
			return nil, fmt.Errorf("ckpt: retain %s: %w", v, err)
		}
		candidates = append(candidates, digests...)
	}
	candidates = storage.NormalizeDigests(candidates)

	if !dryRun {
		for _, v := range victims {
			if err := b.Remove(v); err != nil {
				return rep, fmt.Errorf("ckpt: retain: remove %s: %w", v, err)
			}
			rep.Removed = append(rep.Removed, v)
		}
		for _, e := range retired {
			if err := ix.Remove(e); err != nil {
				return rep, err
			}
			rep.RecordsRetired = append(rep.RecordsRetired, e.Name)
		}
	} else {
		rep.Removed = append(rep.Removed, victims...)
		for _, e := range retired {
			rep.RecordsRetired = append(rep.RecordsRetired, e.Name)
		}
	}

	if len(candidates) > 0 {
		pins, err := livePins(b, runRoot, remaining)
		if err != nil {
			return rep, err
		}
		// Union-pin rule: peer runs attached to the same hub keep their
		// claim on any candidate this run's retention would drop.
		hp, err := peerPins(b, runRoot)
		if err != nil {
			return rep, err
		}
		mergePins(pins, hp)
		// In a dry run the victims still exist on disk; their manifest
		// digests must not count as pins or the sweep preview would be
		// empty. livePins only falls back to manifests for uncovered keys,
		// and victims' keys are uncovered once their records are excluded —
		// so subtract their manifest contribution explicitly.
		if dryRun {
			for _, v := range victims {
				digests, err := readDirManifestDigests(b, v, true)
				if err == nil {
					for _, d := range digests {
						if pins[d] > 0 {
							pins[d]--
						}
					}
				}
			}
		}
		exclude := map[string]bool{}
		for _, e := range retired {
			exclude[e.Name] = true
		}
		store, err := storage.OpenCAS(b, objectsPath(runRoot))
		if err != nil {
			return nil, err
		}
		sw, err := store.SweepDigests(candidates, pins, dryRun, indexRecheck(b, runRoot, exclude))
		if sw != nil {
			rep.Examined = sw.Examined
			rep.RemovedBlobs = sw.RemovedBlobs
			rep.BytesFreed = sw.BytesFreed
		}
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}
