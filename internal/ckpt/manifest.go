// Dedup checkpoint manifests.
//
// A content-addressed ("dedup") checkpoint stores no payload bytes of its
// own: weights and optimizer-group payloads live as blobs in the run
// root's `objects/` store, and the checkpoint directory carries two small
// manifest containers referencing them by digest:
//
//	model.ltmf                     weight manifest (magic LTMF)
//	zero/rank_NN_optim_states.ltom one shard manifest per rank (magic LTOM)
//
// Both use the same container framing as LTSF/LTOS — magic, little-endian
// uint64 header length, JSON header — with an empty payload section, so
// the existing commit-marker CRC machinery covers them unchanged. Entry
// order is the exact payload order a plain save would write, which is what
// makes materialization (AppendRaw splices in manifest order) byte-
// identical to a non-dedup save.
//
// Readers hold the same contract as every other container reader in this
// package: corrupt input — truncated, bit-flipped, adversarial digests or
// extents — surfaces as an error, never a panic or unbounded allocation.

package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
)

var (
	ltmfMagic = [4]byte{'L', 'T', 'M', 'F'}
	ltomMagic = [4]byte{'L', 'T', 'O', 'M'}
)

// WeightManifestName is the weight manifest's file name inside a dedup
// checkpoint directory (the role model.ltsf plays in a plain one).
const WeightManifestName = "model.ltmf"

// ShardManifestName returns the per-rank shard manifest name inside a
// dedup checkpoint directory.
func ShardManifestName(rank int) string {
	return fmt.Sprintf("zero/rank_%02d_optim_states.ltom", rank)
}

// WeightEntry references one tensor's stored payload blob. The fields
// mirror ltsfTensorMeta plus the content digest; Size and CRC32 describe
// the exact bytes AppendRaw splices back during materialization — always
// the UNCOMPRESSED payload, whatever codec the blob is stored under.
//
// Codec records how the blob landed in the CAS ("" for raw — which is also
// what every pre-codec manifest decodes as), Stored its on-backend size,
// and Parents the full xor-parent ancestor chain (direct parent first).
// Carrying the whole chain, not just the direct parent, is what lets GC pin
// ancestors transitively without walking blob headers.
type WeightEntry struct {
	Name    string   `json:"name"`
	DType   string   `json:"dtype"`
	Shape   []int    `json:"shape"`
	Size    int64    `json:"size"`
	CRC32   uint32   `json:"crc32"`
	Digest  string   `json:"digest"`
	Codec   string   `json:"codec,omitempty"`
	Stored  int64    `json:"stored,omitempty"`
	Parents []string `json:"parents,omitempty"`
}

// WeightManifest is the decoded model.ltmf: the model name plus tensor
// entries in payload order.
type WeightManifest struct {
	Version int           `json:"version"`
	Model   string        `json:"model"`
	Tensors []WeightEntry `json:"tensors"`
}

// Entry returns the named tensor's entry.
func (m *WeightManifest) Entry(name string) (WeightEntry, bool) {
	for _, e := range m.Tensors {
		if e.Name == name {
			return e, true
		}
	}
	return WeightEntry{}, false
}

// Digests returns every referenced blob digest in entry order (with
// repeats — the caller counts references).
func (m *WeightManifest) Digests() []string {
	out := make([]string, len(m.Tensors))
	for i, e := range m.Tensors {
		out[i] = e.Digest
	}
	return out
}

// PinDigests returns every digest this manifest keeps alive: the referenced
// blobs plus the xor-parent ancestors their decoding depends on. GC and the
// ref index must use this, not Digests — sweeping an ancestor would corrupt
// every delta blob below it.
func (m *WeightManifest) PinDigests() []string {
	out := m.Digests()
	for _, e := range m.Tensors {
		out = append(out, e.Parents...)
	}
	return out
}

// ShardGroupEntry references one optimizer group's payload blob. The
// embedded meta is what ShardFileWriter needs to rebuild the group's LTOS
// header entry; offsets are recomputed on materialization (a full save's
// payload is gap-free, so order determines them).
type ShardGroupEntry struct {
	Index    int      `json:"index"`
	Numel    int64    `json:"numel"`
	ShardLen int64    `json:"shard_len"`
	NoDecay  bool     `json:"no_decay"`
	Layer    string   `json:"layer,omitempty"`
	Size     int64    `json:"size"`
	CRC32    uint32   `json:"crc32"`
	Digest   string   `json:"digest"`
	Codec    string   `json:"codec,omitempty"`
	Stored   int64    `json:"stored,omitempty"`
	Parents  []string `json:"parents,omitempty"`
}

// Meta converts the entry back to the LTOS group metadata (offsets unset).
func (e ShardGroupEntry) Meta() ShardGroupMeta {
	m := ShardGroupMeta{Index: e.Index, Numel: e.Numel, ShardLen: e.ShardLen,
		NoDecay: e.NoDecay, Layer: e.Layer, CRC32: e.CRC32}
	return m
}

// ShardManifest is the decoded per-rank .ltom: the LTOS header fields plus
// group blob references in payload order.
type ShardManifest struct {
	Version   int               `json:"version"`
	Rank      int               `json:"rank"`
	WorldSize int               `json:"world_size"`
	Step      int               `json:"step"`
	Layout    string            `json:"layout"`
	Groups    []ShardGroupEntry `json:"groups"`
}

// Digests returns every referenced blob digest in group order.
func (m *ShardManifest) Digests() []string {
	out := make([]string, len(m.Groups))
	for i, g := range m.Groups {
		out[i] = g.Digest
	}
	return out
}

// PinDigests returns referenced blobs plus their xor-parent ancestors; see
// WeightManifest.PinDigests.
func (m *ShardManifest) PinDigests() []string {
	out := m.Digests()
	for _, g := range m.Groups {
		out = append(out, g.Parents...)
	}
	return out
}

// encodeManifest frames a manifest header into its container bytes.
func encodeManifest(magic [4]byte, hdr any) ([]byte, error) {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("ckpt: marshal manifest: %w", err)
	}
	out := make([]byte, 0, 12+len(hj))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(hj)))
	return append(out, hj...), nil
}

// decodeManifestHeader validates the container framing shared by LTMF and
// LTOM — magic, exact length-prefixed JSON header, no payload section —
// and unmarshals the header.
func decodeManifestHeader(data []byte, magic [4]byte, hdr any) error {
	if len(data) < 12 {
		return fmt.Errorf("ckpt: manifest truncated (%d bytes)", len(data))
	}
	for i := range magic {
		if data[i] != magic[i] {
			return fmt.Errorf("ckpt: manifest bad magic %q, want %q", data[:4], magic[:])
		}
	}
	hlen := binary.LittleEndian.Uint64(data[4:12])
	// Compare as uint64 against the real remainder: adversarial lengths
	// near MaxInt64 must not wrap any signed arithmetic.
	if hlen == 0 || hlen != uint64(len(data)-12) {
		return fmt.Errorf("ckpt: manifest header length %d, file holds %d", hlen, len(data)-12)
	}
	if err := json.Unmarshal(data[12:], hdr); err != nil {
		return fmt.Errorf("ckpt: decode manifest header: %w", err)
	}
	return nil
}

// validateBlobRef rejects inconsistent size/digest pairs.
func validateBlobRef(what string, size int64, digest string) error {
	if size < 0 {
		return fmt.Errorf("%s: negative blob size %d", what, size)
	}
	if !storage.ValidDigest(digest) {
		return fmt.Errorf("%s: malformed blob digest %q", what, digest)
	}
	return nil
}

// validateCodecRef rejects incoherent codec metadata on a manifest entry:
// unknown codecs, stored sizes or parent chains that contradict the codec,
// malformed or self-referential parents, chains past the resolver's depth
// bound.
func validateCodecRef(what, codec string, stored int64, parents []string, digest string) error {
	c, err := storage.ParseBlobCodec(codec)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	if c == storage.CodecXORParent {
		if len(parents) == 0 {
			return fmt.Errorf("%s: xor-parent codec with no parent chain", what)
		}
	} else if len(parents) > 0 {
		return fmt.Errorf("%s: codec %q carries a parent chain", what, c)
	}
	if c == storage.CodecRaw {
		if stored != 0 {
			return fmt.Errorf("%s: raw codec with stored size %d", what, stored)
		}
		return nil
	}
	if stored <= 0 {
		return fmt.Errorf("%s: codec %q with stored size %d", what, c, stored)
	}
	if len(parents) > storage.MaxParentDepth {
		return fmt.Errorf("%s: parent chain of %d exceeds depth bound %d", what, len(parents), storage.MaxParentDepth)
	}
	for _, p := range parents {
		if !storage.ValidDigest(p) {
			return fmt.Errorf("%s: malformed parent digest %q", what, p)
		}
		if p == digest {
			return fmt.Errorf("%s: blob lists itself as an ancestor", what)
		}
	}
	return nil
}

// DecodeWeightManifest parses and validates a weight manifest container.
// Every entry must be internally consistent: parseable dtype, positive
// dimensions whose product times the dtype size equals the blob size
// (division-checked so it cannot wrap), a well-formed digest, and no
// duplicate names.
func DecodeWeightManifest(data []byte) (*WeightManifest, error) {
	m := &WeightManifest{}
	if err := decodeManifestHeader(data, ltmfMagic, m); err != nil {
		return nil, err
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: weight manifest version %d, want %d", m.Version, FormatVersion)
	}
	seen := map[string]bool{}
	for _, e := range m.Tensors {
		if e.Name == "" || seen[e.Name] {
			return nil, fmt.Errorf("ckpt: weight manifest: missing or duplicate tensor name %q", e.Name)
		}
		seen[e.Name] = true
		if err := validateBlobRef("tensor "+e.Name, e.Size, e.Digest); err != nil {
			return nil, fmt.Errorf("ckpt: weight manifest: %w", err)
		}
		if err := validateCodecRef("tensor "+e.Name, e.Codec, e.Stored, e.Parents, e.Digest); err != nil {
			return nil, fmt.Errorf("ckpt: weight manifest: %w", err)
		}
		// The same dtype/shape/extent consistency pass OpenLTSF applies,
		// against a virtual payload of exactly the blob size.
		meta := ltsfTensorMeta{DType: e.DType, Shape: e.Shape, Offsets: [2]int64{0, e.Size}, CRC32: e.CRC32}
		if err := validateTensorMeta(e.Name, meta, e.Size); err != nil {
			return nil, fmt.Errorf("ckpt: weight manifest: %w", err)
		}
	}
	return m, nil
}

// DecodeShardManifest parses and validates a shard manifest container.
// Group entries must carry coherent geometry: a parseable layout, non-
// negative shard lengths whose 12× payload equals the blob size
// (overflow-checked), and well-formed digests.
func DecodeShardManifest(data []byte) (*ShardManifest, error) {
	m := &ShardManifest{}
	if err := decodeManifestHeader(data, ltomMagic, m); err != nil {
		return nil, err
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: shard manifest version %d, want %d", m.Version, FormatVersion)
	}
	if _, err := optim.ParseLayoutKind(m.Layout); err != nil {
		return nil, fmt.Errorf("ckpt: shard manifest: %w", err)
	}
	if m.WorldSize <= 0 || m.Rank < 0 || m.Rank >= m.WorldSize {
		return nil, fmt.Errorf("ckpt: shard manifest: rank %d of world size %d", m.Rank, m.WorldSize)
	}
	seen := map[int]bool{}
	for _, g := range m.Groups {
		if g.Index < 0 || seen[g.Index] {
			return nil, fmt.Errorf("ckpt: shard manifest: invalid or duplicate group index %d", g.Index)
		}
		seen[g.Index] = true
		if err := validateBlobRef(fmt.Sprintf("group %d", g.Index), g.Size, g.Digest); err != nil {
			return nil, fmt.Errorf("ckpt: shard manifest: %w", err)
		}
		if err := validateCodecRef(fmt.Sprintf("group %d", g.Index), g.Codec, g.Stored, g.Parents, g.Digest); err != nil {
			return nil, fmt.Errorf("ckpt: shard manifest: %w", err)
		}
		// Check the geometry by division, never by multiplication: unlike
		// the LTOS reader (where the extent is physically bounded by the
		// file), Size here is an unbounded manifest claim, and a crafted
		// ShardLen can wrap 12×ShardLen around int64 onto Size while
		// staying below it.
		if g.ShardLen < 0 || g.Size%12 != 0 || g.ShardLen != g.Size/12 {
			return nil, fmt.Errorf("ckpt: shard manifest: group %d blob %d bytes, want 12×%d", g.Index, g.Size, g.ShardLen)
		}
		if g.Numel < 0 || g.Numel > math.MaxInt64-int64(m.WorldSize) {
			return nil, fmt.Errorf("ckpt: shard manifest: group %d numel %d", g.Index, g.Numel)
		}
	}
	return m, nil
}

// WriteWeightManifest encodes and writes a weight manifest file.
func WriteWeightManifest(b storage.Backend, name string, m *WeightManifest) error {
	data, err := encodeManifest(ltmfMagic, m)
	if err != nil {
		return err
	}
	return b.WriteFile(name, data)
}

// ReadWeightManifest reads and validates a weight manifest file.
func ReadWeightManifest(b storage.Backend, name string) (*WeightManifest, error) {
	data, err := b.ReadFile(name)
	if err != nil {
		return nil, err
	}
	m, err := DecodeWeightManifest(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	return m, nil
}

// WriteShardManifest encodes and writes a per-rank shard manifest file.
func WriteShardManifest(b storage.Backend, name string, m *ShardManifest) error {
	data, err := encodeManifest(ltomMagic, m)
	if err != nil {
		return err
	}
	return b.WriteFile(name, data)
}

// ReadShardManifest reads and validates a per-rank shard manifest file.
func ReadShardManifest(b storage.Backend, name string) (*ShardManifest, error) {
	data, err := b.ReadFile(name)
	if err != nil {
		return nil, err
	}
	m, err := DecodeShardManifest(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	return m, nil
}
