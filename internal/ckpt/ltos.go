package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/zero"
)

// ShardGroupMeta describes one parameter group's shard inside an LTOS file.
type ShardGroupMeta struct {
	// Index is the group's global index in the optimizer layout.
	Index int `json:"index"`
	// Numel is the *unpadded* element count of the full group.
	Numel int64 `json:"numel"`
	// ShardLen is this rank's (padded) shard length.
	ShardLen int64 `json:"shard_len"`
	// NoDecay mirrors the group's weight-decay exemption.
	NoDecay bool `json:"no_decay"`
	// Layer names the owning layer ("layer.3", "embed_tokens", ...);
	// empty in two-group layouts.
	Layer string `json:"layer,omitempty"`
	// Offsets is the [start, end) payload range of the group's data:
	// master, exp_avg and exp_avg_sq concatenated, FP32 little-endian.
	Offsets [2]int64 `json:"data_offsets"`
	// CRC32 covers the group's payload range.
	CRC32 uint32 `json:"crc32"`
}

type ltosHeader struct {
	Version   int              `json:"version"`
	Rank      int              `json:"rank"`
	WorldSize int              `json:"world_size"`
	Step      int              `json:"step"`
	Layout    string           `json:"layout"`
	Groups    []ShardGroupMeta `json:"groups"`
}

// ShardFile is the fully decoded contents of one rank's optimizer file.
type ShardFile struct {
	Rank      int
	WorldSize int
	Step      int
	Layout    optim.LayoutKind
	// Groups holds the decoded shards in file order, alongside their
	// metadata (same indices).
	Meta   []ShardGroupMeta
	Shards []*zero.GroupShard
}

// GroupByIndex returns the shard and metadata of the group with the given
// global layout index, or an error if the file does not contain it (partial
// checkpoints omit unsaved layers' groups).
func (f *ShardFile) GroupByIndex(idx int) (*zero.GroupShard, ShardGroupMeta, error) {
	for i, m := range f.Meta {
		if m.Index == idx {
			return f.Shards[i], m, nil
		}
	}
	return nil, ShardGroupMeta{}, fmt.Errorf("ckpt: rank %d shard has no group %d", f.Rank, idx)
}

// ShardFileName returns the conventional per-rank optimizer file name,
// mirroring DeepSpeed's bf16_zero_pp_rank_N_mp_rank_00_optim_states.pt.
func ShardFileName(rank int) string {
	return fmt.Sprintf("zero/rank_%02d_optim_states.ltos", rank)
}

// WriteShardFile serialises one rank's shards of the given groups. meta and
// shards must be parallel slices.
func WriteShardFile(b storage.Backend, name string, rank, worldSize, step int,
	layout optim.LayoutKind, meta []ShardGroupMeta, shards []*zero.GroupShard) error {
	if len(meta) != len(shards) {
		return fmt.Errorf("ckpt: %d metas vs %d shards", len(meta), len(shards))
	}
	hdr := ltosHeader{
		Version: FormatVersion, Rank: rank, WorldSize: worldSize,
		Step: step, Layout: layout.String(),
		Groups: make([]ShardGroupMeta, len(meta)),
	}
	var payload []byte
	for i, m := range meta {
		s := shards[i]
		if s.Rank != rank {
			return fmt.Errorf("ckpt: shard for rank %d written into rank %d file", s.Rank, rank)
		}
		start := int64(len(payload))
		payload = appendF32(payload, s.Master)
		payload = appendF32(payload, s.ExpAvg)
		payload = appendF32(payload, s.ExpAvgSq)
		end := int64(len(payload))
		m.ShardLen = s.Numel()
		m.Offsets = [2]int64{start, end}
		m.CRC32 = crc32.ChecksumIEEE(payload[start:end])
		hdr.Groups[i] = m
	}
	return writeContainer(b, name, ltosMagic, hdr, payload)
}

func appendF32(dst []byte, src []float32) []byte {
	for _, v := range src {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

func decodeF32(src []byte, n int64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
	return out
}

// ReadShardFile reads and decodes an entire rank optimizer file. There is
// deliberately no lazy variant: like DeepSpeed's pickled optimizer states,
// a shard file must be fully loaded before any group can be used (§5.4).
func ReadShardFile(b storage.Backend, name string) (*ShardFile, error) {
	raw, err := b.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("ckpt: %s: truncated (%d bytes)", name, len(raw))
	}
	for i := range ltosMagic {
		if raw[i] != ltosMagic[i] {
			return nil, fmt.Errorf("ckpt: %s: bad magic %q", name, raw[:4])
		}
	}
	hlen := int64(binary.LittleEndian.Uint64(raw[4:12]))
	if hlen <= 0 || 12+hlen > int64(len(raw)) {
		return nil, fmt.Errorf("ckpt: %s: corrupt header length %d", name, hlen)
	}
	var hdr ltosHeader
	if err := json.Unmarshal(raw[12:12+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("ckpt: %s: decode header: %w", name, err)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: %s: version %d, want %d", name, hdr.Version, FormatVersion)
	}
	layout, err := optim.ParseLayoutKind(hdr.Layout)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	payload := raw[12+hlen:]

	f := &ShardFile{
		Rank: hdr.Rank, WorldSize: hdr.WorldSize, Step: hdr.Step,
		Layout: layout,
		Meta:   hdr.Groups,
		Shards: make([]*zero.GroupShard, len(hdr.Groups)),
	}
	for i, m := range hdr.Groups {
		if m.Offsets[0] < 0 || m.Offsets[1] > int64(len(payload)) || m.Offsets[0] > m.Offsets[1] {
			return nil, fmt.Errorf("ckpt: %s: group %d offsets %v out of range", name, m.Index, m.Offsets)
		}
		seg := payload[m.Offsets[0]:m.Offsets[1]]
		if got := crc32.ChecksumIEEE(seg); got != m.CRC32 {
			return nil, fmt.Errorf("ckpt: %s: group %d CRC mismatch", name, m.Index)
		}
		if int64(len(seg)) != m.ShardLen*12 {
			return nil, fmt.Errorf("ckpt: %s: group %d payload %d bytes, want %d", name, m.Index, len(seg), m.ShardLen*12)
		}
		f.Shards[i] = &zero.GroupShard{
			GroupIndex: m.Index,
			Rank:       hdr.Rank,
			Master:     decodeF32(seg, m.ShardLen),
			ExpAvg:     decodeF32(seg[m.ShardLen*4:], m.ShardLen),
			ExpAvgSq:   decodeF32(seg[m.ShardLen*8:], m.ShardLen),
		}
	}
	return f, nil
}

// metaForGroup builds a group's shard metadata from the layout.
func metaForGroup(g optim.Group) ShardGroupMeta {
	m := ShardGroupMeta{Index: g.Index, Numel: g.Numel, NoDecay: g.NoDecay}
	if g.HasLayer {
		m.Layer = g.Layer.String()
	}
	return m
}

// LayerRefOf parses the meta's layer field.
func (m ShardGroupMeta) LayerRefOf() (modelcfg.LayerRef, bool) {
	if m.Layer == "" {
		return modelcfg.LayerRef{}, false
	}
	ref, err := modelcfg.ParseLayerRef(m.Layer)
	if err != nil {
		return modelcfg.LayerRef{}, false
	}
	return ref, true
}
