package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/zero"
)

// ShardGroupMeta describes one parameter group's shard inside an LTOS file.
type ShardGroupMeta struct {
	// Index is the group's global index in the optimizer layout.
	Index int `json:"index"`
	// Numel is the *unpadded* element count of the full group.
	Numel int64 `json:"numel"`
	// ShardLen is this rank's (padded) shard length.
	ShardLen int64 `json:"shard_len"`
	// NoDecay mirrors the group's weight-decay exemption.
	NoDecay bool `json:"no_decay"`
	// Layer names the owning layer ("layer.3", "embed_tokens", ...);
	// empty in two-group layouts.
	Layer string `json:"layer,omitempty"`
	// Offsets is the [start, end) payload range of the group's data:
	// master, exp_avg and exp_avg_sq concatenated, FP32 little-endian.
	Offsets [2]int64 `json:"data_offsets"`
	// CRC32 covers the group's payload range.
	CRC32 uint32 `json:"crc32"`
}

type ltosHeader struct {
	Version   int              `json:"version"`
	Rank      int              `json:"rank"`
	WorldSize int              `json:"world_size"`
	Step      int              `json:"step"`
	Layout    string           `json:"layout"`
	Groups    []ShardGroupMeta `json:"groups"`
}

// ShardFile is the fully decoded contents of one rank's optimizer file.
type ShardFile struct {
	Rank      int
	WorldSize int
	Step      int
	Layout    optim.LayoutKind
	// Groups holds the decoded shards in file order, alongside their
	// metadata (same indices).
	Meta   []ShardGroupMeta
	Shards []*zero.GroupShard
	// FileBytes is the on-disk container size, for I/O accounting.
	FileBytes int64
}

// GroupByIndex returns the shard and metadata of the group with the given
// global layout index, or an error if the file does not contain it (partial
// checkpoints omit unsaved layers' groups).
func (f *ShardFile) GroupByIndex(idx int) (*zero.GroupShard, ShardGroupMeta, error) {
	for i, m := range f.Meta {
		if m.Index == idx {
			return f.Shards[i], m, nil
		}
	}
	return nil, ShardGroupMeta{}, fmt.Errorf("ckpt: rank %d shard has no group %d", f.Rank, idx)
}

// ShardFileName returns the conventional per-rank optimizer file name,
// mirroring DeepSpeed's bf16_zero_pp_rank_N_mp_rank_00_optim_states.pt.
func ShardFileName(rank int) string {
	return fmt.Sprintf("zero/rank_%02d_optim_states.ltos", rank)
}

// WriteShardFile serialises one rank's shards of the given groups. meta and
// shards must be parallel slices. It is a convenience loop over
// ShardFileWriter; streaming producers should feed groups one at a time.
func WriteShardFile(b storage.Backend, name string, rank, worldSize, step int,
	layout optim.LayoutKind, meta []ShardGroupMeta, shards []*zero.GroupShard) error {
	if len(meta) != len(shards) {
		return fmt.Errorf("ckpt: %d metas vs %d shards", len(meta), len(shards))
	}
	w, err := NewShardFileWriter(b, name, rank, worldSize, step, layout, 0)
	if err != nil {
		return err
	}
	defer w.Abort()
	for i, m := range meta {
		if err := w.WriteGroup(m, shards[i]); err != nil {
			return err
		}
	}
	return w.Close()
}

// ShardFileWriter streams an LTOS shard file group by group, mirroring
// LTSFWriter: groups are accepted one at a time through the shared
// containerWriter lifecycle. Byte-identical to WriteShardFile given the
// same groups in the same order.
type ShardFileWriter struct {
	containerWriter
	rank int
	hdr  ltosHeader
}

// NewShardFileWriter opens a streaming writer for one rank's optimizer
// shard file. chunkBytes <= 0 selects the default chunk size.
func NewShardFileWriter(b storage.Backend, name string, rank, worldSize, step int,
	layout optim.LayoutKind, chunkBytes int) (*ShardFileWriter, error) {
	cw, err := newContainerWriter(b, name, ltosMagic, chunkBytes)
	if err != nil {
		return nil, err
	}
	return &ShardFileWriter{
		containerWriter: cw,
		rank:            rank,
		hdr: ltosHeader{
			Version: FormatVersion, Rank: rank, WorldSize: worldSize,
			Step: step, Layout: layout.String(),
		},
	}, nil
}

// WriteGroup appends one group's shard (master + exp_avg + exp_avg_sq) and
// records its metadata. The shard may be released once WriteGroup returns.
func (w *ShardFileWriter) WriteGroup(m ShardGroupMeta, s *zero.GroupShard) error {
	if err := w.writable(); err != nil {
		return err
	}
	if s.Rank != w.rank {
		return fmt.Errorf("ckpt: shard for rank %d written into rank %d file", s.Rank, w.rank)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w.spool, crc)
	var n int64
	for _, sec := range [][]float32{s.Master, s.ExpAvg, s.ExpAvgSq} {
		k, err := writeF32s(mw, w.buf, sec)
		n += k
		if err != nil {
			w.err = fmt.Errorf("ckpt: %s: spool group %d: %w", w.name, m.Index, err)
			return w.err
		}
	}
	m.ShardLen = s.Numel()
	m.Offsets = [2]int64{w.off, w.off + n}
	m.CRC32 = crc.Sum32()
	w.hdr.Groups = append(w.hdr.Groups, m)
	w.off += n
	return nil
}

// AppendRawGroup splices a pre-encoded group payload (master + exp_avg +
// exp_avg_sq, FP32 little-endian) into the shard file and records its
// metadata with the source CRC carried forward — the LTOS counterpart of
// LTSFWriter.AppendRaw, used when materializing dedup checkpoints from
// blob extents. m must carry the group's geometry and CRC; offsets are
// assigned here (a full save's payload is gap-free). The size is
// validated against the geometry before any byte is spooled, and a short
// or long source errors out (never panics).
func (w *ShardFileWriter) AppendRawGroup(m ShardGroupMeta, size int64, src io.Reader) error {
	if err := w.writable(); err != nil {
		return err
	}
	// Division-checked geometry: size is a caller claim, so 12×ShardLen
	// must never be formed directly (int64 wrap).
	if m.ShardLen < 0 || size < 0 || size%12 != 0 || m.ShardLen != size/12 {
		return fmt.Errorf("ckpt: %s: raw group %d payload %d bytes, want 12×%d", w.name, m.Index, size, m.ShardLen)
	}
	n, err := spliceTo(w.spool, src, size, w.buf)
	if err != nil {
		w.err = fmt.Errorf("ckpt: %s: splice raw group %d: %w", w.name, m.Index, err)
		return w.err
	}
	if n != size {
		w.err = fmt.Errorf("ckpt: %s: raw group %d: extent delivered %d of %d bytes", w.name, m.Index, n, size)
		return w.err
	}
	m.Offsets = [2]int64{w.off, w.off + size}
	w.hdr.Groups = append(w.hdr.Groups, m)
	w.off += size
	return nil
}

// Close writes the final container and releases the scratch space.
func (w *ShardFileWriter) Close() error { return w.finish(w.hdr) }

// writeF32s streams a float32 slice little-endian through buf-sized chunks.
func writeF32s(w io.Writer, buf []byte, src []float32) (int64, error) {
	perChunk := len(buf) / 4
	if perChunk < 1 {
		buf = make([]byte, 4096)
		perChunk = len(buf) / 4
	}
	var total int64
	for base := 0; base < len(src); base += perChunk {
		end := base + perChunk
		if end > len(src) {
			end = len(src)
		}
		chunk := buf[:(end-base)*4]
		for i := base; i < end; i++ {
			binary.LittleEndian.PutUint32(chunk[(i-base)*4:], math.Float32bits(src[i]))
		}
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func decodeF32(src []byte, n int64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
	return out
}

// ReadShardFile reads and decodes an entire rank optimizer file. There is
// deliberately no lazy variant: like DeepSpeed's pickled optimizer states,
// a shard file must be fully loaded before any group can be used (§5.4) —
// but the read streams group by group, so peak transient memory is one
// group's payload rather than the whole encoded file alongside its decoded
// form.
func ReadShardFile(b storage.Backend, name string) (*ShardFile, error) {
	size, err := b.Stat(name)
	if err != nil {
		return nil, err
	}
	r, err := b.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if size < 12 {
		return nil, fmt.Errorf("ckpt: %s: truncated (%d bytes)", name, size)
	}
	head := make([]byte, 12)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("ckpt: %s: read header: %w", name, err)
	}
	for i := range ltosMagic {
		if head[i] != ltosMagic[i] {
			return nil, fmt.Errorf("ckpt: %s: bad magic %q", name, head[:4])
		}
	}
	// Compare without adding (overflow-safe against adversarial lengths).
	hlen := int64(binary.LittleEndian.Uint64(head[4:12]))
	if hlen <= 0 || hlen > size-12 {
		return nil, fmt.Errorf("ckpt: %s: corrupt header length %d", name, hlen)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(r, hj); err != nil {
		return nil, fmt.Errorf("ckpt: %s: read header body: %w", name, err)
	}
	var hdr ltosHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("ckpt: %s: decode header: %w", name, err)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: %s: version %d, want %d", name, hdr.Version, FormatVersion)
	}
	layout, err := optim.ParseLayoutKind(hdr.Layout)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	payloadLen := size - 12 - hlen

	f := &ShardFile{
		Rank: hdr.Rank, WorldSize: hdr.WorldSize, Step: hdr.Step,
		Layout:    layout,
		Meta:      hdr.Groups,
		Shards:    make([]*zero.GroupShard, len(hdr.Groups)),
		FileBytes: size,
	}
	var pos int64 // current offset within the payload section
	for i, m := range hdr.Groups {
		if m.Offsets[0] < 0 || m.Offsets[1] > payloadLen || m.Offsets[0] > m.Offsets[1] {
			return nil, fmt.Errorf("ckpt: %s: group %d offsets %v out of range", name, m.Index, m.Offsets)
		}
		if m.Offsets[0] < pos {
			return nil, fmt.Errorf("ckpt: %s: group %d offsets %v overlap previous group", name, m.Index, m.Offsets)
		}
		if skip := m.Offsets[0] - pos; skip > 0 {
			if _, err := io.CopyN(io.Discard, r, skip); err != nil {
				return nil, fmt.Errorf("ckpt: %s: group %d: %w", name, m.Index, err)
			}
		}
		seg := make([]byte, m.Offsets[1]-m.Offsets[0])
		if _, err := io.ReadFull(r, seg); err != nil {
			return nil, fmt.Errorf("ckpt: %s: group %d: %w", name, m.Index, err)
		}
		pos = m.Offsets[1]
		if got := crc32.ChecksumIEEE(seg); got != m.CRC32 {
			return nil, fmt.Errorf("ckpt: %s: group %d CRC mismatch", name, m.Index)
		}
		// Range-check ShardLen before multiplying: a near-MaxInt64 value
		// could wrap ShardLen*12 around to len(seg) and pass the equality.
		if m.ShardLen < 0 || m.ShardLen > int64(len(seg)) || int64(len(seg)) != m.ShardLen*12 {
			return nil, fmt.Errorf("ckpt: %s: group %d payload %d bytes, want 12×%d", name, m.Index, len(seg), m.ShardLen)
		}
		f.Shards[i] = &zero.GroupShard{
			GroupIndex: m.Index,
			Rank:       hdr.Rank,
			Master:     decodeF32(seg, m.ShardLen),
			ExpAvg:     decodeF32(seg[m.ShardLen*4:], m.ShardLen),
			ExpAvgSq:   decodeF32(seg[m.ShardLen*8:], m.ShardLen),
		}
	}
	return f, nil
}

// ShardHeader is the decoded header of an LTOS file — everything needed to
// decide whether the file can be copied verbatim, without touching a single
// payload byte.
type ShardHeader struct {
	Rank      int
	WorldSize int
	Step      int
	Layout    optim.LayoutKind
	Groups    []ShardGroupMeta
	// FileBytes is the container's total on-disk size.
	FileBytes int64
	// PayloadBytes is the payload section's size (FileBytes minus magic,
	// length prefix and JSON header).
	PayloadBytes int64
}

// ReadShardHeader reads and validates only an LTOS file's header: magic,
// version, layout and per-group metadata bounds — the cheap metadata pass
// the raw shard-copy fast path runs before deciding to stream the file
// verbatim. Payload bytes are never read.
func ReadShardHeader(b storage.Backend, name string) (*ShardHeader, error) {
	var hdr ltosHeader
	off, err := readContainerHeader(b, name, ltosMagic, &hdr)
	if err != nil {
		return nil, err
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: %s: version %d, want %d", name, hdr.Version, FormatVersion)
	}
	layout, err := optim.ParseLayoutKind(hdr.Layout)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", name, err)
	}
	size, err := b.Stat(name)
	if err != nil {
		return nil, err
	}
	payloadLen := size - off
	var pos int64
	for _, m := range hdr.Groups {
		if m.Offsets[0] < 0 || m.Offsets[1] > payloadLen || m.Offsets[0] > m.Offsets[1] {
			return nil, fmt.Errorf("ckpt: %s: group %d offsets %v out of range", name, m.Index, m.Offsets)
		}
		if m.Offsets[0] < pos {
			return nil, fmt.Errorf("ckpt: %s: group %d offsets %v overlap previous group", name, m.Index, m.Offsets)
		}
		pos = m.Offsets[1]
	}
	return &ShardHeader{
		Rank: hdr.Rank, WorldSize: hdr.WorldSize, Step: hdr.Step,
		Layout: layout, Groups: hdr.Groups,
		FileBytes: size, PayloadBytes: payloadLen,
	}, nil
}

// metaForGroup builds a group's shard metadata from the layout.
func metaForGroup(g optim.Group) ShardGroupMeta {
	m := ShardGroupMeta{Index: g.Index, Numel: g.Numel, NoDecay: g.NoDecay}
	if g.HasLayer {
		m.Layer = g.Layer.String()
	}
	return m
}

// LayerRefOf parses the meta's layer field.
func (m ShardGroupMeta) LayerRefOf() (modelcfg.LayerRef, bool) {
	if m.Layer == "" {
		return modelcfg.LayerRef{}, false
	}
	ref, err := modelcfg.ParseLayerRef(m.Layer)
	if err != nil {
		return modelcfg.LayerRef{}, false
	}
	return ref, true
}
