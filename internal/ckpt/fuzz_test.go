package ckpt

// Fuzz targets for the container readers. The contract under test: corrupt
// input — truncated, bit-flipped, adversarial headers — must surface as an
// error, never as a panic or an unbounded allocation. Seeds are the golden
// containers the writers produce, plus truncations and bit flips of them;
// the regression corpus lives in testdata/fuzz/.

import (
	"testing"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// goldenLTSF builds a small deterministic LTSF container.
func goldenLTSF(tb testing.TB) []byte {
	tb.Helper()
	a := tensor.New("a", tensor.BF16, 2, 3)
	b := tensor.New("b", tensor.F32, 4)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, float32(i)-1.5)
	}
	for i := 0; i < b.Len(); i++ {
		b.Set(i, float32(i)*0.25)
	}
	mem := storage.NewMem()
	if err := WriteLTSF(mem, "m", "fuzz", []*tensor.Tensor{a, b}); err != nil {
		tb.Fatal(err)
	}
	data, _ := mem.ReadFile("m")
	return data
}

// goldenLTOS builds a small deterministic optimizer shard container.
func goldenLTOS(tb testing.TB) []byte {
	tb.Helper()
	m, o := buildOptim(tb, modelcfg.Tiny(), 99)
	_ = m
	var metas []ShardGroupMeta
	for _, g := range o.Layout.Groups[:2] {
		metas = append(metas, metaForGroup(g))
	}
	byRank, err := zero.ShardAll(o.States[:2], 2)
	if err != nil {
		tb.Fatal(err)
	}
	mem := storage.NewMem()
	if err := WriteShardFile(mem, "s", 0, 2, 7, o.Layout.Kind, metas, byRank[0]); err != nil {
		tb.Fatal(err)
	}
	data, _ := mem.ReadFile("s")
	return data
}

// container assembles magic + length-prefixed JSON header + payload, for
// hand-crafting adversarial inputs.
func container(magic []byte, hdr string, payload []byte) []byte {
	out := append([]byte(nil), magic...)
	out = append(out, byte(len(hdr)), 0, 0, 0, 0, 0, 0, 0)
	out = append(out, hdr...)
	return append(out, payload...)
}

// Regression: adversarial LTSF headers that once slipped past validation.
// Zero dimensions would panic inside tensor.New, and a single huge
// dimension would wrap numel*size around int64 to match an empty payload
// range — both must surface as Open errors, never panics.
func TestOpenLTSFRejectsAdversarialHeaders(t *testing.T) {
	cases := map[string]string{
		"zero-dim": `{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[0],"data_offsets":[0,0],"crc32":0}}}`,
		"overflow": `{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[4611686018427387904],"data_offsets":[0,0],"crc32":0}}}`,
		"negative": `{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[-4],"data_offsets":[0,16],"crc32":0}}}`,
		"escape":   `{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[64],"data_offsets":[0,256],"crc32":0}}}`,
	}
	for name, hdr := range cases {
		b := storage.NewMem()
		if err := b.WriteFile("m", container([]byte("LTSF"), hdr, []byte("payload"))); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenLTSF(b, "m"); err == nil {
			t.Errorf("%s: adversarial header accepted", name)
		}
	}
}

func addMutations(f *testing.F, golden []byte) {
	f.Add(golden)
	for _, cut := range []int{1, 7, 13, len(golden) / 2, len(golden) - 1} {
		if cut < len(golden) {
			f.Add(golden[:cut])
		}
	}
	for _, pos := range []int{4, 8, 15, len(golden) / 3, len(golden) - 2} {
		if pos < len(golden) {
			flipped := append([]byte(nil), golden...)
			flipped[pos] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("LTSF"))
	f.Add([]byte("LTOS"))
}

func FuzzReadShardFile(f *testing.F) {
	addMutations(f, goldenLTOS(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		b := storage.NewMem()
		if err := b.WriteFile("s", data); err != nil {
			t.Fatal(err)
		}
		sf, err := ReadShardFile(b, "s")
		if err != nil {
			return // corrupt input must error, and did
		}
		// A successful read must be internally consistent.
		for i, m := range sf.Meta {
			if sf.Shards[i].Numel() != m.ShardLen {
				t.Fatalf("group %d: shard len %d != header %d", i, sf.Shards[i].Numel(), m.ShardLen)
			}
		}
	})
}

func FuzzLTSFReader(f *testing.F) {
	addMutations(f, goldenLTSF(f))
	f.Add(container([]byte("LTSF"),
		`{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[0],"data_offsets":[0,0],"crc32":0}}}`, nil))
	f.Add(container([]byte("LTSF"),
		`{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[4611686018427387904],"data_offsets":[0,0],"crc32":0}}}`, nil))
	// Raw-path seeds: extents brushing the payload boundary, a reversed
	// extent, and a CRC that cannot match — RawTensor/OpenRaw/AppendRaw
	// must error (or succeed consistently), never panic.
	f.Add(container([]byte("LTSF"),
		`{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[2],"data_offsets":[1,9],"crc32":7}}}`, []byte("123456789")))
	f.Add(container([]byte("LTSF"),
		`{"version":1,"model":"m","tensors":{"t":{"dtype":"f32","shape":[2],"data_offsets":[8,0],"crc32":0}}}`, []byte("12345678")))
	f.Add(container([]byte("LTSF"),
		`{"version":1,"model":"m","tensors":{"t":{"dtype":"bf16","shape":[4],"data_offsets":[0,8],"crc32":4294967295}}}`, []byte("12345678")))
	f.Fuzz(func(t *testing.T, data []byte) {
		b := storage.NewMem()
		if err := b.WriteFile("m", data); err != nil {
			t.Fatal(err)
		}
		r, err := OpenLTSF(b, "m")
		if err != nil {
			return
		}
		w, err := NewLTSFWriter(storage.NewMem(), "spliced", "m", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Abort()
		for _, name := range r.Names() {
			ts, err := r.ReadTensor(name)
			if err == nil {
				if size, ok := r.PayloadSize(name); !ok || int64(ts.Bytes()) != size {
					t.Fatalf("tensor %q: decoded %d bytes, header says %d", name, ts.Bytes(), size)
				}
			}
			// The raw surface must hold the same never-panic contract over
			// whatever header survived OpenLTSF: the extent opens and
			// delivers exactly its advertised size, and splicing it into a
			// fresh container round-trips the metadata.
			rt, rc, err := r.OpenRaw(name)
			if err != nil {
				continue
			}
			// A splice rejection (e.g. short or inconsistent extent) fails
			// the writer and later sections error out — the documented
			// sticky-error contract; only panics are bugs here.
			w.AppendRaw(rt, rc)
			rc.Close()
		}
	})
}
