package ckpt

// Format-stability goldens: the streaming LTSF/LTOS writers must produce
// files byte-identical to the seed's in-memory writers. seedWriteLTSF and
// seedWriteShardFile below are verbatim re-implementations of the pre-
// streaming write path; if a refactor changes a single output byte, these
// tests catch it before any stored checkpoint becomes unreadable.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
	"llmtailor/internal/zero"
)

// seedWriteContainer mirrors the seed's writeContainer: one in-memory
// buffer holding magic + header length + JSON header + payload.
func seedWriteContainer(b storage.Backend, name string, magic [4]byte, hdr any, payload []byte) error {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 12+len(hj)+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hj)))
	buf = append(buf, hj...)
	buf = append(buf, payload...)
	return b.WriteFile(name, buf)
}

// seedWriteLTSF is the seed's WriteLTSF: whole payload accumulated in
// memory before a single write.
func seedWriteLTSF(b storage.Backend, name, modelName string, tensors []*tensor.Tensor) error {
	hdr := ltsfHeader{Version: FormatVersion, Model: modelName, Tensors: make(map[string]ltsfTensorMeta, len(tensors))}
	var payload []byte
	var off int64
	for _, t := range tensors {
		start := off
		payload = t.Encode(payload)
		off = int64(len(payload))
		hdr.Tensors[t.Name] = ltsfTensorMeta{
			DType:   t.DType.String(),
			Shape:   append([]int(nil), t.Shape...),
			Offsets: [2]int64{start, off},
			CRC32:   crc32.ChecksumIEEE(payload[start:off]),
		}
	}
	return seedWriteContainer(b, name, ltsfMagic, hdr, payload)
}

// seedWriteShardFile is the seed's WriteShardFile.
func seedWriteShardFile(b storage.Backend, name string, rank, worldSize, step int,
	layout optim.LayoutKind, meta []ShardGroupMeta, shards []*zero.GroupShard) error {
	hdr := ltosHeader{
		Version: FormatVersion, Rank: rank, WorldSize: worldSize,
		Step: step, Layout: layout.String(),
		Groups: make([]ShardGroupMeta, len(meta)),
	}
	appendF32 := func(dst []byte, src []float32) []byte {
		for _, v := range src {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
		return dst
	}
	var payload []byte
	for i, m := range meta {
		s := shards[i]
		start := int64(len(payload))
		payload = appendF32(payload, s.Master)
		payload = appendF32(payload, s.ExpAvg)
		payload = appendF32(payload, s.ExpAvgSq)
		end := int64(len(payload))
		m.ShardLen = s.Numel()
		m.Offsets = [2]int64{start, end}
		m.CRC32 = crc32.ChecksumIEEE(payload[start:end])
		hdr.Groups[i] = m
	}
	return seedWriteContainer(b, name, ltosMagic, hdr, payload)
}

func TestStreamedLTSFMatchesSeedBytes(t *testing.T) {
	ts := randTensors(41)
	seed := storage.NewMem()
	if err := seedWriteLTSF(seed, "m", "tiny", ts); err != nil {
		t.Fatal(err)
	}
	want, _ := seed.ReadFile("m")

	// Via the convenience wrapper.
	got1B := storage.NewMem()
	if err := WriteLTSF(got1B, "m", "tiny", ts); err != nil {
		t.Fatal(err)
	}
	got1, _ := got1B.ReadFile("m")
	if string(got1) != string(want) {
		t.Fatal("WriteLTSF output differs from seed writer")
	}

	// Via the streaming writer, one tensor at a time, with a tiny chunk so
	// every code path that splits payloads is exercised.
	got2B := storage.NewMem()
	w, err := NewLTSFWriter(got2B, "m", "tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range ts {
		if err := w.WriteTensor(ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _ := got2B.ReadFile("m")
	if string(got2) != string(want) {
		t.Fatal("LTSFWriter output differs from seed writer")
	}
	if w.BytesWritten() != int64(len(want)) {
		t.Fatalf("BytesWritten = %d, file = %d", w.BytesWritten(), len(want))
	}
}

func TestStreamedLTSFMatchesSeedOnOSBackend(t *testing.T) {
	// The OS path spools through a temp file rather than memory; the bytes
	// must be identical all the same.
	ts := randTensors(43)
	seed := storage.NewMem()
	if err := seedWriteLTSF(seed, "m", "tiny", ts); err != nil {
		t.Fatal(err)
	}
	want, _ := seed.ReadFile("m")

	osb, err := storage.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLTSF(osb, "m", "tiny", ts); err != nil {
		t.Fatal(err)
	}
	got, err := osb.ReadFile("m")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("OS-backend streamed LTSF differs from seed writer")
	}
}

func buildShardFixture(t *testing.T) ([]ShardGroupMeta, []*zero.GroupShard, *optim.Layout) {
	t.Helper()
	cfg := modelcfg.Tiny()
	m, o := buildOptim(t, cfg, 42)
	_ = m
	var metas []ShardGroupMeta
	var states []*optim.GroupState
	for gi, g := range o.Layout.Groups {
		metas = append(metas, metaForGroup(g))
		states = append(states, o.States[gi])
	}
	byRank, err := zero.ShardAll(states, 2)
	if err != nil {
		t.Fatal(err)
	}
	return metas, byRank[0], o.Layout
}

func TestStreamedLTOSMatchesSeedBytes(t *testing.T) {
	metas, shards, layout := buildShardFixture(t)

	seed := storage.NewMem()
	if err := seedWriteShardFile(seed, "s", 0, 2, 9, layout.Kind, metas, shards); err != nil {
		t.Fatal(err)
	}
	want, _ := seed.ReadFile("s")

	got1B := storage.NewMem()
	if err := WriteShardFile(got1B, "s", 0, 2, 9, layout.Kind, metas, shards); err != nil {
		t.Fatal(err)
	}
	got1, _ := got1B.ReadFile("s")
	if string(got1) != string(want) {
		t.Fatal("WriteShardFile output differs from seed writer")
	}

	got2B := storage.NewMem()
	w, err := NewShardFileWriter(got2B, "s", 0, 2, 9, layout.Kind, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range metas {
		if err := w.WriteGroup(m, shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _ := got2B.ReadFile("s")
	if string(got2) != string(want) {
		t.Fatal("ShardFileWriter output differs from seed writer")
	}
}

// TestLTSFGoldenDigest pins the exact bytes of a deterministic container.
// The equality tests above compare two live implementations; this digest
// survives even a coordinated rewrite of both.
func TestLTSFGoldenDigest(t *testing.T) {
	a := tensor.New("a", tensor.BF16, 2, 2)
	bt := tensor.New("b", tensor.F32, 3)
	for i := 0; i < a.Len(); i++ {
		a.Set(i, float32(i)+0.5)
	}
	for i := 0; i < bt.Len(); i++ {
		bt.Set(i, -float32(i))
	}
	b := storage.NewMem()
	if err := WriteLTSF(b, "m", "golden", []*tensor.Tensor{a, bt}); err != nil {
		t.Fatal(err)
	}
	data, _ := b.ReadFile("m")
	sum := sha256.Sum256(data)
	const want = "46774f6f0facc4328671bdb350d3911db792f9267c548b6afa906fd18812bf3a"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("LTSF golden digest changed:\n got %s\nwant %s\n(on-disk format change? bump FormatVersion and regenerate)", got, want)
	}
}

// Streamed reads must agree with what the seed's whole-file decoder saw.
func TestStreamedShardReadRoundtrip(t *testing.T) {
	metas, shards, layout := buildShardFixture(t)
	b := storage.NewMem()
	if err := WriteShardFile(b, "s", 0, 2, 9, layout.Kind, metas, shards); err != nil {
		t.Fatal(err)
	}
	f, err := ReadShardFile(b, "s")
	if err != nil {
		t.Fatal(err)
	}
	size, _ := b.Stat("s")
	if f.FileBytes != size {
		t.Fatalf("FileBytes = %d, want %d", f.FileBytes, size)
	}
	if len(f.Shards) != len(shards) {
		t.Fatalf("groups = %d, want %d", len(f.Shards), len(shards))
	}
	for i, s := range shards {
		g := f.Shards[i]
		for j := range s.Master {
			if g.Master[j] != s.Master[j] || g.ExpAvg[j] != s.ExpAvg[j] || g.ExpAvgSq[j] != s.ExpAvgSq[j] {
				t.Fatalf("group %d state differs at %d", i, j)
			}
		}
	}
}

func TestStreamedShardReadDetectsCorruption(t *testing.T) {
	metas, shards, layout := buildShardFixture(t)
	b := storage.NewMem()
	if err := WriteShardFile(b, "s", 0, 2, 9, layout.Kind, metas, shards); err != nil {
		t.Fatal(err)
	}
	raw, _ := b.ReadFile("s")
	raw[len(raw)-1] ^= 0xff // flip a payload byte in the last group
	if err := b.WriteFile("s", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardFile(b, "s"); err == nil {
		t.Fatal("corrupted shard file read without error")
	} else if !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("err = %v, want CRC mismatch", err)
	}
}
