package ckpt

import (
	"strings"
	"testing"

	"llmtailor/internal/model"
	"llmtailor/internal/modelcfg"
	"llmtailor/internal/optim"
	"llmtailor/internal/storage"
	"llmtailor/internal/tensor"
)

func saveFull(t testing.TB, b storage.Backend, dir string, seed uint64, ws int) (*model.Model, *optim.AdamW) {
	t.Helper()
	m, o := buildOptim(t, modelcfg.Tiny(), seed)
	err := Save(b, SaveSpec{
		Dir: dir, Model: m, Optim: o, WorldSize: ws, Strategy: "full",
		State: TrainerState{Step: o.StepCount, LR: 1e-3, Loss: 2.0, Task: "sft", Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, o
}

func TestSaveProducesExpectedFiles(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-3", 20, 4)
	for _, f := range []string{
		"run/checkpoint-3/model.ltsf",
		"run/checkpoint-3/config.json",
		"run/checkpoint-3/trainer_state.json",
		"run/checkpoint-3/manifest.json",
		"run/checkpoint-3/zero/rank_00_optim_states.ltos",
		"run/checkpoint-3/zero/rank_03_optim_states.ltos",
		"run/latest",
	} {
		if !b.Exists(f) {
			t.Errorf("missing %s", f)
		}
	}
	latest, err := Latest(b, "run")
	if err != nil || latest != "run/checkpoint-3" {
		t.Fatalf("latest = %q, %v", latest, err)
	}
}

func TestOpenReadsMetadata(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-3", 21, 2)
	c, err := Open(b, "run/checkpoint-3")
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Name != "tiny" || c.State.Step != 3 || c.WorldSize() != 2 {
		t.Fatalf("meta: %s step=%d ws=%d", c.Config.Name, c.State.Step, c.WorldSize())
	}
	if !c.Manifest.Complete || c.Manifest.Strategy != "full" {
		t.Fatalf("manifest: %+v", c.Manifest)
	}
	if !c.Manifest.HasLayer(modelcfg.Block(0)) || !c.Manifest.HasLayer(modelcfg.Embed) {
		t.Fatal("manifest missing layers")
	}
}

func TestRestoreRoundtripExact(t *testing.T) {
	b := storage.NewMem()
	m, o := saveFull(t, b, "run/checkpoint-3", 22, 4)

	m2, o2, c, err := Restore(b, "run/checkpoint-3", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if c.State.Loss != 2.0 {
		t.Fatalf("state loss = %v", c.State.Loss)
	}
	if !model.Equal(m, m2) {
		t.Fatal("restored model differs")
	}
	if o2.StepCount != o.StepCount {
		t.Fatalf("step count %d != %d", o2.StepCount, o.StepCount)
	}
	for _, ts := range m.Tensors() {
		am, ae, av, _ := o.TensorState(ts.Name)
		bm, be, bv, err := o2.TensorState(ts.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range am {
			if am[i] != bm[i] || ae[i] != be[i] || av[i] != bv[i] {
				t.Fatalf("optimizer state differs at %s[%d]", ts.Name, i)
			}
		}
	}
}

// Restored training must continue identically to never-interrupted training:
// the foundational checkpoint property everything in the paper depends on.
func TestRestoreContinuationBitExact(t *testing.T) {
	b := storage.NewMem()
	m, o := saveFull(t, b, "c", 23, 2)
	m2, o2, _, err := Restore(b, "c", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(555)
	for step := 0; step < 5; step++ {
		grads := optim.GradMap{}
		for _, ts := range m.Tensors() {
			g := make([]float32, ts.Len())
			for i := range g {
				g[i] = rng.NormFloat32() * 0.1
			}
			grads[ts.Name] = g
		}
		if err := o.Step(1e-3, grads); err != nil {
			t.Fatal(err)
		}
		if err := o2.Step(1e-3, grads); err != nil {
			t.Fatal(err)
		}
	}
	if !model.Equal(m, m2) {
		d, _ := model.MaxAbsDiff(m, m2)
		t.Fatalf("continuation diverged (max |Δ| = %v)", d)
	}
}

func TestPartialSaveOmitsLayers(t *testing.T) {
	b := storage.NewMem()
	m, o := buildOptim(t, modelcfg.Tiny(), 24)
	layers := []modelcfg.LayerRef{modelcfg.Block(0), modelcfg.Block(2), modelcfg.Embed}
	err := Save(b, SaveSpec{
		Dir: "p", Model: m, Optim: o, WorldSize: 2, Layers: layers, Strategy: "parity",
		State: TrainerState{Step: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(b, "p")
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest.Complete {
		t.Fatal("partial manifest marked complete")
	}
	if len(c.Manifest.Layers) != 3 {
		t.Fatalf("manifest layers = %v", c.Manifest.Layers)
	}
	// Weights of unsaved layers are absent; saved ones present.
	if !c.Weights().Has("model.layers.0.self_attn.q_proj.weight") {
		t.Fatal("saved layer tensor missing")
	}
	if c.Weights().Has("model.layers.1.self_attn.q_proj.weight") {
		t.Fatal("unsaved layer tensor present")
	}
	if c.Weights().Has("model.norm.weight") {
		t.Fatal("unsaved final_norm present")
	}
	// Optimizer shards contain only the selected layers' groups: block 0,
	// block 2 (2 groups each) + embed (1 group) = 5.
	sf, err := c.ReadOptimShard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Shards) != 5 {
		t.Fatalf("partial shard groups = %d, want 5", len(sf.Shards))
	}

	// Partial checkpoints refuse whole-model restore.
	if _, _, _, err := Restore(b, "p", tensor.BF16); err == nil {
		t.Fatal("partial restore should fail")
	}
}

func TestPartialSaveSizesShrink(t *testing.T) {
	mem := storage.NewMem()
	meter := storage.NewMeter(mem, storage.LocalNVMe())
	m, o := buildOptim(t, modelcfg.Tiny(), 25)

	if err := Save(meter, SaveSpec{Dir: "full", Model: m, Optim: o, WorldSize: 2,
		State: TrainerState{Step: 3}}); err != nil {
		t.Fatal(err)
	}
	fullBytes := meter.Stats().BytesWritten
	meter.Reset()
	if err := Save(meter, SaveSpec{Dir: "half", Model: m, Optim: o, WorldSize: 2,
		Layers: []modelcfg.LayerRef{modelcfg.Block(0), modelcfg.Block(1)},
		State:  TrainerState{Step: 3}}); err != nil {
		t.Fatal(err)
	}
	halfBytes := meter.Stats().BytesWritten
	if halfBytes >= fullBytes*3/4 {
		t.Fatalf("partial save %d bytes vs full %d — too large", halfBytes, fullBytes)
	}
}

func TestSaveRejectsBadSpecs(t *testing.T) {
	b := storage.NewMem()
	m, o := buildOptim(t, modelcfg.Tiny(), 26)
	if err := Save(b, SaveSpec{Dir: "x", Model: m, Optim: o, WorldSize: 0}); err == nil {
		t.Error("world size 0 accepted")
	}

	// Tied model: lm_head is not a layer.
	mt, _ := model.NewInitialized(modelcfg.TinyTied(), tensor.BF16, 1)
	ot, _ := optim.NewAdamW(mt, optim.NewLayerwiseLayout(modelcfg.TinyTied()), optim.DefaultHyper())
	err := Save(b, SaveSpec{Dir: "y", Model: mt, Optim: ot, WorldSize: 1,
		Layers: []modelcfg.LayerRef{modelcfg.LMHead}})
	if err == nil {
		t.Error("lm_head on tied model accepted")
	}
}

func TestPartialSaveRequiresLayerwise(t *testing.T) {
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 1)
	o, _ := optim.NewAdamW(m, optim.NewTwoGroupLayout(cfg), optim.DefaultHyper())
	err := Save(storage.NewMem(), SaveSpec{
		Dir: "x", Model: m, Optim: o, WorldSize: 1,
		Layers: []modelcfg.LayerRef{modelcfg.Block(0)},
		State:  TrainerState{},
	})
	if err == nil || !strings.Contains(err.Error(), "layerwise") {
		t.Fatalf("err = %v", err)
	}
}

func TestTwoGroupFullSaveRestores(t *testing.T) {
	cfg := modelcfg.Tiny()
	m, _ := model.NewInitialized(cfg, tensor.BF16, 9)
	o, _ := optim.NewAdamW(m, optim.NewTwoGroupLayout(cfg), optim.DefaultHyper())
	b := storage.NewMem()
	if err := Save(b, SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 2, State: TrainerState{Step: 0}}); err != nil {
		t.Fatal(err)
	}
	m2, o2, _, err := Restore(b, "c", tensor.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Layout.Kind != optim.TwoGroup {
		t.Fatal("layout kind lost")
	}
	if !model.Equal(m, m2) {
		t.Fatal("model differs")
	}
}

func TestList(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "run/checkpoint-100", 1, 1)
	saveFull(t, b, "run/checkpoint-20", 2, 1)
	saveFull(t, b, "run/checkpoint-3", 3, 1)
	b.WriteFile("run/notes.txt", []byte("x"))
	got, err := List(b, "run")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"run/checkpoint-3", "run/checkpoint-20", "run/checkpoint-100"}
	if len(got) != len(want) {
		t.Fatalf("list = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
}

func TestOpenMissingPieces(t *testing.T) {
	b := storage.NewMem()
	saveFull(t, b, "c", 4, 1)
	b.Remove("c/trainer_state.json")
	if _, err := Open(b, "c"); err == nil {
		t.Fatal("missing trainer state accepted")
	}
	if _, err := Open(b, "absent"); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLatestMissing(t *testing.T) {
	if _, err := Latest(storage.NewMem(), "run"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDirName(t *testing.T) {
	if DirName(250) != "checkpoint-250" {
		t.Fatalf("DirName = %s", DirName(250))
	}
}

func TestRestoreQwenAndTied(t *testing.T) {
	for _, cfg := range []*modelcfg.Config{modelcfg.TinyQwen(), modelcfg.TinyTied()} {
		b := storage.NewMem()
		m, o := buildOptim(t, cfg, 31)
		if err := Save(b, SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 3,
			State: TrainerState{Step: o.StepCount}}); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		m2, _, _, err := Restore(b, "c", tensor.BF16)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !model.Equal(m, m2) {
			t.Fatalf("%s: restore mismatch", cfg.Name)
		}
	}
}

func BenchmarkSaveTiny(b *testing.B) {
	m, o := buildOptim(b, modelcfg.Tiny(), 1)
	back := storage.NewMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(back, SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 4,
			State: TrainerState{Step: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestoreTiny(b *testing.B) {
	m, o := buildOptim(b, modelcfg.Tiny(), 1)
	back := storage.NewMem()
	if err := Save(back, SaveSpec{Dir: "c", Model: m, Optim: o, WorldSize: 4,
		State: TrainerState{Step: 1}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Restore(back, "c", tensor.BF16); err != nil {
			b.Fatal(err)
		}
	}
}
